(** Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy).

    Only reachable blocks appear in the results; unreachable blocks have no
    dominator information and must be cleaned up (or ignored) by callers. *)

type t

val compute : Ir.func -> t

val idom : t -> Ir.label -> Ir.label option
(** Immediate dominator; [None] for the entry block (and unreachable
    blocks). *)

val dominates : t -> Ir.label -> Ir.label -> bool
(** [dominates t a b] — reflexive ([dominates t a a = true]). *)

val strictly_dominates : t -> Ir.label -> Ir.label -> bool

val children : t -> Ir.label -> Ir.label list
(** Dominator-tree children, in increasing label order. *)

val frontier : t -> Ir.label -> Ir.label list
(** Dominance frontier of the block. *)

val dom_tree_preorder : t -> Ir.label list
(** Preorder walk of the dominator tree from the entry. *)
