open Ir

type loop = {
  header : label;
  latches : label list;
  body : Iset.t;
  exits : (label * label) list;
}

let natural_loops fn =
  let fn = Cfg.remove_unreachable_blocks fn in
  let dom = Dom.compute fn in
  let preds = Cfg.predecessors fn in
  (* back edges, grouped by header *)
  let back_edges = ref [] in
  Imap.iter
    (fun l b ->
      List.iter
        (fun s -> if Dom.dominates dom s l then back_edges := (l, s) :: !back_edges)
        (successors b.b_term))
    fn.fn_blocks;
  let by_header = Dce_support.Listx.group_by snd !back_edges in
  let loops =
    List.map
      (fun (header, edges) ->
        let latches = List.map fst edges in
        (* body: header plus everything that reaches a latch without passing
           through the header *)
        let body = ref (Iset.singleton header) in
        let work = Queue.create () in
        List.iter
          (fun latch ->
            if not (Iset.mem latch !body) then begin
              body := Iset.add latch !body;
              Queue.add latch work
            end)
          latches;
        while not (Queue.is_empty work) do
          let l = Queue.pop work in
          List.iter
            (fun p ->
              if not (Iset.mem p !body) then begin
                body := Iset.add p !body;
                Queue.add p work
              end)
            (Option.value ~default:[] (Imap.find_opt l preds))
        done;
        let exits = ref [] in
        Iset.iter
          (fun l ->
            List.iter
              (fun s -> if not (Iset.mem s !body) then exits := (l, s) :: !exits)
              (successors (block fn l).b_term))
          !body;
        { header; latches = List.sort_uniq compare latches; body = !body; exits = List.rev !exits })
      by_header
  in
  List.sort (fun a b -> compare (Iset.cardinal a.body) (Iset.cardinal b.body)) loops

let loop_depth fn =
  let loops = natural_loops fn in
  Imap.fold
    (fun l _ acc ->
      let depth = List.length (List.filter (fun lp -> Iset.mem l lp.body) loops) in
      Imap.add l depth acc)
    fn.fn_blocks Imap.empty
