open Ir

type t = {
  entry : label;
  idoms : label Imap.t;          (* block -> immediate dominator (entry absent) *)
  kids : label list Imap.t;
  frontiers : label list Imap.t;
}

let compute fn =
  let rpo = Cfg.reverse_postorder fn in
  let rpo_index = List.mapi (fun i l -> (l, i)) rpo in
  let index = List.fold_left (fun m (l, i) -> Imap.add l i m) Imap.empty rpo_index in
  let preds_all = Cfg.predecessors fn in
  let reach = Cfg.reachable fn in
  let preds l =
    match Imap.find_opt l preds_all with
    | Some ps -> List.filter (fun p -> Iset.mem p reach) ps
    | None -> []
  in
  (* idom as a mutable map keyed by rpo index *)
  let n = List.length rpo in
  let order = Array.of_list rpo in
  let idom = Array.make n (-1) in
  let entry_idx = 0 in
  idom.(entry_idx) <- entry_idx;
  let idx l = Imap.find l index in
  let rec intersect a b =
    if a = b then a
    else if a > b then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let l = order.(i) in
      let ps = preds l in
      let processed = List.filter (fun p -> idom.(idx p) >= 0) ps in
      match processed with
      | [] -> ()
      | first :: rest ->
        let new_idom =
          List.fold_left
            (fun acc p -> intersect acc (idx p))
            (idx first) rest
        in
        if idom.(i) <> new_idom then begin
          idom.(i) <- new_idom;
          changed := true
        end
    done
  done;
  let idoms =
    List.fold_left
      (fun m (l, i) -> if i = entry_idx then m else Imap.add l order.(idom.(i)) m)
      Imap.empty rpo_index
  in
  let kids =
    Imap.fold
      (fun child parent m ->
        let existing = Option.value ~default:[] (Imap.find_opt parent m) in
        Imap.add parent (child :: existing) m)
      idoms Imap.empty
    |> Imap.map (List.sort_uniq compare)
  in
  (* dominance frontiers *)
  let frontiers = ref Imap.empty in
  let add_frontier l x =
    let existing = Option.value ~default:[] (Imap.find_opt l !frontiers) in
    if not (List.mem x existing) then frontiers := Imap.add l (x :: existing) !frontiers
  in
  List.iter
    (fun l ->
      let ps = preds l in
      if List.length ps >= 2 then
        match Imap.find_opt l idoms with
        | None -> () (* entry block: no frontier contributions via idom walk *)
        | Some stop ->
          List.iter
            (fun p ->
              let rec walk runner =
                if runner <> stop then begin
                  add_frontier runner l;
                  match Imap.find_opt runner idoms with
                  | Some up -> walk up
                  | None -> () (* reached entry *)
                end
              in
              walk p)
            ps)
    rpo;
  {
    entry = fn.fn_entry;
    idoms;
    kids;
    frontiers = Imap.map (List.sort_uniq compare) !frontiers;
  }

let idom t l = Imap.find_opt l t.idoms

let rec dominates t a b =
  if a = b then true
  else
    match Imap.find_opt b t.idoms with
    | Some parent -> dominates t a parent
    | None -> false

let strictly_dominates t a b = a <> b && dominates t a b

let children t l = Option.value ~default:[] (Imap.find_opt l t.kids)

let frontier t l = Option.value ~default:[] (Imap.find_opt l t.frontiers)

let dom_tree_preorder t =
  let acc = ref [] in
  let rec walk l =
    acc := l :: !acc;
    List.iter walk (children t l)
  in
  walk t.entry;
  List.rev !acc
