(** Control-flow-graph queries over {!Ir.func}.

    All results are computed fresh from the function (no caching), so they are
    always consistent with the blocks passed in; passes recompute them after
    mutation. *)

val predecessors : Ir.func -> Ir.label list Ir.Imap.t
(** Map from each block to its predecessor labels (in increasing label
    order). Blocks with no predecessors map to [[]]. *)

val reachable : Ir.func -> Ir.Iset.t
(** Labels reachable from the entry block. *)

val reverse_postorder : Ir.func -> Ir.label list
(** Reverse postorder of the reachable blocks, starting at the entry. *)

val postorder : Ir.func -> Ir.label list

val edge_count : Ir.func -> int
(** Number of CFG edges between reachable blocks (parallel edges counted
    once). *)

val remove_unreachable_blocks : Ir.func -> Ir.func
(** Drops blocks not reachable from the entry and removes the corresponding
    arguments from phi nodes in the remaining blocks. Phis left with a single
    argument are rewritten to plain copies. *)

val prune_phi_args : Ir.func -> Ir.func
(** Drops phi arguments whose predecessor edge no longer exists (passes that
    fold branches to jumps call this to restore the phi/CFG invariant).
    Single-argument phis become copies, re-ordered below the remaining phis
    so the phis-first block invariant holds. *)

val normalize_phi_prefix : Ir.block -> Ir.block
(** Stable-partitions instructions so phis form the block prefix again —
    required after converting individual phis to plain copies. *)
