(** Natural-loop detection (back edges to a dominating header).

    Used by the loop passes: full unrolling, unswitching, and the vectorizer
    model. Back edges whose target does not dominate the source (irreducible
    control flow) are ignored; MiniC lowering only produces reducible CFGs. *)

type loop = {
  header : Ir.label;
  latches : Ir.label list;     (** sources of back edges to [header] *)
  body : Ir.Iset.t;            (** all blocks in the loop, including header *)
  exits : (Ir.label * Ir.label) list;
      (** edges (from-inside, to-outside) leaving the loop *)
}

val natural_loops : Ir.func -> loop list
(** All natural loops, loops with the same header merged, innermost first
    (ordered by increasing body size). *)

val loop_depth : Ir.func -> int Ir.Imap.t
(** Nesting depth per block (0 = not in any loop). *)
