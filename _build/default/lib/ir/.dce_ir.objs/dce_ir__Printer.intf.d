lib/ir/printer.mli: Ir
