lib/ir/printer.ml: Array Buffer Dce_minic Imap Ir List Printf String
