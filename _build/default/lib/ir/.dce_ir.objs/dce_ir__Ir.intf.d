lib/ir/ir.mli: Dce_minic Map Set
