lib/ir/validate.ml: Array Cfg Hashtbl Imap Ir List Option Printer Printf String
