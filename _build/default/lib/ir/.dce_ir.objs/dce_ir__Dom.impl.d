lib/ir/dom.ml: Array Cfg Imap Ir Iset List Option
