lib/ir/ssa.ml: Cfg Dom Hashtbl Imap Ir Iset List Map Option Printf Queue Validate
