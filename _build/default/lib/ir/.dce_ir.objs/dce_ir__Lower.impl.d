lib/ir/lower.ml: Array Dce_minic Hashtbl Imap Ir List Option Printf
