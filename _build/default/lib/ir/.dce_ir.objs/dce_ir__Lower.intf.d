lib/ir/lower.mli: Dce_minic Ir
