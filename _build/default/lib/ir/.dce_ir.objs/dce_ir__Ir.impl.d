lib/ir/ir.ml: Dce_minic Int List Map Set
