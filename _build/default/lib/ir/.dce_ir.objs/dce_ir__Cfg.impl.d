lib/ir/cfg.ml: Hashtbl Imap Ir Iset List Option
