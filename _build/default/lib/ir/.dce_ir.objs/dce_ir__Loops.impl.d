lib/ir/loops.ml: Cfg Dce_support Dom Imap Ir Iset List Option Queue
