lib/ir/loops.mli: Ir
