(** Textual dump of the IR, for debugging, tests, and the CLI's [--dump-ir].

    Registers print as [%<id>] (with their name hint when available, e.g.
    [%3.x]); labels as [L<id>]. The format is stable and used in golden
    tests. *)

val operand_to_string : Ir.func -> Ir.operand -> string
val rvalue_to_string : Ir.func -> Ir.rvalue -> string
val instr_to_string : Ir.func -> Ir.instr -> string
val terminator_to_string : Ir.func -> Ir.terminator -> string
val func_to_string : Ir.func -> string
val program_to_string : Ir.program -> string
