open Ir
module Ops = Dce_minic.Ops

let var_to_string fn v =
  match Imap.find_opt v fn.fn_var_names with
  | Some name -> Printf.sprintf "%%%d.%s" v name
  | None -> Printf.sprintf "%%%d" v

let operand_to_string fn = function
  | Const n -> string_of_int n
  | Reg v -> var_to_string fn v

let label_to_string l = "L" ^ string_of_int l

let rvalue_to_string fn rv =
  let op = operand_to_string fn in
  match rv with
  | Op a -> op a
  | Unary (u, a) -> Printf.sprintf "%s%s" (Ops.unop_symbol u) (op a)
  | Binary (b, x, y) -> Printf.sprintf "%s %s %s" (op x) (Ops.binop_symbol b) (op y)
  | Addr (s, off) -> Printf.sprintf "&%s[%s]" s (op off)
  | Ptradd (p, off) -> Printf.sprintf "ptradd %s, %s" (op p) (op off)
  | Load a -> Printf.sprintf "load %s" (op a)
  | Phi args ->
    let parts = List.map (fun (l, a) -> Printf.sprintf "[%s: %s]" (label_to_string l) (op a)) args in
    "phi " ^ String.concat " " parts

let instr_to_string fn = function
  | Def (v, rv) -> Printf.sprintf "%s = %s" (var_to_string fn v) (rvalue_to_string fn rv)
  | Store (a, v) ->
    Printf.sprintf "store %s, %s" (operand_to_string fn a) (operand_to_string fn v)
  | Call (None, name, args) ->
    Printf.sprintf "call %s(%s)" name (String.concat ", " (List.map (operand_to_string fn) args))
  | Call (Some v, name, args) ->
    Printf.sprintf "%s = call %s(%s)" (var_to_string fn v) name
      (String.concat ", " (List.map (operand_to_string fn) args))
  | Marker n -> Printf.sprintf "marker %d" n

let terminator_to_string fn = function
  | Jmp l -> "jmp " ^ label_to_string l
  | Br (c, lt, lf) ->
    Printf.sprintf "br %s, %s, %s" (operand_to_string fn c) (label_to_string lt)
      (label_to_string lf)
  | Switch (c, cases, dflt) ->
    let parts = List.map (fun (k, l) -> Printf.sprintf "%d: %s" k (label_to_string l)) cases in
    Printf.sprintf "switch %s [%s] default %s" (operand_to_string fn c)
      (String.concat ", " parts) (label_to_string dflt)
  | Ret None -> "ret"
  | Ret (Some a) -> "ret " ^ operand_to_string fn a

let func_to_string fn =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%sfunc %s(%s)%s {\n"
       (if fn.fn_static then "static " else "")
       fn.fn_name
       (String.concat ", " (List.map (var_to_string fn) fn.fn_params))
       (if fn.fn_returns_value then " : int" else ""));
  Imap.iter
    (fun l b ->
      Buffer.add_string buf (Printf.sprintf "%s%s:\n" (label_to_string l)
                               (if l = fn.fn_entry then " (entry)" else ""));
      List.iter
        (fun i -> Buffer.add_string buf (Printf.sprintf "  %s\n" (instr_to_string fn i)))
        b.b_instrs;
      Buffer.add_string buf (Printf.sprintf "  %s\n" (terminator_to_string fn b.b_term)))
    fn.fn_blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let symbol_to_string (s : symbol) =
  let init =
    Array.to_list s.sym_init
    |> List.map (function
         | Cint n -> string_of_int n
         | Caddr (sym, off) -> Printf.sprintf "&%s[%d]" sym off)
    |> String.concat ", "
  in
  let kind = match s.sym_kind with `Global -> "global" | `Frame fname -> "frame(" ^ fname ^ ")" in
  Printf.sprintf "%s%s %s[%d] = {%s}\n"
    (if s.sym_static then "static " else "")
    kind s.sym_name s.sym_size init

let program_to_string prog =
  let buf = Buffer.create 1024 in
  List.iter (fun (name, arity) -> Buffer.add_string buf (Printf.sprintf "extern %s/%d\n" name arity)) prog.prog_externs;
  List.iter (fun s -> Buffer.add_string buf (symbol_to_string s)) prog.prog_syms;
  List.iter (fun fn -> Buffer.add_string buf ("\n" ^ func_to_string fn)) prog.prog_funcs;
  Buffer.contents buf
