(** Lowering from MiniC ASTs to the CFG IR.

    The output is the {e pre-SSA} form: registers may be defined multiple
    times and no phi nodes exist.  This is the form the reference interpreter
    executes and the form {!Ssa.construct} consumes.

    Lowering decisions (documented because several passes rely on them):
    - every register-allocated local is zero-defined in the entry block, so
      every use has a reaching definition (MiniC locals are zero-initialized);
    - locals whose address is taken, and all local arrays, become frame
      symbols ([`Frame fn]) accessed through [Addr]/[Load]/[Store];
    - short-circuit [&&]/[||] become control flow (fresh blocks);
    - array-typed names decay to [Addr (sym, 0)] when read as values;
    - falling off the end of a value-returning function returns 0 (total
      semantics), and [switch] cases implicitly break. *)

val program : Dce_minic.Ast.program -> Ir.program
(** Lowers a checked program. Raises [Failure] on constructs the type checker
    should have rejected (internal error). *)

val func_entry_marker_blocks : Ir.func -> (int * Ir.label) list
(** For each marker in the function, the label of the block containing it
    (used to map markers back to CFG blocks). *)
