open Ir

type mode = Pre_ssa | Ssa

let func mode fn =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  if not (Imap.mem fn.fn_entry fn.fn_blocks) then err "entry block L%d missing" fn.fn_entry;
  (* collect definitions *)
  let defs = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace defs v 1) fn.fn_params;
  Imap.iter
    (fun l b ->
      List.iter
        (fun i ->
          match def_of_instr i with
          | Some v ->
            let prev = Option.value ~default:0 (Hashtbl.find_opt defs v) in
            Hashtbl.replace defs v (prev + 1);
            if mode = Ssa && prev > 0 then err "L%d: register %%%d defined more than once" l v
          | None -> ())
        b.b_instrs)
    fn.fn_blocks;
  let preds = Cfg.predecessors fn in
  Imap.iter
    (fun l b ->
      (* phi placement and shape *)
      let seen_non_phi = ref false in
      List.iter
        (fun i ->
          match i with
          | Def (_, Phi args) ->
            if mode = Pre_ssa then err "L%d: phi in pre-SSA form" l;
            if !seen_non_phi then err "L%d: phi after non-phi instruction" l;
            let ps = Option.value ~default:[] (Imap.find_opt l preds) in
            let arg_labels = List.sort_uniq compare (List.map fst args) in
            if arg_labels <> ps then
              err "L%d: phi predecessors [%s] do not match CFG predecessors [%s]" l
                (String.concat ";" (List.map string_of_int arg_labels))
                (String.concat ";" (List.map string_of_int ps))
          | _ -> seen_non_phi := true)
        b.b_instrs;
      (* uses are defined somewhere *)
      let check_uses uses = List.iter (fun v -> if not (Hashtbl.mem defs v) then err "L%d: use of undefined register %%%d" l v) uses in
      List.iter (fun i -> check_uses (uses_of_instr i)) b.b_instrs;
      check_uses (uses_of_terminator b.b_term);
      (* branch targets exist *)
      List.iter
        (fun target -> if not (Imap.mem target fn.fn_blocks) then err "L%d: dangling branch target L%d" l target)
        (successors b.b_term))
    fn.fn_blocks;
  if !errors = [] then Ok () else Error (List.rev !errors)

let program mode prog =
  let sym_names = Hashtbl.create 32 in
  let errors = ref [] in
  List.iter
    (fun s ->
      if Hashtbl.mem sym_names s.sym_name then
        errors := Printf.sprintf "duplicate symbol %s" s.sym_name :: !errors;
      Hashtbl.replace sym_names s.sym_name ())
    prog.prog_syms;
  List.iter
    (fun s ->
      Array.iter
        (function
          | Caddr (target, _) ->
            if not (Hashtbl.mem sym_names target) then
              errors := Printf.sprintf "symbol %s references unknown symbol %s" s.sym_name target :: !errors
          | Cint _ -> ())
        s.sym_init)
    prog.prog_syms;
  let errors =
    List.fold_left
      (fun acc fn ->
        match func mode fn with
        | Ok () -> acc
        | Error es -> acc @ List.map (fun e -> fn.fn_name ^ ": " ^ e) es)
      (List.rev !errors) prog.prog_funcs
  in
  if errors = [] then Ok () else Error errors

let func_exn mode fn =
  match func mode fn with
  | Ok () -> ()
  | Error es ->
    failwith
      (Printf.sprintf "IR validation failed:\n%s\n%s" (String.concat "\n" es)
         (Printer.func_to_string fn))

let program_exn mode prog =
  match program mode prog with
  | Ok () -> ()
  | Error es -> failwith (Printf.sprintf "IR validation failed:\n%s" (String.concat "\n" es))
