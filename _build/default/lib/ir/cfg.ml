open Ir

let predecessors fn =
  let init = Imap.map (fun _ -> []) fn.fn_blocks in
  let preds =
    Imap.fold
      (fun l b acc ->
        List.fold_left
          (fun acc succ ->
            match Imap.find_opt succ acc with
            | Some ps -> Imap.add succ (l :: ps) acc
            | None -> acc (* dangling edge; caught by Validate *))
          acc (successors b.b_term))
      fn.fn_blocks init
  in
  Imap.map (List.sort_uniq compare) preds

let postorder fn =
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      (match Imap.find_opt l fn.fn_blocks with
       | Some b -> List.iter dfs (successors b.b_term)
       | None -> ());
      order := l :: !order
    end
  in
  dfs fn.fn_entry;
  List.rev !order

let reverse_postorder fn = List.rev (postorder fn)

let reachable fn = List.fold_left (fun acc l -> Iset.add l acc) Iset.empty (postorder fn)

let edge_count fn =
  let reach = reachable fn in
  Imap.fold
    (fun l b acc ->
      if Iset.mem l reach then acc + List.length (successors b.b_term) else acc)
    fn.fn_blocks 0

(* converting some phis to copies can interleave copies among phis; restore
   the phis-first prefix (a stable partition, so relative orders survive).
   Moving a converted copy below the remaining phis is semantically neutral:
   its operand is a predecessor-end value, which no phi of this block can
   redefine under SSA. *)
let normalize_phi_prefix b =
  let is_phi = function Def (_, Phi _) -> true | _ -> false in
  if List.exists is_phi b.b_instrs then
    let phis, rest = List.partition is_phi b.b_instrs in
    { b with b_instrs = phis @ rest }
  else b

let remove_unreachable_blocks fn =
  let reach = reachable fn in
  if Imap.for_all (fun l _ -> Iset.mem l reach) fn.fn_blocks then fn
  else begin
    let blocks = Imap.filter (fun l _ -> Iset.mem l reach) fn.fn_blocks in
    let fix_phi = function
      | Def (v, Phi args) -> (
        match List.filter (fun (p, _) -> Iset.mem p reach) args with
        | [ (_, a) ] -> Def (v, Op a)
        | args -> Def (v, Phi args))
      | i -> i
    in
    let blocks =
      Imap.map
        (fun b -> normalize_phi_prefix { b with b_instrs = List.map fix_phi b.b_instrs })
        blocks
    in
    { fn with fn_blocks = blocks }
  end

let prune_phi_args fn =
  let preds = predecessors fn in
  let blocks =
    Imap.mapi
      (fun l b ->
        let ps = Option.value ~default:[] (Imap.find_opt l preds) in
        let instrs =
          List.map
            (fun i ->
              match i with
              | Def (v, Phi args) -> (
                let args' = List.filter (fun (p, _) -> List.mem p ps) args in
                if List.length args' = List.length args then i
                else
                  match args' with
                  | [ (_, a) ] -> Def (v, Op a)
                  | _ -> Def (v, Phi args'))
              | _ -> i)
            b.b_instrs
        in
        normalize_phi_prefix { b with b_instrs = instrs })
      fn.fn_blocks
  in
  { fn with fn_blocks = blocks }
