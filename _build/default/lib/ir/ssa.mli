(** SSA construction (semi-pruned, via dominance frontiers).

    {!construct} turns the pre-SSA form produced by {!Lower} into SSA: every
    register has a single definition, joins are expressed with [Phi]
    definitions at block heads.  Unreachable blocks are removed first (they
    cannot be renamed meaningfully).

    Frame symbols are unaffected — memory never enters SSA; the memory
    optimizations (store-to-load forwarding, DSE) handle it instead, which is
    exactly the split real compilers use (mem2reg having been subsumed by the
    register/frame classification in {!Lower}). *)

val construct : Ir.func -> Ir.func
(** Raises [Failure] on malformed input (validated internally). *)

val construct_program : Ir.program -> Ir.program
