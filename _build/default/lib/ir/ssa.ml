open Ir

module Pair = struct
  type t = int * int

  let compare = compare
end

module Pmap = Map.Make (Pair)

let construct fn =
  let fn = Cfg.remove_unreachable_blocks fn in
  let dom = Dom.compute fn in
  let preds = Cfg.predecessors fn in
  (* 1. definition sites per register *)
  let def_blocks : Iset.t Imap.t ref = ref Imap.empty in
  let add_def v l =
    let existing = Option.value ~default:Iset.empty (Imap.find_opt v !def_blocks) in
    def_blocks := Imap.add v (Iset.add l existing) !def_blocks
  in
  List.iter (fun v -> add_def v fn.fn_entry) fn.fn_params;
  Imap.iter
    (fun l b ->
      List.iter
        (fun i -> match def_of_instr i with Some v -> add_def v l | None -> ())
        b.b_instrs)
    fn.fn_blocks;
  (* 2. semi-pruned "global" registers: used in some block before any local def *)
  let globals = ref Iset.empty in
  Imap.iter
    (fun _ b ->
      let defined_here = ref Iset.empty in
      let note_uses uses =
        List.iter
          (fun v -> if not (Iset.mem v !defined_here) then globals := Iset.add v !globals)
          uses
      in
      List.iter
        (fun i ->
          note_uses (uses_of_instr i);
          match def_of_instr i with
          | Some v -> defined_here := Iset.add v !defined_here
          | None -> ())
        b.b_instrs;
      note_uses (uses_of_terminator b.b_term))
    fn.fn_blocks;
  (* 3. phi placement at iterated dominance frontiers *)
  let phis_at : Iset.t Imap.t ref = ref Imap.empty in (* label -> set of orig vars *)
  Iset.iter
    (fun v ->
      match Imap.find_opt v !def_blocks with
      | None -> ()
      | Some defs ->
        let work = Queue.create () in
        Iset.iter (fun l -> Queue.add l work) defs;
        let placed = ref Iset.empty in
        while not (Queue.is_empty work) do
          let l = Queue.pop work in
          List.iter
            (fun df ->
              if not (Iset.mem df !placed) then begin
                placed := Iset.add df !placed;
                let existing = Option.value ~default:Iset.empty (Imap.find_opt df !phis_at) in
                phis_at := Imap.add df (Iset.add v existing) !phis_at;
                if not (Iset.mem df defs) then Queue.add df work
              end)
            (Dom.frontier dom l)
        done)
    !globals;
  (* 4. renaming *)
  let next = ref fn.fn_next_var in
  let names = ref fn.fn_var_names in
  let fresh_of orig =
    let v = !next in
    incr next;
    (match Imap.find_opt orig fn.fn_var_names with
     | Some hint -> names := Imap.add v hint !names
     | None -> ());
    v
  in
  (* pre-allocate phi result names *)
  let phi_name =
    Imap.fold
      (fun l vars acc -> Iset.fold (fun v acc -> Pmap.add (l, v) (fresh_of v) acc) vars acc)
      !phis_at Pmap.empty
  in
  let phi_args : (label * operand) list Pmap.t ref = ref Pmap.empty in
  let stacks : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let top v =
    match Hashtbl.find_opt stacks v with
    | Some (x :: _) -> Some x
    | Some [] | None -> None
  in
  let push v x =
    Hashtbl.replace stacks v (x :: Option.value ~default:[] (Hashtbl.find_opt stacks v))
  in
  let pop v =
    match Hashtbl.find_opt stacks v with
    | Some (_ :: rest) -> Hashtbl.replace stacks v rest
    | Some [] | None -> failwith "ssa: pop on empty stack"
  in
  (* parameters define themselves at entry *)
  List.iter (fun v -> push v v) fn.fn_params;
  let rename_operand l = function
    | Const n -> Const n
    | Reg v -> (
      match top v with
      | Some x -> Reg x
      | None ->
        failwith
          (Printf.sprintf "ssa: use of %%%d in L%d without reaching definition (%s)" v l
             fn.fn_name))
  in
  let new_blocks = ref Imap.empty in
  let rec walk l =
    let b = block fn l in
    let pushed = ref [] in
    let phi_vars =
      Option.value ~default:Iset.empty (Imap.find_opt l !phis_at) |> Iset.elements
    in
    List.iter
      (fun v ->
        let nv = Pmap.find (l, v) phi_name in
        push v nv;
        pushed := v :: !pushed)
      phi_vars;
    let new_instrs =
      List.map
        (fun i ->
          match i with
          | Def (v, rv) ->
            let rv = map_instr_rvalue l rv in
            let nv = fresh_of v in
            push v nv;
            pushed := v :: !pushed;
            Def (nv, rv)
          | Store (a, x) -> Store (rename_operand l a, rename_operand l x)
          | Call (res, name, args) ->
            let args = List.map (rename_operand l) args in
            let res =
              match res with
              | None -> None
              | Some v ->
                let nv = fresh_of v in
                push v nv;
                pushed := v :: !pushed;
                Some nv
            in
            Call (res, name, args)
          | Marker n -> Marker n)
        b.b_instrs
    in
    let new_term = map_terminator_operands (rename_operand l) b.b_term in
    (* feed phi arguments of successors *)
    List.iter
      (fun s ->
        let s_phi_vars =
          Option.value ~default:Iset.empty (Imap.find_opt s !phis_at) |> Iset.elements
        in
        List.iter
          (fun v ->
            let arg =
              match top v with
              | Some x -> Reg x
              | None -> Const 0 (* variable dead along this edge; any value is fine *)
            in
            let key = (s, v) in
            let existing = Option.value ~default:[] (Pmap.find_opt key !phi_args) in
            phi_args := Pmap.add key ((l, arg) :: existing) !phi_args)
          s_phi_vars)
      (successors new_term);
    new_blocks := Imap.add l { b_instrs = new_instrs; b_term = new_term } !new_blocks;
    List.iter walk (Dom.children dom l);
    List.iter pop !pushed
  and map_instr_rvalue l rv =
    match rv with
    | Phi _ -> failwith "ssa: phi in pre-SSA input"
    | _ -> (
      match
        map_instr_operands (rename_operand l) (Def (0, rv))
      with
      | Def (_, rv') -> rv'
      | _ -> assert false)
  in
  walk fn.fn_entry;
  (* prepend phi definitions, with argument order matching predecessor order *)
  let final_blocks =
    Imap.mapi
      (fun l b ->
        let phi_vars =
          Option.value ~default:Iset.empty (Imap.find_opt l !phis_at) |> Iset.elements
        in
        let ps = Option.value ~default:[] (Imap.find_opt l preds) in
        let phi_defs =
          List.map
            (fun v ->
              let nv = Pmap.find (l, v) phi_name in
              let args = Option.value ~default:[] (Pmap.find_opt (l, v) !phi_args) in
              let arg_for p =
                match List.assoc_opt p args with
                | Some a -> (p, a)
                | None -> (p, Const 0) (* edge from a block where v is dead *)
              in
              Def (nv, Phi (List.map arg_for ps)))
            phi_vars
        in
        { b with b_instrs = phi_defs @ b.b_instrs })
      !new_blocks
  in
  let fn = { fn with fn_blocks = final_blocks; fn_next_var = !next; fn_var_names = !names } in
  Validate.func_exn Validate.Ssa fn;
  fn

let construct_program prog = { prog with prog_funcs = List.map construct prog.prog_funcs }
