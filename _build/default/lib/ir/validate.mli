(** IR well-formedness checker.

    Run after lowering and after every optimization pass in tests (and in the
    pipeline when assertions are enabled) to catch pass bugs early: dangling
    branch targets, phi argument lists inconsistent with actual predecessors,
    uses of never-defined registers, and (in SSA mode) multiple definitions of
    a register. *)

type mode =
  | Pre_ssa  (** multiple definitions allowed, no phis allowed *)
  | Ssa      (** single definition per register, phis must match predecessors *)

val func : mode -> Ir.func -> (unit, string list) result
val program : mode -> Ir.program -> (unit, string list) result

val func_exn : mode -> Ir.func -> unit
(** Raises [Failure] with all diagnostics (and the function dump) joined. *)

val program_exn : mode -> Ir.program -> unit
