(** Code generation from (optionally optimized, SSA or pre-SSA) IR to
    pseudo-assembly.

    Substitution note (see DESIGN.md): real register allocation and
    instruction selection are irrelevant to the technique — only {e which
    call instructions survive} matters — so registers stay virtual ([%v12])
    and each IR instruction maps to one or two pseudo-x86 lines.  Phi
    definitions are lowered to moves at the end of each predecessor, so SSA
    form needs no separate destruction pass.

    Every function in the program is emitted (a compiler that did not remove
    an unreferenced static function still carries its markers in the binary —
    the paper's Listing 9b situation). *)

val func : Dce_ir.Ir.func -> Asm.line list
val program : Dce_ir.Ir.program -> Asm.t
