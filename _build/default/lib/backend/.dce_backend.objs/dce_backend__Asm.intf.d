lib/backend/asm.mli:
