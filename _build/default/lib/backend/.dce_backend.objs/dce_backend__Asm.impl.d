lib/backend/asm.ml: Buffer Dce_minic List String
