lib/backend/codegen.mli: Asm Dce_ir
