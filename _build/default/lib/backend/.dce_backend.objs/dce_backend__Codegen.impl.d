lib/backend/codegen.ml: Asm Dce_ir Dce_minic Imap Ir List Printf
