open Dce_ir
open Ir
module Ops = Dce_minic.Ops

let reg v = Printf.sprintf "%%v%d" v

let operand = function
  | Const n -> Printf.sprintf "$%d" n
  | Reg v -> reg v

let block_label fn l = Printf.sprintf ".L%s_%d" fn.fn_name l

let mnemonic_of_binop = function
  | Ops.Add -> "addq"
  | Ops.Sub -> "subq"
  | Ops.Mul -> "imulq"
  | Ops.Div -> "idivq"
  | Ops.Mod -> "imodq" (* pseudo *)
  | Ops.Shl -> "shlq"
  | Ops.Shr -> "sarq"
  | Ops.Band -> "andq"
  | Ops.Bor -> "orq"
  | Ops.Bxor -> "xorq"
  | Ops.Eq -> "sete"
  | Ops.Ne -> "setne"
  | Ops.Lt -> "setl"
  | Ops.Le -> "setle"
  | Ops.Gt -> "setg"
  | Ops.Ge -> "setge"
  | Ops.Land -> "andq"
  | Ops.Lor -> "orq"

let rvalue_lines dst rv =
  match rv with
  | Op a -> [ Asm.Ins ("movq", [ operand a; dst ]) ]
  | Unary (Ops.Neg, a) -> [ Asm.Ins ("movq", [ operand a; dst ]); Asm.Ins ("negq", [ dst ]) ]
  | Unary (Ops.Bnot, a) -> [ Asm.Ins ("movq", [ operand a; dst ]); Asm.Ins ("notq", [ dst ]) ]
  | Unary (Ops.Lnot, a) ->
    [ Asm.Ins ("testq", [ operand a; operand a ]); Asm.Ins ("sete", [ dst ]) ]
  | Binary (op, a, b) when Ops.is_comparison op ->
    [ Asm.Ins ("cmpq", [ operand b; operand a ]); Asm.Ins (mnemonic_of_binop op, [ dst ]) ]
  | Binary (op, a, b) ->
    [
      Asm.Ins ("movq", [ operand a; dst ]);
      Asm.Ins (mnemonic_of_binop op, [ operand b; dst ]);
    ]
  | Addr (s, off) -> [ Asm.Ins ("leaq", [ Printf.sprintf "%s(,%s,8)" s (operand off); dst ]) ]
  | Ptradd (p, off) ->
    [
      Asm.Ins ("movq", [ operand p; dst ]);
      Asm.Ins ("leaq", [ Printf.sprintf "(%s,%s,8)" dst (operand off); dst ]);
    ]
  | Load p -> [ Asm.Ins ("movq", [ Printf.sprintf "(%s)" (operand p); dst ]) ]
  | Phi _ -> [] (* handled as moves in predecessors *)

let instr_lines i =
  match i with
  | Def (_, Phi _) -> []
  | Def (v, rv) -> rvalue_lines (reg v) rv
  | Store (p, v) -> [ Asm.Ins ("movq", [ operand v; Printf.sprintf "(%s)" (operand p) ]) ]
  | Call (res, name, args) ->
    let arg_moves =
      List.mapi (fun i a -> Asm.Ins ("movq", [ operand a; Printf.sprintf "%%arg%d" i ])) args
    in
    let call = [ Asm.Ins ("callq", [ name ]) ] in
    let res_move =
      match res with
      | Some v -> [ Asm.Ins ("movq", [ "%rax"; reg v ]) ]
      | None -> []
    in
    arg_moves @ call @ res_move
  | Marker n -> [ Asm.Ins ("callq", [ Dce_minic.Ast.marker_name n ]) ]

(* moves realizing the phi assignments of [succ] along the edge [l -> succ] *)
let phi_moves fn l succ =
  match Imap.find_opt succ fn.fn_blocks with
  | None -> []
  | Some b ->
    List.filter_map
      (fun i ->
        match i with
        | Def (v, Phi args) -> (
          match List.assoc_opt l args with
          | Some a -> Some (Asm.Ins ("movq", [ operand a; reg v ]))
          | None -> None)
        | _ -> None)
      b.b_instrs

let terminator_lines fn l term =
  let moves_to target = phi_moves fn l target in
  match term with
  | Jmp target -> moves_to target @ [ Asm.Ins ("jmp", [ block_label fn target ]) ]
  | Br (c, lt, lf) ->
    (* phi moves must happen per edge; emit them before each jump *)
    moves_to lt @ moves_to lf
    @ [
        Asm.Ins ("testq", [ operand c; operand c ]);
        Asm.Ins ("jne", [ block_label fn lt ]);
        Asm.Ins ("jmp", [ block_label fn lf ]);
      ]
  | Switch (c, cases, dflt) ->
    List.concat_map
      (fun (k, target) ->
        moves_to target
        @ [
            Asm.Ins ("cmpq", [ Printf.sprintf "$%d" k; operand c ]);
            Asm.Ins ("je", [ block_label fn target ]);
          ])
      cases
    @ moves_to dflt
    @ [ Asm.Ins ("jmp", [ block_label fn dflt ]) ]
  | Ret None -> [ Asm.Ins ("retq", []) ]
  | Ret (Some a) -> [ Asm.Ins ("movq", [ operand a; "%rax" ]); Asm.Ins ("retq", []) ]

let func fn =
  let header =
    [ Asm.Directive (Printf.sprintf "globl %s" fn.fn_name); Asm.Label fn.fn_name ]
  in
  let body =
    (* entry block first, then the rest in label order *)
    let entry = (fn.fn_entry, block fn fn.fn_entry) in
    let rest = Imap.bindings (Imap.remove fn.fn_entry fn.fn_blocks) in
    List.concat_map
      (fun (l, b) ->
        (Asm.Label (block_label fn l) :: List.concat_map instr_lines b.b_instrs)
        @ terminator_lines fn l b.b_term)
      (entry :: rest)
  in
  header @ body

let program prog =
  let data =
    List.concat_map
      (fun sym ->
        match sym.sym_kind with
        | `Global ->
          [ Asm.Directive (Printf.sprintf "data %s size %d" sym.sym_name sym.sym_size) ]
        | `Frame _ -> [])
      prog.prog_syms
  in
  { Asm.lines = data @ List.concat_map func prog.prog_funcs }
