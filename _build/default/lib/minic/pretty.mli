(** Pretty printer from MiniC ASTs to C-like source text.

    The output parses back with {!Parser} to a structurally equal AST
    (round-trip property, tested in the suite).  Marker statements print as
    calls to their marker function, and a prototype [void DCEMarker<n>(void);]
    is emitted for every marker used, exactly like the instrumented programs
    in the paper. *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string

val program_to_string : Ast.program -> string
(** Full translation unit: extern prototypes, marker prototypes, globals, then
    function definitions. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_program : Format.formatter -> Ast.program -> unit
