(** Semantic validation and normalization of MiniC programs.

    The checker is deliberately lenient about integer/pointer mixing (MiniC is
    dynamically typed at run time; the interpreter traps on genuinely
    nonsensical operations such as dereferencing an integer), but it enforces
    the structural well-formedness every downstream component relies on:
    unique definitions, resolvable names, call arities, array declarators, and
    [break]/[continue] placement.

    Scoping model: locals have {e function scope} — a name declared anywhere
    in a function body refers to one variable for the whole function, and all
    locals are zero-initialized at entry (a declaration with an initializer
    acts as an assignment at its program point).  The checker rejects
    duplicate declarations of the same local name. *)

type error = string
(** Human-readable diagnostic. *)

val check : Ast.program -> (Ast.program, error list) result
(** Validates the program. On success the returned program is normalized:
    call targets that are neither defined functions, declared externs, nor
    markers are added to [p_externs] (implicit declarations, as C compilers
    accept for the paper's [dead()] test cases). *)

val check_exn : Ast.program -> Ast.program
(** Like {!check} but raises [Failure] with all diagnostics joined. *)

val has_main : Ast.program -> bool
(** Whether a [main] function is defined (needed for ground-truth
    execution). *)
