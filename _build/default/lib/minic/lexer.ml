type token =
  | INT of int
  | IDENT of string
  | KINT
  | KVOID
  | KSTATIC
  | KEXTERN
  | KIF
  | KELSE
  | KWHILE
  | KFOR
  | KSWITCH
  | KCASE
  | KDEFAULT
  | KRETURN
  | KBREAK
  | KCONTINUE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | ASSIGN
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | PLUSPLUS
  | MINUSMINUS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | SHL
  | SHR
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | EOF

exception Lex_error of string

let keyword_of_string = function
  | "int" | "char" | "short" | "long" | "unsigned" | "signed" -> Some KINT
  | "void" -> Some KVOID
  | "static" -> Some KSTATIC
  | "extern" -> Some KEXTERN
  | "if" -> Some KIF
  | "else" -> Some KELSE
  | "while" -> Some KWHILE
  | "for" -> Some KFOR
  | "switch" -> Some KSWITCH
  | "case" -> Some KCASE
  | "default" -> Some KDEFAULT
  | "return" -> Some KRETURN
  | "break" -> Some KBREAK
  | "continue" -> Some KCONTINUE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let col = ref 1 in
  let pos = ref 0 in
  let fail msg = raise (Lex_error (Printf.sprintf "%d:%d: %s" !line !col msg)) in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let advance () =
    (if src.[!pos] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr pos
  in
  let emit tok = tokens := (tok, !line, !col) :: !tokens in
  let skip_line () =
    while !pos < n && src.[!pos] <> '\n' do
      advance ()
    done
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance ()
    else if c = '#' then skip_line ()
    else if c = '/' && peek 1 = Some '/' then skip_line ()
    else if c = '/' && peek 1 = Some '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '*' && peek 1 = Some '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then fail "unterminated comment"
    end
    else if is_digit c then begin
      let start = !pos in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        advance ();
        advance ();
        while
          !pos < n
          && (is_digit src.[!pos]
             || (src.[!pos] >= 'a' && src.[!pos] <= 'f')
             || (src.[!pos] >= 'A' && src.[!pos] <= 'F'))
        do
          advance ()
        done
      end
      else
        while !pos < n && is_digit src.[!pos] do
          advance ()
        done;
      (* skip C integer suffixes (L, U, ...) so pasted test cases lex *)
      while !pos < n && (src.[!pos] = 'l' || src.[!pos] = 'L' || src.[!pos] = 'u' || src.[!pos] = 'U') do
        advance ()
      done;
      let text = String.sub src start (!pos - start) in
      let text =
        (* strip suffix characters before conversion *)
        let len = ref (String.length text) in
        while !len > 0 && (match text.[!len - 1] with 'l' | 'L' | 'u' | 'U' -> true | _ -> false) do
          decr len
        done;
        String.sub text 0 !len
      in
      match int_of_string_opt text with
      | Some v -> emit (INT v)
      | None -> fail (Printf.sprintf "bad integer literal %S" text)
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        advance ()
      done;
      let text = String.sub src start (!pos - start) in
      match keyword_of_string text with
      | Some kw -> emit kw
      | None -> emit (IDENT text)
    end
    else begin
      let two tok = advance (); advance (); emit tok in
      let one tok = advance (); emit tok in
      match (c, peek 1) with
      | '<', Some '<' -> two SHL
      | '>', Some '>' -> two SHR
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '=', Some '=' -> two EQ
      | '!', Some '=' -> two NE
      | '&', Some '&' -> two ANDAND
      | '|', Some '|' -> two OROR
      | '+', Some '=' -> two PLUSEQ
      | '-', Some '=' -> two MINUSEQ
      | '*', Some '=' -> two STAREQ
      | '+', Some '+' -> two PLUSPLUS
      | '-', Some '-' -> two MINUSMINUS
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '=', _ -> one ASSIGN
      | '!', _ -> one BANG
      | '&', _ -> one AMP
      | '|', _ -> one PIPE
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '^', _ -> one CARET
      | '~', _ -> one TILDE
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | ':', _ -> one COLON
      | _ -> fail (Printf.sprintf "unexpected character %C" c)
    end
  done;
  emit EOF;
  List.rev !tokens

let token_to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KINT -> "int"
  | KVOID -> "void"
  | KSTATIC -> "static"
  | KEXTERN -> "extern"
  | KIF -> "if"
  | KELSE -> "else"
  | KWHILE -> "while"
  | KFOR -> "for"
  | KSWITCH -> "switch"
  | KCASE -> "case"
  | KDEFAULT -> "default"
  | KRETURN -> "return"
  | KBREAK -> "break"
  | KCONTINUE -> "continue"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | COLON -> ":"
  | ASSIGN -> "="
  | PLUSEQ -> "+="
  | MINUSEQ -> "-="
  | STAREQ -> "*="
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | SHL -> "<<"
  | SHR -> ">>"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | ANDAND -> "&&"
  | OROR -> "||"
  | EOF -> "<eof>"
