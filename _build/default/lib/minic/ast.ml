type typ = Tint | Tptr | Tarr of int

type lvalue = Lvar of string | Lderef of expr | Lindex of string * expr

and expr =
  | Int of int
  | Var of string
  | Unary of Ops.unop * expr
  | Binary of Ops.binop * expr * expr
  | Addr_of of lvalue
  | Deref of expr
  | Index of string * expr
  | Call of string * expr list

type stmt =
  | Sexpr of expr
  | Sdecl of string * typ * expr option
  | Sassign of lvalue * expr
  | Sif of expr * block * block
  | Swhile of expr * block
  | Sfor of stmt option * expr option * stmt option * block
  | Sswitch of expr * (int * block) list * block
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of block
  | Smarker of int

and block = stmt list

type ginit = Gzero | Gint of int | Gints of int list | Gaddr of string * int

type global = { g_name : string; g_typ : typ; g_init : ginit; g_static : bool }
type param = { p_name : string; p_typ : typ }

type func = {
  f_name : string;
  f_params : param list;
  f_ret : typ option;
  f_body : block;
  f_static : bool;
}

type program = {
  p_globals : global list;
  p_funcs : func list;
  p_externs : (string * int) list;
}

let marker_prefix = "DCEMarker"

let marker_name n = marker_prefix ^ string_of_int n

let marker_of_name name =
  let plen = String.length marker_prefix in
  if String.length name > plen && String.sub name 0 plen = marker_prefix then
    int_of_string_opt (String.sub name plen (String.length name - plen))
  else None

let typ_size = function
  | Tint | Tptr -> 1
  | Tarr n -> n

let equal_typ a b =
  match (a, b) with
  | Tint, Tint | Tptr, Tptr -> true
  | Tarr n, Tarr m -> n = m
  | (Tint | Tptr | Tarr _), _ -> false

let rec iter_expr f e =
  f e;
  match e with
  | Int _ | Var _ -> ()
  | Unary (_, e1) | Deref e1 | Index (_, e1) -> iter_expr f e1
  | Binary (_, e1, e2) -> iter_expr f e1; iter_expr f e2
  | Addr_of lv -> iter_lvalue_exprs f lv
  | Call (_, args) -> List.iter (iter_expr f) args

and iter_lvalue_exprs f = function
  | Lvar _ -> ()
  | Lderef e | Lindex (_, e) -> iter_expr f e

let rec iter_stmt f s =
  f s;
  match s with
  | Sexpr _ | Sdecl _ | Sassign _ | Sreturn _ | Sbreak | Scontinue | Smarker _ -> ()
  | Sif (_, bt, bf) -> iter_block f bt; iter_block f bf
  | Swhile (_, b) -> iter_block f b
  | Sfor (init, _, step, b) ->
    Option.iter (iter_stmt f) init;
    Option.iter (iter_stmt f) step;
    iter_block f b
  | Sswitch (_, cases, dflt) ->
    List.iter (fun (_, b) -> iter_block f b) cases;
    iter_block f dflt
  | Sblock b -> iter_block f b

and iter_block f b = List.iter (iter_stmt f) b

let iter_program_stmts f prog = List.iter (fun fn -> iter_block f fn.f_body) prog.p_funcs

let stmt_exprs s =
  match s with
  | Sexpr e -> [ e ]
  | Sdecl (_, _, init) -> Option.to_list init
  | Sassign (lv, e) ->
    let lv_exprs = match lv with Lvar _ -> [] | Lderef e' | Lindex (_, e') -> [ e' ] in
    lv_exprs @ [ e ]
  | Sif (c, _, _) | Swhile (c, _) | Sswitch (c, _, _) -> [ c ]
  | Sfor (_, cond, _, _) -> Option.to_list cond
  | Sreturn e -> Option.to_list e
  | Sbreak | Scontinue | Sblock _ | Smarker _ -> []

let iter_program_exprs f prog =
  iter_program_stmts (fun s -> List.iter (iter_expr f) (stmt_exprs s)) prog

let rec map_block f b = List.concat_map (map_stmt f) b

and map_stmt f s =
  let s =
    match s with
    | Sexpr _ | Sdecl _ | Sassign _ | Sreturn _ | Sbreak | Scontinue | Smarker _ -> s
    | Sif (c, bt, bf) -> Sif (c, map_block f bt, map_block f bf)
    | Swhile (c, b) -> Swhile (c, map_block f b)
    | Sfor (init, cond, step, b) -> Sfor (init, cond, step, map_block f b)
    | Sswitch (c, cases, dflt) ->
      Sswitch (c, List.map (fun (k, b) -> (k, map_block f b)) cases, map_block f dflt)
    | Sblock b -> Sblock (map_block f b)
  in
  f s

let map_program_blocks f prog =
  { prog with p_funcs = List.map (fun fn -> { fn with f_body = f fn.f_body }) prog.p_funcs }

let markers_of_program prog =
  let acc = ref [] in
  iter_program_stmts (function Smarker n -> acc := n :: !acc | _ -> ()) prog;
  List.rev !acc

let max_marker prog = List.fold_left max (-1) (markers_of_program prog)

let stmt_count prog =
  let n = ref 0 in
  iter_program_stmts (fun _ -> incr n) prog;
  !n

let rec expr_size e =
  match e with
  | Int _ | Var _ -> 1
  | Unary (_, e1) | Deref e1 | Index (_, e1) -> 1 + expr_size e1
  | Binary (_, e1, e2) -> 1 + expr_size e1 + expr_size e2
  | Addr_of lv -> 1 + (match lv with Lvar _ -> 0 | Lderef e' | Lindex (_, e') -> expr_size e')
  | Call (_, args) -> List.fold_left (fun acc a -> acc + expr_size a) 1 args

let called_names prog =
  let acc = ref [] in
  iter_program_exprs (function Call (name, _) -> acc := name :: !acc | _ -> ()) prog;
  let markers = ref [] in
  iter_program_stmts (function Smarker n -> markers := marker_name n :: !markers | _ -> ()) prog;
  List.rev !acc @ List.rev !markers

let find_func prog name = List.find_opt (fun f -> f.f_name = name) prog.p_funcs

let pp_typ fmt = function
  | Tint -> Format.pp_print_string fmt "int"
  | Tptr -> Format.pp_print_string fmt "int *"
  | Tarr n -> Format.fprintf fmt "int[%d]" n
