open Ast

(* Precedence levels: binops use Ops.binop_precedence (1..10); prefix unary
   operators bind tighter (11); postfix (index, call) and atoms are 12. *)

let prec_unary = 11

let rec pp_expr_prec ctx fmt e =
  match e with
  | Int n ->
    if n < 0 then (
      (* print negative literals parenthesized so unary minus re-parses *)
      if ctx > prec_unary then Format.fprintf fmt "(%d)" n else Format.fprintf fmt "%d" n)
    else Format.fprintf fmt "%d" n
  | Var x -> Format.pp_print_string fmt x
  | Unary (op, e1) ->
    let doc fmt () = Format.fprintf fmt "%s%a" (Ops.unop_symbol op) (pp_expr_prec prec_unary) e1 in
    if ctx > prec_unary then Format.fprintf fmt "(%a)" doc () else doc fmt ()
  | Binary (op, e1, e2) ->
    let p = Ops.binop_precedence op in
    let doc fmt () =
      Format.fprintf fmt "%a %s %a" (pp_expr_prec p) e1 (Ops.binop_symbol op)
        (pp_expr_prec (p + 1)) e2
    in
    if ctx > p then Format.fprintf fmt "(%a)" doc () else doc fmt ()
  | Addr_of lv ->
    let doc fmt () = Format.fprintf fmt "&%a" pp_lvalue lv in
    if ctx > prec_unary then Format.fprintf fmt "(%a)" doc () else doc fmt ()
  | Deref e1 ->
    let doc fmt () = Format.fprintf fmt "*%a" (pp_expr_prec prec_unary) e1 in
    if ctx > prec_unary then Format.fprintf fmt "(%a)" doc () else doc fmt ()
  | Index (base, idx) -> Format.fprintf fmt "%s[%a]" base (pp_expr_prec 0) idx
  | Call (name, args) ->
    Format.fprintf fmt "%s(%a)" name
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (pp_expr_prec 0))
      args

and pp_lvalue fmt = function
  | Lvar x -> Format.pp_print_string fmt x
  | Lderef e -> Format.fprintf fmt "*%a" (pp_expr_prec prec_unary) e
  | Lindex (base, idx) -> Format.fprintf fmt "%s[%a]" base (pp_expr_prec 0) idx

let pp_expr fmt e = pp_expr_prec 0 fmt e

let pp_decl_typ fmt (name, typ) =
  match typ with
  | Tint -> Format.fprintf fmt "int %s" name
  | Tptr -> Format.fprintf fmt "int *%s" name
  | Tarr n -> Format.fprintf fmt "int %s[%d]" name n

let rec pp_stmt fmt s =
  match s with
  | Sexpr e -> Format.fprintf fmt "%a;" pp_expr e
  | Sdecl (name, typ, init) -> (
    match init with
    | None -> Format.fprintf fmt "%a;" pp_decl_typ (name, typ)
    | Some e -> Format.fprintf fmt "%a = %a;" pp_decl_typ (name, typ) pp_expr e)
  | Sassign (lv, e) -> Format.fprintf fmt "%a = %a;" pp_lvalue lv pp_expr e
  | Sif (c, bt, []) -> Format.fprintf fmt "@[<v 2>if (%a) {%a@]@,}" pp_expr c pp_block_body bt
  | Sif (c, bt, bf) ->
    Format.fprintf fmt "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}" pp_expr c pp_block_body bt
      pp_block_body bf
  | Swhile (c, b) -> Format.fprintf fmt "@[<v 2>while (%a) {%a@]@,}" pp_expr c pp_block_body b
  | Sfor (init, cond, step, b) ->
    let pp_opt_stmt fmt = function
      | None -> ()
      | Some (Sassign (lv, e)) -> Format.fprintf fmt "%a = %a" pp_lvalue lv pp_expr e
      | Some (Sexpr e) -> pp_expr fmt e
      | Some (Sdecl (name, typ, Some e)) -> Format.fprintf fmt "%a = %a" pp_decl_typ (name, typ) pp_expr e
      | Some s -> pp_stmt fmt s
    in
    let pp_opt_expr fmt = function None -> () | Some e -> pp_expr fmt e in
    Format.fprintf fmt "@[<v 2>for (%a; %a; %a) {%a@]@,}" pp_opt_stmt init pp_opt_expr cond
      pp_opt_stmt step pp_block_body b
  | Sswitch (c, cases, dflt) ->
    Format.fprintf fmt "@[<v 2>switch (%a) {" pp_expr c;
    List.iter
      (fun (k, b) -> Format.fprintf fmt "@,@[<v 2>case %d: {%a@]@,}" k pp_block_body b)
      cases;
    Format.fprintf fmt "@,@[<v 2>default: {%a@]@,}" pp_block_body dflt;
    Format.fprintf fmt "@]@,}"
  | Sreturn None -> Format.pp_print_string fmt "return;"
  | Sreturn (Some e) -> Format.fprintf fmt "return %a;" pp_expr e
  | Sbreak -> Format.pp_print_string fmt "break;"
  | Scontinue -> Format.pp_print_string fmt "continue;"
  | Sblock b -> Format.fprintf fmt "@[<v 2>{%a@]@,}" pp_block_body b
  | Smarker n -> Format.fprintf fmt "%s();" (marker_name n)

and pp_block_body fmt b = List.iter (fun s -> Format.fprintf fmt "@,%a" pp_stmt s) b

let pp_global fmt g =
  let static = if g.g_static then "static " else "" in
  match g.g_init with
  | Gzero -> Format.fprintf fmt "%s%a;" static pp_decl_typ (g.g_name, g.g_typ)
  | Gint v ->
    if v < 0 then Format.fprintf fmt "%s%a = (%d);" static pp_decl_typ (g.g_name, g.g_typ) v
    else Format.fprintf fmt "%s%a = %d;" static pp_decl_typ (g.g_name, g.g_typ) v
  | Gints vals ->
    Format.fprintf fmt "%s%a = {%a};" static pp_decl_typ (g.g_name, g.g_typ)
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (fun fmt v -> if v < 0 then Format.fprintf fmt "(%d)" v else Format.pp_print_int fmt v))
      vals
  | Gaddr (sym, 0) -> Format.fprintf fmt "%s%a = &%s;" static pp_decl_typ (g.g_name, g.g_typ) sym
  | Gaddr (sym, k) ->
    Format.fprintf fmt "%s%a = &%s[%d];" static pp_decl_typ (g.g_name, g.g_typ) sym k

let pp_param fmt p =
  match p.p_typ with
  | Tint -> Format.fprintf fmt "int %s" p.p_name
  | Tptr -> Format.fprintf fmt "int *%s" p.p_name
  | Tarr _ -> Format.fprintf fmt "int *%s" p.p_name (* arrays decay; not produced *)

let pp_func fmt f =
  let static = if f.f_static then "static " else "" in
  let ret = match f.f_ret with None -> "void" | Some Tint -> "int" | Some _ -> "int *" in
  let pp_params fmt = function
    | [] -> Format.pp_print_string fmt "void"
    | ps ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
        pp_param fmt ps
  in
  Format.fprintf fmt "@[<v 2>%s%s %s(%a) {%a@]@,}" static ret f.f_name pp_params f.f_params
    pp_block_body f.f_body

let pp_program fmt prog =
  Format.fprintf fmt "@[<v 0>";
  List.iter
    (fun (name, arity) ->
      let params =
        if arity = 0 then "void" else String.concat ", " (List.init arity (fun _ -> "int"))
      in
      Format.fprintf fmt "extern int %s(%s);@," name params)
    prog.p_externs;
  let markers = Dce_support.Listx.uniq (markers_of_program prog) in
  List.iter (fun n -> Format.fprintf fmt "void %s(void);@," (marker_name n)) markers;
  List.iter (fun g -> Format.fprintf fmt "%a@," pp_global g) prog.p_globals;
  List.iter (fun f -> Format.fprintf fmt "@,%a@," pp_func f) prog.p_funcs;
  Format.fprintf fmt "@]"

let to_string pp x = Format.asprintf "%a" pp x
let expr_to_string = to_string pp_expr
let stmt_to_string = to_string pp_stmt
let program_to_string p = to_string pp_program p ^ "\n"
