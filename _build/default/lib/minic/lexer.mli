(** Hand-written lexer for MiniC source text. *)

type token =
  | INT of int
  | IDENT of string
  | KINT        (** [int]; [char], [short], [long], [unsigned] and [signed]
                    also lex to [KINT] — all MiniC integer types are 63-bit *)
  | KVOID
  | KSTATIC
  | KEXTERN
  | KIF
  | KELSE
  | KWHILE
  | KFOR
  | KSWITCH
  | KCASE
  | KDEFAULT
  | KRETURN
  | KBREAK
  | KCONTINUE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | ASSIGN      (** [=] *)
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | PLUSPLUS
  | MINUSMINUS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | SHL
  | SHR
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | EOF

exception Lex_error of string
(** Raised on an unrecognizable character; the message includes line/column. *)

val tokenize : string -> (token * int * int) list
(** [tokenize src] lexes the whole input into (token, line, column) triples,
    ending with [EOF].  Line ([//]) and block comments are skipped; [#]-lines
    (preprocessor directives such as [#include]) are ignored so paper test
    cases can be pasted directly. *)

val token_to_string : token -> string
(** Human-readable token name for error messages. *)
