(** Recursive-descent parser for MiniC.

    The accepted grammar is a practical C subset chosen so that the paper's
    test cases (Listings 1–9) can be pasted with at most cosmetic edits:
    [char]/[short]/[long] lex as [int]; multi-declarator lines
    ([int a, c, *f;]), pointer-to-pointer declarators, compound assignment
    ([x += e]) and statement-level [x++]/[x--] are accepted and desugared.
    Calls to [DCEMarker<n>] parse back to {!Ast.stmt.Smarker} statements. *)

exception Parse_error of string
(** Raised with a line/column-tagged message on malformed input. *)

val parse_program : string -> Ast.program
(** Parses a full translation unit. *)

val parse_expr : string -> Ast.expr
(** Parses a single expression (for tests and the reducer). *)
