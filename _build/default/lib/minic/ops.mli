(** Operators of MiniC and their (total) integer semantics.

    MiniC deliberately has no undefined behaviour: every operator is a total
    function over OCaml's native [int] (63-bit two's complement on 64-bit
    platforms, wrapping on overflow).  Division and modulo by zero evaluate to
    0 and shift counts are masked to 0–62.  The same evaluation functions are
    used by the reference interpreter and by every constant-folding
    optimization pass, so folding can never disagree with execution. *)

type unop =
  | Neg  (** arithmetic negation [-x] *)
  | Lnot (** logical not [!x] (1 when x = 0, else 0) *)
  | Bnot (** bitwise complement [~x] *)

type binop =
  | Add
  | Sub
  | Mul
  | Div (** [x / 0 = 0] *)
  | Mod (** [x mod 0 = 0]; sign follows OCaml's [mod] *)
  | Shl (** shift count masked to 0–62 *)
  | Shr (** arithmetic right shift, count masked to 0–62 *)
  | Band
  | Bor
  | Bxor
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land (** logical and; short-circuit at statement level, strict here *)
  | Lor  (** logical or; short-circuit at statement level, strict here *)

val eval_unop : unop -> int -> int
(** Total evaluation of a unary operator. *)

val eval_binop : binop -> int -> int -> int
(** Total evaluation of a binary operator on integers. Comparison and logical
    operators return 0 or 1. *)

val is_comparison : binop -> bool
(** [Eq | Ne | Lt | Le | Gt | Ge]. *)

val is_logical : binop -> bool
(** [Land | Lor]. *)

val is_commutative : binop -> bool
(** True for operators with [f x y = f y x]. *)

val negate_comparison : binop -> binop option
(** [negate_comparison Lt = Some Ge] etc.; [None] for non-comparisons. *)

val swap_comparison : binop -> binop option
(** [swap_comparison Lt = Some Gt]: operator c' with [x c y = y c' x]. *)

val unop_symbol : unop -> string
(** Source syntax of the operator. *)

val binop_symbol : binop -> string
(** Source syntax of the operator. *)

val binop_precedence : binop -> int
(** C-like precedence level; higher binds tighter. Used by the parser and the
    pretty printer, which must agree (round-trip property). *)

val all_unops : unop list
val all_binops : binop list

val pp_unop : Format.formatter -> unop -> unit
val pp_binop : Format.formatter -> binop -> unit
