lib/minic/ops.mli: Format
