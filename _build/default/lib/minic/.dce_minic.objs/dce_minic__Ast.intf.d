lib/minic/ast.mli: Format Ops
