lib/minic/parser.ml: Array Ast Lexer List Ops Printf
