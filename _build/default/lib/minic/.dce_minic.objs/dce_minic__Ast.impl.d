lib/minic/ast.ml: Format List Ops Option String
