lib/minic/lexer.mli:
