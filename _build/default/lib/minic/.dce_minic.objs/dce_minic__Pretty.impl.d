lib/minic/pretty.ml: Ast Dce_support Format List Ops String
