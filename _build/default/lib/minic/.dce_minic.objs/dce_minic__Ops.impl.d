lib/minic/ops.ml: Format
