type unop = Neg | Lnot | Bnot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land
  | Lor

let bool_int b = if b then 1 else 0

let eval_unop op x =
  match op with
  | Neg -> -x
  | Lnot -> bool_int (x = 0)
  | Bnot -> lnot x

let mask_shift n = n land 62 (* total semantics: shift counts in 0..62 *)

let eval_binop op x y =
  match op with
  | Add -> x + y
  | Sub -> x - y
  | Mul -> x * y
  | Div -> if y = 0 then 0 else x / y
  | Mod -> if y = 0 then 0 else x mod y
  | Shl -> x lsl mask_shift y
  | Shr -> x asr mask_shift y
  | Band -> x land y
  | Bor -> x lor y
  | Bxor -> x lxor y
  | Eq -> bool_int (x = y)
  | Ne -> bool_int (x <> y)
  | Lt -> bool_int (x < y)
  | Le -> bool_int (x <= y)
  | Gt -> bool_int (x > y)
  | Ge -> bool_int (x >= y)
  | Land -> bool_int (x <> 0 && y <> 0)
  | Lor -> bool_int (x <> 0 || y <> 0)

let is_comparison = function
  | Eq | Ne | Lt | Le | Gt | Ge -> true
  | Add | Sub | Mul | Div | Mod | Shl | Shr | Band | Bor | Bxor | Land | Lor -> false

let is_logical = function
  | Land | Lor -> true
  | Add | Sub | Mul | Div | Mod | Shl | Shr | Band | Bor | Bxor | Eq | Ne | Lt | Le | Gt | Ge ->
    false

let is_commutative = function
  | Add | Mul | Band | Bor | Bxor | Eq | Ne | Land | Lor -> true
  | Sub | Div | Mod | Shl | Shr | Lt | Le | Gt | Ge -> false

let negate_comparison = function
  | Eq -> Some Ne
  | Ne -> Some Eq
  | Lt -> Some Ge
  | Le -> Some Gt
  | Gt -> Some Le
  | Ge -> Some Lt
  | Add | Sub | Mul | Div | Mod | Shl | Shr | Band | Bor | Bxor | Land | Lor -> None

let swap_comparison = function
  | Eq -> Some Eq
  | Ne -> Some Ne
  | Lt -> Some Gt
  | Le -> Some Ge
  | Gt -> Some Lt
  | Ge -> Some Le
  | Add | Sub | Mul | Div | Mod | Shl | Shr | Band | Bor | Bxor | Land | Lor -> None

let unop_symbol = function
  | Neg -> "-"
  | Lnot -> "!"
  | Bnot -> "~"

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Shl -> "<<"
  | Shr -> ">>"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Land -> "&&"
  | Lor -> "||"

(* C-like precedence: multiplicative 10, additive 9, shift 8, relational 7,
   equality 6, bitand 5, bitxor 4, bitor 3, logand 2, logor 1. *)
let binop_precedence = function
  | Mul | Div | Mod -> 10
  | Add | Sub -> 9
  | Shl | Shr -> 8
  | Lt | Le | Gt | Ge -> 7
  | Eq | Ne -> 6
  | Band -> 5
  | Bxor -> 4
  | Bor -> 3
  | Land -> 2
  | Lor -> 1

let all_unops = [ Neg; Lnot; Bnot ]

let all_binops =
  [ Add; Sub; Mul; Div; Mod; Shl; Shr; Band; Bor; Bxor; Eq; Ne; Lt; Le; Gt; Ge; Land; Lor ]

let pp_unop fmt op = Format.pp_print_string fmt (unop_symbol op)
let pp_binop fmt op = Format.pp_print_string fmt (binop_symbol op)
