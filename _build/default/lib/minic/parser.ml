open Ast

exception Parse_error of string

type state = { toks : (Lexer.token * int * int) array; mutable pos : int }

let cur st =
  let tok, _, _ = st.toks.(st.pos) in
  tok

let fail st msg =
  let tok, line, col = st.toks.(st.pos) in
  raise
    (Parse_error
       (Printf.sprintf "%d:%d: %s (at %S)" line col msg (Lexer.token_to_string tok)))

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let accept st tok =
  if cur st = tok then begin
    advance st;
    true
  end
  else false

let expect st tok =
  if not (accept st tok) then fail st (Printf.sprintf "expected %S" (Lexer.token_to_string tok))

let expect_ident st =
  match cur st with
  | Lexer.IDENT name ->
    advance st;
    name
  | _ -> fail st "expected identifier"

let expect_int st =
  match cur st with
  | Lexer.INT n ->
    advance st;
    n
  | Lexer.MINUS -> (
    advance st;
    match cur st with
    | Lexer.INT n ->
      advance st;
      -n
    | _ -> fail st "expected integer literal")
  | _ -> fail st "expected integer literal"

(* ---------- expressions (precedence climbing) ---------- *)

let binop_of_token = function
  | Lexer.STAR -> Some Ops.Mul
  | Lexer.SLASH -> Some Ops.Div
  | Lexer.PERCENT -> Some Ops.Mod
  | Lexer.PLUS -> Some Ops.Add
  | Lexer.MINUS -> Some Ops.Sub
  | Lexer.SHL -> Some Ops.Shl
  | Lexer.SHR -> Some Ops.Shr
  | Lexer.LT -> Some Ops.Lt
  | Lexer.LE -> Some Ops.Le
  | Lexer.GT -> Some Ops.Gt
  | Lexer.GE -> Some Ops.Ge
  | Lexer.EQ -> Some Ops.Eq
  | Lexer.NE -> Some Ops.Ne
  | Lexer.AMP -> Some Ops.Band
  | Lexer.CARET -> Some Ops.Bxor
  | Lexer.PIPE -> Some Ops.Bor
  | Lexer.ANDAND -> Some Ops.Land
  | Lexer.OROR -> Some Ops.Lor
  | _ -> None

let lvalue_of_expr st = function
  | Var x -> Lvar x
  | Deref e -> Lderef e
  | Index (base, idx) -> Lindex (base, idx)
  | _ -> fail st "expression is not assignable"

let rec parse_expression st = parse_binary st 1

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_loop = ref true in
  while !continue_loop do
    match binop_of_token (cur st) with
    | Some op when Ops.binop_precedence op >= min_prec ->
      let prec = Ops.binop_precedence op in
      advance st;
      let rhs = parse_binary st (prec + 1) in
      lhs := Binary (op, !lhs, rhs)
    | Some _ | None -> continue_loop := false
  done;
  !lhs

and parse_unary st =
  match cur st with
  | Lexer.MINUS ->
    advance st;
    (match parse_unary st with
     | Int n -> Int (-n)
     | e -> Unary (Ops.Neg, e))
  | Lexer.BANG ->
    advance st;
    Unary (Ops.Lnot, parse_unary st)
  | Lexer.TILDE ->
    advance st;
    Unary (Ops.Bnot, parse_unary st)
  | Lexer.STAR ->
    advance st;
    Deref (parse_unary st)
  | Lexer.AMP ->
    advance st;
    let e = parse_unary st in
    Addr_of (lvalue_of_expr st e)
  | Lexer.LPAREN | Lexer.INT _ | Lexer.IDENT _ -> parse_postfix st
  | _ -> fail st "expected expression"

and parse_postfix st =
  match cur st with
  | Lexer.INT n ->
    advance st;
    Int n
  | Lexer.LPAREN ->
    advance st;
    (* accept and ignore C casts such as "(int)" or pointer casts *)
    (match cur st with
     | Lexer.KINT | Lexer.KVOID ->
       advance st;
       while cur st = Lexer.STAR do
         advance st
       done;
       expect st Lexer.RPAREN;
       parse_unary st
     | _ ->
       let e = parse_expression st in
       expect st Lexer.RPAREN;
       parse_suffixes st e)
  | Lexer.IDENT name ->
    advance st;
    let e =
      match cur st with
      | Lexer.LPAREN ->
        advance st;
        let args =
          if cur st = Lexer.RPAREN then []
          else begin
            let first = parse_expression st in
            let rest = ref [ first ] in
            while accept st Lexer.COMMA do
              rest := parse_expression st :: !rest
            done;
            List.rev !rest
          end
        in
        expect st Lexer.RPAREN;
        Call (name, args)
      | Lexer.LBRACKET ->
        advance st;
        let idx = parse_expression st in
        expect st Lexer.RBRACKET;
        Index (name, idx)
      | _ -> Var name
    in
    parse_suffixes st e
  | _ -> fail st "expected primary expression"

and parse_suffixes _st e =
  (* additional [..] on non-identifier bases is not supported; only a direct
     identifier can be indexed, which matches the MiniC AST *)
  e

(* ---------- statements ---------- *)

let desugar_op_assign lv op rhs =
  let lv_expr =
    match lv with
    | Lvar x -> Var x
    | Lderef e -> Deref e
    | Lindex (b, i) -> Index (b, i)
  in
  Sassign (lv, Binary (op, lv_expr, rhs))

let rec parse_stmt st =
  match cur st with
  | Lexer.SEMI ->
    advance st;
    Sblock []
  | Lexer.LBRACE -> Sblock (parse_braced_block st)
  | Lexer.KIF ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expression st in
    expect st Lexer.RPAREN;
    let bt = parse_stmt_as_block st in
    let bf = if accept st Lexer.KELSE then parse_stmt_as_block st else [] in
    Sif (cond, bt, bf)
  | Lexer.KWHILE ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expression st in
    expect st Lexer.RPAREN;
    Swhile (cond, parse_stmt_as_block st)
  | Lexer.KFOR ->
    advance st;
    expect st Lexer.LPAREN;
    let init = if cur st = Lexer.SEMI then None else Some (parse_simple_stmt st) in
    expect st Lexer.SEMI;
    let cond = if cur st = Lexer.SEMI then None else Some (parse_expression st) in
    expect st Lexer.SEMI;
    let step = if cur st = Lexer.RPAREN then None else Some (parse_simple_stmt st) in
    expect st Lexer.RPAREN;
    Sfor (init, cond, step, parse_stmt_as_block st)
  | Lexer.KSWITCH ->
    advance st;
    expect st Lexer.LPAREN;
    let scrut = parse_expression st in
    expect st Lexer.RPAREN;
    expect st Lexer.LBRACE;
    let cases = ref [] in
    let dflt = ref [] in
    while cur st <> Lexer.RBRACE do
      match cur st with
      | Lexer.KCASE ->
        advance st;
        let k = expect_int st in
        expect st Lexer.COLON;
        cases := (k, parse_case_body st) :: !cases
      | Lexer.KDEFAULT ->
        advance st;
        expect st Lexer.COLON;
        dflt := parse_case_body st
      | _ -> fail st "expected case or default"
    done;
    expect st Lexer.RBRACE;
    Sswitch (scrut, List.rev !cases, !dflt)
  | Lexer.KRETURN ->
    advance st;
    if accept st Lexer.SEMI then Sreturn None
    else begin
      let e = parse_expression st in
      expect st Lexer.SEMI;
      Sreturn (Some e)
    end
  | Lexer.KBREAK ->
    advance st;
    expect st Lexer.SEMI;
    Sbreak
  | Lexer.KCONTINUE ->
    advance st;
    expect st Lexer.SEMI;
    Scontinue
  | _ ->
    let s = parse_simple_stmt st in
    expect st Lexer.SEMI;
    s

(* a simple statement: declaration, assignment, or expression; no trailing ';' *)
and parse_simple_stmt st =
  match cur st with
  | Lexer.KINT | Lexer.KVOID -> parse_local_decl st
  | _ -> (
    let e = parse_expression st in
    match cur st with
    | Lexer.ASSIGN ->
      advance st;
      let rhs = parse_expression st in
      Sassign (lvalue_of_expr st e, rhs)
    | Lexer.PLUSEQ ->
      advance st;
      let rhs = parse_expression st in
      desugar_op_assign (lvalue_of_expr st e) Ops.Add rhs
    | Lexer.MINUSEQ ->
      advance st;
      let rhs = parse_expression st in
      desugar_op_assign (lvalue_of_expr st e) Ops.Sub rhs
    | Lexer.STAREQ ->
      advance st;
      let rhs = parse_expression st in
      desugar_op_assign (lvalue_of_expr st e) Ops.Mul rhs
    | Lexer.PLUSPLUS ->
      advance st;
      desugar_op_assign (lvalue_of_expr st e) Ops.Add (Int 1)
    | Lexer.MINUSMINUS ->
      advance st;
      desugar_op_assign (lvalue_of_expr st e) Ops.Sub (Int 1)
    | _ -> (
      match e with
      | Call (name, []) -> (
        match marker_of_name name with
        | Some n -> Smarker n
        | None -> Sexpr e)
      | _ -> Sexpr e))

and parse_local_decl st =
  advance st (* type keyword *);
  let ptr = ref false in
  while accept st Lexer.STAR do
    ptr := true
  done;
  let name = expect_ident st in
  if accept st Lexer.LBRACKET then begin
    let size = expect_int st in
    expect st Lexer.RBRACKET;
    Sdecl (name, Tarr size, None)
  end
  else begin
    let typ = if !ptr then Tptr else Tint in
    if accept st Lexer.ASSIGN then Sdecl (name, typ, Some (parse_expression st))
    else Sdecl (name, typ, None)
  end

and parse_stmt_as_block st =
  match parse_stmt st with
  | Sblock b -> b
  | s -> [ s ]

and parse_braced_block st =
  expect st Lexer.LBRACE;
  let stmts = ref [] in
  while cur st <> Lexer.RBRACE do
    (* multi-declarator local lines: int a, b = 1, *c; *)
    match cur st with
    | Lexer.KINT ->
      let decls = parse_multi_decl st in
      stmts := List.rev_append decls !stmts
    | _ -> stmts := parse_stmt st :: !stmts
  done;
  expect st Lexer.RBRACE;
  List.rev !stmts

and parse_multi_decl st =
  advance st (* 'int' *);
  let decls = ref [] in
  let parse_one () =
    let ptr = ref false in
    while accept st Lexer.STAR do
      ptr := true
    done;
    let name = expect_ident st in
    if accept st Lexer.LBRACKET then begin
      let size = expect_int st in
      expect st Lexer.RBRACKET;
      decls := Sdecl (name, Tarr size, None) :: !decls
    end
    else begin
      let typ = if !ptr then Tptr else Tint in
      if accept st Lexer.ASSIGN then decls := Sdecl (name, typ, Some (parse_expression st)) :: !decls
      else decls := Sdecl (name, typ, None) :: !decls
    end
  in
  parse_one ();
  while accept st Lexer.COMMA do
    parse_one ()
  done;
  expect st Lexer.SEMI;
  List.rev !decls

and parse_case_body st =
  let stmts = ref [] in
  let rec loop () =
    match cur st with
    | Lexer.KCASE | Lexer.KDEFAULT | Lexer.RBRACE -> ()
    | Lexer.KBREAK ->
      (* MiniC cases implicitly break; a trailing break is accepted, redundant *)
      advance st;
      expect st Lexer.SEMI;
      loop ()
    | _ ->
      stmts := parse_stmt st :: !stmts;
      loop ()
  in
  loop ();
  (* a case body written as a single braced block is that block, not a
     nested block statement (keeps printing/parsing idempotent) *)
  match List.rev !stmts with
  | [ Sblock b ] -> b
  | body -> body

(* ---------- top level ---------- *)

type accum = {
  mutable globals : global list;
  mutable funcs : func list;
  mutable externs : (string * int) list;
}

let ginit_of_expr st = function
  | Int n -> Gint n
  | Unary (Ops.Neg, Int n) -> Gint (-n)
  | Addr_of (Lvar s) -> Gaddr (s, 0)
  | Addr_of (Lindex (s, Int k)) -> Gaddr (s, k)
  | _ -> fail st "global initializer must be a constant or an address constant"

let parse_array_init st =
  expect st Lexer.LBRACE;
  let vals = ref [] in
  if cur st <> Lexer.RBRACE then begin
    vals := [ expect_int st ];
    while accept st Lexer.COMMA do
      vals := expect_int st :: !vals
    done
  end;
  expect st Lexer.RBRACE;
  Gints (List.rev !vals)

let parse_params st =
  expect st Lexer.LPAREN;
  if accept st Lexer.RPAREN then []
  else if cur st = Lexer.KVOID then begin
    advance st;
    expect st Lexer.RPAREN;
    []
  end
  else begin
    let params = ref [] in
    let parse_param () =
      (match cur st with
       | Lexer.KINT ->
         advance st
       | _ -> fail st "expected parameter type");
      let ptr = ref false in
      while accept st Lexer.STAR do
        ptr := true
      done;
      let name =
        match cur st with
        | Lexer.IDENT n ->
          advance st;
          n
        | _ -> "_anon" ^ string_of_int (List.length !params)
      in
      params := { p_name = name; p_typ = (if !ptr then Tptr else Tint) } :: !params
    in
    parse_param ();
    while accept st Lexer.COMMA do
      parse_param ()
    done;
    expect st Lexer.RPAREN;
    List.rev !params
  end

let record_extern acc name arity =
  match marker_of_name name with
  | Some _ -> () (* marker prototypes are implicit *)
  | None -> if not (List.mem_assoc name acc.externs) then acc.externs <- (name, arity) :: acc.externs

let parse_topdecl st acc =
  let is_extern = accept st Lexer.KEXTERN in
  let is_static = accept st Lexer.KSTATIC in
  let is_void = cur st = Lexer.KVOID in
  (match cur st with
   | Lexer.KINT | Lexer.KVOID -> advance st
   | _ -> fail st "expected type at top level");
  let ret_ptr = ref false in
  while accept st Lexer.STAR do
    ret_ptr := true
  done;
  let name = expect_ident st in
  match cur st with
  | Lexer.LPAREN ->
    let params = parse_params st in
    if accept st Lexer.SEMI then record_extern acc name (List.length params)
    else begin
      let body = parse_braced_block st in
      let f_ret = if is_void then None else if !ret_ptr then Some Tptr else Some Tint in
      acc.funcs <- { f_name = name; f_params = params; f_ret; f_body = body; f_static = is_static } :: acc.funcs
    end
  | _ ->
    if is_void then fail st "void variables are not allowed";
    (* one or more global declarators: int a = 0, *p = &a, b[2] = {0,0}; *)
    let parse_declarator first_name first_ptr =
      let name, is_ptr =
        match first_name with
        | Some n -> (n, first_ptr)
        | None ->
          let ptr = ref false in
          while accept st Lexer.STAR do
            ptr := true
          done;
          (expect_ident st, !ptr)
      in
      if accept st Lexer.LBRACKET then begin
        let size = expect_int st in
        expect st Lexer.RBRACKET;
        let init = if accept st Lexer.ASSIGN then parse_array_init st else Gzero in
        acc.globals <-
          { g_name = name; g_typ = Tarr size; g_init = init; g_static = is_static && not is_extern }
          :: acc.globals
      end
      else begin
        let typ = if is_ptr then Tptr else Tint in
        let init =
          if accept st Lexer.ASSIGN then ginit_of_expr st (parse_expression st) else Gzero
        in
        acc.globals <- { g_name = name; g_typ = typ; g_init = init; g_static = is_static } :: acc.globals
      end
    in
    parse_declarator (Some name) !ret_ptr;
    while accept st Lexer.COMMA do
      parse_declarator None false
    done;
    expect st Lexer.SEMI

let parse_program src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let acc = { globals = []; funcs = []; externs = [] } in
  while cur st <> Lexer.EOF do
    parse_topdecl st acc
  done;
  { p_globals = List.rev acc.globals; p_funcs = List.rev acc.funcs; p_externs = List.rev acc.externs }

let parse_expr src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let e = parse_expression st in
  if cur st <> Lexer.EOF then fail st "trailing tokens after expression";
  e
