open Ast

type error = string

type env = {
  globals : (string, typ) Hashtbl.t;
  funcs : (string, func) Hashtbl.t;
  externs : (string, int) Hashtbl.t;
  mutable implicit_externs : (string * int) list;
  mutable errors : error list;
}

let add_error env fmt = Printf.ksprintf (fun msg -> env.errors <- msg :: env.errors) fmt

let collect_locals env fn =
  let locals = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if Hashtbl.mem locals p.p_name then
        add_error env "%s: duplicate parameter %s" fn.f_name p.p_name;
      Hashtbl.replace locals p.p_name p.p_typ)
    fn.f_params;
  iter_block
    (function
      | Sdecl (name, typ, _) ->
        if Hashtbl.mem locals name then
          add_error env "%s: duplicate local declaration of %s" fn.f_name name;
        Hashtbl.replace locals name typ
      | _ -> ())
    fn.f_body;
  locals

let var_typ env locals name =
  match Hashtbl.find_opt locals name with
  | Some t -> Some t
  | None -> Hashtbl.find_opt env.globals name

let check_call env fn name nargs =
  match marker_of_name name with
  | Some _ ->
    if nargs <> 0 then add_error env "%s: marker call %s takes no arguments" fn.f_name name
  | None -> (
    match Hashtbl.find_opt env.funcs name with
    | Some callee ->
      if List.length callee.f_params <> nargs then
        add_error env "%s: call to %s with %d arguments, expected %d" fn.f_name name nargs
          (List.length callee.f_params)
    | None -> (
      match Hashtbl.find_opt env.externs name with
      | Some arity ->
        if arity <> nargs then
          add_error env "%s: call to extern %s with %d arguments, expected %d" fn.f_name name
            nargs arity
      | None ->
        (* implicit declaration, normalized into p_externs *)
        if not (List.mem_assoc name env.implicit_externs) then
          env.implicit_externs <- (name, nargs) :: env.implicit_externs;
        Hashtbl.replace env.externs name nargs))

let rec check_expr env fn locals e =
  match e with
  | Int _ -> ()
  | Var name ->
    (match var_typ env locals name with
     | Some _ -> ()
     | None -> add_error env "%s: undeclared variable %s" fn.f_name name)
  | Unary (_, e1) -> check_expr env fn locals e1
  | Binary (_, e1, e2) ->
    check_expr env fn locals e1;
    check_expr env fn locals e2
  | Addr_of lv -> check_lvalue env fn locals lv
  | Deref e1 -> check_expr env fn locals e1
  | Index (base, idx) ->
    (match var_typ env locals base with
     | Some (Tarr _ | Tptr) -> ()
     | Some Tint -> add_error env "%s: indexing non-array variable %s" fn.f_name base
     | None -> add_error env "%s: undeclared variable %s" fn.f_name base);
    check_expr env fn locals idx
  | Call (name, args) ->
    check_call env fn name (List.length args);
    List.iter (check_expr env fn locals) args

and check_lvalue env fn locals = function
  | Lvar name -> (
    match var_typ env locals name with
    | Some _ -> ()
    | None -> add_error env "%s: undeclared variable %s" fn.f_name name)
  | Lderef e -> check_expr env fn locals e
  | Lindex (base, idx) ->
    (match var_typ env locals base with
     | Some (Tarr _ | Tptr) -> ()
     | Some Tint -> add_error env "%s: indexing non-array variable %s" fn.f_name base
     | None -> add_error env "%s: undeclared variable %s" fn.f_name base);
    check_expr env fn locals idx

let check_assign env fn locals lv =
  (match lv with
   | Lvar name -> (
     match var_typ env locals name with
     | Some (Tarr _) -> add_error env "%s: cannot assign to array %s" fn.f_name name
     | Some (Tint | Tptr) | None -> ())
   | Lderef _ | Lindex _ -> ());
  check_lvalue env fn locals lv

let rec check_stmt env fn locals ~in_loop ~in_switch s =
  match s with
  | Sexpr e -> check_expr env fn locals e
  | Sdecl (name, typ, init) ->
    (match typ with
     | Tarr n when n <= 0 -> add_error env "%s: array %s has non-positive size" fn.f_name name
     | Tarr _ when init <> None ->
       add_error env "%s: local array %s cannot have an initializer" fn.f_name name
     | Tarr _ | Tint | Tptr -> ());
    Option.iter (check_expr env fn locals) init
  | Sassign (lv, e) ->
    check_assign env fn locals lv;
    check_expr env fn locals e
  | Sif (c, bt, bf) ->
    check_expr env fn locals c;
    check_block env fn locals ~in_loop ~in_switch bt;
    check_block env fn locals ~in_loop ~in_switch bf
  | Swhile (c, b) ->
    check_expr env fn locals c;
    check_block env fn locals ~in_loop:true ~in_switch:false b
  | Sfor (init, cond, step, b) ->
    Option.iter (check_stmt env fn locals ~in_loop ~in_switch) init;
    Option.iter (check_expr env fn locals) cond;
    Option.iter (check_stmt env fn locals ~in_loop ~in_switch) step;
    check_block env fn locals ~in_loop:true ~in_switch:false b
  | Sswitch (c, cases, dflt) ->
    check_expr env fn locals c;
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (k, b) ->
        if Hashtbl.mem seen k then add_error env "%s: duplicate case %d" fn.f_name k;
        Hashtbl.replace seen k ();
        check_block env fn locals ~in_loop ~in_switch:true b)
      cases;
    check_block env fn locals ~in_loop ~in_switch:true dflt
  | Sreturn (Some e) ->
    if fn.f_ret = None then add_error env "%s: returning a value from a void function" fn.f_name;
    check_expr env fn locals e
  | Sreturn None -> ()
  | Sbreak -> if not (in_loop || in_switch) then add_error env "%s: break outside loop/switch" fn.f_name
  | Scontinue -> if not in_loop then add_error env "%s: continue outside loop" fn.f_name
  | Sblock b -> check_block env fn locals ~in_loop ~in_switch b
  | Smarker _ -> ()

and check_block env fn locals ~in_loop ~in_switch b =
  List.iter (check_stmt env fn locals ~in_loop ~in_switch) b

let check_global env g =
  (match g.g_typ with
   | Tarr n when n <= 0 -> add_error env "global array %s has non-positive size" g.g_name
   | Tarr _ | Tint | Tptr -> ());
  match (g.g_typ, g.g_init) with
  | (Tint | Tptr), Gints _ -> add_error env "scalar global %s has array initializer" g.g_name
  | Tarr _, (Gint _ | Gaddr _) -> add_error env "array global %s has scalar initializer" g.g_name
  | Tarr n, Gints vals when List.length vals > n ->
    add_error env "array global %s initializer too long" g.g_name
  | _, Gaddr (sym, _) ->
    if not (Hashtbl.mem env.globals sym) then
      add_error env "global %s initialized with address of unknown symbol %s" g.g_name sym
  | _ -> ()

let check prog =
  let env =
    {
      globals = Hashtbl.create 32;
      funcs = Hashtbl.create 32;
      externs = Hashtbl.create 32;
      implicit_externs = [];
      errors = [];
    }
  in
  List.iter
    (fun g ->
      if Hashtbl.mem env.globals g.g_name then add_error env "duplicate global %s" g.g_name;
      Hashtbl.replace env.globals g.g_name g.g_typ)
    prog.p_globals;
  List.iter
    (fun f ->
      if Hashtbl.mem env.funcs f.f_name then add_error env "duplicate function %s" f.f_name;
      if Hashtbl.mem env.globals f.f_name then
        add_error env "function %s shadows a global" f.f_name;
      Hashtbl.replace env.funcs f.f_name f)
    prog.p_funcs;
  List.iter
    (fun (name, arity) ->
      if Hashtbl.mem env.funcs name then add_error env "extern %s is also defined" name;
      Hashtbl.replace env.externs name arity)
    prog.p_externs;
  List.iter (check_global env) prog.p_globals;
  List.iter
    (fun fn ->
      let locals = collect_locals env fn in
      check_block env fn locals ~in_loop:false ~in_switch:false fn.f_body)
    prog.p_funcs;
  if env.errors = [] then
    Ok { prog with p_externs = prog.p_externs @ List.rev env.implicit_externs }
  else Error (List.rev env.errors)

let check_exn prog =
  match check prog with
  | Ok p -> p
  | Error errs -> failwith (String.concat "\n" errs)

let has_main prog = find_func prog "main" <> None
