lib/interp/interp.ml: Array Char Dce_ir Dce_minic Hashtbl Imap Int64 Ir Iset List Option Printf String
