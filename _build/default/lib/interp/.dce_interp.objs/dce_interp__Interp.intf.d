lib/interp/interp.mli: Dce_ir Hashtbl
