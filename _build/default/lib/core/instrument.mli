(** Optimization-marker instrumentation (step ① of the paper, Figure 1).

    Inserts a [DCEMarker<n>();] call at the head of every source construct
    that roughly corresponds to a basic block — exactly the positions the
    paper's LibTooling instrumenter uses:

    - then-branches and else-branches of [if];
    - [while]/[for] loop bodies;
    - [switch] case bodies and default bodies;
    - the continuation of a function body after a statement whose subtree
      contains a conditional [return] (the "function bodies after conditional
      returns" positions).

    Marker ids are assigned sequentially in syntactic order; instrumenting an
    already-instrumented program is rejected. *)

val program : Dce_minic.Ast.program -> Dce_minic.Ast.program
(** Raises [Invalid_argument] if the program already contains markers. *)

val marker_count : Dce_minic.Ast.program -> int
(** Number of markers in an instrumented program. *)
