module C = Dce_compiler
module F = C.Features

type repair = { repair_name : string; repair_component : string; edit : F.t -> F.t }

type t = { marker : int; diagnosis : repair option; tried : int }

let catalogue =
  [
    {
      repair_name = "gva:flow-sensitive";
      repair_component = "Constant Propagation";
      edit = (fun f -> { f with F.gva = Dce_opt.Gva.Flow_sensitive_if_const });
    };
    {
      repair_name = "addr-cmp:full";
      repair_component = "Peephole Optimizations";
      edit = (fun f -> { f with F.addr_cmp = Dce_opt.Sccp.Cmp_full });
    };
    {
      repair_name = "memcp:edge-aware";
      repair_component = "Pass Management";
      edit = (fun f -> { f with F.memcp = true; memcp_edge_aware = true });
    };
    {
      repair_name = "uniform-arrays";
      repair_component = "Constant Propagation";
      edit = (fun f -> { f with F.uniform_arrays = true });
    };
    {
      repair_name = "alias:full";
      repair_component = "Alias Analysis";
      edit = (fun f -> { f with F.alias = Dce_opt.Alias.Full });
    };
    {
      repair_name = "vectorize:off";
      repair_component = "Loop Transformations";
      edit = (fun f -> { f with F.vectorize = false });
    };
    {
      repair_name = "function-dce:late";
      repair_component = "Pass Management";
      edit = (fun f -> { f with F.function_dce_early = false });
    };
    {
      repair_name = "jump-thread:conservative";
      repair_component = "Jump Threading";
      edit =
        (fun f ->
          { f with F.jump_thread = Dce_opt.Jump_thread.Conservative; jt_phi_cleanup = true });
    };
    {
      repair_name = "unswitch:off";
      repair_component = "Loop Transformations";
      edit = (fun f -> { f with F.unswitch = false });
    };
    {
      repair_name = "vrp:shift-rule";
      repair_component = "Value Propagation";
      edit = (fun f -> { f with F.vrp = true; vrp_shift_rule = true });
    };
    {
      repair_name = "vrp:mod-singleton";
      repair_component = "Value Constraint Analysis";
      edit = (fun f -> { f with F.vrp = true; vrp_mod_singleton = true });
    };
    {
      repair_name = "dse:lifetime";
      repair_component = "SSA Memory Analysis";
      edit = (fun f -> { f with F.dse_strength = 2 });
    };
    {
      repair_name = "inline:larger";
      repair_component = "Inlining";
      edit = (fun f -> { f with F.inline_threshold = (max 30 f.F.inline_threshold) * 4 });
    };
    {
      repair_name = "unroll:larger";
      repair_component = "Loop Transformations";
      edit = (fun f -> { f with F.unroll_trip = (max 8 f.F.unroll_trip) * 4 });
    };
    {
      repair_name = "peephole:full";
      repair_component = "Peephole Optimizations";
      edit = (fun f -> { f with F.peephole_level = 3 });
    };
    {
      repair_name = "summaries:on";
      repair_component = "Interprocedural Analyses";
      edit = (fun f -> { f with F.call_summaries = true });
    };
    {
      repair_name = "ipa-cp:on";
      repair_component = "Interprocedural Analyses";
      edit = (fun f -> { f with F.ipa_cp = true });
    };
    {
      repair_name = "vrp:budget";
      repair_component = "Value Propagation";
      edit = (fun f -> { f with F.vrp = true; vrp_block_limit = 4096 });
    };
    {
      repair_name = "rounds:more";
      repair_component = "Pass Management";
      edit = (fun f -> { f with F.opt_rounds = f.F.opt_rounds + 2 });
    };
  ]

let eliminates feats prog marker =
  let ir = Dce_ir.Lower.program prog in
  let optimized = C.Pipeline.run feats ir in
  let asm = Dce_backend.Codegen.program optimized in
  not (Dce_backend.Asm.marker_survives asm marker)

let run compiler level prog ~marker =
  let base = C.Compiler.features compiler level in
  let rec try_repairs tried = function
    | [] -> { marker; diagnosis = None; tried }
    | r :: rest ->
      if eliminates (r.edit base) prog marker then
        { marker; diagnosis = Some r; tried = tried + 1 }
      else try_repairs (tried + 1) rest
  in
  try_repairs 0 catalogue

let signature t =
  match t.diagnosis with
  | Some r -> r.repair_name
  | None -> "unknown"
