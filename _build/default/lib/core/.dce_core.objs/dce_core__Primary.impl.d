lib/core/primary.ml: Cfg Dce_ir Dce_support Hashtbl Imap Ir Iset List Option
