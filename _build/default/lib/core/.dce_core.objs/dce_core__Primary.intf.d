lib/core/primary.mli: Dce_ir
