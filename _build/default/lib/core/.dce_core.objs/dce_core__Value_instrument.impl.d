lib/core/value_instrument.ml: Dce_interp Dce_ir Dce_minic Dce_support Hashtbl List
