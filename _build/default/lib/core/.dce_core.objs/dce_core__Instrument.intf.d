lib/core/instrument.mli: Dce_minic
