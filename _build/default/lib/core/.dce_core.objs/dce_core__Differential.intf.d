lib/core/differential.mli: Dce_compiler Dce_ir Dce_minic
