lib/core/diagnose.mli: Dce_compiler Dce_minic
