lib/core/analysis.mli: Dce_compiler Dce_ir Dce_minic Ground_truth Primary
