lib/core/analysis.ml: Dce_compiler Dce_ir Dce_minic Differential Ground_truth Instrument List Primary
