lib/core/diagnose.ml: Dce_backend Dce_compiler Dce_ir Dce_opt
