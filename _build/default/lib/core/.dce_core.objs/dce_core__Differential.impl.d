lib/core/differential.ml: Dce_compiler Dce_ir List Printf
