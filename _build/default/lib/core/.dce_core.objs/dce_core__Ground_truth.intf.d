lib/core/ground_truth.mli: Dce_ir Dce_minic Hashtbl
