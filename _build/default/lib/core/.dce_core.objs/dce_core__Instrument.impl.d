lib/core/instrument.ml: Dce_minic List
