lib/core/value_instrument.mli: Dce_minic
