lib/core/ground_truth.ml: Dce_interp Dce_ir Dce_minic Hashtbl List
