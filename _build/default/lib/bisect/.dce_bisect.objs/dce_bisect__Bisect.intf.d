lib/bisect/bisect.mli: Dce_compiler Dce_minic
