lib/bisect/bisect.ml: Dce_compiler Dce_support List
