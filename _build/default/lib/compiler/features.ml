type t = {
  sccp : bool;
  addr_cmp : Dce_opt.Sccp.addr_cmp;
  gva : Dce_opt.Gva.mode;
  sccp_block_limit : int;
  memcp : bool;
  memcp_edge_aware : bool;
  memcp_block_limit : int;
  uniform_arrays : bool;
  call_summaries : bool;
  gvn_cse : bool;
  gvn_forward : bool;
  alias : Dce_opt.Alias.precision;
  dse_strength : int;
  ipa_cp : bool;
  inline_threshold : int;
  function_dce : bool;
  function_dce_early : bool;
  unroll_trip : int;
  unswitch : bool;
  vectorize : bool;
  peephole_level : int;
  vrp : bool;
  vrp_shift_rule : bool;
  vrp_mod_singleton : bool;
  vrp_block_limit : int;
  jump_thread : Dce_opt.Jump_thread.mode;
  jt_phi_cleanup : bool;
  opt_rounds : int;
}

let nothing =
  {
    sccp = false;
    addr_cmp = Dce_opt.Sccp.Cmp_none;
    gva = Dce_opt.Gva.Off;
    sccp_block_limit = 512;
    memcp = false;
    memcp_edge_aware = false;
    memcp_block_limit = 512;
    uniform_arrays = false;
    call_summaries = false;
    gvn_cse = false;
    gvn_forward = false;
    alias = Dce_opt.Alias.None_;
    dse_strength = 0;
    ipa_cp = false;
    inline_threshold = 0;
    function_dce = false;
    function_dce_early = false;
    unroll_trip = 0;
    unswitch = false;
    vectorize = false;
    peephole_level = 0;
    vrp = false;
    vrp_shift_rule = false;
    vrp_mod_singleton = false;
    vrp_block_limit = 512;
    jump_thread = Dce_opt.Jump_thread.Off;
    jt_phi_cleanup = true;
    opt_rounds = 0;
  }

let describe t =
  let flags = Buffer.create 64 in
  let add name cond = if cond then Buffer.add_string flags (name ^ " ") in
  add "sccp" t.sccp;
  add
    (match t.gva with
     | Dce_opt.Gva.Off -> ""
     | Dce_opt.Gva.Flow_insensitive -> "gva:fi"
     | Dce_opt.Gva.Flow_sensitive_if_const -> "gva:fsc")
    (t.gva <> Dce_opt.Gva.Off);
  add "memcp" t.memcp;
  add "memcp:edge" t.memcp_edge_aware;
  add "uniform-arrays" t.uniform_arrays;
  add "summaries" t.call_summaries;
  add "cse" t.gvn_cse;
  add "forward" t.gvn_forward;
  add
    (match t.alias with
     | Dce_opt.Alias.None_ -> ""
     | Dce_opt.Alias.Basic -> "alias:basic"
     | Dce_opt.Alias.Full -> "alias:full")
    (t.alias <> Dce_opt.Alias.None_);
  add (Printf.sprintf "dse:%d" t.dse_strength) (t.dse_strength > 0);
  add "ipa-cp" t.ipa_cp;
  add (Printf.sprintf "inline:%d" t.inline_threshold) (t.inline_threshold > 0);
  add "fdce" t.function_dce;
  add "fdce-early" t.function_dce_early;
  add (Printf.sprintf "unroll:%d" t.unroll_trip) (t.unroll_trip > 0);
  add "unswitch" t.unswitch;
  add "vectorize" t.vectorize;
  add (Printf.sprintf "peephole:%d" t.peephole_level) (t.peephole_level > 0);
  add "vrp" t.vrp;
  add "vrp:shift" t.vrp_shift_rule;
  add "vrp:mod" t.vrp_mod_singleton;
  add
    (match t.jump_thread with
     | Dce_opt.Jump_thread.Off -> ""
     | Dce_opt.Jump_thread.Conservative -> "jt:old"
     | Dce_opt.Jump_thread.Aggressive -> "jt:new")
    (t.jump_thread <> Dce_opt.Jump_thread.Off);
  String.trim (Buffer.contents flags)
