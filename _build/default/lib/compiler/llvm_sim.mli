(** The LLVM-flavoured simulated compiler.

    Deliberate HEAD traits (each grounded in a paper observation):
    - {b flow-sensitive-if-constant} global value analysis — stores of the
      initializer value are tolerated ([a = 0;] after the reads, Listing 4a
      folds) but any differing store poisons the global (Listing 6a's
      LLVM 3.8 regression is baked in);
    - pointer-comparison folding restricted to zero offsets — EarlyCSE folds
      [&a == &b\[0\]] but not [&a == &b\[1\]] (Listing 3);
    - post-lifetime dead-store elimination {e is} performed (LLVM removes the
      dead [c = 0] in Listing 1);
    - uniform-constant-array loads fold (LLVM gets Listing 9f right);
    - O3-only regressions: non-trivial loop unswitching plus the new pass
      manager's cheaper constant-propagation rerun (Listings 7, 8a), an
      instcombine iteration cap, and aggressive jump threading. *)

val compiler : Compiler.t
