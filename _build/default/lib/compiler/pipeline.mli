(** The generic optimization pipeline, instantiated by a feature matrix.

    Stage order (each stage gated/configured by {!Features.t}):

    + front-end simplification (the only thing [-O0] gets);
    + SSA construction;
    + {e early} unreachable-function removal, when [function_dce_early] —
      the Listing 9b pass-ordering flaw: functions that later folding will
      orphan are no longer deleted;
    + inlining, vectorizer model;
    + [opt_rounds] × the main round: SCCP → MemCP → GVN → VRP → peephole →
      jump threading → DSE → DCE → SimplifyCFG;
    + full unrolling, then another round (unrolled conditions need folding);
    + unswitching, then another round;
    + late unreachable-function removal, final cleanup.

    [run] never changes observable behaviour: this is checked by the
    differential-interpretation tests and the qcheck property suite. *)

val run : ?validate:bool -> Features.t -> Dce_ir.Ir.program -> Dce_ir.Ir.program
(** [validate] (default false) re-checks IR well-formedness after every
    stage and raises [Failure] naming the offending stage. *)

val stage_names : Features.t -> string list
(** The stages [run] would execute, in order (for [--explain] and tests). *)
