(** Optimization levels, matching the paper's five configurations. *)

type t = O0 | O1 | Os | O2 | O3

val all : t list
(** In the paper's order: [O0; O1; Os; O2; O3]. *)

val to_string : t -> string
(** ["-O0"] … ["-O3"]. *)

val of_string : string -> t option
(** Accepts ["O2"], ["-O2"], ["o2"], … *)

val compare_strength : t -> t -> int
(** Orders levels by nominal strength (O0 < O1 < Os < O2 < O3). *)
