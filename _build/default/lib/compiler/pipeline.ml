open Dce_opt
module Ir = Dce_ir.Ir

type stage = { stage_name : string; apply : Dce_ir.Ir.program -> Dce_ir.Ir.program }

let per_func name f = { stage_name = name; apply = (fun prog -> Ir.map_func f prog) }

let with_info name f =
  {
    stage_name = name;
    apply =
      (fun prog ->
        let info = Meminfo.analyze prog in
        Ir.map_func (f info prog) prog);
  }

let sccp_stage (feats : Features.t) =
  with_info "sccp" (fun info _prog fn ->
      Sccp.run
        {
          Sccp.addr_cmp = feats.addr_cmp;
          gva_mode = feats.gva;
          block_limit = feats.sccp_block_limit;
        }
        info fn)

let memcp_stage (feats : Features.t) =
  with_info "memcp" (fun info _prog fn ->
      Memcp.run
        {
          Memcp.use_call_summaries = feats.call_summaries;
          edge_aware = feats.memcp_edge_aware;
          uniform_arrays = feats.uniform_arrays;
          precision = feats.alias;
          block_limit = feats.memcp_block_limit;
          cell_limit = 32;
        }
        info fn)

let gvn_stage (feats : Features.t) =
  with_info "gvn" (fun info _prog fn ->
      Gvn.run
        {
          Gvn.cse = feats.gvn_cse;
          load_forward = feats.gvn_forward;
          precision = feats.alias;
          use_call_summaries = feats.call_summaries;
        }
        info fn)

let vrp_stage (feats : Features.t) =
  per_func "vrp" (fun fn ->
      Vrp.run
        {
          Vrp.shift_rule = feats.vrp_shift_rule;
          mod_singleton = feats.vrp_mod_singleton;
          block_limit = feats.vrp_block_limit;
        }
        fn)

let peephole_stage (feats : Features.t) =
  per_func "peephole" (fun fn -> Peephole.run { Peephole.level = feats.peephole_level } fn)

let jump_thread_stage (feats : Features.t) =
  per_func "jump-thread" (fun fn ->
      Jump_thread.run
        {
          Jump_thread.mode = feats.jump_thread;
          phi_cleanup = feats.jt_phi_cleanup;
          max_threads = 16;
        }
        fn)

let dse_stage (feats : Features.t) =
  with_info "dse" (fun info _prog fn ->
      Dse.run
        {
          Dse.strength = feats.dse_strength;
          precision = feats.alias;
          use_call_summaries = feats.call_summaries;
        }
        info ~is_main:(fn.Ir.fn_name = "main") fn)

let dce_stage = per_func "dce" Dce.run

let simplify_stage = per_func "simplify-cfg" Simplify_cfg.run

let promote_stage (feats : Features.t) =
  with_info "loop-promote" (fun info _prog fn ->
      Promote.run { Promote.precision = feats.alias } info fn)

let unroll_stage (feats : Features.t) =
  per_func "unroll" (fun fn ->
      Unroll.run
        {
          Unroll.max_trip = feats.unroll_trip;
          max_body = 64;
          (* the growth budget scales with the trip threshold so the higher
             level can actually spend its larger limit on big functions *)
          max_growth = 200 + (30 * feats.unroll_trip);
        }
        fn)

let unswitch_stage (feats : Features.t) =
  with_info "unswitch" (fun info _prog fn ->
      Unswitch.run
        { Unswitch.max_body = 80; max_clones = 4; licm_loads = true; precision = feats.alias }
        info fn)

let vectorize_stage =
  { stage_name = "vectorize"; apply = Vectorize.run Vectorize.default_config }

let function_dce_stage name = { stage_name = name; apply = Function_dce.run }

let ipa_cp_stage = { stage_name = "ipa-cp"; apply = Ipa_cp.run }

let inline_stage (feats : Features.t) =
  {
    stage_name = "inline";
    apply =
      Inline.run
        {
          Inline.threshold = feats.inline_threshold;
          (* scale with the threshold: a level that inlines bigger callees
             also tolerates more caller growth *)
          growth_cap = 600 + (12 * feats.inline_threshold);
        };
  }

let ssa_stage = { stage_name = "ssa"; apply = Dce_ir.Ssa.construct_program }

let main_round feats =
  List.concat
    [
      (if feats.Features.sccp then [ sccp_stage feats ] else []);
      (if feats.Features.memcp then [ memcp_stage feats ] else []);
      (if feats.Features.gvn_cse || feats.Features.gvn_forward then [ gvn_stage feats ] else []);
      (* a second constant pass folds what forwarding just exposed, the way
         real pipelines interleave instcombine/SCCP with GVN *)
      (if feats.Features.sccp && (feats.Features.gvn_cse || feats.Features.gvn_forward) then
         [ sccp_stage feats ]
       else []);
      (if feats.Features.vrp then [ vrp_stage feats ] else []);
      (if feats.Features.peephole_level > 0 then [ peephole_stage feats ] else []);
      (if feats.Features.jump_thread <> Jump_thread.Off then [ jump_thread_stage feats ] else []);
      [ dce_stage; simplify_stage ];
    ]

let stages (feats : Features.t) =
  if not feats.sccp then
    (* -O0: only the front end's trivial cleanup *)
    [ simplify_stage ]
  else
    List.concat
      [
        [ simplify_stage; ssa_stage ];
        (if feats.function_dce && feats.function_dce_early then
           [ function_dce_stage "function-dce-early" ]
         else []);
        (if feats.ipa_cp then [ ipa_cp_stage ] else []);
        (if feats.inline_threshold > 0 then
           (* functions orphaned by inlining itself are always cleaned up;
              only functions orphaned by later folding depend on where the
              unreachable-node removal sits (the Listing 9b regression) *)
           [ inline_stage feats ]
           @ (if feats.function_dce then [ function_dce_stage "inline-cleanup" ] else [])
           @ [ simplify_stage ]
         else []);
        List.concat (List.init (max 1 feats.opt_rounds) (fun _ -> main_round feats));
        (* promotion gives memory loop counters a register view; one folding
           round then materializes constant preheader seeds so the loop
           passes' trip counting can see them *)
        (if feats.unroll_trip > 0 || feats.vectorize then
           (promote_stage feats :: main_round feats)
         else []);
        (* the vectorizer claims eligible loops before the unroller *)
        (if feats.vectorize then [ vectorize_stage ] else []);
        (if feats.unroll_trip > 0 then (unroll_stage feats :: main_round feats) else []);
        (if feats.unswitch then (unswitch_stage feats :: main_round feats) else []);
        (* DSE runs once, late: module-level global analyses must not observe
           dead-store-cleaned code (that would "fix" the paper's Listing 6a) *)
        (if feats.dse_strength > 0 then [ dse_stage feats; dce_stage; simplify_stage ] else []);
        (if feats.function_dce && not feats.function_dce_early then
           [ function_dce_stage "function-dce" ]
         else []);
        [ dce_stage; simplify_stage ];
      ]

let stage_names feats = List.map (fun s -> s.stage_name) (stages feats)

let run ?(validate = false) feats prog =
  let prog, _mode =
    List.fold_left
      (fun (prog, mode) stage ->
        let prog' = stage.apply prog in
        (* the IR is pre-SSA until the ssa stage runs *)
        let mode = if stage.stage_name = "ssa" then Dce_ir.Validate.Ssa else mode in
        if validate then begin
          match Dce_ir.Validate.program mode prog' with
          | Ok () -> ()
          | Error errs ->
            failwith
              (Printf.sprintf "pipeline stage %s broke the IR:\n%s" stage.stage_name
                 (String.concat "\n" errs))
        end;
        (prog', mode))
      (prog, Dce_ir.Validate.Pre_ssa)
      (stages feats)
  in
  prog
