(** The GCC-flavoured simulated compiler.

    Deliberate HEAD traits (each grounded in a paper observation):
    - {b flow-insensitive} global value analysis — any store to a static,
      even a dead re-store of the initializer, blocks folding (Listings 4,
      6a);
    - full pointer-comparison folding ([&a == &b\[1\]] folds — GCC gets
      Listing 3 right);
    - {b no} post-lifetime dead-store elimination (the [movl $0, c(%rip)]
      GCC keeps in Listing 1c);
    - no uniform-constant-array folding until a post-HEAD fix (Listing 9f);
    - O3-only regressions: vectorizer claims pointer store loops (9e),
      unreachable-function removal runs early (9b), points-to precision is
      capped (9c), and the new aggressive jump threader replaces the old one
      (9d). *)

val compiler : Compiler.t
