lib/compiler/gcc_sim.ml: Compiler Dce_opt Features Level Version
