lib/compiler/features.ml: Buffer Dce_opt Printf String
