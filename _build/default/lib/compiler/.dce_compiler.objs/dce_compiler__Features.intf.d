lib/compiler/features.mli: Dce_opt
