lib/compiler/llvm_sim.mli: Compiler
