lib/compiler/llvm_sim.ml: Compiler Dce_opt Features Level Version
