lib/compiler/level.ml: String
