lib/compiler/pipeline.ml: Dce Dce_ir Dce_opt Dse Features Function_dce Gvn Inline Ipa_cp Jump_thread List Memcp Meminfo Peephole Printf Promote Sccp Simplify_cfg String Unroll Unswitch Vectorize Vrp
