lib/compiler/compiler.mli: Dce_backend Dce_ir Dce_minic Features Level Version
