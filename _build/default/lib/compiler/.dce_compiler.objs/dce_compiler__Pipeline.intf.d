lib/compiler/pipeline.mli: Dce_ir Features
