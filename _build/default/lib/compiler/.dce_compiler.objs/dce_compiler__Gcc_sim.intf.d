lib/compiler/gcc_sim.mli: Compiler
