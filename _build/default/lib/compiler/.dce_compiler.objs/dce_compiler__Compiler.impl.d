lib/compiler/compiler.ml: Dce_backend Dce_ir Option Pipeline Version
