lib/compiler/version.ml: Char Dce_support Features Level List Printf String
