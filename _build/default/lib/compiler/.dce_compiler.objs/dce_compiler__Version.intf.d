lib/compiler/version.mli: Features Level
