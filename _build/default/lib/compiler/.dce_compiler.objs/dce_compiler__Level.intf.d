lib/compiler/level.mli:
