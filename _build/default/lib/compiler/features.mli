(** The feature matrix of a simulated compiler configuration.

    A value of this type fully determines the optimization pipeline
    {!Pipeline.run} executes.  Both simulated compilers are defined as a
    primitive base plus a commit history editing one of these records per
    level ({!Version}); differences between the two compilers' HEAD matrices
    are the deliberate asymmetries cataloged in DESIGN.md §4. *)

type t = {
  (* register constant propagation *)
  sccp : bool;
  addr_cmp : Dce_opt.Sccp.addr_cmp;
      (** pointer-comparison folding precision (Listing 3's EarlyCSE gap) *)
  gva : Dce_opt.Gva.mode;
      (** global-value-analysis tier (Listings 4/6a asymmetry) *)
  sccp_block_limit : int;
  (* memory *)
  memcp : bool;
  memcp_edge_aware : bool;
  memcp_block_limit : int;
  uniform_arrays : bool;  (** fold loads from uniform constant arrays (9f) *)
  call_summaries : bool;
  gvn_cse : bool;
  gvn_forward : bool;
  alias : Dce_opt.Alias.precision;
  dse_strength : int;
  (* interprocedural *)
  ipa_cp : bool;  (** interprocedural constant propagation of arguments *)
  inline_threshold : int;  (** 0 disables inlining *)
  function_dce : bool;
  function_dce_early : bool;
      (** run unreachable-function removal before late folding (Listing 9b) *)
  (* loops *)
  unroll_trip : int;       (** 0 disables full unrolling *)
  unswitch : bool;
  vectorize : bool;
  (* scalar cleanups *)
  peephole_level : int;
  vrp : bool;
  vrp_shift_rule : bool;
  vrp_mod_singleton : bool;
  vrp_block_limit : int;  (** VRP cost budget: larger functions are skipped *)
  jump_thread : Dce_opt.Jump_thread.mode;
  jt_phi_cleanup : bool;
  (* pipeline *)
  opt_rounds : int;  (** main analyze/fold round repetitions *)
}

val nothing : t
(** Everything off — the primitive base every history starts from (also the
    O0 configuration of both compilers). *)

val describe : t -> string
(** One-line summary used by the CLI's [--explain]. *)
