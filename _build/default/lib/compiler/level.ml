type t = O0 | O1 | Os | O2 | O3

let all = [ O0; O1; Os; O2; O3 ]

let to_string = function
  | O0 -> "-O0"
  | O1 -> "-O1"
  | Os -> "-Os"
  | O2 -> "-O2"
  | O3 -> "-O3"

let of_string s =
  let s = String.lowercase_ascii s in
  let s = if String.length s > 0 && s.[0] = '-' then String.sub s 1 (String.length s - 1) else s in
  match s with
  | "o0" -> Some O0
  | "o1" -> Some O1
  | "os" -> Some Os
  | "o2" -> Some O2
  | "o3" -> Some O3
  | _ -> None

let rank = function O0 -> 0 | O1 -> 1 | Os -> 2 | O2 -> 3 | O3 -> 4

let compare_strength a b = compare (rank a) (rank b)
