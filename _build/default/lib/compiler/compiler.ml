type t = { name : string; history : Version.commit list }

let head t = Version.head t.history

let features t ?version level =
  let v = Option.value ~default:(head t) version in
  Version.features_at t.history v level

let compile_ir t ?version ?(validate = false) level ast =
  let feats = features t ?version level in
  let ir = Dce_ir.Lower.program ast in
  Pipeline.run ~validate feats ir

let compile t ?version ?(validate = false) level ast =
  Dce_backend.Codegen.program (compile_ir t ?version ~validate level ast)

let surviving_markers t ?version level ast =
  Dce_backend.Asm.surviving_markers (compile t ?version level ast)
