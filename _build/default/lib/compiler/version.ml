type commit = {
  id : string;
  summary : string;
  component : string;
  files : string list;
  post_head : bool;
  apply : Level.t -> Features.t -> Features.t;
}

(* a stable pseudo-hash so commit ids look and behave like real ones *)
let pseudo_hash summary =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0xFFFFFFFFFFF) summary;
  Printf.sprintf "%011x" !h

let make_commit ~summary ~component ~files ?(post_head = false) apply =
  { id = pseudo_hash summary; summary; component; files; post_head; apply }

let head history =
  List.length (List.filter (fun c -> not c.post_head) history)

let features_at history v level =
  let v = max 0 (min v (List.length history)) in
  let applied = Dce_support.Listx.take v history in
  List.fold_left (fun feats c -> c.apply level feats) Features.nothing applied
