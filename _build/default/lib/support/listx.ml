let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let rec drop n xs =
  match xs with
  | [] -> []
  | _ :: rest -> if n <= 0 then xs else drop (n - 1) rest

let split_at n xs = (take n xs, drop n xs)

let group_by key xs =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun x ->
      let k = key x in
      match Hashtbl.find_opt tbl k with
      | Some group -> group := x :: !group
      | None ->
        Hashtbl.add tbl k (ref [ x ]);
        order := k :: !order)
    xs;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

let count_by key xs = List.map (fun (k, group) -> (k, List.length group)) (group_by key xs)

let uniq xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let sum = List.fold_left ( + ) 0

let percent part whole = if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole
