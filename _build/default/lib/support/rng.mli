(** Deterministic pseudo-random number generation.

    All randomized components of the system (the program generator, shuffled
    work orders, sampling in the reducer) draw from this splittable SplitMix64
    generator so that every experiment is reproducible from a single integer
    seed.  The standard library's [Random] is deliberately not used: its state
    is global and its stream is not stable across OCaml releases. *)

type t
(** Mutable generator state. *)

val make : int -> t
(** [make seed] creates a fresh generator from [seed]. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Splitting lets subcomponents consume randomness without perturbing the
    parent stream (so adding draws in one component does not shift another). *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy and original then produce
    identical streams. *)

val bits64 : t -> int64
(** Next raw 64-bit output of the SplitMix64 stream. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)]. [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is a uniform integer in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val bool : t -> bool
(** Uniform boolean. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val choose : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. Raises [Invalid_argument] on []. *)

val choose_arr : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted : t -> (int * 'a) list -> 'a
(** [weighted t choices] picks an element with probability proportional to its
    integer weight. Entries with non-positive weight are never picked.
    Raises [Invalid_argument] if the total weight is not positive. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform random permutation. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] distinct elements, preserving no
    particular order. *)
