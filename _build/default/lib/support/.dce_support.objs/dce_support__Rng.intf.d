lib/support/rng.mli:
