lib/support/listx.mli:
