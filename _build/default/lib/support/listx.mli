(** Small list utilities shared across the project. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (all of them if the list is shorter). *)

val drop : int -> 'a list -> 'a list
(** The list without its first [n] elements ([[]] if shorter). *)

val split_at : int -> 'a list -> 'a list * 'a list
(** [split_at n xs] is [(take n xs, drop n xs)]. *)

val group_by : ('a -> 'k) -> 'a list -> ('k * 'a list) list
(** Groups elements by key, preserving first-occurrence order of keys and
    original order within each group. Keys are compared with polymorphic
    equality. *)

val count_by : ('a -> 'k) -> 'a list -> ('k * int) list
(** Like [group_by] but returns group sizes. *)

val uniq : 'a list -> 'a list
(** Removes duplicates (polymorphic equality), keeping first occurrences. *)

val sum : int list -> int
(** Integer sum. *)

val percent : int -> int -> float
(** [percent part whole] is [100. *. part / whole], or [0.] when [whole = 0]. *)
