(** Plain-text table rendering for the CLI and the benchmark harness. *)

val render : header:string list -> string list list -> string
(** Left-aligned columns padded to the widest cell, header underlined. *)

val pct : int -> int -> string
(** ["12.34%"] formatting of part/whole (["-"] when the whole is 0). *)
