lib/report/triage.ml: Array Dce_compiler Dce_core Hashtbl List Option Stats Tables
