lib/report/stats.mli: Dce_compiler Dce_core Dce_minic
