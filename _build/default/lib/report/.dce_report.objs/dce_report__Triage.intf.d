lib/report/triage.mli: Dce_compiler Dce_minic Stats
