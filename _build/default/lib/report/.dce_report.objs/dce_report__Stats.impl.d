lib/report/stats.ml: Buffer Dce_compiler Dce_core Dce_ir Hashtbl List Option Printf Tables
