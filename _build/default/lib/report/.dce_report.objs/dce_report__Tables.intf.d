lib/report/tables.mli:
