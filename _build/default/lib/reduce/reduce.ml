open Dce_minic
open Ast

type result = {
  program : program;
  tests_run : int;
  rounds : int;
  initial_size : int;
  final_size : int;
}

(* apply [edit] to the [n]th statement (preorder over all function bodies) *)
let edit_nth prog n edit =
  let counter = ref (-1) in
  let rec edit_block b = List.concat_map edit_stmt b
  and edit_stmt s =
    incr counter;
    let me = !counter in
    if me = n then edit s
    else
      match s with
      | Sif (c, bt, bf) -> [ Sif (c, edit_block bt, edit_block bf) ]
      | Swhile (c, b) -> [ Swhile (c, edit_block b) ]
      | Sfor (init, cond, step, b) -> [ Sfor (init, cond, step, edit_block b) ]
      | Sswitch (c, cases, dflt) ->
        [ Sswitch (c, List.map (fun (k, b) -> (k, edit_block b)) cases, edit_block dflt) ]
      | Sblock b -> [ Sblock (edit_block b) ]
      | Sexpr _ | Sdecl _ | Sassign _ | Sreturn _ | Sbreak | Scontinue | Smarker _ -> [ s ]
  in
  {
    prog with
    p_funcs = List.map (fun fn -> { fn with f_body = edit_block fn.f_body }) prog.p_funcs;
  }

(* size metric: statements and declarations dominate, expression nodes break
   ties so that condition-to-constant simplifications count as progress *)
let count_stmts prog =
  let exprs = ref 0 in
  iter_program_exprs (fun _ -> incr exprs) prog;
  (10 * (stmt_count prog + List.length prog.p_globals + List.length prog.p_funcs)) + !exprs

(* delete a contiguous range [lo, lo+len) of top-level-ish statement indices
   (preorder numbering, same as [edit_nth]) in one shot — the ddmin-style
   coarse phase that removes big chunks before statement-level polishing *)
let delete_range prog lo len =
  let counter = ref (-1) in
  let rec edit_block b = List.concat_map edit_stmt b
  and edit_stmt s =
    incr counter;
    let me = !counter in
    if me >= lo && me < lo + len then
      (* dropping the statement drops its whole subtree; skip the subtree's
         indices so the numbering matches edit_nth's preorder *)
      let sub = ref 0 in
      (iter_stmt (fun _ -> incr sub) s;
       counter := !counter + !sub - 1);
      []
    else
      match s with
      | Sif (c, bt, bf) -> [ Sif (c, edit_block bt, edit_block bf) ]
      | Swhile (c, b) -> [ Swhile (c, edit_block b) ]
      | Sfor (init, cond, step, b) -> [ Sfor (init, cond, step, edit_block b) ]
      | Sswitch (c, cases, dflt) ->
        [ Sswitch (c, List.map (fun (k, b) -> (k, edit_block b)) cases, edit_block dflt) ]
      | Sblock b -> [ Sblock (edit_block b) ]
      | Sexpr _ | Sdecl _ | Sassign _ | Sreturn _ | Sbreak | Scontinue | Smarker _ -> [ s ]
  in
  {
    prog with
    p_funcs = List.map (fun fn -> { fn with f_body = edit_block fn.f_body }) prog.p_funcs;
  }

(* coarse candidates: delete halves, then quarters, then eighths *)
let chunk_candidates prog =
  let n = stmt_count prog in
  List.concat_map
    (fun denom ->
      let len = max 2 (n / denom) in
      let rec starts lo = if lo >= n then [] else lo :: starts (lo + len) in
      List.map (fun lo -> lazy (delete_range prog lo len)) (starts 0))
    [ 2; 4; 8 ]

(* one-step candidate programs, roughly most-profitable first *)
let candidates prog =
  let n = stmt_count prog in
  let stmt_edits =
    List.concat_map
      (fun edit_kind ->
        List.init n (fun i ->
            lazy
              (edit_nth prog i (fun s ->
                   match (edit_kind, s) with
                   | `Delete, _ -> []
                   | `Unwrap, Sif (_, bt, []) -> bt
                   | `Unwrap, Sif (_, bt, bf) -> if bt = [] then bf else bt
                   | `Unwrap, Swhile (_, b) -> b
                   | `Unwrap, Sfor (_, _, _, b) -> b
                   | `Unwrap, Sswitch (_, cases, dflt) -> List.concat_map snd cases @ dflt
                   | `Unwrap, Sblock b -> b
                   | `Unwrap, _ -> [ s ]
                   | `Cond_false, Sif (_, bt, bf) -> [ Sif (Int 0, bt, bf) ]
                   | `Cond_false, Swhile (_, b) -> [ Swhile (Int 0, b) ]
                   | `Cond_false, _ -> [ s ]
                   | `Cond_true, Sif (_, bt, bf) -> [ Sif (Int 1, bt, bf) ]
                   | `Cond_true, _ -> [ s ]))))
      [ `Delete; `Unwrap; `Cond_false; `Cond_true ]
  in
  let func_edits =
    List.filter_map
      (fun fn ->
        if fn.f_name = "main" then None
        else
          Some
            (lazy { prog with p_funcs = List.filter (fun f -> f.f_name <> fn.f_name) prog.p_funcs }))
      prog.p_funcs
  in
  let global_edits =
    List.map
      (fun g ->
        lazy { prog with p_globals = List.filter (fun g' -> g'.g_name <> g.g_name) prog.p_globals })
      prog.p_globals
  in
  chunk_candidates prog @ func_edits @ global_edits @ stmt_edits

let reduce ?(max_tests = 4000) ~predicate prog =
  if not (predicate prog) then
    invalid_arg "Reduce.reduce: initial program does not satisfy the predicate";
  let tests = ref 0 in
  let initial_size = count_stmts prog in
  let check candidate =
    if !tests >= max_tests then false
    else begin
      incr tests;
      match Typecheck.check candidate with
      | Ok normalized -> predicate normalized
      | Error _ -> false
    end
  in
  let rec fixpoint prog rounds =
    if !tests >= max_tests then (prog, rounds)
    else begin
      let accepted = ref None in
      let cands = candidates prog in
      let rec try_all = function
        | [] -> ()
        | c :: rest ->
          if !accepted = None && !tests < max_tests then begin
            let candidate = Lazy.force c in
            (* only consider candidates that are actually smaller or equal
               with structural change *)
            if count_stmts candidate < count_stmts prog && check candidate then
              accepted := Some candidate
            else try_all rest
          end
      in
      try_all cands;
      match !accepted with
      | Some next -> fixpoint next (rounds + 1)
      | None -> (prog, rounds)
    end
  in
  let final, rounds = fixpoint prog 0 in
  {
    program = final;
    tests_run = !tests;
    rounds;
    initial_size;
    final_size = count_stmts final;
  }

let marker_diff_predicate ~keep_missed_by ~eliminated_by ~marker prog =
  match Dce_core.Ground_truth.compute prog with
  | Dce_core.Ground_truth.Rejected _ -> false
  | Dce_core.Ground_truth.Valid truth ->
    Dce_ir.Ir.Iset.mem marker truth.Dce_core.Ground_truth.dead
    &&
    let survives cfg = Dce_ir.Ir.Iset.mem marker (Dce_core.Differential.surviving cfg prog) in
    survives keep_missed_by && not (survives eliminated_by)
