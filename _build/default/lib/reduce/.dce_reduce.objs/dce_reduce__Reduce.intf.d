lib/reduce/reduce.mli: Dce_core Dce_minic
