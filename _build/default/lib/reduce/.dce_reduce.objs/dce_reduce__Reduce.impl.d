lib/reduce/reduce.ml: Ast Dce_core Dce_ir Dce_minic Lazy List Typecheck
