lib/smith/smith.mli: Dce_minic
