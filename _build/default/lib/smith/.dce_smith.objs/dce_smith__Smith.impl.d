lib/smith/smith.ml: Dce_minic Dce_support Int64 List Option Printf String
