type precision = None_ | Basic | Full

type query = { info : Meminfo.t; dt : Meminfo.deftab; precision : precision }

let make precision info fn = { info; dt = Meminfo.deftab fn; precision }

let may_alias q p1 p2 =
  match q.precision with
  | None_ -> true
  | Basic | Full -> (
    match (Meminfo.resolve_addr q.dt p1, Meminfo.resolve_addr q.dt p2) with
    | Meminfo.Asym (s1, o1), Meminfo.Asym (s2, o2) ->
      if s1 <> s2 then false
      else (
        match (o1, o2) with
        | Some a, Some b -> a = b
        | _ -> true)
    | Meminfo.Aunknown, Meminfo.Asym (s, _) | Meminfo.Asym (s, _), Meminfo.Aunknown ->
      (* an unknown pointer may address escaped symbols and any non-static
         global (other translation units can take their address) *)
      if q.precision = Full then Meminfo.unknown_may_touch q.info s else true
    | Meminfo.Aunknown, Meminfo.Aunknown -> true)

let may_write_sym q p sym =
  match q.precision with
  | None_ -> true
  | Basic | Full -> (
    match Meminfo.resolve_addr q.dt p with
    | Meminfo.Asym (s, _) -> s = sym
    | Meminfo.Aunknown -> if q.precision = Full then Meminfo.unknown_may_touch q.info sym else true)
