(** Whole-program memory analysis shared by the optimization passes.

    Computes, per symbol:
    - {b escape} information — whether the symbol's address can flow somewhere
      the compiler cannot track (into memory, to an extern call, out of a
      return), in which case unknown pointers may read or write it;
    - {b store} information — whether any instruction in the program may write
      it, and if so whether every store writes a compile-time constant equal
      to the symbol's initial value;

    and, per function, transitive {b mod/ref summaries}: the symbols a call
    may write/read.  Extern calls may write every non-static global (another
    translation unit can name them — this is what makes [static] matter in
    the paper's test cases) plus every escaped symbol.

    The address-resolution helper {!resolve_addr} is the single place where
    SSA pointer chains ([Addr]/[Ptradd]/copies) are interpreted; the alias
    oracle and the memory passes all build on it so they can never disagree. *)

module Sset : Set.S with type elt = string

(** What an address operand is known to refer to. *)
type addr_desc =
  | Asym of string * int option
      (** cell [off] of the symbol (offset [None] = some unknown cell) *)
  | Aunknown  (** could be any escaped symbol *)

type t

val analyze : Dce_ir.Ir.program -> t
(** Whole-program analysis; cost is linear in program size (the mod/ref
    fixpoint iterates over the call graph). *)

val escaped : t -> string -> bool
(** The symbol's address may be held in untracked places (memory, externs). *)

val ever_stored : t -> string -> bool
(** Some instruction (or extern, for escaped/non-static symbols) may write
    it. *)

val stores_only_init_consts : t -> string -> bool
(** Every store to the symbol in the whole program writes a constant equal to
    the stored-to cell's initial value (and the target cell of every store is
    known).  Vacuously true when there are no stores. *)

val init_cell : t -> string -> int -> Dce_ir.Ir.init_cell option
(** Initial value of cell [off], if the symbol exists and [off] in bounds. *)

val is_static_like : t -> string -> bool
(** Static global or frame slot: invisible to other translation units. *)

val symbol : t -> string -> Dce_ir.Ir.symbol option

val all_symbols : t -> Dce_ir.Ir.symbol list
(** Every symbol of the program, sorted by name. *)

val unknown_may_touch : t -> string -> bool
(** Whether a pointer of unknown provenance may address this symbol: true for
    escaped symbols and for {e all} non-static globals (another translation
    unit may have taken their address — the C-linkage rule that makes
    [static] matter throughout the paper). *)

val tracked_symbols : t -> Dce_ir.Ir.symbol list
(** Symbols whose cells flow-sensitive memory analyses may track: static-like
    and never escaped (so neither unknown pointers nor extern/marker calls can
    touch them). *)

val mod_set : t -> string -> Sset.t
(** Symbols a call to the (defined) function may write, transitively.
    Unknown functions: use {!extern_mod_set}. *)

val ref_set : t -> string -> Sset.t

val extern_mod_set : t -> Sset.t
(** Symbols an extern call may write: non-static globals and escaped
    symbols. *)

val is_defined_function : t -> string -> bool
(** Whether the program defines a function of this name (otherwise a call to
    it is an extern call). *)

type deftab
(** Register → defining rvalue table for one function (SSA form). Build once,
    query many times. *)

val deftab : Dce_ir.Ir.func -> deftab

val def_rvalue : deftab -> Dce_ir.Ir.var -> Dce_ir.Ir.rvalue option
(** The unique defining rvalue ([None] for parameters and call results). *)

val def_rvalue_resolved : deftab -> Dce_ir.Ir.var -> Dce_ir.Ir.rvalue option
(** Like {!def_rvalue} but looks through register-to-register copy chains
    ([Def (v, Op (Reg w))]), so pattern-matching passes see the real defining
    operation. *)

val resolve_addr : deftab -> Dce_ir.Ir.operand -> addr_desc
(** Follows the SSA definition chain of a pointer operand.  Sound only on SSA
    form (single definitions). *)

val resolve_const : deftab -> Dce_ir.Ir.operand -> int option
(** The operand's compile-time integer value, following copies. *)
