open Dce_ir
open Ir

type maps = { label_map : label Imap.t; var_map : var Imap.t }

let map_label m l = Option.value ~default:l (Imap.find_opt l m.label_map)
let map_var m v = Option.value ~default:v (Imap.find_opt v m.var_map)

let map_operand m = function
  | Const n -> Const n
  | Reg v -> Reg (map_var m v)

let clone_region fn region =
  (* allocate fresh labels and fresh names for every def in the region *)
  let next_label = ref fn.fn_next_label in
  let label_map =
    Iset.fold
      (fun l acc ->
        let nl = !next_label in
        incr next_label;
        Imap.add l nl acc)
      region Imap.empty
  in
  let next_var = ref fn.fn_next_var in
  let var_names = ref fn.fn_var_names in
  let var_map = ref Imap.empty in
  Iset.iter
    (fun l ->
      List.iter
        (fun i ->
          match def_of_instr i with
          | Some v ->
            let nv = !next_var in
            incr next_var;
            (match Imap.find_opt v fn.fn_var_names with
             | Some hint -> var_names := Imap.add nv hint !var_names
             | None -> ());
            var_map := Imap.add v nv !var_map
          | None -> ())
        (block fn l).b_instrs)
    region;
  let m = { label_map; var_map = !var_map } in
  let clone_instr i =
    let i = map_instr_operands (map_operand m) i in
    let i =
      match i with
      | Def (v, rv) ->
        let rv =
          match rv with
          | Phi args -> Phi (List.map (fun (p, a) -> (map_label m p, a)) args)
          | _ -> rv
        in
        Def (map_var m v, rv)
      | Call (Some v, name, args) -> Call (Some (map_var m v), name, args)
      | Call (None, _, _) | Store _ | Marker _ -> i
    in
    i
  in
  let new_blocks =
    Iset.fold
      (fun l acc ->
        let b = block fn l in
        let nb =
          {
            b_instrs = List.map clone_instr b.b_instrs;
            b_term = map_terminator_labels (map_label m) (map_terminator_operands (map_operand m) b.b_term);
          }
        in
        Imap.add (map_label m l) nb acc)
      region fn.fn_blocks
  in
  ( {
      fn with
      fn_blocks = new_blocks;
      fn_next_label = !next_label;
      fn_next_var = !next_var;
      fn_var_names = !var_names;
    },
    m )

let subst_operands lookup fn =
  let subst = function
    | Const n -> Const n
    | Reg v -> ( match lookup v with Some op -> op | None -> Reg v)
  in
  let blocks =
    Imap.map
      (fun b ->
        {
          b_instrs = List.map (map_instr_operands subst) b.b_instrs;
          b_term = map_terminator_operands subst b.b_term;
        })
      fn.fn_blocks
  in
  { fn with fn_blocks = blocks }
