lib/opt/lcssa.ml: Cfg Dce_ir Dce_support Imap Ir Iset List Loops Option
