lib/opt/sccp.mli: Dce_ir Gva Meminfo
