lib/opt/promote.mli: Alias Dce_ir Meminfo
