lib/opt/inline.ml: Cfg Dce_ir Dce_support Hashtbl Imap Ir Iset List Meminfo Option Printf
