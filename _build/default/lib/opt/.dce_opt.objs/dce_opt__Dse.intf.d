lib/opt/dse.mli: Alias Dce_ir Meminfo
