lib/opt/vectorize.ml: Dce_ir Imap Ir Iset List Loops Unroll
