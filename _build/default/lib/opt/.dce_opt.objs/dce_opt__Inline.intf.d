lib/opt/inline.mli: Dce_ir
