lib/opt/gva.mli: Dce_ir Meminfo
