lib/opt/promote.ml: Alias Cfg Dce_ir Dom Hashtbl Imap Ir Iset List Loops Meminfo Option
