lib/opt/clone.ml: Dce_ir Imap Ir Iset List Option
