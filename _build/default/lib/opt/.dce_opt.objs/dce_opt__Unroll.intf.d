lib/opt/unroll.mli: Dce_ir
