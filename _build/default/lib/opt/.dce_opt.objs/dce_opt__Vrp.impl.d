lib/opt/vrp.ml: Array Cfg Dce_ir Dce_minic Dom Hashtbl Imap Ir Iset List Meminfo Option
