lib/opt/simplify_cfg.mli: Dce_ir
