lib/opt/memcp.ml: Alias Array Cfg Dce_ir Hashtbl Imap Ir List Meminfo Option
