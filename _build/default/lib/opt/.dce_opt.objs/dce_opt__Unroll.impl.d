lib/opt/unroll.ml: Array Cfg Clone Dce_ir Dce_minic Dce_support Hashtbl Imap Ir Iset Lcssa List Loops Meminfo Option Simplify_cfg
