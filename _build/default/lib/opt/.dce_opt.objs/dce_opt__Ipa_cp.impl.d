lib/opt/ipa_cp.ml: Array Dce_ir Imap Ir List Meminfo
