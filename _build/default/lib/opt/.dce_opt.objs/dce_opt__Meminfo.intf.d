lib/opt/meminfo.mli: Dce_ir Set
