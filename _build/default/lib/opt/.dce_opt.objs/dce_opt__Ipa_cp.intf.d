lib/opt/ipa_cp.mli: Dce_ir
