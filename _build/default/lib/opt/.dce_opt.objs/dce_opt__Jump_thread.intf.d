lib/opt/jump_thread.mli: Dce_ir
