lib/opt/alias.ml: Meminfo
