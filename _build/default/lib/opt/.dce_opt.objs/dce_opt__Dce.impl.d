lib/opt/dce.ml: Dce_ir Hashtbl Imap Ir List Meminfo
