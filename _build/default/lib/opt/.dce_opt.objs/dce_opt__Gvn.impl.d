lib/opt/gvn.ml: Alias Dce_ir Dce_minic Dom Hashtbl Imap Ir List Meminfo
