lib/opt/gva.ml: Meminfo
