lib/opt/alias.mli: Dce_ir Meminfo
