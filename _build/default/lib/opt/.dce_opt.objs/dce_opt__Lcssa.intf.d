lib/opt/lcssa.mli: Dce_ir
