lib/opt/sccp.ml: Array Cfg Dce_ir Dce_minic Gva Hashtbl Imap Ir List Option
