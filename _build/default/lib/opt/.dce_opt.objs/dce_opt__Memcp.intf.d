lib/opt/memcp.mli: Alias Dce_ir Meminfo
