lib/opt/dse.ml: Alias Dce_ir Hashtbl Imap Ir List Meminfo
