lib/opt/simplify_cfg.ml: Cfg Dce_ir Dce_support Hashtbl Imap Ir List Meminfo Option
