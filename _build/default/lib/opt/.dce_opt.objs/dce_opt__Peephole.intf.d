lib/opt/peephole.mli: Dce_ir
