lib/opt/meminfo.ml: Array Dce_ir Dce_minic Hashtbl Imap Ir List Map Option Set String
