lib/opt/vectorize.mli: Dce_ir
