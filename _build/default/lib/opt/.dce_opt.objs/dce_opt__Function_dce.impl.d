lib/opt/function_dce.ml: Dce_ir Hashtbl Ir List
