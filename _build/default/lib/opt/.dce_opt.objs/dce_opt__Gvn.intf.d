lib/opt/gvn.mli: Alias Dce_ir Meminfo
