lib/opt/clone.mli: Dce_ir
