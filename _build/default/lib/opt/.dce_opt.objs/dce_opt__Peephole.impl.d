lib/opt/peephole.ml: Dce_ir Dce_minic Imap Ir List Meminfo
