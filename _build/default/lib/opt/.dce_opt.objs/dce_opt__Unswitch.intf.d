lib/opt/unswitch.mli: Alias Dce_ir Meminfo
