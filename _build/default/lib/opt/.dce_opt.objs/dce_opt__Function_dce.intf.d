lib/opt/function_dce.mli: Dce_ir
