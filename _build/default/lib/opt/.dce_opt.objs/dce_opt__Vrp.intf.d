lib/opt/vrp.mli: Dce_ir
