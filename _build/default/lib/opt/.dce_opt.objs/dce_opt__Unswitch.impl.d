lib/opt/unswitch.ml: Alias Cfg Clone Dce_ir Dce_support Imap Ir Iset Lcssa List Loops Meminfo Option
