lib/opt/dce.mli: Dce_ir
