lib/opt/jump_thread.ml: Cfg Clone Dce_ir Imap Ir Iset List
