open Dce_ir
open Ir
module Sset = Set.Make (String)
module Smap = Map.Make (String)

type addr_desc = Asym of string * int option | Aunknown

type sym_stats = {
  mutable escaped : bool;
  mutable stored : bool;
  mutable only_init_consts : bool;
}

type t = {
  stats : (string, sym_stats) Hashtbl.t;
  syms : (string, symbol) Hashtbl.t;
  mods : (string, Sset.t) Hashtbl.t; (* function -> symbols possibly written *)
  refs : (string, Sset.t) Hashtbl.t;
  externs_mod : Sset.t;
}

type deftab = (int, rvalue) Hashtbl.t

let deftab fn =
  let tbl = Hashtbl.create 128 in
  iter_instrs (fun _ i -> match i with Def (v, rv) -> Hashtbl.replace tbl v rv | _ -> ()) fn;
  tbl

let def_rvalue (tbl : deftab) v = Hashtbl.find_opt tbl v

let def_rvalue_resolved (tbl : deftab) v =
  let rec go fuel v =
    if fuel <= 0 then None
    else
      match Hashtbl.find_opt tbl v with
      | Some (Op (Reg w)) -> ( match go (fuel - 1) w with None -> Hashtbl.find_opt tbl v | r -> r)
      | r -> r
  in
  go 8 v

(* Follow the SSA def chain of a pointer operand, fuel-bounded to stay linear
   even on pathological chains. *)
let resolve_addr (tbl : deftab) op =
  let rec go fuel op =
    if fuel <= 0 then Aunknown
    else
      match op with
      | Const _ -> Aunknown (* integer used as pointer: a trap at runtime *)
      | Reg v -> (
        match def_rvalue tbl v with
        | Some (Addr (s, Const k)) -> Asym (s, Some k)
        | Some (Addr (s, _)) -> Asym (s, None)
        | Some (Op a) -> go (fuel - 1) a
        | Some (Ptradd (p, Const k)) -> (
          match go (fuel - 1) p with
          | Asym (s, Some base) -> Asym (s, Some (base + k))
          | Asym (s, None) -> Asym (s, None)
          | Aunknown -> Aunknown)
        | Some (Ptradd (p, _)) -> (
          match go (fuel - 1) p with
          | Asym (s, _) -> Asym (s, None)
          | Aunknown -> Aunknown)
        | Some (Binary (Dce_minic.Ops.Add, p, Const k)) -> (
          match go (fuel - 1) p with
          | Asym (s, Some base) -> Asym (s, Some (base + k))
          | Asym (s, None) -> Asym (s, None)
          | Aunknown -> Aunknown)
        | Some (Phi args) -> (
          (* all incoming the same symbol: keep the symbol, drop the offset *)
          let descs = List.map (fun (_, a) -> go (fuel - 1) a) args in
          match descs with
          | [] -> Aunknown
          | first :: rest ->
            let sym_of = function Asym (s, _) -> Some s | Aunknown -> None in
            if List.for_all (fun d -> sym_of d = sym_of first && sym_of d <> None) rest then
              match first with
              | Asym (s, _) -> Asym (s, None)
              | Aunknown -> Aunknown
            else Aunknown)
        | Some (Load _) | Some (Unary _) | Some (Binary _) | None -> Aunknown)
  in
  go 16 op

(* resolve an operand as a compile-time integer constant, following copies *)
let resolve_const (tbl : deftab) op =
  let rec go fuel op =
    if fuel <= 0 then None
    else
      match op with
      | Const k -> Some k
      | Reg v -> (
        match def_rvalue tbl v with
        | Some (Op a) -> go (fuel - 1) a
        | _ -> None)
  in
  go 8 op

let stat tbl name =
  match Hashtbl.find_opt tbl name with
  | Some s -> s
  | None ->
    let s = { escaped = false; stored = false; only_init_consts = true } in
    Hashtbl.replace tbl name s;
    s

let analyze prog =
  let stats = Hashtbl.create 64 in
  let syms = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace syms s.sym_name s) prog.prog_syms;
  (* symbol addresses embedded in initializers escape to memory *)
  List.iter
    (fun s ->
      Array.iter
        (function
          | Caddr (target, _) -> (stat stats target).escaped <- true
          | Cint _ -> ())
        s.sym_init)
    prog.prog_syms;
  (* per-function: escapes and direct stores *)
  let direct_mods = Hashtbl.create 16 in
  let direct_refs = Hashtbl.create 16 in
  let calls = Hashtbl.create 16 in (* function -> callee names *)
  let defined = Hashtbl.create 16 in
  List.iter (fun fn -> Hashtbl.replace defined fn.fn_name ()) prog.prog_funcs;
  List.iter
    (fun fn ->
      let dt = deftab fn in
      let mods = ref Sset.empty in
      let refs = ref Sset.empty in
      let callees = ref Sset.empty in
      let unknown_store = ref false in
      let unknown_load = ref false in
      (* track which registers (transitively) hold a symbol's address, to
         detect escapes through operands *)
      let reg_syms : (int, Sset.t) Hashtbl.t = Hashtbl.create 64 in
      let syms_of = function
        | Const _ -> Sset.empty
        | Reg v -> Option.value ~default:Sset.empty (Hashtbl.find_opt reg_syms v)
      in
      (* two passes so that phis see later defs *)
      for _round = 1 to 2 do
        iter_instrs
          (fun _ i ->
            match i with
            | Def (v, rv) ->
              let s =
                match rv with
                | Addr (sym, _) -> Sset.singleton sym
                | Op a | Ptradd (a, _) | Unary (_, a) -> syms_of a
                | Binary (_, a, b) -> Sset.union (syms_of a) (syms_of b)
                | Phi args ->
                  List.fold_left (fun acc (_, a) -> Sset.union acc (syms_of a)) Sset.empty args
                | Load _ -> Sset.empty
              in
              let existing = Option.value ~default:Sset.empty (Hashtbl.find_opt reg_syms v) in
              Hashtbl.replace reg_syms v (Sset.union existing s)
            | Store _ | Call _ | Marker _ -> ())
          fn
      done;
      iter_instrs
        (fun _ i ->
          match i with
          | Def (_, Load p) -> (
            match resolve_addr dt p with
            | Asym (s, _) -> refs := Sset.add s !refs
            | Aunknown -> unknown_load := true)
          | Def _ -> ()
          | Store (p, value) -> (
            (* a pointer stored into memory escapes *)
            Sset.iter (fun s -> (stat stats s).escaped <- true) (syms_of value);
            match resolve_addr dt p with
            | Asym (s, off) ->
              mods := Sset.add s !mods;
              let st = stat stats s in
              st.stored <- true;
              let const_matches_init =
                match (off, resolve_const dt value, Hashtbl.find_opt syms s) with
                | Some o, Some k, Some sym
                  when o >= 0 && o < Array.length sym.sym_init -> (
                  match sym.sym_init.(o) with
                  | Cint init -> init = k
                  | Caddr _ -> false)
                | _ -> false
              in
              if not const_matches_init then st.only_init_consts <- false
            | Aunknown -> unknown_store := true)
          | Call (_, name, args) ->
            callees := Sset.add name !callees;
            (* pointers passed to any call escape conservatively *)
            List.iter (fun a -> Sset.iter (fun s -> (stat stats s).escaped <- true) (syms_of a)) args
          | Marker _ ->
            (* a marker is a call to an undefined function: it may read and
               write whatever an extern can *)
            callees := Sset.add "\000marker" !callees)
        fn;
      (* returned pointers escape *)
      Imap.iter
        (fun _ b ->
          match b.b_term with
          | Ret (Some a) -> Sset.iter (fun s -> (stat stats s).escaped <- true) (syms_of a)
          | _ -> ())
        fn.fn_blocks;
      Hashtbl.replace direct_mods fn.fn_name (!mods, !unknown_store);
      Hashtbl.replace direct_refs fn.fn_name (!refs, !unknown_load);
      Hashtbl.replace calls fn.fn_name !callees)
    prog.prog_funcs;
  (* escaped set is now final; writes through unknown pointers hit escaped syms *)
  let escaped_set =
    Hashtbl.fold (fun name s acc -> if s.escaped then Sset.add name acc else acc) stats Sset.empty
  in
  let non_static_globals =
    List.filter_map
      (fun s ->
        match s.sym_kind with
        | `Global when not s.sym_static -> Some s.sym_name
        | `Global | `Frame _ -> None)
      prog.prog_syms
    |> Sset.of_list
  in
  let externs_mod = Sset.union escaped_set non_static_globals in
  Sset.iter
    (fun name ->
      let st = stat stats name in
      (* escaped symbols may be written through unknown pointers with unknown
         values; give up on const-store tracking *)
      st.stored <- true;
      st.only_init_consts <- false)
    escaped_set;
  (* non-static globals can be written by extern calls (other TUs) *)
  let any_extern_call =
    List.exists
      (fun fn ->
        marker_ids fn <> []
        || List.exists (fun name -> not (Hashtbl.mem defined name)) (called_names fn))
      prog.prog_funcs
  in
  if any_extern_call then
    Sset.iter
      (fun name ->
        let st = stat stats name in
        st.stored <- true;
        st.only_init_consts <- false)
      non_static_globals;
  (* transitive mod/ref over the call graph *)
  let mods = Hashtbl.create 16 in
  let refs = Hashtbl.create 16 in
  List.iter
    (fun fn ->
      let m, mu = Hashtbl.find direct_mods fn.fn_name in
      let r, ru = Hashtbl.find direct_refs fn.fn_name in
      (* writes/reads through unknown pointers may touch any escaped symbol
         or non-static global *)
      Hashtbl.replace mods fn.fn_name (if mu then Sset.union m externs_mod else m);
      Hashtbl.replace refs fn.fn_name (if ru then Sset.union r externs_mod else r))
    prog.prog_funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
        let callees = Hashtbl.find calls fn.fn_name in
        let cur_m = Hashtbl.find mods fn.fn_name in
        let cur_r = Hashtbl.find refs fn.fn_name in
        let new_m, new_r =
          Sset.fold
            (fun callee (am, ar) ->
              if Hashtbl.mem defined callee then
                ( Sset.union am (Hashtbl.find mods callee),
                  Sset.union ar (Hashtbl.find refs callee) )
              else (Sset.union am externs_mod, Sset.union ar externs_mod))
            callees (cur_m, cur_r)
        in
        if not (Sset.equal new_m cur_m) then begin
          Hashtbl.replace mods fn.fn_name new_m;
          changed := true
        end;
        if not (Sset.equal new_r cur_r) then begin
          Hashtbl.replace refs fn.fn_name new_r;
          changed := true
        end)
      prog.prog_funcs
  done;
  { stats; syms; mods; refs; externs_mod }

let escaped t name =
  match Hashtbl.find_opt t.stats name with Some s -> s.escaped | None -> false

let ever_stored t name =
  match Hashtbl.find_opt t.stats name with Some s -> s.stored | None -> false

let stores_only_init_consts t name =
  match Hashtbl.find_opt t.stats name with Some s -> s.only_init_consts | None -> true

let init_cell t name off =
  match Hashtbl.find_opt t.syms name with
  | Some sym when off >= 0 && off < Array.length sym.sym_init -> Some sym.sym_init.(off)
  | _ -> None

let is_static_like t name =
  match Hashtbl.find_opt t.syms name with
  | Some sym -> (match sym.sym_kind with `Frame _ -> true | `Global -> sym.sym_static)
  | None -> false

let symbol t name = Hashtbl.find_opt t.syms name

let all_symbols t =
  Hashtbl.fold (fun _ sym acc -> sym :: acc) t.syms []
  |> List.sort (fun a b -> compare a.sym_name b.sym_name)

let unknown_may_touch t name = (not (is_static_like t name)) || escaped t name

let tracked_symbols t =
  Hashtbl.fold
    (fun name sym acc ->
      if is_static_like t name && not (escaped t name) then sym :: acc else acc)
    t.syms []
  |> List.sort (fun a b -> compare a.sym_name b.sym_name)

let is_defined_function t fname = Hashtbl.mem t.mods fname

let mod_set t fname = Option.value ~default:t.externs_mod (Hashtbl.find_opt t.mods fname)
let ref_set t fname = Option.value ~default:t.externs_mod (Hashtbl.find_opt t.refs fname)
let extern_mod_set t = t.externs_mod
