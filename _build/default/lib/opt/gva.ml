type mode = Off | Flow_insensitive | Flow_sensitive_if_const

let foldable_cell mode info sym off =
  match mode with
  | Off -> None
  | Flow_insensitive | Flow_sensitive_if_const ->
    let sym_ok =
      Meminfo.is_static_like info sym
      && (not (Meminfo.escaped info sym))
      &&
      match mode with
      | Flow_insensitive -> not (Meminfo.ever_stored info sym)
      | Flow_sensitive_if_const -> Meminfo.stores_only_init_consts info sym
      | Off -> false
    in
    if sym_ok then Meminfo.init_cell info sym off else None
