(** Global value analysis: when may a load from a symbol be folded to the
    symbol's initial value?

    The precision tiers model the asymmetry the paper exploits between GCC and
    LLVM (Listings 4 and 6a):

    - {!mode.Flow_insensitive} (GCC-like): a symbol is foldable only if {e no
      store to it exists anywhere} — even a dead store of the initial value
      ([a = 0;] after the last read, Listing 4a) blocks folding, because the
      analysis is not flow-sensitive;
    - {!mode.Flow_sensitive_if_const} (LLVM-like): stores are tolerated as
      long as {e every} store writes a constant equal to the target cell's
      initial value — so [a = 0;] is fine but [a = 1;] anywhere poisons the
      symbol even if it executes after every read (Listing 6a, the LLVM 3.8
      regression).

    Both tiers only ever apply to static globals and frame slots: a non-static
    global may be redefined or written by other translation units. *)

type mode = Off | Flow_insensitive | Flow_sensitive_if_const

val foldable_cell : mode -> Meminfo.t -> string -> int -> Dce_ir.Ir.init_cell option
(** [foldable_cell mode info sym off] is the constant a load of cell
    [sym\[off\]] may be replaced with, or [None]. *)
