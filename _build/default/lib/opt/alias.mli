(** The reference may-alias oracle.

    The memory passes (store-to-load forwarding, DSE, MemCP, LICM) inline the
    same rules on top of {!Meminfo.resolve_addr} for efficiency; this module
    states them once, answerable per query, and the test suite checks the
    passes against it.  External tooling should query this interface.

    Three precision tiers, mirroring the compiler asymmetries the paper's
    aliasing test cases exercise (e.g. Listing 9c, where GCC's -O3 pipeline
    loses alias precision available at -O1):

    - [None_]: everything may alias everything;
    - [Basic]: distinct symbols never alias; distinct constant offsets into
      the same symbol never alias; unknown pointers alias everything;
    - [Full]: [Basic], plus unknown pointers cannot touch symbols whose
      address never escapes (from {!Meminfo}). *)

type precision = None_ | Basic | Full

type query = {
  info : Meminfo.t;
  dt : Meminfo.deftab;
  precision : precision;
}

val make : precision -> Meminfo.t -> Dce_ir.Ir.func -> query

val may_alias : query -> Dce_ir.Ir.operand -> Dce_ir.Ir.operand -> bool
(** Whether the two pointer operands may address the same cell. *)

val may_write_sym : query -> Dce_ir.Ir.operand -> string -> bool
(** Whether a store through the pointer may write any cell of the symbol. *)
