(** Cloning of block regions with fresh labels and registers — the shared
    mechanical core of inlining, loop unrolling, unswitching, and aggressive
    jump threading.

    Cloned blocks are added to the function but not linked: callers rewire
    terminators and patch phis afterwards.  Within the cloned region, defined
    registers are renamed fresh and uses of region-internal definitions follow
    the renaming; uses of outside definitions (and phi arguments from outside
    predecessors) are left untouched. *)

type maps = {
  label_map : Dce_ir.Ir.label Dce_ir.Ir.Imap.t;  (** original → clone *)
  var_map : Dce_ir.Ir.var Dce_ir.Ir.Imap.t;      (** original → clone *)
}

val map_label : maps -> Dce_ir.Ir.label -> Dce_ir.Ir.label
(** Identity outside the cloned region. *)

val map_var : maps -> Dce_ir.Ir.var -> Dce_ir.Ir.var

val map_operand : maps -> Dce_ir.Ir.operand -> Dce_ir.Ir.operand

val clone_region : Dce_ir.Ir.func -> Dce_ir.Ir.Iset.t -> Dce_ir.Ir.func * maps
(** [clone_region fn region] adds a renamed copy of every block in [region]
    to [fn]. *)

val subst_operands :
  (Dce_ir.Ir.var -> Dce_ir.Ir.operand option) -> Dce_ir.Ir.func -> Dce_ir.Ir.func
(** Replaces register uses by operands throughout the function (used for
    parameter binding when inlining). *)
