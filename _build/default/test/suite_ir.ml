(* Tests for the IR substrate: lowering, CFG queries, dominators, SSA
   construction, natural loops, validation, printing. *)

open Helpers
module Ir = Dce_ir.Ir
module Cfg = Dce_ir.Cfg
module Dom = Dce_ir.Dom
module Ssa = Dce_ir.Ssa
module Loops = Dce_ir.Loops
module Validate = Dce_ir.Validate
module Lower = Dce_ir.Lower

let main_fn prog =
  match Ir.find_func prog "main" with
  | Some fn -> fn
  | None -> Alcotest.fail "no main"

(* ---- lowering ---- *)

let test_lower_validates () =
  let ir = lower {|
int g;
static int f(int x) { if (x) { return x + 1; } return 0; }
int main(void) { g = f(3); while (g) { g = g - 1; } return g; }
|} in
  (match Validate.program Validate.Pre_ssa ir with
   | Ok () -> ()
   | Error errs -> Alcotest.failf "invalid IR: %s" (String.concat "; " errs))

let test_lower_short_circuit_semantics () =
  (* && must not evaluate the RHS when LHS is false: division is total here,
     but a call on the RHS is observable *)
  let src = {|
int main(void) {
  int hits = 0;
  if (0 && ext(1)) { hits = 1; }
  if (1 || ext(2)) { hits = hits + 2; }
  return hits;
}
|} in
  let r = run_src src in
  Alcotest.(check int) "no extern events from short-circuit" 0
    (List.length
       (List.filter (function Dce_interp.Interp.Ev_extern _ -> true | _ -> false)
          r.Dce_interp.Interp.events));
  Alcotest.(check int) "result" 2 (exit_code src)

let test_lower_array_decay () =
  Alcotest.(check int) "b used as pointer" 7
    (exit_code {|
int b[3];
int main(void) { int *p = b; p[2] = 7; return b[2]; }
|})

let test_lower_address_taken_local () =
  Alcotest.(check int) "address-taken local becomes a frame slot" 5
    (exit_code {|
static void set(int *p) { *p = 5; }
int main(void) { int x = 0; set(&x); return x; }
|})

let test_lower_param_address_taken () =
  Alcotest.(check int) "address-taken parameter" 9
    (exit_code {|
static int bump(int x) { int *p = &x; *p = *p + 4; return x; }
int main(void) { return bump(5); }
|})

let test_lower_locals_zero_init () =
  Alcotest.(check int) "locals read before assignment are 0" 0
    (exit_code "int main(void) { int x; return x; }")

let test_lower_switch_implicit_break () =
  Alcotest.(check int) "cases do not fall through" 1
    (exit_code {|
int main(void) {
  int r = 0;
  switch (0) { case 0: { r = 1; } case 1: { r = 2; } default: { r = 3; } }
  return r;
}
|})

let test_lower_break_in_switch_in_loop () =
  Alcotest.(check int) "break in a case exits the switch, not the loop" 3
    (exit_code {|
int main(void) {
  int i;
  int r = 0;
  for (i = 0; i < 3; i++) {
    switch (i) { case 0: { break; } default: { } }
    r = r + 1;
  }
  return r;
}
|})

let test_lower_continue_in_for_runs_step () =
  Alcotest.(check int) "continue reaches the step" 5
    (exit_code {|
int main(void) {
  int i;
  int r = 0;
  for (i = 0; i < 10; i++) {
    if (i & 1) { continue; }
    r = r + 1;
  }
  return r;
}
|})

let test_lower_fallthrough_returns_zero () =
  Alcotest.(check int) "falling off a value function returns 0" 0
    (exit_code "static int f(void) { } int main(void) { return f(); }")

let test_marker_blocks () =
  let ir = lower {|
int main(void) { if (0) { DCEMarker0(); } DCEMarker1(); return 0; }
|} in
  let fn = main_fn ir in
  let blocks = Lower.func_entry_marker_blocks fn in
  Alcotest.(check int) "two markers" 2 (List.length blocks);
  Alcotest.(check bool) "different blocks" true
    (List.assoc 0 blocks <> List.assoc 1 blocks)

(* ---- cfg ---- *)

let diamond_src = {|
int main(void) {
  int x = ext(1) & 1;
  int r;
  if (x) { r = 1; } else { r = 2; }
  return r;
}
|}

let test_cfg_preds () =
  let fn = main_fn (lower diamond_src) in
  let preds = Cfg.predecessors fn in
  (* the join block has two predecessors *)
  let joins =
    Ir.Imap.fold (fun _ ps acc -> if List.length ps = 2 then acc + 1 else acc) preds 0
  in
  Alcotest.(check int) "one join" 1 joins

let test_cfg_rpo_starts_at_entry () =
  let fn = main_fn (lower diamond_src) in
  match Cfg.reverse_postorder fn with
  | entry :: _ -> Alcotest.(check int) "entry first" fn.Ir.fn_entry entry
  | [] -> Alcotest.fail "empty rpo"

let test_cfg_unreachable_removal () =
  let fn = main_fn (lower "int main(void) { return 0; if (1) { use(1); } return 1; }") in
  let cleaned = Cfg.remove_unreachable_blocks fn in
  Alcotest.(check bool) "blocks removed" true
    (Ir.Imap.cardinal cleaned.Ir.fn_blocks < Ir.Imap.cardinal fn.Ir.fn_blocks);
  Validate.func_exn Validate.Pre_ssa cleaned

(* ---- dominators ---- *)

let test_dom_diamond () =
  let fn = main_fn (lower diamond_src) in
  let dom = Dom.compute fn in
  let entry = fn.Ir.fn_entry in
  Ir.Imap.iter
    (fun l _ ->
      if Ir.Iset.mem l (Cfg.reachable fn) then
        Alcotest.(check bool) "entry dominates all" true (Dom.dominates dom entry l))
    fn.Ir.fn_blocks;
  Alcotest.(check bool) "reflexive" true (Dom.dominates dom entry entry);
  (* the two arms do not dominate each other *)
  let preds = Cfg.predecessors fn in
  let join =
    Ir.Imap.fold (fun l ps acc -> if List.length ps = 2 then Some (l, ps) else acc) preds None
  in
  match join with
  | Some (j, [ a; b ]) ->
    Alcotest.(check bool) "arm a !dom join" false (Dom.strictly_dominates dom a j && Dom.strictly_dominates dom b j);
    Alcotest.(check bool) "arms do not dominate each other" false (Dom.dominates dom a b)
  | _ -> Alcotest.fail "no join"

let test_dom_frontier_join () =
  let fn = main_fn (lower diamond_src) in
  let dom = Dom.compute fn in
  let preds = Cfg.predecessors fn in
  let join =
    Ir.Imap.fold (fun l ps acc -> if List.length ps = 2 then Some (l, ps) else acc) preds None
  in
  match join with
  | Some (j, arms) ->
    List.iter
      (fun arm ->
        Alcotest.(check bool) "join in arm's frontier" true (List.mem j (Dom.frontier dom arm)))
      arms
  | None -> Alcotest.fail "no join"

let test_dom_preorder_covers () =
  let fn = main_fn (lower diamond_src) in
  let dom = Dom.compute fn in
  Alcotest.(check int) "preorder covers reachable blocks"
    (Ir.Iset.cardinal (Cfg.reachable fn))
    (List.length (Dom.dom_tree_preorder dom))

(* ---- ssa ---- *)

let test_ssa_validates_and_preserves () =
  let srcs = [
    diamond_src;
    {|
int main(void) {
  int i;
  int s = 0;
  for (i = 0; i < 10; i++) { if (i & 1) { s += i; } else { s += 2; } }
  return s;
}
|};
    {|
int g;
int main(void) {
  int x = 0;
  while (x < 3 && g < 100) { g = g + x; x = x + 1; }
  return g;
}
|};
  ] in
  List.iter
    (fun src ->
      let ir = lower src in
      let ssa = Ssa.construct_program ir in
      Validate.program_exn Validate.Ssa ssa;
      check_equivalent ~name:"ssa" ir ssa)
    srcs

let test_ssa_loop_has_phi () =
  let ir = lower {|
int main(void) { int i = 0; while (i < 5) { i = i + 1; } return i; }
|} in
  let ssa = Ssa.construct_program ir in
  let fn = main_fn ssa in
  let phis = ref 0 in
  Ir.iter_instrs
    (fun _ i -> match i with Ir.Def (_, Ir.Phi _) -> incr phis | _ -> ())
    fn;
  Alcotest.(check bool) "at least one phi" true (!phis >= 1)

let test_ssa_single_defs () =
  let ssa = Ssa.construct_program (lower diamond_src) in
  let fn = main_fn ssa in
  let defs = Hashtbl.create 32 in
  Ir.iter_instrs
    (fun _ i ->
      match Ir.def_of_instr i with
      | Some v ->
        Alcotest.(check bool) "single definition" false (Hashtbl.mem defs v);
        Hashtbl.replace defs v ()
      | None -> ())
    fn

(* ---- loops ---- *)

let test_loops_detection () =
  let fn = main_fn (lower {|
int main(void) {
  int i;
  int j;
  int s = 0;
  for (i = 0; i < 3; i++) { for (j = 0; j < 2; j++) { s += 1; } }
  return s;
}
|}) in
  let fn = Dce_ir.Ssa.construct fn in
  let loops = Loops.natural_loops fn in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  (match loops with
   | [ inner; outer ] ->
     Alcotest.(check bool) "innermost first" true
       (Ir.Iset.cardinal inner.Loops.body < Ir.Iset.cardinal outer.Loops.body);
     Alcotest.(check bool) "nested" true (Ir.Iset.subset inner.Loops.body outer.Loops.body)
   | _ -> Alcotest.fail "expected two loops");
  let depths = Loops.loop_depth fn in
  let max_depth = Ir.Imap.fold (fun _ d acc -> max d acc) depths 0 in
  Alcotest.(check int) "max nesting depth" 2 max_depth

let test_loops_none () =
  let fn = main_fn (lower "int main(void) { return 1; }") in
  Alcotest.(check int) "no loops" 0 (List.length (Loops.natural_loops fn))

(* ---- validate ---- *)

let test_validate_catches_dangling_target () =
  let fn = main_fn (lower "int main(void) { return 0; }") in
  let broken =
    { fn with Ir.fn_blocks = Ir.Imap.add 999 { Ir.b_instrs = []; b_term = Ir.Jmp 12345 } fn.Ir.fn_blocks }
  in
  match Validate.func Validate.Pre_ssa broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "dangling target not caught"

let test_validate_catches_double_def_in_ssa () =
  let fn = main_fn (lower "int main(void) { int x = 1; x = 2; return x; }") in
  match Validate.func Validate.Ssa fn with
  | Error _ -> () (* pre-SSA code has multiple defs *)
  | Ok () -> Alcotest.fail "double definition not caught in SSA mode"

let test_validate_catches_undefined_use () =
  let fn = main_fn (lower "int main(void) { return 0; }") in
  let broken =
    {
      fn with
      Ir.fn_blocks =
        Ir.Imap.map
          (fun b -> { b with Ir.b_term = Ir.Ret (Some (Ir.Reg 424242)) })
          fn.Ir.fn_blocks;
    }
  in
  match Validate.func Validate.Pre_ssa broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "undefined register not caught"

(* ---- printer ---- *)

let test_printer_mentions_markers () =
  let ir = lower "int main(void) { DCEMarker7(); return 0; }" in
  let text = Dce_ir.Printer.program_to_string ir in
  Alcotest.(check bool) "marker printed" true (contains text "marker 7")

(* qcheck: SSA construction preserves behaviour on generated programs *)
let qcheck_tests =
  [
    qtest ~count:25 "ssa: validates and preserves behaviour (generated)"
      QCheck2.Gen.(int_range 1 100000)
      (fun seed ->
        let ir = Dce_ir.Lower.program (smith_program seed) in
        let ssa = Ssa.construct_program ir in
        (match Validate.program Validate.Ssa ssa with Ok () -> () | Error e -> failwith (String.concat ";" e));
        Dce_interp.Interp.equivalent_strict (Dce_interp.Interp.run ir) (Dce_interp.Interp.run ssa));
  ]

let suite =
  [
    ("lower: validates", `Quick, test_lower_validates);
    ("lower: short-circuit", `Quick, test_lower_short_circuit_semantics);
    ("lower: array decay", `Quick, test_lower_array_decay);
    ("lower: address-taken local", `Quick, test_lower_address_taken_local);
    ("lower: address-taken parameter", `Quick, test_lower_param_address_taken);
    ("lower: zero-initialized locals", `Quick, test_lower_locals_zero_init);
    ("lower: switch implicit break", `Quick, test_lower_switch_implicit_break);
    ("lower: break targets switch", `Quick, test_lower_break_in_switch_in_loop);
    ("lower: continue runs for-step", `Quick, test_lower_continue_in_for_runs_step);
    ("lower: implicit return 0", `Quick, test_lower_fallthrough_returns_zero);
    ("lower: marker block mapping", `Quick, test_marker_blocks);
    ("cfg: predecessors", `Quick, test_cfg_preds);
    ("cfg: rpo starts at entry", `Quick, test_cfg_rpo_starts_at_entry);
    ("cfg: unreachable removal", `Quick, test_cfg_unreachable_removal);
    ("dom: diamond", `Quick, test_dom_diamond);
    ("dom: frontier at join", `Quick, test_dom_frontier_join);
    ("dom: preorder covers", `Quick, test_dom_preorder_covers);
    ("ssa: validates and preserves", `Quick, test_ssa_validates_and_preserves);
    ("ssa: loop introduces phi", `Quick, test_ssa_loop_has_phi);
    ("ssa: single definitions", `Quick, test_ssa_single_defs);
    ("loops: nested detection", `Quick, test_loops_detection);
    ("loops: none", `Quick, test_loops_none);
    ("validate: dangling target", `Quick, test_validate_catches_dangling_target);
    ("validate: double def in SSA", `Quick, test_validate_catches_double_def_in_ssa);
    ("validate: undefined use", `Quick, test_validate_catches_undefined_use);
    ("printer: markers visible", `Quick, test_printer_mentions_markers);
  ]
  @ qcheck_tests
