(* Tests for the value-check instrumentation extension (paper §4.4). *)

open Helpers
module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir
module Ast = Dce_minic.Ast

let value_instr src =
  match Core.Value_instrument.instrument (parse src) with
  | Some r -> r
  | None -> Alcotest.fail "profiling failed"

let surviving_markers compiler level prog =
  C.Compiler.surviving_markers compiler level prog

let test_plants_loop_sum_check () =
  let prog, stats = value_instr {|
int main(void) {
  int i;
  int s = 0;
  for (i = 0; i < 8; i++) { s = s + i; }
  use(s);
  return 0;
}
|} in
  Alcotest.(check bool) "probes inserted" true (stats.Core.Value_instrument.probes_inserted >= 2);
  Alcotest.(check bool) "checks planted" true (stats.Core.Value_instrument.checks_planted >= 2);
  (* the planted checks mention the profiled constants: s = 28, i = 8 *)
  let text = Dce_minic.Pretty.program_to_string prog in
  Alcotest.(check bool) "s != 28 check" true (contains text "s != 28");
  Alcotest.(check bool) "i != 8 check" true (contains text "i != 8")

let test_checks_are_dead () =
  let prog, _ = value_instr {|
int g;
int main(void) {
  int i;
  for (i = 0; i < 5; i++) { g = g + 2; }
  use(g);
  return 0;
}
|} in
  match Core.Ground_truth.compute prog with
  | Core.Ground_truth.Valid t ->
    Alcotest.(check iset) "all value checks dead" t.Core.Ground_truth.all
      t.Core.Ground_truth.dead
  | Core.Ground_truth.Rejected r -> Alcotest.failf "rejected: %s" r

let test_unroll_capable_configs_eliminate () =
  let prog, _ = value_instr {|
int main(void) {
  int i;
  int s = 0;
  for (i = 0; i < 6; i++) { s = s + i; }
  use(s);
  return 0;
}
|} in
  (* -O2 unrolls and computes the sum; -O1 cannot *)
  List.iter
    (fun compiler ->
      Alcotest.(check (list int))
        (compiler.C.Compiler.name ^ " -O2 eliminates all checks")
        []
        (surviving_markers compiler C.Level.O2 prog);
      Alcotest.(check bool)
        (compiler.C.Compiler.name ^ " -O1 misses some check")
        true
        (surviving_markers compiler C.Level.O1 prog <> []))
    [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ]

let test_unstable_values_skipped () =
  (* helper runs twice with different arguments: its loop result is unstable *)
  let _, stats = value_instr {|
static int f(int n) {
  int i;
  int s = 0;
  for (i = 0; i < n; i++) { s = s + 1; }
  return s;
}
int main(void) {
  use(f(2));
  use(f(5));
  return 0;
}
|} in
  Alcotest.(check int) "no stable probe" 0 stats.Core.Value_instrument.checks_planted

let test_unexecuted_loops_skipped () =
  let _, stats = value_instr {|
static int x;
int main(void) {
  int s = 0;
  if (x) {
    int i;
    for (i = 0; i < 3; i++) { s = s + 1; }
  }
  use(s);
  return 0;
}
|} in
  Alcotest.(check int) "unexecuted probe plants nothing" 0
    stats.Core.Value_instrument.checks_planted

let test_probe_externs_removed () =
  let prog, _ = value_instr {|
int main(void) {
  int i;
  for (i = 0; i < 3; i++) { use(i); }
  return 0;
}
|} in
  Alcotest.(check bool) "no probe calls remain" false
    (List.mem "__dce_probe" (Ast.called_names prog))

let test_rejects_instrumented_input () =
  let instrumented =
    Core.Instrument.program (parse "int g; int main(void) { if (g) { g = 1; } return 0; }")
  in
  Alcotest.(check bool) "raises" true
    (try ignore (Core.Value_instrument.instrument instrumented); false
     with Invalid_argument _ -> true)

let test_max_checks_cap () =
  let src = {|
int main(void) {
  int a = 0;
  int b = 0;
  int c = 0;
  int i;
  for (i = 0; i < 3; i++) { a = a + 1; }
  for (i = 0; i < 3; i++) { b = b + 1; }
  for (i = 0; i < 3; i++) { c = c + 1; }
  use(a + b + c);
  return 0;
}
|} in
  match Core.Value_instrument.instrument ~max_checks:2 (parse src) with
  | Some (_, stats) ->
    Alcotest.(check int) "capped at 2" 2 stats.Core.Value_instrument.checks_planted
  | None -> Alcotest.fail "profiling failed"

let test_global_counter_checks () =
  (* value checks on a memory loop counter: the counter's final value follows
     from its explicit initialization store (b = 0), so promotion + unrolling
     prove it; the accumulator's final value would additionally require
     assuming the static's initializer at entry — which no configuration may
     do (the Listing 4 rule) — so that check survives everywhere *)
  let prog, stats = value_instr {|
static int b;
static int s;
int main(void) {
  for (b = 0; b < 4; b++) { s = s + b; }
  use(s);
  return 0;
}
|} in
  Alcotest.(check int) "both planted" 2 stats.Core.Value_instrument.checks_planted;
  let survivors = surviving_markers C.Gcc_sim.compiler C.Level.O2 prog in
  Alcotest.(check bool) "counter check (marker 0) eliminated" false (List.mem 0 survivors);
  Alcotest.(check bool) "accumulator check (marker 1) survives" true (List.mem 1 survivors);
  (* the accumulator check is missed by every configuration: a "both miss"
     finding of the value-check mode *)
  Alcotest.(check bool) "llvm misses it too" true
    (List.mem 1 (surviving_markers C.Llvm_sim.compiler C.Level.O3 prog))

let qcheck_tests =
  [
    qtest ~count:15 "value checks are always dead on generated programs"
      QCheck2.Gen.(int_range 1 100000)
      (fun seed ->
        match Core.Value_instrument.instrument (smith_program seed) with
        | None -> true
        | Some (prog, _) -> (
          match Core.Ground_truth.compute prog with
          | Core.Ground_truth.Valid t -> Ir.Iset.is_empty t.Core.Ground_truth.alive
          | Core.Ground_truth.Rejected _ -> false));
    qtest ~count:10 "value instrumentation preserves behaviour"
      QCheck2.Gen.(int_range 1 100000)
      (fun seed ->
        let raw = smith_program seed in
        match Core.Value_instrument.instrument raw with
        | None -> true
        | Some (prog, _) ->
          let strip r =
            {
              r with
              Dce_interp.Interp.events =
                List.filter
                  (function Dce_interp.Interp.Ev_marker _ -> false | _ -> true)
                  r.Dce_interp.Interp.events;
            }
          in
          Dce_interp.Interp.equivalent
            (Dce_interp.Interp.run (Dce_ir.Lower.program raw))
            (strip (Dce_interp.Interp.run (Dce_ir.Lower.program prog))));
  ]

let suite =
  [
    ("plants loop-sum checks", `Quick, test_plants_loop_sum_check);
    ("checks are dead by construction", `Quick, test_checks_are_dead);
    ("unroll-capable configs eliminate", `Quick, test_unroll_capable_configs_eliminate);
    ("unstable values skipped", `Quick, test_unstable_values_skipped);
    ("unexecuted loops skipped", `Quick, test_unexecuted_loops_skipped);
    ("probe calls removed", `Quick, test_probe_externs_removed);
    ("rejects instrumented input", `Quick, test_rejects_instrumented_input);
    ("max-checks cap", `Quick, test_max_checks_cap);
    ("global loop counters", `Quick, test_global_counter_checks);
  ]
  @ qcheck_tests
