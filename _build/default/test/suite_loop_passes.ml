(* Unit tests for the structural passes: inlining, unrolling, unswitching,
   jump threading, loop promotion, LCSSA, the vectorizer model, and
   unreachable-function removal. *)

open Helpers
module Ir = Dce_ir.Ir
module Opt = Dce_opt

let ssa src = Dce_ir.Ssa.construct_program (lower src)

let main_fn prog =
  match Ir.find_func prog "main" with
  | Some fn -> fn
  | None -> Alcotest.fail "no main"

let validate prog = Dce_ir.Validate.program_exn Dce_ir.Validate.Ssa prog

let count_instrs pred fn =
  let n = ref 0 in
  Ir.iter_instrs (fun _ i -> if pred i then incr n) fn;
  !n

let count_calls name fn =
  count_instrs (function Ir.Call (_, n, _) -> n = name | _ -> false) fn

let checked name prog out =
  validate out;
  check_equivalent ~name prog out;
  out

(* ---------- inline ---------- *)

let test_inline_basic () =
  let prog = ssa {|
static int add3(int x) { return x + 3; }
int main(void) { return add3(4) + add3(5); }
|} in
  let out = checked "inline" prog (Opt.Inline.run { Opt.Inline.threshold = 60; growth_cap = 1200 } prog) in
  Alcotest.(check int) "no calls to add3 remain" 0 (count_calls "add3" (main_fn out))

let test_inline_respects_threshold () =
  let prog = ssa {|
static int add3(int x) { return x + 3; }
int main(void) { return add3(4); }
|} in
  let out = Opt.Inline.run { Opt.Inline.threshold = 0; growth_cap = 1200 } prog in
  Alcotest.(check int) "threshold 0 inlines nothing" 1 (count_calls "add3" (main_fn out))

let test_inline_recursive_not_inlined () =
  let prog = ssa {|
static int f(int n) { if (n > 0) { return f(n - 1) + 1; } return 0; }
int main(void) { return f(3); }
|} in
  let out = checked "inline-rec" prog (Opt.Inline.run Opt.Inline.default_config prog) in
  (* the recursive call inside f must survive *)
  (match Ir.find_func out "f" with
   | Some f -> Alcotest.(check bool) "self call kept" true (count_calls "f" f >= 1)
   | None -> Alcotest.fail "f removed")

let test_inline_multiple_returns_phi () =
  let prog = ssa {|
static int pick(int x) { if (x > 2) { return 10; } return 20; }
int main(void) { return pick(ext(1) & 7); }
|} in
  let out = checked "inline-phi" prog (Opt.Inline.run Opt.Inline.default_config prog) in
  Alcotest.(check int) "call inlined" 0 (count_calls "pick" (main_fn out))

let test_inline_frame_syms_cloned () =
  let prog = ssa {|
static int sum2(int a, int b) { int buf[2]; buf[0] = a; buf[1] = b; return buf[0] + buf[1]; }
int main(void) { return sum2(1, 2) + sum2(3, 4); }
|} in
  let out = checked "inline-frames" prog (Opt.Inline.run Opt.Inline.default_config prog) in
  (* each call site gets its own cloned frame symbol *)
  let clones =
    List.filter (fun s -> contains s.Ir.sym_name "sum2.buf$i") out.Ir.prog_syms
  in
  Alcotest.(check int) "two clones" 2 (List.length clones)

let test_inline_skips_noreturn () =
  let prog = ssa {|
static int spin(void) { while (1) { use(1); } return 0; }
int main(void) { if (ext(1) == 12345) { use(spin()); } return 0; }
|} in
  let prog = Ir.map_func Opt.Simplify_cfg.run prog in
  let out = Opt.Inline.run Opt.Inline.default_config prog in
  validate out;
  Alcotest.(check int) "noreturn callee kept as a call" 1 (count_calls "spin" (main_fn out))

(* ---------- function_dce ---------- *)

let test_function_dce_removes_unreferenced_static () =
  let prog = ssa {|
static int orphan(void) { DCEMarker0(); return 1; }
int main(void) { return 0; }
|} in
  let out = Opt.Function_dce.run prog in
  Alcotest.(check bool) "orphan removed" true (Ir.find_func out "orphan" = None)

let test_function_dce_keeps_nonstatic () =
  let prog = ssa {|
int exported(void) { return 1; }
int main(void) { return 0; }
|} in
  let out = Opt.Function_dce.run prog in
  Alcotest.(check bool) "non-static kept" true (Ir.find_func out "exported" <> None)

let test_function_dce_transitive () =
  let prog = ssa {|
static int leaf(void) { return 1; }
static int mid(void) { return leaf(); }
int main(void) { return mid(); }
|} in
  let out = Opt.Function_dce.run prog in
  Alcotest.(check bool) "transitively reachable kept" true (Ir.find_func out "leaf" <> None)

(* ---------- promote + unroll ---------- *)

let fold_round prog =
  let info = Opt.Meminfo.analyze prog in
  let prog = Ir.map_func (Opt.Sccp.run Opt.Sccp.default_config info) prog in
  let prog = Ir.map_func (Opt.Gvn.run Opt.Gvn.default_config info) prog in
  let prog = Ir.map_func (Opt.Sccp.run Opt.Sccp.default_config info) prog in
  let prog = Ir.map_func Opt.Dce.run prog in
  Ir.map_func Opt.Simplify_cfg.run prog

let test_unroll_counted_loop () =
  let prog = ssa {|
int main(void) {
  int i;
  int s = 0;
  for (i = 0; i < 5; i++) { s = s + i; }
  if (s != 10) { DCEMarker0(); }
  return s;
}
|} in
  let out = checked "unroll" prog (Ir.map_func (Opt.Unroll.run Opt.Unroll.default_config) prog) in
  let out = fold_round out in
  Alcotest.(check int) "fully folded" 0
    (count_instrs (function Ir.Marker _ -> true | _ -> false) (main_fn out));
  Alcotest.(check int) "no loop left" 0
    (List.length (Dce_ir.Loops.natural_loops (main_fn out)))

let test_unroll_respects_trip_cap () =
  let prog = ssa {|
int main(void) {
  int i;
  int s = 0;
  for (i = 0; i < 100; i++) { s = s + 1; }
  return s;
}
|} in
  let out = Ir.map_func (Opt.Unroll.run { Opt.Unroll.default_config with Opt.Unroll.max_trip = 10 }) prog in
  Alcotest.(check int) "loop kept" 1 (List.length (Dce_ir.Loops.natural_loops (main_fn out)))

let test_unroll_zero_trips () =
  let prog = ssa {|
int main(void) {
  int i;
  int s = 0;
  for (i = 5; i < 5; i++) { s = s + 1; }
  return s;
}
|} in
  let out = checked "unroll0" prog (Ir.map_func (Opt.Unroll.run Opt.Unroll.default_config) prog) in
  Alcotest.(check int) "loop erased" 0 (List.length (Dce_ir.Loops.natural_loops (main_fn out)))

let test_unroll_rejects_opaque_bound () =
  let prog = ssa {|
int main(void) {
  int n = ext(1) & 7;
  int i;
  int s = 0;
  for (i = 0; i < n; i++) { s = s + 1; }
  return s;
}
|} in
  let out = checked "unroll-opaque" prog (Ir.map_func (Opt.Unroll.run Opt.Unroll.default_config) prog) in
  Alcotest.(check int) "opaque bound not unrolled" 1
    (List.length (Dce_ir.Loops.natural_loops (main_fn out)))

let test_promote_enables_global_counter_unroll () =
  let prog = ssa {|
static int b;
static int s;
int main(void) {
  for (b = 0; b < 3; b++) { s = s + b; }
  return s;
}
|} in
  let info = Opt.Meminfo.analyze prog in
  let promoted = Ir.map_func (Opt.Promote.run { Opt.Promote.precision = Opt.Alias.Full } info) prog in
  let promoted = checked "promote" prog promoted in
  let folded = fold_round promoted in
  let out = Ir.map_func (Opt.Unroll.run Opt.Unroll.default_config) folded in
  let out = checked "promote+unroll" prog out in
  Alcotest.(check int) "loop fully unrolled" 0
    (List.length (Dce_ir.Loops.natural_loops (main_fn out)))

let test_promote_skips_clobbered_cell () =
  (* a marker inside the loop may write the non-static counter: no promotion *)
  let prog = ssa {|
int b;
int main(void) {
  for (b = 0; b < 3; b++) { DCEMarker0(); }
  return 0;
}
|} in
  let info = Opt.Meminfo.analyze prog in
  let out = Ir.map_func (Opt.Promote.run { Opt.Promote.precision = Opt.Alias.Full } info) prog in
  validate out;
  (* loads of b must remain loads (not promoted) *)
  let loads = count_instrs (function Ir.Def (_, Ir.Load _) -> true | _ -> false) (main_fn out) in
  Alcotest.(check bool) "loads remain" true (loads >= 1);
  check_equivalent ~name:"promote-skip" prog out

(* ---------- lcssa ---------- *)

let test_lcssa_inserts_exit_phi () =
  let prog = ssa {|
int main(void) {
  int i = 0;
  int s = 0;
  while (i < 4) { s = s + i; i = i + 1; }
  return s;
}
|} in
  let fn = main_fn prog in
  let loops = Dce_ir.Loops.natural_loops fn in
  match loops with
  | [ loop ] -> (
    match Opt.Lcssa.close_loop fn loop with
    | Some fn' ->
      Dce_ir.Validate.func_exn Dce_ir.Validate.Ssa fn';
      let prog' = Ir.update_func prog fn' in
      check_equivalent ~name:"lcssa" prog prog'
    | None -> Alcotest.fail "lcssa refused a single-exit loop")
  | _ -> Alcotest.fail "expected one loop"

(* ---------- unswitch ---------- *)

let test_unswitch_hoists_invariant_branch () =
  let src = {|
int main(void) {
  int inv = ext(1) & 1;
  int i = 0;
  int s = 0;
  while (i < 4) {
    if (inv) { s = s + 2; } else { s = s + 1; }
    i = i + 1;
  }
  return s;
}
|} in
  let prog = ssa src in
  let info = Opt.Meminfo.analyze prog in
  let out = Ir.map_func (Opt.Unswitch.run Opt.Unswitch.default_config info) prog in
  let out = checked "unswitch" prog out in
  (* after unswitching there are two loops (the two specialized copies) *)
  Alcotest.(check int) "loop duplicated" 2
    (List.length (Dce_ir.Loops.natural_loops (main_fn out)))

let test_unswitch_licm_hoists_safe_load () =
  let src = {|
static int flag;
int g;
int main(void) {
  flag = ext(1) & 1;
  int i = 0;
  while (i < 3) {
    if (flag) { g = g + 1; }
    i = i + 1;
  }
  return g;
}
|} in
  let prog = ssa src in
  let info = Opt.Meminfo.analyze prog in
  let out = Ir.map_func (Opt.Unswitch.run Opt.Unswitch.default_config info) prog in
  let out = checked "unswitch-licm" prog out in
  Alcotest.(check bool) "unswitched through a hoisted load" true
    (List.length (Dce_ir.Loops.natural_loops (main_fn out)) = 2)

let test_unswitch_no_invariant () =
  let src = {|
int main(void) {
  int i = 0;
  int s = 0;
  while (i < 4) { if (i & 1) { s = s + 1; } i = i + 1; }
  return s;
}
|} in
  let prog = ssa src in
  let info = Opt.Meminfo.analyze prog in
  let out = Ir.map_func (Opt.Unswitch.run Opt.Unswitch.default_config info) prog in
  validate out;
  Alcotest.(check int) "variant condition not unswitched" 1
    (List.length (Dce_ir.Loops.natural_loops (main_fn out)))

(* ---------- jump threading ---------- *)

let test_jump_thread_conservative () =
  (* the block joining two const-feeding edges, branch on the phi *)
  let prog = ssa {|
int main(void) {
  int t;
  if (ext(1) & 1) { t = 1; } else { t = 0; }
  if (t) { use(10); } else { use(20); }
  return 0;
}
|} in
  let before = Ir.Imap.cardinal (main_fn prog).Ir.fn_blocks in
  let out =
    Ir.map_func
      (Opt.Jump_thread.run
         { Opt.Jump_thread.mode = Opt.Jump_thread.Conservative; phi_cleanup = true; max_threads = 8 })
      prog
  in
  let out = checked "jt" prog out in
  (* threading rewires edges; at minimum the function still behaves and no
     block count explosion occurred *)
  Alcotest.(check bool) "no explosion" true
    (Ir.Imap.cardinal (main_fn out).Ir.fn_blocks <= before + 2)

let test_jump_thread_aggressive_clones () =
  let prog = ssa {|
int g;
int main(void) {
  int t;
  if (ext(1) & 1) { t = 1; } else { t = 0; }
  g = g + 1;
  if (t) { use(10); } else { use(20); }
  return 0;
}
|} in
  let out =
    Ir.map_func
      (Opt.Jump_thread.run
         { Opt.Jump_thread.mode = Opt.Jump_thread.Aggressive; phi_cleanup = false; max_threads = 8 })
      prog
  in
  ignore (checked "jt-aggressive" prog out)

(* ---------- vectorize model ---------- *)

let test_vectorize_obfuscates_stores () =
  let src = {|
static int b;
static int c[4];
int main(void) {
  for (b = 0; b < 4; b++) { c[b] = 7; }
  return c[2];
}
|} in
  (* the vectorizer needs promoted counters to know the trip count *)
  let prog = ssa src in
  let info = Opt.Meminfo.analyze prog in
  let prog = Ir.map_func (Opt.Promote.run { Opt.Promote.precision = Opt.Alias.Full } info) prog in
  let prog = fold_round prog in
  let out = Opt.Vectorize.run Opt.Vectorize.default_config prog in
  validate out;
  check_equivalent ~name:"vectorize" prog out;
  Alcotest.(check bool) "vector pool symbol added" true
    (Ir.find_symbol out "__vec_pool" <> None);
  (* the rewritten addresses are opaque: memcp can no longer fold c[2] *)
  let info = Opt.Meminfo.analyze out in
  let folded = Ir.map_func (Opt.Memcp.run Opt.Memcp.default_config info) out in
  let loads = count_instrs (function Ir.Def (_, Ir.Load _) -> true | _ -> false) (main_fn folded) in
  Alcotest.(check bool) "load of c[2] not folded" true (loads >= 1)

let test_vectorize_skips_storeless_loops () =
  let prog = ssa {|
int main(void) {
  int i;
  int s = 0;
  for (i = 0; i < 4; i++) { s = s + i; }
  return s;
}
|} in
  let out = Opt.Vectorize.run Opt.Vectorize.default_config prog in
  Alcotest.(check bool) "no pool added" true (Ir.find_symbol out "__vec_pool" = None)

let suite =
  [
    ("inline: basic", `Quick, test_inline_basic);
    ("inline: threshold", `Quick, test_inline_respects_threshold);
    ("inline: recursion skipped", `Quick, test_inline_recursive_not_inlined);
    ("inline: multiple returns", `Quick, test_inline_multiple_returns_phi);
    ("inline: frame symbols cloned per site", `Quick, test_inline_frame_syms_cloned);
    ("inline: noreturn callees skipped", `Quick, test_inline_skips_noreturn);
    ("function-dce: removes orphans", `Quick, test_function_dce_removes_unreferenced_static);
    ("function-dce: keeps non-static", `Quick, test_function_dce_keeps_nonstatic);
    ("function-dce: transitive reachability", `Quick, test_function_dce_transitive);
    ("unroll: counted loop folds away", `Quick, test_unroll_counted_loop);
    ("unroll: trip cap respected", `Quick, test_unroll_respects_trip_cap);
    ("unroll: zero-trip loop", `Quick, test_unroll_zero_trips);
    ("unroll: opaque bound rejected", `Quick, test_unroll_rejects_opaque_bound);
    ("promote: global counters unrollable", `Quick, test_promote_enables_global_counter_unroll);
    ("promote: clobbered cells skipped", `Quick, test_promote_skips_clobbered_cell);
    ("lcssa: exit phis", `Quick, test_lcssa_inserts_exit_phi);
    ("unswitch: invariant branch hoisted", `Quick, test_unswitch_hoists_invariant_branch);
    ("unswitch: licm hoists safe loads", `Quick, test_unswitch_licm_hoists_safe_load);
    ("unswitch: variant condition kept", `Quick, test_unswitch_no_invariant);
    ("jump-thread: conservative", `Quick, test_jump_thread_conservative);
    ("jump-thread: aggressive clones safely", `Quick, test_jump_thread_aggressive_clones);
    ("vectorize: obfuscates store loops", `Quick, test_vectorize_obfuscates_stores);
    ("vectorize: skips storeless loops", `Quick, test_vectorize_skips_storeless_loops);
  ]
