(* Edge cases and regression tests gathered while developing the system:
   each test pins a behaviour that was once wrong or is easy to break. *)

open Helpers
module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir
module Opt = Dce_opt
module I = Dce_interp.Interp

let ssa src = Dce_ir.Ssa.construct_program (lower src)

let main_fn prog =
  match Ir.find_func prog "main" with
  | Some fn -> fn
  | None -> Alcotest.fail "no main"

(* ---- lowering / semantics corners ---- *)

let test_empty_loop_body () =
  Alcotest.(check int) "empty while body terminates via condition" 0
    (exit_code "int main(void) { int i = 3; while (i > 0) { i = i - 1; } return i; }")

let test_for_without_clauses () =
  Alcotest.(check int) "for (;;) with break" 5
    (exit_code {|
int main(void) {
  int i = 0;
  for (;;) { i = i + 1; if (i == 5) { break; } }
  return i;
}
|})

let test_switch_no_default () =
  Alcotest.(check int) "missing default falls through" 9
    (exit_code {|
int main(void) {
  int r = 9;
  switch (7) { case 0: { r = 1; } case 1: { r = 2; } default: { } }
  return r;
}
|})

let test_nested_breaks () =
  Alcotest.(check int) "break exits only the inner loop" 9
    (exit_code {|
int main(void) {
  int i;
  int j;
  int n = 0;
  for (i = 0; i < 3; i++) {
    for (j = 0; j < 10; j++) { if (j == 3) { break; } n = n + 1; }
  }
  return n;
}
|})

let test_deep_pointer_chain () =
  Alcotest.(check int) "int ** through globals" 7
    (exit_code {|
int x;
int *p = &x;
int main(void) {
  int **q = &p;
  **q = 7;
  return x;
}
|})

let test_negative_array_index_traps () =
  let r = run_src "int b[2]; int main(void) { int i = 0 - 1; return b[i]; }" in
  Alcotest.(check bool) "negative index traps" true
    (match r.I.outcome with I.Trap _ -> true | _ -> false)

let test_shadowed_global_still_global_elsewhere () =
  Alcotest.(check int) "shadowing is per function" 4
    (exit_code {|
int x = 4;
static int read_global(void) { return x; }
int main(void) { int x = 9; use(x); return read_global(); }
|})

(* ---- pass corners ---- *)

let test_sccp_pointer_relational_same_symbol () =
  let prog = ssa {|
int b[4];
int main(void) {
  if (&b[1] < &b[3]) { use(1); } else { DCEMarker0(); }
  return 0;
}
|} in
  let info = Opt.Meminfo.analyze prog in
  let out = Ir.map_func (Opt.Sccp.run Opt.Sccp.default_config info) prog in
  let out = Ir.map_func Opt.Simplify_cfg.run out in
  let markers = Ir.marker_ids (main_fn out) in
  Alcotest.(check (list int)) "else-arm folded away" [] markers

let test_simplify_self_loop_untouched () =
  (* a dynamically-unreachable self loop must not confuse the merger *)
  let prog = lower {|
int main(void) {
  if (0) { while (1) { use(1); } }
  return 0;
}
|} in
  let out = Ir.map_func Opt.Simplify_cfg.run prog in
  Dce_ir.Validate.program_exn Dce_ir.Validate.Pre_ssa out;
  check_equivalent ~name:"self-loop" prog out

let test_unroll_then_unroll_nested () =
  (* both loops of a constant nest unroll and the whole nest folds *)
  let prog = ssa {|
int main(void) {
  int i;
  int j;
  int s = 0;
  for (i = 0; i < 3; i++) { for (j = 0; j < 2; j++) { s = s + 1; } }
  if (s != 6) { DCEMarker0(); }
  return s;
}
|} in
  let feats = C.Compiler.features C.Gcc_sim.compiler C.Level.O2 in
  let out = C.Pipeline.run feats (lower {|
int main(void) {
  int i;
  int j;
  int s = 0;
  for (i = 0; i < 3; i++) { for (j = 0; j < 2; j++) { s = s + 1; } }
  if (s != 6) { DCEMarker0(); }
  return s;
}
|}) in
  ignore prog;
  Alcotest.(check (list int)) "nest fully folded" []
    (Dce_backend.Asm.surviving_markers (Dce_backend.Codegen.program out))

let test_inline_growth_cap () =
  (* a caller already at the growth cap stops inlining but stays correct *)
  let prog = ssa {|
static int f(int x) { return x + 1; }
int main(void) { return f(f(f(f(1)))); }
|} in
  let out = Opt.Inline.run { Opt.Inline.threshold = 60; growth_cap = 1 } prog in
  Dce_ir.Validate.program_exn Dce_ir.Validate.Ssa out;
  check_equivalent ~name:"growth cap" prog out

let test_memcp_array_cells_independent () =
  let prog = ssa {|
static int a[3];
int main(void) {
  a[0] = 1;
  a[2] = 5;
  a[0] = 2;
  if (a[2] != 5) { DCEMarker0(); }
  use(a[0]);
  return 0;
}
|} in
  let info = Opt.Meminfo.analyze prog in
  let out = Ir.map_func (Opt.Memcp.run Opt.Memcp.default_config info) prog in
  let out = Ir.map_func (Opt.Sccp.run Opt.Sccp.default_config info) out in
  let out = Ir.map_func Opt.Simplify_cfg.run out in
  Alcotest.(check (list int)) "distinct cells tracked separately" []
    (Ir.marker_ids (main_fn out))

let test_dse_respects_defined_callee_reads () =
  let prog = ssa {|
static int g;
static int reader(void) { return g; }
int main(void) {
  g = 1;
  use(reader());
  g = 2;
  use(reader());
  return 0;
}
|} in
  let info = Opt.Meminfo.analyze prog in
  let out =
    Ir.map_func
      (fun fn -> Opt.Dse.run Opt.Dse.default_config info ~is_main:(fn.Ir.fn_name = "main") fn)
      prog
  in
  let stores =
    let n = ref 0 in
    Ir.iter_instrs (fun _ i -> match i with Ir.Store _ -> incr n | _ -> ()) (main_fn out);
    !n
  in
  Alcotest.(check int) "both stores observable through the callee" 2 stores

let test_ipa_cp_mixed_constants_not_propagated () =
  let prog = ssa {|
static int f(int x) { if (x != 3) { DCEMarker0(); } return x; }
int main(void) { use(f(3)); use(f(4)); return 0; }
|} in
  let out = Opt.Ipa_cp.run prog in
  Dce_ir.Validate.program_exn Dce_ir.Validate.Ssa out;
  check_equivalent ~name:"ipa-cp mixed" prog out;
  (* x is not constant across call sites: the marker must stay reachable *)
  let r = I.run out in
  Alcotest.(check bool) "marker still executes" true
    (Ir.Iset.mem 0 r.I.executed_markers)

let test_ipa_cp_single_site () =
  let prog = ssa {|
static int f(int x) { if (x != 3) { DCEMarker0(); } return x; }
int main(void) { use(f(3)); return 0; }
|} in
  let out = Opt.Ipa_cp.run prog in
  let info = Opt.Meminfo.analyze out in
  let out = Ir.map_func (Opt.Sccp.run Opt.Sccp.default_config info) out in
  let out = Ir.map_func Opt.Simplify_cfg.run out in
  Alcotest.(check (list int)) "constant argument proves the branch dead" []
    (Ir.program_marker_ids out)

(* ---- version / bisection corners ---- *)

let test_capabilities_grow_until_regressions () =
  (* at -O1 (no regression commits target it) capability never regresses
     across the history for a gva-foldable program *)
  let prog =
    Core.Instrument.program
      (parse "static int a = 5; int main(void) { if (a != 5) { use(1); } return 0; }")
  in
  let head = C.Compiler.head C.Gcc_sim.compiler in
  let eliminated_at v =
    not (List.mem 0 (C.Compiler.surviving_markers C.Gcc_sim.compiler ~version:v C.Level.O1 prog))
  in
  let first = ref None in
  for v = 0 to head do
    if eliminated_at v && !first = None then first := Some v
  done;
  (match !first with
   | None -> Alcotest.fail "never eliminated"
   | Some v0 ->
     for v = v0 to head do
       Alcotest.(check bool) "monotone at -O1 after first success" true (eliminated_at v)
     done)

let test_full_history_at_least_as_good_as_head () =
  (* post-head fixes only add capability (they are fixes) for the families
     they target *)
  let prog = Core.Instrument.program (parse {|
int i;
static int b[2] = {0, 0};
int main(void) { if (b[i]) { use(1); } return 0; }
|}) in
  let full = List.length C.Gcc_sim.compiler.C.Compiler.history in
  Alcotest.(check bool) "head misses" true
    (List.mem 0 (C.Compiler.surviving_markers C.Gcc_sim.compiler C.Level.O3 prog));
  Alcotest.(check bool) "full history (with fixes) eliminates" false
    (List.mem 0 (C.Compiler.surviving_markers C.Gcc_sim.compiler ~version:full C.Level.O3 prog))

(* ---- instrumentation corners ---- *)

let test_instrument_switch_cases_and_default () =
  let instr =
    Core.Instrument.program
      (parse
         {|
int g;
int main(void) {
  switch (g) { case 0: { g = 1; } case 5: { g = 2; } default: { g = 3; } }
  return 0;
}
|})
  in
  Alcotest.(check int) "three case markers" 3 (Core.Instrument.marker_count instr)

let test_instrument_for_loop_body () =
  let instr =
    Core.Instrument.program
      (parse "int main(void) { int i; for (i = 0; i < 2; i++) { use(i); } return 0; }")
  in
  Alcotest.(check int) "loop body marker" 1 (Core.Instrument.marker_count instr)

let suite =
  [
    ("lower: empty loop body", `Quick, test_empty_loop_body);
    ("lower: for without clauses", `Quick, test_for_without_clauses);
    ("lower: switch without matching case", `Quick, test_switch_no_default);
    ("lower: nested breaks", `Quick, test_nested_breaks);
    ("interp: pointer-to-pointer chains", `Quick, test_deep_pointer_chain);
    ("interp: negative index traps", `Quick, test_negative_array_index_traps);
    ("interp: shadowing is per function", `Quick, test_shadowed_global_still_global_elsewhere);
    ("sccp: relational address compare", `Quick, test_sccp_pointer_relational_same_symbol);
    ("simplify: self loop", `Quick, test_simplify_self_loop_untouched);
    ("pipeline: nested loop nest folds", `Quick, test_unroll_then_unroll_nested);
    ("inline: growth cap", `Quick, test_inline_growth_cap);
    ("memcp: array cells independent", `Quick, test_memcp_array_cells_independent);
    ("dse: callee reads respected", `Quick, test_dse_respects_defined_callee_reads);
    ("ipa-cp: mixed constants skipped", `Quick, test_ipa_cp_mixed_constants_not_propagated);
    ("ipa-cp: single constant site folds", `Quick, test_ipa_cp_single_site);
    ("versions: -O1 capability monotone", `Quick, test_capabilities_grow_until_regressions);
    ("versions: post-head fixes repair 9f", `Quick, test_full_history_at_least_as_good_as_head);
    ("instrument: switch arms", `Quick, test_instrument_switch_cases_and_default);
    ("instrument: for body", `Quick, test_instrument_for_loop_body);
  ]
