(* Tests for the Smith generator: determinism, validity, termination,
   corpus-shape invariants. *)

open Helpers
module S = Dce_smith.Smith
module Core = Dce_core
module Ir = Dce_ir.Ir
module I = Dce_interp.Interp

let test_determinism () =
  let p1, k1 = S.generate (S.default_config 123) in
  let p2, k2 = S.generate (S.default_config 123) in
  Alcotest.(check string) "identical programs"
    (Dce_minic.Pretty.program_to_string p1)
    (Dce_minic.Pretty.program_to_string p2);
  Alcotest.(check bool) "identical site counts" true (k1 = k2)

let test_seeds_differ () =
  let p1, _ = S.generate (S.default_config 1) in
  let p2, _ = S.generate (S.default_config 2) in
  Alcotest.(check bool) "different programs" false
    (Dce_minic.Pretty.program_to_string p1 = Dce_minic.Pretty.program_to_string p2)

let test_site_counts_match_config () =
  let cfg = { (S.default_config 5) with S.num_sites = 9 } in
  let _, kinds = S.generate cfg in
  Alcotest.(check int) "9 sites planted" 9 (List.fold_left (fun a (_, n) -> a + n) 0 kinds)

let test_single_kind_weights () =
  let cfg = { (S.default_config 5) with S.weights = [ (S.K_literal, 1) ]; num_sites = 6 } in
  let _, kinds = S.generate cfg in
  Alcotest.(check (list (pair string int))) "only literals"
    [ ("literal", 6) ]
    (List.map (fun (k, n) -> (S.kind_name k, n)) kinds)

let test_corpus_analyzable () =
  (* every generated program type-checks, terminates, and analyzes soundly *)
  List.iter
    (fun (prog, _) ->
      match Core.Analysis.run prog with
      | Core.Analysis.Rejected r -> Alcotest.failf "rejected: %s" r
      | Core.Analysis.Analyzed a ->
        Alcotest.(check int) "no soundness violations" 0
          (List.length (Core.Analysis.soundness_violations a)))
    (S.generate_corpus ~seed:99 ~count:8)

let test_corpus_shape () =
  (* the tuned weights keep the dead share and the level ordering in the
     paper's ballpark on a moderate corpus *)
  let outcomes =
    List.map (fun (p, _) -> (Core.Analysis.run p, p)) (S.generate_corpus ~seed:7 ~count:25)
  in
  let stats = Dce_report.Stats.collect outcomes in
  let dead_share =
    100.0 *. float_of_int stats.Dce_report.Stats.dead_markers
    /. float_of_int (max 1 stats.Dce_report.Stats.total_markers)
  in
  Alcotest.(check bool) "dead share around 70-90%" true (dead_share > 65.0 && dead_share < 95.0);
  let missed comp level =
    let ct =
      List.find
        (fun c -> c.Dce_report.Stats.ct_compiler = comp && c.Dce_report.Stats.ct_level = level)
        stats.Dce_report.Stats.per_config
    in
    ct.Dce_report.Stats.ct_missed
  in
  List.iter
    (fun comp ->
      Alcotest.(check bool) "O0 worst" true
        (missed comp Dce_compiler.Level.O0 > missed comp Dce_compiler.Level.O1);
      Alcotest.(check bool) "O1 > O2" true
        (missed comp Dce_compiler.Level.O1 > missed comp Dce_compiler.Level.O2))
    [ "gcc-sim"; "llvm-sim" ];
  (* the headline asymmetry: llvm-sim beats gcc-sim at -O3 *)
  Alcotest.(check bool) "llvm-sim better at -O3" true
    (missed "llvm-sim" Dce_compiler.Level.O3 < missed "gcc-sim" Dce_compiler.Level.O3)

let test_kind_names_unique () =
  let names = List.map S.kind_name S.all_kinds in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (Dce_support.Listx.uniq names))

let qcheck_tests =
  [
    qtest ~count:30 "generated programs never trap"
      QCheck2.Gen.(int_range 1 5000000)
      (fun seed ->
        match (I.run (Dce_ir.Lower.program (smith_program seed))).I.outcome with
        | I.Finished _ -> true
        | I.Trap _ | I.Out_of_fuel -> false);
  ]

let suite =
  [
    ("determinism", `Quick, test_determinism);
    ("seeds differ", `Quick, test_seeds_differ);
    ("site counts", `Quick, test_site_counts_match_config);
    ("single-kind weights", `Quick, test_single_kind_weights);
    ("corpus analyzable and sound", `Slow, test_corpus_analyzable);
    ("corpus shape", `Slow, test_corpus_shape);
    ("kind names unique", `Quick, test_kind_names_unique);
  ]
  @ qcheck_tests
