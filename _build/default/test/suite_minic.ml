(* Tests for the MiniC front end: operators, lexer, parser, pretty printer,
   type checker. *)

open Helpers
module Ops = Dce_minic.Ops
module Ast = Dce_minic.Ast
module Lexer = Dce_minic.Lexer
module Parser = Dce_minic.Parser
module Pretty = Dce_minic.Pretty
module Typecheck = Dce_minic.Typecheck

(* ---- operators ---- *)

let test_total_division () =
  Alcotest.(check int) "x/0 = 0" 0 (Ops.eval_binop Ops.Div 7 0);
  Alcotest.(check int) "x%0 = 0" 0 (Ops.eval_binop Ops.Mod 7 0);
  Alcotest.(check int) "normal div" 3 (Ops.eval_binop Ops.Div 7 2);
  Alcotest.(check int) "negative mod" (-1) (Ops.eval_binop Ops.Mod (-7) 2)

let test_shift_masking () =
  (* shift counts are masked to 0..62: never an exception *)
  Alcotest.(check int) "shl by 64+2 behaves like by (66 land 62)=2" (4 * 8)
    (Ops.eval_binop Ops.Shl 8 66);
  Alcotest.(check int) "shr negative count masked" (Ops.eval_binop Ops.Shr 64 (-2 land 62))
    (Ops.eval_binop Ops.Shr 64 (-2))

let test_comparisons_return_bool () =
  List.iter
    (fun op ->
      let v = Ops.eval_binop op 3 4 in
      Alcotest.(check bool) "0/1" true (v = 0 || v = 1))
    [ Ops.Eq; Ops.Ne; Ops.Lt; Ops.Le; Ops.Gt; Ops.Ge; Ops.Land; Ops.Lor ]

let test_negate_comparison () =
  List.iter
    (fun op ->
      match Ops.negate_comparison op with
      | Some neg ->
        for x = -3 to 3 do
          for y = -3 to 3 do
            Alcotest.(check int) "negation flips"
              (1 - Ops.eval_binop op x y)
              (Ops.eval_binop neg x y)
          done
        done
      | None -> Alcotest.failf "comparison %s must have a negation" (Ops.binop_symbol op))
    [ Ops.Eq; Ops.Ne; Ops.Lt; Ops.Le; Ops.Gt; Ops.Ge ]

let test_swap_comparison () =
  List.iter
    (fun op ->
      match Ops.swap_comparison op with
      | Some sw ->
        for x = -3 to 3 do
          for y = -3 to 3 do
            Alcotest.(check int) "swap mirrors" (Ops.eval_binop op x y) (Ops.eval_binop sw y x)
          done
        done
      | None -> Alcotest.fail "comparison must have a swap")
    [ Ops.Eq; Ops.Ne; Ops.Lt; Ops.Le; Ops.Gt; Ops.Ge ]

let test_commutativity_claims () =
  List.iter
    (fun op ->
      if Ops.is_commutative op then
        for x = -4 to 4 do
          for y = -4 to 4 do
            Alcotest.(check int)
              (Printf.sprintf "%s commutes" (Ops.binop_symbol op))
              (Ops.eval_binop op x y) (Ops.eval_binop op y x)
          done
        done)
    Ops.all_binops

(* ---- lexer ---- *)

let tokens src = List.map (fun (t, _, _) -> t) (Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.(check int) "token count" 6 (List.length (tokens "int x = 42;"));
  match tokens "int x = 42;" with
  | [ Lexer.KINT; Lexer.IDENT "x"; Lexer.ASSIGN; Lexer.INT 42; Lexer.SEMI; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_int_types_alias () =
  List.iter
    (fun kw ->
      match tokens kw with
      | [ Lexer.KINT; Lexer.EOF ] -> ()
      | _ -> Alcotest.failf "%s should lex as int" kw)
    [ "int"; "char"; "short"; "long"; "unsigned"; "signed" ]

let test_lexer_comments () =
  match tokens "1 // comment\n /* block\n comment */ 2" with
  | [ Lexer.INT 1; Lexer.INT 2; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "comments should be skipped"

let test_lexer_preprocessor () =
  match tokens "#include <stdio.h>\n1" with
  | [ Lexer.INT 1; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "# lines should be skipped"

let test_lexer_hex_and_suffix () =
  match tokens "0x10 78240L 5u" with
  | [ Lexer.INT 16; Lexer.INT 78240; Lexer.INT 5; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "hex and suffixed literals"

let test_lexer_two_char_ops () =
  match tokens "<< >> <= >= == != && || += ++" with
  | [ Lexer.SHL; Lexer.SHR; Lexer.LE; Lexer.GE; Lexer.EQ; Lexer.NE; Lexer.ANDAND; Lexer.OROR;
      Lexer.PLUSEQ; Lexer.PLUSPLUS; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "two-char operators"

let test_lexer_error () =
  Alcotest.(check bool) "raises" true
    (try ignore (Lexer.tokenize "int @ x"); false with Lexer.Lex_error _ -> true)

(* ---- parser ---- *)

let test_parse_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  (match e with
   | Ast.Binary (Ops.Add, Ast.Int 1, Ast.Binary (Ops.Mul, Ast.Int 2, Ast.Int 3)) -> ()
   | _ -> Alcotest.fail "mul binds tighter than add");
  let e2 = Parser.parse_expr "1 < 2 == 0" in
  match e2 with
  | Ast.Binary (Ops.Eq, Ast.Binary (Ops.Lt, _, _), Ast.Int 0) -> ()
  | _ -> Alcotest.fail "relational binds tighter than equality"

let test_parse_unary_chain () =
  match Parser.parse_expr "!!~-x" with
  | Ast.Unary (Ops.Lnot, Ast.Unary (Ops.Lnot, Ast.Unary (Ops.Bnot, Ast.Unary (Ops.Neg, Ast.Var "x"))))
    -> ()
  | _ -> Alcotest.fail "unary chain"

let test_parse_address_forms () =
  (match Parser.parse_expr "&a" with
   | Ast.Addr_of (Ast.Lvar "a") -> ()
   | _ -> Alcotest.fail "&a");
  (match Parser.parse_expr "&b[1]" with
   | Ast.Addr_of (Ast.Lindex ("b", Ast.Int 1)) -> ()
   | _ -> Alcotest.fail "&b[1]");
  match Parser.parse_expr "&*p" with
  | Ast.Addr_of (Ast.Lderef (Ast.Var "p")) -> ()
  | _ -> Alcotest.fail "&*p"

let test_parse_compound_assign () =
  let prog = parse "int g; int main(void) { g += 2; g++; g--; return g; }" in
  Alcotest.(check int) "desugared to 2" 2 (exit_code (Dce_minic.Pretty.program_to_string prog))

let test_parse_multi_declarator () =
  let prog = parse "int a, *b, c[2]; int main(void) { return a; }" in
  Alcotest.(check int) "three globals" 3 (List.length prog.Ast.p_globals)

let test_parse_global_addr_init () =
  let prog = parse "int a; int *p = &a; int b[2]; int *q = &b[1]; int main(void){return 0;}" in
  let find n = List.find (fun g -> g.Ast.g_name = n) prog.Ast.p_globals in
  (match (find "p").Ast.g_init with
   | Ast.Gaddr ("a", 0) -> ()
   | _ -> Alcotest.fail "p = &a");
  match (find "q").Ast.g_init with
  | Ast.Gaddr ("b", 1) -> ()
  | _ -> Alcotest.fail "q = &b[1]"

let test_parse_marker_calls () =
  let prog = parse "int main(void) { DCEMarker3(); return 0; }" in
  Alcotest.(check (list int)) "markers" [ 3 ] (Ast.markers_of_program prog)

let test_parse_else_if_chain () =
  let src = "int main(void) { int x = 2; if (x == 1) return 1; else if (x == 2) return 2; else return 3; }" in
  Alcotest.(check int) "chain" 2 (exit_code src)

let test_parse_cast_ignored () =
  let src = "int main(void) { int x = (int) 5; return x; }" in
  Alcotest.(check int) "cast" 5 (exit_code src)

let test_parse_error_reported () =
  Alcotest.(check bool) "raises" true
    (try ignore (Parser.parse_program "int main(void) { if }"); false
     with Parser.Parse_error _ -> true)

(* ---- pretty / round trip ---- *)

let roundtrip_once prog =
  Typecheck.check_exn (Parser.parse_program (Pretty.program_to_string prog))

let test_roundtrip_fixed () =
  let src =
    {|
static int a = 4;
int b[3] = {1, 2, 3};
int *p = &b[2];
extern int use(int);
static int f(int x, int *q) {
  if (x > 2 && a != 0) { *q = x << 1; } else { use(x); }
  return x % 3;
}
int main(void) {
  int i;
  for (i = 0; i < 5; i++) { a += f(i, p); }
  switch (a & 3) {
    case 0: { use(0); }
    case 1: { use(1); }
    default: { use(a); }
  }
  while (a > 0) { a -= 2; if (a == 3) { break; } }
  return a;
}
|}
  in
  let p1 = parse src in
  let p2 = roundtrip_once p1 in
  let p3 = roundtrip_once p2 in
  Alcotest.(check string) "round trip is stable"
    (Pretty.program_to_string p2) (Pretty.program_to_string p3);
  check_equivalent ~name:"roundtrip"
    (Dce_ir.Lower.program p1) (Dce_ir.Lower.program p2)

let test_negative_literal_roundtrip () =
  let src = "static int a = (-5); int main(void) { return a * (-1); }" in
  Alcotest.(check int) "value" 5 (exit_code src);
  let p = parse src in
  Alcotest.(check int) "reparse keeps value" 5
    (exit_code (Pretty.program_to_string p))

(* ---- typecheck ---- *)

let expect_errors src =
  match Typecheck.check (Parser.parse_program src) with
  | Ok _ -> Alcotest.fail "expected type errors"
  | Error _ -> ()

let test_tc_undeclared () = expect_errors "int main(void) { return nosuch; }"
let test_tc_duplicate_global () = expect_errors "int a; int a; int main(void) { return 0; }"
let test_tc_duplicate_local () =
  expect_errors "int main(void) { int x; int x; return 0; }"
let test_tc_index_scalar () = expect_errors "int a; int main(void) { return a[0]; }"
let test_tc_assign_array () = expect_errors "int a[2]; int main(void) { a = 0; return 0; }"
let test_tc_break_outside () = expect_errors "int main(void) { break; return 0; }"
let test_tc_continue_outside () = expect_errors "int main(void) { continue; return 0; }"
let test_tc_void_return_value () =
  expect_errors "void f(void) { return 3; } int main(void) { f(); return 0; }"
let test_tc_arity () =
  expect_errors "static int f(int x) { return x; } int main(void) { return f(1, 2); }"
let test_tc_duplicate_case () =
  expect_errors "int main(void) { switch (1) { case 0: {} case 0: {} default: {} } return 0; }"

let test_tc_implicit_extern_normalized () =
  let prog = parse "int main(void) { dead(); return 0; }" in
  Alcotest.(check bool) "dead added to externs" true
    (List.mem_assoc "dead" prog.Ast.p_externs)

let test_tc_has_main () =
  Alcotest.(check bool) "has main" true (Typecheck.has_main (parse "int main(void) { return 0; }"));
  Alcotest.(check bool) "no main" false
    (Typecheck.has_main (parse "static int f(void) { return 0; }"))

(* ---- qcheck: round trip on generated programs ---- *)

let qcheck_tests =
  [
    qtest ~count:200 "lexer: arbitrary bytes never crash (Lex_error only)"
      QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 60))
      (fun s ->
        match Lexer.tokenize s with
        | _ -> true
        | exception Lexer.Lex_error _ -> true);
    qtest ~count:200 "parser: arbitrary printable text never crashes"
      QCheck2.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 80))
      (fun s ->
        match Parser.parse_program s with
        | _ -> true
        | exception Lexer.Lex_error _ -> true
        | exception Parser.Parse_error _ -> true);
    qtest ~count:100 "parser: token soup from C fragments never crashes"
      QCheck2.Gen.(
        let frag =
          oneofl
            [ "int"; "x"; "("; ")"; "{"; "}"; "if"; "else"; "while"; "&&"; "*"; "&"; "=";
              "=="; ";"; ","; "return"; "0"; "42"; "["; "]"; "switch"; "case"; ":"; "-" ]
        in
        map (String.concat " ") (list_size (int_range 0 30) frag))
      (fun s ->
        match Parser.parse_program s with
        | _ -> true
        | exception Lexer.Lex_error _ -> true
        | exception Parser.Parse_error _ -> true);
    qtest ~count:30 "pretty/parse round trip on generated programs"
      QCheck2.Gen.(int_range 1 100000)
      (fun seed ->
        let p1 = smith_program seed in
        let p2 = roundtrip_once p1 in
        Pretty.program_to_string p1 = Pretty.program_to_string p2);
    qtest ~count:30 "round-trip preserves behaviour"
      QCheck2.Gen.(int_range 1 100000)
      (fun seed ->
        let p1 = smith_program seed in
        let p2 = roundtrip_once p1 in
        Dce_interp.Interp.equivalent_strict
          (Dce_interp.Interp.run (Dce_ir.Lower.program p1))
          (Dce_interp.Interp.run (Dce_ir.Lower.program p2)));
  ]

let suite =
  [
    ("ops: total division", `Quick, test_total_division);
    ("ops: shift masking", `Quick, test_shift_masking);
    ("ops: comparisons return 0/1", `Quick, test_comparisons_return_bool);
    ("ops: negate_comparison", `Quick, test_negate_comparison);
    ("ops: swap_comparison", `Quick, test_swap_comparison);
    ("ops: commutativity claims", `Quick, test_commutativity_claims);
    ("lexer: basics", `Quick, test_lexer_basics);
    ("lexer: integer type aliases", `Quick, test_lexer_int_types_alias);
    ("lexer: comments", `Quick, test_lexer_comments);
    ("lexer: preprocessor lines", `Quick, test_lexer_preprocessor);
    ("lexer: hex and suffixes", `Quick, test_lexer_hex_and_suffix);
    ("lexer: two-char operators", `Quick, test_lexer_two_char_ops);
    ("lexer: error", `Quick, test_lexer_error);
    ("parser: precedence", `Quick, test_parse_precedence);
    ("parser: unary chain", `Quick, test_parse_unary_chain);
    ("parser: address forms", `Quick, test_parse_address_forms);
    ("parser: compound assignment sugar", `Quick, test_parse_compound_assign);
    ("parser: multi declarators", `Quick, test_parse_multi_declarator);
    ("parser: global address initializers", `Quick, test_parse_global_addr_init);
    ("parser: marker calls", `Quick, test_parse_marker_calls);
    ("parser: else-if chains", `Quick, test_parse_else_if_chain);
    ("parser: casts ignored", `Quick, test_parse_cast_ignored);
    ("parser: error reporting", `Quick, test_parse_error_reported);
    ("pretty: fixed round trip", `Quick, test_roundtrip_fixed);
    ("pretty: negative literals", `Quick, test_negative_literal_roundtrip);
    ("typecheck: undeclared variable", `Quick, test_tc_undeclared);
    ("typecheck: duplicate global", `Quick, test_tc_duplicate_global);
    ("typecheck: duplicate local", `Quick, test_tc_duplicate_local);
    ("typecheck: indexing a scalar", `Quick, test_tc_index_scalar);
    ("typecheck: assigning to an array", `Quick, test_tc_assign_array);
    ("typecheck: break placement", `Quick, test_tc_break_outside);
    ("typecheck: continue placement", `Quick, test_tc_continue_outside);
    ("typecheck: void return with value", `Quick, test_tc_void_return_value);
    ("typecheck: call arity", `Quick, test_tc_arity);
    ("typecheck: duplicate case", `Quick, test_tc_duplicate_case);
    ("typecheck: implicit externs normalized", `Quick, test_tc_implicit_extern_normalized);
    ("typecheck: has_main", `Quick, test_tc_has_main);
  ]
  @ qcheck_tests
