(* Tests for the pseudo-assembly backend: codegen shapes and the marker scan
   (the paper's observation channel). *)

open Helpers
module Asm = Dce_backend.Asm
module Codegen = Dce_backend.Codegen

let asm_of src = Codegen.program (lower src)

let test_marker_scan () =
  let asm = asm_of "int main(void) { DCEMarker0(); if (0) { DCEMarker1(); } return 0; }" in
  (* codegen emits everything; no optimization ran *)
  Alcotest.(check (list int)) "both markers present" [ 0; 1 ] (Asm.surviving_markers asm);
  Alcotest.(check bool) "survives 0" true (Asm.marker_survives asm 0);
  Alcotest.(check bool) "no marker 7" false (Asm.marker_survives asm 7)

let test_calls_in_text () =
  let asm = asm_of "int main(void) { use(1); dead(); return 0; }" in
  let calls = Asm.surviving_calls asm in
  Alcotest.(check (list string)) "call targets in order" [ "use"; "dead" ] calls

let test_text_format () =
  let text = Asm.to_string (asm_of "int main(void) { use(42); return 0; }") in
  Alcotest.(check bool) "callq in text" true (contains text "callq\tuse");
  Alcotest.(check bool) "retq present" true (contains text "retq");
  Alcotest.(check bool) "globl directive" true (contains text ".globl main")

let test_instruction_count_counts_ins_only () =
  let asm = asm_of "int main(void) { return 0; }" in
  Alcotest.(check bool) "counts instructions" true (Asm.instruction_count asm >= 2);
  let labels =
    List.length (List.filter (function Asm.Label _ -> true | _ -> false) asm.Asm.lines)
  in
  Alcotest.(check bool) "labels excluded" true
    (Asm.instruction_count asm + labels < List.length asm.Asm.lines + 1)

let test_phi_lowered_to_moves () =
  let src = {|
int main(void) {
  int r;
  if (ext(1) & 1) { r = 1; } else { r = 2; }
  return r;
}
|} in
  let ssa = Dce_ir.Ssa.construct_program (lower src) in
  let asm = Codegen.program ssa in
  (* the phi must not appear as an instruction; it becomes edge moves *)
  let text = Asm.to_string asm in
  Alcotest.(check bool) "no phi mnemonic" false (contains text "phi");
  Alcotest.(check bool) "movq present" true (contains text "movq")

let test_every_function_emitted () =
  let src = {|
static int orphan(void) { DCEMarker3(); return 1; }
int main(void) { return 0; }
|} in
  let asm = asm_of src in
  (* codegen emits unreferenced statics too: their markers stay visible,
     exactly the Listing 9b observable *)
  Alcotest.(check bool) "orphan marker visible" true (Asm.marker_survives asm 3)

let test_switch_codegen () =
  let asm = asm_of {|
int main(void) {
  switch (ext(1) & 3) { case 0: { use(0); } case 1: { use(1); } default: { use(9); } }
  return 0;
}
|} in
  let text = Asm.to_string asm in
  Alcotest.(check bool) "cmp/je chain" true (contains text "cmpq" && contains text "je")

let suite =
  [
    ("marker scan", `Quick, test_marker_scan);
    ("call targets", `Quick, test_calls_in_text);
    ("text format", `Quick, test_text_format);
    ("instruction count", `Quick, test_instruction_count_counts_ins_only);
    ("phis become moves", `Quick, test_phi_lowered_to_moves);
    ("unreferenced statics emitted", `Quick, test_every_function_emitted);
    ("switch lowering", `Quick, test_switch_codegen);
  ]
