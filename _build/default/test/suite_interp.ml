(* Tests for the reference interpreter: value/memory model, traps, events,
   determinism. *)

open Helpers
module I = Dce_interp.Interp

let outcome_is_trap src =
  match (run_src src).I.outcome with
  | I.Trap _ -> true
  | I.Finished _ | I.Out_of_fuel -> false

let test_arith () =
  Alcotest.(check int) "arith" 42 (exit_code "int main(void) { return 6 * 7; }");
  Alcotest.(check int) "div0 is 0" 0 (exit_code "int main(void) { int z = 0; return 5 / z; }");
  Alcotest.(check int) "mod0 is 0" 0 (exit_code "int main(void) { int z = 0; return 5 % z; }")

let test_global_init () =
  Alcotest.(check int) "initializer visible" 11
    (exit_code "static int a = 11; int main(void) { return a; }");
  Alcotest.(check int) "arrays zero-filled" 5
    (exit_code "int b[4] = {5}; int main(void) { return b[0] + b[3]; }")

let test_pointer_init_global () =
  Alcotest.(check int) "pointer global initializer" 9
    (exit_code "int b[2] = {0, 9}; int *p = &b[1]; int main(void) { return *p; }")

let test_pointer_equality () =
  Alcotest.(check int) "same target equal" 1
    (exit_code "int a; int main(void) { int *p = &a; int *q = &a; return p == q; }");
  Alcotest.(check int) "different targets not equal" 0
    (exit_code "int a; int b; int main(void) { return &a == &b; }");
  Alcotest.(check int) "one-past offsets differ" 0
    (exit_code "int a; int b[2]; int main(void) { return &a == &b[1]; }")

let test_pointer_arith () =
  Alcotest.(check int) "p + 1" 7
    (exit_code "int b[2] = {3, 7}; int main(void) { int *p = &b[0]; return *(p + 1); }");
  Alcotest.(check int) "pointer difference" 2
    (exit_code "int b[4]; int main(void) { return &b[3] - &b[1]; }")

let test_truthiness_of_pointers () =
  Alcotest.(check int) "!ptr is 0" 0
    (exit_code "int a; int main(void) { int *p = &a; return !p; }");
  Alcotest.(check int) "ptr vs 0 compares not-equal" 1
    (exit_code "int a; int main(void) { int *p = &a; return p != 0; }")

let test_oob_trap () =
  Alcotest.(check bool) "oob read traps" true
    (outcome_is_trap "int b[2]; int main(void) { int i = 5; return b[i]; }");
  Alcotest.(check bool) "oob write traps" true
    (outcome_is_trap "int b[2]; int main(void) { int i = 5; b[i] = 1; return 0; }")

let test_null_deref_trap () =
  Alcotest.(check bool) "deref of zero-initialized pointer traps" true
    (outcome_is_trap "int *p; int main(void) { return *p; }")

let test_dangling_frame_trap () =
  Alcotest.(check bool) "dangling frame pointer traps" true
    (outcome_is_trap {|
int *p;
static void f(void) { int x = 3; p = &x; }
int main(void) { f(); return *p; }
|})

let test_recursion_frames_fresh () =
  (* each activation gets a fresh frame slot: classic factorial via address-
     taken accumulator *)
  Alcotest.(check int) "recursion works" 120
    (exit_code {|
static int fact(int n) {
  int acc = 1;
  int *p = &acc;
  if (n > 1) { *p = n * fact(n - 1); }
  return acc;
}
int main(void) { return fact(5); }
|})

let test_call_depth_trap () =
  Alcotest.(check bool) "unbounded recursion traps on depth" true
    (outcome_is_trap {|
static int f(int n) { return f(n + 1); }
int main(void) { return f(0); }
|})

let test_fuel () =
  let r = run_src ~fuel:100 "int main(void) { while (1) { } return 0; }" in
  Alcotest.(check bool) "fuel exhaustion" true (r.I.outcome = I.Out_of_fuel)

let test_events_order_and_args () =
  let r = run_src {|
int main(void) {
  use(1);
  DCEMarker0();
  use(2 + 3);
  return 0;
}
|} in
  match r.I.events with
  | [ I.Ev_extern ("use", [ I.Vint 1 ]); I.Ev_marker 0; I.Ev_extern ("use", [ I.Vint 5 ]) ] -> ()
  | _ -> Alcotest.fail "unexpected event sequence"

let test_extern_results_deterministic () =
  let v1 = exit_code "int main(void) { return ext(7) & 1023; }" in
  let v2 = exit_code "int main(void) { return ext(7) & 1023; }" in
  Alcotest.(check int) "same result across runs" v1 v2;
  let v3 = exit_code "int main(void) { return ext(8) & 1023; }" in
  Alcotest.(check bool) "different args usually differ" true (v1 <> v3)

let test_executed_markers () =
  let r = run_src {|
int main(void) {
  if (1) { DCEMarker0(); }
  if (0) { DCEMarker1(); }
  return 0;
}
|} in
  Alcotest.(check iset) "only marker 0 executed" (iset_of_list [ 0 ])
    r.I.executed_markers

let test_final_globals () =
  let r = run_src "int g; int main(void) { g = 7; return 0; }" in
  match List.assoc_opt "g" r.I.final_globals with
  | Some cells -> Alcotest.(check int) "final value" 7 cells.(0)
  | None -> Alcotest.fail "g missing from final globals"

let test_equivalence_relations () =
  let r1 = run_src "int g; int main(void) { g = 1; return 0; }" in
  let r2 = run_src "int g; int main(void) { g = 2; return 0; }" in
  Alcotest.(check bool) "events equal, memory differs: equivalent" true (I.equivalent r1 r2);
  Alcotest.(check bool) "but not strictly" false (I.equivalent_strict r1 r2)

let test_switch_dispatch () =
  Alcotest.(check int) "default taken" 30
    (exit_code {|
int main(void) {
  int r = 0;
  switch (9) { case 0: { r = 10; } case 1: { r = 20; } default: { r = 30; } }
  return r;
}
|})

let test_shadowing_scope () =
  (* locals shadow globals for reads and writes *)
  Alcotest.(check int) "local shadows global" 5
    (exit_code "int x = 9; int main(void) { int x = 5; return x; }")

let qcheck_tests =
  [
    qtest ~count:40 "generated programs terminate cleanly"
      QCheck2.Gen.(int_range 1 1000000)
      (fun seed ->
        match (Dce_interp.Interp.run (Dce_ir.Lower.program (smith_program seed))).I.outcome with
        | I.Finished _ -> true
        | I.Trap _ | I.Out_of_fuel -> false);
    qtest ~count:20 "interpretation is deterministic"
      QCheck2.Gen.(int_range 1 1000000)
      (fun seed ->
        let ir = Dce_ir.Lower.program (smith_program seed) in
        I.equivalent_strict (I.run ir) (I.run ir));
  ]

let suite =
  [
    ("arith and total division", `Quick, test_arith);
    ("global initializers", `Quick, test_global_init);
    ("pointer global initializers", `Quick, test_pointer_init_global);
    ("pointer equality", `Quick, test_pointer_equality);
    ("pointer arithmetic", `Quick, test_pointer_arith);
    ("pointer truthiness", `Quick, test_truthiness_of_pointers);
    ("out-of-bounds traps", `Quick, test_oob_trap);
    ("null deref traps", `Quick, test_null_deref_trap);
    ("dangling frame pointer traps", `Quick, test_dangling_frame_trap);
    ("recursion gets fresh frames", `Quick, test_recursion_frames_fresh);
    ("call depth trap", `Quick, test_call_depth_trap);
    ("fuel exhaustion", `Quick, test_fuel);
    ("event order and argument values", `Quick, test_events_order_and_args);
    ("extern results deterministic", `Quick, test_extern_results_deterministic);
    ("executed markers", `Quick, test_executed_markers);
    ("final global memory", `Quick, test_final_globals);
    ("equivalence vs strict equivalence", `Quick, test_equivalence_relations);
    ("switch dispatch", `Quick, test_switch_dispatch);
    ("local shadows global", `Quick, test_shadowing_scope);
  ]
  @ qcheck_tests
