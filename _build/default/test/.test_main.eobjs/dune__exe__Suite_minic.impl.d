test/suite_minic.ml: Alcotest Dce_interp Dce_ir Dce_minic Helpers List Printf QCheck2 String
