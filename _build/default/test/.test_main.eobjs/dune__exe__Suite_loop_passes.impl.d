test/suite_loop_passes.ml: Alcotest Dce_ir Dce_opt Helpers List
