test/suite_properties.ml: Alcotest Dce_backend Dce_compiler Dce_core Dce_ir Dce_minic Dce_reduce Dce_smith Hashtbl Helpers List Option QCheck2
