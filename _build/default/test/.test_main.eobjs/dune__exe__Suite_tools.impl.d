test/suite_tools.ml: Alcotest Dce_bisect Dce_compiler Dce_core Dce_ir Dce_minic Dce_reduce Dce_report Dce_smith Dce_support Helpers Lazy List
