test/suite_support.ml: Alcotest Dce_support Helpers List QCheck2
