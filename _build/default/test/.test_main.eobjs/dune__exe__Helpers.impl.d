test/helpers.ml: Alcotest Dce_compiler Dce_core Dce_interp Dce_ir Dce_minic Dce_smith Format List QCheck2 QCheck_alcotest String
