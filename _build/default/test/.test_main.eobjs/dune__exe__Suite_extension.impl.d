test/suite_extension.ml: Alcotest Dce_compiler Dce_core Dce_interp Dce_ir Dce_minic Helpers List QCheck2
