test/suite_passes.ml: Alcotest Dce_interp Dce_ir Dce_minic Dce_opt Hashtbl Helpers
