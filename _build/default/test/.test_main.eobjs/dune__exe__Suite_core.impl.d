test/suite_core.ml: Alcotest Dce_compiler Dce_core Dce_interp Dce_ir Dce_minic Helpers List Option
