test/suite_compiler.ml: Alcotest Dce_backend Dce_compiler Dce_core Dce_interp Dce_ir Dce_opt Dce_support Helpers List Printf QCheck2 String
