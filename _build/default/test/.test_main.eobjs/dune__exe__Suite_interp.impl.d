test/suite_interp.ml: Alcotest Array Dce_interp Dce_ir Helpers List QCheck2
