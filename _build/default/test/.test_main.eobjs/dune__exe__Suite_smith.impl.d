test/suite_smith.ml: Alcotest Dce_compiler Dce_core Dce_interp Dce_ir Dce_minic Dce_report Dce_smith Dce_support Helpers List QCheck2
