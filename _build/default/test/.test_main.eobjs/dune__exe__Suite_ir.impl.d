test/suite_ir.ml: Alcotest Dce_interp Dce_ir Hashtbl Helpers List QCheck2 String
