test/suite_edge_cases.ml: Alcotest Dce_backend Dce_compiler Dce_core Dce_interp Dce_ir Dce_opt Helpers List
