test/suite_backend.ml: Alcotest Dce_backend Dce_ir Helpers List
