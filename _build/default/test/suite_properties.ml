(* Cross-cutting properties and per-challenge-kind expectations: the
   system-level invariants that make the evaluation trustworthy. *)

open Helpers
module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir
module S = Dce_smith.Smith

(* ---- per-kind expectations (the designed asymmetry matrix) ---- *)

(* generate a few single-kind programs and measure which configs miss *)
let kind_missed kind seeds =
  let dead_total = ref 0 in
  let missed = Hashtbl.create 16 in
  List.iter
    (fun seed ->
      let cfg = { (S.default_config seed) with S.weights = [ (kind, 1) ]; num_sites = 3 } in
      let prog, _ = S.generate cfg in
      match Core.Analysis.run prog with
      | Core.Analysis.Rejected r -> Alcotest.failf "rejected: %s" r
      | Core.Analysis.Analyzed a ->
        dead_total :=
          !dead_total + Ir.Iset.cardinal a.Core.Analysis.truth.Core.Ground_truth.dead;
        List.iter
          (fun pc ->
            let key = (pc.Core.Analysis.cfg_compiler, pc.Core.Analysis.cfg_level) in
            Hashtbl.replace missed key
              (Ir.Iset.cardinal pc.Core.Analysis.missed
              + Option.value ~default:0 (Hashtbl.find_opt missed key)))
          a.Core.Analysis.configs)
    seeds;
  fun comp level ->
    float_of_int (Option.value ~default:0 (Hashtbl.find_opt missed (comp, level)))
    /. float_of_int (max 1 !dead_total)

let seeds = [ 1009; 2003; 3001 ]

let test_kind_global_samestore () =
  let m = kind_missed S.K_global_samestore seeds in
  (* the Listing 4 asymmetry at corpus level *)
  Alcotest.(check bool) "gcc misses most" true (m "gcc-sim" C.Level.O3 > 0.15);
  Alcotest.(check bool) "llvm eliminates all" true (m "llvm-sim" C.Level.O3 = 0.0)

let test_kind_global_diffstore () =
  let m = kind_missed S.K_global_diffstore seeds in
  Alcotest.(check bool) "both miss" true
    (m "gcc-sim" C.Level.O3 > 0.15 && m "llvm-sim" C.Level.O3 > 0.15)

let test_kind_uniform_array () =
  let m = kind_missed S.K_uniform_array seeds in
  Alcotest.(check bool) "gcc misses (bug 80603)" true (m "gcc-sim" C.Level.O3 > 0.15);
  Alcotest.(check bool) "llvm folds" true (m "llvm-sim" C.Level.O3 = 0.0)

let test_kind_ptr_loop_regression () =
  let m = kind_missed S.K_ptr_loop seeds in
  (* the Listing 9e level shape: O2 catches, the -O3 vectorizer loses it *)
  Alcotest.(check bool) "gcc O2 eliminates" true (m "gcc-sim" C.Level.O2 = 0.0);
  Alcotest.(check bool) "gcc O3 regresses" true (m "gcc-sim" C.Level.O3 > 0.15);
  Alcotest.(check bool) "llvm O3 fine" true (m "llvm-sim" C.Level.O3 = 0.0)

let test_kind_loop_guard_regression () =
  let m = kind_missed S.K_loop_guard seeds in
  (* the Listing 7 level shape for llvm *)
  Alcotest.(check bool) "llvm O2 eliminates" true (m "llvm-sim" C.Level.O2 = 0.0);
  Alcotest.(check bool) "llvm O3 regresses" true (m "llvm-sim" C.Level.O3 > 0.15);
  Alcotest.(check bool) "gcc O3 fine" true (m "gcc-sim" C.Level.O3 = 0.0)

let test_kind_ipa_arg () =
  let m = kind_missed S.K_ipa_arg seeds in
  Alcotest.(check bool) "O1 misses (no ipa-cp, callee too big)" true
    (m "gcc-sim" C.Level.O1 > 0.15);
  Alcotest.(check bool) "Os eliminates via ipa-cp" true (m "gcc-sim" C.Level.Os = 0.0)

let test_kind_addr_cmp () =
  let m = kind_missed S.K_addr_cmp seeds in
  Alcotest.(check bool) "gcc folds all" true (m "gcc-sim" C.Level.O3 = 0.0);
  Alcotest.(check bool) "llvm misses the non-zero offsets" true
    (m "llvm-sim" C.Level.O3 > 0.2)

(* ---- soundness & pipeline properties over random corpora ---- *)

let qcheck_tests =
  let gen_seed = QCheck2.Gen.(int_range 1 10000000) in
  [
    qtest ~count:15 "soundness: alive markers are never eliminated" gen_seed (fun seed ->
        let prog = smith_program seed in
        match Core.Analysis.run prog with
        | Core.Analysis.Rejected _ -> true
        | Core.Analysis.Analyzed a -> Core.Analysis.soundness_violations a = []);
    qtest ~count:15 "primary missed is a subset of missed" gen_seed (fun seed ->
        let prog = smith_program seed in
        match Core.Analysis.run prog with
        | Core.Analysis.Rejected _ -> true
        | Core.Analysis.Analyzed a ->
          List.for_all
            (fun pc ->
              Ir.Iset.subset pc.Core.Analysis.primary_missed pc.Core.Analysis.missed)
            a.Core.Analysis.configs);
    qtest ~count:10 "compilation is deterministic" gen_seed (fun seed ->
        let prog = Core.Instrument.program (smith_program seed) in
        let a = C.Compiler.surviving_markers C.Gcc_sim.compiler C.Level.O3 prog in
        let b = C.Compiler.surviving_markers C.Gcc_sim.compiler C.Level.O3 prog in
        a = b);
    qtest ~count:10 "assembly scan agrees with the optimized IR" gen_seed (fun seed ->
        (* the observation channel (scanning pseudo-asm for callq DCEMarkerN)
           must report exactly the marker instructions left in the IR *)
        let prog = Core.Instrument.program (smith_program seed) in
        let feats = C.Compiler.features C.Gcc_sim.compiler C.Level.O2 in
        let opt = C.Pipeline.run feats (Dce_ir.Lower.program prog) in
        let from_ir = List.sort_uniq compare (Ir.program_marker_ids opt) in
        let from_asm =
          Dce_backend.Asm.surviving_markers (Dce_backend.Codegen.program opt)
        in
        from_ir = from_asm);
    qtest ~count:10 "surviving markers are a subset of instrumented markers" gen_seed
      (fun seed ->
        let prog = Core.Instrument.program (smith_program seed) in
        let all = Dce_minic.Ast.markers_of_program prog in
        List.for_all
          (fun m -> List.mem m all)
          (C.Compiler.surviving_markers C.Llvm_sim.compiler C.Level.O3 prog));
    qtest ~count:8 "O0 misses a superset of O1's misses" gen_seed (fun seed ->
        (* O0 runs a strict subset of O1's pipeline, so anything O0 eliminates
           O1 eliminates too *)
        let prog = Core.Instrument.program (smith_program seed) in
        match Core.Ground_truth.compute prog with
        | Core.Ground_truth.Rejected _ -> true
        | Core.Ground_truth.Valid truth ->
          let missed level =
            let surv =
              List.fold_left
                (fun s m -> Ir.Iset.add m s)
                Ir.Iset.empty
                (C.Compiler.surviving_markers C.Gcc_sim.compiler level prog)
            in
            Ir.Iset.inter surv truth.Core.Ground_truth.dead
          in
          Ir.Iset.subset (missed C.Level.O1) (missed C.Level.O0));
    qtest ~count:6 "reducer output always satisfies its predicate" gen_seed (fun seed ->
        let prog = Core.Instrument.program (smith_program seed) in
        match Core.Ground_truth.compute prog with
        | Core.Ground_truth.Rejected _ -> true
        | Core.Ground_truth.Valid truth -> (
          (* reduce any dead marker wrt ground truth (predicate: still dead) *)
          match Ir.Iset.choose_opt truth.Core.Ground_truth.dead with
          | None -> true
          | Some marker ->
            let predicate p =
              match Core.Ground_truth.compute p with
              | Core.Ground_truth.Valid t -> Ir.Iset.mem marker t.Core.Ground_truth.dead
              | Core.Ground_truth.Rejected _ -> false
            in
            let r = Dce_reduce.Reduce.reduce ~max_tests:120 ~predicate prog in
            predicate r.Dce_reduce.Reduce.program
            && r.Dce_reduce.Reduce.final_size <= r.Dce_reduce.Reduce.initial_size));
  ]

let suite =
  [
    ("kind: global-samestore (Listing 4)", `Slow, test_kind_global_samestore);
    ("kind: global-diffstore (Listing 6a)", `Slow, test_kind_global_diffstore);
    ("kind: uniform-array (Listing 9f)", `Slow, test_kind_uniform_array);
    ("kind: ptr-loop regression (Listing 9e)", `Slow, test_kind_ptr_loop_regression);
    ("kind: loop-guard regression (Listing 7)", `Slow, test_kind_loop_guard_regression);
    ("kind: ipa-arg", `Slow, test_kind_ipa_arg);
    ("kind: addr-cmp (Listing 3)", `Slow, test_kind_addr_cmp);
  ]
  @ qcheck_tests
