(* Unit tests for the optimization passes.  Each test builds a small program,
   runs one pass (or a minimal pass combination) on SSA form, validates the
   result, checks observable behaviour is preserved, and asserts the
   transformation actually happened. *)

open Helpers
module Ir = Dce_ir.Ir
module Opt = Dce_opt

let ssa src = Dce_ir.Ssa.construct_program (lower src)

let main_fn prog =
  match Ir.find_func prog "main" with
  | Some fn -> fn
  | None -> Alcotest.fail "no main"

let validate prog = Dce_ir.Validate.program_exn Dce_ir.Validate.Ssa prog

let count_instrs pred fn =
  let n = ref 0 in
  Ir.iter_instrs (fun _ i -> if pred i then incr n) fn;
  !n

let count_loads fn = count_instrs (function Ir.Def (_, Ir.Load _) -> true | _ -> false) fn
let count_stores fn = count_instrs (function Ir.Store _ -> true | _ -> false) fn
let count_markers fn = count_instrs (function Ir.Marker _ -> true | _ -> false) fn

let with_info prog f = f (Opt.Meminfo.analyze prog) prog

let apply_per_func prog f =
  let out = Ir.map_func f prog in
  validate out;
  check_equivalent ~name:"pass" prog out;
  out

(* ---------- meminfo ---------- *)

let test_meminfo_escape () =
  let prog = ssa {|
static int a;
static int b;
int *p;
int main(void) { p = &a; return b; }
|} in
  let info = Opt.Meminfo.analyze prog in
  Alcotest.(check bool) "a escapes (address stored)" true (Opt.Meminfo.escaped info "a");
  Alcotest.(check bool) "b does not escape" false (Opt.Meminfo.escaped info "b");
  Alcotest.(check bool) "escaped implies unknown-reachable" true
    (Opt.Meminfo.unknown_may_touch info "a");
  Alcotest.(check bool) "non-static p is unknown-reachable" true
    (Opt.Meminfo.unknown_may_touch info "p");
  Alcotest.(check bool) "static non-escaped b is not" false
    (Opt.Meminfo.unknown_may_touch info "b")

let test_meminfo_stores () =
  let prog = ssa {|
static int a = 5;
static int b = 5;
static int c = 5;
int main(void) { b = 5; c = 6; return a; }
|} in
  let info = Opt.Meminfo.analyze prog in
  Alcotest.(check bool) "a never stored" false (Opt.Meminfo.ever_stored info "a");
  Alcotest.(check bool) "b stored" true (Opt.Meminfo.ever_stored info "b");
  Alcotest.(check bool) "b stores only the initializer" true
    (Opt.Meminfo.stores_only_init_consts info "b");
  Alcotest.(check bool) "c stores a different value" false
    (Opt.Meminfo.stores_only_init_consts info "c")

let test_meminfo_modref_transitive () =
  let prog = ssa {|
static int g;
static void leaf(void) { g = 1; }
static void mid(void) { leaf(); }
int main(void) { mid(); return 0; }
|} in
  let info = Opt.Meminfo.analyze prog in
  Alcotest.(check bool) "mid transitively writes g" true
    (Opt.Meminfo.Sset.mem "g" (Opt.Meminfo.mod_set info "mid"));
  Alcotest.(check bool) "extern calls cannot write g" false
    (Opt.Meminfo.Sset.mem "g" (Opt.Meminfo.extern_mod_set info))

let test_meminfo_escape_via_init () =
  let prog = ssa {|
static int a;
int *p = &a;
int main(void) { return 0; }
|} in
  let info = Opt.Meminfo.analyze prog in
  Alcotest.(check bool) "address in initializer escapes" true (Opt.Meminfo.escaped info "a")

(* ---------- alias oracle ---------- *)

let test_alias_rules () =
  let prog = ssa {|
static int a;
static int b[4];
int *escaped_holder;
static int hidden;
int main(void) {
  escaped_holder = &a;
  use(b[2] + hidden);
  return 0;
}
|} in
  let info = Opt.Meminfo.analyze prog in
  let fn = main_fn prog in
  let q = Opt.Alias.make Opt.Alias.Full info fn in
  (* reuse main's existing address registers by scanning its instructions *)
  let with_addrs f =
    let found = Hashtbl.create 4 in
    Ir.iter_instrs
      (fun _ i ->
        match i with
        | Ir.Def (v, Ir.Addr (s, Ir.Const k)) -> Hashtbl.replace found (s, k) (Ir.Reg v)
        | _ -> ())
      fn;
    f found
  in
  with_addrs (fun found ->
      match
        (Hashtbl.find_opt found ("a", 0), Hashtbl.find_opt found ("b", 2),
         Hashtbl.find_opt found ("hidden", 0))
      with
      | Some pa, Some pb, Some ph ->
        Alcotest.(check bool) "distinct symbols no alias" false (Opt.Alias.may_alias q pa pb);
        Alcotest.(check bool) "same operand aliases itself" true (Opt.Alias.may_alias q pa pa);
        (* an unknown pointer may hit the escaped a but not the hidden static *)
        let unknown = Ir.Reg 99999 in
        Alcotest.(check bool) "unknown may hit escaped" true (Opt.Alias.may_alias q unknown pa);
        Alcotest.(check bool) "unknown cannot hit hidden static" false
          (Opt.Alias.may_alias q unknown ph);
        Alcotest.(check bool) "may_write_sym escaped" true (Opt.Alias.may_write_sym q unknown "a");
        Alcotest.(check bool) "may_write_sym hidden" false
          (Opt.Alias.may_write_sym q unknown "hidden");
        (* Basic precision loses the escape filtering *)
        let qb = Opt.Alias.make Opt.Alias.Basic info fn in
        Alcotest.(check bool) "basic: unknown hits everything" true
          (Opt.Alias.may_alias qb unknown ph);
        (* None_ makes everything alias *)
        let qn = Opt.Alias.make Opt.Alias.None_ info fn in
        Alcotest.(check bool) "none: even distinct symbols alias" true
          (Opt.Alias.may_alias qn pa pb)
      | _ -> Alcotest.fail "expected address registers in main")

let test_alias_offsets () =
  let prog = ssa {|
static int b[4];
int main(void) {
  use(b[1] + b[3]);
  return 0;
}
|} in
  let info = Opt.Meminfo.analyze prog in
  let fn = main_fn prog in
  let q = Opt.Alias.make Opt.Alias.Full info fn in
  let found = Hashtbl.create 4 in
  Ir.iter_instrs
    (fun _ i ->
      match i with
      | Ir.Def (v, Ir.Addr (s, Ir.Const k)) -> Hashtbl.replace found (s, k) (Ir.Reg v)
      | _ -> ())
    fn;
  match (Hashtbl.find_opt found ("b", 1), Hashtbl.find_opt found ("b", 3)) with
  | Some p1, Some p3 ->
    Alcotest.(check bool) "distinct constant offsets no alias" false
      (Opt.Alias.may_alias q p1 p3)
  | _ -> Alcotest.fail "expected address registers"

(* ---------- sccp ---------- *)

let run_sccp ?(config = Opt.Sccp.default_config) prog =
  with_info prog (fun info p -> apply_per_func p (Opt.Sccp.run config info))

let test_sccp_folds_constants () =
  let prog = ssa "int main(void) { int x = 4; int y = x * 2 + 1; if (y != 9) { use(1); } return y; }" in
  let out = run_sccp prog in
  let out = Ir.map_func Opt.Simplify_cfg.run out in
  (* after folding, no use() call remains *)
  Alcotest.(check int) "dead call removed" 0
    (count_instrs (function Ir.Call (_, "use", _) -> true | _ -> false) (main_fn out))

let test_sccp_conditional_precision () =
  (* only-feasible-edge values: x is 3 on every executable path *)
  let prog = ssa {|
int main(void) {
  int x;
  if (1) { x = 3; } else { x = 999; }
  if (x != 3) { use(1); }
  return x;
}
|} in
  let out = Ir.map_func Opt.Simplify_cfg.run (run_sccp prog) in
  Alcotest.(check int) "infeasible-arm value ignored" 0
    (count_instrs (function Ir.Call (_, "use", _) -> true | _ -> false) (main_fn out))

let test_sccp_gva_modes () =
  let src = "static int a = 0; int main(void) { if (a) { DCEMarker0(); } a = 0; return 0; }" in
  let fold mode =
    let prog = ssa src in
    let out =
      run_sccp ~config:{ Opt.Sccp.default_config with Opt.Sccp.gva_mode = mode } prog
    in
    let out = Ir.map_func Opt.Simplify_cfg.run out in
    count_markers (main_fn out) = 0
  in
  Alcotest.(check bool) "flow-insensitive blocked by the store" false
    (fold Opt.Gva.Flow_insensitive);
  Alcotest.(check bool) "if-const tolerates the init re-store" true
    (fold Opt.Gva.Flow_sensitive_if_const)

let test_sccp_addr_cmp_modes () =
  let src = {|
int a;
int b[2];
int main(void) { if (&a == &b[1]) { DCEMarker0(); } return 0; }
|} in
  let fold mode =
    let prog = ssa src in
    let out = run_sccp ~config:{ Opt.Sccp.default_config with Opt.Sccp.addr_cmp = mode } prog in
    let out = Ir.map_func Opt.Simplify_cfg.run out in
    count_markers (main_fn out) = 0
  in
  Alcotest.(check bool) "full folds" true (fold Opt.Sccp.Cmp_full);
  Alcotest.(check bool) "zero-only misses offset 1" false (fold Opt.Sccp.Cmp_zero_only);
  Alcotest.(check bool) "none never folds" false (fold Opt.Sccp.Cmp_none)

let test_sccp_block_limit_bailout () =
  let src = "static int a = 0; int main(void) { if (a) { DCEMarker0(); } return 0; }" in
  let prog = ssa src in
  let out =
    run_sccp ~config:{ Opt.Sccp.default_config with Opt.Sccp.block_limit = 1 } prog
  in
  let out = Ir.map_func Opt.Simplify_cfg.run out in
  Alcotest.(check bool) "bails out: marker survives" true (count_markers (main_fn out) > 0)

(* ---------- simplify_cfg ---------- *)

let test_simplify_removes_literal_dead () =
  let prog = lower "int main(void) { if (0) { DCEMarker0(); } return 0; }" in
  let out = Ir.map_func Opt.Simplify_cfg.run prog in
  Alcotest.(check int) "marker gone" 0 (count_markers (main_fn out));
  check_equivalent ~name:"simplify" prog out

let test_simplify_merges_blocks () =
  let prog = ssa "int main(void) { int x = 1; if (1) { x = 2; } return x; }" in
  let out = Ir.map_func Opt.Simplify_cfg.run prog in
  validate out;
  Alcotest.(check int) "single block remains" 1 (Ir.Imap.cardinal (main_fn out).Ir.fn_blocks)

let test_simplify_keeps_alive_code () =
  let prog = lower "int main(void) { if (1) { DCEMarker0(); } return 0; }" in
  let out = Ir.map_func Opt.Simplify_cfg.run prog in
  Alcotest.(check int) "alive marker stays" 1 (count_markers (main_fn out))

(* ---------- dce ---------- *)

let test_dce_removes_unused_pure () =
  let prog = ssa "int g; int main(void) { int unused = g * 17 + 4; return 0; }" in
  let before = count_loads (main_fn prog) in
  let out = apply_per_func prog Opt.Dce.run in
  Alcotest.(check bool) "unused load chain removed" true (count_loads (main_fn out) < before)

let test_dce_keeps_stores_calls_markers () =
  let prog = ssa "int g; int main(void) { g = 1; use(2); DCEMarker0(); return 0; }" in
  let out = apply_per_func prog Opt.Dce.run in
  let fn = main_fn out in
  Alcotest.(check int) "store kept" 1 (count_stores fn);
  Alcotest.(check int) "marker kept" 1 (count_markers fn);
  Alcotest.(check int) "call kept" 1
    (count_instrs (function Ir.Call (_, "use", _) -> true | _ -> false) fn)

(* ---------- gvn ---------- *)

let run_gvn ?(config = Opt.Gvn.default_config) prog =
  with_info prog (fun info p -> apply_per_func p (Opt.Gvn.run config info))

let test_gvn_cse () =
  let prog = ssa "int g; int main(void) { int a = g * 3; int b = g * 3; return a + b; }" in
  let out = run_gvn prog in
  let muls =
    count_instrs
      (function Ir.Def (_, Ir.Binary (Dce_minic.Ops.Mul, _, _)) -> true | _ -> false)
      (main_fn out)
  in
  Alcotest.(check int) "one multiply after CSE" 1 muls

let test_gvn_store_to_load () =
  let prog = ssa "static int g; int main(void) { g = 5; return g; }" in
  let out = run_gvn prog in
  let out = apply_per_func out Opt.Dce.run in
  Alcotest.(check int) "load forwarded away" 0 (count_loads (main_fn out))

let test_gvn_forwarding_respects_clobber () =
  (* a store through an unknown pointer into possibly-aliasing memory must
     kill the forwarded value *)
  let src = {|
int g;
int *p;
int main(void) { g = 5; *p = 6; return g; }
|} in
  (* note: this program traps at run time (p is null), so only check the IR
     shape: the load of g must remain *)
  let prog = ssa src in
  let info = Opt.Meminfo.analyze prog in
  let out = Ir.map_func (Opt.Gvn.run Opt.Gvn.default_config info) prog in
  validate out;
  Alcotest.(check bool) "load of non-static g survives unknown store" true
    (count_loads (main_fn out) >= 1)

let test_gvn_copy_prop () =
  let prog = ssa "int main(void) { int a = 7; int b = a; int c = b; return c; }" in
  let out = run_gvn prog in
  (* after copy propagation the return feeds from the constant chain; DCE
     then erases the copies *)
  let out = apply_per_func out Opt.Dce.run in
  Alcotest.(check bool) "copies collapsed" true
    (count_instrs (function Ir.Def _ -> true | _ -> false) (main_fn out) <= 1)

(* ---------- dse ---------- *)

let run_dse ?(config = Opt.Dse.default_config) prog =
  with_info prog (fun info p ->
      let out =
        Ir.map_func
          (fun fn -> Opt.Dse.run config info ~is_main:(fn.Ir.fn_name = "main") fn)
          p
      in
      validate out;
      (* DSE is allowed to change final memory but not events/outcome *)
      let r1 = Dce_interp.Interp.run p and r2 = Dce_interp.Interp.run out in
      if not (Dce_interp.Interp.equivalent r1 r2) then Alcotest.fail "dse changed behaviour";
      out)

let test_dse_overwritten_store () =
  let prog = ssa "static int g; int main(void) { g = 1; g = 2; use(g); return 0; }" in
  let out = run_dse prog in
  Alcotest.(check int) "first store removed" 1 (count_stores (main_fn out))

let test_dse_store_read_between () =
  let prog = ssa "static int g; int main(void) { g = 1; use(g); g = 2; use(g); return 0; }" in
  let out = run_dse prog in
  Alcotest.(check int) "both stores stay" 2 (count_stores (main_fn out))

let test_dse_end_of_main () =
  (* the paper's Listing 1: the trailing c = 0 is dead at end of main *)
  let prog = ssa "static int c; int main(void) { use(c); c = 0; return 0; }" in
  let strong = run_dse prog in
  Alcotest.(check int) "strength 2 removes it" 0 (count_stores (main_fn strong));
  let weak = run_dse ~config:{ Opt.Dse.default_config with Opt.Dse.strength = 1 } prog in
  Alcotest.(check int) "strength 1 keeps it" 1 (count_stores (main_fn weak))

let test_dse_keeps_nonstatic_at_end () =
  (* non-static globals are observable by other TUs: never end-of-main dead *)
  let prog = ssa "int c; int main(void) { c = 0; return 0; }" in
  let out = run_dse prog in
  Alcotest.(check int) "store to non-static kept" 1 (count_stores (main_fn out))

let test_dse_frame_slots_die_at_ret () =
  let prog = ssa {|
static int helper(void) { int x[2]; x[0] = 9; return 1; }
int main(void) { return helper(); }
|} in
  let out = run_dse prog in
  match Ir.find_func out "helper" with
  | Some fn -> Alcotest.(check int) "frame store dead at ret" 0 (count_stores fn)
  | None -> Alcotest.fail "helper missing"

(* ---------- memcp ---------- *)

let run_memcp ?(config = Opt.Memcp.default_config) prog =
  with_info prog (fun info p -> apply_per_func p (Opt.Memcp.run config info))

let full_fold src config =
  (* memcp followed by a gva-free SCCP round, so the verdict isolates memcp *)
  let prog = ssa src in
  let out = run_memcp ~config prog in
  let info = Opt.Meminfo.analyze out in
  let sccp_cfg = { Opt.Sccp.default_config with Opt.Sccp.gva_mode = Opt.Gva.Off } in
  let out = Ir.map_func (Opt.Sccp.run sccp_cfg info) out in
  let out = Ir.map_func Opt.Simplify_cfg.run out in
  count_markers (main_fn out) = 0

let test_memcp_store_then_branch () =
  Alcotest.(check bool) "store dominates check: folds" true
    (full_fold "int b; int main(void) { b = 0; if (b) { DCEMarker0(); } return 0; }"
       Opt.Memcp.default_config)

let test_memcp_no_initializer_assumption () =
  Alcotest.(check bool) "no store: memcp alone cannot fold" false
    (full_fold "static int b = 0; int main(void) { if (b) { DCEMarker0(); } return 0; }"
       { Opt.Memcp.default_config with Opt.Memcp.uniform_arrays = false })

let test_memcp_edge_awareness () =
  let src = {|
int a, b;
int main(void) {
  b = 0;
  while (a) { if (b) { DCEMarker0(); } }
  return 0;
}
|} in
  Alcotest.(check bool) "edge-aware folds through the loop" true
    (full_fold src Opt.Memcp.default_config);
  Alcotest.(check bool) "without edge-awareness the back edge poisons b" false
    (full_fold src { Opt.Memcp.default_config with Opt.Memcp.edge_aware = false })

let test_memcp_uniform_arrays () =
  let src = {|
int a;
static int b[2] = {0, 0};
int main(void) { if (b[a]) { DCEMarker0(); } return 0; }
|} in
  Alcotest.(check bool) "uniform rule folds unknown index" true
    (full_fold src Opt.Memcp.default_config);
  Alcotest.(check bool) "without the rule it stays" false
    (full_fold src { Opt.Memcp.default_config with Opt.Memcp.uniform_arrays = false })

let test_memcp_marker_clobbers_nonstatic () =
  (* a marker call may write non-static globals: b cannot stay 0 across it *)
  let src = {|
int b;
int main(void) {
  b = 0;
  DCEMarker1();
  if (b) { DCEMarker0(); }
  return 0;
}
|} in
  let prog = ssa src in
  let out = run_memcp prog in
  let info = Opt.Meminfo.analyze out in
  let out = Ir.map_func (Opt.Sccp.run Opt.Sccp.default_config info) out in
  let out = Ir.map_func Opt.Simplify_cfg.run out in
  Alcotest.(check int) "both markers survive" 2 (count_markers (main_fn out))

let test_memcp_static_survives_marker () =
  (* ... but a non-escaping static is invisible to the marker *)
  Alcotest.(check bool) "static survives the marker call" true
    (full_fold
       {|
static int b;
int main(void) {
  b = 0;
  use(1);
  if (b) { DCEMarker0(); }
  return 0;
}
|}
       Opt.Memcp.default_config)

(* ---------- peephole ---------- *)

let test_peephole_identities () =
  let prog = ssa {|
int g;
int main(void) {
  int x = g;
  int a = x + 0;
  int b = a * 1;
  int c = b - b;
  int d = c ^ c;
  return d;
}
|} in
  let out = apply_per_func prog (Opt.Peephole.run { Opt.Peephole.level = 1 }) in
  let out = apply_per_func out Opt.Dce.run in
  (* everything folds to the constant 0 *)
  Alcotest.(check int) "arithmetic erased" 0
    (count_instrs
       (function Ir.Def (_, Ir.Binary _) -> true | _ -> false)
       (main_fn out))

let test_peephole_levels_gate_rules () =
  let src = "int g; int main(void) { int x = g + 3; if (x == 3) { use(1); } return 0; }" in
  let fold level =
    let prog = ssa src in
    let out = apply_per_func prog (Opt.Peephole.run { Opt.Peephole.level }) in
    (* x + 3 == 3  becomes  x == 0 only at level 3 *)
    count_instrs
      (function
        | Ir.Def (_, Ir.Binary (Dce_minic.Ops.Eq, _, Ir.Const 0)) -> true
        | _ -> false)
      (main_fn out)
    > 0
  in
  Alcotest.(check bool) "level 3 rewrites" true (fold 3);
  Alcotest.(check bool) "level 1 does not" false (fold 1)

(* ---------- vrp ---------- *)

let test_vrp_range_folds () =
  let prog = ssa {|
int main(void) {
  int x = ext(1) & 15;
  if (x > 40) { DCEMarker0(); }
  return 0;
}
|} in
  let out = apply_per_func prog (Opt.Vrp.run Opt.Vrp.default_config) in
  let out = Ir.map_func Opt.Simplify_cfg.run out in
  Alcotest.(check int) "masked value cannot exceed 15" 0 (count_markers (main_fn out))

let test_vrp_branch_refinement () =
  let prog = ssa {|
int main(void) {
  int x = ext(1) & 15;
  if (x > 10) {
    if (x < 5) { DCEMarker0(); }
  }
  return 0;
}
|} in
  let out = apply_per_func prog (Opt.Vrp.run Opt.Vrp.default_config) in
  let out = Ir.map_func Opt.Simplify_cfg.run out in
  Alcotest.(check int) "contradictory nested range folds" 0 (count_markers (main_fn out))

let test_vrp_shift_rule_flag () =
  let src = {|
int main(void) {
  int f = ext(1) & 7 | 1;
  int d = f << 2;
  if (d) { if (f == 0) { DCEMarker0(); } }
  return 0;
}
|} in
  let fold shift_rule =
    let prog = ssa src in
    let out =
      apply_per_func prog
        (Opt.Vrp.run { Opt.Vrp.default_config with Opt.Vrp.shift_rule })
    in
    let out = Ir.map_func Opt.Simplify_cfg.run out in
    count_markers (main_fn out) = 0
  in
  Alcotest.(check bool) "with the shift rule" true (fold true);
  Alcotest.(check bool) "without it" false (fold false)

let test_vrp_mod_singleton_flag () =
  let src = {|
int main(void) {
  int g = ext(3) & 7;
  if (g == 2) { if (g % 5 != 2) { DCEMarker0(); } }
  return 0;
}
|} in
  let fold mod_singleton =
    let prog = ssa src in
    let out =
      apply_per_func prog
        (Opt.Vrp.run { Opt.Vrp.default_config with Opt.Vrp.mod_singleton })
    in
    let out = Ir.map_func Opt.Simplify_cfg.run out in
    count_markers (main_fn out) = 0
  in
  Alcotest.(check bool) "with the mod rule" true (fold true);
  Alcotest.(check bool) "without it" false (fold false)

let suite =
  [
    ("alias: precision rules", `Quick, test_alias_rules);
    ("alias: constant offsets", `Quick, test_alias_offsets);
    ("meminfo: escape analysis", `Quick, test_meminfo_escape);
    ("meminfo: store classification", `Quick, test_meminfo_stores);
    ("meminfo: transitive mod/ref", `Quick, test_meminfo_modref_transitive);
    ("meminfo: escape via initializer", `Quick, test_meminfo_escape_via_init);
    ("sccp: folds constants", `Quick, test_sccp_folds_constants);
    ("sccp: conditional precision", `Quick, test_sccp_conditional_precision);
    ("sccp: gva modes (Listing 4)", `Quick, test_sccp_gva_modes);
    ("sccp: addr-cmp modes (Listing 3)", `Quick, test_sccp_addr_cmp_modes);
    ("sccp: block-limit bailout", `Quick, test_sccp_block_limit_bailout);
    ("simplify: removes literal dead code", `Quick, test_simplify_removes_literal_dead);
    ("simplify: merges blocks", `Quick, test_simplify_merges_blocks);
    ("simplify: keeps alive code", `Quick, test_simplify_keeps_alive_code);
    ("dce: removes unused pure defs", `Quick, test_dce_removes_unused_pure);
    ("dce: keeps effects", `Quick, test_dce_keeps_stores_calls_markers);
    ("gvn: common subexpressions", `Quick, test_gvn_cse);
    ("gvn: store-to-load forwarding", `Quick, test_gvn_store_to_load);
    ("gvn: clobber respected", `Quick, test_gvn_forwarding_respects_clobber);
    ("gvn: copy propagation", `Quick, test_gvn_copy_prop);
    ("dse: overwritten store", `Quick, test_dse_overwritten_store);
    ("dse: read between stores", `Quick, test_dse_store_read_between);
    ("dse: end of main (Listing 1)", `Quick, test_dse_end_of_main);
    ("dse: non-static kept at end", `Quick, test_dse_keeps_nonstatic_at_end);
    ("dse: frame slots die at ret", `Quick, test_dse_frame_slots_die_at_ret);
    ("memcp: store dominates check", `Quick, test_memcp_store_then_branch);
    ("memcp: no initializer assumption", `Quick, test_memcp_no_initializer_assumption);
    ("memcp: edge awareness (Listing 7)", `Quick, test_memcp_edge_awareness);
    ("memcp: uniform arrays (Listing 9f)", `Quick, test_memcp_uniform_arrays);
    ("memcp: markers clobber non-statics", `Quick, test_memcp_marker_clobbers_nonstatic);
    ("memcp: statics survive markers", `Quick, test_memcp_static_survives_marker);
    ("peephole: algebraic identities", `Quick, test_peephole_identities);
    ("peephole: level gating", `Quick, test_peephole_levels_gate_rules);
    ("vrp: masked range folds", `Quick, test_vrp_range_folds);
    ("vrp: branch refinement", `Quick, test_vrp_branch_refinement);
    ("vrp: shift rule flag (Listing 9a)", `Quick, test_vrp_shift_rule_flag);
    ("vrp: mod singleton flag (Listing 8b)", `Quick, test_vrp_mod_singleton_flag);
  ]
