(* Every reduced test case from the paper (Listings 3, 4, 6, 7, 8, 9),
   transcribed to MiniC and run against the simulated compilers.  For each
   listing we assert the same qualitative outcome the paper reports: which
   compiler eliminates the dead call/marker, which one misses it, and at
   which optimization levels.

     dune exec examples/paper_listings.exe *)

module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir

let failures = ref 0

let check ~listing ~src ~expect =
  let prog = Dce_minic.Typecheck.check_exn (Dce_minic.Parser.parse_program src) in
  List.iter
    (fun (comp_name, level, marker, expect_eliminated, note) ->
      let compiler = if comp_name = "gcc" then C.Gcc_sim.compiler else C.Llvm_sim.compiler in
      let surviving = C.Compiler.surviving_markers compiler level prog in
      let eliminated = not (List.mem marker surviving) in
      let verdict = if eliminated = expect_eliminated then "ok " else "FAIL" in
      if eliminated <> expect_eliminated then incr failures;
      Printf.printf "%s  %-12s %-8s %-4s marker %d %s (%s)\n" verdict listing comp_name
        (C.Level.to_string level) marker
        (if eliminated then "eliminated" else "kept")
        note)
    expect

let o1 = C.Level.O1
let o2 = C.Level.O2
let o3 = C.Level.O3

let () =
  (* Listing 3 (LLVM bug 49434): EarlyCSE cannot fold &a == &b[1] *)
  check ~listing:"listing-3"
    ~src:{|
char a;
char b[2];
int main(void) {
  char *c = &a;
  char *d = &b[1];
  if (c == d) { DCEMarker0(); }
  return 0;
}
|}
    ~expect:
      [
        ("gcc", o3, 0, true, "GCC folds the address comparison");
        ("llvm", o3, 0, false, "LLVM's EarlyCSE misses non-zero offsets");
      ];

  (* Listing 4 (GCC bug 99357): flow-insensitive global value analysis *)
  check ~listing:"listing-4"
    ~src:{|
static int a = 0;
int main(void) {
  if (a) { DCEMarker0(); }
  a = 0;
  return 0;
}
|}
    ~expect:
      [
        ("gcc", o3, 0, false, "any store blocks GCC's flow-insensitive analysis");
        ("llvm", o3, 0, true, "the store re-writes the initializer: LLVM folds");
      ];

  (* Listing 6a: a = 1 at the end — the LLVM 3.8 regression; both miss *)
  check ~listing:"listing-6a"
    ~src:{|
static int a = 0;
int main(void) {
  if (a) { DCEMarker0(); }
  a = 1;
  return 0;
}
|}
    ~expect:
      [
        ("gcc", o3, 0, false, "flow-insensitive");
        ("llvm", o3, 0, false, "store of a different constant poisons the global");
      ];

  (* Listing 6b: constancy through another global *)
  check ~listing:"listing-6b"
    ~src:{|
static int a = 0;
static int b = 0;
int main(void) {
  b = a;
  if (b) { DCEMarker0(); }
  a = 1;
  return 0;
}
|}
    ~expect:
      [
        ("gcc", o3, 0, false, "cannot propagate a through b");
        ("llvm", o3, 0, false, "cannot propagate a through b");
      ];

  (* Listing 7: LLVM's unswitching × constant propagation -O3 regression *)
  check ~listing:"listing-7"
    ~src:{|
int a, b, c;
int main(void) {
  b = 0;
  while (a) { while (c) { if (b) { DCEMarker0(); } } }
  return 0;
}
|}
    ~expect:
      [
        ("llvm", o2, 0, true, "conditional memory propagation folds if(b)");
        ("llvm", o3, 0, false, "the new -O3 loop pipeline loses it (regression)");
        ("gcc", o3, 0, true, "GCC's pipeline keeps the conditional propagation");
      ];

  (* Listing 8a (LLVM bug 49773): same regression family — a static global
     that stays 0 unless the dead path itself changes it ("a++" in the
     original).  Adapted so the check sits inside the loop, where only
     edge-aware conditional propagation can break the self-dependence. *)
  check ~listing:"listing-8a"
    ~src:{|
static int a;
int c, e;
int main(void) {
  a = 0;
  while (e) {
    if (a) { DCEMarker0(); a = a + 1; }
    while (c) { use(c); }
  }
  return 0;
}
|}
    ~expect:
      [
        ("llvm", o2, 0, true, "loads of a fold to 0 at -O2");
        ("llvm", o3, 0, false, "missed at -O3 (regression)");
        ("gcc", o3, 0, true, "GCC's pipeline keeps the conditional propagation");
      ];

  (* Listing 8b (LLVM bug 49731): mod of singleton ranges; fixed post-HEAD *)
  check ~listing:"listing-8b"
    ~src:{|
int main(void) {
  int g = ext(3) & 7;
  if (g == 2) {
    if (g % 5 != 2) { DCEMarker0(); }
  }
  return 0;
}
|}
    ~expect:
      [
        ("llvm", o3, 0, false, "ConstantRange cannot fold [2,3) % [5,6) at HEAD");
        ("gcc", o3, 0, false, "GCC's VRP has no mod rule either");
      ];

  (* Listing 9a (GCC bug 102546): X << Y != 0 implies X != 0 *)
  check ~listing:"listing-9a"
    ~src:{|
int main(void) {
  int f = ext(1) & 7 | 1;
  int d = f << 2;
  if (d) {
    if (f == 0) { DCEMarker0(); }
  }
  return 0;
}
|}
    ~expect:
      [
        ("gcc", o3, 0, false, "GCC lacks the shift relation (fixed post-HEAD)");
        ("llvm", o3, 0, true, "LLVM's CVP derives f != 0");
      ];

  (* Listing 9b (GCC bug 100034): dead static function survives at -O3 *)
  check ~listing:"listing-9b"
    ~src:{|
static int a, b, f, g;
static int d(void) {
  while (g) { f = 0; }
  while (1) { DCEMarker0(); }
  return 0;
}
static void c(void) { d(); }
void e(void) {
  while (b) {
    if (!a) { continue; }
    c();
  }
}
int main(void) {
  e();
  return 0;
}
|}
    ~expect:
      [
        ("gcc", o1, 0, true, "late unreachable-node removal deletes d");
        ("gcc", o3, 0, false, "-O3 runs the removal early (pass ordering)");
        ("llvm", o3, 0, true, "LLVM's GlobalDCE runs late");
      ];

  (* Listing 9c (GCC bug 100051): alias precision at -O3 *)
  check ~listing:"listing-9c"
    ~src:{|
static int x = 0;
int y, z;
static int *tab[2];
int main(void) {
  x = 5;
  tab[0] = &y;
  tab[1] = &z;
  int *p = tab[ext(1) & 1];
  *p = 7;
  if (x != 5) { DCEMarker0(); }
  return 0;
}
|}
    ~expect:
      [
        ("gcc", o1, 0, false, "-O1 alias precision is also basic");
        ("gcc", o2, 0, true, "escape-filtered points-to proves x untouched");
        ("gcc", o3, 0, false, "-O3 caps points-to precision (regression)");
        ("llvm", o3, 0, true, "LLVM keeps capture tracking at -O3");
      ];

  (* Listing 9e (GCC bug 99776): vectorized pointer loop blocks folding *)
  check ~listing:"listing-9e"
    ~src:{|
static int a[2];
static int b;
static int *c[2];
int main(void) {
  for (b = 0; b < 2; b++) {
    c[b] = &a[1];
  }
  if (!c[0]) { DCEMarker0(); }
  return 0;
}
|}
    ~expect:
      [
        ("gcc", o2, 0, true, "unroll + store forwarding prove c[0] nonnull");
        ("gcc", o3, 0, false, "the vectorizer claims the loop first (regression)");
        ("llvm", o3, 0, true, "LLVM does not vectorize this shape");
      ];

  (* Listing 9f (GCC bug 99419, duplicate of #80603): uniform array *)
  check ~listing:"listing-9f"
    ~src:{|
int a;
static int b[2] = {0, 0};
int main(void) {
  if (b[a]) { DCEMarker0(); }
  return 0;
}
|}
    ~expect:
      [
        ("gcc", o3, 0, false, "no uniform-constant-array rule (known bug #80603)");
        ("llvm", o3, 0, true, "GlobalOpt folds the uniform load");
      ];

  Printf.printf "\n%s\n"
    (if !failures = 0 then "all paper listings reproduce their reported behaviour"
     else Printf.sprintf "%d listing expectations FAILED" !failures);
  exit (if !failures = 0 then 0 else 1)
