(* Value-check instrumentation (the paper's §4.4 "future directions" mode,
   implemented): manufacture dead blocks by planting profiled value checks
   after loops, then see which configurations can prove them.

     dune exec examples/value_checks.exe *)

module C = Dce_compiler
module Core = Dce_core

let source =
  {|
static int total;
int main(void) {
  int i;
  int fib0 = 0;
  int fib1 = 1;
  for (i = 0; i < 10; i++) {
    int next = fib0 + fib1;
    fib0 = fib1;
    fib1 = next;
  }
  total = 0;
  for (i = 1; i <= 12; i = i + 2) {
    total = total + i;
  }
  use(fib1);
  use(total);
  return 0;
}
|}

let () =
  let prog = Dce_minic.Typecheck.check_exn (Dce_minic.Parser.parse_program source) in
  match Core.Value_instrument.instrument prog with
  | None -> print_endline "profiling failed"
  | Some (instrumented, stats) ->
    Printf.printf "%d probe positions, %d stable value checks planted:\n\n"
      stats.Core.Value_instrument.probes_inserted stats.Core.Value_instrument.checks_planted;
    print_string (Dce_minic.Pretty.program_to_string instrumented);
    print_newline ();

    (* every check is dead by construction — verify via ground truth *)
    (match Core.Ground_truth.compute instrumented with
     | Core.Ground_truth.Valid t ->
       assert (Dce_ir.Ir.Iset.is_empty t.Core.Ground_truth.alive);
       Printf.printf "ground truth confirms: all %d checks dead\n"
         (Dce_ir.Ir.Iset.cardinal t.Core.Ground_truth.all)
     | Core.Ground_truth.Rejected r -> failwith r);

    (* which configurations compute the loop results? *)
    print_endline "\nsurviving value checks per configuration:";
    List.iter
      (fun compiler ->
        List.iter
          (fun level ->
            let surv = C.Compiler.surviving_markers compiler level instrumented in
            Printf.printf "  %-9s %-4s keeps %d check(s) {%s}\n" compiler.C.Compiler.name
              (C.Level.to_string level) (List.length surv)
              (String.concat "," (List.map string_of_int surv)))
          C.Level.all)
      [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ];
    print_endline
      "\n(-O2's full unrolling computes the Fibonacci and sum results; lower levels cannot,";
    print_endline
      " so the checks expose exactly the scalar-evolution gap the paper's §4.4 describes.";
    print_endline
      " note gcc-sim -O3 keeping a check that -O2 proves: the value-check mode finds the";
    print_endline
      " same -O3 regressions the block markers do — try bisecting it with dce_hunt)"
