(* Quickstart: the whole technique on one small program.

   Mirrors the paper's illustrative example (§2): a test case with two dead
   if-bodies, where each compiler eliminates a different one.  Run with:

     dune exec examples/quickstart.exe *)

module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir

let source =
  {|
static int a = 0;
int b[2];
int main(void) {
  int *d = &a;
  int *e = &b[1];
  if (d == e) {
    int f = 0;
    int g = 0;
    for (; f < 10; f++) { g += f; }
    use(g);
  }
  if (a) {
    b[0] = 1;
    b[1] = 1;
  }
  a = 0;
  return 0;
}
|}

let () =
  (* 1. parse and check *)
  let program = Dce_minic.Typecheck.check_exn (Dce_minic.Parser.parse_program source) in

  (* 2. instrument with optimization markers (paper step 1) *)
  let instrumented = Core.Instrument.program program in
  Printf.printf "instrumented with %d markers:\n\n%s\n"
    (Core.Instrument.marker_count instrumented)
    (Dce_minic.Pretty.program_to_string instrumented);

  (* 3. ground truth by execution (paper step 2) *)
  let truth =
    match Core.Ground_truth.compute instrumented with
    | Core.Ground_truth.Valid t -> t
    | Core.Ground_truth.Rejected reason -> failwith ("program rejected: " ^ reason)
  in
  Printf.printf "ground truth: alive markers = {%s}, dead = {%s}\n"
    (String.concat "," (List.map string_of_int (Ir.Iset.elements truth.Core.Ground_truth.alive)))
    (String.concat "," (List.map string_of_int (Ir.Iset.elements truth.Core.Ground_truth.dead)));

  (* 4. compile with both simulated compilers and scan the assembly (step 3) *)
  let survivors compiler =
    let cfg = { Core.Differential.compiler; level = C.Level.O3; version = None } in
    Core.Differential.surviving cfg instrumented
  in
  let gcc = survivors C.Gcc_sim.compiler in
  let llvm = survivors C.Llvm_sim.compiler in
  Printf.printf "gcc-sim  -O3 keeps {%s}\n"
    (String.concat "," (List.map string_of_int (Ir.Iset.elements gcc)));
  Printf.printf "llvm-sim -O3 keeps {%s}\n"
    (String.concat "," (List.map string_of_int (Ir.Iset.elements llvm)));

  (* 5. differential verdict (step 4) *)
  let gcc_misses = Core.Differential.missed_vs_other ~mine:gcc ~other:llvm in
  let llvm_misses = Core.Differential.missed_vs_other ~mine:llvm ~other:gcc in
  Printf.printf "\ngcc-sim misses (llvm-sim proves feasible):  {%s}\n"
    (String.concat "," (List.map string_of_int (Ir.Iset.elements gcc_misses)));
  Printf.printf "llvm-sim misses (gcc-sim proves feasible):  {%s}\n"
    (String.concat "," (List.map string_of_int (Ir.Iset.elements llvm_misses)));

  (* 6. diagnose one miss *)
  (match Ir.Iset.choose_opt gcc_misses with
   | Some marker ->
     let d = Core.Diagnose.run C.Gcc_sim.compiler C.Level.O3 instrumented ~marker in
     Printf.printf "\ndiagnosis of gcc-sim's miss on marker %d: %s\n" marker
       (Core.Diagnose.signature d)
   | None -> ())
