(* Test-case reduction: the C-Reduce stage of the paper's workflow (§4.3).

   Hunts a generated corpus for a cross-compiler finding, then shrinks the
   program while preserving the interestingness predicate ("one compiler
   eliminates the marker, the other keeps it") and prints the reduced test
   case, ready to be "reported".

     dune exec examples/reducer_demo.exe *)

module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir

let () =
  (* hunt until a differential finding appears *)
  let finding = ref None in
  let seed = ref 100 in
  while !finding = None do
    incr seed;
    let prog, _ = Dce_smith.Smith.generate (Dce_smith.Smith.default_config !seed) in
    match Core.Analysis.run prog with
    | Core.Analysis.Rejected _ -> ()
    | Core.Analysis.Analyzed a -> (
      match
        ( Core.Analysis.find_config a "gcc-sim" C.Level.O3,
          Core.Analysis.find_config a "llvm-sim" C.Level.O3 )
      with
      | Some gcc, Some llvm ->
        let only_gcc = Ir.Iset.diff gcc.Core.Analysis.missed llvm.Core.Analysis.missed in
        let primary = Ir.Iset.inter only_gcc gcc.Core.Analysis.primary_missed in
        (match Ir.Iset.choose_opt primary with
         | Some marker -> finding := Some (a.Core.Analysis.instrumented, marker)
         | None -> ())
      | _ -> ())
  done;
  let instrumented, marker = Option.get !finding in
  Printf.printf "seed %d: gcc-sim -O3 misses marker %d, llvm-sim -O3 eliminates it\n" !seed marker;
  Printf.printf "original size: %d statements\n\n" (Dce_minic.Ast.stmt_count instrumented);

  let mk compiler = { Core.Differential.compiler; level = C.Level.O3; version = None } in
  let predicate =
    Dce_reduce.Reduce.marker_diff_predicate
      ~keep_missed_by:(mk C.Gcc_sim.compiler)
      ~eliminated_by:(mk C.Llvm_sim.compiler)
      ~marker
  in
  let result = Dce_reduce.Reduce.reduce ~max_tests:3000 ~predicate instrumented in
  Printf.printf "reduced in %d rounds (%d predicate evaluations): %d -> %d\n\n"
    result.Dce_reduce.Reduce.rounds result.Dce_reduce.Reduce.tests_run
    result.Dce_reduce.Reduce.initial_size result.Dce_reduce.Reduce.final_size;
  print_endline "// reduced test case (the \"bug report\"):";
  print_string (Dce_minic.Pretty.program_to_string result.Dce_reduce.Reduce.program);

  (* sanity: the reduced program still shows the difference *)
  assert (predicate result.Dce_reduce.Reduce.program);
  print_endline "\npredicate still holds on the reduced program";

  (* and diagnose it *)
  let d =
    Core.Diagnose.run C.Gcc_sim.compiler C.Level.O3 result.Dce_reduce.Reduce.program ~marker
  in
  Printf.printf "diagnosis: %s\n" (Core.Diagnose.signature d)
