examples/reducer_demo.ml: Dce_compiler Dce_core Dce_ir Dce_minic Dce_reduce Dce_smith Option Printf
