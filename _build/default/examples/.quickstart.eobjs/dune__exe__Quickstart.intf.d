examples/quickstart.mli:
