examples/paper_listings.mli:
