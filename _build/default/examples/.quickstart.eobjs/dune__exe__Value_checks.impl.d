examples/value_checks.ml: Dce_compiler Dce_core Dce_ir Dce_minic List Printf String
