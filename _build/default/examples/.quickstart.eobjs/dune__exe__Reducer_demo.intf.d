examples/reducer_demo.mli:
