examples/value_checks.mli:
