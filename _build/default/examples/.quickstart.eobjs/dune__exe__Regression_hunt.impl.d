examples/regression_hunt.ml: Array Dce_bisect Dce_compiler Dce_core Dce_ir Dce_report Dce_smith Hashtbl List Printf
