(* Regression hunting: the continuous-integration scenario from the paper's
   §4.4 ("the latest development branch can be continuously tested against
   its previous release to monitor for new regressions").

   Generates a corpus, finds markers that -O3 misses although -O1/-O2
   eliminates them, and bisects each one to the commit that introduced it —
   the workflow behind the paper's Tables 3 and 4.

     dune exec examples/regression_hunt.exe *)

module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir

let () =
  let corpus = Dce_smith.Smith.generate_corpus ~seed:7 ~count:40 in
  let outcomes = List.map (fun (p, _) -> (Core.Analysis.run p, p)) corpus in
  let stats = Dce_report.Stats.collect outcomes in
  let programs =
    Array.of_list
      (List.map
         (fun (o, raw) ->
           match o with
           | Core.Analysis.Analyzed a -> a.Core.Analysis.instrumented
           | Core.Analysis.Rejected _ -> Core.Instrument.program raw)
         outcomes)
  in
  Printf.printf "corpus: %s\n\n" (Dce_report.Stats.prevalence stats);
  print_string (Dce_report.Stats.differential_summary stats);
  print_newline ();

  let offenders = Hashtbl.create 8 in
  let bisected = ref 0 in
  List.iter
    (fun (f : Dce_report.Stats.finding) ->
      if f.Dce_report.Stats.f_primary then begin
        let compiler =
          if f.Dce_report.Stats.f_compiler = "gcc-sim" then C.Gcc_sim.compiler
          else C.Llvm_sim.compiler
        in
        let prog = programs.(f.Dce_report.Stats.f_program) in
        match
          Dce_bisect.Bisect.find_regression compiler C.Level.O3 prog
            ~marker:f.Dce_report.Stats.f_marker
        with
        | Dce_bisect.Bisect.Regression r ->
          incr bisected;
          let c = r.Dce_bisect.Bisect.offending in
          Printf.printf "program %d marker %d (%s): bisected in %d probes to %s\n"
            f.Dce_report.Stats.f_program f.Dce_report.Stats.f_marker
            f.Dce_report.Stats.f_compiler r.Dce_bisect.Bisect.compilations c.C.Version.id;
          Printf.printf "    %s  [%s]\n" c.C.Version.summary c.C.Version.component;
          let key = (f.Dce_report.Stats.f_compiler, c.C.Version.id) in
          Hashtbl.replace offenders key c
        | Dce_bisect.Bisect.Always_missed | Dce_bisect.Bisect.Not_missed -> ()
      end)
    stats.Dce_report.Stats.regression_findings;

  Printf.printf "\n%d regressions bisected; unique offending commits:\n" !bisected;
  Hashtbl.iter
    (fun (comp, _) (c : C.Version.commit) ->
      Printf.printf "  %-9s %s %-26s %s\n" comp c.C.Version.id c.C.Version.component
        c.C.Version.summary)
    offenders
