(** Removal of unreferenced [static] functions (and their frame symbols).

    Roots are [main], every non-static function (another translation unit may
    call them), and any function whose name is... referenced is impossible in
    MiniC (no function pointers), so reachability over direct calls suffices.
    Eliminating an unreachable static function also eliminates every marker in
    its body — the interprocedural dimension of the paper's Table 2 numbers
    (e.g. Listing 9b, where GCC leaves an entire dead static function's call
    chain behind). *)

val run : Dce_ir.Ir.program -> Dce_ir.Ir.program

val info : Passinfo.t
(** Pass-manager registration: removes whole functions and their frame symbols. *)
