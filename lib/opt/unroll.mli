(** Full unrolling of counted loops.

    Eligible loops have a single preheader edge, a single latch, and exit only
    through the header.  The trip count is obtained by {e exact symbolic
    execution} of the header-phi update chain (registers only, pure operators
    with MiniC's total semantics) — if every header phi starts from constants
    and evolves through pure register arithmetic, simulating the loop is exact
    no matter what stores/calls the body performs, because memory never feeds
    back into the chain (a load in the chain disqualifies the loop).

    Unrolled iterations are cloned copies chained latch→next-header; header
    phis become plain copies; the conditions inside the copies become constant
    and {!Sccp}/{!Simplify_cfg} erase them.  Unrolling is what exposes
    array-initialization results to store-to-load forwarding (paper Listing
    9e's -O1 behaviour). *)

type config = {
  max_trip : int;      (** maximum iterations to fully unroll *)
  max_body : int;      (** maximum loop body size (instructions) *)
  max_growth : int;    (** maximum total instructions added per function *)
}

val default_config : config

val run : config -> Dce_ir.Ir.func -> Dce_ir.Ir.func

(** {1 Shared loop legality machinery (also used by the vectorizer model)} *)

val eligible : Dce_ir.Ir.func -> Dce_ir.Loops.loop -> bool
(** Single preheader edge, single latch, exits only through the header. *)

val trip_count : max_trip:int -> Dce_ir.Ir.func -> Dce_ir.Loops.loop -> int option
(** Exact trip count by symbolic execution of the phi update chain, or [None]
    when the chain is not pure-register or exceeds [max_trip]. *)

val info : Passinfo.t
(** Pass-manager registration: clones loop bodies, so no analysis survives a change. *)
