open Dce_ir
open Ir

(* the constant each call site passes for each parameter position, or None *)
let callsite_constants prog callee_name arity =
  let consts = Array.make arity None in
  let first = ref true in
  let alive = ref true in
  List.iter
    (fun fn ->
      let dt = Meminfo.deftab fn in
      iter_instrs
        (fun _ i ->
          match i with
          | Call (_, name, args) when name = callee_name ->
            if List.length args <> arity then alive := false
            else begin
              List.iteri
                (fun k a ->
                  let c = Meminfo.resolve_const dt a in
                  if !first then consts.(k) <- c
                  else if consts.(k) <> c then consts.(k) <- None)
                args;
              first := false
            end
          | _ -> ())
        fn)
    prog.prog_funcs;
  if !first || not !alive then None (* no call sites, or malformed *)
  else Some consts

let specialize fn consts =
  let subst = function
    | Reg v -> (
      let rec find i = function
        | [] -> Reg v
        | p :: rest -> (
          if p = v then match consts.(i) with Some k -> Const k | None -> Reg v
          else find (i + 1) rest)
      in
      find 0 fn.fn_params)
    | Const n -> Const n
  in
  let blocks =
    Imap.map
      (fun b ->
        {
          b_instrs = List.map (map_instr_operands subst) b.b_instrs;
          b_term = map_terminator_operands subst b.b_term;
        })
      fn.fn_blocks
  in
  { fn with fn_blocks = blocks }

let run prog =
  let funcs =
    List.map
      (fun fn ->
        if (not fn.fn_static) || fn.fn_name = "main" || fn.fn_params = [] then fn
        else
          match callsite_constants prog fn.fn_name (List.length fn.fn_params) with
          | Some consts when Array.exists (fun c -> c <> None) consts -> specialize fn consts
          | Some _ | None -> fn)
      prog.prog_funcs
  in
  { prog with prog_funcs = funcs }

let info = Passinfo.v ~preserves:[ Passinfo.Cfg; Passinfo.Dominators ] "ipa-cp"
