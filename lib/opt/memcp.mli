(** Flow-sensitive memory constant propagation.

    A forward dataflow over the cells of every (small enough) symbol.  Extern
    and marker calls clobber the cells unknown pointers may touch (non-static
    globals and escaped symbols); calls to defined functions clobber their
    transitive mod-sets; everything else is tracked precisely.  The entry
    state is all-unknown — a compiler may {e not} assume a global still holds
    its initializer at function entry (that unfounded assumption would "fix"
    the paper's Listings 4 and 6a); constants enter the dataflow from stores.
    Combined with edge-aware propagation this is what lets a compiler fold
    [b = 0; while (a) ... if (b) dead();] (paper Listing 7): the store [b=0]
    dominates the loop and the [if (b)] body never becomes feasible, so the
    marker's clobber of [b] never applies.

    Loads from cells whose dataflow value is a single constant are rewritten
    to that constant.

    Knobs:
    - [use_call_summaries] — with it off, any call clobbers every tracked
      cell (a -O1-strength model); with it on, only the callee's transitive
      mod-set is clobbered;
    - [block_limit] — cost-cap bailout: functions with more blocks are
      skipped.  This models the real compilers' pass budgets and is the
      mechanism behind the unswitching regressions (Listings 7, 8a): a loop
      pass that duplicates blocks can push a function past the budget of a
      later run of this pass. *)

type config = {
  use_call_summaries : bool;
  edge_aware : bool;
      (** SCCP-style conditional propagation: a branch whose condition is a
          register constant or a load of a tracked constant cell only
          propagates state along the feasible edge.  This is what breaks the
          back-edge meet in [while (a) … marker …] when [a] starts 0: the
          body never becomes feasible, so the marker's clobber never reaches
          the header.  Turning it off is the modeled LLVM "unswitching ×
          constant propagation" regression (Listings 7, 8a). *)
  uniform_arrays : bool;
      (** fold a load with an {e unknown} index when every cell of the array
          currently holds the same constant (paper Listing 9f / GCC 99419) *)
  precision : Alias.precision;
      (** below [Full], a store through an unknown pointer clobbers every
          tracked cell, not just the escape-reachable ones *)
  block_limit : int;
  cell_limit : int;  (** track at most this many cells per symbol *)
}

val default_config : config
(** summaries on, edge-aware, 512-block limit, 32-cell limit. *)

val run : config -> Meminfo.t -> Dce_ir.Ir.func -> Dce_ir.Ir.func

val info : Passinfo.t
(** Pass-manager registration: consumes {!Meminfo}; rewrites load rvalues only, so CFG-shape analyses stay exact. *)
