(** Dead instruction elimination (SSA def-use based).

    Deletes pure definitions (arithmetic, address computations, loads, phis)
    whose results are transitively unused.  [Store]s, [Call]s and [Marker]s
    are roots: removing stores is {!Dse}'s job, calls are always observable in
    this compiler model, and markers can only disappear when their whole block
    is proven unreachable — the property the paper's technique measures. *)

val run : Dce_ir.Ir.func -> Dce_ir.Ir.func
val run_program : Dce_ir.Ir.program -> Dce_ir.Ir.program

val info : Passinfo.t
(** Pass-manager registration: deletes pure definitions only, terminators untouched. *)
