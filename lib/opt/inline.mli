(** Function inlining.

    Splices the callee's CFG into the caller at the call site: parameters are
    substituted by the argument operands, returns become jumps to a
    continuation block (with a phi for the result when the callee has several
    returns), and the callee's frame slots are cloned into fresh caller-owned
    symbols per call site.  Recursive cycles are never inlined; [main] is
    never inlined into anyone.

    Inlining is the enabler for most interprocedural dead-code discovery in
    the corpus: constants only propagate into a callee's branches once its
    body lives in the caller, which is why [-O0]/[-O1] miss interprocedural
    dead blocks that [-O2] finds (paper Tables 1/2).

    [threshold] bounds the callee size (instructions); [growth_cap] bounds
    how large a caller may grow before inlining into it stops. *)

type config = { threshold : int; growth_cap : int }

val default_config : config

val run : config -> Dce_ir.Ir.program -> Dce_ir.Ir.program

val info : Passinfo.t
(** Pass-manager registration: splices callee CFGs into callers, so no analysis survives a change. *)
