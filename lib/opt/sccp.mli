(** Sparse conditional constant propagation over SSA.

    Tracks a constant lattice per register — integers {e and} address
    constants ([&sym + k]) — along only the CFG edges proven executable, so
    constants that hold on every feasible path fold even through joins.
    Branches whose condition becomes constant are rewritten to jumps (the
    unreachable side is left for {!Simplify_cfg} to delete — which is what
    ultimately removes dead markers).

    Configuration knobs model documented compiler asymmetries:
    - [addr_cmp] — how pointer equalities fold.  [Cmp_zero_only] reproduces
      LLVM's EarlyCSE blind spot from Listing 3: [&a == &b\[1\]] is not
      simplified although [&a == &b\[0\]] is;
    - [gva_mode] — which loads of globals fold to their initializers
      (see {!Gva});
    - [block_limit] — the pass bails out on functions with more blocks
      (a real-compiler cost cap; regressions in the paper's Listing 7/8a
      style arise when an earlier pass duplicates code past such a cap). *)

type addr_cmp =
  | Cmp_none       (** never fold pointer comparisons *)
  | Cmp_zero_only  (** fold only when both element offsets are zero *)
  | Cmp_full       (** fold all compile-time address comparisons *)

type config = {
  addr_cmp : addr_cmp;
  gva_mode : Gva.mode;
  block_limit : int;  (** skip functions with more blocks than this *)
}

val default_config : config
(** [Cmp_full], [Flow_insensitive], limit 512. *)

val run : config -> Meminfo.t -> Dce_ir.Ir.func -> Dce_ir.Ir.func
(** One SCCP round: analyze and rewrite. Idempotent up to newly exposed
    simplifications from other passes. *)

val info : Passinfo.t
(** Pass-manager registration: consumes {!Meminfo}; folds branches, so no analysis survives a change. *)
