(** Dead store elimination.

    Strength levels (so pipelines can differ where the paper's compilers do —
    GCC keeps the dead [c = 0;] at the end of Listing 1's [main], LLVM
    removes it):

    - 0: off;
    - 1: block-local — a store overwritten by a later store to the same cell
      with no intervening read/call that may observe it;
    - 2: additionally, {e post-lifetime} stores — at a [ret] of any function
      its own frame slots die, and at a [ret] of [main] every non-escaped
      static dies, so stores that can only be observed after those points are
      deleted (scanning backward from the terminator). *)

type config = {
  strength : int;
  precision : Alias.precision;
  use_call_summaries : bool;
}

val default_config : config

val run : config -> Meminfo.t -> is_main:bool -> Dce_ir.Ir.func -> Dce_ir.Ir.func

val info : Passinfo.t
(** Pass-manager registration: consumes {!Meminfo}; deletes stores only, terminators untouched. *)
