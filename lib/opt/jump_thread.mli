(** Jump threading: forward a predecessor straight to a branch target when
    the branch outcome is already known along that incoming edge (condition is
    a phi with a constant argument for it).

    - [Conservative] (the "old" threader): only threads through empty blocks
      whose sole content is the condition phi, and only into phi-free targets;
    - [Aggressive] (the "new" threader): additionally threads through blocks
      {e with} instructions — including markers — by cloning the block per
      threaded edge.  Cloning through dynamically dead code duplicates
      markers and grows the CFG; combined with the block budgets of later
      constant passes this reproduces the paper's jump-threading regression
      family (Listing 9d).  With [phi_cleanup] off, degenerate single-source
      phis left behind are not resolved to copies (the "leftover phi node"
      from GCC bug 102703). *)

type mode = Off | Conservative | Aggressive

type config = { mode : mode; phi_cleanup : bool; max_threads : int }

val default_config : config

val run : config -> Dce_ir.Ir.func -> Dce_ir.Ir.func

val info : Passinfo.t
(** Pass-manager registration: redirects edges and clones blocks, so no analysis survives a change. *)
