open Dce_ir
open Ir

let run fn =
  (* transitively mark registers needed by side-effecting instructions and
     terminators; delete pure defs of unmarked registers *)
  let live = Hashtbl.create 64 in
  let dt = Meminfo.deftab fn in
  let rec mark v =
    if not (Hashtbl.mem live v) then begin
      Hashtbl.replace live v ();
      match Meminfo.def_rvalue dt v with
      | Some rv ->
        List.iter (function Reg u -> mark u | Const _ -> ()) (operands_of_rvalue rv)
      | None -> ()
    end
  in
  Imap.iter
    (fun _ b ->
      List.iter
        (fun i ->
          match i with
          | Store _ | Call _ | Marker _ -> List.iter mark (uses_of_instr i)
          | Def _ -> ())
        b.b_instrs;
      List.iter mark (uses_of_terminator b.b_term))
    fn.fn_blocks;
  let keep = function
    | Def (v, _) -> Hashtbl.mem live v
    | Store _ | Call _ | Marker _ -> true
  in
  let blocks = Imap.map (fun b -> { b with b_instrs = List.filter keep b.b_instrs }) fn.fn_blocks in
  { fn with fn_blocks = blocks }

let run_program prog = { prog with prog_funcs = List.map run prog.prog_funcs }

let info = Passinfo.v ~preserves:[ Passinfo.Cfg; Passinfo.Dominators ] "dce"
