open Dce_ir
open Ir

type config = { precision : Alias.precision }

type access = { acc_block : label; acc_index : int; acc_is_store : bool; acc_value : operand }

let find_promotion config info fn (loop : Loops.loop) =
  let dt = Meminfo.deftab fn in
  let preds = Cfg.predecessors fn in
  let header_preds = Option.value ~default:[] (Imap.find_opt loop.Loops.header preds) in
  match
    ( List.filter (fun p -> not (Iset.mem p loop.Loops.body)) header_preds,
      loop.Loops.latches )
  with
  | [ preheader ], [ latch ] ->
    let dom = Dom.compute fn in
    (* collect memory behaviour of the loop *)
    let accesses : (string * int, access list) Hashtbl.t = Hashtbl.create 16 in
    let bad_syms = Hashtbl.create 8 in
    let unknown_store = ref false in
    let call_mods = ref Meminfo.Sset.empty in
    Iset.iter
      (fun l ->
        List.iteri
          (fun idx i ->
            match i with
            | Def (_, Load p) -> (
              match Meminfo.resolve_addr dt p with
              | Meminfo.Asym (s, Some k) ->
                let key = (s, k) in
                let prev = Option.value ~default:[] (Hashtbl.find_opt accesses key) in
                Hashtbl.replace accesses key
                  ({ acc_block = l; acc_index = idx; acc_is_store = false; acc_value = Const 0 }
                  :: prev)
              | Meminfo.Asym (s, None) -> Hashtbl.replace bad_syms s ()
              | Meminfo.Aunknown -> () (* loads through unknown pointers are harmless *))
            | Def _ -> ()
            | Store (p, v) -> (
              match Meminfo.resolve_addr dt p with
              | Meminfo.Asym (s, Some k) ->
                let key = (s, k) in
                let prev = Option.value ~default:[] (Hashtbl.find_opt accesses key) in
                Hashtbl.replace accesses key
                  ({ acc_block = l; acc_index = idx; acc_is_store = true; acc_value = v } :: prev)
              | Meminfo.Asym (s, None) -> Hashtbl.replace bad_syms s ()
              | Meminfo.Aunknown -> unknown_store := true)
            | Call (_, name, _) ->
              call_mods := Meminfo.Sset.union !call_mods (Meminfo.mod_set info name)
            | Marker _ -> call_mods := Meminfo.Sset.union !call_mods (Meminfo.extern_mod_set info))
          (block fn l).b_instrs)
      loop.Loops.body;
    let candidate = ref None in
    Hashtbl.iter
      (fun (s, k) accs ->
        if !candidate = None then begin
          let stores = List.filter (fun a -> a.acc_is_store) accs in
          let loads = List.filter (fun a -> not a.acc_is_store) accs in
          let sym_ok =
            (not (Hashtbl.mem bad_syms s))
            && (not (Meminfo.Sset.mem s !call_mods))
            && ((not !unknown_store)
               || (config.precision = Alias.Full && not (Meminfo.unknown_may_touch info s)))
          in
          let in_bounds =
            match Meminfo.symbol info s with
            | Some sym -> k >= 0 && k < sym.sym_size
            | None -> false
          in
          let stores_dominate_latch =
            List.for_all (fun a -> Dom.dominates dom a.acc_block latch) stores
          in
          (* stores must be totally ordered by dominance for "last store" to
             be well-defined *)
          let stores_ordered =
            let rec check = function
              | a :: (b :: _ as rest) ->
                (Dom.dominates dom a.acc_block b.acc_block
                 || Dom.dominates dom b.acc_block a.acc_block)
                && check rest
              | _ -> true
            in
            check stores
          in
          if sym_ok && in_bounds && loads <> [] && stores_dominate_latch && stores_ordered then
            candidate := Some (preheader, latch, (s, k), stores, loads)
        end)
      accesses;
    !candidate
  | _ -> None

(* order stores by dominance (earlier-dominating first; same block by index) *)
let sort_stores dom stores =
  List.sort
    (fun a b ->
      if a.acc_block = b.acc_block then compare a.acc_index b.acc_index
      else if Dom.strictly_dominates dom a.acc_block b.acc_block then -1
      else 1)
    stores

let promote_cell fn (loop : Loops.loop) preheader latch (s, k) stores =
  let dom = Dom.compute fn in
  let stores = sort_stores dom stores in
  let next_var = ref fn.fn_next_var in
  let fresh () =
    let v = !next_var in
    incr next_var;
    v
  in
  let t_addr = fresh () in
  let t_init = fresh () in
  let has_stores = stores <> [] in
  let v_phi = if has_stores then fresh () else t_init in
  (* the register value current at (block, instruction index) *)
  let value_at l idx =
    let candidates =
      List.filter
        (fun a ->
          if a.acc_block = l then a.acc_index < idx else Dom.strictly_dominates dom a.acc_block l)
        stores
    in
    match List.rev candidates with
    | last :: _ -> last.acc_value
    | [] -> Reg v_phi
  in
  let last_store_value =
    match List.rev stores with
    | last :: _ -> last.acc_value
    | [] -> Reg v_phi
  in
  let dt = Meminfo.deftab fn in
  let blocks =
    Imap.mapi
      (fun l b ->
        if l = preheader then
          {
            b with
            b_instrs =
              b.b_instrs @ [ Def (t_addr, Addr (s, Const k)); Def (t_init, Load (Reg t_addr)) ];
          }
        else if Iset.mem l loop.Loops.body then begin
          let instrs =
            List.mapi
              (fun idx i ->
                match i with
                | Def (x, Load p) -> (
                  match Meminfo.resolve_addr dt p with
                  | Meminfo.Asym (s', Some k') when s' = s && k' = k ->
                    Def (x, Op (value_at l idx))
                  | _ -> i)
                | _ -> i)
              b.b_instrs
          in
          let instrs =
            if l = loop.Loops.header && has_stores then
              Def (v_phi, Phi [ (preheader, Reg t_init); (latch, last_store_value) ]) :: instrs
            else instrs
          in
          { b with b_instrs = instrs }
        end
        else b)
      fn.fn_blocks
  in
  { fn with fn_blocks = blocks; fn_next_var = !next_var }

let run config info fn =
  let budget = ref 16 in
  let rec attempt fn =
    if !budget <= 0 then fn
    else begin
      let loops = Loops.natural_loops fn in
      let result = ref None in
      List.iter
        (fun loop ->
          if !result = None then
            match find_promotion config info fn loop with
            | Some (preheader, latch, cell, stores, _loads) ->
              decr budget;
              result := Some (promote_cell fn loop preheader latch cell stores)
            | None -> ())
        loops;
      match !result with
      | Some fn' -> attempt fn'
      | None -> fn
    end
  in
  attempt fn

let info = Passinfo.v ~requires:[ Passinfo.Meminfo; Passinfo.Cfg; Passinfo.Dominators ] "loop-promote"
