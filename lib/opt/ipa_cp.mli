(** Interprocedural constant propagation (the GCC ipa-cp role).

    If every call site of a [static] function passes the same compile-time
    constant for a parameter, uses of that parameter inside the callee are
    replaced by the constant.  This proves callee-side branches dead {e
    without} inlining — the cases inlining thresholds are too small for —
    and is a distinct bisection component ("Interprocedural Analyses") in the
    simulated histories.

    Only direct calls exist in MiniC and non-static functions may have unseen
    callers, so the transformation is sound exactly for statics with at least
    one visible call site. *)

val run : Dce_ir.Ir.program -> Dce_ir.Ir.program

val info : Passinfo.t
(** Pass-manager registration: substitutes constants for parameter uses only. *)
