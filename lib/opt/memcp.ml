open Dce_ir
open Ir

type config = {
  use_call_summaries : bool;
  edge_aware : bool;
  uniform_arrays : bool;
  precision : Alias.precision;
  block_limit : int;
  cell_limit : int;
}

let default_config =
  {
    use_call_summaries = true;
    edge_aware = true;
    uniform_arrays = true;
    precision = Alias.Full;
    block_limit = 512;
    cell_limit = 32;
  }

(* per-cell lattice: constant > Nac; "no information yet" is represented by a
   block simply not having an in-state yet *)
type cval = Kint of int | Kaddr of string * int | Nac

let meet a b =
  match (a, b) with
  | Nac, _ | _, Nac -> Nac
  | Kint x, Kint y -> if x = y then a else Nac
  | Kaddr (s1, o1), Kaddr (s2, o2) -> if s1 = s2 && o1 = o2 then a else Nac
  | Kint _, Kaddr _ | Kaddr _, Kint _ -> Nac

type cells = {
  base : (string, int) Hashtbl.t; (* symbol -> first cell index *)
  sizes : (string, int) Hashtbl.t;
  unknown_reachable : int list;   (* indices unknown pointers may write *)
  total : int;
}

let build_cells config info =
  let base = Hashtbl.create 16 in
  let sizes = Hashtbl.create 16 in
  let next = ref 0 in
  let unknown_reachable = ref [] in
  List.iter
    (fun sym ->
      if sym.sym_size <= config.cell_limit then begin
        Hashtbl.replace base sym.sym_name !next;
        Hashtbl.replace sizes sym.sym_name sym.sym_size;
        if Meminfo.unknown_may_touch info sym.sym_name then
          for i = !next to !next + sym.sym_size - 1 do
            unknown_reachable := i :: !unknown_reachable
          done;
        next := !next + sym.sym_size
      end)
    (Meminfo.all_symbols info);
  { base; sizes; unknown_reachable = !unknown_reachable; total = !next }

let cell_index cells sym off =
  match (Hashtbl.find_opt cells.base sym, Hashtbl.find_opt cells.sizes sym) with
  | Some b, Some size when off >= 0 && off < size -> Some (b + off)
  | _ -> None

let clobber_sym cells state sym =
  match (Hashtbl.find_opt cells.base sym, Hashtbl.find_opt cells.sizes sym) with
  | Some b, Some size ->
    for i = b to b + size - 1 do
      state.(i) <- Nac
    done
  | _ -> ()

let clobber_all cells state =
  for i = 0 to cells.total - 1 do
    state.(i) <- Nac
  done

let clobber_unknown cells state = List.iter (fun i -> state.(i) <- Nac) cells.unknown_reachable

let stored_value dt v =
  match Meminfo.resolve_const dt v with
  | Some k -> Kint k
  | None -> (
    match Meminfo.resolve_addr dt v with
    | Meminfo.Asym (s, Some o) -> Kaddr (s, o)
    | Meminfo.Asym (_, None) | Meminfo.Aunknown -> Nac)

(* transfer of one instruction; [on_load] is called with the state valid
   before the load executes *)
let transfer config info cells dt ~on_load state i =
  match i with
  | Def (v, Load p) -> (
    match Meminfo.resolve_addr dt p with
    | Meminfo.Asym (s, Some k) -> (
      match cell_index cells s k with
      | Some idx -> on_load v state.(idx)
      | None -> ())
    | Meminfo.Asym (s, None) when config.uniform_arrays -> (
      (* unknown index into a never-stored, never-escaping static array whose
         initializer cells are all equal: the load yields that value
         irrespective of the index (paper Listing 9f: if (b[a]) with b
         all-zero).  In-bounds is guaranteed by MiniC's total semantics (an
         OOB access would have trapped and the program been discarded). *)
      if
        Meminfo.is_static_like info s
        && (not (Meminfo.escaped info s))
        && not (Meminfo.ever_stored info s)
      then
        match Meminfo.symbol info s with
        | Some sym when sym.sym_size > 0 ->
          let first = sym.sym_init.(0) in
          if Array.for_all (fun c -> c = first) sym.sym_init then
            on_load v
              (match first with
               | Cint n -> Kint n
               | Caddr (s', o') -> Kaddr (s', o'))
        | _ -> ())
    | Meminfo.Asym (_, None) | Meminfo.Aunknown -> ())
  | Def _ -> ()
  | Store (p, v) -> (
    match Meminfo.resolve_addr dt p with
    | Meminfo.Asym (s, Some k) -> (
      match cell_index cells s k with
      | Some idx -> state.(idx) <- stored_value dt v
      | None -> ())
    | Meminfo.Asym (s, None) -> clobber_sym cells state s
    | Meminfo.Aunknown ->
      (* only full alias precision may exploit escape information here *)
      if config.precision = Alias.Full then clobber_unknown cells state
      else clobber_all cells state)
  | Call (_, name, _) ->
    (* an extern callee can only touch extern-visible symbols, summaries or
       not (it lives in another TU); summaries only refine defined callees *)
    if Meminfo.is_defined_function info name then
      if config.use_call_summaries then
        Meminfo.Sset.iter (fun s -> clobber_sym cells state s) (Meminfo.mod_set info name)
      else clobber_all cells state
    else Meminfo.Sset.iter (fun s -> clobber_sym cells state s) (Meminfo.extern_mod_set info)
  | Marker _ ->
    Meminfo.Sset.iter (fun s -> clobber_sym cells state s) (Meminfo.extern_mod_set info)

(* the value of a branch condition, when decidable from register constants or
   from a load of a tracked constant cell *)
let cond_value config cells dt state c =
  match Meminfo.resolve_const dt c with
  | Some k -> Some (Kint k)
  | None -> (
    if not config.edge_aware then None
    else
      match c with
      | Const k -> Some (Kint k)
      | Reg v -> (
        match Meminfo.def_rvalue dt v with
        | Some (Load p) -> (
          match Meminfo.resolve_addr dt p with
          | Meminfo.Asym (s, Some k) -> (
            match cell_index cells s k with
            | Some idx -> ( match state.(idx) with Nac -> None | cv -> Some cv)
            | None -> None)
          | Meminfo.Asym (_, None) | Meminfo.Aunknown -> None)
        | Some (Addr _) -> Some (Kaddr ("", 0)) (* addresses are truthy *)
        | _ -> None))

let feasible_succs config cells dt state term =
  match term with
  | Jmp l -> [ l ]
  | Ret _ -> []
  | Br (c, lt, lf) -> (
    match cond_value config cells dt state c with
    | Some (Kint 0) -> [ lf ]
    | Some (Kint _) | Some (Kaddr _) -> [ lt ]
    | None | Some Nac -> [ lt; lf ])
  | Switch (c, cases, dflt) -> (
    match cond_value config cells dt state c with
    | Some (Kint k) -> [ Option.value ~default:dflt (List.assoc_opt k cases) ]
    | _ -> List.map snd cases @ [ dflt ])

let run config info fn =
  if Imap.cardinal fn.fn_blocks > config.block_limit then fn
  else begin
    let cells = build_cells config info in
    if cells.total = 0 then fn
    else begin
      let dt = Meminfo.deftab fn in
      (* no seeding from initializers: a real compiler may not assume a
         global still holds its initial value at function entry (the whole
         point of the paper's Listings 4/6a) — constants flow from stores *)
      let entry_state = Array.make cells.total Nac in
      let in_states : (label, cval array) Hashtbl.t = Hashtbl.create 32 in
      Hashtbl.replace in_states fn.fn_entry entry_state;
      let rpo = Cfg.reverse_postorder fn in
      let changed = ref true in
      let rounds = ref 0 in
      while !changed && !rounds < 64 do
        changed := false;
        incr rounds;
        List.iter
          (fun l ->
            match Hashtbl.find_opt in_states l with
            | None -> () (* not (yet) feasible *)
            | Some in_state ->
              let state = Array.copy in_state in
              let b = block fn l in
              List.iter
                (fun i -> transfer config info cells dt ~on_load:(fun _ _ -> ()) state i)
                b.b_instrs;
              List.iter
                (fun s ->
                  match Hashtbl.find_opt in_states s with
                  | None ->
                    Hashtbl.replace in_states s (Array.copy state);
                    changed := true
                  | Some existing ->
                    let any = ref false in
                    Array.iteri
                      (fun i v ->
                        let m = meet v state.(i) in
                        if m <> v then begin
                          existing.(i) <- m;
                          any := true
                        end)
                      existing;
                    if !any then changed := true)
                (feasible_succs config cells dt state b.b_term))
          rpo
      done;
      (* rewrite loads whose cell holds a single constant *)
      let rewrites : (int, rvalue) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun l ->
          match Hashtbl.find_opt in_states l with
          | None -> ()
          | Some in_state ->
            let state = Array.copy in_state in
            let b = block fn l in
            List.iter
              (fun i ->
                transfer config info cells dt
                  ~on_load:(fun v cv ->
                    match cv with
                    | Kint k -> Hashtbl.replace rewrites v (Op (Const k))
                    | Kaddr (s, o) -> Hashtbl.replace rewrites v (Addr (s, Const o))
                    | Nac -> ())
                  state i)
              b.b_instrs)
        rpo;
      if Hashtbl.length rewrites = 0 then fn
      else begin
        let blocks =
          Imap.map
            (fun b ->
              {
                b with
                b_instrs =
                  List.map
                    (fun i ->
                      match i with
                      | Def (v, Load _) -> (
                        match Hashtbl.find_opt rewrites v with
                        | Some rv -> Def (v, rv)
                        | None -> i)
                      | _ -> i)
                    b.b_instrs;
              })
            fn.fn_blocks
        in
        { fn with fn_blocks = blocks }
      end
    end
  end

let info = Passinfo.v ~requires:[ Passinfo.Meminfo ] ~preserves:[ Passinfo.Cfg; Passinfo.Dominators ] "memcp"
