open Dce_ir
open Ir

type config = { max_trip : int; max_body : int; min_stores : int }

let default_config = { max_trip = 64; max_body = 48; min_stores = 1 }

let pool_name = "__vec_pool"

let body_size fn (loop : Loops.loop) =
  Iset.fold (fun l acc -> acc + List.length (block fn l).b_instrs + 1) loop.Loops.body 0

let store_count fn (loop : Loops.loop) =
  Iset.fold
    (fun l acc ->
      acc
      + List.length (List.filter (function Store _ -> true | _ -> false) (block fn l).b_instrs))
    loop.Loops.body 0

(* rewrite every store in the region to address through the opaque pool *)
let obfuscate_stores fn region =
  let next_var = ref fn.fn_next_var in
  let fresh () =
    let v = !next_var in
    incr next_var;
    v
  in
  let changed = ref false in
  let blocks =
    Imap.mapi
      (fun l b ->
        if not (Iset.mem l region) then b
        else begin
          let instrs =
            List.concat_map
              (fun i ->
                match i with
                | Store ((Reg _ as addr), v) ->
                  changed := true;
                  let t_pool = fresh () in
                  let t_zero = fresh () in
                  let t_addr = fresh () in
                  [
                    Def (t_pool, Addr (pool_name, Const 0));
                    Def (t_zero, Load (Reg t_pool));
                    Def (t_addr, Ptradd (addr, Reg t_zero));
                    Store (Reg t_addr, v);
                  ]
                | i -> [ i ])
              b.b_instrs
          in
          { b with b_instrs = instrs }
        end)
      fn.fn_blocks
  in
  if !changed then Some { fn with fn_blocks = blocks; fn_next_var = !next_var } else None

let run config prog =
  let pool_used = ref false in
  let vectorize_func fn =
    let loops = Loops.natural_loops fn in
    List.fold_left
      (fun fn loop ->
        if
          Unroll.eligible fn loop
          && body_size fn loop <= config.max_body
          && store_count fn loop >= config.min_stores
        then
          match Unroll.trip_count ~max_trip:config.max_trip fn loop with
          | Some trip when trip >= 2 -> (
            match obfuscate_stores fn loop.Loops.body with
            | Some fn' ->
              pool_used := true;
              fn'
            | None -> fn)
          | Some _ | None -> fn
        else fn)
      fn loops
  in
  let funcs = List.map vectorize_func prog.prog_funcs in
  let prog = { prog with prog_funcs = funcs } in
  if !pool_used && find_symbol prog pool_name = None then
    {
      prog with
      prog_syms =
        prog.prog_syms
        @ [
            {
              sym_name = pool_name;
              sym_size = 1;
              sym_init = [| Cint 0 |];
              sym_static = false;
              sym_kind = `Global;
            };
          ];
    }
  else prog

let info = Passinfo.v ~requires:[ Passinfo.Cfg ] "vectorize"
