open Dce_ir
open Ir
module Ops = Dce_minic.Ops

type config = { max_trip : int; max_body : int; max_growth : int }

let default_config = { max_trip = 24; max_body = 64; max_growth = 600 }

exception Not_unrollable

(* exact symbolic evaluation of the register chain feeding the header phis:
   pure integer operators only, so total semantics make this exact *)
let symbolic_eval dt env op =
  let rec go fuel op =
    if fuel <= 0 then raise Not_unrollable;
    match op with
    | Const k -> k
    | Reg v -> (
      match Hashtbl.find_opt env v with
      | Some k -> k
      | None -> (
        match Meminfo.def_rvalue dt v with
        | Some (Op a) -> go (fuel - 1) a
        | Some (Unary (u, a)) -> Ops.eval_unop u (go (fuel - 1) a)
        | Some (Binary (o, a, b)) -> Ops.eval_binop o (go (fuel - 1) a) (go (fuel - 1) b)
        | Some (Load _) | Some (Phi _) | Some (Addr _) | Some (Ptradd _) | None ->
          raise Not_unrollable))
  in
  go 64 op

(* header phis as (var, preheader_arg, latch_arg) *)
let header_phis fn loop =
  let header_block = block fn loop.Loops.header in
  List.filter_map
    (fun i ->
      match i with
      | Def (v, Phi args) ->
        let pre = List.find_opt (fun (p, _) -> not (Iset.mem p loop.Loops.body)) args in
        let lat = List.find_opt (fun (p, _) -> Iset.mem p loop.Loops.body) args in
        (match (pre, lat, List.length args) with
         | Some (_, a), Some (_, b), 2 -> Some (v, a, b)
         | _ -> raise Not_unrollable)
      | _ -> None)
    header_block.b_instrs

let compute_trip config fn loop =
  let dt = Meminfo.deftab fn in
  let header_block = block fn loop.Loops.header in
  let cond, body_target, exit_target =
    match header_block.b_term with
    | Br (c, t1, t2) -> (
      match (Iset.mem t1 loop.Loops.body, Iset.mem t2 loop.Loops.body) with
      | true, false -> (c, t1, t2)
      | false, true -> (c, t2, t1)
      | _ -> raise Not_unrollable)
    | _ -> raise Not_unrollable
  in
  let phis = header_phis fn loop in
  let phi_vars = List.fold_left (fun s (v, _, _) -> Iset.add v s) Iset.empty phis in
  (* only the phis the exit condition transitively depends on need simulating;
     accumulator phis (e.g. a running sum seeded by a load) are irrelevant to
     the trip count and must not disqualify the loop *)
  let rec chain_deps fuel acc op =
    if fuel <= 0 then acc
    else
      match op with
      | Const _ -> acc
      | Reg v ->
        if Iset.mem v phi_vars then Iset.add v acc
        else (
          match Meminfo.def_rvalue dt v with
          | Some (Op a) | Some (Unary (_, a)) -> chain_deps (fuel - 1) acc a
          | Some (Binary (_, a, b)) -> chain_deps (fuel - 1) (chain_deps (fuel - 1) acc a) b
          | _ -> acc)
  in
  let needed = ref (chain_deps 64 Iset.empty cond) in
  let grown = ref true in
  while !grown do
    grown := false;
    List.iter
      (fun (v, _, latch_arg) ->
        if Iset.mem v !needed then begin
          let deps = chain_deps 64 !needed latch_arg in
          if not (Iset.equal deps !needed) then begin
            needed := deps;
            grown := true
          end
        end)
      phis
  done;
  let sim_phis = List.filter (fun (v, _, _) -> Iset.mem v !needed) phis in
  let env = Hashtbl.create 8 in
  (* initial values from the preheader args (outside the loop, so the empty
     environment suffices; non-constant chains raise Not_unrollable) *)
  let empty_env : (int, int) Hashtbl.t = Hashtbl.create 1 in
  List.iter
    (fun (v, pre_arg, _) -> Hashtbl.replace env v (symbolic_eval dt empty_env pre_arg))
    sim_phis;
  let eval op = symbolic_eval dt env op in
  let trip = ref 0 in
  let finished = ref false in
  while not !finished do
    let c = eval cond in
    let continues = if c <> 0 then body_target else exit_target in
    if continues = exit_target then finished := true
    else begin
      incr trip;
      if !trip > config.max_trip then raise Not_unrollable;
      let updates = List.map (fun (v, _, latch_arg) -> (v, eval latch_arg)) sim_phis in
      List.iter (fun (v, k) -> Hashtbl.replace env v k) updates
    end
  done;
  !trip

let eligible fn loop =
  List.length loop.Loops.latches = 1
  && List.for_all (fun (src, _) -> src = loop.Loops.header) loop.Loops.exits
  &&
  let preds = Cfg.predecessors fn in
  let header_preds = Option.value ~default:[] (Imap.find_opt loop.Loops.header preds) in
  let outside = List.filter (fun p -> not (Iset.mem p loop.Loops.body)) header_preds in
  List.length outside = 1

let body_size fn loop =
  Iset.fold (fun l acc -> acc + List.length (block fn l).b_instrs + 1) loop.Loops.body 0

let unroll_loop fn loop trip =
  let latch = List.hd loop.Loops.latches in
  let preds = Cfg.predecessors fn in
  let header_preds = Option.value ~default:[] (Imap.find_opt loop.Loops.header preds) in
  let preheader =
    List.find (fun p -> not (Iset.mem p loop.Loops.body)) header_preds
  in
  let orig_phis = header_phis fn loop in
  (* clone trip+1 copies *)
  let fn = ref fn in
  let maps = ref [] in
  for _k = 0 to trip do
    let fn', m = Clone.clone_region !fn loop.Loops.body in
    fn := fn';
    maps := m :: !maps
  done;
  let maps = Array.of_list (List.rev !maps) in
  let map_k k = maps.(k) in
  let blocks = ref !fn.fn_blocks in
  let update l f =
    match Imap.find_opt l !blocks with
    | Some b -> blocks := Imap.add l (f b) !blocks
    | None -> ()
  in
  (* 1. preheader enters copy 0 *)
  update preheader (fun b ->
      { b with b_term = map_terminator_labels (fun t -> if t = loop.Loops.header then Clone.map_label (map_k 0) loop.Loops.header else t) b.b_term });
  (* 2. chain latches: copy k's back edge goes to copy k+1's header; the last
     copy's back edge is dynamically dead and goes to a stub return *)
  let stub_label = !fn.fn_next_label in
  fn := { !fn with fn_next_label = stub_label + 1 };
  let stub_term = if !fn.fn_returns_value then Ret (Some (Const 0)) else Ret None in
  blocks := Imap.add stub_label { b_instrs = []; b_term = stub_term } !blocks;
  for k = 0 to trip do
    let latch_k = Clone.map_label (map_k k) latch in
    let header_k = Clone.map_label (map_k k) loop.Loops.header in
    let next_header =
      if k < trip then Clone.map_label (map_k (k + 1)) loop.Loops.header else stub_label
    in
    update latch_k (fun b ->
        { b with b_term = map_terminator_labels (fun t -> if t = header_k then next_header else t) b.b_term })
  done;
  (* 3. header copies: phis become plain copies *)
  for k = 0 to trip do
    let header_k = Clone.map_label (map_k k) loop.Loops.header in
    update header_k (fun b ->
        let instrs =
          List.map
            (fun i ->
              match i with
              | Def (v, Phi _) -> (
                (* v is the cloned phi var: find the original it came from *)
                let orig =
                  List.find_opt (fun (ov, _, _) -> Clone.map_var (map_k k) ov = v) orig_phis
                in
                match orig with
                | Some (_, pre_arg, latch_arg) ->
                  if k = 0 then Def (v, Op pre_arg)
                  else Def (v, Op (Clone.map_operand (map_k (k - 1)) latch_arg))
                | None -> i)
              | _ -> i)
            b.b_instrs
        in
        { b with b_instrs = instrs })
  done;
  (* 4. exit blocks: replicate phi entries whose pred was a loop block *)
  let exit_targets = Dce_support.Listx.uniq (List.map snd loop.Loops.exits) in
  List.iter
    (fun s ->
      update s (fun b ->
          let instrs =
            List.map
              (fun i ->
                match i with
                | Def (v, Phi args) ->
                  let expanded =
                    List.concat_map
                      (fun (p, a) ->
                        if Iset.mem p loop.Loops.body then
                          List.init (trip + 1) (fun k ->
                              (Clone.map_label (map_k k) p, Clone.map_operand (map_k k) a))
                        else [ (p, a) ])
                      args
                  in
                  Def (v, Phi expanded)
                | _ -> i)
              b.b_instrs
          in
          { b with b_instrs = instrs }))
    exit_targets;
  let fn = { !fn with fn_blocks = !blocks } in
  Cfg.remove_unreachable_blocks fn

let trip_count ~max_trip fn loop =
  try Some (compute_trip { default_config with max_trip } fn loop) with Not_unrollable -> None

(* fold constants exposed by unrolling (the copies' now-constant branch
   conditions) and clean the CFG, so outer loops of a nest become eligible
   again — the "unroll then simplify" loop real unrollers run *)
let const_cleanup fn =
  let rec rounds n fn =
    if n <= 0 then fn
    else begin
      let dt = Meminfo.deftab fn in
      let resolve op =
        match Meminfo.resolve_const dt op with
        | Some k -> Const k
        | None -> op
      in
      let fold_instr i =
        match map_instr_operands resolve i with
        | Def (v, Unary (u, Const a)) -> Def (v, Op (Const (Ops.eval_unop u a)))
        | Def (v, Binary (o, Const a, Const b)) -> Def (v, Op (Const (Ops.eval_binop o a b)))
        | i -> i
      in
      let blocks =
        Imap.map
          (fun b ->
            {
              b_instrs = List.map fold_instr b.b_instrs;
              b_term = map_terminator_operands resolve b.b_term;
            })
          fn.fn_blocks
      in
      let fn' = Simplify_cfg.run { fn with fn_blocks = blocks } in
      if fn'.fn_blocks = fn.fn_blocks then fn' else rounds (n - 1) fn'
    end
  in
  rounds 6 fn

let run config fn =
  let budget = ref config.max_growth in
  let rec attempt fn rounds =
    if rounds <= 0 then fn
    else begin
      let loops = Loops.natural_loops fn in
      let result = ref None in
      List.iter
        (fun loop ->
          if !result = None && eligible fn loop then begin
            let size = body_size fn loop in
            if size <= config.max_body then
              try
                let trip = compute_trip config fn loop in
                let growth = size * (trip + 1) in
                if growth <= !budget then
                  (* close the loop (LCSSA) so cloned values reach outside
                     uses through exit phis *)
                  match Lcssa.close_loop fn loop with
                  | Some fn' ->
                    budget := !budget - growth;
                    result := Some (const_cleanup (unroll_loop fn' loop trip))
                  | None -> ()
              with Not_unrollable -> ()
          end)
        loops;
      match !result with
      | Some fn' -> attempt fn' (rounds - 1)
      | None -> fn
    end
  in
  attempt fn 8

let info = Passinfo.v ~requires:[ Passinfo.Cfg ] "unroll"
