open Dce_ir
open Ir

type config = { threshold : int; growth_cap : int }

let default_config = { threshold = 60; growth_cap = 1200 }

(* transitive callees, for recursion avoidance *)
let reach_map prog =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun fn -> Hashtbl.replace tbl fn.fn_name (Meminfo.Sset.of_list (called_names fn)))
    prog.prog_funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
        let cur = Hashtbl.find tbl fn.fn_name in
        let expanded =
          Meminfo.Sset.fold
            (fun callee acc ->
              match Hashtbl.find_opt tbl callee with
              | Some s -> Meminfo.Sset.union acc s
              | None -> acc)
            cur cur
        in
        if not (Meminfo.Sset.equal expanded cur) then begin
          Hashtbl.replace tbl fn.fn_name expanded;
          changed := true
        end)
      prog.prog_funcs
  done;
  tbl

(* a unique-ish suffix for cloned frame symbols; atomic because campaign
   workers inline from several domains concurrently (uniqueness is only
   needed within one compilation, but increments must not tear) *)
let clone_counter = Atomic.make 0

(* splice [callee] into [caller] at the call site (block [l], index [idx]);
   returns the new caller and the frame symbols to add to the program *)
let inline_site caller callee ~callee_frames l idx res args =
  let b = block caller l in
  let prefix = Dce_support.Listx.take idx b.b_instrs in
  let suffix = Dce_support.Listx.drop (idx + 1) b.b_instrs in
  (* frame symbol renaming for this call site *)
  let sym_suffix = Printf.sprintf "$i%d" (1 + Atomic.fetch_and_add clone_counter 1) in
  let sym_rename name = name ^ sym_suffix in
  (* label/var offsets into the caller's namespace *)
  let loff = caller.fn_next_label in
  let voff = caller.fn_next_var in
  let map_l lab = lab + loff in
  let map_v v = v + voff in
  let cont_label = loff + callee.fn_next_label in
  (* parameter substitution: callee params (mapped) -> argument operands *)
  let param_subst = Hashtbl.create 8 in
  List.iteri
    (fun i p ->
      let arg = try List.nth args i with _ -> Const 0 in
      Hashtbl.replace param_subst (map_v p) arg)
    callee.fn_params;
  let subst_op op =
    match op with
    | Const _ -> op
    | Reg v -> ( match Hashtbl.find_opt param_subst v with Some a -> a | None -> op)
  in
  let map_op = function
    | Const n -> Const n
    | Reg v -> subst_op (Reg (map_v v))
  in
  let ret_sites = ref [] in
  let import_instr i =
    match i with
    | Def (v, rv) ->
      let rv =
        match rv with
        | Op a -> Op (map_op a)
        | Unary (u, a) -> Unary (u, map_op a)
        | Binary (o, a, b2) -> Binary (o, map_op a, map_op b2)
        | Addr (s, a) ->
          let s' = if List.mem s callee_frames then sym_rename s else s in
          Addr (s', map_op a)
        | Ptradd (a, b2) -> Ptradd (map_op a, map_op b2)
        | Load a -> Load (map_op a)
        | Phi psi -> Phi (List.map (fun (p, a) -> (map_l p, map_op a)) psi)
      in
      Def (map_v v, rv)
    | Store (a, v) -> Store (map_op a, map_op v)
    | Call (r, name, cargs) -> Call (Option.map map_v r, name, List.map map_op cargs)
    | Marker n -> Marker n
  in
  let imported_blocks = ref Imap.empty in
  Imap.iter
    (fun lab cb ->
      let term =
        match cb.b_term with
        | Ret op ->
          ret_sites := (map_l lab, Option.map map_op op) :: !ret_sites;
          Jmp cont_label
        | t -> map_terminator_labels map_l (map_terminator_operands map_op t)
      in
      imported_blocks := Imap.add (map_l lab) { b_instrs = List.map import_instr cb.b_instrs; b_term = term } !imported_blocks)
    callee.fn_blocks;
  let ret_sites = List.rev !ret_sites in
  (* continuation block: bind the result, then the rest of the original block *)
  let result_def =
    match res with
    | None -> []
    | Some v -> (
      match ret_sites with
      | [] -> [ Def (v, Op (Const 0)) ] (* callee never returns: unreachable *)
      | [ (_, op) ] -> [ Def (v, Op (Option.value ~default:(Const 0) op)) ]
      | many ->
        [ Def (v, Phi (List.map (fun (lab, op) -> (lab, Option.value ~default:(Const 0) op)) many)) ])
  in
  let cont_block = { b_instrs = result_def @ suffix; b_term = b.b_term } in
  let entry_mapped = map_l callee.fn_entry in
  let head_block = { b_instrs = prefix; b_term = Jmp entry_mapped } in
  let blocks =
    Imap.add l head_block caller.fn_blocks
    |> Imap.union (fun _ a _ -> Some a) !imported_blocks
    |> Imap.add cont_label cont_block
  in
  (* successors of the original block now flow from the continuation block *)
  let blocks =
    List.fold_left
      (fun blocks s ->
        match Imap.find_opt s blocks with
        | None -> blocks
        | Some sb ->
          let fix = function
            | Def (v, Phi psi) ->
              Def (v, Phi (List.map (fun (p, a) -> ((if p = l then cont_label else p), a)) psi))
            | i -> i
          in
          Imap.add s { sb with b_instrs = List.map fix sb.b_instrs } blocks)
      blocks (successors b.b_term)
  in
  (* import variable name hints *)
  let var_names =
    Imap.fold
      (fun v hint acc -> Imap.add (map_v v) hint acc)
      callee.fn_var_names caller.fn_var_names
  in
  let caller =
    {
      caller with
      fn_blocks = blocks;
      fn_next_label = cont_label + 1;
      fn_next_var = voff + callee.fn_next_var;
      fn_var_names = var_names;
    }
  in
  (caller, sym_rename)

(* a callee with no reachable return never returns; real inliners avoid
   those (and inlining one would leave the continuation block dangling in
   spirit) *)
let has_reachable_ret fn =
  let reach = Cfg.reachable fn in
  Imap.exists
    (fun l b -> Iset.mem l reach && match b.b_term with Ret _ -> true | _ -> false)
    fn.fn_blocks

let run config prog =
  let reach = reach_map prog in
  let size_of = Hashtbl.create 16 in
  List.iter (fun fn -> Hashtbl.replace size_of fn.fn_name (instr_count fn)) prog.prog_funcs;
  let prog_ref = ref prog in
  let inline_into fn =
    let fn = ref fn in
    let budget = ref 40 in
    let progress = ref true in
    while !progress && !budget > 0 && instr_count !fn <= config.growth_cap do
      progress := false;
      decr budget;
      (* find the first inlinable call site *)
      let site = ref None in
      (try
         Imap.iter
           (fun l b ->
             List.iteri
               (fun idx i ->
                 match i with
                 | Call (res, name, args) when !site = None -> (
                   match find_func !prog_ref name with
                   | Some callee
                     when callee.fn_name <> "main"
                          && callee.fn_name <> !fn.fn_name
                          && Option.value ~default:0 (Hashtbl.find_opt size_of name)
                             <= config.threshold
                          && has_reachable_ret callee
                          && not
                               (Meminfo.Sset.mem !fn.fn_name
                                  (Option.value ~default:Meminfo.Sset.empty
                                     (Hashtbl.find_opt reach name))) ->
                     site := Some (l, idx, res, args, callee);
                     raise Exit
                   | _ -> ())
                 | _ -> ())
               b.b_instrs)
           !fn.fn_blocks
       with Exit -> ());
      match !site with
      | None -> ()
      | Some (l, idx, res, args, callee) ->
        let callee_frames =
          List.filter_map
            (fun sym ->
              match sym.sym_kind with
              | `Frame owner when owner = callee.fn_name -> Some sym.sym_name
              | `Frame _ | `Global -> None)
            !prog_ref.prog_syms
        in
        let new_fn, sym_rename = inline_site !fn callee ~callee_frames l idx res args in
        (* clone the callee's frame symbols for this site *)
        let new_syms =
          List.filter_map
            (fun sym ->
              match sym.sym_kind with
              | `Frame owner when owner = callee.fn_name ->
                Some
                  {
                    sym with
                    sym_name = sym_rename sym.sym_name;
                    sym_kind = `Frame new_fn.fn_name;
                  }
              | `Frame _ | `Global -> None)
            !prog_ref.prog_syms
        in
        prog_ref := { !prog_ref with prog_syms = !prog_ref.prog_syms @ new_syms };
        fn := new_fn;
        progress := true
    done;
    !fn
  in
  let funcs = List.map inline_into !prog_ref.prog_funcs in
  { !prog_ref with prog_funcs = funcs }

let info = Passinfo.v ~requires:[ Passinfo.Cfg ] "inline"
