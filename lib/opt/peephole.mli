(** Peephole simplification / instruction combining.

    Pattern-rewrites single definitions by looking through the SSA definitions
    of their operands.  The available rule set grows with [level], so commits
    in the simulated histories can add (or remove — regressions) individual
    rules, which is how the paper's "Peephole Optimizations" component rows in
    Tables 3/4 arise here.

    - level 1: algebraic identities ([x+0], [x*0], [x^x], [x==x], double
      negation, …);
    - level 2: constant reassociation ([ (x+c1)+c2 → x+(c1+c2) ]),
      comparison-of-comparison cleanups ([ (x<y) != 0 → x<y ]), branch-on-not
      target swapping;
    - level 3: comparison strength reduction through additions
      ([ x+c1 == c2 → x == c2-c1 ]) and selected bit tricks. *)

type config = { level : int }

val default_config : config

val run : config -> Dce_ir.Ir.func -> Dce_ir.Ir.func

val info : Passinfo.t
(** Pass-manager registration: rewrites def rvalues only, so CFG-shape analyses stay exact. *)
