(** Loop vectorizer model.

    Claims counted store-loops (same legality machinery as {!Unroll}: exact
    trip count through the register chain) and rewrites their stores to go
    through a {e vector index pool}: the element offset is re-materialized as
    a load from the non-static constant array [__vec_pool], exactly as a real
    vectorizer re-materializes index vectors.  The rewritten address chains
    are semantically identical (the pool holds zero) but {e opaque to every
    scalar analysis} — [resolve_addr] sees an unknown offset, so
    store-to-load forwarding and {!Memcp} can no longer prove what the loop
    wrote.

    This reproduces the paper's Listing 9e: GCC at -O1 unrolls and folds
    [c\[b\] = &a\[1\]], proving [!c\[0\]] false; at -O3 the vectorizer gets
    the loop first ("pointer arrays are vectorized as unsigned longs", the
    type mismatch that blocked constant folding), and the dead call stays. *)

type config = {
  max_trip : int;   (** only loops with a known trip count up to this *)
  max_body : int;
  min_stores : int; (** require at least this many stores in the body *)
}

val default_config : config

val run : config -> Dce_ir.Ir.program -> Dce_ir.Ir.program
(** Program-level because it may add the [__vec_pool] symbol. *)

val info : Passinfo.t
(** Pass-manager registration: rewrites loop stores and may add a symbol. *)
