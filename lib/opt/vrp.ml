open Dce_ir
open Ir
module Ops = Dce_minic.Ops

type config = { shift_rule : bool; mod_singleton : bool; block_limit : int }

let default_config = { shift_rule = true; mod_singleton = true; block_limit = 512 }

(* intervals [lo, hi]; min_int/max_int act as infinities *)
type range = { lo : int; hi : int }

let full = { lo = min_int; hi = max_int }
let singleton k = { lo = k; hi = k }
let is_singleton r = r.lo = r.hi && r.lo > min_int && r.hi < max_int
let bool_range = { lo = 0; hi = 1 }

let sat_add a b =
  if a = min_int || b = min_int then min_int
  else if a = max_int || b = max_int then max_int
  else
    let s = a + b in
    (* overflow check *)
    if a > 0 && b > 0 && s < 0 then max_int else if a < 0 && b < 0 && s >= 0 then min_int else s

let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let meet a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let range_add a b = { lo = sat_add a.lo b.lo; hi = sat_add a.hi b.hi }
let range_sub a b = { lo = sat_add a.lo (if b.hi = max_int then min_int else -b.hi);
                      hi = sat_add a.hi (if b.lo = min_int then max_int else -b.lo) }

let small r = r.lo > -1048576 && r.hi < 1048576

let range_mul a b =
  if small a && small b then
    let products = [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ] in
    { lo = List.fold_left min max_int products; hi = List.fold_left max min_int products }
  else full

let range_of_binop config op a b =
  match op with
  | Ops.Add -> range_add a b
  | Ops.Sub -> range_sub a b
  | Ops.Mul -> range_mul a b
  | Ops.Div ->
    if is_singleton a && is_singleton b then singleton (Ops.eval_binop op a.lo b.lo)
    else if a.lo >= 0 && b.lo >= 1 then { lo = 0; hi = a.hi }
    else full
  | Ops.Mod ->
    if config.mod_singleton && is_singleton a && is_singleton b then
      singleton (Ops.eval_binop op a.lo b.lo)
    else if is_singleton b && b.lo > 0 then
      if a.lo >= 0 then { lo = 0; hi = b.lo - 1 } else { lo = -(b.lo - 1); hi = b.lo - 1 }
    else full
  | Ops.Shl ->
    if is_singleton a && is_singleton b then singleton (Ops.eval_binop op a.lo b.lo)
    else if a.lo >= 0 && small a && b.lo >= 0 && b.hi <= 20 then
      { lo = 0; hi = a.hi lsl min 20 (max 0 b.hi) }
    else full
  | Ops.Shr ->
    if is_singleton a && is_singleton b then singleton (Ops.eval_binop op a.lo b.lo)
    else if a.lo >= 0 then { lo = 0; hi = a.hi }
    else full
  | Ops.Band ->
    if is_singleton a && is_singleton b then singleton (a.lo land b.lo)
    else if b.lo >= 0 && b.hi < max_int then { lo = 0; hi = b.hi }
    else if a.lo >= 0 && a.hi < max_int then { lo = 0; hi = a.hi }
    else full
  | Ops.Bor | Ops.Bxor ->
    if is_singleton a && is_singleton b then singleton (Ops.eval_binop op a.lo b.lo)
    else if a.lo >= 0 && a.hi < max_int && b.lo >= 0 && b.hi < max_int then
      (* bitwise of nonnegatives stays below the next power of two *)
      let bound m =
        let rec up p = if p > m && p > 0 then p else up (p * 2) in
        up 1 - 1
      in
      { lo = 0; hi = bound (max a.hi b.hi) }
    else full
  | Ops.Eq | Ops.Ne | Ops.Lt | Ops.Le | Ops.Gt | Ops.Ge | Ops.Land | Ops.Lor -> bool_range

(* decide a comparison from operand ranges, if possible *)
let decide_cmp op a b =
  match op with
  | Ops.Eq ->
    if a.hi < b.lo || b.hi < a.lo then Some 0
    else if is_singleton a && is_singleton b && a.lo = b.lo then Some 1
    else None
  | Ops.Ne ->
    if a.hi < b.lo || b.hi < a.lo then Some 1
    else if is_singleton a && is_singleton b && a.lo = b.lo then Some 0
    else None
  | Ops.Lt -> if a.hi < b.lo then Some 1 else if a.lo >= b.hi then Some 0 else None
  | Ops.Le -> if a.hi <= b.lo then Some 1 else if a.lo > b.hi then Some 0 else None
  | Ops.Gt -> if a.lo > b.hi then Some 1 else if a.hi <= b.lo then Some 0 else None
  | Ops.Ge -> if a.lo >= b.hi then Some 1 else if a.hi < b.lo then Some 0 else None
  | _ -> None

type analysis = {
  base : range array;
  dt : Meminfo.deftab;
}

let operand_range an refin = function
  | Const k -> singleton k
  | Reg v -> (
    let r = an.base.(v) in
    match Imap.find_opt v refin with
    | Some r' -> ( match meet r r' with Some m -> m | None -> r')
    | None -> r)

let compute_base config fn =
  let n = max 1 fn.fn_next_var in
  let base = Array.make n full in
  let dt = Meminfo.deftab fn in
  let an = { base; dt } in
  let rpo = Cfg.reverse_postorder fn in
  (* a few optimistic rounds; then whatever is still changing goes to full *)
  for round = 1 to 4 do
    List.iter
      (fun l ->
        List.iter
          (fun i ->
            match i with
            | Def (v, rv) ->
              let r =
                match rv with
                | Op a -> operand_range an Imap.empty a
                | Unary (Ops.Neg, a) ->
                  let ra = operand_range an Imap.empty a in
                  range_sub (singleton 0) ra
                | Unary (Ops.Lnot, _) -> bool_range
                | Unary (Ops.Bnot, _) -> full
                | Binary (op, a, b) ->
                  range_of_binop config op (operand_range an Imap.empty a)
                    (operand_range an Imap.empty b)
                | Phi args ->
                  (* optimistic first round: join of already-known args *)
                  List.fold_left
                    (fun acc (_, a) -> join acc (operand_range an Imap.empty a))
                    (operand_range an Imap.empty (snd (List.hd args)))
                    (List.tl args)
                | Load _ | Addr _ | Ptradd _ -> full
              in
              if round < 4 then base.(v) <- r
              else if base.(v) <> r then base.(v) <- full (* widen what is unstable *)
            | _ -> ())
          (block fn l).b_instrs)
      rpo
  done;
  an

(* constraints from a dominating condition: returns refinements var -> range *)
let refine_from_condition config an cond_var holds refin =
  let add v r refin =
    match Imap.find_opt v refin with
    | Some existing -> (
      match meet existing r with
      | Some m -> Imap.add v m refin
      | None -> Imap.add v existing refin)
    | None -> Imap.add v r refin
  in
  (* the condition register itself: zero or nonzero *)
  let refin =
    if holds then refin (* nonzero: not representable as one interval in general *)
    else add cond_var (singleton 0) refin
  in
  match Meminfo.def_rvalue_resolved an.dt cond_var with
  | Some (Binary (cmp, Reg x, Const k)) when Ops.is_comparison cmp ->
    let cmp = if holds then Some cmp else Ops.negate_comparison cmp in
    (match cmp with
     | Some Ops.Eq -> add x (singleton k) refin
     | Some Ops.Ne -> refin
     | Some Ops.Lt -> add x { lo = min_int; hi = k - 1 } refin
     | Some Ops.Le -> add x { lo = min_int; hi = k } refin
     | Some Ops.Gt -> add x { lo = k + 1; hi = max_int } refin
     | Some Ops.Ge -> add x { lo = k; hi = max_int } refin
     | _ -> refin)
  | Some (Binary (cmp, Const k, Reg x)) when Ops.is_comparison cmp ->
    let cmp' = Option.bind (Some cmp) Ops.swap_comparison in
    let cmp' = if holds then cmp' else Option.bind cmp' Ops.negate_comparison in
    (match cmp' with
     | Some Ops.Eq -> add x (singleton k) refin
     | Some Ops.Lt -> add x { lo = min_int; hi = k - 1 } refin
     | Some Ops.Le -> add x { lo = min_int; hi = k } refin
     | Some Ops.Gt -> add x { lo = k + 1; hi = max_int } refin
     | Some Ops.Ge -> add x { lo = k; hi = max_int } refin
     | _ -> refin)
  | Some (Binary (Ops.Shl, Reg x, _)) when holds && config.shift_rule ->
    (* cond = x << y and cond != 0 holds: then x != 0; usable when x >= 0 *)
    let cur = an.base.(x) in
    if cur.lo >= 0 then add x { lo = max 1 cur.lo; hi = cur.hi } refin else refin
  | _ -> refin

(* refinements valid at block l, from dominating single-pred branch edges *)
let refinements_at config an fn dom preds l =
  let rec walk cur refin =
    match Dom.idom dom cur with
    | None -> refin
    | Some parent ->
      let refin =
        (* cur is entered only from parent on one branch edge? *)
        match Imap.find_opt cur preds with
        | Some [ p ] -> (
          match (block fn p).b_term with
          | Br (Reg c, lt, lf) when lt <> lf ->
            if lt = cur then refine_from_condition config an c true refin
            else if lf = cur then refine_from_condition config an c false refin
            else refin
          | _ -> refin)
        | _ -> refin
      in
      walk parent refin
  in
  walk l Imap.empty

let run ?dom ?preds config fn =
  if Imap.cardinal fn.fn_blocks > config.block_limit then fn
  else begin
    let an = compute_base config fn in
    let dom = match dom with Some f -> f () | None -> Dom.compute fn in
    let preds = match preds with Some f -> f () | None -> Cfg.predecessors fn in
    let reach = Cfg.reachable fn in
    let changed = ref false in
    let blocks =
      Imap.mapi
        (fun l b ->
          if not (Iset.mem l reach) then b
          else begin
            let refin = refinements_at config an fn dom preds l in
            (* same-block definitions recomputed with refined operand ranges,
               so "if (g == 2) { ... g % 5 ... }" sees g as the singleton 2 *)
            let local : (var, range) Hashtbl.t = Hashtbl.create 8 in
            let rng op =
              match op with
              | Reg v when Hashtbl.mem local v -> Hashtbl.find local v
              | _ -> operand_range an refin op
            in
            let note v r =
              match meet an.base.(v) r with
              | Some m -> Hashtbl.replace local v m
              | None -> Hashtbl.replace local v r
            in
            let instrs =
              List.map
                (fun i ->
                  match i with
                  | Def (v, Binary (cmp, a, b')) when Ops.is_comparison cmp -> (
                    match decide_cmp cmp (rng a) (rng b') with
                    | Some k ->
                      changed := true;
                      note v (singleton k);
                      Def (v, Op (Const k))
                    | None -> i)
                  | Def (v, Binary (op, a, b')) ->
                    note v (range_of_binop config op (rng a) (rng b'));
                    i
                  | Def (v, Op a) ->
                    note v (rng a);
                    i
                  | _ -> i)
                b.b_instrs
            in
            let term =
              match b.b_term with
              | Br (c, lt, lf) -> (
                let r = rng c in
                if r.lo > 0 || r.hi < 0 then begin
                  changed := true;
                  Jmp lt
                end
                else if is_singleton r && r.lo = 0 then begin
                  changed := true;
                  Jmp lf
                end
                else b.b_term)
              | t -> t
            in
            { b_instrs = instrs; b_term = term }
          end)
        fn.fn_blocks
    in
    if !changed then Cfg.prune_phi_args { fn with fn_blocks = blocks } else fn
  end

let info = Passinfo.v ~requires:[ Passinfo.Cfg; Passinfo.Dominators ] "vrp"
