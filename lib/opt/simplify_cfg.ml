open Dce_ir
open Ir

(* fold a branch/switch whose condition is a constant reachable through copy
   chains only (front-end-strength folding; SCCP handles the general case) *)
let fold_constant_terms fn =
  let dt = Meminfo.deftab fn in
  let changed = ref false in
  let fold_term term =
    match term with
    | Br (c, lt, lf) -> (
      if lt = lf then begin
        changed := true;
        Jmp lt
      end
      else
        match Meminfo.resolve_const dt c with
        | Some k ->
          changed := true;
          Jmp (if k <> 0 then lt else lf)
        | None -> (
          (* branch on an address constant: always true *)
          match Meminfo.resolve_addr dt c with
          | Meminfo.Asym _ ->
            changed := true;
            Jmp lt
          | Meminfo.Aunknown -> term))
    | Switch (c, cases, dflt) -> (
      match Meminfo.resolve_const dt c with
      | Some k ->
        changed := true;
        Jmp (Option.value ~default:dflt (List.assoc_opt k cases))
      | None -> term)
    | Jmp _ | Ret _ -> term
  in
  let blocks = Imap.map (fun b -> { b with b_term = fold_term b.b_term }) fn.fn_blocks in
  ({ fn with fn_blocks = blocks }, !changed)

(* drop phi arguments whose predecessor edge no longer exists (constant
   branch folding removes edges without removing blocks) *)
let prune_phi_args fn =
  let fn' = Cfg.prune_phi_args fn in
  (fn', fn'.fn_blocks <> fn.fn_blocks)

(* replace phis that have a single distinct non-self argument with copies *)
let simplify_phis fn =
  let changed = ref false in
  let simplify v = function
    | Phi args ->
      let distinct =
        Dce_support.Listx.uniq
          (List.filter_map (fun (_, a) -> if a = Reg v then None else Some a) args)
      in
      (match distinct with
       | [ a ] ->
         changed := true;
         Op a
       | [] ->
         (* phi of only itself: value never defined on any path; any constant *)
         changed := true;
         Op (Const 0)
       | _ -> Phi args)
    | rv -> rv
  in
  let blocks =
    Imap.map
      (fun b ->
        Cfg.normalize_phi_prefix
          {
            b with
            b_instrs =
              List.map
                (fun i -> match i with Def (v, rv) -> Def (v, simplify v rv) | _ -> i)
                b.b_instrs;
          })
      fn.fn_blocks
  in
  ({ fn with fn_blocks = blocks }, !changed)

(* merge B into A when A ends with Jmp B and B's only predecessor is A *)
let merge_chains fn =
  let preds = Cfg.predecessors fn in
  let changed = ref false in
  let blocks = ref fn.fn_blocks in
  let rename_pred_in_phis target ~old_pred ~new_pred =
    match Imap.find_opt target !blocks with
    | None -> ()
    | Some b ->
      let instrs =
        List.map
          (fun i ->
            match i with
            | Def (v, Phi args) ->
              Def (v, Phi (List.map (fun (p, a) -> ((if p = old_pred then new_pred else p), a)) args))
            | _ -> i)
          b.b_instrs
      in
      blocks := Imap.add target { b with b_instrs = instrs } !blocks
  in
  let merged_away = Hashtbl.create 8 in
  Imap.iter
    (fun a _ ->
      if not (Hashtbl.mem merged_away a) then begin
        (* follow the chain from a as far as it goes *)
        let continue_merging = ref true in
        while !continue_merging do
          continue_merging := false;
          match Imap.find_opt a !blocks with
          | Some ({ b_term = Jmp b; _ } as ablock) when b <> a && b <> fn.fn_entry -> (
            match Imap.find_opt b !blocks with
            | Some bblock when Imap.find_opt b preds = Some [ a ] && not (Hashtbl.mem merged_away b) ->
              (* resolve B's phis: single pred means they are copies *)
              let b_instrs =
                List.map
                  (fun i ->
                    match i with
                    | Def (v, Phi [ (_, arg) ]) -> Def (v, Op arg)
                    | Def (_, Phi _) -> i (* inconsistent phi; leave for validate *)
                    | _ -> i)
                  bblock.b_instrs
              in
              blocks :=
                Imap.add a
                  { b_instrs = ablock.b_instrs @ b_instrs; b_term = bblock.b_term }
                  !blocks;
              blocks := Imap.remove b !blocks;
              Hashtbl.replace merged_away b ();
              (* successors of B now have predecessor A instead of B *)
              List.iter
                (fun s -> rename_pred_in_phis s ~old_pred:b ~new_pred:a)
                (successors bblock.b_term);
              changed := true;
              continue_merging := true
            | _ -> ())
          | _ -> ()
        done
      end)
    fn.fn_blocks;
  ({ fn with fn_blocks = !blocks }, !changed)

(* retarget predecessors of empty forwarding blocks (just "Jmp C") *)
let skip_empty_blocks fn =
  let preds = Cfg.predecessors fn in
  let changed = ref false in
  let blocks = ref fn.fn_blocks in
  let has_phis l =
    match Imap.find_opt l !blocks with
    | Some b -> List.exists (function Def (_, Phi _) -> true | _ -> false) b.b_instrs
    | None -> false
  in
  Imap.iter
    (fun b_label block ->
      match block with
      | { b_instrs = []; b_term = Jmp c } when b_label <> fn.fn_entry && c <> b_label ->
        let ps = Option.value ~default:[] (Imap.find_opt b_label preds) in
        (* safe when the target has no phis (no per-edge values to maintain)
           and no predecessor already branches to C (no duplicate edges) *)
        let pred_has_edge_to_c p =
          match Imap.find_opt p !blocks with
          | Some pb -> List.mem c (successors pb.b_term)
          | None -> false
        in
        if (not (has_phis c)) && ps <> [] && not (List.exists pred_has_edge_to_c ps) then begin
          List.iter
            (fun p ->
              match Imap.find_opt p !blocks with
              | Some pb ->
                let term =
                  map_terminator_labels (fun l -> if l = b_label then c else l) pb.b_term
                in
                blocks := Imap.add p { pb with b_term = term } !blocks
              | None -> ())
            ps;
          changed := true
        end
      | _ -> ())
    fn.fn_blocks;
  ({ fn with fn_blocks = !blocks }, !changed)

let run fn =
  let rec fixpoint fn rounds =
    if rounds <= 0 then fn
    else begin
      let fn, c1 = fold_constant_terms fn in
      let fn' = Cfg.remove_unreachable_blocks fn in
      let c2 = not (fn' == fn) in
      let fn = fn' in
      let fn, c6 = prune_phi_args fn in
      let fn, c3 = simplify_phis fn in
      let fn, c4 = merge_chains fn in
      let fn, c5 = skip_empty_blocks fn in
      if c1 || c2 || c3 || c4 || c5 || c6 then fixpoint fn (rounds - 1) else fn
    end
  in
  fixpoint fn 64

let run_program prog = { prog with prog_funcs = List.map run prog.prog_funcs }

let info = Passinfo.v ~requires:[ Passinfo.Cfg ] "simplify-cfg"
