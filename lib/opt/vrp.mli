(** Value range propagation.

    Computes integer intervals per SSA register (RPO iteration with widening)
    and refines them with dominating branch conditions (a register's value
    never changes in SSA, so a condition tested on a dominating edge holds
    everywhere below it).  Comparisons whose operand ranges decide them fold
    to constants; branches whose condition range excludes (or is exactly) zero
    fold to jumps.

    Rule flags correspond to individually reported paper bugs:
    - [shift_rule] — refine through shifts: on an edge where [x << y != 0]
      holds, conclude [x != 0] (GCC bug 102546 / Listing 9a; fixed upstream by
      5f9ccf17de7, modeled here as a fix commit);
    - [mod_singleton] — ranges of the form [\[x,x\] % \[y,y\]] evaluate
      exactly (LLVM bug 49731 / Listing 8b; fixed by 611a02cce509). *)

type config = {
  shift_rule : bool;
  mod_singleton : bool;
  block_limit : int;
}

val default_config : config

val run :
  ?dom:(unit -> Dce_ir.Dom.t) ->
  ?preds:(unit -> Dce_ir.Ir.label list Dce_ir.Ir.Imap.t) ->
  config ->
  Dce_ir.Ir.func ->
  Dce_ir.Ir.func
(** [dom]/[preds], when provided, supply (possibly cached) CFG analyses for
    the input function instead of recomputing them. *)

val info : Passinfo.t
(** Pass-manager registration: consumes predecessors and dominators; folds branches, so no analysis survives a change. *)
