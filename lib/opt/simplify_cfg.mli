(** CFG cleanup: the pass that physically deletes dead blocks.

    Iterates to a fixpoint over:
    - folding branches whose condition is a constant (following only
      copy chains — this is the "front-end DCE" even [-O0] performs in the
      paper's Table 1; deeper folding needs {!Sccp});
    - deleting unreachable blocks (this is where markers disappear);
    - collapsing [Br c, L, L] into [Jmp L];
    - merging a block into its unique [Jmp] predecessor;
    - short-circuiting empty forwarding blocks;
    - replacing single-source phis with copies.

    Phi nodes are kept consistent throughout (arguments are dropped, renamed,
    or converted to copies as edges change). *)

val run : Dce_ir.Ir.func -> Dce_ir.Ir.func

val run_program : Dce_ir.Ir.program -> Dce_ir.Ir.program

val info : Passinfo.t
(** Pass-manager registration: deletes and merges blocks, so no analysis survives a change. *)
