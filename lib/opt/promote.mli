(** Loop memory-to-register promotion (LICM scalar promotion).

    Loop counters in C test programs are frequently globals
    ([for (b = 0; b < 2; b++)] in the paper's Listing 9e); without promotion
    the unroller cannot compute trip counts because the induction variable
    lives in memory.  This pass gives each promotable cell a register view:

    - a preheader load of the cell,
    - a header phi merging the preheader value with the value of the last
      store of the previous iteration,
    - every in-loop load of the cell replaced by the register value current
      at that point.

    Stores are {e kept} (memory stays exact; DSE may delete them later), so
    the transformation needs no sinking and is trivially sound.

    A cell [(sym, off)] is promotable in a loop when every in-loop access to
    [sym] resolves to a constant offset, every store to the cell sits in a
    block dominating the latch (executed exactly once per iteration), and no
    call/marker/unknown access in the loop may touch [sym]. *)

type config = { precision : Alias.precision }

val run : config -> Meminfo.t -> Dce_ir.Ir.func -> Dce_ir.Ir.func

val info : Passinfo.t
(** Pass-manager registration: consumes {!Meminfo}, predecessors and dominators. *)
