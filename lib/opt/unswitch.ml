open Dce_ir
open Ir

type config = {
  max_body : int;
  max_clones : int;
  licm_loads : bool;
  precision : Alias.precision;
}

let default_config =
  { max_body = 80; max_clones = 4; licm_loads = true; precision = Alias.Full }

(* ---------- LICM-lite ---------- *)

let defined_in fn region =
  let s = ref Iset.empty in
  Iset.iter
    (fun l ->
      List.iter
        (fun i -> match def_of_instr i with Some v -> s := Iset.add v !s | None -> ())
        (block fn l).b_instrs)
    region;
  !s

let licm config info fn (loop : Loops.loop) preheader =
  let dt = Meminfo.deftab fn in
  let body_defs = defined_in fn loop.Loops.body in
  let hoisted = ref Iset.empty in
  let invariant_op = function
    | Const _ -> true
    | Reg v -> (not (Iset.mem v body_defs)) || Iset.mem v !hoisted
  in
  (* may any store or call inside the loop clobber this resolved address? *)
  let load_safe_and_invariant p =
    config.licm_loads
    &&
    match Meminfo.resolve_addr dt p with
    | Meminfo.Aunknown | Meminfo.Asym (_, None) -> false
    | Meminfo.Asym (s, Some k) -> (
      match Meminfo.symbol info s with
      | Some sym when k >= 0 && k < sym.sym_size ->
        let clobbered = ref false in
        Iset.iter
          (fun l ->
            List.iter
              (fun i ->
                match i with
                | Store (q, _) -> (
                  match Meminfo.resolve_addr dt q with
                  | Meminfo.Asym (s', off') ->
                    if s' = s && (off' = None || off' = Some k) then clobbered := true
                  | Meminfo.Aunknown ->
                    if config.precision <> Alias.Full || Meminfo.unknown_may_touch info s then
                      clobbered := true)
                | Call (_, name, _) ->
                  if Meminfo.Sset.mem s (Meminfo.mod_set info name) then clobbered := true
                | Marker _ ->
                  if Meminfo.Sset.mem s (Meminfo.extern_mod_set info) then clobbered := true
                | Def _ -> ())
              (block fn l).b_instrs)
          loop.Loops.body;
        not !clobbered
      | _ -> false)
  in
  let to_hoist = ref [] in
  let changed = ref true in
  while !changed do
    changed := false;
    Iset.iter
      (fun l ->
        List.iter
          (fun i ->
            match i with
            | Def (v, rv) when not (Iset.mem v !hoisted) -> (
              let ok =
                match rv with
                | Op a | Unary (_, a) | Addr (_, a) -> invariant_op a
                | Binary (_, a, b) | Ptradd (a, b) -> invariant_op a && invariant_op b
                | Load p -> invariant_op p && load_safe_and_invariant p
                | Phi _ -> false
              in
              if ok then begin
                hoisted := Iset.add v !hoisted;
                to_hoist := (v, i) :: !to_hoist;
                changed := true
              end)
            | _ -> ())
          (block fn l).b_instrs)
      loop.Loops.body
  done;
  if !to_hoist = [] then (fn, Iset.empty)
  else begin
    let hoist_set = !hoisted in
    let hoist_instrs = List.rev_map snd !to_hoist in
    (* remove from body blocks, append to preheader (before its terminator) *)
    let blocks =
      Imap.mapi
        (fun l b ->
          if Iset.mem l loop.Loops.body then
            {
              b with
              b_instrs =
                List.filter
                  (fun i ->
                    match def_of_instr i with
                    | Some v -> not (Iset.mem v hoist_set)
                    | None -> true)
                  b.b_instrs;
            }
          else b)
        fn.fn_blocks
    in
    let pre = Imap.find preheader blocks in
    let blocks = Imap.add preheader { pre with b_instrs = pre.b_instrs @ hoist_instrs } blocks in
    ({ fn with fn_blocks = blocks }, hoist_set)
  end

(* ---------- the unswitch transform ---------- *)

let find_preheader fn (loop : Loops.loop) =
  let preds = Cfg.predecessors fn in
  let header_preds = Option.value ~default:[] (Imap.find_opt loop.Loops.header preds) in
  match List.filter (fun p -> not (Iset.mem p loop.Loops.body)) header_preds with
  | [ p ] -> Some p
  | _ -> None

let find_invariant_branch fn (loop : Loops.loop) body_defs =
  let found = ref None in
  Iset.iter
    (fun l ->
      if !found = None then
        match (block fn l).b_term with
        | Br (Reg c, lt, lf) when lt <> lf && not (Iset.mem c body_defs) ->
          found := Some (l, c, lt, lf)
        | _ -> ())
    loop.Loops.body;
  !found

let unswitch_loop fn (loop : Loops.loop) preheader (br_block, cond, lt, lf) =
  let fn, m_true = Clone.clone_region fn loop.Loops.body in
  let fn, m_false = Clone.clone_region fn loop.Loops.body in
  let blocks = ref fn.fn_blocks in
  let update l f =
    match Imap.find_opt l !blocks with
    | Some b -> blocks := Imap.add l (f b) !blocks
    | None -> ()
  in
  (* pin the invariant branch in each copy *)
  update (Clone.map_label m_true br_block) (fun b ->
      { b with b_term = Jmp (Clone.map_label m_true lt) });
  update (Clone.map_label m_false br_block) (fun b ->
      { b with b_term = Jmp (Clone.map_label m_false lf) });
  (* dispatch block *)
  let dispatch = fn.fn_next_label in
  let fn = { fn with fn_next_label = dispatch + 1 } in
  let header_t = Clone.map_label m_true loop.Loops.header in
  let header_f = Clone.map_label m_false loop.Loops.header in
  blocks := Imap.add dispatch { b_instrs = []; b_term = Br (Reg cond, header_t, header_f) } !blocks;
  (* preheader enters the dispatch *)
  update preheader (fun b ->
      { b with b_term = map_terminator_labels (fun t -> if t = loop.Loops.header then dispatch else t) b.b_term });
  (* cloned headers: their outside phi pred is now the dispatch block *)
  let retarget_outside_phi_preds header_clone =
    update header_clone (fun b ->
        let instrs =
          List.map
            (fun i ->
              match i with
              | Def (v, Phi args) ->
                Def (v, Phi (List.map (fun (p, a) -> ((if p = preheader then dispatch else p), a)) args))
              | _ -> i)
            b.b_instrs
        in
        { b with b_instrs = instrs })
  in
  retarget_outside_phi_preds header_t;
  retarget_outside_phi_preds header_f;
  (* exit blocks: duplicate phi entries for both copies *)
  let exit_targets = Dce_support.Listx.uniq (List.map snd loop.Loops.exits) in
  List.iter
    (fun s ->
      update s (fun b ->
          let instrs =
            List.map
              (fun i ->
                match i with
                | Def (v, Phi args) ->
                  let expanded =
                    List.concat_map
                      (fun (p, a) ->
                        if Iset.mem p loop.Loops.body then
                          [
                            (Clone.map_label m_true p, Clone.map_operand m_true a);
                            (Clone.map_label m_false p, Clone.map_operand m_false a);
                          ]
                        else [ (p, a) ])
                      args
                  in
                  Def (v, Phi expanded)
                | _ -> i)
              b.b_instrs
          in
          { b with b_instrs = instrs }))
    exit_targets;
  Cfg.remove_unreachable_blocks { fn with fn_blocks = !blocks }

let body_size fn (loop : Loops.loop) =
  Iset.fold (fun l acc -> acc + List.length (block fn l).b_instrs + 1) loop.Loops.body 0

let run config info fn =
  let clones = ref 0 in
  let rec attempt fn rounds =
    if rounds <= 0 || !clones >= config.max_clones then fn
    else begin
      let loops = Loops.natural_loops fn in
      let result = ref None in
      List.iter
        (fun loop ->
          if !result = None && body_size fn loop <= config.max_body then
            match find_preheader fn loop with
            | None -> ()
            | Some preheader ->
              let fn', _hoisted = licm config info fn loop preheader in
              let body_defs = defined_in fn' loop.Loops.body in
              (match find_invariant_branch fn' loop body_defs with
               | Some site -> (
                 match Lcssa.close_loop fn' loop with
                 | Some fn'' ->
                   incr clones;
                   result := Some (unswitch_loop fn'' loop preheader site)
                 | None -> if not (fn' == fn) then result := Some fn')
               | None -> if not (fn' == fn) then result := Some fn'))
        loops;
      match !result with
      | Some fn' -> attempt fn' (rounds - 1)
      | None -> fn
    end
  in
  attempt fn 6

let info = Passinfo.v ~requires:[ Passinfo.Meminfo; Passinfo.Cfg ] "unswitch"
