open Dce_ir
open Ir

type config = { strength : int; precision : Alias.precision; use_call_summaries : bool }

let default_config = { strength = 2; precision = Alias.Full; use_call_summaries = true }

(* the backward "dead cells" state: cells guaranteed to be overwritten (or
   past their lifetime) before any possible read *)
type dead_set = {
  cells : (string * int, unit) Hashtbl.t;
  whole : (string, unit) Hashtbl.t; (* whole symbol dead *)
}

let make_set () = { cells = Hashtbl.create 16; whole = Hashtbl.create 8 }

let cell_dead ds s k = Hashtbl.mem ds.whole s || Hashtbl.mem ds.cells (s, k)

let add_cell ds s k = Hashtbl.replace ds.cells (s, k) ()

let alive_sym ds s =
  Hashtbl.remove ds.whole s;
  let keys = Hashtbl.fold (fun key _ acc -> key :: acc) ds.cells [] in
  List.iter (fun (s', k) -> if s' = s then Hashtbl.remove ds.cells (s', k)) keys

let alive_cell ds s k =
  (* a read of one cell revives the whole-symbol marker conservatively *)
  if Hashtbl.mem ds.whole s then begin
    Hashtbl.remove ds.whole s;
    ()
  end;
  Hashtbl.remove ds.cells (s, k)

let alive_all ds =
  Hashtbl.reset ds.cells;
  Hashtbl.reset ds.whole

let alive_unknown_reachable info ds =
  (* keep only facts about symbols unknown pointers cannot address *)
  let keys = Hashtbl.fold (fun key _ acc -> key :: acc) ds.cells [] in
  List.iter
    (fun (s, k) -> if Meminfo.unknown_may_touch info s then Hashtbl.remove ds.cells (s, k))
    keys;
  let wholes = Hashtbl.fold (fun s _ acc -> s :: acc) ds.whole [] in
  List.iter (fun s -> if Meminfo.unknown_may_touch info s then Hashtbl.remove ds.whole s) wholes

let run config info ~is_main fn =
  if config.strength <= 0 then fn
  else begin
    let dt = Meminfo.deftab fn in
    let extern_refs = Meminfo.extern_mod_set info in
    let process_block _l b =
      let ds = make_set () in
      (* seed from the terminator when post-lifetime analysis is enabled *)
      (if config.strength >= 2 then
         match b.b_term with
         | Ret _ ->
           (* this function's frame slots die here *)
           List.iter
             (fun sym ->
               match sym.sym_kind with
               | `Frame owner when owner = fn.fn_name -> Hashtbl.replace ds.whole sym.sym_name ()
               | `Frame _ | `Global -> ())
             (Meminfo.tracked_symbols info);
           if is_main then
             (* after main returns nothing can read non-escaped statics *)
             List.iter
               (fun sym -> Hashtbl.replace ds.whole sym.sym_name ())
               (Meminfo.tracked_symbols info)
         | Jmp _ | Br _ | Switch _ -> ());
      (* terminator operand reads are register reads; memory unaffected *)
      let kept = ref [] in
      List.iter
        (fun i ->
          match i with
          | Store (p, _) -> (
            match Meminfo.resolve_addr dt p with
            | Meminfo.Asym (s, Some k) ->
              if cell_dead ds s k then () (* dead store: drop *)
              else begin
                add_cell ds s k;
                kept := i :: !kept
              end
            | Meminfo.Asym (s, None) ->
              alive_sym ds s;
              kept := i :: !kept
            | Meminfo.Aunknown ->
              (* may write anything escaped; facts about escaped syms are gone,
                 and under weaker precision all facts are gone *)
              if config.precision = Alias.Full then alive_unknown_reachable info ds
              else alive_all ds;
              kept := i :: !kept)
          | Def (_, Load p) ->
            (match Meminfo.resolve_addr dt p with
             | Meminfo.Asym (s, Some k) -> alive_cell ds s k
             | Meminfo.Asym (s, None) -> alive_sym ds s
             | Meminfo.Aunknown ->
               if config.precision = Alias.Full then alive_unknown_reachable info ds
               else alive_all ds);
            kept := i :: !kept
          | Def _ -> kept := i :: !kept
          | Call (_, name, _) ->
            (if Meminfo.is_defined_function info name then
               if config.use_call_summaries then begin
                 (* the callee may read its ref set and write its mod set;
                    both make our "dead" facts unsafe for those symbols *)
                 Meminfo.Sset.iter (fun s -> alive_sym ds s) (Meminfo.ref_set info name);
                 Meminfo.Sset.iter (fun s -> alive_sym ds s) (Meminfo.mod_set info name)
               end
               else alive_all ds
             else Meminfo.Sset.iter (fun s -> alive_sym ds s) extern_refs);
            kept := i :: !kept
          | Marker _ ->
            Meminfo.Sset.iter (fun s -> alive_sym ds s) extern_refs;
            kept := i :: !kept)
        (List.rev b.b_instrs);
      { b with b_instrs = !kept }
    in
    let blocks = Imap.mapi process_block fn.fn_blocks in
    { fn with fn_blocks = blocks }
  end

let info = Passinfo.v ~requires:[ Passinfo.Meminfo ] ~preserves:[ Passinfo.Cfg; Passinfo.Dominators ] "dse"
