(** Value numbering: copy propagation, dominator-scoped CSE of pure
    expressions, and block-local store-to-load forwarding.

    Forwarding is deliberately block-local (real compilers use MemorySSA;
    here, {!Simplify_cfg}'s block merging plus {!Memcp}'s global constant
    dataflow recover most of the cross-block cases).  This is one of the
    places where pipelines differ: a compiler that unrolls and merges blocks
    before running this pass folds array initialization loops (paper Listing
    9e); one that runs a vectorizer first does not. *)

type config = {
  cse : bool;                  (** dominator-scoped common subexpressions *)
  load_forward : bool;         (** store-to-load and load-to-load forwarding *)
  precision : Alias.precision;
  use_call_summaries : bool;   (** only clobber a callee's mod/ref sets *)
}

val default_config : config

val run :
  ?dom:(unit -> Dce_ir.Dom.t) -> config -> Meminfo.t -> Dce_ir.Ir.func -> Dce_ir.Ir.func
(** [dom], when provided, supplies a (possibly cached) dominator tree for the
    input function instead of recomputing one for the CSE walk. *)

val info : Passinfo.t
(** Pass-manager registration: consumes {!Meminfo} and dominators; rewrites defs and terminator operands only (never labels). *)
