open Dce_ir
open Ir

type config = {
  cse : bool;
  load_forward : bool;
  precision : Alias.precision;
  use_call_summaries : bool;
}

let default_config =
  { cse = true; load_forward = true; precision = Alias.Full; use_call_summaries = true }

(* resolve copy chains so CSE keys and all operands are canonical *)
let copy_prop fn =
  let dt = Meminfo.deftab fn in
  let rec resolve fuel op =
    if fuel <= 0 then op
    else
      match op with
      | Const _ -> op
      | Reg v -> (
        match Meminfo.def_rvalue dt v with
        | Some (Op a) -> resolve (fuel - 1) a
        | _ -> op)
  in
  let resolve = resolve 8 in
  let blocks =
    Imap.map
      (fun b ->
        {
          b_instrs = List.map (map_instr_operands resolve) b.b_instrs;
          b_term = map_terminator_operands resolve b.b_term;
        })
      fn.fn_blocks
  in
  { fn with fn_blocks = blocks }

let canonical_rvalue rv =
  match rv with
  | Binary (op, a, b) when Dce_minic.Ops.is_commutative op ->
    if compare a b > 0 then Binary (op, b, a) else rv
  | _ -> rv

let pure_key rv =
  match rv with
  | Unary _ | Binary _ | Addr _ | Ptradd _ -> Some (canonical_rvalue rv)
  | Op _ | Load _ | Phi _ -> None

(* dominator-scoped CSE *)
let cse ?dom fn =
  (* copy_prop/forwarding never touch successor labels, so a dominator tree
     computed on the pass's input function is still exact here *)
  let dom = match dom with Some f -> f () | None -> Dom.compute fn in
  let table : (rvalue, var) Hashtbl.t = Hashtbl.create 64 in
  let blocks = ref fn.fn_blocks in
  let rec walk l =
    let added = ref [] in
    let b = Imap.find l !blocks in
    let instrs =
      List.map
        (fun i ->
          match i with
          | Def (v, rv) -> (
            match pure_key rv with
            | Some key -> (
              match Hashtbl.find_opt table key with
              | Some w -> Def (v, Op (Reg w))
              | None ->
                Hashtbl.add table key v;
                added := key :: !added;
                i)
            | None -> i)
          | _ -> i)
        b.b_instrs
    in
    blocks := Imap.add l { b with b_instrs = instrs } !blocks;
    List.iter walk (Dom.children dom l);
    List.iter (Hashtbl.remove table) !added
  in
  walk fn.fn_entry;
  { fn with fn_blocks = !blocks }

(* block-local store-to-load and load-to-load forwarding *)
let forward config info fn =
  let dt = Meminfo.deftab fn in
  let extern_mods = Meminfo.extern_mod_set info in
  let blocks =
    Imap.map
      (fun b ->
        let avail : (string * int, operand) Hashtbl.t = Hashtbl.create 16 in
        let clobber_sym s =
          let keys = Hashtbl.fold (fun k _ acc -> k :: acc) avail [] in
          List.iter (fun (s', k) -> if s' = s then Hashtbl.remove avail (s', k)) keys
        in
        let clobber_unknown () =
          let keys = Hashtbl.fold (fun k _ acc -> k :: acc) avail [] in
          List.iter
            (fun (s, k) ->
              if config.precision <> Alias.Full || Meminfo.unknown_may_touch info s then
                Hashtbl.remove avail (s, k))
            keys
        in
        let clobber_set syms =
          Meminfo.Sset.iter clobber_sym syms;
          ()
        in
        let instrs =
          List.map
            (fun i ->
              match i with
              | Def (v, Load p) -> (
                match Meminfo.resolve_addr dt p with
                | Meminfo.Asym (s, Some k) -> (
                  match Hashtbl.find_opt avail (s, k) with
                  | Some op -> Def (v, Op op)
                  | None ->
                    Hashtbl.replace avail (s, k) (Reg v);
                    i)
                | Meminfo.Asym (_, None) | Meminfo.Aunknown -> i)
              | Def _ -> i
              | Store (p, value) ->
                (match Meminfo.resolve_addr dt p with
                 | Meminfo.Asym (s, Some k) -> Hashtbl.replace avail (s, k) value
                 | Meminfo.Asym (s, None) -> clobber_sym s
                 | Meminfo.Aunknown ->
                   if config.precision = Alias.Full then clobber_unknown ()
                   else Hashtbl.reset avail);
                i
              | Call (_, name, _) ->
                (if Meminfo.is_defined_function info name then
                   if config.use_call_summaries then clobber_set (Meminfo.mod_set info name)
                   else Hashtbl.reset avail
                 else clobber_set extern_mods);
                i
              | Marker _ ->
                clobber_set extern_mods;
                i)
            b.b_instrs
        in
        { b with b_instrs = instrs })
      fn.fn_blocks
  in
  { fn with fn_blocks = blocks }

let run ?dom config info fn =
  let fn = copy_prop fn in
  let fn = if config.load_forward then forward config info fn else fn in
  (* forwarding introduces fresh copies; canonicalize again before CSE *)
  let fn = if config.load_forward then copy_prop fn else fn in
  let fn = if config.cse then cse ?dom fn else fn in
  fn

let info = Passinfo.v ~requires:[ Passinfo.Meminfo; Passinfo.Dominators ] ~preserves:[ Passinfo.Cfg; Passinfo.Dominators ] "gvn"
