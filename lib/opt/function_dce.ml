open Dce_ir
open Ir

let run prog =
  let keep_roots =
    List.filter_map
      (fun fn -> if (not fn.fn_static) || fn.fn_name = "main" then Some fn.fn_name else None)
      prog.prog_funcs
  in
  let reachable = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.replace reachable name ();
      match find_func prog name with
      | Some fn -> List.iter visit (called_names fn)
      | None -> ()
    end
  in
  List.iter visit keep_roots;
  let funcs = List.filter (fun fn -> Hashtbl.mem reachable fn.fn_name) prog.prog_funcs in
  let syms =
    List.filter
      (fun sym ->
        match sym.sym_kind with
        | `Global -> true
        | `Frame owner -> Hashtbl.mem reachable owner)
      prog.prog_syms
  in
  { prog with prog_funcs = funcs; prog_syms = syms }

let info = Passinfo.v "function-dce"
