type analysis = Meminfo | Cfg | Dominators

type t = {
  pass_name : string;
  requires : analysis list;
  preserves : analysis list;
}

let v ?(requires = []) ?(preserves = []) pass_name = { pass_name; requires; preserves }

let preserves t a = List.mem a t.preserves
let requires t a = List.mem a t.requires

let analysis_name = function
  | Meminfo -> "meminfo"
  | Cfg -> "cfg"
  | Dominators -> "dom"
