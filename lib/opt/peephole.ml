open Dce_ir
open Ir
module Ops = Dce_minic.Ops

type config = { level : int }

let default_config = { level = 3 }

(* Note on pointers: MiniC's total semantics make every rule below valid for
   pointer values too — pointer/int comparisons are always false, pointer
   addition is offset arithmetic, the pointer order is total and reflexive,
   and rewrites never delete the (possibly trapping) defining instruction of
   an operand, only re-express a later use. *)

let rule_level1 dt v rv =
  ignore v;
  match rv with
  | Binary (Ops.Add, x, Const 0) | Binary (Ops.Add, Const 0, x) -> Some (Op x)
  | Binary (Ops.Sub, x, Const 0) -> Some (Op x)
  | Binary (Ops.Mul, x, Const 1) | Binary (Ops.Mul, Const 1, x) -> Some (Op x)
  | Binary (Ops.Mul, _, Const 0) | Binary (Ops.Mul, Const 0, _) -> Some (Op (Const 0))
  | Binary (Ops.Div, x, Const 1) -> Some (Op x)
  | Binary (Ops.Mod, _, Const 1) -> Some (Op (Const 0))
  | Binary (Ops.Band, _, Const 0) | Binary (Ops.Band, Const 0, _) -> Some (Op (Const 0))
  | Binary (Ops.Bor, x, Const 0) | Binary (Ops.Bor, Const 0, x) -> Some (Op x)
  | Binary (Ops.Bxor, x, Const 0) | Binary (Ops.Bxor, Const 0, x) -> Some (Op x)
  | Binary ((Ops.Shl | Ops.Shr), x, Const 0) -> Some (Op x)
  | Binary (Ops.Sub, Reg a, Reg b) when a = b -> Some (Op (Const 0))
  | Binary (Ops.Bxor, Reg a, Reg b) when a = b -> Some (Op (Const 0))
  | Binary ((Ops.Band | Ops.Bor), Reg a, Reg b) when a = b -> Some (Op (Reg a))
  | Binary (Ops.Eq, Reg a, Reg b) when a = b -> Some (Op (Const 1))
  | Binary (Ops.Ne, Reg a, Reg b) when a = b -> Some (Op (Const 0))
  | Binary (Ops.Lt, Reg a, Reg b) when a = b -> Some (Op (Const 0))
  | Binary (Ops.Gt, Reg a, Reg b) when a = b -> Some (Op (Const 0))
  | Binary (Ops.Le, Reg a, Reg b) when a = b -> Some (Op (Const 1))
  | Binary (Ops.Ge, Reg a, Reg b) when a = b -> Some (Op (Const 1))
  | Unary (Ops.Neg, Reg a) -> (
    match Meminfo.def_rvalue_resolved dt a with
    | Some (Unary (Ops.Neg, inner)) -> Some (Op inner)
    | _ -> None)
  | Unary (Ops.Bnot, Reg a) -> (
    match Meminfo.def_rvalue_resolved dt a with
    | Some (Unary (Ops.Bnot, inner)) -> Some (Op inner)
    | _ -> None)
  | Ptradd (p, Const 0) -> Some (Op p)
  | _ -> None

let is_boolean dt op =
  match op with
  | Const (0 | 1) -> true
  | Const _ -> false
  | Reg v -> (
    match Meminfo.def_rvalue_resolved dt v with
    | Some (Binary (op', _, _)) -> Ops.is_comparison op' || Ops.is_logical op'
    | Some (Unary (Ops.Lnot, _)) -> true
    | _ -> false)

let rule_level2 dt v rv =
  ignore v;
  match rv with
  (* (x op c1) op c2 → x op (c1 op c2) for associative-commutative chains *)
  | Binary ((Ops.Add | Ops.Mul | Ops.Band | Ops.Bor | Ops.Bxor) as op, Reg a, Const c2) -> (
    match Meminfo.def_rvalue_resolved dt a with
    | Some (Binary (op', x, Const c1)) when op' = op ->
      Some (Binary (op, x, Const (Ops.eval_binop op c1 c2)))
    | _ -> None)
  (* cmp != 0 → cmp;  cmp == 0 → !cmp as negated comparison *)
  | Binary (Ops.Ne, Reg a, Const 0) when is_boolean dt (Reg a) -> Some (Op (Reg a))
  | Binary (Ops.Eq, Reg a, Const 0) -> (
    match Meminfo.def_rvalue_resolved dt a with
    | Some (Binary (cmp, x, y)) when Ops.is_comparison cmp -> (
      match Ops.negate_comparison cmp with
      | Some neg -> Some (Binary (neg, x, y))
      | None -> None)
    | _ -> None)
  (* !cmp → negated comparison; !!x → x != 0 *)
  | Unary (Ops.Lnot, Reg a) -> (
    match Meminfo.def_rvalue_resolved dt a with
    | Some (Binary (cmp, x, y)) when Ops.is_comparison cmp -> (
      match Ops.negate_comparison cmp with
      | Some neg -> Some (Binary (neg, x, y))
      | None -> None)
    | Some (Unary (Ops.Lnot, inner)) when is_boolean dt inner -> Some (Op inner)
    | _ -> None)
  | _ -> None

let rule_level3 dt v rv =
  ignore v;
  match rv with
  (* (x + c1) cmp (x + c2): both sides offset the same value, so the
     comparison is decided by the constants (wrap-around safe for Eq/Ne) *)
  | Binary ((Ops.Eq | Ops.Ne) as cmp, Reg a, Reg b) -> (
    match (Meminfo.def_rvalue_resolved dt a, Meminfo.def_rvalue_resolved dt b) with
    | Some (Binary (Ops.Add, x1, Const c1)), Some (Binary (Ops.Add, x2, Const c2)) when x1 = x2
      -> Some (Op (Const (Ops.eval_binop cmp c1 c2)))
    | Some (Binary (Ops.Bxor, x1, Const c1)), Some (Binary (Ops.Bxor, x2, Const c2))
      when x1 = x2 ->
      Some (Op (Const (Ops.eval_binop cmp c1 c2)))
    | _ -> None)
  (* x + c1 cmp c2 → x cmp c2 - c1 (wrap-around safe for Eq/Ne only) *)
  | Binary ((Ops.Eq | Ops.Ne) as cmp, Reg a, Const c2) -> (
    match Meminfo.def_rvalue_resolved dt a with
    | Some (Binary (Ops.Add, x, Const c1)) -> Some (Binary (cmp, x, Const (c2 - c1)))
    | Some (Binary (Ops.Sub, x, Const c1)) -> Some (Binary (cmp, x, Const (c2 + c1)))
    | Some (Binary (Ops.Bxor, x, Const c1)) when c1 >= 0 ->
      (* xor on a pointer traps before the compare either way *)
      Some (Binary (cmp, x, Const (c2 lxor c1)))
    | _ -> None)
  (* x * 2^k == 0 → x == 0 is unsound on wrap-around; but x << c != 0 is not
     a peephole rule here (it is Vrp's shift rule) *)
  | _ -> None

let run config fn =
  let changed = ref true in
  let rounds = ref 0 in
  let fn = ref fn in
  while !changed && !rounds < 8 do
    changed := false;
    incr rounds;
    let dt = Meminfo.deftab !fn in
    let rewrite rv v =
      let try_rules () =
        let r1 = if config.level >= 1 then rule_level1 dt v rv else None in
        match r1 with
        | Some _ -> r1
        | None -> (
          let r2 = if config.level >= 2 then rule_level2 dt v rv else None in
          match r2 with
          | Some _ -> r2
          | None -> if config.level >= 3 then rule_level3 dt v rv else None)
      in
      match try_rules () with
      | Some rv' when rv' <> rv ->
        changed := true;
        rv'
      | _ -> rv
    in
    let blocks =
      Imap.map
        (fun b ->
          {
            b with
            b_instrs =
              List.map
                (fun i -> match i with Def (v, rv) -> Def (v, rewrite rv v) | _ -> i)
                b.b_instrs;
          })
        !fn.fn_blocks
    in
    fn := { !fn with fn_blocks = blocks }
  done;
  !fn

let info = Passinfo.v ~preserves:[ Passinfo.Cfg; Passinfo.Dominators ] "peephole"
