open Dce_ir
open Ir
module Ops = Dce_minic.Ops

type addr_cmp = Cmp_none | Cmp_zero_only | Cmp_full

type config = { addr_cmp : addr_cmp; gva_mode : Gva.mode; block_limit : int }

let default_config = { addr_cmp = Cmp_full; gva_mode = Gva.Flow_insensitive; block_limit = 512 }

(* lattice: Top (optimistically undefined) > constants > Bot *)
type lat = Top | Cint of int | Cptr of string * int | Bot

let join a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Bot, _ | _, Bot -> Bot
  | Cint x, Cint y -> if x = y then a else Bot
  | Cptr (s1, o1), Cptr (s2, o2) -> if s1 = s2 && o1 = o2 then a else Bot
  | Cint _, Cptr _ | Cptr _, Cint _ -> Bot

let truthy_lat = function
  | Cint n -> Some (n <> 0)
  | Cptr _ -> Some true
  | Top | Bot -> None

let run config info fn =
  if Imap.cardinal fn.fn_blocks > config.block_limit then fn
  else begin
    let nvars = fn.fn_next_var in
    let lat = Array.make (max 1 nvars) Top in
    List.iter (fun p -> lat.(p) <- Bot) fn.fn_params;
    let edge_exec : (label * label, unit) Hashtbl.t = Hashtbl.create 64 in
    let block_exec : (label, unit) Hashtbl.t = Hashtbl.create 64 in
    let operand_lat = function
      | Const n -> Cint n
      | Reg v -> lat.(v)
    in
    let eval_binary op a b =
      match (op, a, b) with
      | _, Top, _ | _, _, Top -> Top
      | _, Cint x, Cint y -> Cint (Ops.eval_binop op x y)
      | (Ops.Eq | Ops.Ne), Cptr (s1, o1), Cptr (s2, o2) -> (
        let fold_ok =
          match config.addr_cmp with
          | Cmp_none -> false
          | Cmp_zero_only -> o1 = 0 && o2 = 0
          | Cmp_full -> true
        in
        if not fold_ok then Bot
        else
          let eq = s1 = s2 && o1 = o2 in
          match op with
          | Ops.Eq -> Cint (if eq then 1 else 0)
          | _ -> Cint (if eq then 0 else 1))
      | (Ops.Eq | Ops.Ne), Cptr _, Cint _ | (Ops.Eq | Ops.Ne), Cint _, Cptr _ ->
        (* symbol addresses are never null / never equal an integer *)
        if config.addr_cmp = Cmp_none then Bot
        else Cint (match op with Ops.Eq -> 0 | _ -> 1)
      | (Ops.Lt | Ops.Le | Ops.Gt | Ops.Ge), Cptr (s1, o1), Cptr (s2, o2) when s1 = s2 ->
        if config.addr_cmp = Cmp_none then Bot
        else Cint (Ops.eval_binop op o1 o2)
      | Ops.Add, Cptr (s, o), Cint k | Ops.Add, Cint k, Cptr (s, o) -> Cptr (s, o + k)
      | Ops.Sub, Cptr (s, o), Cint k -> Cptr (s, o - k)
      | Ops.Sub, Cptr (s1, o1), Cptr (s2, o2) when s1 = s2 -> Cint (o1 - o2)
      | (Ops.Land | Ops.Lor), x, y -> (
        match (truthy_lat x, truthy_lat y) with
        | Some bx, Some by ->
          Cint (Ops.eval_binop op (if bx then 1 else 0) (if by then 1 else 0))
        | Some true, None when op = Ops.Lor -> Cint 1
        | None, Some true when op = Ops.Lor -> Cint 1
        | Some false, None when op = Ops.Land -> Cint 0
        | None, Some false when op = Ops.Land -> Cint 0
        | _ -> Bot)
      | _ -> Bot
    in
    let eval_rvalue l rv =
      match rv with
      | Op a -> operand_lat a
      | Unary (op, a) -> (
        match operand_lat a with
        | Top -> Top
        | Cint x -> Cint (Ops.eval_unop op x)
        | Cptr _ -> (
          match op with
          | Ops.Lnot -> Cint 0 (* addresses are truthy *)
          | Ops.Neg | Ops.Bnot -> Bot)
        | Bot -> Bot)
      | Binary (op, a, b) -> eval_binary op (operand_lat a) (operand_lat b)
      | Addr (s, off) -> (
        match operand_lat off with
        | Top -> Top
        | Cint k -> Cptr (s, k)
        | Cptr _ | Bot -> Bot)
      | Ptradd (p, off) -> (
        match (operand_lat p, operand_lat off) with
        | Top, _ | _, Top -> Top
        | Cptr (s, o), Cint k -> Cptr (s, o + k)
        | _ -> Bot)
      | Load p -> (
        match operand_lat p with
        | Top -> Top
        | Cptr (s, k) -> (
          match Gva.foldable_cell config.gva_mode info s k with
          | Some (Ir.Cint n) -> Cint n
          | Some (Ir.Caddr (s', o')) -> Cptr (s', o')
          | None -> Bot)
        | Cint _ | Bot -> Bot)
      | Phi args ->
        List.fold_left
          (fun acc (pred, a) ->
            if Hashtbl.mem edge_exec (pred, l) then join acc (operand_lat a) else acc)
          Top args
    in
    let feasible_succs term =
      match term with
      | Jmp l -> [ l ]
      | Br (c, lt, lf) -> (
        match truthy_lat (operand_lat c) with
        | Some true -> [ lt ]
        | Some false -> [ lf ]
        | None -> if operand_lat c = Top then [] else [ lt; lf ])
      | Switch (c, cases, dflt) -> (
        match operand_lat c with
        | Cint k -> [ Option.value ~default:dflt (List.assoc_opt k cases) ]
        | Top -> []
        | Cptr _ | Bot -> List.map snd cases @ [ dflt ])
      | Ret _ -> []
    in
    (* chaotic iteration over executable blocks until stable *)
    Hashtbl.replace block_exec fn.fn_entry ();
    let changed = ref true in
    while !changed do
      changed := false;
      Imap.iter
        (fun l b ->
          if Hashtbl.mem block_exec l then begin
            List.iter
              (fun i ->
                match i with
                | Def (v, rv) ->
                  let nv = join lat.(v) (eval_rvalue l rv) in
                  if nv <> lat.(v) then begin
                    lat.(v) <- nv;
                    changed := true
                  end
                | Call (Some v, _, _) ->
                  if lat.(v) <> Bot then begin
                    lat.(v) <- Bot;
                    changed := true
                  end
                | Call (None, _, _) | Store _ | Marker _ -> ())
              b.b_instrs;
            List.iter
              (fun s ->
                if not (Hashtbl.mem edge_exec (l, s)) then begin
                  Hashtbl.replace edge_exec (l, s) ();
                  changed := true
                end;
                if not (Hashtbl.mem block_exec s) then begin
                  Hashtbl.replace block_exec s ();
                  changed := true
                end)
              (feasible_succs b.b_term)
          end)
        fn.fn_blocks
    done;
    (* rewrite: fold constant defs and constant branches *)
    let rewrite_instr i =
      match i with
      | Def (v, rv) -> (
        match lat.(v) with
        | Cint k -> Def (v, Op (Const k))
        | Cptr (s, o) -> (
          match rv with
          | Addr (_, Const _) -> i (* already an address constant *)
          | _ -> Def (v, Addr (s, Const o)))
        | Top | Bot -> i)
      | Store _ | Call _ | Marker _ -> i
    in
    let rewrite_term term =
      match term with
      | Br (c, lt, lf) -> (
        match truthy_lat (operand_lat c) with
        | Some true -> Jmp lt
        | Some false -> Jmp lf
        | None -> term)
      | Switch (c, cases, dflt) -> (
        match operand_lat c with
        | Cint k -> Jmp (Option.value ~default:dflt (List.assoc_opt k cases))
        | _ -> term)
      | Jmp _ | Ret _ -> term
    in
    let blocks =
      Imap.map
        (fun b -> { b_instrs = List.map rewrite_instr b.b_instrs; b_term = rewrite_term b.b_term })
        fn.fn_blocks
    in
    (* folded branches removed edges: restore the phi/CFG invariant *)
    Cfg.prune_phi_args { fn with fn_blocks = blocks }
  end

let info = Passinfo.v ~requires:[ Passinfo.Meminfo ] "sccp"
