(** Loop unswitching (with a LICM-lite prepass).

    Hoists loop-invariant branches out of loops by cloning the loop: a
    dispatch block tests the invariant condition once and enters either a copy
    in which the branch is pinned true or one in which it is pinned false.
    The LICM prepass hoists invariant pure definitions — including loads that
    no store or call in the loop can clobber (alias oracle + mod summaries) —
    into the preheader, which is what makes conditions like [if (b)] inside
    [while (a) while (c) …] (paper Listing 7) invariant in the first place.

    Unswitching is enabled only at the highest optimization levels and is the
    paper's canonical O3-only regression source: it duplicates every block of
    the loop, and any later pass with a block-count budget (see {!Memcp},
    {!Sccp}) may now bail out where it previously folded. *)

type config = {
  max_body : int;        (** only unswitch loops up to this many instructions *)
  max_clones : int;      (** per-function cap on unswitch transformations *)
  licm_loads : bool;     (** allow hoisting of provably unclobbered loads *)
  precision : Alias.precision;
}

val default_config : config

val run : config -> Meminfo.t -> Dce_ir.Ir.func -> Dce_ir.Ir.func

val info : Passinfo.t
(** Pass-manager registration: clones loop bodies, so no analysis survives a change. *)
