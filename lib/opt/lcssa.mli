(** Loop-closed SSA: make loop-defined values cross the loop boundary only
    through phis at the exit block.

    The loop-cloning transformations (unrolling, unswitching) replicate a
    loop's registers per copy; a use {e outside} the loop of a register
    defined {e inside} would be left dangling.  [close_loop] inserts, at the
    unique exit target, one phi per such register and rewrites all outside
    uses to it — after which the cloners' exit-phi replication handles
    everything uniformly.

    Returns [None] (transformation must be skipped) when the loop has outside
    uses but more than one exit target, or when an exit target has
    predecessors outside the loop (the phi placement would need full SSA
    reconstruction, which real compilers also avoid in their fast paths). *)

val close_loop : Dce_ir.Ir.func -> Dce_ir.Loops.loop -> Dce_ir.Ir.func option

val info : Passinfo.t
(** Pass-manager registration: inserts phis and renames uses; block structure untouched. *)
