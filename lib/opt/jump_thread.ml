open Dce_ir
open Ir

type mode = Off | Conservative | Aggressive

type config = { mode : mode; phi_cleanup : bool; max_threads : int }

let default_config = { mode = Conservative; phi_cleanup = true; max_threads = 16 }

let has_phis b = List.exists (function Def (_, Phi _) -> true | _ -> false) b.b_instrs

(* registers defined in the block must not be used elsewhere: threading an
   edge around (or cloning) the block would otherwise break dominance of
   those uses *)
let defs_escape fn l =
  let b = block fn l in
  let defs =
    List.filter_map def_of_instr b.b_instrs |> List.fold_left (fun s v -> Iset.add v s) Iset.empty
  in
  let escaped = ref false in
  Imap.iter
    (fun l' b' ->
      if l' <> l then begin
        List.iter
          (fun i -> if List.exists (fun v -> Iset.mem v defs) (uses_of_instr i) then escaped := true)
          b'.b_instrs;
        if List.exists (fun v -> Iset.mem v defs) (uses_of_terminator b'.b_term) then
          escaped := true
      end)
    fn.fn_blocks;
  !escaped

(* a threadable site: block B whose terminator branches on a phi defined in B
   with at least one constant incoming argument *)
type site = {
  site_label : label;
  cond_var : var;
  phi_args : (label * operand) list;
  true_target : label;
  false_target : label;
  const_preds : (label * int) list; (* predecessor, constant condition value *)
}

let find_site config fn =
  let found = ref None in
  Imap.iter
    (fun l b ->
      if !found = None && l <> fn.fn_entry then
        match b.b_term with
        | Br (Reg c, lt, lf) when lt <> lf && lt <> l && lf <> l -> (
          let phi_def =
            List.find_opt (function Def (v, Phi _) -> v = c | _ -> false) b.b_instrs
          in
          match phi_def with
          | Some (Def (_, Phi args)) ->
            let const_preds =
              List.filter_map
                (fun (p, a) -> match a with Const k -> Some (p, k) | Reg _ -> None)
                args
            in
            let body_ok =
              match config.mode with
              | Off -> false
              | Conservative ->
                (* only the phi itself may live in the block *)
                List.for_all (function Def (_, Phi _) -> true | _ -> false) b.b_instrs
              | Aggressive ->
                (* anything but further phis used by the body; cloning is safe
                   for all instruction kinds *)
                true
            in
            let targets_ok t = not (has_phis (block fn t)) in
            if
              const_preds <> [] && body_ok && targets_ok lt && targets_ok lf
              && List.length args > List.length const_preds
              (* if every pred is constant SCCP handles it wholesale *)
              && not (defs_escape fn l)
            then
              found :=
                Some
                  {
                    site_label = l;
                    cond_var = c;
                    phi_args = args;
                    true_target = lt;
                    false_target = lf;
                    const_preds;
                  }
          | _ -> ())
        | _ -> ())
    fn.fn_blocks;
  !found

(* remove threaded predecessors from the block's phis *)
let drop_phi_preds config b removed =
  let instrs =
    List.map
      (fun i ->
        match i with
        | Def (v, Phi args) -> (
          let args = List.filter (fun (p, _) -> not (List.mem p removed)) args in
          match args with
          | [ (_, a) ] when config.phi_cleanup -> Def (v, Op a)
          | _ -> Def (v, Phi args))
        | _ -> i)
      b.b_instrs
  in
  Cfg.normalize_phi_prefix { b with b_instrs = instrs }

let thread_site config fn site =
  let fn = ref fn in
  let threaded = ref [] in
  List.iter
    (fun (p, k) ->
      let target = if k <> 0 then site.true_target else site.false_target in
      match config.mode with
      | Off -> ()
      | Conservative ->
        (* retarget the predecessor directly: the block is empty except phis *)
        let pb = block !fn p in
        let term =
          map_terminator_labels (fun t -> if t = site.site_label then target else t) pb.b_term
        in
        fn := { !fn with fn_blocks = Imap.add p { pb with b_term = term } !fn.fn_blocks };
        threaded := p :: !threaded
      | Aggressive ->
        (* clone the block for this edge with the branch pinned *)
        let fn', m = Clone.clone_region !fn (Iset.singleton site.site_label) in
        let clone_label = Clone.map_label m site.site_label in
        let cb = block fn' clone_label in
        (* resolve the clone's phis for the single incoming edge p *)
        let instrs =
          List.map
            (fun i ->
              match i with
              | Def (v, Phi args) -> (
                match List.assoc_opt p args with
                | Some a -> Def (v, Op a)
                | None -> Def (v, Op (Const 0)))
              | i -> i)
            cb.b_instrs
        in
        let cb = { b_instrs = instrs; b_term = Jmp target } in
        let fn' = { fn' with fn_blocks = Imap.add clone_label cb fn'.fn_blocks } in
        (* retarget the predecessor to the clone *)
        let pb = block fn' p in
        let term =
          map_terminator_labels (fun t -> if t = site.site_label then clone_label else t) pb.b_term
        in
        fn := { fn' with fn_blocks = Imap.add p { pb with b_term = term } fn'.fn_blocks };
        threaded := p :: !threaded)
    site.const_preds;
  (* drop the threaded predecessors from the original block's phis *)
  let b = block !fn site.site_label in
  fn :=
    { !fn with fn_blocks = Imap.add site.site_label (drop_phi_preds config b !threaded) !fn.fn_blocks };
  Cfg.remove_unreachable_blocks !fn

let run config fn =
  if config.mode = Off then fn
  else begin
    let rec attempt fn budget =
      if budget <= 0 then fn
      else
        match find_site config fn with
        | None -> fn
        | Some site -> attempt (thread_site config fn site) (budget - 1)
    in
    attempt fn config.max_threads
  end

let info = Passinfo.v ~requires:[ Passinfo.Cfg ] "jump-thread"
