open Dce_ir
open Ir

let close_loop fn (loop : Loops.loop) =
  let in_loop l = Iset.mem l loop.Loops.body in
  (* registers defined inside the loop *)
  let loop_defs = ref Iset.empty in
  Iset.iter
    (fun l ->
      List.iter
        (fun i ->
          match def_of_instr i with
          | Some v -> loop_defs := Iset.add v !loop_defs
          | None -> ())
        (block fn l).b_instrs)
    loop.Loops.body;
  (* loop-defined registers used outside *)
  let outside_uses = ref Iset.empty in
  Imap.iter
    (fun l b ->
      if not (in_loop l) then begin
        let note uses =
          List.iter (fun v -> if Iset.mem v !loop_defs then outside_uses := Iset.add v !outside_uses) uses
        in
        List.iter
          (fun i ->
            match i with
            | Def (_, Phi args) ->
              (* phi args whose pred edge comes from inside the loop are loop-
                 closed by construction; only args from outside preds count *)
              List.iter
                (fun (p, a) ->
                  match a with
                  | Reg v when (not (in_loop p)) && Iset.mem v !loop_defs ->
                    outside_uses := Iset.add v !outside_uses
                  | _ -> ())
                args
            | _ -> note (uses_of_instr i))
          b.b_instrs;
        note (uses_of_terminator b.b_term)
      end)
    fn.fn_blocks;
  if Iset.is_empty !outside_uses then Some fn
  else begin
    let exit_targets = Dce_support.Listx.uniq (List.map snd loop.Loops.exits) in
    match exit_targets with
    | [ exit_target ] ->
      let preds = Cfg.predecessors fn in
      let exit_preds = Option.value ~default:[] (Imap.find_opt exit_target preds) in
      if List.exists (fun p -> not (in_loop p)) exit_preds then None
      else begin
        (* one phi per escaping register, with one argument per exit edge *)
        let next_var = ref fn.fn_next_var in
        let names = ref fn.fn_var_names in
        let mapping =
          Iset.fold
            (fun v acc ->
              let w = !next_var in
              incr next_var;
              (match Imap.find_opt v fn.fn_var_names with
               | Some hint -> names := Imap.add w hint !names
               | None -> ());
              Imap.add v w acc)
            !outside_uses Imap.empty
        in
        let phi_defs =
          Iset.fold
            (fun v acc ->
              let w = Imap.find v mapping in
              Def (w, Phi (List.map (fun p -> (p, Reg v)) exit_preds)) :: acc)
            !outside_uses []
        in
        let subst = function
          | Const n -> Const n
          | Reg v -> ( match Imap.find_opt v mapping with Some w -> Reg w | None -> Reg v)
        in
        let blocks =
          Imap.mapi
            (fun l b ->
              if in_loop l then b
              else if l = exit_target then begin
                (* prepend the new phis; rewrite uses in the rest of the block *)
                let rest =
                  List.map
                    (fun i ->
                      match i with
                      | Def (v, Phi args) ->
                        (* existing phis keep loop-edge args (their preds are
                           loop blocks and stay correct); outside-edge args
                           get rewritten *)
                        Def
                          ( v,
                            Phi
                              (List.map
                                 (fun (p, a) -> if in_loop p then (p, a) else (p, subst a))
                                 args) )
                      | _ -> map_instr_operands subst i)
                    b.b_instrs
                in
                {
                  b_instrs = phi_defs @ rest;
                  b_term = map_terminator_operands subst b.b_term;
                }
              end
              else
                {
                  b_instrs =
                    List.map
                      (fun i ->
                        match i with
                        | Def (v, Phi args) ->
                          Def
                            ( v,
                              Phi
                                (List.map
                                   (fun (p, a) -> if in_loop p then (p, a) else (p, subst a))
                                   args) )
                        | _ -> map_instr_operands subst i)
                      b.b_instrs;
                  b_term = map_terminator_operands subst b.b_term;
                })
            fn.fn_blocks
        in
        Some { fn with fn_blocks = blocks; fn_next_var = !next_var; fn_var_names = !names }
      end
    | _ -> None
  end

let info = Passinfo.v ~requires:[ Passinfo.Cfg ] ~preserves:[ Passinfo.Cfg; Passinfo.Dominators ] "lcssa"
