(** Pass registration metadata.

    Every transformation pass declares itself against the pass manager
    ({!Dce_compiler.Passmgr}) with a canonical name, the analyses it
    consumes, and the analyses that remain valid even when the pass reports
    that it changed the IR.  The pass manager uses the declarations to
    decide which cached analysis results to invalidate after a stage runs:

    - an analysis in [preserves] survives the pass {e unconditionally}
      (e.g. {!Dce} deletes instructions but never touches terminators, so
      predecessor maps and dominator trees stay exact);
    - any other analysis survives only when the pass left the IR
      structurally unchanged.

    Declaring [preserves] is a soundness promise: the pass must leave the
    analysis result {e bit-identical} to a fresh recomputation, not merely
    conservatively usable, because the manager's caching must never change
    the pipeline's output. *)

(** The analyses the manager knows how to cache. *)
type analysis =
  | Meminfo      (** whole-program {!Meminfo.analyze} *)
  | Cfg          (** per-function predecessor maps *)
  | Dominators   (** per-function dominator trees *)

type t = {
  pass_name : string;        (** canonical name, e.g. ["sccp"] *)
  requires : analysis list;  (** analyses the pass consumes *)
  preserves : analysis list; (** analyses still exact after an IR change *)
}

val v : ?requires:analysis list -> ?preserves:analysis list -> string -> t

val preserves : t -> analysis -> bool
val requires : t -> analysis -> bool

val analysis_name : analysis -> string
