(** Tiny filesystem helpers. *)

val mkdir_p : string -> unit
(** Create a directory and any missing parents ([mkdir -p]).  No-op when the
    path already exists; safe against concurrent creators — [EEXIST] is
    tolerated at every component, so two processes racing to create the same
    directory both succeed.  Raises [Sys_error] only when creation genuinely
    fails (e.g. permission denied, or a path component is a regular file). *)
