(** Tiny filesystem helpers. *)

val mkdir_p : string -> unit
(** Create a directory and any missing parents ([mkdir -p]).  No-op when the
    path already exists; safe against concurrent creators — [EEXIST] is
    tolerated at every component, so two processes racing to create the same
    directory both succeed.  Raises [Sys_error] only when creation genuinely
    fails (e.g. permission denied, or a path component is a regular file). *)

val write_atomic : string -> string -> unit
(** [write_atomic path content]: replace [path] with [content] atomically —
    write to a fresh temp file in the same directory, [fsync], then [rename]
    over the destination.  A crash (even SIGKILL) at any point leaves either
    the previous file or the new one, never a torn prefix; at worst an
    orphaned [.tmp.*] sibling remains.  Concurrent writers to the same path
    each use a distinct temp name; last rename wins. *)

val rm_rf : string -> unit
(** Recursive delete ([rm -rf]): removes a file or directory tree.  Missing
    paths and concurrent removers are tolerated ([ENOENT] anywhere is
    success).  Symlinks are unlinked, never followed. *)
