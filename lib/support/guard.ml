exception Budget_exceeded of { site : string; steps : int; elapsed : float }

let () =
  Printexc.register_printer (function
    | Budget_exceeded { site; steps; elapsed } ->
      Some
        (Printf.sprintf "budget exceeded at %s (%d polls, %.3fs elapsed)" site steps elapsed)
    | _ -> None)

type t = {
  g_deadline : float option;  (* absolute gettimeofday *)
  g_max_steps : int option;
  g_start : float;
  mutable g_count : int;
  mutable g_last_time_check : int;  (* poll count at the last clock read *)
}

let unlimited =
  { g_deadline = None; g_max_steps = None; g_start = 0.; g_count = 0; g_last_time_check = 0 }

(* reading the clock every poll would make the interpreter's step loop pay
   for supervision; 128 polls between reads bounds deadline overshoot to a
   sliver while keeping the common path to two integer compares *)
let time_check_interval = 128

let create ?deadline ?steps () =
  match (deadline, steps) with
  | None, None -> unlimited
  | _ ->
    let now = Unix.gettimeofday () in
    {
      g_deadline = Option.map (fun d -> now +. d) deadline;
      g_max_steps = steps;
      g_start = now;
      g_count = 0;
      g_last_time_check = 0;
    }

let key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> unlimited)

let active () = Domain.DLS.get key != unlimited

let trip g site =
  raise
    (Budget_exceeded
       { site; steps = g.g_count; elapsed = Unix.gettimeofday () -. g.g_start })

let poll ~site =
  let g = Domain.DLS.get key in
  if g != unlimited then begin
    g.g_count <- g.g_count + 1;
    (match g.g_max_steps with
     | Some max_steps when g.g_count > max_steps -> trip g site
     | _ -> ());
    match g.g_deadline with
    | Some dl when g.g_count = 1 || g.g_count - g.g_last_time_check >= time_check_interval ->
      g.g_last_time_check <- g.g_count;
      if Unix.gettimeofday () > dl then trip g site
    | _ -> ()
  end

let with_guard g f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key g;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

let steps_used g = g.g_count
