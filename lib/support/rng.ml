type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = s }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* The logical shift by 2 only clears the top two bits so [Int64.to_int]
     yields a nonnegative value; [mod] then reduces through the *low* bits of
     the mixed word (bits 2..), not the high ones.  That is fine because the
     SplitMix64 finalizer mixes every bit position uniformly (chi-square
     smoke-tested in the support suite), and the modulo bias is negligible
     for the small bounds used here. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else
    let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
    v /. 9007199254740992.0 < p (* 2^53 *)

let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let choose_arr t a =
  if Array.length a = 0 then invalid_arg "Rng.choose_arr: empty array";
  a.(int t (Array.length a))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted: total weight must be positive";
  let k = int t total in
  let rec pick k = function
    | [] -> invalid_arg "Rng.weighted: internal error"
    | (w, x) :: rest ->
      let w = max 0 w in
      if k < w then x else pick (k - w) rest
  in
  pick k choices

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample t k xs =
  let shuffled = shuffle t xs in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
  in
  take k shuffled
