let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    (* tolerate a concurrent creator (two campaign workers journaling into
       the same fresh directory) *)
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.file_exists path -> ()
  end
