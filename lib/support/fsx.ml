(* mkdir -p that tolerates concurrent creators.  Two fabric workers (separate
   processes) may race to create the same bundle/artifact directory; checking
   [Sys.file_exists] before [mkdir] is a TOCTOU hole — the component can
   appear between the check and the call, or the check can pass while another
   worker is still mid-create.  The only race-free protocol is to always
   attempt the mkdir and treat EEXIST as success at every component. *)
let rec mkdir_p path =
  if path = "" || path = "." || path = "/" then ()
  else
    match Unix.mkdir path 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
      (* someone (possibly a sibling worker) got there first — but a regular
         file squatting on the path is a genuine failure *)
      if not (try Sys.is_directory path with Sys_error _ -> false) then
        raise (Sys_error (Printf.sprintf "%s: file exists and is not a directory" path))
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      mkdir_p (Filename.dirname path);
      (match Unix.mkdir path 0o755 with
       | () -> ()
       | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
         if not (try Sys.is_directory path with Sys_error _ -> false) then
           raise (Sys_error (Printf.sprintf "%s: file exists and is not a directory" path))
       | exception Unix.Unix_error (e, _, _) ->
         raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e))))
    | exception Unix.Unix_error (e, _, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))

(* Crash-safe file replacement: write the full content to a temp file in the
   *same directory* (rename is only atomic within a filesystem), fsync it,
   then rename over the destination.  Readers see either the old bytes or
   the new bytes, never a prefix — a SIGKILL between any two steps leaves at
   worst an orphaned [.tmp.*] file, which later writers reuse-by-overwrite
   never trip on because every writer gets a fresh name (pid + counter; two
   processes can race on the same destination without sharing a temp). *)
let tmp_counter = ref 0

let write_atomic path content =
  let dir = Filename.dirname path in
  incr tmp_counter;
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".tmp.%s.%d.%d" (Filename.basename path) (Unix.getpid ()) !tmp_counter)
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let cleanup_on_error f =
    try f ()
    with e ->
      (try Unix.close fd with _ -> ());
      (try Sys.remove tmp with _ -> ());
      raise e
  in
  cleanup_on_error (fun () ->
      let n = String.length content in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write_substring fd content !written (n - !written)
      done;
      (* fsync before rename: without it the rename can hit the disk before
         the data, and a power cut yields a *complete-looking* empty file *)
      Unix.fsync fd);
  Unix.close fd;
  try Unix.rename tmp path
  with e ->
    (try Sys.remove tmp with _ -> ());
    raise e

(* Recursive delete.  Tolerates concurrent removers (ENOENT at any step is
   success — the goal state is "gone").  Does not follow symlinks: a link is
   unlinked, never descended into. *)
let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    (match Sys.readdir path with
     | entries -> Array.iter (fun e -> rm_rf (Filename.concat path e)) entries
     | exception Sys_error _ -> ());
    (try Unix.rmdir path with Unix.Unix_error ((Unix.ENOENT | Unix.ENOTEMPTY), _, _) -> ())
  | _ -> (
    try Unix.unlink path with Unix.Unix_error (Unix.ENOENT, _, _) -> ())
