(* mkdir -p that tolerates concurrent creators.  Two fabric workers (separate
   processes) may race to create the same bundle/artifact directory; checking
   [Sys.file_exists] before [mkdir] is a TOCTOU hole — the component can
   appear between the check and the call, or the check can pass while another
   worker is still mid-create.  The only race-free protocol is to always
   attempt the mkdir and treat EEXIST as success at every component. *)
let rec mkdir_p path =
  if path = "" || path = "." || path = "/" then ()
  else
    match Unix.mkdir path 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
      (* someone (possibly a sibling worker) got there first — but a regular
         file squatting on the path is a genuine failure *)
      if not (try Sys.is_directory path with Sys_error _ -> false) then
        raise (Sys_error (Printf.sprintf "%s: file exists and is not a directory" path))
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      mkdir_p (Filename.dirname path);
      (match Unix.mkdir path 0o755 with
       | () -> ()
       | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
         if not (try Sys.is_directory path with Sys_error _ -> false) then
           raise (Sys_error (Printf.sprintf "%s: file exists and is not a directory" path))
       | exception Unix.Unix_error (e, _, _) ->
         raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e))))
    | exception Unix.Unix_error (e, _, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
