(** Cooperative execution budgets: deadlines and step limits for untrusted
    work, enforced at poll points.

    Pure OCaml code cannot be preempted, so a hung case — a pass fixpoint
    that never converges, an unroll bomb, an interpreter loop past its fuel
    hook — would stall its worker domain forever.  The supervision answer is
    {e cooperative}: long-running subsystems call {!poll} at natural
    boundaries (campaign stage entry, every pass-manager stage, every few
    hundred interpreter steps), and a guard armed with a deadline or a step
    budget turns the next poll into a {!Budget_exceeded} raise, which the
    campaign engine quarantines as a [Timeout] with the guilty poll site.

    The guard is {e ambient per domain}: {!with_guard} installs a guard for
    the dynamic extent of a thunk in the calling domain, and {!poll} reads
    it — so deep subsystems (the interpreter, the pass manager) need no
    budget parameter threaded through their interfaces.  When no guard is
    armed (the default), {!poll} is a single physical-equality test and
    never raises, so un-supervised callers pay nothing. *)

exception Budget_exceeded of { site : string; steps : int; elapsed : float }
(** Raised by {!poll}: [site] is the poll point that tripped (a campaign
    stage, a pass label, ["interp"], or a chaos injection site), [steps] the
    number of polls this guard served, [elapsed] the wall seconds since the
    guard was created.  A human-readable printer is registered with
    [Printexc]. *)

type t

val unlimited : t
(** The guard that never trips — the ambient default. *)

val create : ?deadline:float -> ?steps:int -> unit -> t
(** A fresh guard.  [deadline] is wall-clock seconds from now (checked at
    most every 128 polls, plus on the first poll, to keep polling cheap);
    [steps] is a hard bound on the number of polls served.  With neither,
    returns {!unlimited}. *)

val poll : site:string -> unit
(** Count one step against the calling domain's ambient guard; raises
    {!Budget_exceeded} when a budget is exhausted.  No-op (and no
    allocation) under {!unlimited}. *)

val with_guard : t -> (unit -> 'a) -> 'a
(** Install the guard as the calling domain's ambient guard for the
    duration of the thunk, restoring the previous guard afterwards (also on
    exceptions).  Nests. *)

val active : unit -> bool
(** Whether the calling domain currently has a non-{!unlimited} guard —
    used by the chaos harness to refuse to inject an un-cuttable hang. *)

val steps_used : t -> int
(** Polls served so far. *)
