(** The crash-safe on-disk job queue: [<spool>/jobs/job-NNNNNN/] holding
    [spec.json] (immutable, written atomically at submission),
    [state.jsonl] (the append-only lifecycle journal, fsync per event), and
    the job child's [outcome.json] / [error.txt] / [log.txt].

    Single-writer discipline: the daemon writes spec/state, the job child
    writes outcome/error/log — no file ever has two writers, so recovery
    after a crash never reconciles anything; it just refolds the journals.
    A torn trailing line (the event being written when the power went) is
    skipped by the loader, exactly like the campaign journal's tail. *)

type t

val open_spool : string -> t
(** Create/open [<spool>/jobs] (parents included). *)

val root : t -> string
val runs_root : t -> string
(** Where job campaigns persist their {!Dce_campaign.Run_store} artifact
    directories: [<spool>/runs]. *)

val seq_of_id : string -> int option
(** [seq_of_id "job-000042"] is [Some 42]; [None] for foreign names. *)

val job_dir : t -> string -> string
val spec_path : t -> string -> string
val state_path : t -> string -> string
val outcome_path : t -> string -> string
val error_path : t -> string -> string
val log_path : t -> string -> string

val submit : t -> time:float -> Job.spec -> string
(** Allocate the next [job-NNNNNN] id, write the spec atomically, append
    the [Queued] event.  Returns the id. *)

val append : t -> string -> time:float -> Job.event -> unit
(** Append one lifecycle event: one [O_APPEND] write plus fsync. *)

val load_events : t -> string -> Job.event list
(** The parseable events of [state.jsonl], in order; unparsable lines are
    skipped.  [[]] when the file is missing. *)

val load : t -> string -> (Job.spec * Job.event list) option
(** Spec + events; [None] when the spec is missing or unreadable. *)

val load_all : t -> (string * Job.spec * Job.event list) list
(** Every loadable job, ascending id order (= submission order). *)
