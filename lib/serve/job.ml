module Json = Dce_campaign.Json

(* A job is a campaign request plus its crash-safe lifecycle.  The spec is
   immutable (spec.json, written once at submission); the lifecycle is an
   append-only JSONL state journal (state.jsonl) whose fold is the job's
   current state — the same torn-tail-tolerant discipline as the campaign
   journal, applied to the queue itself.  The daemon is the only writer. *)

type kind = Hunt | Triage | Size_hunt | Level_hunt | Bisect | Reduce

let kind_to_string = function
  | Hunt -> "hunt"
  | Triage -> "triage"
  | Size_hunt -> "size-hunt"
  | Level_hunt -> "level-hunt"
  | Bisect -> "bisect"
  | Reduce -> "reduce"

let kind_of_string = function
  | "hunt" -> Some Hunt
  | "triage" -> Some Triage
  | "size-hunt" -> Some Size_hunt
  | "level-hunt" -> Some Level_hunt
  | "bisect" -> Some Bisect
  | "reduce" -> Some Reduce
  | _ -> None

type spec = {
  sp_kind : kind;
  sp_seed : int;
  sp_count : int;
  sp_lane : string;
  sp_deadline : float option;
  sp_case_deadline : float option;
  sp_step_budget : int option;
  sp_retries : int;
  sp_strikes : int;
  sp_chaos : string option;
  sp_source : string option;
  sp_marker : int option;
}

let default_spec =
  {
    sp_kind = Hunt;
    sp_seed = 20220228;
    sp_count = 50;
    sp_lane = "default";
    sp_deadline = None;
    sp_case_deadline = None;
    sp_step_budget = None;
    sp_retries = 0;
    sp_strikes = 2;
    sp_chaos = None;
    sp_source = None;
    sp_marker = None;
  }

let spec_to_json s =
  let opt f = function Some v -> f v | None -> Json.Null in
  Json.Obj
    [
      ("kind", Json.String (kind_to_string s.sp_kind));
      ("seed", Json.Int s.sp_seed);
      ("count", Json.Int s.sp_count);
      ("lane", Json.String s.sp_lane);
      ("deadline", opt (fun d -> Json.Float d) s.sp_deadline);
      ("case_deadline", opt (fun d -> Json.Float d) s.sp_case_deadline);
      ("step_budget", opt (fun n -> Json.Int n) s.sp_step_budget);
      ("retries", Json.Int s.sp_retries);
      ("strikes", Json.Int s.sp_strikes);
      ("chaos", opt (fun c -> Json.String c) s.sp_chaos);
      ("source", opt (fun c -> Json.String c) s.sp_source);
      ("marker", opt (fun m -> Json.Int m) s.sp_marker);
    ]

let float_member key j =
  match Json.member key j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let spec_of_json j =
  let kind =
    match Option.bind (Json.member "kind" j) Json.to_str with
    | Some k -> (
      match kind_of_string k with
      | Some k -> k
      | None -> failwith (Printf.sprintf "job spec: unknown kind %S" k))
    | None -> failwith "job spec: missing kind"
  in
  let int_or key d = Option.value ~default:d (Option.bind (Json.member key j) Json.to_int) in
  let str key = Option.bind (Json.member key j) Json.to_str in
  {
    sp_kind = kind;
    sp_seed = int_or "seed" default_spec.sp_seed;
    sp_count = int_or "count" default_spec.sp_count;
    sp_lane = Option.value ~default:default_spec.sp_lane (str "lane");
    sp_deadline = float_member "deadline" j;
    sp_case_deadline = float_member "case_deadline" j;
    sp_step_budget = Option.bind (Json.member "step_budget" j) Json.to_int;
    sp_retries = int_or "retries" default_spec.sp_retries;
    sp_strikes = int_or "strikes" default_spec.sp_strikes;
    sp_chaos = str "chaos";
    sp_source = str "source";
    sp_marker = Option.bind (Json.member "marker" j) Json.to_int;
  }

(* ------------------------------------------------------------------ *)
(* lifecycle events (one JSONL line each) and their fold               *)
(* ------------------------------------------------------------------ *)

type event =
  | Queued
  | Running of int  (* child pid (= its process group after setsid) *)
  | Requeued of { rq_reason : string; rq_strike : bool; rq_not_before : float }
  | Done
  | Failed of string
  | Cancelled

let event_to_json ~time ev =
  let fields =
    match ev with
    | Queued -> [ ("ev", Json.String "queued") ]
    | Running pid -> [ ("ev", Json.String "running"); ("pid", Json.Int pid) ]
    | Requeued r ->
      [
        ("ev", Json.String "requeued");
        ("reason", Json.String r.rq_reason);
        ("strike", Json.Bool r.rq_strike);
        ("not_before", Json.Float r.rq_not_before);
      ]
    | Done -> [ ("ev", Json.String "done") ]
    | Failed reason -> [ ("ev", Json.String "failed"); ("reason", Json.String reason) ]
    | Cancelled -> [ ("ev", Json.String "cancelled") ]
  in
  Json.Obj (("t", Json.Float time) :: fields)

let event_of_json j =
  match Option.bind (Json.member "ev" j) Json.to_str with
  | Some "queued" -> Some Queued
  | Some "running" ->
    Some (Running (Option.value ~default:0 (Option.bind (Json.member "pid" j) Json.to_int)))
  | Some "requeued" ->
    Some
      (Requeued
         {
           rq_reason = Option.value ~default:"" (Option.bind (Json.member "reason" j) Json.to_str);
           rq_strike =
             (match Json.member "strike" j with Some (Json.Bool b) -> b | _ -> false);
           rq_not_before = Option.value ~default:0. (float_member "not_before" j);
         })
  | Some "done" -> Some Done
  | Some "failed" ->
    Some (Failed (Option.value ~default:"" (Option.bind (Json.member "reason" j) Json.to_str)))
  | Some "cancelled" -> Some Cancelled
  | _ -> None

type state =
  | S_queued
  | S_running of int
  | S_done
  | S_failed of string
  | S_cancelled

let state_to_string = function
  | S_queued -> "queued"
  | S_running _ -> "running"
  | S_done -> "done"
  | S_failed _ -> "failed"
  | S_cancelled -> "cancelled"

let terminal = function S_done | S_failed _ | S_cancelled -> true | S_queued | S_running _ -> false

type view = { v_state : state; v_strikes : int; v_not_before : float }

(* last event wins for the state; strikes accumulate over the whole
   history so the two-strikes quarantine survives daemon restarts *)
let view_of_events events =
  List.fold_left
    (fun v ev ->
      match ev with
      | Queued -> { v with v_state = S_queued; v_not_before = 0. }
      | Running pid -> { v with v_state = S_running pid }
      | Requeued r ->
        {
          v_state = S_queued;
          v_strikes = (v.v_strikes + if r.rq_strike then 1 else 0);
          v_not_before = r.rq_not_before;
        }
      | Done -> { v with v_state = S_done }
      | Failed reason -> { v with v_state = S_failed reason }
      | Cancelled -> { v with v_state = S_cancelled })
    { v_state = S_queued; v_strikes = 0; v_not_before = 0. }
    events
