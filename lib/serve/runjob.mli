(** Executing one job inside the forked job child.

    Each {!Job.kind} maps onto the corresponding campaign entry point with
    the checkpoint journal routed into the job's {!Dce_campaign.Run_store}
    directory, so a killed attempt (worker death, daemon crash, drain)
    resumes per-case on the next one.  A [hunt] job's artifacts are
    byte-identical to [dce_hunt hunt --run-root] with the same parameters:
    both sides share {!Dce_campaign.Corpus.report},
    {!Dce_campaign.Corpus.report_text}, and the run-id derivation. *)

val run_id_of : Job.spec -> string option
(** The stable {!Dce_campaign.Run_store.run_id} this job persists under;
    [None] for [reduce] (its result is the reduced program, not a run). *)

val run_dir : runs_root:string -> Job.spec -> string option
val journal_of : runs_root:string -> Job.spec -> string option

val case_deadline : Job.spec -> float option
(** The per-case Guard deadline: the explicit case budget when set,
    otherwise the whole-job deadline — a runaway case trips
    [Guard.Budget_exceeded] cooperatively before the daemon's SIGKILL
    backstop. *)

type outcome = {
  oc_run_dir : string option;
  oc_cases : int;
  oc_resumed : int;  (** cases restored from the journal on this attempt *)
  oc_quarantined : int;
  oc_findings : int;
  oc_summary : string;
}

val outcome_to_json : outcome -> Dce_campaign.Json.t
val outcome_of_json : Dce_campaign.Json.t -> outcome

val execute : runs_root:string -> workers:int -> jobs:int -> Job.spec -> outcome
(** Run the job to completion in this process (campaigns may fork the
    fabric underneath when [workers > 1]).  Raises on failure — the caller
    (the daemon's job-child wrapper) records the error and exit status. *)
