module Json = Dce_campaign.Json
module Fsx = Dce_support.Fsx

(* The campaign service: a single-threaded select loop supervising forked
   job children over the crash-safe Store queue.

   Process model.  The daemon itself never spawns a domain, so it may fork
   freely (the OCaml 5 fork-after-domains ban).  Each job runs in a forked
   child that calls setsid() — the child and any fabric workers it forks
   form one process group, so the daemon's kill(-pid) reaches the whole
   tree (no leaked workers when a job is cancelled, deadlined, or drained).
   Children communicate results through atomically-written outcome.json /
   error.txt plus their exit status; the daemon is the sole writer of the
   job state journals.

   Crash safety.  Every queue transition is an fsynced JSONL event; on
   startup the daemon refolds each job's journal.  A job that was `running`
   when the previous daemon died is requeued (strike-free) after its
   recorded process group is killed — the campaign journal under the job's
   run directory carries the per-case progress, so the resumed attempt
   re-executes only what was never journaled and the final report is
   byte-identical to an uninterrupted run. *)

type chaos = {
  mutable kill_job_at : int option;  (* SIGKILL the job child once its progress reaches N *)
  mutable crash_daemon_at : int option;  (* _exit(70) once any job's progress reaches N *)
}

let parse_chaos s =
  let c = { kill_job_at = None; crash_daemon_at = None } in
  try
    String.split_on_char ',' s
    |> List.iter (fun entry ->
           let entry = String.trim entry in
           if entry <> "" then
             match String.index_opt entry '@' with
             | None -> failwith entry
             | Some i ->
               let kind = String.sub entry 0 i in
               let n = int_of_string (String.sub entry (i + 1) (String.length entry - i - 1)) in
               (match kind with
                | "kill-job" -> c.kill_job_at <- Some n
                | "crash-daemon" -> c.crash_daemon_at <- Some n
                | _ -> failwith entry));
    Ok c
  with _ ->
    Error
      (Printf.sprintf "bad chaos spec %S (use kill-job@N and/or crash-daemon@N, comma-separated)" s)

type config = {
  cf_spool : string;
  cf_socket : string option;  (* default <spool>/serve.sock *)
  cf_workers : int;
  cf_jobs : int;
  cf_slots : int;  (* concurrently running jobs *)
  cf_drain_grace : float;  (* seconds between SIGTERM and SIGKILL on drain *)
  cf_tick : float;  (* select timeout *)
  cf_backoff : float;  (* retry backoff base: base * 2^(strike-1) *)
  cf_chaos : chaos option;
  cf_quiet : bool;
}

let default ~spool =
  {
    cf_spool = spool;
    cf_socket = None;
    cf_workers = 1;
    cf_jobs = 1;
    cf_slots = 1;
    cf_drain_grace = 5.0;
    cf_tick = 0.05;
    cf_backoff = 0.5;
    cf_chaos = None;
    cf_quiet = false;
  }

let socket_path cf =
  match cf.cf_socket with Some p -> p | None -> Filename.concat cf.cf_spool "serve.sock"

let lock_path cf = Filename.concat cf.cf_spool "daemon.lock"

(* ------------------------------------------------------------------ *)
(* daemon state                                                        *)
(* ------------------------------------------------------------------ *)

type jrec = {
  j_id : string;
  j_seq : int;
  j_spec : Job.spec;
  mutable j_state : Job.state;
  mutable j_strikes : int;
  mutable j_not_before : float;
}

type running = {
  rn_job : jrec;
  rn_pid : int;
  rn_deadline : float;  (* absolute; infinity when unbounded *)
  mutable rn_progress : int;  (* campaign journal records observed *)
  mutable rn_jsize : int;  (* journal byte size at last poll *)
  mutable rn_cancelled : bool;
  mutable rn_deadlined : bool;
  mutable rn_chaos_killed : bool;
}

type client = {
  cl_fd : Unix.file_descr;
  cl_buf : Buffer.t;
  mutable cl_watch : string option;
  mutable cl_last_sent : float;
  mutable cl_last_progress : int;
  mutable cl_last_state : string;
  mutable cl_closed : bool;
}

type st = {
  cf : config;
  store : Store.t;
  jobs : (string, jrec) Hashtbl.t;
  mutable running : running list;
  mutable clients : client list;
  mutable last_lane : string option;
  mutable draining : bool;
  mutable started : float;
  lock_fd : Unix.file_descr;
  listen_fd : Unix.file_descr;
}

let log st fmt =
  Printf.ksprintf
    (fun s ->
      if not st.cf.cf_quiet then begin
        Printf.printf "[serve] %s\n" s;
        flush stdout
      end)
    fmt

let now () = Unix.gettimeofday ()

let append st jr ev =
  Store.append st.store jr.j_id ~time:(now ()) ev;
  (match ev with
   | Job.Queued -> jr.j_state <- Job.S_queued
   | Job.Running pid -> jr.j_state <- Job.S_running pid
   | Job.Requeued { rq_strike; rq_not_before; _ } ->
     jr.j_state <- Job.S_queued;
     if rq_strike then jr.j_strikes <- jr.j_strikes + 1;
     jr.j_not_before <- rq_not_before
   | Job.Done -> jr.j_state <- Job.S_done
   | Job.Failed reason -> jr.j_state <- Job.S_failed reason
   | Job.Cancelled -> jr.j_state <- Job.S_cancelled)

(* ------------------------------------------------------------------ *)
(* startup: lock, socket, queue replay                                 *)
(* ------------------------------------------------------------------ *)

let acquire_lock cf =
  Fsx.mkdir_p cf.cf_spool;
  let fd = Unix.openfile (lock_path cf) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  match Unix.lockf fd Unix.F_TLOCK 0 with
  | () -> fd
  | exception Unix.Unix_error _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    failwith
      (Printf.sprintf "spool %s: another daemon is already serving (lock held on %s)" cf.cf_spool
         (lock_path cf))

let bind_socket cf =
  let path = socket_path cf in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec fd;
  (match Unix.bind fd (Unix.ADDR_UNIX path) with
   | () -> ()
   | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
     (* we hold the daemon lock, so any existing socket file is a stale
        leftover of a killed daemon: unlink and rebind *)
     (try Unix.unlink path with Unix.Unix_error _ -> ());
     Unix.bind fd (Unix.ADDR_UNIX path));
  Unix.listen fd 16;
  fd

let kill_group pid signal = try Unix.kill (-pid) signal with Unix.Unix_error _ -> ()

let replay st =
  List.iter
    (fun (id, spec, events) ->
      let view = Job.view_of_events events in
      let seq = Option.value ~default:0 (Store.seq_of_id id) in
      let jr =
        {
          j_id = id;
          j_seq = seq;
          j_spec = spec;
          j_state = view.Job.v_state;
          j_strikes = view.Job.v_strikes;
          j_not_before = view.Job.v_not_before;
        }
      in
      Hashtbl.replace st.jobs id jr;
      match view.Job.v_state with
      | Job.S_running pid ->
        (* the previous daemon died mid-job: reap the stray process group
           (it may still be running as an orphan and would contend on the
           campaign journal lock), then requeue strike-free — the journal
           already holds its finished cases *)
        kill_group pid Sys.sigkill;
        append st jr
          (Job.Requeued { rq_reason = "daemon-restart"; rq_strike = false; rq_not_before = 0. });
        log st "%s: requeued after daemon restart" id
      | _ -> ())
    (Store.load_all st.store)

(* ------------------------------------------------------------------ *)
(* dispatch: fork one job child                                        *)
(* ------------------------------------------------------------------ *)

let job_child st jr =
  (* runs in the forked child: fresh session/process group so the daemon
     can kill the whole job tree; inherited daemon fds closed; default
     signal dispositions restored (the daemon's flag-setting handlers make
     no sense here — a drain SIGTERM must actually terminate us) *)
  ignore (Unix.setsid ());
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  Sys.set_signal Sys.sigint Sys.Signal_default;
  (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close st.lock_fd with Unix.Unix_error _ -> ());
  List.iter (fun c -> try Unix.close c.cl_fd with Unix.Unix_error _ -> ()) st.clients;
  (* stray prints from campaign code land in the job log, not the daemon's
     stdout *)
  (try
     let logfd =
       Unix.openfile (Store.log_path st.store jr.j_id)
         [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
         0o644
     in
     Unix.dup2 logfd Unix.stdout;
     Unix.dup2 logfd Unix.stderr;
     Unix.close logfd
   with Unix.Unix_error _ -> ());
  let exit_code =
    try
      let outcome =
        Runjob.execute ~runs_root:(Store.runs_root st.store) ~workers:st.cf.cf_workers
          ~jobs:st.cf.cf_jobs jr.j_spec
      in
      Fsx.write_atomic
        (Store.outcome_path st.store jr.j_id)
        (Json.to_string (Runjob.outcome_to_json outcome) ^ "\n");
      0
    with
    | Dce_support.Guard.Budget_exceeded { site; steps; elapsed } ->
      Fsx.write_atomic
        (Store.error_path st.store jr.j_id)
        (Printf.sprintf "deadline exceeded at %s (%d steps, %.1fs elapsed)\n" site steps elapsed);
      4
    | e ->
      Fsx.write_atomic (Store.error_path st.store jr.j_id) (Printexc.to_string e ^ "\n");
      3
  in
  Unix._exit exit_code

let start_job st jr =
  (* clear a previous attempt's verdict files so this attempt's are
     unambiguous *)
  (try Sys.remove (Store.outcome_path st.store jr.j_id) with Sys_error _ -> ());
  (try Sys.remove (Store.error_path st.store jr.j_id) with Sys_error _ -> ());
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> job_child st jr
  | pid ->
    append st jr (Job.Running pid);
    let deadline =
      match jr.j_spec.Job.sp_deadline with Some d -> now () +. d | None -> infinity
    in
    st.running <-
      {
        rn_job = jr;
        rn_pid = pid;
        rn_deadline = deadline;
        rn_progress = 0;
        rn_jsize = -1;
        rn_cancelled = false;
        rn_deadlined = false;
        rn_chaos_killed = false;
      }
      :: st.running;
    st.last_lane <- Some jr.j_spec.Job.sp_lane;
    log st "%s: started (pid %d, lane %s)" jr.j_id pid jr.j_spec.Job.sp_lane

let dispatch st =
  if not st.draining then begin
    let free = st.cf.cf_slots - List.length st.running in
    if free > 0 then begin
      let t = now () in
      let ready =
        Hashtbl.fold
          (fun _ jr acc ->
            match jr.j_state with
            | Job.S_queued when jr.j_not_before <= t ->
              { Sched.cd_id = jr.j_id; cd_lane = jr.j_spec.Job.sp_lane; cd_seq = jr.j_seq } :: acc
            | _ -> acc)
          st.jobs []
      in
      match Sched.next ?last:st.last_lane ready with
      | Some c -> start_job st (Hashtbl.find st.jobs c.Sched.cd_id)
      | None -> ()
    end
  end

(* ------------------------------------------------------------------ *)
(* child reaping and supervision                                       *)
(* ------------------------------------------------------------------ *)

let read_error st id =
  match
    let ic = open_in_bin (Store.error_path st.store id) in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  with
  | s -> Some (String.trim s)
  | exception Sys_error _ -> None

let settle st rn status =
  st.running <- List.filter (fun r -> r != rn) st.running;
  let jr = rn.rn_job in
  let clean = status = Unix.WEXITED 0 && Sys.file_exists (Store.outcome_path st.store jr.j_id) in
  if clean then begin
    append st jr Job.Done;
    log st "%s: done" jr.j_id
  end
  else if rn.rn_cancelled then begin
    append st jr Job.Cancelled;
    log st "%s: cancelled" jr.j_id
  end
  else begin
    let reason =
      match read_error st jr.j_id with
      | Some e when e <> "" -> e
      | _ -> (
        if rn.rn_deadlined then
          Printf.sprintf "deadline exceeded (killed after %gs)"
            (Option.value ~default:0. jr.j_spec.Job.sp_deadline)
        else
          match status with
          | Unix.WEXITED n -> Printf.sprintf "job process exited with code %d" n
          | Unix.WSIGNALED s -> Printf.sprintf "job process killed by signal %d" s
          | Unix.WSTOPPED s -> Printf.sprintf "job process stopped by signal %d" s)
    in
    if st.draining then begin
      (* a job cut down by the drain is requeued strike-free: stopping the
         service is not the job's fault *)
      append st jr (Job.Requeued { rq_reason = "drain"; rq_strike = false; rq_not_before = 0. });
      log st "%s: requeued by drain" jr.j_id
    end
    else if rn.rn_deadlined || status = Unix.WEXITED 4 then begin
      (* a deadline trip is deterministic — retrying would trip it again *)
      append st jr (Job.Failed reason);
      log st "%s: failed (%s)" jr.j_id reason
    end
    else begin
      let strikes = jr.j_strikes + 1 in
      if strikes >= jr.j_spec.Job.sp_strikes then begin
        (* two-strikes quarantine, mirroring the fabric's poison-pill
           policy at the job level *)
        append st jr
          (Job.Failed (Printf.sprintf "quarantined after %d strikes: %s" strikes reason));
        log st "%s: quarantined after %d strikes" jr.j_id strikes
      end
      else begin
        let backoff = st.cf.cf_backoff *. (2. ** float_of_int (strikes - 1)) in
        append st jr
          (Job.Requeued
             { rq_reason = reason; rq_strike = true; rq_not_before = now () +. backoff });
        log st "%s: strike %d (%s), retrying in %.1fs" jr.j_id strikes reason backoff
      end
    end
  end;
  (* whatever remains of the job's process group dies with it *)
  kill_group rn.rn_pid Sys.sigkill

let reap st =
  List.iter
    (fun rn ->
      match Unix.waitpid [ Unix.WNOHANG ] rn.rn_pid with
      | 0, _ -> ()
      | _, status -> settle st rn status
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> settle st rn (Unix.WEXITED 127))
    st.running

let enforce_deadlines st =
  let t = now () in
  List.iter
    (fun rn ->
      if t > rn.rn_deadline && not rn.rn_deadlined then begin
        rn.rn_deadlined <- true;
        log st "%s: deadline exceeded, killing process group %d" rn.rn_job.j_id rn.rn_pid;
        kill_group rn.rn_pid Sys.sigkill
      end)
    st.running

(* progress = journal records past the header, polled by file size so an
   unchanged journal costs one stat *)
let poll_progress st =
  List.iter
    (fun rn ->
      match Runjob.journal_of ~runs_root:(Store.runs_root st.store) rn.rn_job.j_spec with
      | None -> ()
      | Some path -> (
        match Unix.stat path with
        | exception Unix.Unix_error _ -> ()
        | stt ->
          if stt.Unix.st_size <> rn.rn_jsize then begin
            rn.rn_jsize <- stt.Unix.st_size;
            match
              let ic = open_in_bin path in
              let s = really_input_string ic (in_channel_length ic) in
              close_in ic;
              s
            with
            | exception Sys_error _ -> ()
            | s ->
              let lines = ref 0 in
              String.iter (fun c -> if c = '\n' then incr lines) s;
              rn.rn_progress <- max 0 (!lines - 1)
          end))
    st.running

let fire_chaos st =
  match st.cf.cf_chaos with
  | None -> ()
  | Some chaos ->
    (match chaos.kill_job_at with
     | Some n ->
       List.iter
         (fun rn ->
           if rn.rn_progress >= n && not rn.rn_chaos_killed then begin
             rn.rn_chaos_killed <- true;
             chaos.kill_job_at <- None;
             log st "%s: chaos kill-job@%d firing (pid %d)" rn.rn_job.j_id n rn.rn_pid;
             kill_group rn.rn_pid Sys.sigkill
           end)
         st.running
     | None -> ());
    (match chaos.crash_daemon_at with
     | Some n when List.exists (fun rn -> rn.rn_progress >= n) st.running ->
       (* simulate a daemon crash: no cleanup, no drain — children are
          orphaned exactly as SIGKILL would leave them; the restarted
          daemon's replay reaps and requeues *)
       log st "chaos crash-daemon@%d firing" n;
       flush stdout;
       Unix._exit 70
     | _ -> ())

(* ------------------------------------------------------------------ *)
(* client handling                                                     *)
(* ------------------------------------------------------------------ *)

let job_json st jr =
  let progress =
    List.find_opt (fun rn -> rn.rn_job == jr) st.running
    |> Option.map (fun rn -> rn.rn_progress)
  in
  Json.Obj
    ([
       ("job", Json.String jr.j_id);
       ("kind", Json.String (Job.kind_to_string jr.j_spec.Job.sp_kind));
       ("lane", Json.String jr.j_spec.Job.sp_lane);
       ("state", Json.String (Job.state_to_string jr.j_state));
       ("strikes", Json.Int jr.j_strikes);
       ("seed", Json.Int jr.j_spec.Job.sp_seed);
       ("count", Json.Int jr.j_spec.Job.sp_count);
     ]
    @ (match jr.j_state with
       | Job.S_failed reason -> [ ("reason", Json.String reason) ]
       | _ -> [])
    @ (match progress with Some p -> [ ("progress", Json.Int p) ] | None -> [])
    @
    match Runjob.run_id_of jr.j_spec with
    | Some id -> [ ("run_id", Json.String id) ]
    | None -> [])

let respond _st cl j = if not (Proto.write_json cl.cl_fd j) then cl.cl_closed <- true

let daemon_json st =
  Json.Obj
    [
      ("uptime", Json.Float (now () -. st.started));
      ("draining", Json.Bool st.draining);
      ("slots", Json.Int st.cf.cf_slots);
      ("workers", Json.Int st.cf.cf_workers);
      ("jobs", Json.Int st.cf.cf_jobs);
      ("running", Json.Int (List.length st.running));
      ( "queued",
        Json.Int
          (Hashtbl.fold
             (fun _ jr n -> match jr.j_state with Job.S_queued -> n + 1 | _ -> n)
             st.jobs 0) );
    ]

let handle_request st cl req =
  let find_job () =
    match Option.bind (Json.member "job" req) Json.to_str with
    | None -> Error "missing job id"
    | Some id -> (
      match Hashtbl.find_opt st.jobs id with
      | Some jr -> Ok jr
      | None -> Error (Printf.sprintf "unknown job %s" id))
  in
  match Proto.op_of req with
  | Some "ping" -> respond st cl (Proto.ok [ ("daemon", daemon_json st) ])
  | Some "submit" ->
    if st.draining then respond st cl (Proto.err "daemon is draining")
    else (
      match Json.member "spec" req with
      | None -> respond st cl (Proto.err "missing spec")
      | Some sj -> (
        match Job.spec_of_json sj with
        | exception Failure msg -> respond st cl (Proto.err msg)
        | spec ->
          (match Option.map Dce_campaign.Chaos.of_string spec.Job.sp_chaos with
           | Some (Error msg) -> respond st cl (Proto.err ("chaos: " ^ msg))
           | _ ->
             let id = Store.submit st.store ~time:(now ()) spec in
             let jr =
               {
                 j_id = id;
                 j_seq = Option.value ~default:0 (Store.seq_of_id id);
                 j_spec = spec;
                 j_state = Job.S_queued;
                 j_strikes = 0;
                 j_not_before = 0.;
               }
             in
             Hashtbl.replace st.jobs id jr;
             log st "%s: submitted (%s seed %d count %d)" id
               (Job.kind_to_string spec.Job.sp_kind) spec.Job.sp_seed spec.Job.sp_count;
             respond st cl (Proto.ok [ ("job", Json.String id) ]))))
  | Some "status" -> (
    match Json.member "job" req with
    | None ->
      let jobs =
        Hashtbl.fold (fun _ jr acc -> jr :: acc) st.jobs []
        |> List.sort (fun a b -> compare a.j_seq b.j_seq)
        |> List.map (job_json st)
      in
      respond st cl (Proto.ok [ ("daemon", daemon_json st); ("jobs", Json.List jobs) ])
    | Some _ -> (
      match find_job () with
      | Error e -> respond st cl (Proto.err e)
      | Ok jr -> respond st cl (Proto.ok [ ("job_status", job_json st jr) ])))
  | Some "watch" -> (
    match find_job () with
    | Error e -> respond st cl (Proto.err e)
    | Ok jr ->
      if Job.terminal jr.j_state then
        respond st cl (Proto.ok [ ("state", Json.String (Job.state_to_string jr.j_state)) ])
      else begin
        cl.cl_watch <- Some jr.j_id;
        cl.cl_last_progress <- -1;
        cl.cl_last_state <- "";
        cl.cl_last_sent <- 0.
      end)
  | Some "cancel" -> (
    match find_job () with
    | Error e -> respond st cl (Proto.err e)
    | Ok jr ->
      (match jr.j_state with
       | Job.S_queued ->
         append st jr Job.Cancelled;
         log st "%s: cancelled (was queued)" jr.j_id
       | Job.S_running _ ->
         List.iter
           (fun rn ->
             if rn.rn_job == jr && not rn.rn_cancelled then begin
               rn.rn_cancelled <- true;
               log st "%s: cancelling (SIGTERM to group %d)" jr.j_id rn.rn_pid;
               kill_group rn.rn_pid Sys.sigterm
             end)
           st.running
       | _ -> ());
      respond st cl (Proto.ok [ ("state", Json.String (Job.state_to_string jr.j_state)) ]))
  | Some "result" -> (
    match find_job () with
    | Error e -> respond st cl (Proto.err e)
    | Ok jr ->
      if not (Job.terminal jr.j_state) then
        respond st cl
          (Proto.err
             (Printf.sprintf "job %s is %s, not finished" jr.j_id
                (Job.state_to_string jr.j_state)))
      else
        let outcome =
          match
            let ic = open_in_bin (Store.outcome_path st.store jr.j_id) in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            Json.of_string (String.trim s)
          with
          | Ok j -> j
          | Error _ | (exception Sys_error _) -> Json.Null
        in
        let report_text =
          match Option.bind (Json.member "run_dir" outcome) Json.to_str with
          | None -> Json.Null
          | Some dir -> (
            match
              let ic = open_in_bin (Filename.concat dir "report.txt") in
              let s = really_input_string ic (in_channel_length ic) in
              close_in ic;
              s
            with
            | s -> Json.String s
            | exception Sys_error _ -> Json.Null)
        in
        respond st cl
          (Proto.ok
             [
               ("state", Json.String (Job.state_to_string jr.j_state));
               ("job_status", job_json st jr);
               ("outcome", outcome);
               ("report", report_text);
             ]))
  | Some "shutdown" ->
    respond st cl (Proto.ok [ ("draining", Json.Bool true) ]);
    st.draining <- true
  | Some op -> respond st cl (Proto.err (Printf.sprintf "unknown op %S" op))
  | None -> respond st cl (Proto.err "request carries no op")

let handle_client_data st cl =
  let buf = Bytes.create 65536 in
  match Unix.read cl.cl_fd buf 0 (Bytes.length buf) with
  | 0 -> cl.cl_closed <- true
  | exception Unix.Unix_error _ -> cl.cl_closed <- true
  | k ->
    Buffer.add_subbytes cl.cl_buf buf 0 k;
    let data = Buffer.contents cl.cl_buf in
    let rec split start =
      match String.index_from_opt data start '\n' with
      | Some nl ->
        (match Json.of_string (String.sub data start (nl - start)) with
         | Ok req -> handle_request st cl req
         | Error _ -> respond st cl (Proto.err "unparseable request"));
        split (nl + 1)
      | None ->
        Buffer.clear cl.cl_buf;
        Buffer.add_substring cl.cl_buf data start (String.length data - start)
    in
    split 0

(* watch streaming: progress events when the journal grows, heartbeats
   when idle, a terminal ok line when the job settles *)
let pump_watchers st =
  let t = now () in
  List.iter
    (fun cl ->
      match cl.cl_watch with
      | None -> ()
      | Some id -> (
        match Hashtbl.find_opt st.jobs id with
        | None -> cl.cl_watch <- None
        | Some jr ->
          if Job.terminal jr.j_state then begin
            respond st cl
              (Proto.ok
                 [
                   ("state", Json.String (Job.state_to_string jr.j_state));
                   ("job_status", job_json st jr);
                 ]);
            cl.cl_watch <- None
          end
          else begin
            let progress =
              List.find_opt (fun rn -> rn.rn_job == jr) st.running
              |> Option.map (fun rn -> rn.rn_progress)
            in
            let state = Job.state_to_string jr.j_state in
            let changed =
              state <> cl.cl_last_state
              || Option.value ~default:(-1) progress <> cl.cl_last_progress
            in
            if changed then begin
              cl.cl_last_state <- state;
              cl.cl_last_progress <- Option.value ~default:(-1) progress;
              cl.cl_last_sent <- t;
              if
                not
                  (Proto.write_json cl.cl_fd
                     (Json.Obj
                        ([
                           ("event", Json.String "progress");
                           ("state", Json.String state);
                           ("total", Json.Int jr.j_spec.Job.sp_count);
                         ]
                        @
                        match progress with
                        | Some p -> [ ("done", Json.Int p) ]
                        | None -> [])))
              then cl.cl_closed <- true
            end
            else if t -. cl.cl_last_sent > 1.0 then begin
              (* liveness: a silent daemon and a dead daemon must be
                 distinguishable on the socket *)
              cl.cl_last_sent <- t;
              if
                not
                  (Proto.write_json cl.cl_fd
                     (Json.Obj [ ("event", Json.String "heartbeat"); ("t", Json.Float t) ]))
              then cl.cl_closed <- true
            end
          end))
    st.clients

(* ------------------------------------------------------------------ *)
(* drain and the main loop                                             *)
(* ------------------------------------------------------------------ *)

let drain st =
  log st "draining: %d running job(s), grace %gs" (List.length st.running) st.cf.cf_drain_grace;
  (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink (socket_path st.cf) with Unix.Unix_error _ -> ());
  List.iter (fun rn -> kill_group rn.rn_pid Sys.sigterm) st.running;
  let deadline = now () +. st.cf.cf_drain_grace in
  let rec wait_children () =
    reap st;
    if st.running <> [] && now () < deadline then begin
      ignore (Unix.select [] [] [] 0.05);
      wait_children ()
    end
  in
  wait_children ();
  (* whatever survived the grace dies now; settle will requeue *)
  List.iter (fun rn -> kill_group rn.rn_pid Sys.sigkill) st.running;
  let rec reap_rest tries =
    reap st;
    if st.running <> [] && tries > 0 then begin
      ignore (Unix.select [] [] [] 0.05);
      reap_rest (tries - 1)
    end
  in
  reap_rest 100;
  (* anything still unreaped (shouldn't happen) is settled as killed *)
  List.iter (fun rn -> settle st rn (Unix.WSIGNALED Sys.sigkill)) st.running;
  List.iter
    (fun cl ->
      ignore (Proto.write_json cl.cl_fd (Json.Obj [ ("event", Json.String "draining") ]));
      try Unix.close cl.cl_fd with Unix.Unix_error _ -> ())
    st.clients;
  st.clients <- [];
  (try Unix.close st.lock_fd with Unix.Unix_error _ -> ());
  log st "drained"

let run cf =
  let store = Store.open_spool cf.cf_spool in
  let lock_fd = acquire_lock cf in
  let listen_fd = bind_socket cf in
  let st =
    {
      cf;
      store;
      jobs = Hashtbl.create 32;
      running = [];
      clients = [];
      last_lane = None;
      draining = false;
      started = now ();
      lock_fd;
      listen_fd;
    }
  in
  let stop = ref false in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true)) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true)) in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigpipe prev_pipe)
    (fun () ->
      replay st;
      log st "serving on %s (slots %d, workers %d x jobs %d)" (socket_path cf) cf.cf_slots
        cf.cf_workers cf.cf_jobs;
      let finished () =
        st.draining
        && st.running = []
        (* draining stops dispatch; once children are settled we exit *)
      in
      while not (!stop || finished ()) do
        if !stop then ()
        else begin
          let fds = st.listen_fd :: List.map (fun c -> c.cl_fd) st.clients in
          let readable, _, _ =
            try Unix.select fds [] [] cf.cf_tick
            with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
          in
          List.iter
            (fun fd ->
              if fd = st.listen_fd then (
                match Unix.accept st.listen_fd with
                | cfd, _ ->
                  Unix.set_close_on_exec cfd;
                  st.clients <-
                    {
                      cl_fd = cfd;
                      cl_buf = Buffer.create 512;
                      cl_watch = None;
                      cl_last_sent = 0.;
                      cl_last_progress = -1;
                      cl_last_state = "";
                      cl_closed = false;
                    }
                    :: st.clients
                | exception Unix.Unix_error _ -> ())
              else
                match List.find_opt (fun c -> c.cl_fd = fd) st.clients with
                | Some cl -> handle_client_data st cl
                | None -> ())
            readable;
          reap st;
          enforce_deadlines st;
          poll_progress st;
          fire_chaos st;
          pump_watchers st;
          (* closed clients are swept once per tick *)
          let dead, alive = List.partition (fun c -> c.cl_closed) st.clients in
          List.iter (fun c -> try Unix.close c.cl_fd with Unix.Unix_error _ -> ()) dead;
          st.clients <- alive;
          dispatch st
        end
      done;
      st.draining <- true;
      drain st)
