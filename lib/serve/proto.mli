(** The client/daemon wire protocol: one JSON object per line over a
    Unix-domain stream socket (the same line-JSON codec as the fabric's
    coordinator/worker protocol).

    Requests are [{"op":NAME, ...}]; terminal responses are
    [{"ok":true, ...}] or [{"ok":false,"error":MSG}]; a [watch] streams
    [{"event":...}] lines before its terminal response. *)

val request : string -> (string * Dce_campaign.Json.t) list -> Dce_campaign.Json.t
val op_of : Dce_campaign.Json.t -> string option

val ok : (string * Dce_campaign.Json.t) list -> Dce_campaign.Json.t
val err : string -> Dce_campaign.Json.t
val is_ok : Dce_campaign.Json.t -> bool
val error_of : Dce_campaign.Json.t -> string
val is_event : Dce_campaign.Json.t -> bool

val write_json : Unix.file_descr -> Dce_campaign.Json.t -> bool
(** Write one line; [false] when the peer is gone (EPIPE/ECONNRESET) —
    never raises. *)
