(** The campaign service daemon: a single-threaded select loop accepting
    jobs over a Unix-domain socket, dispatching them into forked job
    children (one process group each, killed whole on cancel/deadline/
    drain), and journalling every queue transition so a killed daemon
    resumes exactly where it stopped.

    The daemon never spawns a domain — jobs run in forked children, and
    any fabric workers they need are forked underneath them — so it stays
    on the safe side of the OCaml 5 fork-after-domains ban. *)

type chaos = {
  mutable kill_job_at : int option;
      (** SIGKILL the running job's process group once its campaign journal
          shows [n] finished cases (fires once) *)
  mutable crash_daemon_at : int option;
      (** [_exit 70] without any cleanup once any job reaches [n] cases —
          simulates a daemon crash for the recovery tests (fires once) *)
}

val parse_chaos : string -> (chaos, string) result
(** ["kill-job@N,crash-daemon@M"] — either component optional. *)

type config = {
  cf_spool : string;  (** spool directory: jobs/, runs/, daemon.lock, serve.sock *)
  cf_socket : string option;  (** listen path; default [<spool>/serve.sock] *)
  cf_workers : int;  (** fabric workers per job *)
  cf_jobs : int;  (** intra-campaign domains per job *)
  cf_slots : int;  (** concurrently running jobs *)
  cf_drain_grace : float;  (** seconds between drain SIGTERM and SIGKILL *)
  cf_tick : float;  (** supervision poll interval (select timeout) *)
  cf_backoff : float;  (** retry backoff base: [base * 2^(strike-1)] seconds *)
  cf_chaos : chaos option;
  cf_quiet : bool;
}

val default : spool:string -> config
(** One slot, one worker, 5s grace, 50ms tick, 0.5s backoff. *)

val socket_path : config -> string
val lock_path : config -> string

val run : config -> unit
(** Serve until SIGTERM/SIGINT or a [shutdown] request, then drain:
    close the socket, stop dispatching, let in-flight jobs finish (signal
    path: SIGTERM them and wait [cf_drain_grace], then SIGKILL), requeue
    interrupted jobs strike-free, persist everything, release the lock.
    Raises [Failure] when another daemon already holds the spool lock. *)
