module Json = Dce_campaign.Json

(* One-shot client calls: each request opens a fresh connection, sends one
   line, reads the response line(s), and closes.  Fresh connections make
   the pollers (wait) tolerant of daemon restarts — a refused connect just
   means "try again", which is exactly the crash-recovery story. *)

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "cannot reach daemon at %s: %s" socket (Unix.error_message e))

let read_line_fd ic = match input_line ic with s -> Some s | exception End_of_file -> None

let request ~socket req =
  match connect socket with
  | Error e -> Error e
  | Ok fd ->
    let ic = Unix.in_channel_of_descr fd in
    Fun.protect
      ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
      (fun () ->
        if not (Proto.write_json fd req) then Error "daemon hung up"
        else
          match read_line_fd ic with
          | None -> Error "daemon hung up"
          | Some line -> (
            match Json.of_string line with
            | Error e -> Error ("unparseable response: " ^ e)
            | Ok j -> if Proto.is_ok j then Ok j else Error (Proto.error_of j)))

let submit ~socket spec =
  match request ~socket (Proto.request "submit" [ ("spec", Job.spec_to_json spec) ]) with
  | Error e -> Error e
  | Ok j -> (
    match Option.bind (Json.member "job" j) Json.to_str with
    | Some id -> Ok id
    | None -> Error "daemon accepted the job but returned no id")

let status ?job ~socket () =
  let fields = match job with Some id -> [ ("job", Json.String id) ] | None -> [] in
  request ~socket (Proto.request "status" fields)

let cancel ~socket ~job = request ~socket (Proto.request "cancel" [ ("job", Json.String job) ])
let result_ ~socket ~job = request ~socket (Proto.request "result" [ ("job", Json.String job) ])
let ping ~socket = request ~socket (Proto.request "ping" [])
let shutdown ~socket = request ~socket (Proto.request "shutdown" [])

(* watch holds its connection open and forwards event lines until the
   terminal ok/err line arrives *)
let watch ~socket ~job ~on_event =
  match connect socket with
  | Error e -> Error e
  | Ok fd ->
    let ic = Unix.in_channel_of_descr fd in
    Fun.protect
      ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
      (fun () ->
        if not (Proto.write_json fd (Proto.request "watch" [ ("job", Json.String job) ])) then
          Error "daemon hung up"
        else
          let rec loop () =
            match read_line_fd ic with
            | None -> Error "daemon hung up mid-watch"
            | Some line -> (
              match Json.of_string line with
              | Error e -> Error ("unparseable stream line: " ^ e)
              | Ok j ->
                if Proto.is_event j then begin
                  on_event j;
                  loop ()
                end
                else if Proto.is_ok j then Ok j
                else Error (Proto.error_of j))
          in
          loop ())

let state_of_status j =
  Option.bind (Json.member "job_status" j) (fun js ->
      Option.bind (Json.member "state" js) Json.to_str)

(* Poll until the job reaches a terminal state.  Connection failures are
   retried until the timeout — the daemon may be mid-restart, which is a
   scenario we explicitly support, not an error. *)
let wait ?(timeout = 300.) ?(poll = 0.1) ~socket ~job () =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec loop () =
    if Unix.gettimeofday () > deadline then
      Error (Printf.sprintf "timed out after %gs waiting for %s" timeout job)
    else
      let next () =
        ignore (Unix.select [] [] [] poll);
        loop ()
      in
      match status ~job ~socket () with
      | Error _ -> next ()
      | Ok j -> (
        match state_of_status j with
        | Some ("done" | "failed" | "cancelled") -> Ok j
        | _ -> next ())
  in
  loop ()
