(** One-shot client calls against a running daemon.  Every call opens a
    fresh connection; [wait] retries refused connections until its
    timeout, so it rides out daemon restarts — the crash-recovery tests
    depend on that. *)

val request :
  socket:string -> Dce_campaign.Json.t -> (Dce_campaign.Json.t, string) result
(** Send one request line, return the terminal response ([Ok] when
    ["ok":true], [Error] with the daemon's message otherwise). *)

val submit : socket:string -> Job.spec -> (string, string) result
(** Returns the allocated job id. *)

val status : ?job:string -> socket:string -> unit -> (Dce_campaign.Json.t, string) result
val cancel : socket:string -> job:string -> (Dce_campaign.Json.t, string) result
val result_ : socket:string -> job:string -> (Dce_campaign.Json.t, string) result
val ping : socket:string -> (Dce_campaign.Json.t, string) result
val shutdown : socket:string -> (Dce_campaign.Json.t, string) result

val watch :
  socket:string ->
  job:string ->
  on_event:(Dce_campaign.Json.t -> unit) ->
  (Dce_campaign.Json.t, string) result
(** Stream progress/heartbeat events to [on_event] until the terminal
    response. *)

val state_of_status : Dce_campaign.Json.t -> string option
(** The ["job_status"."state"] field of a [status ~job] response. *)

val wait :
  ?timeout:float ->
  ?poll:float ->
  socket:string ->
  job:string ->
  unit ->
  (Dce_campaign.Json.t, string) result
(** Poll [status] until the job is done/failed/cancelled (default timeout
    300s, poll 100ms). *)
