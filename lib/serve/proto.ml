module Json = Dce_campaign.Json

(* The client/daemon wire protocol: one JSON object per line over a
   Unix-domain stream socket — the same dependency-free line-JSON codec the
   fabric's coordinator/worker protocol speaks.

   Requests:   {"op":"submit","spec":{...}}
               {"op":"status"} | {"op":"status","job":ID}
               {"op":"watch","job":ID}
               {"op":"cancel","job":ID}
               {"op":"result","job":ID}
               {"op":"ping"}
               {"op":"shutdown"}
   Responses:  {"ok":true, ...} | {"ok":false,"error":MSG}
   Watch additionally streams {"event":"progress"|"heartbeat"|...} lines
   before its final {"ok":true,"state":...} line. *)

let request name fields = Json.Obj (("op", Json.String name) :: fields)

let op_of j = Option.bind (Json.member "op" j) Json.to_str

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)
let err msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]

let is_ok j = match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> false

let error_of j =
  match Option.bind (Json.member "error" j) Json.to_str with
  | Some e -> e
  | None -> "daemon error"

(* a response line is final; event lines carry "event" and keep streaming *)
let is_event j = Json.member "event" j <> None

let write_json fd j =
  let b = Bytes.of_string (Json.to_string j ^ "\n") in
  try
    let rec wr off =
      if off < Bytes.length b then wr (off + Unix.write fd b off (Bytes.length b - off))
    in
    wr 0;
    true
  with Unix.Unix_error _ -> false
