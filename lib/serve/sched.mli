(** The fair-queueing policy, as a pure function (unit-testable without a
    daemon): round-robin across lanes, FIFO within a lane.

    Lanes are ordered by first appearance (lowest submission sequence); the
    rotation resumes after the lane served last, so a lane flooding the
    queue cannot starve the others — with two backlogged lanes, dispatch
    strictly alternates. *)

type candidate = {
  cd_id : string;
  cd_lane : string;
  cd_seq : int;  (** submission sequence (the numeric part of the job id) *)
}

val next : ?last:string -> candidate list -> candidate option
(** [next ?last ready]: the next candidate to dispatch among the ready
    ones, given the lane served last ([None] at startup or when the wheel
    should restart).  [None] only when [ready] is empty. *)
