module Json = Dce_campaign.Json
module Campaign = Dce_campaign
module Core = Dce_core
module C = Dce_compiler
module Fsx = Dce_support.Fsx

(* Executing one job inside the forked job child.  Each kind maps onto the
   corresponding campaign entry point with the journal routed into the
   job's Run_store directory, so a killed job (worker death, daemon crash,
   drain) resumes from its journal on the next attempt — and a hunt job's
   artifacts are byte-identical to `dce_hunt hunt --run-root` with the same
   parameters, because both sides share Corpus.report / Corpus.report_text
   and the same run-id derivation. *)

let chaos_plan spec =
  match spec.Job.sp_chaos with
  | None -> []
  | Some s -> (
    match Campaign.Chaos.of_string s with
    | Ok plan -> plan
    | Error msg -> failwith ("chaos: " ^ msg))

let campaign_of_kind = function
  | Job.Hunt -> "hunt"
  | Job.Triage -> "triage"
  | Job.Size_hunt -> "size-hunt"
  | Job.Level_hunt -> "level-hunt"
  | Job.Bisect -> "bisect"
  | Job.Reduce -> "reduce"

(* identical to the hunt CLI's derivation (checked and inject have no spec
   slot, so their extras are absent exactly as with the flags unset) *)
let run_id_of spec =
  match spec.Job.sp_kind with
  | Job.Reduce -> None
  | kind ->
    let extras = match spec.Job.sp_chaos with Some s -> [ "chaos:" ^ s ] | None -> [] in
    Some
      (Campaign.Run_store.run_id ~campaign:(campaign_of_kind kind) ~seed:spec.Job.sp_seed
         ~count:spec.Job.sp_count extras)

let run_dir ~runs_root spec =
  Option.map (fun id -> Campaign.Run_store.dir_of ~root:runs_root ~id) (run_id_of spec)

let journal_of ~runs_root spec = Option.map Campaign.Run_store.journal_path (run_dir ~runs_root spec)

(* the per-case Guard deadline: an explicit case budget wins; otherwise the
   whole-job deadline doubles as the cooperative per-case bound, so a
   runaway case trips Guard.Budget_exceeded before the daemon's SIGKILL
   backstop fires *)
let case_deadline spec =
  match (spec.Job.sp_case_deadline, spec.Job.sp_deadline) with
  | (Some _ as d), _ -> d
  | None, d -> d

type outcome = {
  oc_run_dir : string option;
  oc_cases : int;
  oc_resumed : int;
  oc_quarantined : int;
  oc_findings : int;
  oc_summary : string;
}

let outcome_to_json o =
  Json.Obj
    [
      ("run_dir", match o.oc_run_dir with Some d -> Json.String d | None -> Json.Null);
      ("cases", Json.Int o.oc_cases);
      ("resumed", Json.Int o.oc_resumed);
      ("quarantined", Json.Int o.oc_quarantined);
      ("findings", Json.Int o.oc_findings);
      ("summary", Json.String o.oc_summary);
    ]

let outcome_of_json j =
  {
    oc_run_dir = Option.bind (Json.member "run_dir" j) Json.to_str;
    oc_cases = Option.value ~default:0 (Option.bind (Json.member "cases" j) Json.to_int);
    oc_resumed = Option.value ~default:0 (Option.bind (Json.member "resumed" j) Json.to_int);
    oc_quarantined =
      Option.value ~default:0 (Option.bind (Json.member "quarantined" j) Json.to_int);
    oc_findings = Option.value ~default:0 (Option.bind (Json.member "findings" j) Json.to_int);
    oc_summary = Option.value ~default:"" (Option.bind (Json.member "summary" j) Json.to_str);
  }

let meta_of spec =
  Json.Obj
    [
      ("campaign", Json.String (campaign_of_kind spec.Job.sp_kind));
      ("seed", Json.Int spec.Job.sp_seed);
      ("count", Json.Int spec.Job.sp_count);
      ("checked", Json.Bool false);
      ("chaos", match spec.Job.sp_chaos with Some s -> Json.String s | None -> Json.Null);
    ]

let persist ~runs_root ~spec ~report_text ~metrics report =
  let id = Option.get (run_id_of spec) in
  let dir =
    Campaign.Run_store.write ~report_text ~root:runs_root ~id ~meta:(meta_of spec) ~metrics report
  in
  dir

let run_corpus ~runs_root ~workers ~jobs spec =
  let seed = spec.Job.sp_seed and count = spec.Job.sp_count in
  Campaign.Corpus.run
    ?journal:(journal_of ~runs_root spec)
    ?deadline:(case_deadline spec) ?step_budget:spec.Job.sp_step_budget
    ~retries:spec.Job.sp_retries ~chaos:(chaos_plan spec) ~workers ~jobs ~seed ~count ()

let execute_hunt ~runs_root ~workers ~jobs spec =
  let seed = spec.Job.sp_seed and count = spec.Job.sp_count in
  let c = run_corpus ~runs_root ~workers ~jobs spec in
  let report = Campaign.Corpus.report ~campaign:"hunt" ~seed ~count c in
  let dir =
    persist ~runs_root ~spec
      ~report_text:(Campaign.Corpus.report_text c)
      ~metrics:c.Campaign.Corpus.c_metrics report
  in
  let stats = Campaign.Corpus.stats c in
  {
    oc_run_dir = Some dir;
    oc_cases = count;
    oc_resumed = c.Campaign.Corpus.c_resumed;
    oc_quarantined = List.length c.Campaign.Corpus.c_quarantine;
    oc_findings = List.length stats.Dce_report.Stats.findings;
    oc_summary = Dce_report.Stats.prevalence stats;
  }

let execute_triage ~runs_root ~workers ~jobs spec =
  let seed = spec.Job.sp_seed and count = spec.Job.sp_count in
  let c = run_corpus ~runs_root ~workers ~jobs spec in
  let stats = Campaign.Corpus.stats c in
  let programs = Campaign.Corpus.instrumented_programs c in
  let reports =
    Dce_report.Triage.triage ~programs
      (stats.Dce_report.Stats.findings @ stats.Dce_report.Stats.regression_findings)
  in
  let report = Campaign.Corpus.report ~campaign:"triage" ~seed ~count c in
  let dir =
    persist ~runs_root ~spec
      ~report_text:(Dce_report.Triage.table5 reports)
      ~metrics:c.Campaign.Corpus.c_metrics report
  in
  {
    oc_run_dir = Some dir;
    oc_cases = count;
    oc_resumed = c.Campaign.Corpus.c_resumed;
    oc_quarantined = List.length c.Campaign.Corpus.c_quarantine;
    oc_findings = List.length reports;
    oc_summary = Printf.sprintf "%d deduplicated reports" (List.length reports);
  }

let execute_size ~runs_root ~workers ~jobs spec =
  let seed = spec.Job.sp_seed and count = spec.Job.sp_count in
  let s =
    Campaign.Oracle_campaign.run_size
      ?journal:(journal_of ~runs_root spec)
      ?deadline:(case_deadline spec) ?step_budget:spec.Job.sp_step_budget
      ~retries:spec.Job.sp_retries ~workers ~jobs ~seed ~count ()
  in
  let findings = Campaign.Oracle_campaign.size_findings s in
  (* fold the finding sizes into report rows so campaign-diff can compare
     two size runs cell by cell *)
  let sizes =
    List.concat_map
      (fun (i, f) ->
        match (f : Core.Differential.size_finding) with
        | Core.Differential.Size_cross { level; larger; larger_size; smaller; smaller_size } ->
          [
            { Campaign.Run_store.z_case = i; z_compiler = larger; z_level = level; z_size = larger_size };
            { Campaign.Run_store.z_case = i; z_compiler = smaller; z_level = level; z_size = smaller_size };
          ]
        | Core.Differential.Size_intra { compiler; os_size; o2_size } ->
          [
            { Campaign.Run_store.z_case = i; z_compiler = compiler; z_level = C.Level.Os; z_size = os_size };
            { Campaign.Run_store.z_case = i; z_compiler = compiler; z_level = C.Level.O2; z_size = o2_size };
          ])
      findings
  in
  let report =
    Campaign.Run_store.sort_report
      {
        Campaign.Run_store.r_campaign = "size-hunt";
        r_seed = seed;
        r_count = count;
        r_compilers = [ "gcc-sim"; "llvm-sim" ];
        r_misses = [];
        r_sizes = sizes;
        r_inversions = [];
        r_rejected = [];
        r_quarantined =
          List.map
            (fun q -> q.Campaign.Engine.q_case)
            s.Campaign.Oracle_campaign.s_quarantine;
      }
  in
  let dir =
    persist ~runs_root ~spec
      ~report_text:(Campaign.Oracle_campaign.size_report s)
      ~metrics:s.Campaign.Oracle_campaign.s_metrics report
  in
  {
    oc_run_dir = Some dir;
    oc_cases = count;
    oc_resumed = s.Campaign.Oracle_campaign.s_resumed;
    oc_quarantined = List.length s.Campaign.Oracle_campaign.s_quarantine;
    oc_findings = List.length findings;
    oc_summary = Printf.sprintf "%d size findings" (List.length findings);
  }

let execute_level ~runs_root ~workers ~jobs spec =
  let seed = spec.Job.sp_seed and count = spec.Job.sp_count in
  let t =
    Campaign.Oracle_campaign.run_inversion
      ?journal:(journal_of ~runs_root spec)
      ?deadline:(case_deadline spec) ?step_budget:spec.Job.sp_step_budget
      ~retries:spec.Job.sp_retries ~workers ~jobs ~seed ~count ()
  in
  let findings = Campaign.Oracle_campaign.inversion_findings t in
  let invs =
    List.map
      (fun (i, (f : Campaign.Oracle_campaign.inv_finding)) ->
        {
          Campaign.Run_store.v_case = i;
          v_compiler = f.Campaign.Oracle_campaign.if_compiler;
          v_marker = f.Campaign.Oracle_campaign.if_inversion.Core.Differential.iv_marker;
          v_low = f.Campaign.Oracle_campaign.if_inversion.Core.Differential.iv_low;
          v_high = f.Campaign.Oracle_campaign.if_inversion.Core.Differential.iv_high;
        })
      findings
  in
  let report =
    Campaign.Run_store.sort_report
      {
        Campaign.Run_store.r_campaign = "level-hunt";
        r_seed = seed;
        r_count = count;
        r_compilers = [ "gcc-sim"; "llvm-sim" ];
        r_misses = [];
        r_sizes = [];
        r_inversions = invs;
        r_rejected = [];
        r_quarantined =
          List.map
            (fun q -> q.Campaign.Engine.q_case)
            t.Campaign.Oracle_campaign.i_quarantine;
      }
  in
  let dir =
    persist ~runs_root ~spec
      ~report_text:(Campaign.Oracle_campaign.inversion_report t)
      ~metrics:t.Campaign.Oracle_campaign.i_metrics report
  in
  {
    oc_run_dir = Some dir;
    oc_cases = count;
    oc_resumed = t.Campaign.Oracle_campaign.i_resumed;
    oc_quarantined = List.length t.Campaign.Oracle_campaign.i_quarantine;
    oc_findings = List.length findings;
    oc_summary = Printf.sprintf "%d level inversions" (List.length findings);
  }

let execute_bisect ~runs_root ~workers ~jobs spec =
  let seed = spec.Job.sp_seed and count = spec.Job.sp_count in
  (* the corpus re-generates deterministically; the expensive bisection half
     journals into the run directory and resumes *)
  let corpus = Campaign.Corpus.run ~workers ~jobs ~seed ~count () in
  let b =
    Campaign.Bisect_campaign.run
      ?journal:(journal_of ~runs_root spec)
      ?deadline:(case_deadline spec) ?step_budget:spec.Job.sp_step_budget
      ~retries:spec.Job.sp_retries ~workers ~jobs corpus
  in
  let report = Campaign.Corpus.report ~campaign:"bisect" ~seed ~count corpus in
  let report_text =
    Campaign.Bisect_campaign.summary b ^ Campaign.Bisect_campaign.component_tables b
  in
  let dir =
    persist ~runs_root ~spec ~report_text ~metrics:b.Campaign.Bisect_campaign.b_metrics report
  in
  {
    oc_run_dir = Some dir;
    oc_cases = count;
    oc_resumed = b.Campaign.Bisect_campaign.b_resumed;
    oc_quarantined = List.length b.Campaign.Bisect_campaign.b_quarantine;
    oc_findings = 0;
    oc_summary = String.trim (Campaign.Bisect_campaign.summary b);
  }

let execute_reduce ~jobs spec =
  let source =
    match spec.Job.sp_source with
    | Some s -> s
    | None -> failwith "reduce job: spec carries no source"
  in
  let marker =
    match spec.Job.sp_marker with
    | Some m -> m
    | None -> failwith "reduce job: spec carries no marker"
  in
  let prog =
    match Dce_minic.Typecheck.check (Dce_minic.Parser.parse_program source) with
    | Ok p -> p
    | Error errs -> failwith (String.concat "\n" errs)
  in
  let prog =
    if Dce_minic.Ast.markers_of_program prog = [] then Core.Instrument.program prog else prog
  in
  let cfg compiler =
    { Core.Differential.compiler; level = C.Level.O3; version = None }
  in
  let predicate =
    Dce_reduce.Predicate.marker_diff ~compile_cache:true
      ~keep_missed_by:(cfg C.Gcc_sim.compiler) ~eliminated_by:(cfg C.Llvm_sim.compiler) ~marker ()
  in
  let result = Dce_reduce.Engine.reduce ~jobs ~predicate prog in
  {
    oc_run_dir = None;
    oc_cases = result.Dce_reduce.Engine.tests_run;
    oc_resumed = 0;
    oc_quarantined = 0;
    oc_findings = 1;
    oc_summary =
      Printf.sprintf "reduced in %d rounds (size %d -> %d)\n%s"
        result.Dce_reduce.Engine.rounds result.Dce_reduce.Engine.initial_size
        result.Dce_reduce.Engine.final_size
        (Dce_minic.Pretty.program_to_string result.Dce_reduce.Engine.program);
  }

let execute ~runs_root ~workers ~jobs spec =
  match spec.Job.sp_kind with
  | Job.Hunt -> execute_hunt ~runs_root ~workers ~jobs spec
  | Job.Triage -> execute_triage ~runs_root ~workers ~jobs spec
  | Job.Size_hunt -> execute_size ~runs_root ~workers ~jobs spec
  | Job.Level_hunt -> execute_level ~runs_root ~workers ~jobs spec
  | Job.Bisect -> execute_bisect ~runs_root ~workers ~jobs spec
  | Job.Reduce -> execute_reduce ~jobs spec
