(** Campaign jobs: the immutable request ({!spec}) and the crash-safe
    lifecycle fold.

    A job's lifecycle is an append-only JSONL state journal —
    [queued → running → done | failed | cancelled], with [requeued] edges
    for retry-with-backoff, drain, and daemon restart — written only by the
    daemon.  {!view_of_events} folds the journal into the current state;
    replaying it at startup is how a killed daemon resumes exactly where it
    stopped (the campaign journal under the job's run directory carries the
    finer per-case progress). *)

type kind = Hunt | Triage | Size_hunt | Level_hunt | Bisect | Reduce

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type spec = {
  sp_kind : kind;
  sp_seed : int;
  sp_count : int;
  sp_lane : string;  (** fair-queueing lane; round-robin across lanes *)
  sp_deadline : float option;  (** whole-attempt wall seconds, daemon-killed *)
  sp_case_deadline : float option;  (** per-case Guard deadline *)
  sp_step_budget : int option;  (** per-case Guard step budget *)
  sp_retries : int;  (** per-case transient retries inside the campaign *)
  sp_strikes : int;  (** attempts before quarantine (default 2: two strikes) *)
  sp_chaos : string option;  (** campaign chaos plan (hunt only) *)
  sp_source : string option;  (** reduce: the C source text *)
  sp_marker : int option;  (** reduce: marker to preserve *)
}

val default_spec : spec
(** Hunt, seed 20220228, count 50, lane ["default"], no budgets, two
    strikes. *)

val spec_to_json : spec -> Dce_campaign.Json.t
val spec_of_json : Dce_campaign.Json.t -> spec
(** Raises [Failure] on a missing/unknown kind; other fields default. *)

(** {1 Lifecycle events} *)

type event =
  | Queued
  | Running of int  (** child pid (= its process group after [setsid]) *)
  | Requeued of { rq_reason : string; rq_strike : bool; rq_not_before : float }
      (** back to the queue: a strike (worker death) with backoff gate, or a
          strike-free requeue (drain, daemon restart) *)
  | Done
  | Failed of string
  | Cancelled

val event_to_json : time:float -> event -> Dce_campaign.Json.t
val event_of_json : Dce_campaign.Json.t -> event option
(** [None] for an unknown/garbled record — skipped, never fatal. *)

type state = S_queued | S_running of int | S_done | S_failed of string | S_cancelled

val state_to_string : state -> string
val terminal : state -> bool

type view = {
  v_state : state;
  v_strikes : int;  (** strike requeues over the whole history *)
  v_not_before : float;  (** retry backoff gate (absolute time) *)
}

val view_of_events : event list -> view
(** Fold the state journal: last event wins for the state, strikes
    accumulate (so the two-strikes quarantine survives daemon restarts).
    An effective [S_running] state at load time means the previous daemon
    died mid-job — the caller requeues it. *)
