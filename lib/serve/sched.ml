(* Fair round-robin over lanes, FIFO within a lane — a pure function so the
   policy is unit-testable without a daemon.  Lanes are ordered by first
   appearance (lowest submission sequence); the scheduler resumes the
   rotation after the lane served last, so one lane flooding the queue
   cannot starve another: with lanes A and B both backlogged, dispatch
   alternates A B A B regardless of how many As were submitted first. *)

type candidate = { cd_id : string; cd_lane : string; cd_seq : int }

let lanes_of candidates =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc c ->
      if Hashtbl.mem seen c.cd_lane then acc
      else begin
        Hashtbl.add seen c.cd_lane ();
        c.cd_lane :: acc
      end)
    []
    (List.sort (fun a b -> compare a.cd_seq b.cd_seq) candidates)
  |> List.rev

let next ?last candidates =
  match candidates with
  | [] -> None
  | _ ->
    let lanes = lanes_of candidates in
    let n = List.length lanes in
    let start =
      match last with
      | None -> 0
      | Some l -> (
        let rec idx i = function
          | [] -> None
          | x :: _ when x = l -> Some i
          | _ :: rest -> idx (i + 1) rest
        in
        match idx 0 lanes with
        | Some i -> (i + 1) mod n
        | None -> 0 (* the last-served lane has drained: restart the wheel *))
    in
    let first_in lane =
      List.filter (fun c -> c.cd_lane = lane) candidates
      |> List.sort (fun a b -> compare a.cd_seq b.cd_seq)
      |> function
      | [] -> None
      | c :: _ -> Some c
    in
    let rec scan k =
      if k = n then None
      else
        let lane = List.nth lanes ((start + k) mod n) in
        match first_in lane with Some c -> Some c | None -> scan (k + 1)
    in
    scan 0
