module Json = Dce_campaign.Json
module Fsx = Dce_support.Fsx

(* The on-disk spool: <spool>/jobs/job-NNNNNN/ holding spec.json (atomic,
   written once), state.jsonl (append-only lifecycle journal, fsync per
   event), and the child-written outcome.json / error.json.  The daemon is
   the only writer of spec/state; the job child is the only writer of
   outcome/error — no file has two writers, so crash recovery never has to
   reconcile. *)

type t = { root : string; jobs : string }

let open_spool root =
  let jobs = Filename.concat root "jobs" in
  Fsx.mkdir_p jobs;
  { root; jobs }

let root t = t.root
let runs_root t = Filename.concat t.root "runs"
let job_dir t id = Filename.concat t.jobs id
let spec_path t id = Filename.concat (job_dir t id) "spec.json"
let state_path t id = Filename.concat (job_dir t id) "state.jsonl"
let outcome_path t id = Filename.concat (job_dir t id) "outcome.json"
let error_path t id = Filename.concat (job_dir t id) "error.txt"
let log_path t id = Filename.concat (job_dir t id) "log.txt"

let seq_of_id id =
  if String.length id > 4 && String.sub id 0 4 = "job-" then
    int_of_string_opt (String.sub id 4 (String.length id - 4))
  else None

let id_of_seq n = Printf.sprintf "job-%06d" n

let ids t =
  (match Sys.readdir t.jobs with exception Sys_error _ -> [||] | a -> a)
  |> Array.to_list
  |> List.filter_map (fun id -> Option.map (fun n -> (n, id)) (seq_of_id id))
  |> List.sort compare
  |> List.map snd

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* append one event line; a single O_APPEND write syscall plus fsync, so a
   crash can lose at most the event being written, never corrupt earlier
   ones — and the loader drops an unparsable tail line anyway *)
let append t id ~time ev =
  let line = Json.to_string (Job.event_to_json ~time ev) ^ "\n" in
  let fd =
    Unix.openfile (state_path t id) [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Bytes.of_string line in
      let rec wr off =
        if off < Bytes.length b then wr (off + Unix.write fd b off (Bytes.length b - off))
      in
      wr 0;
      try Unix.fsync fd with Unix.Unix_error _ -> ())

let submit t ~time spec =
  let next =
    List.fold_left (fun m id -> match seq_of_id id with Some n -> max m n | None -> m) 0 (ids t)
    + 1
  in
  let id = id_of_seq next in
  Fsx.mkdir_p (job_dir t id);
  Fsx.write_atomic (spec_path t id) (Json.to_string (Job.spec_to_json spec) ^ "\n");
  append t id ~time Job.Queued;
  id

let load_events t id =
  match read_file (state_path t id) with
  | exception Sys_error _ -> []
  | s ->
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           if String.trim line = "" then None
           else
             match Json.of_string line with
             | Ok j -> Job.event_of_json j
             | Error _ -> None (* torn tail or garbage: skip, never fatal *))

let load t id =
  match read_file (spec_path t id) with
  | exception Sys_error _ -> None
  | s -> (
    match Json.of_string (String.trim s) with
    | Error _ -> None
    | Ok j -> (
      match Job.spec_of_json j with
      | spec -> Some (spec, load_events t id)
      | exception Failure _ -> None))

let load_all t = List.filter_map (fun id -> Option.map (fun (s, e) -> (id, s, e)) (load t id)) (ids t)
