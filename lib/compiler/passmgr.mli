(** The pass manager: cached analyses, instrumented pass execution, and
    fixpoint round driving.

    This is the subsystem {!Pipeline} schedules passes through.  It owns

    - an {b analysis manager} caching {!Dce_opt.Meminfo.analyze} (whole
      program) and per-function predecessor maps / dominator trees, with
      invalidation driven by per-function change detection after every pass
      and by each pass's {!Dce_opt.Passinfo} declaration (an analysis a pass
      {e preserves} survives even when the pass changed the function);
    - an {b instrumentation layer} recording, per executed stage, the wall
      time, block/instruction deltas, whether the IR changed, and which
      markers the stage eliminated — the {!trace} that {!Dce_core.Diagnose}
      and [dce_hunt explain --trace] consume;
    - a {b fixpoint driver} that repeats a round of passes until a whole
      round leaves the IR unchanged (or a round budget is exhausted).

    Caching is observably transparent: a cache hit returns a result
    structurally identical to a fresh recomputation, so pipelines built on
    the manager emit bit-identical code to uncached execution. *)

module Ir = Dce_ir.Ir

(** {1 Checked mode and fault injection} *)

exception Ir_invalid of { pass : string; errors : string list }
(** Raised by the pipeline's checked mode when {!Dce_ir.Validate} rejects a
    pass's output: [pass] is the guilty stage label, [errors] the validator
    diagnostics.  The campaign engine quarantines it as a distinct
    [Ir_invalid] fault with per-pass attribution.  A printer is registered
    with [Printexc]. *)

val set_ir_hook : (string -> Ir.program -> Ir.program) option -> unit
(** Install (or clear) the calling domain's IR fault hook.  When set, the
    hook is applied to every executed pass's output program — label first —
    {e before} the validation check, so a corruption it plants is blamed on
    that pass.  This is the chaos harness's corrupt-IR injection point; it
    must only be armed together with checked mode, otherwise the corrupt
    program flows on undetected. *)

(** {1 Analysis cache counters} *)

type counters = {
  meminfo_hits : int;
  meminfo_misses : int;
  cfg_hits : int;
  cfg_misses : int;
  dom_hits : int;
  dom_misses : int;
}

val counters : unit -> counters
(** Process-wide totals since the last {!reset_counters}. *)

val reset_counters : unit -> unit

val hit_rate : counters -> float
(** Overall hits / (hits + misses), [0.] when nothing was requested. *)

(** {1 The analysis manager} *)

type t
(** Mutable: tracks the current program and the analyses computed for it. *)

val create : Ir.program -> t

val meminfo : t -> Dce_opt.Meminfo.t
(** Whole-program memory analysis of the manager's current program, cached
    until a pass reports a change. *)

val predecessors : t -> Ir.func -> Ir.label list Ir.Imap.t
(** Predecessor map of one function of the current program, cached per
    function name. *)

val dominators : t -> Ir.func -> Dce_ir.Dom.t

(** {1 Passes and stage records} *)

type pass = {
  p_info : Dce_opt.Passinfo.t;
  p_label : string;  (** display name; defaults to the registered name *)
  p_run : t -> Ir.program -> Ir.program;
}

val make_pass : ?label:string -> Dce_opt.Passinfo.t -> (t -> Ir.program -> Ir.program) -> pass

type stage_record = {
  sr_label : string;
  sr_round : int;  (** 1-based round within a fixpoint section, 0 outside *)
  sr_time : float;  (** wall-clock seconds spent in the pass *)
  sr_changed : bool;  (** the pass changed the IR structurally *)
  sr_blocks_before : int;
  sr_blocks_after : int;
  sr_instrs_before : int;
  sr_instrs_after : int;
  sr_markers_eliminated : int list;  (** sorted marker ids *)
}

type trace = stage_record list
(** In execution order.  Stages skipped by fixpoint early exit do not
    appear. *)

(** {1 Execution} *)

val run_pass :
  ?round:int ->
  ?check:(string -> Ir.program -> unit) ->
  t ->
  pass ->
  Ir.program ->
  Ir.program * stage_record
(** Runs one pass under the manager: times it, detects which functions
    changed, invalidates cached analyses accordingly (honoring the pass's
    [preserves] declaration), and records the stage.  [check] is called with
    the stage label and the post-stage program (the validation hook). *)

val run_fixpoint :
  ?check:(string -> Ir.program -> unit) ->
  max_rounds:int ->
  t ->
  pass list ->
  Ir.program ->
  Ir.program * trace
(** Repeats the round until it makes no change, at most [max_rounds] times.
    Running a round on IR it cannot change is observationally identical to
    the old fixed-count schedule, so early exit never alters the output. *)

(** {1 Trace rendering} *)

val trace_to_string : ?changed_only:bool -> trace -> string
(** A table with one line per stage: round, name, wall time, block and
    instruction deltas, markers eliminated.  [changed_only] (default false)
    drops no-op stages. *)

val markers_eliminated_by : trace -> marker:int -> stage_record option
(** The stage that eliminated the marker, if any stage did. *)

val attribution : trace -> (string * int list) list
(** Markers eliminated per stage label, in execution order, no-op stages
    omitted. *)
