(** Content-addressed memo tables for the compilation fast paths.

    A table maps a structural key to a computed value through the key's
    content hash.  Because the hash can collide, every lookup double-checks
    the candidate entry with the caller's [equal] — a hit is only reported
    for a structurally identical key, so memoized compilation is observably
    identical to fresh compilation (the same guarantee {!Passmgr} gives for
    analyses).  Tables are domain-safe: lookups and inserts are serialized
    by a mutex, while the (potentially expensive) compute runs outside it —
    two domains racing on the same missing key both compute, and the first
    insert wins. *)

type counters = {
  hits : int;        (** lookups answered from the table *)
  misses : int;      (** lookups that had to compute *)
  collisions : int;  (** misses whose hash bucket held only different keys *)
  entries : int;     (** distinct keys currently stored *)
}

type ('k, 'v) t

val create : hash:('k -> int) -> equal:('k -> 'k -> bool) -> unit -> ('k, 'v) t
(** [equal] must refine [hash]: equal keys must hash equal. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Return the memoized value for the key, computing and storing it on a
    miss.  The compute function runs without the table lock held; if another
    domain inserted the key meanwhile, the already-stored value is returned
    (values must be deterministic in the key, so the choice is unobservable). *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Probe without computing (counted as a hit or miss).  Callers that
    evaluate misses themselves — e.g. in a parallel batch — pair this with
    {!add}. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Store a value computed outside the table; a key already present is left
    unchanged (first insert wins, as in {!find_or_add}). *)

val counters : ('k, 'v) t -> counters

val clear : ('k, 'v) t -> unit
(** Drop all entries and zero the counters. *)
