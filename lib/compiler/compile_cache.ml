type counters = { hits : int; misses : int; collisions : int; entries : int }

type ('k, 'v) t = {
  lock : Mutex.t;
  table : (int, ('k * 'v) list) Hashtbl.t;
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  mutable hits : int;
  mutable misses : int;
  mutable collisions : int;
  mutable entries : int;
}

let create ~hash ~equal () =
  {
    lock = Mutex.create ();
    table = Hashtbl.create 256;
    hash;
    equal;
    hits = 0;
    misses = 0;
    collisions = 0;
    entries = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find_or_add t key compute =
  let h = t.hash key in
  let found =
    locked t (fun () ->
        let bucket = Option.value ~default:[] (Hashtbl.find_opt t.table h) in
        match List.find_opt (fun (k, _) -> t.equal k key) bucket with
        | Some (_, v) ->
          t.hits <- t.hits + 1;
          Some v
        | None ->
          t.misses <- t.misses + 1;
          if bucket <> [] then t.collisions <- t.collisions + 1;
          None)
  in
  match found with
  | Some v -> v
  | None ->
    let v = compute () in
    locked t (fun () ->
        let bucket = Option.value ~default:[] (Hashtbl.find_opt t.table h) in
        match List.find_opt (fun (k, _) -> t.equal k key) bucket with
        | Some (_, v') -> v' (* another domain won the race; use its value *)
        | None ->
          Hashtbl.replace t.table h ((key, v) :: bucket);
          t.entries <- t.entries + 1;
          v)

let find t key =
  let h = t.hash key in
  locked t (fun () ->
      let bucket = Option.value ~default:[] (Hashtbl.find_opt t.table h) in
      match List.find_opt (fun (k, _) -> t.equal k key) bucket with
      | Some (_, v) ->
        t.hits <- t.hits + 1;
        Some v
      | None ->
        t.misses <- t.misses + 1;
        if bucket <> [] then t.collisions <- t.collisions + 1;
        None)

let add t key v =
  let h = t.hash key in
  locked t (fun () ->
      let bucket = Option.value ~default:[] (Hashtbl.find_opt t.table h) in
      if not (List.exists (fun (k, _) -> t.equal k key) bucket) then begin
        Hashtbl.replace t.table h ((key, v) :: bucket);
        t.entries <- t.entries + 1
      end)

let counters t =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; collisions = t.collisions; entries = t.entries })

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0;
      t.collisions <- 0;
      t.entries <- 0)
