(** Optimization levels, matching the paper's five configurations. *)

type t = O0 | O1 | Os | O2 | O3

val all : t list
(** In the paper's order: [O0; O1; Os; O2; O3]. *)

val to_string : t -> string
(** ["-O0"] … ["-O3"]. *)

val of_string : string -> t option
(** Accepts ["O2"], ["-O2"], ["o2"], … *)

val rank : t -> int
(** Nominal strength as an integer: O0 = 0, O1 = 1, Os = 2, O2 = 3, O3 = 4.
    The level-inversion oracle compares ranks: a marker dead at a low rank
    but alive at a higher rank is an inversion. *)

val compare_strength : t -> t -> int
(** Orders levels by nominal strength (O0 < O1 < Os < O2 < O3). *)
