module Ir = Dce_ir.Ir
module Pi = Dce_opt.Passinfo

(* ------------------------------------------------------------------ *)
(* checked mode and fault injection                                    *)
(* ------------------------------------------------------------------ *)

exception Ir_invalid of { pass : string; errors : string list }

let () =
  Printexc.register_printer (function
    | Ir_invalid { pass; errors } ->
      Some
        (Printf.sprintf "pass %s produced invalid IR:\n%s" pass (String.concat "\n" errors))
    | _ -> None)

(* The ambient per-domain IR fault hook: applied to every pass's output
   program before the validation check, so an injected corruption is
   attributed to exactly the pass it was planted after — the same blame the
   checked mode would assign a real pass bug.  Per-domain (DLS) because
   campaign workers arm chaos plans independently. *)
let ir_hook_key : (string -> Ir.program -> Ir.program) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_ir_hook h = Domain.DLS.set ir_hook_key h

(* ------------------------------------------------------------------ *)
(* cache counters                                                      *)
(* ------------------------------------------------------------------ *)

type counters = {
  meminfo_hits : int;
  meminfo_misses : int;
  cfg_hits : int;
  cfg_misses : int;
  dom_hits : int;
  dom_misses : int;
}

(* atomics: campaign workers compile from several domains at once, and the
   process-wide totals must aggregate across all of them without losing
   increments *)
let c_meminfo_hits = Atomic.make 0
let c_meminfo_misses = Atomic.make 0
let c_cfg_hits = Atomic.make 0
let c_cfg_misses = Atomic.make 0
let c_dom_hits = Atomic.make 0
let c_dom_misses = Atomic.make 0

let bump c = Atomic.incr c

let counters () =
  {
    meminfo_hits = Atomic.get c_meminfo_hits;
    meminfo_misses = Atomic.get c_meminfo_misses;
    cfg_hits = Atomic.get c_cfg_hits;
    cfg_misses = Atomic.get c_cfg_misses;
    dom_hits = Atomic.get c_dom_hits;
    dom_misses = Atomic.get c_dom_misses;
  }

let reset_counters () =
  Atomic.set c_meminfo_hits 0;
  Atomic.set c_meminfo_misses 0;
  Atomic.set c_cfg_hits 0;
  Atomic.set c_cfg_misses 0;
  Atomic.set c_dom_hits 0;
  Atomic.set c_dom_misses 0

let hit_rate c =
  let hits = c.meminfo_hits + c.cfg_hits + c.dom_hits in
  let total = hits + c.meminfo_misses + c.cfg_misses + c.dom_misses in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

(* ------------------------------------------------------------------ *)
(* the analysis manager                                                *)
(* ------------------------------------------------------------------ *)

type t = {
  mutable cur : Ir.program;
  mutable cached_meminfo : Dce_opt.Meminfo.t option;
  preds : (string, Ir.label list Ir.Imap.t) Hashtbl.t;
  doms : (string, Dce_ir.Dom.t) Hashtbl.t;
}

let create prog =
  { cur = prog; cached_meminfo = None; preds = Hashtbl.create 8; doms = Hashtbl.create 8 }

let meminfo t =
  match t.cached_meminfo with
  | Some mi ->
    bump c_meminfo_hits;
    mi
  | None ->
    bump c_meminfo_misses;
    let mi = Dce_opt.Meminfo.analyze t.cur in
    t.cached_meminfo <- Some mi;
    mi

let predecessors t fn =
  match Hashtbl.find_opt t.preds fn.Ir.fn_name with
  | Some p ->
    bump c_cfg_hits;
    p
  | None ->
    bump c_cfg_misses;
    let p = Dce_ir.Cfg.predecessors fn in
    Hashtbl.replace t.preds fn.Ir.fn_name p;
    p

let dominators t fn =
  match Hashtbl.find_opt t.doms fn.Ir.fn_name with
  | Some d ->
    bump c_dom_hits;
    d
  | None ->
    bump c_dom_misses;
    let d = Dce_ir.Dom.compute fn in
    Hashtbl.replace t.doms fn.Ir.fn_name d;
    d

(* ------------------------------------------------------------------ *)
(* change detection and invalidation                                   *)
(* ------------------------------------------------------------------ *)

(* Which functions a pass changed.  [Structure] covers everything that makes
   name-keyed per-function caches unsafe wholesale: symbols, externs, or the
   function list itself changed. *)
type change = Unchanged | Funcs of string list | Structure

let diff_programs (before : Ir.program) (after : Ir.program) =
  if
    before.Ir.prog_syms <> after.Ir.prog_syms
    || before.Ir.prog_externs <> after.Ir.prog_externs
    || List.map (fun f -> f.Ir.fn_name) before.Ir.prog_funcs
       <> List.map (fun f -> f.Ir.fn_name) after.Ir.prog_funcs
  then Structure
  else begin
    let changed =
      List.fold_left2
        (fun acc fb fa -> if fb = fa then acc else fb.Ir.fn_name :: acc)
        [] before.Ir.prog_funcs after.Ir.prog_funcs
    in
    match changed with [] -> Unchanged | names -> Funcs names
  end

let invalidate t (info : Pi.t) = function
  | Unchanged -> ()
  | Structure ->
    if not (Pi.preserves info Pi.Meminfo) then t.cached_meminfo <- None;
    (* name-keyed caches cannot survive a change to the function set, even
       under a [preserves] declaration *)
    Hashtbl.reset t.preds;
    Hashtbl.reset t.doms
  | Funcs names ->
    if not (Pi.preserves info Pi.Meminfo) then t.cached_meminfo <- None;
    List.iter
      (fun n ->
        if not (Pi.preserves info Pi.Cfg) then Hashtbl.remove t.preds n;
        if not (Pi.preserves info Pi.Dominators) then Hashtbl.remove t.doms n)
      names

(* ------------------------------------------------------------------ *)
(* passes and instrumented execution                                   *)
(* ------------------------------------------------------------------ *)

type pass = {
  p_info : Pi.t;
  p_label : string;
  p_run : t -> Ir.program -> Ir.program;
}

let make_pass ?label info run =
  { p_info = info; p_label = Option.value ~default:info.Pi.pass_name label; p_run = run }

type stage_record = {
  sr_label : string;
  sr_round : int;
  sr_time : float;
  sr_changed : bool;
  sr_blocks_before : int;
  sr_blocks_after : int;
  sr_instrs_before : int;
  sr_instrs_after : int;
  sr_markers_eliminated : int list;
}

type trace = stage_record list

let marker_set prog =
  List.fold_left (fun s m -> Ir.Iset.add m s) Ir.Iset.empty (Ir.program_marker_ids prog)

let run_pass ?(round = 0) ?check t pass prog =
  (* supervision poll point: one per executed stage, so a fixpoint that
     never converges (or an unroll bomb inside one pass boundary) is cut by
     the ambient deadline/step budget between stages *)
  Dce_support.Guard.poll ~site:pass.p_label;
  t.cur <- prog;
  let markers_before = marker_set prog in
  let blocks_before = Ir.program_block_count prog in
  let instrs_before = Ir.program_instr_count prog in
  let t0 = Unix.gettimeofday () in
  let prog' = pass.p_run t prog in
  let dt = Unix.gettimeofday () -. t0 in
  let prog' =
    match Domain.DLS.get ir_hook_key with None -> prog' | Some f -> f pass.p_label prog'
  in
  (match check with Some f -> f pass.p_label prog' | None -> ());
  let diff = diff_programs prog prog' in
  invalidate t pass.p_info diff;
  let changed = diff <> Unchanged in
  (* keep the pre-pass value alive when nothing changed, so structurally
     identical programs stay physically shared across no-op stages *)
  let prog' = if changed then prog' else prog in
  t.cur <- prog';
  let record =
    {
      sr_label = pass.p_label;
      sr_round = round;
      sr_time = dt;
      sr_changed = changed;
      sr_blocks_before = blocks_before;
      sr_blocks_after = (if changed then Ir.program_block_count prog' else blocks_before);
      sr_instrs_before = instrs_before;
      sr_instrs_after = (if changed then Ir.program_instr_count prog' else instrs_before);
      sr_markers_eliminated =
        (if changed then Ir.Iset.elements (Ir.Iset.diff markers_before (marker_set prog'))
         else []);
    }
  in
  (prog', record)

let run_fixpoint ?check ~max_rounds t passes prog =
  let trace = ref [] in
  let rec go round prog =
    let prog, round_changed =
      List.fold_left
        (fun (prog, any) pass ->
          let prog, record = run_pass ~round ?check t pass prog in
          trace := record :: !trace;
          (prog, any || record.sr_changed))
        (prog, false) passes
    in
    (* a round that changed nothing cannot change anything next time either:
       every pass is a deterministic function of the program *)
    if round_changed && round < max_rounds then go (round + 1) prog else prog
  in
  let prog = if max_rounds <= 0 then prog else go 1 prog in
  (prog, List.rev !trace)

(* ------------------------------------------------------------------ *)
(* trace rendering and queries                                         *)
(* ------------------------------------------------------------------ *)

let markers_eliminated_by trace ~marker =
  List.find_opt (fun r -> List.mem marker r.sr_markers_eliminated) trace

let attribution trace =
  List.filter_map
    (fun r ->
      if r.sr_markers_eliminated = [] then None
      else Some (r.sr_label, r.sr_markers_eliminated))
    trace

let trace_to_string ?(changed_only = false) trace =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-5s %-18s %10s %14s %14s  %s\n" "round" "stage" "time" "blocks" "instrs"
       "markers eliminated");
  List.iter
    (fun r ->
      if r.sr_changed || not changed_only then
        Buffer.add_string buf
          (Printf.sprintf "%-5s %-18s %8.1fus %6d -> %-5d %6d -> %-5d  %s%s\n"
             (if r.sr_round = 0 then "-" else string_of_int r.sr_round)
             r.sr_label (r.sr_time *. 1e6) r.sr_blocks_before r.sr_blocks_after
             r.sr_instrs_before r.sr_instrs_after
             (match r.sr_markers_eliminated with
              | [] -> "-"
              | ms -> "{" ^ String.concat "," (List.map string_of_int ms) ^ "}")
             (if r.sr_changed then "" else " (no change)")))
    trace;
  Buffer.contents buf
