open Features
module L = Level

let at_least lvl f level feats = if L.compare_strength level lvl >= 0 then f feats else feats
let only lvl f level feats = if level = lvl then f feats else feats
let identity _level feats = feats

let c = Version.make_commit

let history =
  [
    c ~summary:"tree-ssa: add SCCP constant propagation pass"
      ~component:"Constant Propagation" ~files:[ "tree-ssa-ccp.c" ]
      (at_least L.O1 (fun f ->
           { f with sccp = true; addr_cmp = Dce_opt.Sccp.Cmp_full; opt_rounds = 2 }));
    c ~summary:"ipa: flow-insensitive global constant analysis"
      ~component:"Interprocedural Analyses" ~files:[ "ipa-reference.c" ]
      (at_least L.O1 (fun f -> { f with gva = Dce_opt.Gva.Flow_insensitive }));
    c ~summary:"tree-ssa: forward propagation and dominator CSE"
      ~component:"Common Subexpression Elimination"
      ~files:[ "tree-ssa-forwprop.c"; "tree-ssa-dom.c" ]
      (at_least L.O1 (fun f -> { f with gvn_cse = true }));
    c ~summary:"alias: symbol-based disambiguation" ~component:"Alias Analysis"
      ~files:[ "tree-ssa-alias.c" ]
      (at_least L.O1 (fun f -> { f with alias = Dce_opt.Alias.Basic }));
    c ~summary:"dom: store-to-load forwarding" ~component:"Value Numbering"
      ~files:[ "tree-ssa-dom.c"; "tree-ssa-sccvn.c" ]
      (at_least L.O1 (fun f -> { f with gvn_forward = true }));
    c ~summary:"match.pd: basic algebraic simplifications"
      ~component:"Peephole Optimizations" ~files:[ "match.pd" ]
      (at_least L.O1 (fun f -> { f with peephole_level = 1 }));
    c ~summary:"dse: block-local dead store elimination"
      ~component:"Dead Store Elimination" ~files:[ "tree-ssa-dse.c" ]
      (at_least L.O1 (fun f -> { f with dse_strength = 1 }));
    c ~summary:"ipa-inline: early inliner" ~component:"Inlining" ~files:[ "ipa-inline.c" ]
      (fun level f ->
        match level with
        | L.O0 -> f
        | L.O1 -> { f with inline_threshold = 8 }
        | L.Os | L.O2 | L.O3 -> { f with inline_threshold = 30 });
    c ~summary:"ipa: remove unreachable functions" ~component:"Interprocedural Analyses"
      ~files:[ "ipa.c" ]
      (at_least L.O1 (fun f -> { f with function_dce = true }));
    c ~summary:"ccp: flow-sensitive memory constant propagation"
      ~component:"Constant Propagation" ~files:[ "tree-ssa-ccp.c"; "tree-ssa-sccvn.c" ]
      (at_least L.O1 (fun f -> { f with memcp = true; memcp_edge_aware = true }));
    c ~summary:"ipa-modref: mod/ref call summaries" ~component:"Interprocedural Analyses"
      ~files:[ "ipa-modref.c" ]
      (at_least L.Os (fun f -> { f with call_summaries = true }));
    c ~summary:"pta: escape-based points-to disambiguation" ~component:"Alias Analysis"
      ~files:[ "tree-ssa-structalias.c" ]
      (at_least L.Os (fun f -> { f with alias = Dce_opt.Alias.Full }));
    c ~summary:"vrp: value range propagation pass" ~component:"Value Propagation"
      ~files:[ "tree-vrp.c" ]
      (at_least L.Os (fun f -> { f with vrp = true }));
    c ~summary:"ipa-cp: propagate constant arguments into static callees"
      ~component:"Interprocedural Analyses" ~files:[ "ipa-cp.c"; "ipa-prop.c" ]
      (at_least L.Os (fun f -> { f with ipa_cp = true }));
    c ~summary:"dom: forward jump threading" ~component:"Jump Threading"
      ~files:[ "tree-ssa-threadedge.c" ]
      (at_least L.Os (fun f -> { f with jump_thread = Dce_opt.Jump_thread.Conservative }));
    c ~summary:"cfg: cleanup of forwarder blocks" ~component:"Control Flow Graph Analysis"
      ~files:[ "tree-cfgcleanup.c" ]
      identity;
    c ~summary:"cunroll: complete unrolling of counted loops"
      ~component:"Loop Transformations" ~files:[ "tree-ssa-loop-ivcanon.c" ]
      (fun level f ->
        match level with
        | L.O0 | L.O1 | L.Os -> f
        | L.O2 -> { f with unroll_trip = 16 }
        | L.O3 -> { f with unroll_trip = 32 });
    c ~summary:"match.pd: extended simplification patterns"
      ~component:"Peephole Optimizations" ~files:[ "match.pd" ]
      (at_least L.O2 (fun f -> { f with peephole_level = 2 }));
    c ~summary:"ipa-inline: raise -O2 and -O3 limits" ~component:"Inlining"
      ~files:[ "ipa-inline.c" ]
      (fun level f ->
        match level with
        | L.O0 | L.O1 | L.Os -> f
        | L.O2 -> { f with inline_threshold = 60 }
        | L.O3 -> { f with inline_threshold = 120 });
    c ~summary:"passes: iterate late scalar cleanups" ~component:"Pass Management"
      ~files:[ "passes.def" ]
      (at_least L.O2 (fun f -> { f with opt_rounds = 3 }));
    c ~summary:"match.pd: fold comparisons through arithmetic"
      ~component:"Peephole Optimizations" ~files:[ "match.pd" ]
      (at_least L.O2 (fun f -> { f with peephole_level = 3 }));
    c ~summary:"c-family: diagnostics and parser cleanups" ~component:"C-family Frontend"
      ~files:[ "c-common.c"; "c-parser.c"; "c-decl.c"; "c-typeck.c" ]
      identity;
    c ~summary:"dse: rewrite on the RTL representation" ~component:"Dead Store Elimination"
      ~files:[ "dse.c" ]
      identity;
    (* ---- regressions (each manifests at -O3 only) ---- *)
    c ~summary:"vrp: cap the block budget for compile time at -O3"
      ~component:"Value Propagation" ~files:[ "tree-vrp.c"; "gimple-range.cc" ]
      (only L.O3 (fun f -> { f with vrp_block_limit = 120 }));
    c ~summary:"vect: enable loop vectorization of constant-stride stores at -O3"
      ~component:"Loop Transformations" ~files:[ "tree-vect-stmts.c"; "tree-vect-loop.c" ]
      (only L.O3 (fun f -> { f with vectorize = true }));
    c ~summary:"ipa: run unreachable-node removal before late IPA passes"
      ~component:"Pass Management" ~files:[ "passes.def"; "ipa.c" ]
      (only L.O3 (fun f -> { f with function_dce_early = true }));
    c ~summary:"pta: cap points-to set growth for compile time at -O3"
      ~component:"Alias Analysis" ~files:[ "tree-ssa-structalias.c" ]
      (only L.O3 (fun f -> { f with alias = Dce_opt.Alias.Basic }));
    c ~summary:"threader: replace forward threader with backward threader at -O3"
      ~component:"Jump Threading"
      ~files:[ "tree-ssa-threadbackward.c"; "tree-ssa-threadupdate.c"; "tree-ssa-threadedge.c" ]
      (only L.O3 (fun f ->
           { f with jump_thread = Dce_opt.Jump_thread.Aggressive; jt_phi_cleanup = false }));
    c ~summary:"i386: tuning table refresh" ~component:"Target Info" ~files:[ "i386.c" ]
      identity;
    c ~summary:"copy-prop: dominator-order worklist rewrite" ~component:"Copy Propagation"
      ~files:[ "tree-ssa-copy.c" ]
      identity;
    c ~summary:"ipa-sra: interprocedural scalar replacement plumbing"
      ~component:"Interprocedural SRoA" ~files:[ "ipa-sra.c" ]
      identity;
    (* ---- post-HEAD fixes (for the triage model; see paper Table 5) ---- *)
    c ~summary:"vrp: derive X != 0 from (X << Y) != 0" ~component:"Value Propagation"
      ~files:[ "tree-vrp.c" ] ~post_head:true
      (at_least L.Os (fun f -> { f with vrp_shift_rule = true }));
    c ~summary:"vect: use element-typed IVs for vectorized pointer accesses"
      ~component:"Loop Transformations" ~files:[ "tree-vect-stmts.c" ] ~post_head:true
      (only L.O3 (fun f -> { f with vectorize = false }));
    c ~summary:"threader: clean up leftover PHIs before threading dead paths"
      ~component:"Control Flow Graph Analysis"
      ~files:[ "tree-cfgcleanup.c"; "tree-ssa-threadupdate.c" ] ~post_head:true
      (only L.O3 (fun f -> { f with jt_phi_cleanup = true; jump_thread = Dce_opt.Jump_thread.Conservative }));
    c ~summary:"pta: restore escaped-only reachability precision at -O3"
      ~component:"Alias Analysis" ~files:[ "tree-ssa-structalias.c" ] ~post_head:true
      (only L.O3 (fun f -> { f with alias = Dce_opt.Alias.Full }));
    c ~summary:"ccp: fold loads from uniform constant arrays"
      ~component:"Constant Propagation" ~files:[ "tree-ssa-ccp.c" ] ~post_head:true
      (at_least L.O1 (fun f -> { f with uniform_arrays = true }));
  ]

let compiler = Compiler.create ~name:"gcc-sim" history
