(** The commit/version model of a simulated compiler.

    A compiler's behaviour at "version [v]" is its primitive base
    ({!Features.nothing} at every level) with the first [v] commits of its
    history applied in order.  Each commit edits the per-level feature matrix
    and carries the metadata the paper's Tables 3/4 aggregate: the component
    it belongs to and the source files it touches.

    Histories may extend {e past} HEAD: commits with [post_head = true] model
    upstream fixes that landed after the evaluation snapshot; the triage
    pipeline uses them to decide which reported bugs count as "fixed"
    (Table 5). *)

type commit = {
  id : string;          (** short hash, stable (derived from the summary) *)
  summary : string;
  component : string;   (** Tables 3/4 category *)
  files : string list;
  post_head : bool;
  apply : Level.t -> Features.t -> Features.t;
}

val make_commit :
  summary:string ->
  component:string ->
  files:string list ->
  ?post_head:bool ->
  (Level.t -> Features.t -> Features.t) ->
  commit

val head : commit list -> int
(** Index of HEAD: the number of non-[post_head] commits. *)

val validate_history : commit list -> unit
(** Fail loudly on duplicate commit ids.  Ids are a 44-bit truncated hash of
    the summary, so two distinct summaries can silently collide — which would
    mis-attribute bisection results and break journal commit-id resolution.
    Raises [Failure] naming both colliding summaries and the shared id;
    called by {!Compiler.create} at history-construction time. *)

val features_at : commit list -> int -> Level.t -> Features.t
(** [features_at history v level]: the matrix after the first [v] commits.
    [v] is clamped to the history length. *)
