(** The generic optimization pipeline, instantiated by a feature matrix and
    driven through the {!Passmgr} subsystem.

    Stage order (each stage gated/configured by {!Features.t}):

    + front-end simplification (the only thing [-O0] gets);
    + SSA construction;
    + {e early} unreachable-function removal, when [function_dce_early] —
      the Listing 9b pass-ordering flaw: functions that later folding will
      orphan are no longer deleted;
    + inlining, vectorizer model;
    + the main round — SCCP → MemCP → GVN → VRP → peephole → jump
      threading → DCE → SimplifyCFG — iterated to a fixpoint, bounded by
      [opt_rounds];
    + full unrolling, then another round (unrolled conditions need folding);
    + unswitching, then another round;
    + late DSE, late unreachable-function removal, final cleanup.

    Every pass executes under one {!Passmgr.t} per [run], so memory
    analysis, predecessors, and dominators are computed once and reused
    until a pass reports a change.  Rounds stop early once a whole round
    leaves the IR unchanged; because every pass is a deterministic function
    of the program, the skipped rounds could not have changed it either, so
    the output is identical to the historical fixed-count schedule —
    checked program-for-program by the [run_reference] differential test.

    [run] never changes observable behaviour: this is checked by the
    differential-interpretation tests and the qcheck property suite. *)

val run : ?validate:bool -> Features.t -> Dce_ir.Ir.program -> Dce_ir.Ir.program
(** [validate] (default false) re-checks IR well-formedness after every
    stage and raises [Failure] naming the offending stage. *)

val run_traced :
  ?validate:bool -> Features.t -> Dce_ir.Ir.program -> Dce_ir.Ir.program * Passmgr.trace
(** Like {!run}, also returning the per-stage trace: wall time, IR deltas,
    and the markers each stage eliminated.  Consumed by
    {!Dce_core.Diagnose} and [dce_hunt explain --trace]. *)

val run_reference : Features.t -> Dce_ir.Ir.program -> Dce_ir.Ir.program
(** The pre-pass-manager pipeline semantics, kept as a differential
    oracle: the full static schedule with no fixpoint early exit, and a
    fresh analysis computation for every stage (no caching).  Test-only;
    {!run} must produce an identical program. *)

val stage_names : Features.t -> string list
(** The maximal schedule [run] executes, in order (for [--explain] and
    tests).  Fixpoint sections appear fully expanded; an actual run may
    stop a round sequence early once the IR reaches a fixpoint. *)
