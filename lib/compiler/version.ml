type commit = {
  id : string;
  summary : string;
  component : string;
  files : string list;
  post_head : bool;
  apply : Level.t -> Features.t -> Features.t;
}

(* a stable pseudo-hash so commit ids look and behave like real ones *)
let pseudo_hash summary =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0xFFFFFFFFFFF) summary;
  Printf.sprintf "%011x" !h

let make_commit ~summary ~component ~files ?(post_head = false) apply =
  { id = pseudo_hash summary; summary; component; files; post_head; apply }

let head history =
  List.length (List.filter (fun c -> not c.post_head) history)

(* The id space is a 44-bit truncated djb2 of the summary, so distinct
   summaries *can* collide (e.g. "b0" and "aQ" hash identically).  A silent
   collision would mis-attribute bisection results and break journal
   commit-id resolution, so histories are checked for duplicates up front
   and fail loudly naming both colliding commits. *)
let validate_history history =
  let seen : (string, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun c ->
      match Hashtbl.find_opt seen c.id with
      | Some earlier when earlier <> c.summary ->
        failwith
          (Printf.sprintf
             "commit id collision: %S and %S both hash to %s — rewrite one summary" earlier
             c.summary c.id)
      | Some earlier ->
        failwith
          (Printf.sprintf "duplicate commit: summary %S (id %s) appears twice in the history"
             earlier c.id)
      | None -> Hashtbl.add seen c.id c.summary)
    history

let features_at history v level =
  let v = max 0 (min v (List.length history)) in
  let applied = Dce_support.Listx.take v history in
  List.fold_left (fun feats c -> c.apply level feats) Features.nothing applied
