open Dce_opt
module Ir = Dce_ir.Ir

(* ------------------------------------------------------------------ *)
(* pass instances                                                      *)
(* ------------------------------------------------------------------ *)

let per_func ?label info f =
  Passmgr.make_pass ?label info (fun _mgr prog -> Ir.map_func f prog)

let with_info ?label info f =
  Passmgr.make_pass ?label info (fun mgr prog ->
      let mi = Passmgr.meminfo mgr in
      Ir.map_func (f mi prog) prog)

let whole ?label info f = Passmgr.make_pass ?label info (fun _mgr prog -> f prog)

let sccp_pass (feats : Features.t) =
  with_info Sccp.info (fun info _prog fn ->
      Sccp.run
        {
          Sccp.addr_cmp = feats.addr_cmp;
          gva_mode = feats.gva;
          block_limit = feats.sccp_block_limit;
        }
        info fn)

let memcp_pass (feats : Features.t) =
  with_info Memcp.info (fun info _prog fn ->
      Memcp.run
        {
          Memcp.use_call_summaries = feats.call_summaries;
          edge_aware = feats.memcp_edge_aware;
          uniform_arrays = feats.uniform_arrays;
          precision = feats.alias;
          block_limit = feats.memcp_block_limit;
          cell_limit = 32;
        }
        info fn)

let gvn_pass (feats : Features.t) =
  Passmgr.make_pass Gvn.info (fun mgr prog ->
      let info = Passmgr.meminfo mgr in
      Ir.map_func
        (fun fn ->
          Gvn.run
            ~dom:(fun () -> Passmgr.dominators mgr fn)
            {
              Gvn.cse = feats.gvn_cse;
              load_forward = feats.gvn_forward;
              precision = feats.alias;
              use_call_summaries = feats.call_summaries;
            }
            info fn)
        prog)

let vrp_pass (feats : Features.t) =
  Passmgr.make_pass Vrp.info (fun mgr prog ->
      Ir.map_func
        (fun fn ->
          Vrp.run
            ~dom:(fun () -> Passmgr.dominators mgr fn)
            ~preds:(fun () -> Passmgr.predecessors mgr fn)
            {
              Vrp.shift_rule = feats.vrp_shift_rule;
              mod_singleton = feats.vrp_mod_singleton;
              block_limit = feats.vrp_block_limit;
            }
            fn)
        prog)

let peephole_pass (feats : Features.t) =
  per_func Peephole.info (fun fn -> Peephole.run { Peephole.level = feats.peephole_level } fn)

let jump_thread_pass (feats : Features.t) =
  per_func Jump_thread.info (fun fn ->
      Jump_thread.run
        {
          Jump_thread.mode = feats.jump_thread;
          phi_cleanup = feats.jt_phi_cleanup;
          max_threads = 16;
        }
        fn)

let dse_pass (feats : Features.t) =
  with_info Dse.info (fun info _prog fn ->
      Dse.run
        {
          Dse.strength = feats.dse_strength;
          precision = feats.alias;
          use_call_summaries = feats.call_summaries;
        }
        info ~is_main:(fn.Ir.fn_name = "main") fn)

let dce_pass = per_func Dce.info Dce.run
let simplify_pass = per_func Simplify_cfg.info Simplify_cfg.run

let promote_pass (feats : Features.t) =
  with_info Promote.info (fun info _prog fn ->
      Promote.run { Promote.precision = feats.alias } info fn)

let unroll_pass (feats : Features.t) =
  per_func Unroll.info (fun fn ->
      Unroll.run
        {
          Unroll.max_trip = feats.unroll_trip;
          max_body = 64;
          (* the growth budget scales with the trip threshold so the higher
             level can actually spend its larger limit on big functions *)
          max_growth = 200 + (30 * feats.unroll_trip);
        }
        fn)

let unswitch_pass (feats : Features.t) =
  with_info Unswitch.info (fun info _prog fn ->
      Unswitch.run
        { Unswitch.max_body = 80; max_clones = 4; licm_loads = true; precision = feats.alias }
        info fn)

let vectorize_pass = whole Vectorize.info (Vectorize.run Vectorize.default_config)
let function_dce_pass label = whole ~label Function_dce.info Function_dce.run
let ipa_cp_pass = whole Ipa_cp.info Ipa_cp.run

let inline_pass (feats : Features.t) =
  whole Inline.info
    (Inline.run
       {
         Inline.threshold = feats.inline_threshold;
         (* scale with the threshold: a level that inlines bigger callees
            also tolerates more caller growth *)
         growth_cap = 600 + (12 * feats.inline_threshold);
       })

(* SSA construction lives below the opt library, so it registers here *)
let ssa_info = Passinfo.v "ssa"
let ssa_pass = whole ssa_info Dce_ir.Ssa.construct_program

(* ------------------------------------------------------------------ *)
(* the schedule                                                        *)
(* ------------------------------------------------------------------ *)

(* A section is either a single pass or a pass-manager fixpoint round:
   the round repeats until it changes nothing, bounded by [max_rounds]
   (which keeps the output identical to the historical fixed-count
   schedule — see {!Passmgr.run_fixpoint}). *)
type section =
  | Stage of Passmgr.pass
  | Round of { max_rounds : int; passes : Passmgr.pass list }

let main_round feats =
  List.concat
    [
      (if feats.Features.sccp then [ sccp_pass feats ] else []);
      (if feats.Features.memcp then [ memcp_pass feats ] else []);
      (if feats.Features.gvn_cse || feats.Features.gvn_forward then [ gvn_pass feats ] else []);
      (* a second constant pass folds what forwarding just exposed, the way
         real pipelines interleave instcombine/SCCP with GVN *)
      (if feats.Features.sccp && (feats.Features.gvn_cse || feats.Features.gvn_forward) then
         [ sccp_pass feats ]
       else []);
      (if feats.Features.vrp then [ vrp_pass feats ] else []);
      (if feats.Features.peephole_level > 0 then [ peephole_pass feats ] else []);
      (if feats.Features.jump_thread <> Jump_thread.Off then [ jump_thread_pass feats ] else []);
      [ dce_pass; simplify_pass ];
    ]

let schedule (feats : Features.t) =
  if not feats.sccp then
    (* -O0: only the front end's trivial cleanup *)
    [ Stage simplify_pass ]
  else
    List.concat
      [
        [ Stage simplify_pass; Stage ssa_pass ];
        (if feats.function_dce && feats.function_dce_early then
           [ Stage (function_dce_pass "function-dce-early") ]
         else []);
        (if feats.ipa_cp then [ Stage ipa_cp_pass ] else []);
        (if feats.inline_threshold > 0 then
           (* functions orphaned by inlining itself are always cleaned up;
              only functions orphaned by later folding depend on where the
              unreachable-node removal sits (the Listing 9b regression) *)
           [ Stage (inline_pass feats) ]
           @ (if feats.function_dce then [ Stage (function_dce_pass "inline-cleanup") ] else [])
           @ [ Stage simplify_pass ]
         else []);
        [ Round { max_rounds = max 1 feats.opt_rounds; passes = main_round feats } ];
        (* promotion gives memory loop counters a register view; one folding
           round then materializes constant preheader seeds so the loop
           passes' trip counting can see them *)
        (if feats.unroll_trip > 0 || feats.vectorize then
           [ Stage (promote_pass feats); Round { max_rounds = 1; passes = main_round feats } ]
         else []);
        (* the vectorizer claims eligible loops before the unroller *)
        (if feats.vectorize then [ Stage vectorize_pass ] else []);
        (if feats.unroll_trip > 0 then
           [ Stage (unroll_pass feats); Round { max_rounds = 1; passes = main_round feats } ]
         else []);
        (if feats.unswitch then
           [ Stage (unswitch_pass feats); Round { max_rounds = 1; passes = main_round feats } ]
         else []);
        (* DSE runs once, late: module-level global analyses must not observe
           dead-store-cleaned code (that would "fix" the paper's Listing 6a) *)
        (if feats.dse_strength > 0 then
           [ Stage (dse_pass feats); Stage dce_pass; Stage simplify_pass ]
         else []);
        (if feats.function_dce && not feats.function_dce_early then
           [ Stage (function_dce_pass "function-dce") ]
         else []);
        [ Stage dce_pass; Stage simplify_pass ];
      ]

(* the maximal static expansion: what a run with no fixpoint early exit
   executes, and exactly the historical fixed-count stage list *)
let expand feats =
  List.concat_map
    (function
      | Stage p -> [ p ]
      | Round { max_rounds; passes } -> List.concat (List.init max_rounds (fun _ -> passes)))
    (schedule feats)

let stage_names feats = List.map (fun p -> p.Passmgr.p_label) (expand feats)

(* ------------------------------------------------------------------ *)
(* execution                                                           *)
(* ------------------------------------------------------------------ *)

let run_traced ?(validate = false) feats prog =
  let mgr = Passmgr.create prog in
  (* the IR is pre-SSA until the ssa stage runs; its own output is already
     in SSA form and is validated as such *)
  let mode = ref Dce_ir.Validate.Pre_ssa in
  let check label prog' =
    if label = "ssa" then mode := Dce_ir.Validate.Ssa;
    if validate then begin
      match Dce_ir.Validate.program !mode prog' with
      | Ok () -> ()
      | Error errs -> raise (Passmgr.Ir_invalid { pass = label; errors = errs })
    end
  in
  let trace = ref [] in
  let prog =
    List.fold_left
      (fun prog section ->
        match section with
        | Stage pass ->
          let prog, record = Passmgr.run_pass ~check mgr pass prog in
          trace := record :: !trace;
          prog
        | Round { max_rounds; passes } ->
          let prog, t = Passmgr.run_fixpoint ~check ~max_rounds mgr passes prog in
          trace := List.rev_append t !trace;
          prog)
      prog (schedule feats)
  in
  (prog, List.rev !trace)

let run ?validate feats prog = fst (run_traced ?validate feats prog)

let run_reference feats prog =
  (* the pre-pass-manager semantics, kept as a differential oracle: every
     scheduled stage runs (no fixpoint exit) and nothing is cached (a fresh
     manager per stage recomputes each analysis on the stage's input) *)
  List.fold_left
    (fun prog pass ->
      let mgr = Passmgr.create prog in
      fst (Passmgr.run_pass mgr pass prog))
    prog (expand feats)
