open Features
module L = Level

let at_least lvl f level feats = if L.compare_strength level lvl >= 0 then f feats else feats
let only lvl f level feats = if level = lvl then f feats else feats
let identity _level feats = feats

let c = Version.make_commit

let history =
  [
    c ~summary:"SCCP: sparse conditional constant propagation"
      ~component:"Value Propagation" ~files:[ "SCCP.cpp"; "SCCPSolver.cpp" ]
      (at_least L.O1 (fun f ->
           { f with sccp = true; addr_cmp = Dce_opt.Sccp.Cmp_zero_only; opt_rounds = 2 }));
    c ~summary:"GlobalOpt: fold loads of internal globals with constant stores"
      ~component:"Value Propagation" ~files:[ "GlobalOpt.cpp" ]
      (at_least L.O1 (fun f -> { f with gva = Dce_opt.Gva.Flow_sensitive_if_const }));
    c ~summary:"InstCombine: algebraic identity patterns"
      ~component:"Peephole Optimizations" ~files:[ "InstructionCombining.cpp" ]
      (at_least L.O1 (fun f -> { f with peephole_level = 1 }));
    c ~summary:"EarlyCSE: dominator-scoped common subexpression elimination"
      ~component:"Peephole Optimizations" ~files:[ "EarlyCSE.cpp" ]
      (at_least L.O1 (fun f -> { f with gvn_cse = true }));
    c ~summary:"BasicAA: object-based disambiguation rules" ~component:"Alias Analysis"
      ~files:[ "BasicAliasAnalysis.cpp" ]
      (at_least L.O1 (fun f -> { f with alias = Dce_opt.Alias.Basic }));
    c ~summary:"GVN: store-to-load forwarding via MemorySSA"
      ~component:"SSA Memory Analysis" ~files:[ "GVN.cpp"; "MemorySSA.cpp" ]
      (at_least L.O1 (fun f -> { f with gvn_forward = true }));
    c ~summary:"DSE: block-local dead store elimination" ~component:"SSA Memory Analysis"
      ~files:[ "DeadStoreElimination.cpp" ]
      (at_least L.O1 (fun f -> { f with dse_strength = 1 }));
    c ~summary:"Inliner: bottom-up inlining with a cost model" ~component:"Inlining"
      ~files:[ "InlineCost.cpp"; "Inliner.cpp" ]
      (fun level f ->
        match level with
        | L.O0 -> f
        | L.O1 -> { f with inline_threshold = 10 }
        | L.Os | L.O2 | L.O3 -> { f with inline_threshold = 40 });
    c ~summary:"GlobalDCE: drop unreferenced internal functions"
      ~component:"Pass Management" ~files:[ "GlobalDCE.cpp" ]
      (at_least L.O1 (fun f -> { f with function_dce = true }));
    c ~summary:"IPSCCP: conditional propagation through memory"
      ~component:"Value Propagation" ~files:[ "SCCPSolver.cpp"; "IPO/SCCP.cpp" ]
      (at_least L.O1 (fun f -> { f with memcp = true; memcp_edge_aware = true }));
    c ~summary:"FunctionAttrs: infer memory mod/ref attributes"
      ~component:"Alias Analysis" ~files:[ "FunctionAttrs.cpp" ]
      (at_least L.Os (fun f -> { f with call_summaries = true }));
    c ~summary:"BasicAA: capture tracking for internal globals"
      ~component:"Alias Analysis" ~files:[ "BasicAliasAnalysis.cpp"; "CaptureTracking.cpp" ]
      (at_least L.Os (fun f -> { f with alias = Dce_opt.Alias.Full }));
    c ~summary:"CVP: correlated value propagation with LVI ranges"
      ~component:"Value Constraint Analysis"
      ~files:[ "LazyValueInfo.cpp"; "CorrelatedValuePropagation.cpp" ]
      (at_least L.Os (fun f -> { f with vrp = true; vrp_shift_rule = true }));
    c ~summary:"JumpThreading: thread over constant phi conditions"
      ~component:"Jump Threading" ~files:[ "JumpThreading.cpp" ]
      (at_least L.Os (fun f -> { f with jump_thread = Dce_opt.Jump_thread.Conservative }));
    c ~summary:"IPSCCP: propagate constant arguments interprocedurally"
      ~component:"Value Propagation" ~files:[ "IPO/SCCP.cpp" ]
      (at_least L.Os (fun f -> { f with ipa_cp = true }));
    c ~summary:"DSE: eliminate stores past the end of object lifetime"
      ~component:"SSA Memory Analysis" ~files:[ "DeadStoreElimination.cpp" ]
      (at_least L.Os (fun f -> { f with dse_strength = 2 }));
    c ~summary:"GlobalOpt: fold loads from uniform constant arrays"
      ~component:"Value Propagation" ~files:[ "GlobalOpt.cpp" ]
      (at_least L.O1 (fun f -> { f with uniform_arrays = true }));
    c ~summary:"LoopUnroll: full unrolling of small trip-count loops"
      ~component:"Loop Transformations" ~files:[ "LoopUnrollPass.cpp" ]
      (fun level f ->
        match level with
        | L.O0 | L.O1 | L.Os -> f
        | L.O2 -> { f with unroll_trip = 16 }
        | L.O3 -> { f with unroll_trip = 32 });
    c ~summary:"InstCombine: extended icmp and bit-manipulation patterns"
      ~component:"Peephole Optimizations" ~files:[ "InstCombineCompares.cpp" ]
      (at_least L.O2 (fun f -> { f with peephole_level = 2 }));
    c ~summary:"Inliner: raise -O2/-O3 thresholds" ~component:"Inlining"
      ~files:[ "InlineCost.cpp" ]
      (fun level f ->
        match level with
        | L.O0 | L.O1 | L.Os -> f
        | L.O2 -> { f with inline_threshold = 80 }
        | L.O3 -> { f with inline_threshold = 150 });
    c ~summary:"NewPM: repeat the function simplification pipeline"
      ~component:"Pass Management" ~files:[ "PassBuilderPipelines.cpp" ]
      (at_least L.O2 (fun f -> { f with opt_rounds = 3 }));
    c ~summary:"InstCombine: fold comparisons through additions"
      ~component:"Peephole Optimizations" ~files:[ "InstCombineCompares.cpp" ]
      (at_least L.O2 (fun f -> { f with peephole_level = 3 }));
    c ~summary:"ValueTracking: known-bits refactor" ~component:"Value Tracking"
      ~files:[ "ValueTracking.cpp" ]
      identity;
    c ~summary:"InstSimplify: operand folding refactor"
      ~component:"Instruction Operand Folding" ~files:[ "InstructionSimplify.cpp" ]
      identity;
    c ~summary:"X86: scheduling model update" ~component:"Target Info"
      ~files:[ "X86SchedSkylakeServer.td"; "X86ISelLowering.cpp" ]
      identity;
    c ~summary:"Attributor: infer noalias on internal functions"
      ~component:"Alias Analysis" ~files:[ "Attributor.cpp" ]
      identity;
    (* ---- regressions (each manifests at -O3 only) ---- *)
    c ~summary:"LVI: cap the basic-block scan budget at -O3"
      ~component:"Value Constraint Analysis" ~files:[ "LazyValueInfo.cpp" ]
      (only L.O3 (fun f -> { f with vrp_block_limit = 240 }));
    c ~summary:"SimpleLoopUnswitch: enable non-trivial unswitching at -O3"
      ~component:"Loop Transformations" ~files:[ "SimpleLoopUnswitch.cpp" ]
      (only L.O3 (fun f -> { f with unswitch = true }));
    c ~summary:"NewPM: replace the late IPSCCP rerun with plain SCCP at -O3"
      ~component:"Pass Management" ~files:[ "PassBuilderPipelines.cpp" ]
      (only L.O3 (fun f -> { f with memcp_edge_aware = false }));
    c ~summary:"InstCombine: cap iteration budget for compile time at -O3"
      ~component:"Peephole Optimizations" ~files:[ "InstCombineInternal.h" ]
      (only L.O3 (fun f -> { f with peephole_level = 2 }));
    c ~summary:"JumpThreading: thread across blocks with side effects at -O3"
      ~component:"Jump Threading" ~files:[ "JumpThreading.cpp" ]
      (only L.O3 (fun f -> { f with jump_thread = Dce_opt.Jump_thread.Aggressive }));
    (* ---- post-HEAD fixes ---- *)
    c ~summary:"ConstantRange: fold rem of single-element ranges"
      ~component:"Value Constraint Analysis" ~files:[ "ConstantRange.cpp" ] ~post_head:true
      (at_least L.Os (fun f -> { f with vrp_mod_singleton = true }));
    c ~summary:"EarlyCSE: fold address comparisons at non-zero offsets"
      ~component:"Peephole Optimizations" ~files:[ "EarlyCSE.cpp" ] ~post_head:true
      (at_least L.O1 (fun f -> { f with addr_cmp = Dce_opt.Sccp.Cmp_full }));
  ]

let compiler = Compiler.create ~name:"llvm-sim" history
