type t = { name : string; history : Version.commit list }

let create ~name history =
  Version.validate_history history;
  { name; history }

let head t = Version.head t.history

let features t ?version level =
  let v = Option.value ~default:(head t) version in
  Version.features_at t.history v level

let compile_ir_traced t ?version ?(validate = false) level ast =
  let feats = features t ?version level in
  let ir = Dce_ir.Lower.program ast in
  Pipeline.run_traced ~validate feats ir

let compile_ir t ?version ?validate level ast =
  fst (compile_ir_traced t ?version ?validate level ast)

let compile_traced t ?version ?(validate = false) level ast =
  let ir, trace = compile_ir_traced t ?version ~validate level ast in
  (Dce_backend.Codegen.program ir, trace)

let compile t ?version ?validate level ast =
  fst (compile_traced t ?version ?validate level ast)

let surviving_markers_traced t ?version ?validate level ast =
  let asm, trace = compile_traced t ?version ?validate level ast in
  (Dce_backend.Asm.surviving_markers asm, trace)

let surviving_markers t ?version ?validate level ast =
  fst (surviving_markers_traced t ?version ?validate level ast)

(* ------------------------------------------------------------------ *)
(* observables: everything the oracles read off one compile            *)
(* ------------------------------------------------------------------ *)

type observables = {
  obs_markers : int list;
  obs_size : int;
}

let observe asm =
  { obs_markers = Dce_backend.Asm.surviving_markers asm; obs_size = Dce_backend.Asm.size asm }

let observables t ?version ?validate level ast =
  observe (compile t ?version ?validate level ast)

(* ------------------------------------------------------------------ *)
(* content-addressed compile caches (the reduction fast path)          *)
(* ------------------------------------------------------------------ *)

module Ast = Dce_minic.Ast
module Lower = Dce_ir.Lower

(* Per-function lowering memo.  Lowering a function reads nothing but the
   function itself and the global name→type environment (see {!Lower.func}),
   so (environment signature, function) is a complete key; candidates of a
   reduction share almost every function with their parent, so all but the
   edited function hit.  The cached IR is shared structurally — the IR is
   persistent data (symbols' init arrays are never written after build). *)
let lower_fn_cache :
    ((string * Ast.typ) list * Ast.func, Dce_ir.Ir.func * Dce_ir.Ir.symbol list) Compile_cache.t =
  Compile_cache.create
    ~hash:(fun (env_sig, fn) -> Hashtbl.hash env_sig lxor Ast.hash_func fn)
    ~equal:( = ) ()

let lower_cached ast =
  Lower.program_with
    ~lower_func:(fun env fn ->
      Compile_cache.find_or_add lower_fn_cache
        (Lower.env_signature env, fn)
        (fun () -> Lower.func env fn))
    ast

(* Whole-compile observables memo: (compiler, version, level, program) →
   surviving markers + assembly size.  The program itself is part of the key
   (compared structurally on every lookup), so a hash collision can never
   alias two different candidates.  The memo granularity is deliberately the
   whole program: per-function memoization of the *optimized* pipeline would
   be unsound under the cross-function passes (inline, ipa-cp, function-dce,
   whole-program memory analysis) — see DESIGN.md.  Storing all observables
   in one entry is what makes the size oracle free to run next to the marker
   oracle: whichever campaign compiles a (config, program) first, the sibling
   probes of the other oracle are cache hits. *)
let surviving_cache : (string * int * Level.t * Ast.program, observables) Compile_cache.t =
  Compile_cache.create
    ~hash:(fun (name, v, level, prog) ->
      Hashtbl.hash (name, v, level) lxor Ast.hash_program prog)
    ~equal:( = ) ()

let observables_cached t ?version level ast =
  let v = Option.value ~default:(head t) version in
  Compile_cache.find_or_add surviving_cache (t.name, v, level, ast) (fun () ->
      let feats = features t ~version:v level in
      let ir = Pipeline.run feats (lower_cached ast) in
      observe (Dce_backend.Codegen.program ir))

let surviving_markers_cached t ?version level ast =
  (observables_cached t ?version level ast).obs_markers

let asm_size_cached t ?version level ast = (observables_cached t ?version level ast).obs_size

type cache_stats = {
  cs_surviving : Compile_cache.counters;  (** whole-compile memo; misses = pipelines run *)
  cs_lower_fn : Compile_cache.counters;   (** per-function lowering memo *)
}

let cache_stats () =
  {
    cs_surviving = Compile_cache.counters surviving_cache;
    cs_lower_fn = Compile_cache.counters lower_fn_cache;
  }

let clear_caches () =
  Compile_cache.clear surviving_cache;
  Compile_cache.clear lower_fn_cache
