type t = { name : string; history : Version.commit list }

let head t = Version.head t.history

let features t ?version level =
  let v = Option.value ~default:(head t) version in
  Version.features_at t.history v level

let compile_ir_traced t ?version ?(validate = false) level ast =
  let feats = features t ?version level in
  let ir = Dce_ir.Lower.program ast in
  Pipeline.run_traced ~validate feats ir

let compile_ir t ?version ?validate level ast =
  fst (compile_ir_traced t ?version ?validate level ast)

let compile_traced t ?version ?(validate = false) level ast =
  let ir, trace = compile_ir_traced t ?version ~validate level ast in
  (Dce_backend.Codegen.program ir, trace)

let compile t ?version ?validate level ast =
  fst (compile_traced t ?version ?validate level ast)

let surviving_markers_traced t ?version level ast =
  let asm, trace = compile_traced t ?version level ast in
  (Dce_backend.Asm.surviving_markers asm, trace)

let surviving_markers t ?version level ast =
  fst (surviving_markers_traced t ?version level ast)
