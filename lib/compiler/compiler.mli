(** A simulated compiler: a name plus a commit history.

    Compilation is [MiniC AST → Lower → Pipeline(features) → Codegen], where
    the features come from the history at the requested version (HEAD by
    default).  This is the object the core library drives for differential
    testing and that {!Dce_bisect} binary-searches over. *)

type t = {
  name : string;
  history : Version.commit list;
}

val create : name:string -> Version.commit list -> t
(** The validated constructor: {!Version.validate_history} rejects histories
    with colliding commit ids (raising [Failure]) before the compiler can be
    used.  Both built-in compilers and every synthetic patched compiler
    ({!Dce_repair}) are built through this. *)

val head : t -> int
(** HEAD version index (post-HEAD fix commits excluded). *)

val features : t -> ?version:int -> Level.t -> Features.t

val compile_ir :
  t -> ?version:int -> ?validate:bool -> Level.t -> Dce_minic.Ast.program -> Dce_ir.Ir.program
(** Lower and optimize; the result is what {!Dce_backend.Codegen} consumes.
    [version] defaults to HEAD. *)

val compile :
  t -> ?version:int -> ?validate:bool -> Level.t -> Dce_minic.Ast.program -> Dce_backend.Asm.t
(** Full compilation to pseudo-assembly. *)

val surviving_markers :
  t -> ?version:int -> ?validate:bool -> Level.t -> Dce_minic.Ast.program -> int list
(** Convenience: marker ids still present in the generated assembly.
    [validate] (default false) runs {!Dce_ir.Validate} after every pass,
    raising {!Passmgr.Ir_invalid} on the first stage that breaks the IR. *)

(** {1 Traced variants}

    Same results as the functions above, plus the {!Pipeline} stage trace
    (per-stage wall time, IR deltas, markers eliminated). *)

val compile_ir_traced :
  t ->
  ?version:int ->
  ?validate:bool ->
  Level.t ->
  Dce_minic.Ast.program ->
  Dce_ir.Ir.program * Passmgr.trace

val compile_traced :
  t ->
  ?version:int ->
  ?validate:bool ->
  Level.t ->
  Dce_minic.Ast.program ->
  Dce_backend.Asm.t * Passmgr.trace

val surviving_markers_traced :
  t ->
  ?version:int ->
  ?validate:bool ->
  Level.t ->
  Dce_minic.Ast.program ->
  int list * Passmgr.trace

(** {1 Observables}

    Everything the oracles read off one compiled program.  The marker oracle
    consumes [obs_markers]; the code-size oracle consumes [obs_size]
    ({!Dce_backend.Asm.size} of the same assembly).  Bundling them means one
    compile — and one cache entry — answers both. *)

type observables = {
  obs_markers : int list;  (** surviving marker ids, deduplicated, sorted *)
  obs_size : int;  (** {!Dce_backend.Asm.size} of the generated assembly *)
}

val observables :
  t -> ?version:int -> ?validate:bool -> Level.t -> Dce_minic.Ast.program -> observables

(** {1 Content-addressed compile caching}

    The reduction engine's fast path: {!surviving_markers_cached} memoizes
    whole compiles keyed by [(compiler, version, level, program)] — the
    program compared structurally on every lookup, so hash collisions cannot
    alias two candidates — and lowers through a per-function memo keyed by
    [(global environment, function-body hash)], so candidates that touch one
    function re-lower only that function.  Results are bit-identical to
    {!surviving_markers} (memoized compilation is observably transparent,
    like the {!Passmgr} analysis cache).  Both caches are process-global,
    domain-safe, and shared across configurations and reductions. *)

val observables_cached : t -> ?version:int -> Level.t -> Dce_minic.Ast.program -> observables
(** Same result as {!observables}; a full pipeline executes only on a memo
    miss (counted in {!cache_stats}).  The memo stores the whole observable
    record, so a marker probe and a size probe of the same
    [(compiler, version, level, program)] share one compile — this is what
    lets a size campaign ride on the marker campaign's cache (and vice
    versa) for free. *)

val surviving_markers_cached :
  t -> ?version:int -> Level.t -> Dce_minic.Ast.program -> int list
(** [(observables_cached ...).obs_markers] — same result as
    {!surviving_markers}. *)

val asm_size_cached : t -> ?version:int -> Level.t -> Dce_minic.Ast.program -> int
(** [(observables_cached ...).obs_size] — {!Dce_backend.Asm.size} of the
    compiled program, through the same memo. *)

type cache_stats = {
  cs_surviving : Compile_cache.counters;
      (** whole-compile memo; [misses] counts full pipeline executions *)
  cs_lower_fn : Compile_cache.counters;  (** per-function lowering memo *)
}

val cache_stats : unit -> cache_stats
val clear_caches : unit -> unit
