module I = Dce_interp.Interp

(* Distinguished "not yet written" value for maybe-undefined registers.
   Allocated once at module init, so a physical-equality test identifies it;
   the symbol name contains '\000' so no real program symbol can collide. *)
let undef_sentinel = I.Vptr ("\000undef", min_int, 0)

type op =
  | Enter of int
      (* block entry: record (function, label) as executed; no tick *)
  | Chk of { slot : int; var : int }
      (* trap "read of undefined register" if the slot still holds the
         sentinel; emitted only for maybe-undefined registers; no tick *)
  | Mov of { dst : int; src : int }
  | Una of { dst : int; op : Dce_minic.Ops.unop; src : int }
  | Bin of { dst : int; op : Dce_minic.Ops.binop; a : int; b : int }
  | Lea of { dst : int; sym : string; fs : int; off : int }
      (* address of symbol element; [fs] indexes this function's frame
         symbols (instance of the current activation), -1 = instance 0 *)
  | Padd of { dst : int; p : int; off : int }
  | Ld of { dst : int; p : int }
  | St of { p : int; v : int }
  | Mark of int
  | CallF of { dst : int; fidx : int; args : int array }
      (* defined function by index; dst = -1 discards the result *)
  | CallX of { dst : int; name : string; args : int array }
      (* undefined external: records an event, returns the deterministic
         extern hash *)
  | PhiPar of { dsts : int array; rows : (int * int * int) array array }
      (* the leading phis of a block, evaluated in parallel against the
         incoming edge: all reads (one tick each), then all writes.  A row
         entry is (predecessor label, source slot, chk var or -1). *)
  | PhiSeq of { dst : int; row : (int * int * int) array }
      (* a non-leading phi, evaluated sequentially like any other
         instruction (the interpreter does the same) *)
  | Jmp of { target : int; label : int; from : int }
      (* target = -1: the label does not exist — record it, then trap *)
  | Br of { c : int; t : int; tl : int; f : int; fl : int; from : int }
  | Sw of { c : int; cases : (int * int * int) array; d : int; dl : int; from : int }
      (* cases are (value, target pc, target label), first match wins *)
  | Ret of int  (* slot, or -1 for "return 0" *)

(* Pooled slot constants: [Cptr] is a global address folded at compile
   time (instance 0 by definition — frame symbols never fold). *)
type const = Cint of int | Cptr of string * int

type frame_sym = { fs_name : string; fs_init : Dce_ir.Ir.init_cell array }

type cfunc = {
  cf_name : string;
  cf_params : int array;  (* parameter slots, bound at activation entry *)
  cf_code : op array;
  cf_entry_pc : int;      (* -1 if the entry block is missing *)
  cf_entry_label : int;
  cf_nslots : int;        (* frame size: registers + sentinels + constants *)
  cf_nregs : int;         (* slots produced by interval allocation alone *)
  cf_nvars : int;         (* virtual registers before allocation *)
  cf_consts : (int * const) array;  (* slot, pooled constant *)
  cf_sentinels : int array;      (* slots re-poisoned on pooled-frame reuse *)
  cf_frame_syms : frame_sym array;  (* this function's stack symbols, in
                                       program order *)
  cf_nlabels : int;       (* bound on block labels, sizes the executed-flags *)
  cf_max_phis : int;
}

type cprog = {
  cp_funcs : cfunc array;
  cp_main : int;  (* index into cp_funcs, -1 if absent *)
  cp_globals : (string * Dce_ir.Ir.init_cell array) array;
  (* uninterpreted initial cells, in program order; the VM converts them
     at run start exactly like the interpreter *)
  cp_src : Dce_ir.Ir.program;
}

let pp_op ppf op =
  let f fmt = Format.fprintf ppf fmt in
  let slots a = String.concat " " (List.map string_of_int (Array.to_list a)) in
  match op with
  | Enter l -> f "enter L%d" l
  | Chk { slot; var } -> f "chk s%d (%%%d)" slot var
  | Mov { dst; src } -> f "mov s%d <- s%d" dst src
  | Una { dst; op; src } -> f "una s%d <- %s s%d" dst (Dce_minic.Ops.unop_symbol op) src
  | Bin { dst; op; a; b } ->
    f "bin s%d <- s%d %s s%d" dst a (Dce_minic.Ops.binop_symbol op) b
  | Lea { dst; sym; fs; off } -> f "lea s%d <- &%s[s%d] (fs %d)" dst sym off fs
  | Padd { dst; p; off } -> f "padd s%d <- s%d + s%d" dst p off
  | Ld { dst; p } -> f "ld s%d <- [s%d]" dst p
  | St { p; v } -> f "st [s%d] <- s%d" p v
  | Mark n -> f "mark %d" n
  | CallF { dst; fidx; args } -> f "call s%d <- f%d(%s)" dst fidx (slots args)
  | CallX { dst; name; args } -> f "extern s%d <- %s(%s)" dst name (slots args)
  | PhiPar { dsts; rows } ->
    f "phis %s <-" (slots dsts);
    Array.iter
      (fun row ->
        f " [";
        Array.iter (fun (pl, s, chk) -> f " L%d:s%d%s" pl s (if chk >= 0 then "?" else "")) row;
        f " ]")
      rows
  | PhiSeq { dst; row } ->
    f "phi s%d <-" dst;
    Array.iter (fun (pl, s, chk) -> f " L%d:s%d%s" pl s (if chk >= 0 then "?" else "")) row
  | Jmp { target; label; from } -> f "jmp pc%d (L%d) from L%d" target label from
  | Br { c; t; tl; f = fpc; fl; from } ->
    f "br s%d ? pc%d (L%d) : pc%d (L%d) from L%d" c t tl fpc fl from
  | Sw { c; cases; d; dl; from } ->
    f "sw s%d [%s] else pc%d (L%d) from L%d" c
      (String.concat "; "
         (List.map (fun (k, pc, l) -> Printf.sprintf "%d->pc%d(L%d)" k pc l) (Array.to_list cases)))
      d dl from
  | Ret s -> if s < 0 then f "ret 0" else f "ret s%d" s

let disasm cf =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "%s: %d slots (%d reg, %d vars), entry pc%d@." cf.cf_name cf.cf_nslots
    cf.cf_nregs cf.cf_nvars cf.cf_entry_pc;
  Array.iteri (fun pc op -> Format.fprintf ppf "  %4d  %a@." pc pp_op op) cf.cf_code;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
