(** The shared executor interface: one entry point for ground-truth
    execution, selectable between the bytecode VM (default) and the
    tree-walking reference interpreter.

    Every execution consumer (ground truth, differential checks, value
    instrumentation, reduction predicates, campaign stages) calls {!run}
    instead of naming an executor; the backend is either passed explicitly
    or taken from the process-wide ambient default ([dce_hunt --exec
    vm|interp] sets it before any domain spawns).  Both backends produce
    the same {!Dce_interp.Interp.result} — same step accounting, same
    default fuel — so journals, metrics, and Guard budgets mean the same
    thing regardless of backend.

    The interpreter stays the semantic oracle: the VM's compiler and
    allocator are extra machinery that could drift, so the differential
    soak ([test/suite_exec.ml]) and any suspicious finding are checked
    against [Interp]. *)

type backend =
  | Vm      (** compile to {!Bc} bytecode and run {!Bc_vm} (default) *)
  | Interp  (** the reference {!Dce_interp.Interp} *)

val default : unit -> backend
(** The ambient default, readable from any domain. *)

val set_default : backend -> unit
(** Set the ambient default (done once by the CLI before workers spawn). *)

val name : backend -> string
val of_string : string -> backend option
val all_names : string list

val run :
  ?backend:backend -> ?fuel:int -> ?max_depth:int -> Dce_ir.Ir.program ->
  Dce_interp.Interp.result
(** Execute [main] under the given (or ambient) backend; defaults match
    {!Dce_interp.Interp.run}. *)

val results_equal : Dce_interp.Interp.result -> Dce_interp.Interp.result -> bool
(** Full value equality of results — outcome, events, marker and block
    sets, step count, final-global checksums.  Stronger than
    {!Dce_interp.Interp.equivalent}; this is the differential-soak bar. *)
