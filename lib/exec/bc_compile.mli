(** IR → bytecode compiler with lifetime-range register allocation.

    Per function: block-level liveness (leading-phi arguments count as uses
    on the incoming edge, phi results as definitions at block top), one
    lifetime interval per virtual register over a deterministic
    linearization of the blocks, then linear scan over whole intervals —
    registers whose lifetimes do not overlap share a frame slot.
    Constants are pooled into dedicated slots initialized once per fresh
    frame, so the hot loop never materializes immediates.

    Registers that may be read before any write (live into the entry block
    without being parameters — impossible for {!Dce_ir.Lower}ed programs,
    which zero-define every local) get dedicated sentinel slots guarded by
    explicit {!Bc.op.Chk} ops, preserving the interpreter's
    "read of undefined register" traps. *)

val compile_func : (string -> int option) -> Dce_ir.Ir.program -> Dce_ir.Ir.func -> Bc.cfunc
(** [compile_func fn_index_of prog fn]: [fn_index_of] resolves a call
    target to its index in the compiled program's function table (None =
    external). *)

val program : Dce_ir.Ir.program -> Bc.cprog
