module I = Dce_interp.Interp

type backend = Vm | Interp

let ambient = Atomic.make Vm
let default () = Atomic.get ambient
let set_default b = Atomic.set ambient b

let name = function Vm -> "vm" | Interp -> "interp"
let of_string = function "vm" -> Some Vm | "interp" -> Some Interp | _ -> None
let all_names = [ "vm"; "interp" ]

let run ?backend ?fuel ?max_depth prog =
  let b = match backend with Some b -> b | None -> Atomic.get ambient in
  match b with
  | Interp -> I.run ?fuel ?max_depth prog
  | Vm -> Bc_vm.run ?fuel ?max_depth (Bc_compile.program prog)

let results_equal (a : I.result) (b : I.result) =
  a.I.outcome = b.I.outcome && a.I.events = b.I.events
  && Dce_ir.Ir.Iset.equal a.I.executed_markers b.I.executed_markers
  && Dce_ir.Ir.Bset.equal a.I.executed_blocks b.I.executed_blocks
  && a.I.steps = b.I.steps
  && a.I.final_globals = b.I.final_globals
