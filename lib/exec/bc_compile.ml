open Dce_ir.Ir
module B = Bc

(* Compilation is per function: block-level liveness, lifetime intervals
   over a deterministic linearization, linear-scan slot assignment, then a
   single emission pass.  Liveness sets are word-packed bitsets over the
   virtual-register universe and blocks are indexed densely, so the
   fixpoint is cheap enough to run before every execution. *)

(* The interpreter evaluates only the *leading* phis of a block in
   parallel; any later phi is an ordinary sequential instruction.  The
   split here must match it exactly. *)
let split_phis instrs =
  let rec go acc = function
    | Def (v, Phi args) :: rest -> go ((v, args) :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go [] instrs

(* bitsets: 63 bits per word *)
let[@inline] bit_set b v =
  let w = v / 63 in
  Array.unsafe_set b w (Array.unsafe_get b w lor (1 lsl (v mod 63)))

let[@inline] bit_mem b v = Array.unsafe_get b (v / 63) land (1 lsl (v mod 63)) <> 0

(* iterate set bits (order-independent accumulation only) *)
let bit_iter f b =
  for w = 0 to Array.length b - 1 do
    let m = ref (Array.unsafe_get b w) in
    if !m <> 0 then begin
      let v = ref (w * 63) in
      while !m <> 0 do
        if !m land 1 <> 0 then f !v;
        m := !m lsr 1;
        incr v
      done
    end
  done

let compile_func (fn_index_of : string -> int option) (prog : program) (fn : func) : B.cfunc =
  let parts =
    List.map (fun (l, b) -> (l, split_phis b.b_instrs, b.b_term)) (Imap.bindings fn.fn_blocks)
  in
  (* ---- virtual-register universe ---- *)
  let nvars = ref fn.fn_next_var in
  let see v = if v >= !nvars then nvars := v + 1 in
  List.iter see fn.fn_params;
  List.iter
    (fun (_, (phis, body), term) ->
      List.iter
        (fun (v, args) ->
          see v;
          List.iter (function _, Reg u -> see u | _, Const _ -> ()) args)
        phis;
      List.iter
        (fun i ->
          List.iter see (uses_of_instr i);
          Option.iter see (def_of_instr i))
        body;
      List.iter see (uses_of_terminator term))
    parts;
  let nvars = !nvars in
  let nwords = (nvars / 63) + 1 in
  let mkset () = Array.make nwords 0 in
  (* ---- block-level liveness ----
     Leading-phi arguments are uses on the incoming edge: they belong to
     live-out of the predecessor, not live-in of the phi block. *)
  let blocks = Array.of_list parts in
  let nblocks = Array.length blocks in
  let bidx = Hashtbl.create (max nblocks 1) in
  Array.iteri (fun i (l, _, _) -> Hashtbl.replace bidx l i) blocks;
  let phi_defs = Array.init nblocks (fun _ -> mkset ()) in
  let edge_uses = Array.make nblocks [] in (* (pred label, var) list *)
  let gen_tbl = Array.init nblocks (fun _ -> mkset ()) in
  let kill_tbl = Array.init nblocks (fun _ -> mkset ()) in
  Array.iteri
    (fun i (_, (phis, body), term) ->
      let pdefs = phi_defs.(i) and gen = gen_tbl.(i) and defs = kill_tbl.(i) in
      List.iter (fun (v, _) -> bit_set pdefs v) phis;
      edge_uses.(i) <-
        List.concat_map
          (fun (_, args) ->
            List.filter_map (function pl, Reg u -> Some (pl, u) | _, Const _ -> None) args)
          phis;
      List.iter (fun (v, _) -> bit_set defs v) phis;
      let use_all vs = List.iter (fun v -> if not (bit_mem defs v) then bit_set gen v) vs in
      List.iter
        (fun ins ->
          use_all (uses_of_instr ins);
          match def_of_instr ins with Some v -> bit_set defs v | None -> ())
        body;
      use_all (uses_of_terminator term))
    blocks;
  (* per-block successors resolved to dense indices, with the phi-edge uses
     this block feeds into each; jumps to missing blocks contribute nothing *)
  let succs =
    Array.mapi
      (fun _ (l, _, term) ->
        List.filter_map
          (fun s ->
            match Hashtbl.find_opt bidx s with
            | None -> None
            | Some j ->
              let eu =
                List.filter_map (fun (pl, u) -> if pl = l then Some u else None) edge_uses.(j)
              in
              Some (j, Array.of_list eu))
          (successors term)
        |> Array.of_list)
      blocks
  in
  let preds = Array.make nblocks [] in
  Array.iteri (fun i sarr -> Array.iter (fun (j, _) -> preds.(j) <- i :: preds.(j)) sarr) succs;
  let live_in = Array.init nblocks (fun _ -> mkset ()) in
  let live_out = Array.init nblocks (fun _ -> mkset ()) in
  let tmp = mkset () in
  (* worklist, seeded in reverse block order (so the first drain walks the
     CFG roughly bottom-up); a block re-enters only when a successor's
     live-in grows *)
  let queued = Array.make nblocks true in
  let work = ref [] in
  for i = 0 to nblocks - 1 do
    work := i :: !work
  done;
  while !work <> [] do
    match !work with
    | [] -> ()
    | i :: rest ->
      work := rest;
      queued.(i) <- false;
      Array.fill tmp 0 nwords 0;
      Array.iter
        (fun (j, eu) ->
          let li = live_in.(j) and pd = phi_defs.(j) in
          for k = 0 to nwords - 1 do
            Array.unsafe_set tmp k
              (Array.unsafe_get tmp k
              lor (Array.unsafe_get li k land lnot (Array.unsafe_get pd k)))
          done;
          Array.iter (fun u -> bit_set tmp u) eu)
        succs.(i);
      Array.blit tmp 0 live_out.(i) 0 nwords;
      (* in = gen ∪ (out − kill) *)
      let g = gen_tbl.(i) and kl = kill_tbl.(i) and inn = live_in.(i) in
      let in_changed = ref false in
      for k = 0 to nwords - 1 do
        let t =
          Array.unsafe_get g k
          lor (Array.unsafe_get tmp k land lnot (Array.unsafe_get kl k))
        in
        if Array.unsafe_get inn k <> t then begin
          in_changed := true;
          Array.unsafe_set inn k t
        end
      done;
      if !in_changed then
        List.iter
          (fun p ->
            if not queued.(p) then begin
              queued.(p) <- true;
              work := p :: !work
            end)
          preds.(i)
  done;
  (* ---- lifetime intervals over the linearization ---- *)
  let istart = Array.make (max nvars 1) max_int in
  let iend = Array.make (max nvars 1) min_int in
  let extend v p =
    if p < istart.(v) then istart.(v) <- p;
    if p > iend.(v) then iend.(v) <- p
  in
  List.iter (fun p -> extend p (-1)) fn.fn_params; (* bound before any op *)
  let pos = ref 0 in
  Array.iteri
    (fun i (_, (phis, body), term) ->
      let bs = !pos in
      bit_iter (fun v -> extend v bs) live_in.(i);
      List.iter
        (fun (v, _) ->
          extend v !pos;
          incr pos)
        phis;
      List.iter
        (fun ins ->
          List.iter (fun u -> extend u !pos) (uses_of_instr ins);
          Option.iter (fun v -> extend v !pos) (def_of_instr ins);
          incr pos)
        body;
      List.iter (fun u -> extend u !pos) (uses_of_terminator term);
      let be = !pos in
      incr pos;
      bit_iter (fun v -> extend v be) live_out.(i))
    blocks;
  (* registers possibly read before any write: live into the entry without
     being parameters.  Lowered programs zero-define every local, so this
     is almost always empty — it exists so hand-built IR that reads an
     undefined register traps exactly like the interpreter. *)
  let is_undef = Array.make (max nvars 1) false in
  (match Hashtbl.find_opt bidx fn.fn_entry with
   | None -> ()
   | Some e -> bit_iter (fun v -> is_undef.(v) <- true) live_in.(e));
  List.iter (fun p -> is_undef.(p) <- false) fn.fn_params;
  let maybe_undef = ref [] in
  for v = nvars - 1 downto 0 do
    if is_undef.(v) then maybe_undef := v :: !maybe_undef
  done;
  let maybe_undef = !maybe_undef in (* ascending *)
  (* ---- linear scan over whole lifetime ranges ----
     Active intervals live in a binary min-heap on interval end; expired
     slots return to a free pool from which the smallest is always taken,
     so allocation is deterministic. *)
  let module S = Set.Make (Int) in
  let slots = Array.make (max nvars 1) (-1) in
  let next_slot = ref 0 in
  let free = ref S.empty in
  let hend = Array.make (max nvars 1) 0 in
  let hslot = Array.make (max nvars 1) 0 in
  let hsize = ref 0 in
  let heap_push e s =
    let i = ref !hsize in
    incr hsize;
    hend.(!i) <- e;
    hslot.(!i) <- s;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if hend.(p) > hend.(!i) then begin
        let te = hend.(p) and ts = hslot.(p) in
        hend.(p) <- hend.(!i);
        hslot.(p) <- hslot.(!i);
        hend.(!i) <- te;
        hslot.(!i) <- ts;
        i := p
      end
      else continue := false
    done
  in
  let heap_pop () =
    decr hsize;
    let n = !hsize in
    hend.(0) <- hend.(n);
    hslot.(0) <- hslot.(n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < n && hend.(l) < hend.(!m) then m := l;
      if r < n && hend.(r) < hend.(!m) then m := r;
      if !m <> !i then begin
        let te = hend.(!m) and ts = hslot.(!m) in
        hend.(!m) <- hend.(!i);
        hslot.(!m) <- hslot.(!i);
        hend.(!i) <- te;
        hslot.(!i) <- ts;
        i := !m
      end
      else continue := false
    done
  in
  let interval_vars =
    let acc = ref [] in
    for v = nvars - 1 downto 0 do
      if iend.(v) >= istart.(v) && not is_undef.(v) then acc := v :: !acc
    done;
    let arr = Array.of_list !acc in
    (* ties broken by var id, so the order is fully deterministic *)
    Array.sort
      (fun a b -> match compare istart.(a) istart.(b) with 0 -> compare a b | c -> c)
      arr;
    arr
  in
  Array.iter
    (fun v ->
      let s = istart.(v) in
      while !hsize > 0 && hend.(0) < s do
        free := S.add hslot.(0) !free;
        heap_pop ()
      done;
      let slot =
        match S.min_elt_opt !free with
        | Some sl ->
          free := S.remove sl !free;
          sl
        | None ->
          let sl = !next_slot in
          incr next_slot;
          sl
      in
      slots.(v) <- slot;
      heap_push iend.(v) slot)
    interval_vars;
  let nregs = !next_slot in
  let sentinels =
    List.map
      (fun v ->
        let sl = !next_slot in
        incr next_slot;
        slots.(v) <- sl;
        sl)
      maybe_undef
  in
  let slot_of_var v =
    let s = slots.(v) in
    if s >= 0 then s
    else begin
      (* only reachable from phi rows of never-taken edges *)
      let s = !next_slot in
      incr next_slot;
      slots.(v) <- s;
      s
    end
  in
  let const_tbl = Hashtbl.create 16 in
  let const_slots = ref [] in
  let slot_of_operand = function
    | Reg v -> slot_of_var v
    | Const n -> (
      match Hashtbl.find_opt const_tbl n with
      | Some s -> s
      | None ->
        let s = !next_slot in
        incr next_slot;
        Hashtbl.add const_tbl n s;
        const_slots := (s, B.Cint n) :: !const_slots;
        s)
  in
  (* global addresses with a constant offset are compile-time constants:
     the pointer is preboxed into a const slot and the Lea becomes a Mov
     (same single tick, same impossibility of trapping).  Frame symbols
     cannot fold — their instance is per-activation. *)
  let pconst_tbl = Hashtbl.create 4 in
  let slot_of_ptr_const sym k =
    match Hashtbl.find_opt pconst_tbl (sym, k) with
    | Some s -> s
    | None ->
      let s = !next_slot in
      incr next_slot;
      Hashtbl.add pconst_tbl (sym, k) s;
      const_slots := (s, B.Cptr (sym, k)) :: !const_slots;
      s
  in
  (* ---- emission, into a growing op array ---- *)
  let cap = ref 256 in
  let code = ref (Array.make !cap (B.Ret (-1))) in
  let npc = ref 0 in
  let emit op =
    if !npc = !cap then begin
      let bigger = Array.make (2 * !cap) (B.Ret (-1)) in
      Array.blit !code 0 bigger 0 !cap;
      code := bigger;
      cap := 2 * !cap
    end;
    !code.(!npc) <- op;
    incr npc
  in
  let block_pc = Hashtbl.create 16 in
  (* Chk ops guard reads of maybe-undefined registers; their order mirrors
     the interpreter's operand evaluation order (OCaml evaluates argument
     tuples right to left), so multi-operand traps pick the same register. *)
  let emit_chk = function
    | Reg v when v < nvars && is_undef.(v) -> emit (B.Chk { slot = slot_of_var v; var = v })
    | Reg _ | Const _ -> ()
  in
  let frame_syms =
    List.filter (fun s -> s.sym_kind = `Frame fn.fn_name) prog.prog_syms |> Array.of_list
  in
  let fs_index name =
    let r = ref (-1) in
    Array.iteri (fun i s -> if !r < 0 && s.sym_name = name then r := i) frame_syms;
    !r
  in
  let phi_row args =
    Array.of_list
      (List.map
         (fun (pl, op) ->
           match op with
           | Reg u -> (pl, slot_of_var u, if u < nvars && is_undef.(u) then u else -1)
           | Const n -> (pl, slot_of_operand (Const n), -1))
         args)
  in
  let emit_instr = function
    | Def (v, rv) -> (
      let dst = slot_of_var v in
      match rv with
      | Op a ->
        emit_chk a;
        emit (B.Mov { dst; src = slot_of_operand a })
      | Unary (op, a) ->
        emit_chk a;
        emit (B.Una { dst; op; src = slot_of_operand a })
      | Binary (op, a, b) ->
        emit_chk b;
        emit_chk a;
        emit (B.Bin { dst; op; a = slot_of_operand a; b = slot_of_operand b })
      | Addr (sym, off) -> (
        emit_chk off;
        let fs = fs_index sym in
        match off with
        | Const k when fs < 0 -> emit (B.Mov { dst; src = slot_of_ptr_const sym k })
        | _ -> emit (B.Lea { dst; sym; fs; off = slot_of_operand off }))
      | Ptradd (p, off) ->
        emit_chk off;
        emit_chk p;
        emit (B.Padd { dst; p = slot_of_operand p; off = slot_of_operand off })
      | Load p ->
        emit_chk p;
        emit (B.Ld { dst; p = slot_of_operand p })
      | Phi args -> emit (B.PhiSeq { dst; row = phi_row args }))
    | Store (p, v) ->
      emit_chk v;
      emit_chk p;
      emit (B.St { p = slot_of_operand p; v = slot_of_operand v })
    | Call (res, name, args) ->
      List.iter emit_chk args;
      let dst = match res with Some v -> slot_of_var v | None -> -1 in
      let args = Array.of_list (List.map slot_of_operand args) in
      (match fn_index_of name with
       | Some fidx -> emit (B.CallF { dst; fidx; args })
       | None -> emit (B.CallX { dst; name; args }))
    | Marker n -> emit (B.Mark n)
  in
  let emit_term l = function
    | Jmp t -> emit (B.Jmp { target = -2; label = t; from = l })
    | Br (c, lt, lf) ->
      emit_chk c;
      emit (B.Br { c = slot_of_operand c; t = -2; tl = lt; f = -2; fl = lf; from = l })
    | Switch (c, cases, d) ->
      emit_chk c;
      emit
        (B.Sw
           {
             c = slot_of_operand c;
             cases = Array.of_list (List.map (fun (k, t) -> (k, -2, t)) cases);
             d = -2;
             dl = d;
             from = l;
           })
    | Ret None -> emit (B.Ret (-1))
    | Ret (Some a) ->
      emit_chk a;
      emit (B.Ret (slot_of_operand a))
  in
  let max_phis = ref 0 in
  List.iter
    (fun (l, (phis, body), term) ->
      Hashtbl.replace block_pc l !npc;
      emit (B.Enter l);
      (match phis with
       | [] -> ()
       | _ ->
         if List.length phis > !max_phis then max_phis := List.length phis;
         let dsts = Array.of_list (List.map (fun (v, _) -> slot_of_var v) phis) in
         let rows = Array.of_list (List.map (fun (_, args) -> phi_row args) phis) in
         emit (B.PhiPar { dsts; rows }));
      List.iter emit_instr body;
      emit_term l term)
    parts;
  (* resolve label targets to pcs, in place; missing blocks become -1 so
     the VM can record-then-trap exactly like the interpreter *)
  let resolve l = match Hashtbl.find_opt block_pc l with Some pc -> pc | None -> -1 in
  let code = Array.sub !code 0 !npc in
  Array.iteri
    (fun i op ->
      match op with
      | B.Jmp j -> code.(i) <- B.Jmp { j with target = resolve j.label }
      | B.Br b -> code.(i) <- B.Br { b with t = resolve b.tl; f = resolve b.fl }
      | B.Sw s ->
        code.(i) <-
          B.Sw
            {
              s with
              cases = Array.map (fun (k, _, tl) -> (k, resolve tl, tl)) s.cases;
              d = resolve s.dl;
            }
      | _ -> ())
    code;
  let nslots = !next_slot in
  let nlabels =
    List.fold_left (fun acc (l, _, _) -> max acc (l + 1)) (max fn.fn_next_label 0) parts
  in
  {
    B.cf_name = fn.fn_name;
    cf_params = Array.of_list (List.map slot_of_var fn.fn_params);
    cf_code = code;
    cf_entry_pc = resolve fn.fn_entry;
    cf_entry_label = fn.fn_entry;
    cf_nslots = nslots;
    cf_nregs = nregs;
    cf_nvars = nvars;
    cf_consts = Array.of_list !const_slots;
    cf_sentinels = Array.of_list sentinels;
    cf_frame_syms =
      Array.map (fun s -> { B.fs_name = s.sym_name; fs_init = s.sym_init }) frame_syms;
    cf_nlabels = nlabels;
    cf_max_phis = !max_phis;
  }

let program (prog : program) : B.cprog =
  (* name resolution matches the interpreter's [Hashtbl.replace] function
     table: the last definition of a duplicated name wins *)
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i fn -> Hashtbl.replace tbl fn.fn_name i) prog.prog_funcs;
  let fn_index_of name = Hashtbl.find_opt tbl name in
  let funcs = Array.of_list (List.map (compile_func fn_index_of prog) prog.prog_funcs) in
  let globals =
    List.filter_map
      (fun s ->
        match s.sym_kind with
        | `Global -> Some (s.sym_name, s.sym_init)
        | `Frame _ -> None)
      prog.prog_syms
    |> Array.of_list
  in
  {
    B.cp_funcs = funcs;
    cp_main = (match fn_index_of "main" with Some i -> i | None -> -1);
    cp_globals = globals;
    cp_src = prog;
  }
