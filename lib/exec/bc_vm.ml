open Dce_ir.Ir
module I = Dce_interp.Interp
module Ops = Dce_minic.Ops
module B = Bc

(* Register files are struct-of-arrays with an unboxed integer plane:
   tag 0 means the register's value is [fi.(i)] (no heap object at all),
   tag 1 means it is [fv.(i)] — always a [Vptr] or the undef sentinel,
   since integer writes go through the int plane.  Integer arithmetic,
   moves, branches and phis — the bulk of any execution — touch only the
   tag and int planes, so the hot loop allocates nothing; boxed values
   appear only at genuine pointer operations, stores into memory, and
   call/return boundaries. *)
type frame = {
  ft : int array;       (* 0 = int plane valid, 1 = value plane valid *)
  fi : int array;
  fv : I.value array;
}

(* Per-run mutable state.  Executed blocks are flat flag arrays (one bool
   per label per function) collected into a Bset at the end; jumps to
   labels outside the flag range (only possible in hand-built IR) overflow
   into [extra_blocks]. *)
type rstate = {
  memory : (string * int, I.value array) Hashtbl.t;
  (* one-entry cache of the last memory lookup: loops hammer the same
     symbol, and hashing a (string, int) key per access is the single
     largest memory cost.  Entries are only ever *added* to [memory]
     (instance numbers are never reused), so the cache needs invalidating
     only when a frame symbol is deallocated. *)
  mutable mc_sym : string;
  mutable mc_inst : int; (* -1 = cache empty *)
  mutable mc_cells : I.value array;
  mutable fuel : int;
  mutable steps : int;
  mutable next_instance : int;
  mutable events : I.event list; (* reversed *)
  mutable markers : Iset.t;
  flags : bool array array;
  mutable extra_blocks : (string * int) list;
  pools : frame list array; (* per function: reusable frames *)
  (* parallel-phi read buffer, one entry per leading phi *)
  sct : int array;
  sci : int array;
  scv : I.value array;
  max_depth : int;
}

(* Exactly the interpreter's [tick]: count the step, burn fuel, then poll
   the ambient guard every 256 steps (distinct site so supervision records
   name the backend that tripped). *)
let[@inline] tick st =
  st.steps <- st.steps + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise I.Fuel_exn;
  if st.steps land 255 = 0 then Dce_support.Guard.poll ~site:"vm"

let find_cells st sym inst =
  if inst = st.mc_inst && (sym == st.mc_sym || String.equal sym st.mc_sym) then st.mc_cells
  else
    match Hashtbl.find_opt st.memory (sym, inst) with
    | None -> I.trap "dangling pointer to %s" sym
    | Some cells ->
      st.mc_sym <- sym;
      st.mc_inst <- inst;
      st.mc_cells <- cells;
      cells

let record st fidx (cf : B.cfunc) l =
  let fl = st.flags.(fidx) in
  if l >= 0 && l < Array.length fl then fl.(l) <- true
  else st.extra_blocks <- (cf.cf_name, l) :: st.extra_blocks

(* boxed view of a register (allocates for the int plane — used only at
   call boundaries, returns, and memory stores) *)
let[@inline] get fr i = if fr.ft.(i) = 0 then I.Vint fr.fi.(i) else fr.fv.(i)

let[@inline] set fr i v =
  match v with
  | I.Vint n ->
    fr.ft.(i) <- 0;
    fr.fi.(i) <- n
  | I.Vptr _ ->
    fr.ft.(i) <- 1;
    fr.fv.(i) <- v

let[@inline] blit fr src dst =
  let t = fr.ft.(src) in
  fr.ft.(dst) <- t;
  if t = 0 then fr.fi.(dst) <- fr.fi.(src) else fr.fv.(dst) <- fr.fv.(src)

let fresh_frame (cf : B.cfunc) =
  let n = cf.cf_nslots in
  let fr = { ft = Array.make n 0; fi = Array.make n 0; fv = Array.make n (I.Vint 0) } in
  Array.iter
    (fun (s, c) ->
      match c with
      | B.Cint k -> fr.fi.(s) <- k
      | B.Cptr (sym, k) ->
        fr.ft.(s) <- 1;
        fr.fv.(s) <- I.Vptr (sym, 0, k))
    cf.cf_consts;
  Array.iter
    (fun s ->
      fr.ft.(s) <- 1;
      fr.fv.(s) <- B.undef_sentinel)
    cf.cf_sentinels;
  fr

let acquire st fidx (cf : B.cfunc) =
  match st.pools.(fidx) with
  | fr :: rest ->
    st.pools.(fidx) <- rest;
    (* constants survive reuse (nothing writes their slots); only the
       undef sentinels must be re-poisoned per activation *)
    Array.iter
      (fun s ->
        fr.ft.(s) <- 1;
        fr.fv.(s) <- B.undef_sentinel)
      cf.cf_sentinels;
    fr
  | [] -> fresh_frame cf

let release st fidx fr = st.pools.(fidx) <- fr :: st.pools.(fidx)

(* Phi source against the incoming edge: the slot of the first row entry
   for the predecessor, after the interpreter's trap checks. *)
let phi_src (cf : B.cfunc) (fr : frame) p (row : (int * int * int) array) =
  if p < 0 then I.trap "phi in entry block";
  let n = Array.length row in
  let rec find i =
    if i >= n then I.trap "phi has no argument for predecessor L%d" p
    else
      let pl, s, chk = row.(i) in
      if pl = p then begin
        if chk >= 0 && fr.ft.(s) = 1 && fr.fv.(s) == B.undef_sentinel then
          I.trap "read of undefined register %%%d in %s" chk cf.cf_name;
        s
      end
      else find (i + 1)
  in
  find 0

let rec exec_fn st (cp : B.cprog) fidx depth (args : I.value array) : I.value =
  let cf = cp.cp_funcs.(fidx) in
  if depth > st.max_depth then I.trap "call depth exceeded in %s" cf.cf_name;
  (* frame symbols first, then the arity check — instance numbering and
     trap order match the interpreter *)
  let nsyms = Array.length cf.cf_frame_syms in
  let insts = Array.make nsyms 0 in
  for i = 0 to nsyms - 1 do
    let fs = cf.cf_frame_syms.(i) in
    let inst = st.next_instance in
    st.next_instance <- inst + 1;
    insts.(i) <- inst;
    Hashtbl.replace st.memory (fs.B.fs_name, inst) (Array.map I.value_of_cell fs.B.fs_init)
  done;
  if Array.length cf.cf_params <> Array.length args then
    I.trap "arity mismatch calling %s" cf.cf_name;
  if cf.cf_entry_pc < 0 then begin
    record st fidx cf cf.cf_entry_label;
    I.trap "jump to missing block L%d in %s" cf.cf_entry_label cf.cf_name
  end;
  let fr = acquire st fidx cf in
  Array.iteri (fun i p -> set fr p args.(i)) cf.cf_params;
  let ft = fr.ft and fi = fr.fi and fv = fr.fv in
  let code = cf.cf_code in
  let pc = ref cf.cf_entry_pc in
  let prev = ref (-1) in
  let retv = ref (I.Vint 0) in
  let running = ref true in
  let jump target label =
    if target >= 0 then pc := target
    else begin
      record st fidx cf label;
      I.trap "jump to missing block L%d in %s" label cf.cf_name
    end
  in
  while !running do
    match code.(!pc) with
    | B.Enter l ->
      record st fidx cf l;
      incr pc
    | B.Chk { slot; var } ->
      if ft.(slot) = 1 && fv.(slot) == B.undef_sentinel then
        I.trap "read of undefined register %%%d in %s" var cf.cf_name;
      incr pc
    | B.Mov { dst; src } ->
      tick st;
      blit fr src dst;
      incr pc
    | B.Una { dst; op; src } ->
      tick st;
      if ft.(src) = 0 then begin
        ft.(dst) <- 0;
        fi.(dst) <- Ops.eval_unop op fi.(src)
      end
      else set fr dst (I.eval_unary op fv.(src));
      incr pc
    | B.Bin { dst; op; a; b } ->
      tick st;
      if ft.(a) = 0 && ft.(b) = 0 then begin
        let r = Ops.eval_binop op fi.(a) fi.(b) in
        ft.(dst) <- 0;
        fi.(dst) <- r
      end
      else set fr dst (I.eval_binary op (get fr a) (get fr b));
      incr pc
    | B.Lea { dst; sym; fs; off } ->
      tick st;
      if ft.(off) = 0 then begin
        ft.(dst) <- 1;
        fv.(dst) <- I.Vptr (sym, (if fs >= 0 then insts.(fs) else 0), fi.(off))
      end
      else I.trap "pointer used as offset";
      incr pc
    | B.Padd { dst; p; off } ->
      tick st;
      if ft.(p) = 0 then I.trap "ptradd on non-pointer (null dereference?)"
      else if ft.(off) = 1 then I.trap "pointer used as offset"
      else
        (match fv.(p) with
         | I.Vptr (s, i, o) ->
           ft.(dst) <- 1;
           fv.(dst) <- I.Vptr (s, i, o + fi.(off))
         | I.Vint _ -> I.trap "ptradd on non-pointer (null dereference?)");
      incr pc
    | B.Ld { dst; p } ->
      tick st;
      if ft.(p) = 0 then I.trap "load through non-pointer value"
      else
        (match fv.(p) with
         | I.Vptr (sym, inst, off) ->
           let cells = find_cells st sym inst in
           if off < 0 || off >= Array.length cells then
             I.trap "out-of-bounds read of %s[%d]" sym off
           else set fr dst cells.(off)
         | I.Vint _ -> I.trap "load through non-pointer value");
      incr pc
    | B.St { p; v } ->
      tick st;
      if ft.(p) = 0 then I.trap "store through non-pointer value"
      else
        (match fv.(p) with
         | I.Vptr (sym, inst, off) ->
           let cells = find_cells st sym inst in
           if off < 0 || off >= Array.length cells then
             I.trap "out-of-bounds write of %s[%d]" sym off
           else cells.(off) <- get fr v
         | I.Vint _ -> I.trap "store through non-pointer value");
      incr pc
    | B.Mark n ->
      tick st;
      st.events <- I.Ev_marker n :: st.events;
      st.markers <- Iset.add n st.markers;
      incr pc
    | B.CallF { dst; fidx = callee; args } ->
      tick st;
      let argv = Array.map (fun s -> get fr s) args in
      let r = exec_fn st cp callee (depth + 1) argv in
      if dst >= 0 then set fr dst r;
      incr pc
    | B.CallX { dst; name; args } ->
      tick st;
      let argv = Array.to_list (Array.map (fun s -> get fr s) args) in
      st.events <- I.Ev_extern (name, argv) :: st.events;
      if dst >= 0 then begin
        ft.(dst) <- 0;
        fi.(dst) <- I.extern_result name argv
      end;
      incr pc
    | B.PhiPar { dsts; rows } ->
      (* all reads first (one tick each), then all writes — parallel
         assignment against the incoming edge *)
      let n = Array.length dsts in
      let p = !prev in
      for i = 0 to n - 1 do
        tick st;
        let s = phi_src cf fr p rows.(i) in
        let t = ft.(s) in
        st.sct.(i) <- t;
        if t = 0 then st.sci.(i) <- fi.(s) else st.scv.(i) <- fv.(s)
      done;
      for i = 0 to n - 1 do
        let d = dsts.(i) in
        let t = st.sct.(i) in
        ft.(d) <- t;
        if t = 0 then fi.(d) <- st.sci.(i) else fv.(d) <- st.scv.(i)
      done;
      incr pc
    | B.PhiSeq { dst; row } ->
      tick st;
      let s = phi_src cf fr !prev row in
      blit fr s dst;
      incr pc
    | B.Jmp { target; label; from } ->
      tick st;
      prev := from;
      jump target label
    | B.Br { c; t; tl; f; fl; from } ->
      tick st;
      let cond = if ft.(c) = 0 then fi.(c) <> 0 else I.truthy fv.(c) in
      prev := from;
      if cond then jump t tl else jump f fl
    | B.Sw { c; cases; d; dl; from } ->
      tick st;
      let k =
        if ft.(c) = 0 then fi.(c)
        else
          match fv.(c) with
          | I.Vptr _ -> I.trap "switch on pointer"
          | I.Vint k -> k
      in
      prev := from;
      let target = ref d and label = ref dl in
      (try
         Array.iter
           (fun (kv, tpc, tl) ->
             if kv = k then begin
               target := tpc;
               label := tl;
               raise Exit
             end)
           cases
       with Exit -> ());
      jump !target !label
    | B.Ret s ->
      tick st;
      retv := (if s >= 0 then get fr s else I.Vint 0);
      running := false
  done;
  (* deallocate this activation's frame symbols (pointers into them become
     dangling) and recycle the slot frame *)
  for i = 0 to nsyms - 1 do
    Hashtbl.remove st.memory (cf.cf_frame_syms.(i).B.fs_name, insts.(i))
  done;
  if nsyms > 0 then st.mc_inst <- -1;
  release st fidx fr;
  !retv

let run ?(fuel = 2_000_000) ?(max_depth = 256) (cp : B.cprog) : I.result =
  let nfuncs = Array.length cp.cp_funcs in
  let max_phis = Array.fold_left (fun acc cf -> max acc cf.B.cf_max_phis) 0 cp.cp_funcs in
  let nphis = max max_phis 1 in
  let st =
    {
      memory = Hashtbl.create 64;
      mc_sym = "";
      mc_inst = -1;
      mc_cells = [||];
      fuel;
      steps = 0;
      next_instance = 1;
      events = [];
      markers = Iset.empty;
      flags = Array.map (fun cf -> Array.make cf.B.cf_nlabels false) cp.cp_funcs;
      extra_blocks = [];
      pools = Array.make nfuncs [];
      sct = Array.make nphis 0;
      sci = Array.make nphis 0;
      scv = Array.make nphis (I.Vint 0);
      max_depth;
    }
  in
  Array.iter
    (fun (name, init) -> Hashtbl.replace st.memory (name, 0) (Array.map I.value_of_cell init))
    cp.cp_globals;
  let outcome =
    if cp.cp_main < 0 then I.Trap "no main function"
    else
      try
        match exec_fn st cp cp.cp_main 0 [||] with
        | I.Vint n -> I.Finished n
        | I.Vptr _ -> I.Finished 1
      with
      | I.Trap_exn m -> I.Trap m
      | I.Fuel_exn -> I.Out_of_fuel
  in
  let final_globals =
    List.filter_map
      (fun sym ->
        match sym.sym_kind with
        | `Global -> (
          match Hashtbl.find_opt st.memory (sym.sym_name, 0) with
          | Some cells -> Some (sym.sym_name, Array.map I.cell_checksum cells)
          | None -> None)
        | `Frame _ -> None)
      cp.cp_src.prog_syms
  in
  let executed_blocks =
    let acc = ref Bset.empty in
    Array.iteri
      (fun fi fl ->
        let name = cp.cp_funcs.(fi).B.cf_name in
        Array.iteri (fun l hit -> if hit then acc := Bset.add (name, l) !acc) fl)
      st.flags;
    List.iter (fun b -> acc := Bset.add b !acc) st.extra_blocks;
    !acc
  in
  {
    I.outcome;
    events = List.rev st.events;
    executed_markers = st.markers;
    executed_blocks;
    steps = st.steps;
    final_globals;
  }
