(** The register-bytecode ISA shared by {!Bc_compile} and {!Bc_vm}.

    A compiled function is a flat [op array]; every IR-level operation —
    phi, instruction, terminator — becomes exactly one costed op, so the
    VM's step accounting is unit-compatible with the tree-walking
    interpreter.  Two administrative op kinds ({!op.Enter}, {!op.Chk}) cost
    no step.  All value slots (virtual registers after lifetime allocation,
    plus pooled constants and undefined-register sentinels) live in one
    register frame per activation. *)

module I = Dce_interp.Interp

val undef_sentinel : I.value
(** Poison stored in the slots of maybe-undefined registers at activation
    entry; {!op.Chk} compares against it physically. *)

type op =
  | Enter of int
  | Chk of { slot : int; var : int }
  | Mov of { dst : int; src : int }
  | Una of { dst : int; op : Dce_minic.Ops.unop; src : int }
  | Bin of { dst : int; op : Dce_minic.Ops.binop; a : int; b : int }
  | Lea of { dst : int; sym : string; fs : int; off : int }
  | Padd of { dst : int; p : int; off : int }
  | Ld of { dst : int; p : int }
  | St of { p : int; v : int }
  | Mark of int
  | CallF of { dst : int; fidx : int; args : int array }
  | CallX of { dst : int; name : string; args : int array }
  | PhiPar of { dsts : int array; rows : (int * int * int) array array }
  | PhiSeq of { dst : int; row : (int * int * int) array }
  | Jmp of { target : int; label : int; from : int }
  | Br of { c : int; t : int; tl : int; f : int; fl : int; from : int }
  | Sw of { c : int; cases : (int * int * int) array; d : int; dl : int; from : int }
  | Ret of int

type const = Cint of int | Cptr of string * int
(** Pooled slot constants; [Cptr (sym, k)] is a folded global address
    (always instance 0). *)

type frame_sym = { fs_name : string; fs_init : Dce_ir.Ir.init_cell array }

type cfunc = {
  cf_name : string;
  cf_params : int array;
  cf_code : op array;
  cf_entry_pc : int;
  cf_entry_label : int;
  cf_nslots : int;
  cf_nregs : int;
  cf_nvars : int;
  cf_consts : (int * const) array;
  cf_sentinels : int array;
  cf_frame_syms : frame_sym array;
  cf_nlabels : int;
  cf_max_phis : int;
}

type cprog = {
  cp_funcs : cfunc array;
  cp_main : int;
  cp_globals : (string * Dce_ir.Ir.init_cell array) array;
  cp_src : Dce_ir.Ir.program;
}

val pp_op : Format.formatter -> op -> unit

val disasm : cfunc -> string
(** Human-readable listing of a compiled function, one op per line. *)
