(** Flat dispatch-loop virtual machine over {!Bc} bytecode.

    One `while` loop per activation over the function's [op array]:
    register slots are a plain [value array] (pooled and reused across
    activations of the same function), jumps assign the program counter,
    and every costed op runs the interpreter's exact tick — one step, one
    fuel unit, a {!Dce_support.Guard.poll} every 256 steps (site ["vm"]).
    Traps, instance numbering, event order, and the executed block/marker
    sets are bit-compatible with {!Dce_interp.Interp.run}; the differential
    soak in [test/suite_exec.ml] holds the two to full result equality. *)

val run : ?fuel:int -> ?max_depth:int -> Bc.cprog -> Dce_interp.Interp.result
(** Same contract and defaults as {!Dce_interp.Interp.run} (fuel 2,000,000,
    call depth 256). *)
