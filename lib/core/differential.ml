module Ir = Dce_ir.Ir
module C = Dce_compiler

type config = { compiler : C.Compiler.t; level : C.Level.t; version : int option }

let config_name cfg =
  let base = Printf.sprintf "%s %s" cfg.compiler.C.Compiler.name (C.Level.to_string cfg.level) in
  match cfg.version with
  | None -> base
  | Some v -> Printf.sprintf "%s @v%d" base v

let surviving_traced ?validate cfg prog =
  let markers, trace =
    C.Compiler.surviving_markers_traced cfg.compiler ?version:cfg.version ?validate cfg.level
      prog
  in
  (List.fold_left (fun s n -> Ir.Iset.add n s) Ir.Iset.empty markers, trace)

let surviving ?validate cfg prog = fst (surviving_traced ?validate cfg prog)

let missed ~surviving ~dead = Ir.Iset.inter surviving dead

(* Semantic oracle for pass pipelines: two IR programs are equivalent when
   their executions agree on outcome and event sequence.  Runs through the
   shared executor so the VM backend is exercised everywhere passes are
   checked; any divergence can be re-judged against the Interp backend. *)
let semantics_preserved ?exec a b =
  Dce_interp.Interp.equivalent
    (Dce_exec.Exec.run ?backend:exec a)
    (Dce_exec.Exec.run ?backend:exec b)

let semantics_preserved_strict ?exec a b =
  Dce_interp.Interp.equivalent_strict
    (Dce_exec.Exec.run ?backend:exec a)
    (Dce_exec.Exec.run ?backend:exec b)

let missed_vs_other ~mine ~other = Ir.Iset.diff mine other

(* ------------------------------------------------------------------ *)
(* code-size oracle                                                    *)
(* ------------------------------------------------------------------ *)

let asm_size ?(cache = true) cfg prog =
  if cache then C.Compiler.asm_size_cached cfg.compiler ?version:cfg.version cfg.level prog
  else (C.Compiler.observables cfg.compiler ?version:cfg.version cfg.level prog).obs_size

let default_size_levels = [ C.Level.Os; C.Level.O2 ]

let size_curve ?(cache = true) ?(levels = default_size_levels) ~compilers prog =
  List.concat_map
    (fun (c : C.Compiler.t) ->
      List.map
        (fun level ->
          let size =
            if cache then C.Compiler.asm_size_cached c level prog
            else (C.Compiler.observables c level prog).obs_size
          in
          (c.C.Compiler.name, level, size))
        levels)
    compilers

type size_finding =
  | Size_cross of {
      level : C.Level.t;
      larger : string;
      larger_size : int;
      smaller : string;
      smaller_size : int;
    }
  | Size_intra of { compiler : string; os_size : int; o2_size : int }

let size_ratio = function
  | Size_cross { larger_size; smaller_size; _ } ->
    float_of_int larger_size /. float_of_int (max 1 smaller_size)
  | Size_intra { os_size; o2_size; _ } -> float_of_int os_size /. float_of_int (max 1 o2_size)

let size_finding_to_string = function
  | Size_cross { level; larger; larger_size; smaller; smaller_size } ->
    Printf.sprintf "%s %s emits %d instrs where %s emits %d (%.2fx)" larger
      (C.Level.to_string level) larger_size smaller smaller_size
      (float_of_int larger_size /. float_of_int (max 1 smaller_size))
  | Size_intra { compiler; os_size; o2_size } ->
    Printf.sprintf "%s -Os emits %d instrs, its own -O2 emits %d" compiler os_size o2_size

(* The cross check fires at the threshold: [larger >= ratio * smaller] (and
   strictly larger, so ratio <= 1.0 cannot flag equal outputs).  The intra
   check is absolute — any [-Os] output strictly larger than the same
   compiler's [-O2] is a self-evident miss, no second compiler needed. *)
let size_findings_of ?(ratio = 1.25) curve =
  let names =
    List.fold_left (fun acc (n, _, _) -> if List.mem n acc then acc else n :: acc) [] curve
    |> List.rev
  in
  let at name level =
    List.find_map (fun (n, l, s) -> if n = name && l = level then Some s else None) curve
  in
  let exceeds a b = a > b && float_of_int a >= ratio *. float_of_int b in
  let cross =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if a >= b then None
            else
              match (at a C.Level.Os, at b C.Level.Os) with
              | Some sa, Some sb when exceeds sa sb ->
                Some
                  (Size_cross
                     {
                       level = C.Level.Os;
                       larger = a;
                       larger_size = sa;
                       smaller = b;
                       smaller_size = sb;
                     })
              | Some sa, Some sb when exceeds sb sa ->
                Some
                  (Size_cross
                     {
                       level = C.Level.Os;
                       larger = b;
                       larger_size = sb;
                       smaller = a;
                       smaller_size = sa;
                     })
              | _ -> None)
          names)
      names
  in
  let intra =
    List.filter_map
      (fun n ->
        match (at n C.Level.Os, at n C.Level.O2) with
        | Some os, Some o2 when os > o2 -> Some (Size_intra { compiler = n; os_size = os; o2_size = o2 })
        | _ -> None)
      names
  in
  cross @ intra

let size_findings ?cache ?ratio ?levels ~compilers prog =
  size_findings_of ?ratio (size_curve ?cache ?levels ~compilers prog)

(* ------------------------------------------------------------------ *)
(* level-inversion oracle                                              *)
(* ------------------------------------------------------------------ *)

type inversion = { iv_marker : int; iv_low : C.Level.t; iv_high : C.Level.t }

let inversion_to_string iv =
  Printf.sprintf "marker %d dead at %s, survives at %s" iv.iv_marker
    (C.Level.to_string iv.iv_low)
    (C.Level.to_string iv.iv_high)

let inversions ~dead per_level =
  Ir.Iset.fold
    (fun m acc ->
      let eliminating = List.filter (fun (_, s) -> not (Ir.Iset.mem m s)) per_level in
      let keeping = List.filter (fun (_, s) -> Ir.Iset.mem m s) per_level in
      let weakest_eliminating =
        List.fold_left
          (fun best (l, _) ->
            match best with
            | None -> Some l
            | Some b -> if C.Level.rank l < C.Level.rank b then Some l else Some b)
          None eliminating
      in
      let strongest_keeping =
        List.fold_left
          (fun best (l, _) ->
            match best with
            | None -> Some l
            | Some b -> if C.Level.rank l > C.Level.rank b then Some l else Some b)
          None keeping
      in
      match (weakest_eliminating, strongest_keeping) with
      | Some lo, Some hi when C.Level.rank lo < C.Level.rank hi ->
        { iv_marker = m; iv_low = lo; iv_high = hi } :: acc
      | _ -> acc)
    dead []
  |> List.sort (fun a b -> compare a.iv_marker b.iv_marker)

let inversions_of ?(cache = true) ?(levels = [ C.Level.O1; C.Level.Os; C.Level.O2; C.Level.O3 ])
    ~dead compiler prog =
  let per_level =
    List.map
      (fun level ->
        let markers =
          if cache then C.Compiler.surviving_markers_cached compiler level prog
          else C.Compiler.surviving_markers compiler level prog
        in
        (level, List.fold_left (fun s n -> Ir.Iset.add n s) Ir.Iset.empty markers))
      levels
  in
  inversions ~dead per_level
