module Ir = Dce_ir.Ir
module C = Dce_compiler

type config = { compiler : C.Compiler.t; level : C.Level.t; version : int option }

let config_name cfg =
  let base = Printf.sprintf "%s %s" cfg.compiler.C.Compiler.name (C.Level.to_string cfg.level) in
  match cfg.version with
  | None -> base
  | Some v -> Printf.sprintf "%s @v%d" base v

let surviving_traced ?validate cfg prog =
  let markers, trace =
    C.Compiler.surviving_markers_traced cfg.compiler ?version:cfg.version ?validate cfg.level
      prog
  in
  (List.fold_left (fun s n -> Ir.Iset.add n s) Ir.Iset.empty markers, trace)

let surviving ?validate cfg prog = fst (surviving_traced ?validate cfg prog)

let missed ~surviving ~dead = Ir.Iset.inter surviving dead

(* Semantic oracle for pass pipelines: two IR programs are equivalent when
   their executions agree on outcome and event sequence.  Runs through the
   shared executor so the VM backend is exercised everywhere passes are
   checked; any divergence can be re-judged against the Interp backend. *)
let semantics_preserved ?exec a b =
  Dce_interp.Interp.equivalent
    (Dce_exec.Exec.run ?backend:exec a)
    (Dce_exec.Exec.run ?backend:exec b)

let semantics_preserved_strict ?exec a b =
  Dce_interp.Interp.equivalent_strict
    (Dce_exec.Exec.run ?backend:exec a)
    (Dce_exec.Exec.run ?backend:exec b)

let missed_vs_other ~mine ~other = Ir.Iset.diff mine other
