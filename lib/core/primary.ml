open Dce_ir
open Ir

type context = { ctx_markers : Iset.t; ctx_entry : bool; ctx_live : bool }

let empty_ctx = { ctx_markers = Iset.empty; ctx_entry = false; ctx_live = false }

let union_ctx a b =
  {
    ctx_markers = Iset.union a.ctx_markers b.ctx_markers;
    ctx_entry = a.ctx_entry || b.ctx_entry;
    ctx_live = a.ctx_live || b.ctx_live;
  }

type t = {
  preds : Iset.t Imap.t;
  roots : Iset.t; (* markers with an always-live root in their context *)
  all : Iset.t;
}

(* per-block marker layout *)
type layout = { first : int option; last : int option }

let block_layout b =
  let ms = List.filter_map (function Marker n -> Some n | _ -> None) b.b_instrs in
  match ms with
  | [] -> { first = None; last = None }
  | _ -> { first = Some (List.hd ms); last = Some (List.nth ms (List.length ms - 1)) }

(* context flowing INTO block [l] of [fn]: markers, live markless blocks, or
   the entry, reachable backwards without crossing a marker block.  The walk
   is transparent only through DEAD markless blocks: a live markless
   predecessor is itself a satisfying "live pred" (paper §3.2). *)
let incoming_context block_live fn layouts preds_map l =
  let visited = Hashtbl.create 16 in
  let ctx = ref empty_ctx in
  let rec walk l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.replace visited l ();
      let ps = Option.value ~default:[] (Imap.find_opt l preds_map) in
      if l = fn.fn_entry then ctx := { !ctx with ctx_entry = true };
      List.iter
        (fun p ->
          match (Imap.find_opt p layouts : layout option) with
          | Some { last = Some m; _ } ->
            ctx := { !ctx with ctx_markers = Iset.add m !ctx.ctx_markers }
          | _ ->
            if block_live fn.fn_name p then ctx := { !ctx with ctx_live = true }
            else walk p)
        ps
    end
  in
  walk l;
  !ctx

(* context at instruction position (l, idx): the last marker earlier in the
   block, or the block's incoming context *)
let context_at block_live fn layouts preds_map l idx =
  let b = block fn l in
  let before = Dce_support.Listx.take idx b.b_instrs in
  let ms = List.filter_map (function Marker n -> Some n | _ -> None) before in
  match List.rev ms with
  | m :: _ -> { empty_ctx with ctx_markers = Iset.singleton m }
  | [] -> incoming_context block_live fn layouts preds_map l

let build ?(interprocedural = true) ?(live_blocks = Dce_ir.Ir.Bset.empty) prog =
  let block_live fn l = Dce_ir.Ir.Bset.mem (fn, l) live_blocks in
  let fn_data =
    List.map
      (fun fn ->
        let layouts = Imap.map block_layout fn.fn_blocks in
        let preds_map = Cfg.predecessors fn in
        (fn, layouts, preds_map))
      prog.prog_funcs
  in
  (* call sites per callee: (caller data, block, index) *)
  let callsites : (string, (func * layout Imap.t * label list Imap.t * label * int) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (fn, layouts, preds_map) ->
      Imap.iter
        (fun l b ->
          List.iteri
            (fun idx i ->
              match i with
              | Call (_, name, _) when find_func prog name <> None ->
                let entry =
                  match Hashtbl.find_opt callsites name with
                  | Some r -> r
                  | None ->
                    let r = ref [] in
                    Hashtbl.add callsites name r;
                    r
                in
                entry := (fn, layouts, preds_map, l, idx) :: !entry
              | _ -> ())
            b.b_instrs)
        fn.fn_blocks)
    fn_data;
  (* marker-level contexts, with function-entry expansion by fixpoint:
     entry_ctx f = union of contexts at f's call sites; main (and functions
     with no visible call sites) root *)
  let entry_ctx : (string, context * bool) Hashtbl.t = Hashtbl.create 16 in
  (* (context, is_root) *)
  List.iter
    (fun fn ->
      let is_root =
        (not interprocedural) || fn.fn_name = "main"
        || not (Hashtbl.mem callsites fn.fn_name)
      in
      Hashtbl.replace entry_ctx fn.fn_name (empty_ctx, is_root))
    prog.prog_funcs;
  let changed = ref (interprocedural : bool) in
  let rounds = ref 0 in
  while !changed && !rounds < 16 do
    changed := false;
    incr rounds;
    List.iter
      (fun fn ->
        match Hashtbl.find_opt callsites fn.fn_name with
        | None -> ()
        | Some sites ->
          let cur, root = Hashtbl.find entry_ctx fn.fn_name in
          let combined =
            List.fold_left
              (fun acc (caller, layouts, preds_map, l, idx) ->
                let ctx = context_at block_live caller layouts preds_map l idx in
                let acc = union_ctx acc { ctx with ctx_entry = false } in
                if ctx.ctx_entry then begin
                  (* the call site is reachable marker-free from the caller's
                     entry: inherit the caller's entry context *)
                  let caller_ctx, caller_root =
                    Option.value ~default:(empty_ctx, true)
                      (Hashtbl.find_opt entry_ctx caller.fn_name)
                  in
                  let acc = union_ctx acc caller_ctx in
                  if caller_root then { acc with ctx_entry = true } else acc
                end
                else acc)
              { cur with ctx_entry = false }
              !sites
          in
          let new_root = root || combined.ctx_entry in
          let combined = { combined with ctx_entry = false } in
          if
            (not (Iset.equal combined.ctx_markers cur.ctx_markers))
            || new_root <> root
          then begin
            Hashtbl.replace entry_ctx fn.fn_name (combined, new_root);
            changed := true
          end)
      prog.prog_funcs
  done;
  (* now compute each marker's predecessors *)
  let preds = ref Imap.empty in
  let roots = ref Iset.empty in
  let all = ref Iset.empty in
  List.iter
    (fun (fn, layouts, preds_map) ->
      Imap.iter
        (fun l b ->
          let prev_marker = ref None in
          List.iter
            (fun i ->
              match i with
              | Marker m ->
                all := Iset.add m !all;
                let ctx =
                  match !prev_marker with
                  | Some u -> { empty_ctx with ctx_markers = Iset.singleton u }
                  | None -> incoming_context block_live fn layouts preds_map l
                in
                let ctx =
                  if ctx.ctx_entry then begin
                    let fctx, froot =
                      Option.value ~default:(empty_ctx, true)
                        (Hashtbl.find_opt entry_ctx fn.fn_name)
                    in
                    let merged = union_ctx { ctx with ctx_entry = false } fctx in
                    if froot then begin
                      roots := Iset.add m !roots;
                      merged
                    end
                    else merged
                  end
                  else ctx
                in
                if ctx.ctx_live then roots := Iset.add m !roots;
                preds := Imap.add m ctx.ctx_markers !preds;
                prev_marker := Some m
              | _ -> ())
            b.b_instrs)
        fn.fn_blocks)
    fn_data;
  { preds = !preds; roots = !roots; all = !all }

let predecessors t m = Option.value ~default:Iset.empty (Imap.find_opt m t.preds)

let has_root_context t m = Iset.mem m t.roots

let markers t = t.all

let primary_missed t ~alive ~missed =
  Iset.filter
    (fun m ->
      let ps = predecessors t m in
      Iset.for_all (fun u -> Iset.mem u alive || not (Iset.mem u missed)) ps)
    missed
