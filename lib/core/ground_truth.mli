(** Ground truth by execution (paper §4.1).

    MiniC test programs are deterministic and input-free, so dead code
    observed during one execution is dead for all executions: executing the
    instrumented program once yields exactly the alive markers; every other
    marker is dead.  This is the "theoretically ideal compiler" baseline the
    paper compares GCC and LLVM against.

    Programs that trap (the analogue of UB detected by sanitizers in the
    paper), run out of fuel, or lack [main] are rejected. *)

type t = {
  alive : Dce_ir.Ir.Iset.t;   (** markers executed at least once *)
  dead : Dce_ir.Ir.Iset.t;    (** markers never executed *)
  all : Dce_ir.Ir.Iset.t;
  live_blocks : Dce_ir.Ir.Bset.t;
      (** executed (function, block) pairs in the unoptimized lowering *)
  steps : int;                (** interpreter steps used *)
}

val block_live : t -> string -> int -> bool
(** Whether the block executed. *)

type outcome =
  | Valid of t
  | Rejected of string  (** trap / fuel exhaustion / no main *)

val compute : ?exec:Dce_exec.Exec.backend -> ?fuel:int -> Dce_minic.Ast.program -> outcome
(** [compute instrumented_program]: lowers (no optimization) and executes
    under the given executor backend (default: the ambient
    {!Dce_exec.Exec.default}). *)
