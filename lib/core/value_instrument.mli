(** Value-check instrumentation — the paper's §4.4 "future directions"
    extension, implemented.

    Instead of relying on existing dead blocks, this mode {e manufactures}
    them: after every loop, for each scalar variable the loop assigns, it
    plants [if (v != C) DCEMarker<n>();] where [C] is the value [v] actually
    has at that point — obtained by profiling (running the program once with
    probes).  Every such check is dead by construction, and eliminating it
    requires the compiler to {e compute the loop's result}: this is a targeted
    probe of scalar-evolution-style reasoning (full unrolling, induction
    folding), exactly the use case the paper sketches.

    Probes whose value is not a compile-run-stable integer (several observed
    values, pointer values, never executed) produce no check.

    The result composes with the ordinary pipeline: ground truth re-verifies
    the checks are dead, and the differential machinery measures which
    configurations prove them. *)

type stats = {
  probes_inserted : int;   (** candidate (loop, variable) positions *)
  checks_planted : int;    (** positions with a stable profiled value *)
}

val instrument :
  ?exec:Dce_exec.Exec.backend ->
  ?max_checks:int ->
  Dce_minic.Ast.program ->
  (Dce_minic.Ast.program * stats) option
(** [instrument raw_program] (must be marker-free and have [main]).
    [None] when profiling fails (trap, fuel).  Default cap: 32 checks.
    The profiling run uses the given executor backend (default ambient). *)
