module Ir = Dce_ir.Ir
module I = Dce_interp.Interp

type t = {
  alive : Ir.Iset.t;
  dead : Ir.Iset.t;
  all : Ir.Iset.t;
  live_blocks : Ir.Bset.t;
  steps : int;
}

let block_live t fn l = Ir.Bset.mem (fn, l) t.live_blocks

type outcome = Valid of t | Rejected of string

let compute ?exec ?(fuel = 2_000_000) prog =
  if not (Dce_minic.Typecheck.has_main prog) then Rejected "no main function"
  else begin
    let ir = Dce_ir.Lower.program prog in
    let all =
      List.fold_left (fun s n -> Ir.Iset.add n s) Ir.Iset.empty
        (Dce_minic.Ast.markers_of_program prog)
    in
    let result = Dce_exec.Exec.run ?backend:exec ~fuel ir in
    match result.I.outcome with
    | I.Finished _ ->
      let alive = result.I.executed_markers in
      Valid
        {
          alive;
          dead = Ir.Iset.diff all alive;
          all;
          live_blocks = result.I.executed_blocks;
          steps = result.I.steps;
        }
    | I.Trap m -> Rejected ("trap: " ^ m)
    | I.Out_of_fuel -> Rejected "out of fuel"
  end
