(** Primary missed-marker analysis (paper §3.2, step ④).

    A dead block may be dead only because a {e predecessor} dead block was
    missed; reporting it separately would be noise.  The paper defines a
    {b missed primary dead block} as a missed block all of whose CFG
    predecessors are live or detected, and works on an interprocedural CFG.

    Here the CFG is abstracted to a {e marker graph} over the instrumented
    program's unoptimized IR: the predecessors of marker [m] are the markers
    [u] from which [m]'s position is reachable without crossing a third
    marker.  Function entries expand interprocedurally: a marker reachable
    marker-free from its function's entry inherits the contexts of every call
    site of that function ([main]'s entry — and entry of functions with no
    visible callers — act as a virtual always-live root). *)

type t

val build :
  ?interprocedural:bool ->
  ?live_blocks:Dce_ir.Ir.Bset.t ->
  Dce_ir.Ir.program ->
  t
(** Build from the {e unoptimized, pre-SSA} lowering of the instrumented
    program (optimized CFGs would reflect the compiler under test, not the
    program).

    [live_blocks] is the block-level ground truth
    ({!Ground_truth.t.live_blocks}): the backward walk stops at {e live}
    markless blocks and counts them as live predecessors — two sequentially
    dead regions separated by an executed join are then independent, exactly
    as in the paper's block-level CFG.  Without it (default: empty, i.e.
    everything considered not-live) markless blocks are transparent, a
    conservative over-approximation of predecessor sets.

    With [interprocedural:false] (an ablation; default true) every function
    entry is treated as an always-live root instead of expanding through call
    sites. *)

val predecessors : t -> int -> Dce_ir.Ir.Iset.t
(** Marker predecessors of a marker. *)

val has_root_context : t -> int -> bool
(** Whether the marker is reachable marker-free from an always-live root. *)

val markers : t -> Dce_ir.Ir.Iset.t

val primary_missed :
  t -> alive:Dce_ir.Ir.Iset.t -> missed:Dce_ir.Ir.Iset.t -> Dce_ir.Ir.Iset.t
(** [primary_missed t ~alive ~missed]: the subset of [missed] whose marker
    predecessors are each alive or detected (dead and not missed) — the
    paper's Definition in §3.2. *)
