open Dce_minic.Ast
module I = Dce_interp.Interp
module Ir = Dce_ir.Ir

type stats = { probes_inserted : int; checks_planted : int }

let probe_fn = "__dce_probe"

(* variables assigned (as scalars) anywhere inside a statement subtree *)
let assigned_scalars stmt =
  let acc = ref [] in
  iter_stmt
    (fun s ->
      match s with
      | Sassign (Lvar x, _) -> acc := x :: !acc
      | Sdecl (x, Tint, Some _) -> acc := x :: !acc
      | _ -> ())
    stmt;
  Dce_support.Listx.uniq (List.rev !acc)

(* int-typed variables visible in a function: globals plus its locals/params *)
let int_typed_vars prog fn =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun g -> if g.g_typ = Tint then Hashtbl.replace tbl g.g_name ())
    prog.p_globals;
  List.iter (fun p -> if p.p_typ = Tint then Hashtbl.replace tbl p.p_name ()) fn.f_params;
  iter_block
    (function
      | Sdecl (x, Tint, _) -> Hashtbl.replace tbl x ()
      | Sdecl (x, _, _) -> Hashtbl.remove tbl x (* local shadows an int global *)
      | _ -> ())
    fn.f_body;
  tbl

(* phase A: insert probe calls after loops *)
let insert_probes prog =
  let next_probe = ref 0 in
  let mapping = Hashtbl.create 32 in (* probe id -> variable name *)
  let probe_funcs =
    List.map
      (fun fn ->
        let ints = int_typed_vars prog fn in
        let rec probe_block b = List.concat_map probe_stmt b
        and probe_stmt s =
          let s' =
            match s with
            | Sif (c, bt, bf) -> Sif (c, probe_block bt, probe_block bf)
            | Swhile (c, b) -> Swhile (c, probe_block b)
            | Sfor (i, c, st, b) -> Sfor (i, c, st, probe_block b)
            | Sswitch (c, cases, dflt) ->
              Sswitch (c, List.map (fun (k, b) -> (k, probe_block b)) cases, probe_block dflt)
            | Sblock b -> Sblock (probe_block b)
            | _ -> s
          in
          match s with
          | Swhile (_, _) | Sfor (_, _, _, _) ->
            (* the whole loop statement: for-init/step assignments count *)
            let vars =
              List.filter (Hashtbl.mem ints) (assigned_scalars s)
              |> Dce_support.Listx.take 2
            in
            s'
            :: List.map
                 (fun v ->
                   let id = !next_probe in
                   incr next_probe;
                   Hashtbl.replace mapping id v;
                   Sexpr (Call (probe_fn, [ Int id; Var v ])))
                 vars
          | _ -> [ s' ]
        in
        { fn with f_body = probe_block fn.f_body })
      prog.p_funcs
  in
  ({ prog with p_funcs = probe_funcs }, mapping, !next_probe)

(* phase B: profile — observed integer values per probe *)
let profile ?exec probed =
  let ir = Dce_ir.Lower.program probed in
  let r = Dce_exec.Exec.run ?backend:exec ir in
  match r.I.outcome with
  | I.Finished _ ->
    let values : (int, [ `Stable of int | `Unstable ]) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun ev ->
        match ev with
        | I.Ev_extern (name, [ I.Vint id; v ]) when name = probe_fn -> (
          match v with
          | I.Vint value -> (
            match Hashtbl.find_opt values id with
            | None -> Hashtbl.replace values id (`Stable value)
            | Some (`Stable prev) when prev = value -> ()
            | Some _ -> Hashtbl.replace values id `Unstable)
          | I.Vptr _ -> Hashtbl.replace values id `Unstable)
        | _ -> ())
      r.I.events;
    Some values
  | I.Trap _ | I.Out_of_fuel -> None

(* phase C: probes with a stable value become dead value checks *)
let plant prog values mapping max_checks =
  let next_marker = ref 0 in
  let planted = ref 0 in
  let rewrite_funcs =
    List.map
      (fun fn ->
        let rewrite =
          map_block (fun s ->
              match s with
              | Sexpr (Call (name, [ Int id; Var v ])) when name = probe_fn -> (
                match Hashtbl.find_opt values id with
                | Some (`Stable c)
                  when !planted < max_checks && Hashtbl.find_opt mapping id = Some v ->
                  incr planted;
                  let m = !next_marker in
                  incr next_marker;
                  [ Sif (Binary (Dce_minic.Ops.Ne, Var v, Int c), [ Smarker m ], []) ]
                | _ -> [])
              | _ -> [ s ])
        in
        { fn with f_body = rewrite fn.f_body })
      prog.p_funcs
  in
  ({ prog with p_funcs = rewrite_funcs }, !planted)

let instrument ?exec ?(max_checks = 32) prog =
  if markers_of_program prog <> [] then
    invalid_arg "Value_instrument.instrument: program already instrumented";
  let probed, mapping, inserted = insert_probes prog in
  match profile ?exec probed with
  | None -> None
  | Some values ->
    let final, planted = plant probed values mapping max_checks in
    (* __dce_probe must no longer appear *)
    Some (final, { probes_inserted = inserted; checks_planted = planted })
