module C = Dce_compiler
module F = C.Features

type repair = { repair_name : string; repair_component : string; edit : F.t -> F.t }

type t = {
  marker : int;
  guilty_stage : string option;
  diagnosis : repair option;
  tried : int;
}

let catalogue =
  [
    {
      repair_name = "gva:flow-sensitive";
      repair_component = "Constant Propagation";
      edit = (fun f -> { f with F.gva = Dce_opt.Gva.Flow_sensitive_if_const });
    };
    {
      repair_name = "addr-cmp:full";
      repair_component = "Peephole Optimizations";
      edit = (fun f -> { f with F.addr_cmp = Dce_opt.Sccp.Cmp_full });
    };
    {
      repair_name = "memcp:edge-aware";
      repair_component = "Pass Management";
      edit = (fun f -> { f with F.memcp = true; memcp_edge_aware = true });
    };
    {
      repair_name = "uniform-arrays";
      repair_component = "Constant Propagation";
      edit = (fun f -> { f with F.uniform_arrays = true });
    };
    {
      repair_name = "alias:full";
      repair_component = "Alias Analysis";
      edit = (fun f -> { f with F.alias = Dce_opt.Alias.Full });
    };
    {
      repair_name = "vectorize:off";
      repair_component = "Loop Transformations";
      edit = (fun f -> { f with F.vectorize = false });
    };
    {
      repair_name = "function-dce:late";
      repair_component = "Pass Management";
      edit = (fun f -> { f with F.function_dce_early = false });
    };
    {
      repair_name = "jump-thread:conservative";
      repair_component = "Jump Threading";
      edit =
        (fun f ->
          { f with F.jump_thread = Dce_opt.Jump_thread.Conservative; jt_phi_cleanup = true });
    };
    {
      repair_name = "unswitch:off";
      repair_component = "Loop Transformations";
      edit = (fun f -> { f with F.unswitch = false });
    };
    {
      repair_name = "vrp:shift-rule";
      repair_component = "Value Propagation";
      edit = (fun f -> { f with F.vrp = true; vrp_shift_rule = true });
    };
    {
      repair_name = "vrp:mod-singleton";
      repair_component = "Value Constraint Analysis";
      edit = (fun f -> { f with F.vrp = true; vrp_mod_singleton = true });
    };
    {
      repair_name = "dse:lifetime";
      repair_component = "SSA Memory Analysis";
      edit = (fun f -> { f with F.dse_strength = 2 });
    };
    {
      repair_name = "inline:larger";
      repair_component = "Inlining";
      edit = (fun f -> { f with F.inline_threshold = (max 30 f.F.inline_threshold) * 4 });
    };
    {
      repair_name = "unroll:larger";
      repair_component = "Loop Transformations";
      edit = (fun f -> { f with F.unroll_trip = (max 8 f.F.unroll_trip) * 4 });
    };
    {
      repair_name = "peephole:full";
      repair_component = "Peephole Optimizations";
      edit = (fun f -> { f with F.peephole_level = 3 });
    };
    {
      repair_name = "summaries:on";
      repair_component = "Interprocedural Analyses";
      edit = (fun f -> { f with F.call_summaries = true });
    };
    {
      repair_name = "ipa-cp:on";
      repair_component = "Interprocedural Analyses";
      edit = (fun f -> { f with F.ipa_cp = true });
    };
    {
      repair_name = "vrp:budget";
      repair_component = "Value Propagation";
      edit = (fun f -> { f with F.vrp = true; vrp_block_limit = 4096 });
    };
    {
      repair_name = "rounds:more";
      repair_component = "Pass Management";
      edit = (fun f -> { f with F.opt_rounds = f.F.opt_rounds + 2 });
    };
  ]

let component_of_stage = function
  | "sccp" | "memcp" -> Some "Constant Propagation"
  | "gvn" -> Some "Alias Analysis"
  | "vrp" -> Some "Value Propagation"
  | "peephole" -> Some "Peephole Optimizations"
  | "jump-thread" -> Some "Jump Threading"
  | "dse" -> Some "SSA Memory Analysis"
  | "inline" -> Some "Inlining"
  | "ipa-cp" | "function-dce" | "function-dce-early" | "inline-cleanup" ->
    Some "Interprocedural Analyses"
  | "unroll" | "unswitch" | "vectorize" | "loop-promote" -> Some "Loop Transformations"
  | "dce" | "simplify-cfg" | "ssa" -> Some "Pass Management"
  | _ -> None

(* markers physically disappear in the cleanup passes; the interesting stage
   is the nearest earlier change outside this set — the pass that proved the
   marker's block dead, not the one that swept it up *)
let cleanup = [ "dce"; "simplify-cfg"; "ssa" ]

let trace_guilty trace ~marker =
  match C.Passmgr.markers_eliminated_by trace ~marker with
  | None -> None
  | Some elim when not (List.mem elim.C.Passmgr.sr_label cleanup) ->
    Some elim.C.Passmgr.sr_label
  | Some elim ->
    let rec enabler best = function
      | [] -> best
      | r :: _ when r == elim -> best
      | r :: rest ->
        let best =
          if r.C.Passmgr.sr_changed && not (List.mem r.C.Passmgr.sr_label cleanup) then
            Some r.C.Passmgr.sr_label
          else best
        in
        enabler best rest
    in
    (match enabler None trace with
     | Some label -> Some label
     | None -> Some elim.C.Passmgr.sr_label)

(* the fully-fixed pipeline (every post-HEAD fix applied) eliminates the
   marker iff the miss is a modeled bug; its stage trace then names the
   pass that catches it — the component whose repairs are tried first *)
let guilty_and_order compiler level ir ~marker =
  let base = C.Compiler.features compiler level in
  let fixed =
    C.Compiler.features compiler
      ~version:(List.length compiler.C.Compiler.history)
      level
  in
  let guilty =
    if fixed = base then None
    else
      let _, trace = C.Pipeline.run_traced fixed ir in
      trace_guilty trace ~marker
  in
  let ordered =
    match Option.bind guilty component_of_stage with
    | None -> catalogue
    | Some comp ->
      let first, rest = List.partition (fun r -> r.repair_component = comp) catalogue in
      first @ rest
  in
  (guilty, ordered)

let ordered_catalogue compiler level prog ~marker =
  guilty_and_order compiler level (Dce_ir.Lower.program prog) ~marker

let run compiler level prog ~marker =
  (* lower exactly once; every repair attempt re-optimizes the same IR *)
  let ir = Dce_ir.Lower.program prog in
  let eliminates feats =
    let optimized = C.Pipeline.run feats ir in
    let asm = Dce_backend.Codegen.program optimized in
    not (Dce_backend.Asm.marker_survives asm marker)
  in
  let base = C.Compiler.features compiler level in
  let guilty, ordered = guilty_and_order compiler level ir ~marker in
  let rec try_repairs tried = function
    | [] -> { marker; guilty_stage = guilty; diagnosis = None; tried }
    | r :: rest ->
      if eliminates (r.edit base) then
        { marker; guilty_stage = guilty; diagnosis = Some r; tried = tried + 1 }
      else try_repairs (tried + 1) rest
  in
  try_repairs 0 ordered

let signature t =
  match t.diagnosis with
  | Some r -> r.repair_name
  | None -> "unknown"
