module Ir = Dce_ir.Ir
module C = Dce_compiler

type per_config = {
  cfg_compiler : string;
  cfg_level : C.Level.t;
  surviving : Ir.Iset.t;
  missed : Ir.Iset.t;
  primary_missed : Ir.Iset.t;
  cfg_trace : C.Passmgr.trace;
}

type t = {
  instrumented : Dce_minic.Ast.program;
  truth : Ground_truth.t;
  graph : Primary.t;
  configs : per_config list;
}

type outcome = Analyzed of t | Rejected of string

type phase_hook = { wrap : 'a. string -> (unit -> 'a) -> 'a }

let default_hook = { wrap = (fun _name f -> f ()) }
let default_compilers () = [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ]

let run ?compilers ?(levels = C.Level.all) ?fuel ?exec ?(checked = false)
    ?(hook = default_hook) prog =
  let compilers = match compilers with Some cs -> cs | None -> default_compilers () in
  let instrumented = hook.wrap "instrument" (fun () -> Instrument.program prog) in
  match
    hook.wrap "ground-truth" (fun () -> Ground_truth.compute ?exec ?fuel instrumented)
  with
  | Ground_truth.Rejected reason -> Rejected reason
  | Ground_truth.Valid truth ->
    let graph =
      hook.wrap "primary-graph" (fun () ->
          Primary.build ~live_blocks:truth.Ground_truth.live_blocks
            (Dce_ir.Lower.program instrumented))
    in
    let configs =
      List.concat_map
        (fun compiler ->
          List.map
            (fun level ->
              let cfg = { Differential.compiler; level; version = None } in
              let surviving, cfg_trace =
                hook.wrap "differential" (fun () ->
                    Differential.surviving_traced ~validate:checked cfg instrumented)
              in
              let missed = Differential.missed ~surviving ~dead:truth.Ground_truth.dead in
              let primary_missed =
                Primary.primary_missed graph ~alive:truth.Ground_truth.alive ~missed
              in
              {
                cfg_compiler = compiler.C.Compiler.name;
                cfg_level = level;
                surviving;
                missed;
                primary_missed;
                cfg_trace;
              })
            levels)
        compilers
    in
    Analyzed { instrumented; truth; graph; configs }

let find_config t name level =
  List.find_opt (fun c -> c.cfg_compiler = name && c.cfg_level = level) t.configs

let soundness_violations t =
  List.concat_map
    (fun c ->
      let eliminated = Ir.Iset.diff t.truth.Ground_truth.all c.surviving in
      let bad = Ir.Iset.inter eliminated t.truth.Ground_truth.alive in
      List.map (fun m -> (c.cfg_compiler, c.cfg_level, m)) (Ir.Iset.elements bad))
    t.configs
