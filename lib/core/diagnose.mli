(** Root-cause diagnosis of a missed marker by single-feature flips.

    The mechanical analogue of the paper's manual triage: given a
    configuration that misses a marker, try a catalogue of single "repairs"
    (upgrade one feature of the pipeline) and report the first that makes the
    configuration eliminate the marker.  The repair's name doubles as a
    deduplication signature for the reporting pipeline ({!Dce_report}).

    Before falling back to brute catalogue order, the diagnosis consults the
    {!Dce_compiler.Passmgr} stage trace of the {e fully-fixed} pipeline
    (every post-HEAD fix applied): the stage that eliminates the marker
    there names the guilty component, whose repairs are tried first.  The
    program is lowered exactly once per {!run}; only the optimization
    pipeline reruns per attempted repair. *)

type repair = {
  repair_name : string;       (** e.g. ["gva:flow-sensitive"] *)
  repair_component : string;  (** the compiler component it belongs to *)
  edit : Dce_compiler.Features.t -> Dce_compiler.Features.t;
}

type t = {
  marker : int;
  guilty_stage : string option;
      (** the stage of the fully-fixed pipeline that eliminates the marker
          (cleanup stages are walked back to the enabling transform);
          [None] when no fix history exists or the fixed pipeline misses
          the marker too *)
  diagnosis : repair option;  (** [None]: no single-feature repair suffices *)
  tried : int;               (** repairs attempted *)
}

val catalogue : repair list
(** All known repairs, ordered from most specific to most generic. *)

val ordered_catalogue :
  Dce_compiler.Compiler.t ->
  Dce_compiler.Level.t ->
  Dce_minic.Ast.program ->
  marker:int ->
  string option * repair list
(** The guilty stage (as in {!t.guilty_stage}) and the catalogue reordered
    with the guilty component's repairs first — the candidate order both
    {!run} and the {!Dce_repair} searcher walk. *)

val run :
  Dce_compiler.Compiler.t ->
  Dce_compiler.Level.t ->
  Dce_minic.Ast.program ->
  marker:int ->
  t
(** [run compiler level instrumented ~marker]: find the first repair under
    which the compiler (its HEAD features plus the repair) eliminates the
    marker. *)

val signature : t -> string
(** Deduplication key: the repair name, or ["unknown"]. *)

val component_of_stage : string -> string option
(** The catalogue component a pipeline stage label belongs to, e.g.
    ["sccp"] → ["Constant Propagation"]. *)
