(** Differential testing over surviving markers (paper steps ②–③).

    A configuration is a (compiler, level) pair; its result on an instrumented
    program is the set of markers surviving in the generated assembly.
    Missed-opportunity sets are plain set differences, optionally filtered by
    ground truth (our compilers are verified sound — they never eliminate an
    alive marker — so the filter is a safety net, not a correction). *)

type config = {
  compiler : Dce_compiler.Compiler.t;
  level : Dce_compiler.Level.t;
  version : int option;  (** [None] = HEAD *)
}

val config_name : config -> string
(** e.g. ["gcc-sim -O3"] or ["llvm-sim -O2 @v17"]. *)

val surviving : ?validate:bool -> config -> Dce_minic.Ast.program -> Dce_ir.Ir.Iset.t
(** Compile the instrumented program and scan the assembly.  [validate]
    (default false) checks the IR after every pass, raising
    {!Dce_compiler.Passmgr.Ir_invalid} naming the guilty stage. *)

val surviving_traced :
  ?validate:bool ->
  config ->
  Dce_minic.Ast.program ->
  Dce_ir.Ir.Iset.t * Dce_compiler.Passmgr.trace
(** Like {!surviving}, also returning the pipeline stage trace — which pass
    eliminated which marker, with timing and IR deltas. *)

val missed :
  surviving:Dce_ir.Ir.Iset.t -> dead:Dce_ir.Ir.Iset.t -> Dce_ir.Ir.Iset.t
(** Markers the configuration kept although they are dead. *)

val semantics_preserved :
  ?exec:Dce_exec.Exec.backend -> Dce_ir.Ir.program -> Dce_ir.Ir.program -> bool
(** Whether two IR programs (e.g. before/after a transformation) are
    observationally equivalent — same outcome, same event sequence — when
    executed under the given backend (default ambient).  This is
    {!Dce_interp.Interp.equivalent} routed through the shared executor. *)

val semantics_preserved_strict :
  ?exec:Dce_exec.Exec.backend -> Dce_ir.Ir.program -> Dce_ir.Ir.program -> bool
(** {!semantics_preserved} plus identical final global memory. *)

val missed_vs_other :
  mine:Dce_ir.Ir.Iset.t -> other:Dce_ir.Ir.Iset.t -> Dce_ir.Ir.Iset.t
(** Paper §3.1: markers I keep that the other configuration eliminates —
    feasibly missed opportunities for me. *)

(** {1 Code-size oracle}

    The marker lens is binary; the assembly also has a measurable size
    ({!Dce_backend.Asm.size}).  At [-Os] size {e is} the contract, so two
    regression classes fall out: one compiler's [-Os] output significantly
    larger than the other's (cross, with a configurable ratio threshold), and
    a compiler's [-Os] output larger than its {e own} [-O2] (intra — a
    self-evident miss needing no second compiler).  All sizes route through
    the content-addressed compile cache, so a campaign pays one compile per
    (config, program) across {e both} the marker and size oracles. *)

val asm_size : ?cache:bool -> config -> Dce_minic.Ast.program -> int
(** {!Dce_backend.Asm.size} of the configuration's output.  [cache] (default
    true) routes through {!Dce_compiler.Compiler.observables_cached}. *)

val default_size_levels : Dce_compiler.Level.t list
(** [[-Os; -O2]] — the minimum the size oracle needs. *)

val size_curve :
  ?cache:bool ->
  ?levels:Dce_compiler.Level.t list ->
  compilers:Dce_compiler.Compiler.t list ->
  Dce_minic.Ast.program ->
  (string * Dce_compiler.Level.t * int) list
(** Size of every (compiler, level) cell at HEAD, in the given order.  This
    is the complete input of {!size_findings_of} — journaling the curve lets
    findings be re-derived (even re-thresholded) without recompiling. *)

type size_finding =
  | Size_cross of {
      level : Dce_compiler.Level.t;
      larger : string;
      larger_size : int;
      smaller : string;
      smaller_size : int;
    }
      (** At [level] (always [-Os] today), [larger]'s output is at least
          [ratio] times [smaller]'s. *)
  | Size_intra of { compiler : string; os_size : int; o2_size : int }
      (** [compiler]'s [-Os] output is strictly larger than its own [-O2]. *)

val size_ratio : size_finding -> float
(** Larger-over-smaller ratio of the finding (triage histogram bucket key). *)

val size_finding_to_string : size_finding -> string

val size_findings_of : ?ratio:float -> (string * Dce_compiler.Level.t * int) list -> size_finding list
(** Pure: derive findings from a size curve.  Cross fires when
    [larger > smaller && larger >= ratio *. smaller] (default ratio 1.25), at
    most once per compiler pair, deterministically ordered (curve order,
    cross before intra).  Intra fires on any strict [-Os] > [-O2] excess. *)

val size_findings :
  ?cache:bool ->
  ?ratio:float ->
  ?levels:Dce_compiler.Level.t list ->
  compilers:Dce_compiler.Compiler.t list ->
  Dce_minic.Ast.program ->
  size_finding list
(** [size_findings_of ?ratio (size_curve ...)]. *)

(** {1 Level-inversion oracle}

    Within one compiler, a marker eliminated at a weaker level but surviving
    at a stronger one is a regression of the stronger pipeline — the class
    the paper's Table 3/4 aggregates; here each inversion is a first-class
    finding the reducer and bisector can chase. *)

type inversion = {
  iv_marker : int;
  iv_low : Dce_compiler.Level.t;  (** weakest level that eliminates the marker *)
  iv_high : Dce_compiler.Level.t;  (** strongest level that keeps it *)
}

val inversion_to_string : inversion -> string

val inversions :
  dead:Dce_ir.Ir.Iset.t -> (Dce_compiler.Level.t * Dce_ir.Ir.Iset.t) list -> inversion list
(** Pure: given per-level surviving sets of one compiler and the ground-truth
    dead set, return every dead marker with
    [rank (weakest eliminating level) < rank (strongest keeping level)],
    ascending by marker id. *)

val inversions_of :
  ?cache:bool ->
  ?levels:Dce_compiler.Level.t list ->
  dead:Dce_ir.Ir.Iset.t ->
  Dce_compiler.Compiler.t ->
  Dce_minic.Ast.program ->
  inversion list
(** Compile (cached by default) at [levels] (default [O1; Os; O2; O3] — [O0]
    keeps everything, so it only adds noise) and run {!inversions}. *)
