(** Differential testing over surviving markers (paper steps ②–③).

    A configuration is a (compiler, level) pair; its result on an instrumented
    program is the set of markers surviving in the generated assembly.
    Missed-opportunity sets are plain set differences, optionally filtered by
    ground truth (our compilers are verified sound — they never eliminate an
    alive marker — so the filter is a safety net, not a correction). *)

type config = {
  compiler : Dce_compiler.Compiler.t;
  level : Dce_compiler.Level.t;
  version : int option;  (** [None] = HEAD *)
}

val config_name : config -> string
(** e.g. ["gcc-sim -O3"] or ["llvm-sim -O2 @v17"]. *)

val surviving : ?validate:bool -> config -> Dce_minic.Ast.program -> Dce_ir.Ir.Iset.t
(** Compile the instrumented program and scan the assembly.  [validate]
    (default false) checks the IR after every pass, raising
    {!Dce_compiler.Passmgr.Ir_invalid} naming the guilty stage. *)

val surviving_traced :
  ?validate:bool ->
  config ->
  Dce_minic.Ast.program ->
  Dce_ir.Ir.Iset.t * Dce_compiler.Passmgr.trace
(** Like {!surviving}, also returning the pipeline stage trace — which pass
    eliminated which marker, with timing and IR deltas. *)

val missed :
  surviving:Dce_ir.Ir.Iset.t -> dead:Dce_ir.Ir.Iset.t -> Dce_ir.Ir.Iset.t
(** Markers the configuration kept although they are dead. *)

val semantics_preserved :
  ?exec:Dce_exec.Exec.backend -> Dce_ir.Ir.program -> Dce_ir.Ir.program -> bool
(** Whether two IR programs (e.g. before/after a transformation) are
    observationally equivalent — same outcome, same event sequence — when
    executed under the given backend (default ambient).  This is
    {!Dce_interp.Interp.equivalent} routed through the shared executor. *)

val semantics_preserved_strict :
  ?exec:Dce_exec.Exec.backend -> Dce_ir.Ir.program -> Dce_ir.Ir.program -> bool
(** {!semantics_preserved} plus identical final global memory. *)

val missed_vs_other :
  mine:Dce_ir.Ir.Iset.t -> other:Dce_ir.Ir.Iset.t -> Dce_ir.Ir.Iset.t
(** Paper §3.1: markers I keep that the other configuration eliminates —
    feasibly missed opportunities for me. *)
