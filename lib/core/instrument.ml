open Dce_minic.Ast

let rec contains_return s =
  match s with
  | Sreturn _ -> true
  | Sexpr _ | Sdecl _ | Sassign _ | Sbreak | Scontinue | Smarker _ -> false
  | Sif (_, bt, bf) -> List.exists contains_return bt || List.exists contains_return bf
  | Swhile (_, b) -> List.exists contains_return b
  | Sfor (_, _, _, b) -> List.exists contains_return b
  | Sswitch (_, cases, dflt) ->
    List.exists (fun (_, b) -> List.exists contains_return b) cases
    || List.exists contains_return dflt
  | Sblock b -> List.exists contains_return b

(* instrument a block: marker-head nested bodies, and a marker after every
   statement whose subtree contains a conditional return.  Marker ids are
   allocated strictly in syntactic order (a block's head marker before any
   nested marker), matching the paper's DCECheck0, DCECheck1, … numbering.
   [fresh] is per-instrumentation state, so concurrent instrumentations
   (campaign workers) never interleave id sequences. *)
let rec instr_block ~fresh ~head b =
  let head_markers = if head then [ Smarker (fresh ()) ] else [] in
  let rec go = function
    | [] -> []
    | s :: rest ->
      let s' = instr_stmt ~fresh s in
      let needs_marker =
        (match s with
         | Sif (_, _, _) | Swhile (_, _) | Sfor (_, _, _, _) | Sswitch (_, _, _) | Sblock _ ->
           contains_return s
         | Sexpr _ | Sdecl _ | Sassign _ | Sreturn _ | Sbreak | Scontinue | Smarker _ -> false)
        && rest <> []
      in
      let after = if needs_marker then [ Smarker (fresh ()) ] else [] in
      s' @ after @ go rest
  in
  head_markers @ go b

and instr_stmt ~fresh s =
  match s with
  | Sif (c, bt, bf) ->
    let bt = instr_block ~fresh ~head:true bt in
    let bf = if bf = [] then [] else instr_block ~fresh ~head:true bf in
    [ Sif (c, bt, bf) ]
  | Swhile (c, b) -> [ Swhile (c, instr_block ~fresh ~head:true b) ]
  | Sfor (init, cond, step, b) -> [ Sfor (init, cond, step, instr_block ~fresh ~head:true b) ]
  | Sswitch (c, cases, dflt) ->
    let cases = List.map (fun (k, b) -> (k, instr_block ~fresh ~head:true b)) cases in
    let dflt = if dflt = [] then [] else instr_block ~fresh ~head:true dflt in
    [ Sswitch (c, cases, dflt) ]
  | Sblock b -> [ Sblock (instr_block ~fresh ~head:false b) ]
  | Sexpr _ | Sdecl _ | Sassign _ | Sreturn _ | Sbreak | Scontinue | Smarker _ -> [ s ]

let program prog =
  if markers_of_program prog <> [] then
    invalid_arg "Instrument.program: program already instrumented";
  let counter = ref 0 in
  let fresh () =
    let n = !counter in
    incr counter;
    n
  in
  let funcs =
    List.map
      (fun fn -> { fn with f_body = instr_block ~fresh ~head:false fn.f_body })
      prog.p_funcs
  in
  { prog with p_funcs = funcs }

let marker_count prog = List.length (markers_of_program prog)
