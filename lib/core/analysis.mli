(** End-to-end analysis of one test case: the paper's full Figure-1 pipeline
    on a single program, producing everything the evaluation aggregates.

    Instrument → ground truth by execution → compile with both compilers at
    all five levels → surviving-marker sets → missed / primary-missed sets
    per configuration. *)

type per_config = {
  cfg_compiler : string;
  cfg_level : Dce_compiler.Level.t;
  surviving : Dce_ir.Ir.Iset.t;
  missed : Dce_ir.Ir.Iset.t;          (** surviving ∩ dead *)
  primary_missed : Dce_ir.Ir.Iset.t;
  cfg_trace : Dce_compiler.Passmgr.trace;
      (** pipeline stage trace of this compile: which pass eliminated which
          marker, with timing and IR deltas *)
}

type t = {
  instrumented : Dce_minic.Ast.program;
  truth : Ground_truth.t;
  graph : Primary.t;
  configs : per_config list;  (** both compilers × all levels *)
}

type outcome =
  | Analyzed of t
  | Rejected of string  (** ground truth rejected the program *)

type phase_hook = { wrap : 'a. string -> (unit -> 'a) -> 'a }
(** Observation hook around each pipeline phase of {!run}: called with the
    phase name ("instrument", "ground-truth", "primary-graph", or
    "differential") and the thunk computing that phase.  The campaign engine
    uses it to time phases and to attribute per-case faults to the guilty
    stage; the default hook just runs the thunk. *)

val run :
  ?compilers:Dce_compiler.Compiler.t list ->
  ?levels:Dce_compiler.Level.t list ->
  ?fuel:int ->
  ?exec:Dce_exec.Exec.backend ->
  ?checked:bool ->
  ?hook:phase_hook ->
  Dce_minic.Ast.program ->
  outcome
(** [run raw_program] — the program must be uninstrumented and type-checked.
    Defaults: both simulated compilers at HEAD, all five levels.  [checked]
    (default false) validates the IR after every optimization pass during the
    differential phase, raising {!Dce_compiler.Passmgr.Ir_invalid} naming the
    guilty pass — the campaign engine quarantines that as a distinct
    [Ir_invalid] fault. *)

val find_config : t -> string -> Dce_compiler.Level.t -> per_config option

val soundness_violations : t -> (string * Dce_compiler.Level.t * int) list
(** Markers a configuration eliminated although they are {e alive} — must be
    empty for correct compilers; checked by the test suite on every corpus
    program. *)
