open Dce_minic
open Ast

(* apply [edit] to the [n]th statement (preorder over all function bodies) *)
let edit_nth prog n edit =
  let counter = ref (-1) in
  let rec edit_block b = List.concat_map edit_stmt b
  and edit_stmt s =
    incr counter;
    let me = !counter in
    if me = n then edit s
    else
      match s with
      | Sif (c, bt, bf) -> [ Sif (c, edit_block bt, edit_block bf) ]
      | Swhile (c, b) -> [ Swhile (c, edit_block b) ]
      | Sfor (init, cond, step, b) -> [ Sfor (init, cond, step, edit_block b) ]
      | Sswitch (c, cases, dflt) ->
        [ Sswitch (c, List.map (fun (k, b) -> (k, edit_block b)) cases, edit_block dflt) ]
      | Sblock b -> [ Sblock (edit_block b) ]
      | Sexpr _ | Sdecl _ | Sassign _ | Sreturn _ | Sbreak | Scontinue | Smarker _ -> [ s ]
  in
  {
    prog with
    p_funcs = List.map (fun fn -> { fn with f_body = edit_block fn.f_body }) prog.p_funcs;
  }

(* size metric: statements and declarations dominate, expression nodes break
   ties so that condition-to-constant simplifications count as progress *)
let count_stmts prog =
  let exprs = ref 0 in
  iter_program_exprs (fun _ -> incr exprs) prog;
  (10 * (stmt_count prog + List.length prog.p_globals + List.length prog.p_funcs)) + !exprs

(* delete a contiguous range [lo, lo+len) of top-level-ish statement indices
   (preorder numbering, same as [edit_nth]) in one shot — the ddmin-style
   coarse phase that removes big chunks before statement-level polishing *)
let delete_range prog lo len =
  let counter = ref (-1) in
  let rec edit_block b = List.concat_map edit_stmt b
  and edit_stmt s =
    incr counter;
    let me = !counter in
    if me >= lo && me < lo + len then
      (* dropping the statement drops its whole subtree; skip the subtree's
         indices so the numbering matches edit_nth's preorder *)
      let sub = ref 0 in
      (iter_stmt (fun _ -> incr sub) s;
       counter := !counter + !sub - 1);
      []
    else
      match s with
      | Sif (c, bt, bf) -> [ Sif (c, edit_block bt, edit_block bf) ]
      | Swhile (c, b) -> [ Swhile (c, edit_block b) ]
      | Sfor (init, cond, step, b) -> [ Sfor (init, cond, step, edit_block b) ]
      | Sswitch (c, cases, dflt) ->
        [ Sswitch (c, List.map (fun (k, b) -> (k, edit_block b)) cases, edit_block dflt) ]
      | Sblock b -> [ Sblock (edit_block b) ]
      | Sexpr _ | Sdecl _ | Sassign _ | Sreturn _ | Sbreak | Scontinue | Smarker _ -> [ s ]
  in
  {
    prog with
    p_funcs = List.map (fun fn -> { fn with f_body = edit_block fn.f_body }) prog.p_funcs;
  }

(* coarse candidates: delete halves, then quarters, then eighths *)
let chunk_candidates prog =
  let n = stmt_count prog in
  List.concat_map
    (fun denom ->
      let len = max 2 (n / denom) in
      let rec starts lo = if lo >= n then [] else lo :: starts (lo + len) in
      List.map (fun lo -> lazy (delete_range prog lo len)) (starts 0))
    [ 2; 4; 8 ]

let apply_edit edit_kind s =
  match (edit_kind, s) with
  | `Delete, _ -> []
  | `Unwrap, Sif (_, bt, []) -> bt
  | `Unwrap, Sif (_, bt, bf) -> if bt = [] then bf else bt
  | `Unwrap, Swhile (_, b) -> b
  | `Unwrap, Sfor (_, _, _, b) -> b
  | `Unwrap, Sswitch (_, cases, dflt) -> List.concat_map snd cases @ dflt
  | `Unwrap, Sblock b -> b
  | `Unwrap, _ -> [ s ]
  | `Cond_false, Sif (_, bt, bf) -> [ Sif (Int 0, bt, bf) ]
  | `Cond_false, Swhile (_, b) -> [ Swhile (Int 0, b) ]
  | `Cond_false, _ -> [ s ]
  | `Cond_true, Sif (_, bt, bf) -> [ Sif (Int 1, bt, bf) ]
  | `Cond_true, _ -> [ s ]

(* would [apply_edit edit_kind s] produce a different statement list?  Used
   to skip no-op candidates at generation time: an edit that leaves the
   statement unchanged yields the parent program verbatim, which the size
   filter would reject anyway — not emitting it saves the clone, the
   [count_stmts], and (for the duplicate-parent program) a cache probe. *)
let edit_applicable edit_kind s =
  match (edit_kind, s) with
  | `Delete, _ -> true
  | `Unwrap, (Sif _ | Swhile _ | Sfor _ | Sswitch _ | Sblock _) -> true
  | `Unwrap, _ -> false
  | `Cond_false, (Sif (c, _, _) | Swhile (c, _)) -> c <> Int 0
  | `Cond_false, _ -> false
  | `Cond_true, Sif (c, _, _) -> c <> Int 1
  | `Cond_true, _ -> false

(* the statements of [prog] paired with their [edit_nth] preorder index.
   NB this is {e not} [iter_program_stmts] order: [edit_nth] does not descend
   into a [for]'s init/step statements, so those carry no index at all (they
   can only be removed together with their loop). *)
let indexed_stmts prog =
  let acc = ref [] in
  let counter = ref (-1) in
  let rec go_block b = List.iter go_stmt b
  and go_stmt s =
    incr counter;
    acc := (!counter, s) :: !acc;
    match s with
    | Sif (_, bt, bf) ->
      go_block bt;
      go_block bf
    | Swhile (_, b) -> go_block b
    | Sfor (_, _, _, b) -> go_block b
    | Sswitch (_, cases, dflt) ->
      List.iter (fun (_, b) -> go_block b) cases;
      go_block dflt
    | Sblock b -> go_block b
    | Sexpr _ | Sdecl _ | Sassign _ | Sreturn _ | Sbreak | Scontinue | Smarker _ -> ()
  in
  List.iter (fun fn -> go_block fn.f_body) prog.p_funcs;
  List.rev !acc

(* one-step candidate programs, roughly most-profitable first.  Ordering is
   load-bearing: the engine accepts the first passing candidate, so the
   sequence (chunks, then function drops, then global drops, then statement
   edits by kind then index) must match the pre-engine reducer exactly —
   only candidates that could never be charged (no-op edits) are skipped. *)
let candidates prog =
  let stmts = indexed_stmts prog in
  let stmt_edits =
    List.concat_map
      (fun edit_kind ->
        List.filter_map
          (fun (i, s) ->
            if edit_applicable edit_kind s then
              Some (lazy (edit_nth prog i (apply_edit edit_kind)))
            else None)
          stmts)
      [ `Delete; `Unwrap; `Cond_false; `Cond_true ]
  in
  let func_edits =
    List.filter_map
      (fun fn ->
        if fn.f_name = "main" then None
        else
          Some
            (lazy { prog with p_funcs = List.filter (fun f -> f.f_name <> fn.f_name) prog.p_funcs }))
      prog.p_funcs
  in
  let global_edits =
    List.map
      (fun g ->
        lazy { prog with p_globals = List.filter (fun g' -> g'.g_name <> g.g_name) prog.p_globals })
      prog.p_globals
  in
  chunk_candidates prog @ func_edits @ global_edits @ stmt_edits
