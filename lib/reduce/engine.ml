open Dce_minic
module Campaign = Dce_campaign
module Compiler = Dce_compiler.Compiler
module Compile_cache = Dce_compiler.Compile_cache
module Passmgr = Dce_compiler.Passmgr
module Json = Dce_campaign.Json

type crash = { cr_round : int; cr_stage : string; cr_error : string }

type stats = {
  s_charged : int;
  s_predicate_runs : int;
  s_speculative : int;
  s_resumed : int;
  s_cache : Compile_cache.counters;
  s_stages : Predicate.stage_count list;
  s_pipelines_naive : int;
  s_pipelines_staged : int;
  s_pipelines_run : int;
  s_compile : Compiler.cache_stats;
  s_crashes : crash list;
  s_metrics : Campaign.Metrics.summary;
}

type result = {
  program : Ast.program;
  tests_run : int;
  rounds : int;
  initial_size : int;
  final_size : int;
  stats : stats;
}

let empty_counters =
  { Compile_cache.hits = 0; misses = 0; collisions = 0; entries = 0 }

let counters_delta (a : Compile_cache.counters) (b : Compile_cache.counters) =
  {
    Compile_cache.hits = b.hits - a.hits;
    misses = b.misses - a.misses;
    collisions = b.collisions - a.collisions;
    entries = b.entries - a.entries;
  }

let passmgr_delta (a : Passmgr.counters) (b : Passmgr.counters) =
  {
    Passmgr.meminfo_hits = b.meminfo_hits - a.meminfo_hits;
    meminfo_misses = b.meminfo_misses - a.meminfo_misses;
    cfg_hits = b.cfg_hits - a.cfg_hits;
    cfg_misses = b.cfg_misses - a.cfg_misses;
    dom_hits = b.dom_hits - a.dom_hits;
    dom_misses = b.dom_misses - a.dom_misses;
  }

(* ------------------------------------------------------------------ *)
(* journal records: one verdict per line, warm-starting the cache      *)
(* ------------------------------------------------------------------ *)

let encode_record predicate p v =
  let outcome =
    match v with
    | Predicate.Pass -> [ ("outcome", Json.String "pass") ]
    | Predicate.Rejected i ->
      [
        ("outcome", Json.String "rejected");
        ("stage", Json.Int i);
        ("stage_name", Json.String (List.nth (Predicate.stage_names predicate) i));
      ]
    | Predicate.Crashed { at; error } ->
      [ ("outcome", Json.String "crashed"); ("at", Json.String at); ("error", Json.String error) ]
  in
  Json.Obj (("src", Json.String (Pretty.program_to_string p)) :: outcome)

let decode_outcome nstages j =
  match Json.get_str j "outcome" with
  | "pass" -> Some Predicate.Pass
  | "rejected" ->
    let i = Json.get_int j "stage" in
    if i >= 0 && i < nstages then Some (Predicate.Rejected i) else None
  | "crashed" -> Some (Predicate.Crashed { at = Json.get_str j "at"; error = Json.get_str j "error" })
  | _ -> None
  | exception Failure _ -> None

(* Preload journaled verdicts into the cache.  A record that fails to parse
   or decode (truncated line, predicate shape change) is skipped — resume is
   best-effort, never load-bearing for correctness. *)
let preload vc nstages path =
  match Campaign.Journal.load ~path with
  | None -> 0
  | Some (_, records, _) ->
    List.fold_left
      (fun acc j ->
        match
          let src = Json.get_str j "src" in
          let p = Parser.parse_program src in
          Option.map (fun v -> (p, v)) (decode_outcome nstages j)
        with
        | Some (p, v) ->
          Compile_cache.add vc p v;
          acc + 1
        | None -> acc
        | exception _ -> acc)
      0 records

(* ------------------------------------------------------------------ *)
(* the engine                                                          *)
(* ------------------------------------------------------------------ *)

let reduce ?(max_tests = 4000) ?(jobs = 1) ?(cache = true) ?journal ~predicate prog =
  if jobs < 1 then invalid_arg "Engine.reduce: jobs must be >= 1";
  let wall0 = Unix.gettimeofday () in
  let stages0 = Predicate.counts predicate in
  let nstages = List.length stages0 in
  let compile0 = Compiler.cache_stats () in
  let pass0 = Passmgr.counters () in
  let vc = if cache then Some (Compile_cache.create ~hash:Ast.hash_program ~equal:( = ) ()) else None in
  let resumed =
    match (vc, journal) with Some c, Some path -> preload c nstages path | _ -> 0
  in
  let jnl =
    Option.map
      (fun path ->
        Campaign.Journal.open_append ~path
          {
            Campaign.Journal.h_campaign = "reduce";
            h_seed = Ast.hash_program prog;
            h_count = max_tests;
          })
      journal
  in
  let metrics = Campaign.Metrics.create () in
  let charged = ref 0 and predicate_runs = ref 0 and speculative = ref 0 in
  let pipelines_naive = ref 0 and pipelines_staged = ref 0 in
  let crashes = ref [] in
  let round = ref 0 in
  let note_computed p ((v, samples) : Predicate.outcome * (string * float) list) =
    incr predicate_runs;
    List.iter (fun (name, dt) -> Campaign.Metrics.record metrics name dt) samples;
    (match v with
    | Predicate.Crashed { at; error } ->
      crashes := { cr_round = !round; cr_stage = at; cr_error = error } :: !crashes
    | _ -> ());
    Option.iter (fun c -> Compile_cache.add c p v) vc;
    Option.iter (fun j -> Campaign.Journal.append j (encode_record predicate p v)) jnl;
    v
  in
  (* Resolve a batch of candidates to verdicts: consult the cache, evaluate
     the misses — on the campaign Domain pool when there are several and
     jobs > 1, inline otherwise.  All bookkeeping (cache insert, journal
     append, metrics, crash records) happens on the coordinator after the
     join; workers only run the predicate, whose counters are atomic and
     whose compile caches are mutex-guarded. *)
  let resolve_batch (batch : Ast.program array) =
    let n = Array.length batch in
    let slots = Array.make n None in
    let executed = Array.make n false in
    (match vc with
    | Some c -> Array.iteri (fun i p -> slots.(i) <- Compile_cache.find c p) batch
    | None -> ());
    let miss = Array.of_list (List.filter (fun i -> slots.(i) = None) (List.init n Fun.id)) in
    let m = Array.length miss in
    if m > 0 then begin
      let computed =
        if jobs = 1 || m = 1 then
          Array.map (fun i -> Predicate.run predicate batch.(i)) miss
        else begin
          let r =
            Campaign.Engine.run ~jobs:(min jobs m) ~count:m (fun ctx k ->
                Campaign.Engine.stage ctx "candidate" (fun () ->
                    Predicate.run predicate batch.(miss.(k))))
          in
          Array.map
            (function
              | Campaign.Engine.Done v -> v
              | Campaign.Engine.Crashed q ->
                (* backstop only: Predicate.run already catches stage
                   exceptions, so this covers harness-level failures *)
                ( Predicate.Crashed
                    { at = q.Campaign.Engine.q_stage; error = q.Campaign.Engine.q_error },
                  [] ))
            r.Campaign.Engine.outcomes
        end
      in
      Array.iteri
        (fun k res ->
          let i = miss.(k) in
          executed.(i) <- true;
          slots.(i) <- Some (note_computed batch.(i) res))
        computed
    end;
    (Array.map Option.get slots, executed)
  in
  let initial_size = Edits.count_stmts prog in
  let v0, _ = resolve_batch [| prog |] in
  (match v0.(0) with
  | Predicate.Pass ->
    (* the initial evaluation costs the same under every scheme *)
    pipelines_naive := Predicate.pipeline_stages predicate;
    pipelines_staged := Predicate.pipelines_for predicate Predicate.Pass
  | _ ->
    Option.iter Campaign.Journal.close jnl;
    invalid_arg "Reduce.reduce: initial program does not satisfy the predicate");
  (* Fixpoint rounds.  Charging is sequential-equivalent: walking the batch
     in candidate order, every candidate up to and including the accepted
     one costs one test, exactly as the sequential reducer would have spent
     — so tests_run, the accept sequence, and therefore the final program
     are identical for every [jobs] value and cache setting.  Work the
     parallel engine did past the accept point is counted separately as
     [speculative]. *)
  let rec rounds_loop prog nrounds =
    round := nrounds + 1;
    if !charged >= max_tests then (prog, nrounds)
    else begin
      (* parent size is loop-invariant: compute once per round, not per
         candidate *)
      let parent_size = Edits.count_stmts prog in
      let rec take want acc got stream =
        if got >= want then (List.rev acc, stream)
        else
          match stream with
          | [] -> (List.rev acc, [])
          | c :: rest ->
            let candidate = Lazy.force c in
            if Edits.count_stmts candidate < parent_size then
              take want (candidate :: acc) (got + 1) rest
            else take want acc got rest
      in
      let accepted = ref None in
      let stream = ref (Edits.candidates prog) in
      let continue_ = ref true in
      while !accepted = None && !continue_ do
        let budget = max_tests - !charged in
        if budget <= 0 then continue_ := false
        else begin
          let batch_list, rest = take (min jobs budget) [] 0 !stream in
          stream := rest;
          match batch_list with
          | [] -> continue_ := false
          | _ ->
            let batch = Array.of_list batch_list in
            let verdicts, executed = resolve_batch batch in
            let n = Array.length batch in
            let rec scan i =
              if i < n then begin
                incr charged;
                pipelines_naive := !pipelines_naive + Predicate.pipeline_stages predicate;
                pipelines_staged :=
                  !pipelines_staged + Predicate.pipelines_for predicate verdicts.(i);
                match verdicts.(i) with
                | Predicate.Pass ->
                  accepted := Some batch.(i);
                  for j = i + 1 to n - 1 do
                    if executed.(j) then incr speculative
                  done
                | _ -> scan (i + 1)
              end
            in
            scan 0
        end
      done;
      match !accepted with
      | Some next -> rounds_loop next (nrounds + 1)
      | None -> (prog, nrounds)
    end
  in
  let final, rounds = rounds_loop prog 0 in
  Option.iter Campaign.Journal.close jnl;
  let wall = Unix.gettimeofday () -. wall0 in
  let s_stages =
    List.map2
      (fun (a : Predicate.stage_count) (b : Predicate.stage_count) ->
        {
          Predicate.sc_name = b.sc_name;
          sc_cost = b.sc_cost;
          sc_entered = b.sc_entered - a.sc_entered;
          sc_rejected = b.sc_rejected - a.sc_rejected;
        })
      stages0 (Predicate.counts predicate)
  in
  let compile1 = Compiler.cache_stats () in
  let s_compile =
    {
      Compiler.cs_surviving = counters_delta compile0.Compiler.cs_surviving compile1.Compiler.cs_surviving;
      cs_lower_fn = counters_delta compile0.Compiler.cs_lower_fn compile1.Compiler.cs_lower_fn;
    }
  in
  let s_pipelines_run =
    if Predicate.uses_compile_cache predicate then
      s_compile.Compiler.cs_surviving.Compile_cache.misses
    else
      List.fold_left
        (fun acc (sc : Predicate.stage_count) ->
          if sc.sc_cost = Predicate.Pipeline then acc + sc.sc_entered else acc)
        0 s_stages
  in
  let stats =
    {
      s_charged = !charged;
      s_predicate_runs = !predicate_runs;
      s_speculative = !speculative;
      s_resumed = resumed;
      s_cache = (match vc with Some c -> Compile_cache.counters c | None -> empty_counters);
      s_stages;
      s_pipelines_naive = !pipelines_naive;
      s_pipelines_staged = !pipelines_staged;
      s_pipelines_run;
      s_compile;
      s_crashes = List.rev !crashes;
      s_metrics =
        Campaign.Metrics.summarize ~cases:!charged ~wall
          ~cache:(passmgr_delta pass0 (Passmgr.counters ()))
          metrics;
    }
  in
  {
    program = final;
    tests_run = !charged;
    rounds;
    initial_size;
    final_size = Edits.count_stmts final;
    stats;
  }

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)
(* ------------------------------------------------------------------ *)

let cost_name = function
  | Predicate.Free -> "free"
  | Predicate.Execution -> "execution"
  | Predicate.Pipeline -> "pipeline"

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let stats_to_string s =
  let b = Buffer.create 512 in
  Printf.bprintf b "charged tests        %d\n" s.s_charged;
  Printf.bprintf b "predicate runs       %d (%d cache hits, %d speculative, %d resumed)\n"
    s.s_predicate_runs s.s_cache.Compile_cache.hits s.s_speculative s.s_resumed;
  if s.s_cache.Compile_cache.collisions > 0 then
    Printf.bprintf b "verdict-cache collisions %d (checked, no aliasing)\n"
      s.s_cache.Compile_cache.collisions;
  Buffer.add_string b "stages (entered/rejected):\n";
  List.iter
    (fun (sc : Predicate.stage_count) ->
      Printf.bprintf b "  %-18s %6d / %-6d (%s)\n" sc.sc_name sc.sc_entered sc.sc_rejected
        (cost_name sc.sc_cost))
    s.s_stages;
  Printf.bprintf b "pipelines            %d run; naive predicate would run %d (%.1fx), staged-uncached %d (%.1fx)\n"
    s.s_pipelines_run s.s_pipelines_naive
    (ratio s.s_pipelines_naive (max 1 s.s_pipelines_run))
    s.s_pipelines_staged
    (ratio s.s_pipelines_staged (max 1 s.s_pipelines_run));
  let c = s.s_compile.Compiler.cs_surviving and l = s.s_compile.Compiler.cs_lower_fn in
  Printf.bprintf b "compile cache        surviving %d hits / %d misses; lower-fn %d hits / %d misses\n"
    c.Compile_cache.hits c.Compile_cache.misses l.Compile_cache.hits l.Compile_cache.misses;
  if s.s_crashes <> [] then
    Printf.bprintf b "quarantined          %d candidate crash(es), first at round %d in %s\n"
      (List.length s.s_crashes)
      (List.hd s.s_crashes).cr_round
      (List.hd s.s_crashes).cr_stage;
  Buffer.contents b

let counters_json (c : Compile_cache.counters) =
  Json.Obj
    [
      ("hits", Json.Int c.hits);
      ("misses", Json.Int c.misses);
      ("collisions", Json.Int c.collisions);
      ("entries", Json.Int c.entries);
    ]

let stats_json s =
  Json.Obj
    [
      ("charged_tests", Json.Int s.s_charged);
      ("predicate_runs", Json.Int s.s_predicate_runs);
      ("speculative_runs", Json.Int s.s_speculative);
      ("resumed", Json.Int s.s_resumed);
      ("verdict_cache", counters_json s.s_cache);
      ( "stages",
        Json.List
          (List.map
             (fun (sc : Predicate.stage_count) ->
               Json.Obj
                 [
                   ("name", Json.String sc.sc_name);
                   ("cost", Json.String (cost_name sc.sc_cost));
                   ("entered", Json.Int sc.sc_entered);
                   ("rejected", Json.Int sc.sc_rejected);
                 ])
             s.s_stages) );
      ( "pipelines",
        Json.Obj
          [
            ("naive", Json.Int s.s_pipelines_naive);
            ("staged_uncached", Json.Int s.s_pipelines_staged);
            ("run", Json.Int s.s_pipelines_run);
          ] );
      ( "compile_cache",
        Json.Obj
          [
            ("surviving", counters_json s.s_compile.Compiler.cs_surviving);
            ("lower_fn", counters_json s.s_compile.Compiler.cs_lower_fn);
          ] );
      ("crashes", Json.Int (List.length s.s_crashes));
    ]
