(** Auto-minimization of crash bundles.

    Glue between {!Dce_campaign.Bundle} and the reduction {!Engine}: replay
    a bundle's repro source against a caller-supplied fault predicate and
    shrink it while the fault still reproduces.  Lives here, not in the
    campaign library, because reduction depends on the campaign engine (the
    reverse dependency would be a cycle). *)

val minimize :
  ?max_tests:int ->
  still_faulty:(Dce_minic.Ast.program -> bool) ->
  Dce_campaign.Bundle.t ->
  Dce_campaign.Bundle.t
(** Reduce the bundle's [b_source] under [still_faulty] (typically "the
    analysis still raises"), filling [b_minimized] with the reduced source.
    Returns the bundle unchanged when it has no source, when the source no
    longer parses, when the fault does not reproduce on the full source
    (e.g. it needed the chaos plan armed), or when reduction itself fails —
    minimization is best-effort by design.  [max_tests] defaults to 500:
    crash repros shrink fast and the bundle path must never dominate a
    campaign. *)

val minimize_dir :
  ?max_tests:int ->
  still_faulty:(Dce_minic.Ast.program -> bool) ->
  dir:string ->
  unit ->
  int
(** Load every [case-*] bundle under [dir], minimize it, and rewrite the
    bundle (adding [repro-min.c]) when minimization made progress.  Returns
    the number of bundles minimized. *)
