(** The fast reduction engine: staged predicates, a content-addressed
    verdict cache, and deterministic parallel candidate search.

    The engine runs the same coarse-to-fine greedy reduction as the original
    {!Reduce.reduce}, but resolves each round's candidates through three
    cost layers:

    - the {!Predicate} stages reject cheap-first, so most candidates never
      reach a compiler pipeline;
    - a verdict cache keyed by the candidate's content hash
      ({!Dce_minic.Ast.hash_program}, structurally collision-checked)
      memoizes whole-predicate outcomes — duplicate candidates across
      rounds (chunk grids re-align constantly) cost one table probe;
    - candidate batches evaluate on the {!Dce_campaign.Engine} Domain pool.

    {b Determinism.}  Results are independent of [jobs] and [cache]: the
    engine walks candidates in the canonical {!Edits.candidates} order and
    accepts the lowest-index passing candidate; the test budget is charged
    {e sequential-equivalently} — one test per size-passing candidate in
    order, up to and including the accepted one, no charge for cache hits
    avoided or speculative work past the accept point.  [tests_run], the
    accept sequence, the round count, and the final program are therefore
    byte-identical to the pre-engine sequential reducer.  Speculative and
    memoized work shows up only in {!stats}.

    {b Fault isolation.}  A predicate stage that raises rejects only its
    candidate (recorded in [s_crashes] with round and stage); the campaign
    engine's quarantine is a second net under the Domain pool. *)

open Dce_minic

type crash = { cr_round : int; cr_stage : string; cr_error : string }

type stats = {
  s_charged : int;          (** budget charged — equals [tests_run] *)
  s_predicate_runs : int;   (** staged evaluations actually executed *)
  s_speculative : int;      (** executions past a batch's accept point *)
  s_resumed : int;          (** verdicts warm-started from the journal *)
  s_cache : Dce_compiler.Compile_cache.counters;  (** verdict cache *)
  s_stages : Predicate.stage_count list;  (** per-stage deltas, this run *)
  s_pipelines_naive : int;
      (** pipelines the unstaged predicate would have run (per charged test) *)
  s_pipelines_staged : int;
      (** pipelines a staged-but-uncached evaluation of the charged verdicts
          would have run *)
  s_pipelines_run : int;    (** full pipelines actually executed *)
  s_compile : Dce_compiler.Compiler.cache_stats;  (** compile-cache deltas *)
  s_crashes : crash list;   (** quarantined candidates, oldest first *)
  s_metrics : Dce_campaign.Metrics.summary;
      (** per-stage wall-time percentiles; cases = charged tests *)
}

type result = {
  program : Ast.program;
  tests_run : int;
  rounds : int;
  initial_size : int;
  final_size : int;
  stats : stats;
}

val reduce :
  ?max_tests:int ->
  ?jobs:int ->
  ?cache:bool ->
  ?journal:string ->
  predicate:Predicate.t ->
  Ast.program ->
  result
(** [reduce ~predicate prog].  Defaults: [max_tests] 4000, [jobs] 1,
    [cache] on, no journal.

    [journal] names a JSONL file recording every computed verdict (program
    text + outcome); an existing journal warm-starts the verdict cache, so
    an interrupted reduction resumes without re-running what it already
    learned.  Journal warm-start requires [cache]; the header binds the
    journal to this initial program and budget (mismatch raises [Failure],
    as in {!Dce_campaign.Journal}).

    Raises [Invalid_argument] if [jobs < 1] or the initial program does not
    satisfy the predicate. *)

val stats_to_string : stats -> string
(** Human-readable block (stage table, pipeline ratios, cache counters). *)

val stats_json : stats -> Dce_campaign.Json.t
(** Machine-readable form of the same, used by the bench dump. *)
