module Bundle = Dce_campaign.Bundle
module Ast = Dce_minic.Ast

let parse_source src =
  match Dce_minic.Parser.parse_program src with
  | prog -> Some prog
  | exception _ -> None

let minimize ?(max_tests = 500) ~still_faulty (b : Bundle.t) =
  match b.Bundle.b_source with
  | None -> b
  | Some src -> (
    match parse_source src with
    | None -> b
    | Some prog ->
      (* the reducer refuses an initial program that fails its predicate;
         probing first keeps non-reproducible faults (chaos-injected ones
         replayed without the plan armed) a silent skip, not an error *)
      let reproduces = try still_faulty prog with _ -> false in
      if not reproduces then b
      else (
        try
          let r =
            Engine.reduce ~max_tests ~predicate:(Predicate.of_fun still_faulty) prog
          in
          if r.Engine.final_size < r.Engine.initial_size then
            {
              b with
              Bundle.b_minimized = Some (Dce_minic.Pretty.program_to_string r.Engine.program);
            }
          else b
        with _ -> b))

let minimize_dir ?max_tests ~still_faulty ~dir () =
  if not (Sys.file_exists dir) then 0
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun n entry ->
           if String.length entry >= 5 && String.sub entry 0 5 = "case-" then (
             let cdir = Filename.concat dir entry in
             match Bundle.load cdir with
             | Some b when b.Bundle.b_minimized = None -> (
               let b' = minimize ?max_tests ~still_faulty b in
               match b'.Bundle.b_minimized with
               | Some _ ->
                 ignore (Bundle.write ~dir b');
                 n + 1
               | None -> n)
             | Some _ | None -> n)
           else n)
         0
