open Dce_minic
module Compile_cache = Dce_compiler.Compile_cache

type cost = Free | Execution | Pipeline

type stage = {
  st_name : string;
  st_cost : cost;
  st_run : Ast.program -> Ast.program option;
}

type outcome =
  | Pass
  | Rejected of int
  | Crashed of { at : string; error : string }

type stage_count = {
  sc_name : string;
  sc_cost : cost;
  sc_entered : int;
  sc_rejected : int;
}

type t = {
  stages : stage array;
  entered : int Atomic.t array;
  rejected : int Atomic.t array;
  compile_cached : bool;
}

let v ?(compile_cached = false) stages =
  if stages = [] then invalid_arg "Predicate.v: empty stage list";
  let stages = Array.of_list stages in
  let n = Array.length stages in
  {
    stages;
    entered = Array.init n (fun _ -> Atomic.make 0);
    rejected = Array.init n (fun _ -> Atomic.make 0);
    compile_cached;
  }

let stage_names t = Array.to_list (Array.map (fun s -> s.st_name) t.stages)
let uses_compile_cache t = t.compile_cached

let run t prog =
  let samples = ref [] in
  let rec go i p =
    if i >= Array.length t.stages then Pass
    else begin
      let st = t.stages.(i) in
      (* supervision poll, deliberately outside the catch below: a budget
         trip must quarantine the whole case as a timeout, not be swallowed
         as one candidate's crash *)
      Dce_support.Guard.poll ~site:("reduce:" ^ st.st_name);
      Atomic.incr t.entered.(i);
      let t0 = Unix.gettimeofday () in
      let res = try Ok (st.st_run p) with e -> Error (Printexc.to_string e) in
      samples := (st.st_name, Unix.gettimeofday () -. t0) :: !samples;
      match res with
      | Ok (Some p') -> go (i + 1) p'
      | Ok None ->
        Atomic.incr t.rejected.(i);
        Rejected i
      | Error error ->
        Atomic.incr t.rejected.(i);
        Crashed { at = st.st_name; error }
    end
  in
  let verdict = go 0 prog in
  (verdict, List.rev !samples)

let counts t =
  Array.to_list
    (Array.mapi
       (fun i st ->
         {
           sc_name = st.st_name;
           sc_cost = st.st_cost;
           sc_entered = Atomic.get t.entered.(i);
           sc_rejected = Atomic.get t.rejected.(i);
         })
       t.stages)

let pipeline_stages t =
  Array.fold_left (fun acc st -> if st.st_cost = Pipeline then acc + 1 else acc) 0 t.stages

(* Pipeline-cost stages an uncached staged run executes to reach [outcome]:
   all of them for a pass, only those before the rejecting stage otherwise.
   This is the "staged but unmemoized" baseline the stats compare against. *)
let pipelines_for t outcome =
  let upto n =
    let acc = ref 0 in
    for i = 0 to n - 1 do
      if t.stages.(i).st_cost = Pipeline then incr acc
    done;
    !acc
  in
  match outcome with
  | Pass -> upto (Array.length t.stages)
  | Rejected i -> upto (i + 1) (* the rejecting stage itself ran *)
  | Crashed { at; _ } ->
    let idx = ref (Array.length t.stages) in
    Array.iteri (fun i st -> if st.st_name = at && !idx = Array.length t.stages then idx := i) t.stages;
    upto (min (!idx + 1) (Array.length t.stages))

let outcome_name t = function
  | Pass -> "pass"
  | Rejected i -> Printf.sprintf "rejected:%s" t.stages.(i).st_name
  | Crashed { at; _ } -> Printf.sprintf "crashed:%s" at

let typecheck_stage =
  {
    st_name = "typecheck";
    st_cost = Free;
    st_run =
      (fun p -> match Typecheck.check p with Ok normalized -> Some normalized | Error _ -> None);
  }

let of_fun predicate =
  v
    [
      typecheck_stage;
      {
        st_name = "predicate";
        st_cost = Execution;
        st_run = (fun p -> if predicate p then Some p else None);
      };
    ]

let survives_in ~compile_cache ~marker (cfg : Dce_core.Differential.config) p =
  if compile_cache then
    List.mem marker
      (Dce_compiler.Compiler.surviving_markers_cached cfg.compiler ?version:cfg.version cfg.level p)
  else Dce_ir.Ir.Iset.mem marker (Dce_core.Differential.surviving cfg p)

let marker_diff ?exec ~compile_cache ~keep_missed_by ~eliminated_by ~marker () =
  let survives = survives_in ~compile_cache ~marker in
  v ~compile_cached:compile_cache
    [
      typecheck_stage;
      (* free syntactic pre-filter: a marker that is no longer in the program
         at all cannot be in the ground truth's dead set, so the expensive
         interpreter run below would reject anyway *)
      {
        st_name = "marker-present";
        st_cost = Free;
        st_run = (fun p -> if List.mem marker (Ast.markers_of_program p) then Some p else None);
      };
      {
        st_name = "ground-truth";
        st_cost = Execution;
        st_run =
          (fun p ->
            match Dce_core.Ground_truth.compute ?exec p with
            | Dce_core.Ground_truth.Valid truth
              when Dce_ir.Ir.Iset.mem marker truth.Dce_core.Ground_truth.dead ->
              Some p
            | _ -> None);
      };
      {
        st_name = "keeper-survives";
        st_cost = Pipeline;
        st_run = (fun p -> if survives keep_missed_by p then Some p else None);
      };
      {
        st_name = "eliminator-kills";
        st_cost = Pipeline;
        st_run = (fun p -> if survives eliminated_by p then None else Some p);
      };
    ]

(* The size-oracle reduction predicate: keep shrinking while [larger]'s
   output still exceeds [smaller]'s by the ratio (and by [min_gap]
   instructions — tiny programs make impressive ratios out of a two-instr
   difference, and a repro below the absolute floor stops being a repro).
   The valid-execution stage keeps the candidate a campaign-valid test case,
   exactly the rejection rule of the hunt that produced the finding. *)
let size_gap ?exec ~compile_cache ~larger ~smaller ?(min_ratio = 1.25) ?(min_gap = 1) () =
  let size (cfg : Dce_core.Differential.config) p =
    Dce_core.Differential.asm_size ~cache:compile_cache cfg p
  in
  v ~compile_cached:compile_cache
    [
      typecheck_stage;
      {
        st_name = "valid-execution";
        st_cost = Execution;
        st_run =
          (fun p ->
            match Dce_core.Ground_truth.compute ?exec p with
            | Dce_core.Ground_truth.Valid _ -> Some p
            | Dce_core.Ground_truth.Rejected _ -> None);
      };
      (* one stage, two pipelines: the gap needs both sizes at once, and a
         stage cannot pass a value forward — so pipelines_for undercounts
         this stage by one (with the compile cache on, real counts come off
         the cache anyway) *)
      {
        st_name = "size-gap";
        st_cost = Pipeline;
        st_run =
          (fun p ->
            let ls = size larger p and ss = size smaller p in
            if
              ls > ss
              && ls - ss >= min_gap
              && float_of_int ls >= min_ratio *. float_of_int ss
            then Some p
            else None);
      };
    ]

(* The inversion-oracle reduction predicate: within one compiler, the marker
   must stay dead by execution, eliminated at the weak level, and alive at
   the strong one — {!marker_diff} with both configs pointing at the same
   compiler. *)
let level_inversion ?exec ~compile_cache ~compiler ~low ~high ~marker () =
  let survives level p =
    survives_in ~compile_cache ~marker
      { Dce_core.Differential.compiler; level; version = None }
      p
  in
  v ~compile_cached:compile_cache
    [
      typecheck_stage;
      {
        st_name = "marker-present";
        st_cost = Free;
        st_run = (fun p -> if List.mem marker (Ast.markers_of_program p) then Some p else None);
      };
      {
        st_name = "ground-truth";
        st_cost = Execution;
        st_run =
          (fun p ->
            match Dce_core.Ground_truth.compute ?exec p with
            | Dce_core.Ground_truth.Valid truth
              when Dce_ir.Ir.Iset.mem marker truth.Dce_core.Ground_truth.dead ->
              Some p
            | _ -> None);
      };
      {
        st_name = "low-eliminates";
        st_cost = Pipeline;
        st_run = (fun p -> if survives low p then None else Some p);
      };
      {
        st_name = "high-keeps";
        st_cost = Pipeline;
        st_run = (fun p -> if survives high p then Some p else None);
      };
    ]
