(** Test-case reduction (the C-Reduce role in the paper's workflow).

    Greedy delta debugging over MiniC ASTs, coarse-to-fine like ddmin: first
    try deleting large contiguous statement chunks (halves, quarters,
    eighths), then single-statement edits — delete a statement, promote a
    branch body over its [if], unwrap loops and switches, drop whole
    functions or globals, simplify condition expressions to constants —
    keeping an edit whenever the caller's interestingness predicate still
    holds (the paper's predicate: one compiler eliminates the marker, the
    other does not; §4.3).

    Candidates that fail the type checker are rejected before the predicate
    runs, so the predicate only ever sees well-formed programs.  Marker ids
    are never renumbered (predicates usually name a specific marker).

    This module is the stable opaque-predicate interface; it delegates to
    {!Engine}, which additionally offers staged predicates ({!Predicate}),
    verdict caching, parallel candidate search, and per-stage statistics.
    {!reduce_reference} is the original sequential implementation, kept as
    a differential oracle for the engine. *)

type result = {
  program : Dce_minic.Ast.program;  (** the reduced program *)
  tests_run : int;                  (** predicate evaluations *)
  rounds : int;                     (** accepted-edit iterations *)
  initial_size : int;               (** statement count before *)
  final_size : int;
}

val reduce :
  ?max_tests:int ->
  predicate:(Dce_minic.Ast.program -> bool) ->
  Dce_minic.Ast.program ->
  result
(** [reduce ~predicate prog] — [prog] must satisfy the predicate (raises
    [Invalid_argument] otherwise). Default test budget: 4000. *)

val reduce_reference :
  ?max_tests:int ->
  predicate:(Dce_minic.Ast.program -> bool) ->
  Dce_minic.Ast.program ->
  result
(** The pre-engine sequential reducer, unchanged — the oracle {!reduce}
    (and the engine at any [jobs]/cache setting) must agree with, field for
    field.  Exercised by the test suite; not meant for production use. *)

val marker_diff_predicate :
  keep_missed_by:Dce_core.Differential.config ->
  eliminated_by:Dce_core.Differential.config ->
  marker:int ->
  Dce_minic.Ast.program ->
  bool
(** The paper's interestingness check for an (already instrumented) program:
    ground truth accepts it, [marker] is dead, the first configuration keeps
    it, the second eliminates it.  The staged equivalent (cheaper and
    cache-aware) is {!Predicate.marker_diff}. *)
