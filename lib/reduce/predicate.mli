(** Staged interestingness predicates.

    The original reducer's predicate was one opaque [program -> bool] whose
    every call cost two full compiler pipelines plus a ground-truth
    interpreter run.  A staged predicate splits that check into an ordered
    list of stages, cheapest first, each of which can reject on its own —
    so a candidate that fails to typecheck, or that no longer even contains
    the marker, never reaches a compiler.  Each stage is individually
    counted (entered / rejected, process-wide atomics, so counts are exact
    under the parallel engine) and individually timed.

    A stage may rewrite the program it passes on: the typecheck stage
    forwards the {e normalized} program, exactly as the original reducer
    did before calling its predicate.

    Stage exceptions are caught and attributed ([Crashed]) rather than
    propagated — the engine's per-candidate fault isolation. *)

open Dce_minic

type cost =
  | Free       (** syntactic / table lookup — negligible *)
  | Execution  (** one reference-interpreter run *)
  | Pipeline   (** one full compiler pipeline *)

type stage = {
  st_name : string;
  st_cost : cost;
  st_run : Ast.program -> Ast.program option;
      (** [Some p'] passes (possibly rewritten program), [None] rejects *)
}

type outcome =
  | Pass
  | Rejected of int  (** index of the rejecting stage *)
  | Crashed of { at : string; error : string }
      (** a stage raised; treated as a rejection by the engine *)

type stage_count = {
  sc_name : string;
  sc_cost : cost;
  sc_entered : int;
  sc_rejected : int;
}

type t

val v : ?compile_cached:bool -> stage list -> t
(** Build a predicate from ordered stages (cheapest first by convention).
    [compile_cached] declares that pipeline stages go through
    {!Dce_compiler.Compiler.surviving_markers_cached}, which tells the
    engine to read real pipeline counts off the compile cache.  Raises
    [Invalid_argument] on an empty list. *)

val of_fun : (Ast.program -> bool) -> t
(** Wrap an opaque predicate as [typecheck; predicate] — the exact check
    sequence of the original reducer. *)

val marker_diff :
  ?exec:Dce_exec.Exec.backend ->
  compile_cache:bool ->
  keep_missed_by:Dce_core.Differential.config ->
  eliminated_by:Dce_core.Differential.config ->
  marker:int ->
  unit ->
  t
(** The paper's reduction predicate, staged:
    typecheck → marker-present (free syntactic filter) → ground-truth
    (marker dead under execution) → keeper-survives → eliminator-kills.
    Equivalent to {!Dce_reduce.Reduce.marker_diff_predicate} preceded by
    typechecking.  [exec] selects the ground-truth executor backend
    (default ambient). *)

val size_gap :
  ?exec:Dce_exec.Exec.backend ->
  compile_cache:bool ->
  larger:Dce_core.Differential.config ->
  smaller:Dce_core.Differential.config ->
  ?min_ratio:float ->
  ?min_gap:int ->
  unit ->
  t
(** The size-oracle predicate, staged: typecheck → valid-execution (the
    candidate must still be a campaign-valid test case: no trap, no fuel
    exhaustion) → size-gap ([larger]'s output strictly bigger than
    [smaller]'s, by at least [min_ratio] (default 1.25) {e and} [min_gap]
    instructions (default 1 — raise it to stop tiny programs passing on
    ratio alone)).  For an intra-compiler finding, pass the same compiler at
    [-Os] as [larger] and [-O2] as [smaller] with [min_ratio = 1.0].  The
    size-gap stage runs two pipelines (both sizes at once), which
    {!pipelines_for} counts as one — with [compile_cache] the engine reads
    real pipeline counts off the compile cache instead. *)

val level_inversion :
  ?exec:Dce_exec.Exec.backend ->
  compile_cache:bool ->
  compiler:Dce_compiler.Compiler.t ->
  low:Dce_compiler.Level.t ->
  high:Dce_compiler.Level.t ->
  marker:int ->
  unit ->
  t
(** The inversion-oracle predicate, staged like {!marker_diff} but within
    one compiler: typecheck → marker-present → ground-truth (marker dead) →
    low-eliminates ([low] kills the marker) → high-keeps ([high] keeps
    it). *)

val run : t -> Ast.program -> outcome * (string * float) list
(** Evaluate, first stage first, stopping at the first rejection.  Returns
    the outcome and the [(stage, seconds)] wall-time samples of the stages
    that actually ran.  Domain-safe. *)

val stage_names : t -> string list
val counts : t -> stage_count list
(** Cumulative per-stage counters, in stage order (process lifetime; the
    engine reports deltas per reduction). *)

val uses_compile_cache : t -> bool
val pipeline_stages : t -> int
(** Number of [Pipeline]-cost stages — the per-test pipeline cost of the
    naive (unstaged) predicate. *)

val pipelines_for : t -> outcome -> int
(** Pipelines an uncached staged evaluation runs to reach this outcome. *)

val outcome_name : t -> outcome -> string
