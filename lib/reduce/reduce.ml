open Dce_minic
open Ast

type result = {
  program : program;
  tests_run : int;
  rounds : int;
  initial_size : int;
  final_size : int;
}

(* The public entry point delegates to the engine at jobs = 1 with the
   verdict cache off: with an opaque predicate the caller may be counting
   calls, so every charged candidate must reach it, exactly as before. *)
let reduce ?(max_tests = 4000) ~predicate prog =
  let r = Engine.reduce ~max_tests ~jobs:1 ~cache:false ~predicate:(Predicate.of_fun predicate) prog in
  {
    program = r.Engine.program;
    tests_run = r.Engine.tests_run;
    rounds = r.Engine.rounds;
    initial_size = r.Engine.initial_size;
    final_size = r.Engine.final_size;
  }

(* ------------------------------------------------------------------ *)
(* reference implementation                                            *)
(* ------------------------------------------------------------------ *)

(* The pre-engine sequential reducer, kept verbatim as a differential
   oracle (the {!Dce_compiler.Pipeline.run_reference} idiom): the test
   suite asserts the engine reproduces its exact results over a seeded
   corpus.  Note it generates no-op statement edits the engine's candidate
   stream skips — they can never be charged (the strict-shrink size filter
   rejects them), which is precisely the equivalence the tests check. *)

let reference_candidates prog =
  let n = stmt_count prog in
  let stmt_edits =
    List.concat_map
      (fun edit_kind ->
        List.init n (fun i ->
            lazy
              (Edits.edit_nth prog i (fun s ->
                   match (edit_kind, s) with
                   | `Delete, _ -> []
                   | `Unwrap, Sif (_, bt, []) -> bt
                   | `Unwrap, Sif (_, bt, bf) -> if bt = [] then bf else bt
                   | `Unwrap, Swhile (_, b) -> b
                   | `Unwrap, Sfor (_, _, _, b) -> b
                   | `Unwrap, Sswitch (_, cases, dflt) -> List.concat_map snd cases @ dflt
                   | `Unwrap, Sblock b -> b
                   | `Unwrap, _ -> [ s ]
                   | `Cond_false, Sif (_, bt, bf) -> [ Sif (Int 0, bt, bf) ]
                   | `Cond_false, Swhile (_, b) -> [ Swhile (Int 0, b) ]
                   | `Cond_false, _ -> [ s ]
                   | `Cond_true, Sif (_, bt, bf) -> [ Sif (Int 1, bt, bf) ]
                   | `Cond_true, _ -> [ s ]))))
      [ `Delete; `Unwrap; `Cond_false; `Cond_true ]
  in
  let func_edits =
    List.filter_map
      (fun fn ->
        if fn.f_name = "main" then None
        else
          Some
            (lazy { prog with p_funcs = List.filter (fun f -> f.f_name <> fn.f_name) prog.p_funcs }))
      prog.p_funcs
  in
  let global_edits =
    List.map
      (fun g ->
        lazy { prog with p_globals = List.filter (fun g' -> g'.g_name <> g.g_name) prog.p_globals })
      prog.p_globals
  in
  Edits.chunk_candidates prog @ func_edits @ global_edits @ stmt_edits

let reduce_reference ?(max_tests = 4000) ~predicate prog =
  if not (predicate prog) then
    invalid_arg "Reduce.reduce: initial program does not satisfy the predicate";
  let tests = ref 0 in
  let initial_size = Edits.count_stmts prog in
  let check candidate =
    if !tests >= max_tests then false
    else begin
      incr tests;
      match Typecheck.check candidate with
      | Ok normalized -> predicate normalized
      | Error _ -> false
    end
  in
  let rec fixpoint prog rounds =
    if !tests >= max_tests then (prog, rounds)
    else begin
      let accepted = ref None in
      let cands = reference_candidates prog in
      let rec try_all = function
        | [] -> ()
        | c :: rest ->
          if !accepted = None && !tests < max_tests then begin
            let candidate = Lazy.force c in
            (* only consider candidates that are actually smaller or equal
               with structural change *)
            if Edits.count_stmts candidate < Edits.count_stmts prog && check candidate then
              accepted := Some candidate
            else try_all rest
          end
      in
      try_all cands;
      match !accepted with
      | Some next -> fixpoint next (rounds + 1)
      | None -> (prog, rounds)
    end
  in
  let final, rounds = fixpoint prog 0 in
  {
    program = final;
    tests_run = !tests;
    rounds;
    initial_size;
    final_size = Edits.count_stmts final;
  }

let marker_diff_predicate ~keep_missed_by ~eliminated_by ~marker prog =
  match Dce_core.Ground_truth.compute prog with
  | Dce_core.Ground_truth.Rejected _ -> false
  | Dce_core.Ground_truth.Valid truth ->
    Dce_ir.Ir.Iset.mem marker truth.Dce_core.Ground_truth.dead
    &&
    let survives cfg = Dce_ir.Ir.Iset.mem marker (Dce_core.Differential.surviving cfg prog) in
    survives keep_missed_by && not (survives eliminated_by)
