(** Candidate generation for the reducer: the edit vocabulary and its
    ordering.

    Extracted from the original monolithic [Reduce] so the engine, the
    reference reducer, and the tests share one candidate stream.  The
    ordering contract matters: {!candidates} yields coarse chunk deletions
    (halves, quarters, eighths), then whole-function drops, then global
    drops, then per-statement edits (delete, unwrap, condition-to-false,
    condition-to-true, each over ascending statement indices).  The engine
    accepts the lowest-index passing candidate, so this order fully
    determines the reduction path.

    No-op candidates (edits that cannot change the statement they target,
    e.g. [`Unwrap] of a plain expression statement) are skipped at
    generation time: they reproduce the parent program verbatim, so the
    strict-shrink size filter could never charge them — skipping preserves
    the charged-test sequence exactly while avoiding the AST clone. *)

open Dce_minic

val count_stmts : Ast.program -> int
(** The reducer's size metric: [10 × (statements + globals + functions) +
    expression nodes].  Statements dominate; expression nodes break ties so
    condition-to-constant edits count as progress. *)

val edit_nth : Ast.program -> int -> (Ast.stmt -> Ast.stmt list) -> Ast.program
(** Apply an edit to the [n]th statement in preorder over all function
    bodies (a [for]'s init/step statements are not numbered). *)

val delete_range : Ast.program -> int -> int -> Ast.program
(** [delete_range prog lo len] drops statements [lo, lo+len) of the same
    preorder numbering, subtrees included. *)

val chunk_candidates : Ast.program -> Ast.program Lazy.t list
(** The coarse ddmin-style phase: contiguous chunk deletions at denominators
    2, 4, 8. *)

val candidates : Ast.program -> Ast.program Lazy.t list
(** The full ordered candidate stream for one round (see the module
    preamble for the ordering contract). *)
