module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir
module Smith = Dce_smith.Smith
module Campaign = Dce_campaign
module Engine = Campaign.Engine
module Fabric = Campaign.Fabric
module Json = Campaign.Json
module Run_store = Campaign.Run_store

(* The A/B verification campaign: a lean differential sweep over the smoke
   corpus producing a {!Run_store.report} — per-configuration missed
   markers, assembly sizes, and level inversions — for base and patched
   compilers alike.

   Compilers carry a display name separate from their cache identity: the
   patched compiler compiles under its own (signature-bearing) name, so the
   cache never aliases base and patched cells, but its report rows carry the
   base compiler's name, so campaign-diff compares the two runs row by row.
   The rival compiler keeps its identity in both runs — every one of its
   (level, program) cells in the patched run is a cache hit from the base
   run, which is what makes verification cheap. *)

let default_levels = [ C.Level.O1; C.Level.Os; C.Level.O2; C.Level.O3 ]

type vrow = {
  vr_compiler : string;  (** display name *)
  vr_level : C.Level.t;
  vr_missed : int list;  (** dead markers this configuration kept, sorted *)
  vr_size : int;
}

type vcase = { vc_seed : int; vc_rejected : string option; vc_rows : vrow list }

type t = {
  vy_report : Run_store.report;
  vy_metrics : Campaign.Metrics.summary;
  vy_quarantine : Engine.quarantined list;
  vy_resumed : int;
}

(* ---------------- journal codec ---------------- *)

let level_to_json l = Json.String (C.Level.to_string l)

let level_of_json j =
  match Option.bind (Json.to_str j) C.Level.of_string with
  | Some l -> l
  | None -> failwith "journal record: bad level"

let encode_case c =
  let common = [ ("kind", Json.String "verify-case"); ("seed", Json.Int c.vc_seed) ] in
  match c.vc_rejected with
  | Some reason -> Json.Obj (common @ [ ("rejected", Json.String reason) ])
  | None ->
    Json.Obj
      (common
      @ [
          ( "rows",
            Json.List
              (List.map
                 (fun r ->
                   Json.Obj
                     [
                       ("compiler", Json.String r.vr_compiler);
                       ("level", level_to_json r.vr_level);
                       ("missed", Json.List (List.map (fun m -> Json.Int m) r.vr_missed));
                       ("size", Json.Int r.vr_size);
                     ])
                 c.vc_rows) );
        ])

let decode_case j =
  (match Json.get_str j "kind" with
   | "verify-case" -> ()
   | other -> failwith (Printf.sprintf "journal record: unknown case kind %S" other));
  let seed = Json.get_int j "seed" in
  match Json.member "rejected" j with
  | Some reason ->
    { vc_seed = seed; vc_rejected = Some (Option.get (Json.to_str reason)); vc_rows = [] }
  | None ->
    let row r =
      {
        vr_compiler = Json.get_str r "compiler";
        vr_level = level_of_json (Json.get r "level");
        vr_missed = List.map Json.int_exn (Json.get_list r "missed");
        vr_size = Json.get_int r "size";
      }
    in
    { vc_seed = seed; vc_rejected = None; vc_rows = List.map row (Json.get_list j "rows") }

let codec = { Engine.encode = encode_case; decode = decode_case }

(* ---------------- the campaign ---------------- *)

let campaign ?journal ?fuel ?exec ?(workers = 1) ?chunk ?(jobs = 1) ?(levels = default_levels)
    ~name ~compilers ~seed ~count () =
  let seeds = Array.of_list (Smith.corpus_seeds ~seed ~count) in
  let runner ctx i =
    let case_seed = seeds.(i) in
    let raw =
      Engine.stage ctx "generate" (fun () -> fst (Smith.generate (Smith.default_config case_seed)))
    in
    let instrumented = Engine.stage ctx "instrument" (fun () -> Core.Instrument.program raw) in
    match
      Engine.stage ctx "ground-truth" (fun () -> Core.Ground_truth.compute ?exec ?fuel instrumented)
    with
    | Core.Ground_truth.Rejected reason ->
      { vc_seed = case_seed; vc_rejected = Some reason; vc_rows = [] }
    | Core.Ground_truth.Valid truth ->
      let dead = truth.Core.Ground_truth.dead in
      let rows =
        Engine.stage ctx "differential" (fun () ->
            List.concat_map
              (fun (compiler, display) ->
                List.map
                  (fun level ->
                    let obs = C.Compiler.observables_cached compiler level instrumented in
                    let missed =
                      List.filter (fun m -> Ir.Iset.mem m dead) obs.C.Compiler.obs_markers
                    in
                    {
                      vr_compiler = display;
                      vr_level = level;
                      vr_missed = missed;
                      vr_size = obs.C.Compiler.obs_size;
                    })
                  levels)
              compilers)
      in
      { vc_seed = case_seed; vc_rejected = None; vc_rows = rows }
  in
  let result =
    Fabric.run ?journal ~codec ~campaign:name ~seed ?chunk ~workers ~jobs ~count runner
  in
  (* fold the case outcomes into the cross-run report *)
  let misses = ref [] and sizes = ref [] and invs = ref [] in
  let rejected = ref [] and quarantined = ref [] in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Engine.Crashed _ -> quarantined := i :: !quarantined
      | Engine.Done { vc_rejected = Some _; _ } -> rejected := i :: !rejected
      | Engine.Done { vc_rows; _ } ->
        List.iter
          (fun r ->
            sizes :=
              {
                Run_store.z_case = i;
                z_compiler = r.vr_compiler;
                z_level = r.vr_level;
                z_size = r.vr_size;
              }
              :: !sizes;
            List.iter
              (fun m ->
                misses :=
                  {
                    Run_store.m_case = i;
                    m_compiler = r.vr_compiler;
                    m_level = r.vr_level;
                    m_marker = m;
                  }
                  :: !misses)
              r.vr_missed)
          vc_rows;
        (* level inversions, per display compiler, from the missed sets:
           restricted to dead markers, missed ≡ surviving, so the pure
           oracle applies unchanged *)
        let by_compiler = Hashtbl.create 4 in
        List.iter
          (fun r ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt by_compiler r.vr_compiler) in
            Hashtbl.replace by_compiler r.vr_compiler
              ((r.vr_level, Ir.Iset.of_list r.vr_missed) :: prev))
          vc_rows;
        List.iter
          (fun (_, display) ->
            match Hashtbl.find_opt by_compiler display with
            | None -> ()
            | Some per_level ->
              let dead =
                List.fold_left (fun acc (_, s) -> Ir.Iset.union acc s) Ir.Iset.empty per_level
              in
              List.iter
                (fun (iv : Core.Differential.inversion) ->
                  invs :=
                    {
                      Run_store.v_case = i;
                      v_compiler = display;
                      v_marker = iv.Core.Differential.iv_marker;
                      v_low = iv.Core.Differential.iv_low;
                      v_high = iv.Core.Differential.iv_high;
                    }
                    :: !invs)
                (Core.Differential.inversions ~dead per_level))
          compilers)
    result.Engine.outcomes;
  let report =
    Run_store.sort_report
      {
        Run_store.r_campaign = name;
        r_seed = seed;
        r_count = count;
        r_compilers = List.map snd compilers;
        r_misses = !misses;
        r_sizes = !sizes;
        r_inversions = !invs;
        r_rejected = !rejected;
        r_quarantined = !quarantined;
      }
  in
  {
    vy_report = report;
    vy_metrics = result.Engine.metrics;
    vy_quarantine = result.Engine.quarantine;
    vy_resumed = result.Engine.resumed;
  }
