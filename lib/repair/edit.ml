module C = Dce_compiler
module Diagnose = Dce_core.Diagnose

(* A candidate fix is a set of catalogue repairs expressed as synthetic
   commits, so it composes with everything the commit model already does:
   [features_at] folds it into the feature matrix, bisection can walk over
   it, and [explain --history] shows it like any upstream commit.

   The edit is scoped to levels at least as strong as the repro's level
   (the gcc_sim/llvm_sim [at_least] combinator): an -O3 repair changes only
   -O3 behaviour, which keeps the A/B verification diff focused on the
   level under repair. *)

let commit_of_repair ~level (r : Diagnose.repair) =
  C.Version.make_commit
    ~summary:
      (Printf.sprintf "repair: %s (%s and stronger)" r.Diagnose.repair_name
         (C.Level.to_string level))
    ~component:r.Diagnose.repair_component ~files:[]
    (fun l f -> if C.Level.compare_strength l level >= 0 then r.Diagnose.edit f else f)

let signature edits =
  String.concat "+" (List.map (fun r -> r.Diagnose.repair_name) edits)

(* The patched compiler's name embeds the full edit signature, NOT a hash of
   it: the content-addressed compile cache keys on the compiler name, so two
   distinct candidates must never share a name — a truncated hash could
   silently alias them and corrupt every verdict downstream. *)
let patched_name (base : C.Compiler.t) edits =
  Printf.sprintf "%s+fix.%s" base.C.Compiler.name (signature edits)

(* Repair commits slot in between HEAD and the post-HEAD fixes: [head] of
   the patched history counts them (they are not post_head), so the default
   feature matrix includes them, while the upstream post-HEAD fixes stay
   where the triage model expects them. *)
let patched (base : C.Compiler.t) ~level edits =
  if edits = [] then invalid_arg "Edit.patched: empty edit set";
  let pre, post =
    List.partition (fun c -> not c.C.Version.post_head) base.C.Compiler.history
  in
  let commits = List.map (commit_of_repair ~level) edits in
  C.Compiler.create ~name:(patched_name base edits) (pre @ commits @ post)
