(** The repair searcher: find minimal feature-edit sets under which the
    guilty compiler eliminates a missed marker.

    Search order is the mechanical triage order: repairs of the guilty
    component (per {!Dce_core.Diagnose.ordered_catalogue}) first, then the
    remaining single-flag sweep, then a bounded pair search over the same
    priority order.  Any passing pair is minimal by construction, because
    pairs are only searched after {e every} single failed individually.

    Probes run on the {!Dce_campaign.Engine} Domain pool and route through
    the content-addressed compile cache (each candidate's patched compiler
    has a distinct, signature-bearing name); results are deterministic and
    independent of [jobs]. *)

type outcome = {
  so_marker : int;
  so_guilty_stage : string option;
      (** as {!Dce_core.Diagnose.t.guilty_stage} — the attribution that
          ordered the candidates *)
  so_singles : int;  (** single-edit candidates evaluated *)
  so_pairs : int;    (** pair candidates evaluated *)
  so_probes : int;   (** total candidates evaluated (= compiles charged) *)
  so_passing : Dce_core.Diagnose.repair list list;
      (** every passing candidate in search order; head is the accepted
          minimal edit set, the tail feeds the verification fallback *)
}

val default_max_pairs : int

val search :
  ?jobs:int ->
  ?max_pairs:int ->
  Dce_compiler.Compiler.t ->
  Dce_compiler.Level.t ->
  Dce_minic.Ast.program ->
  marker:int ->
  outcome
(** [search compiler level repro ~marker]: the repro should be instrumented
    (markers present) and is typically a {!Dce_reduce} output.  [jobs]
    (default 1) sizes the probe pool; [max_pairs] (default
    {!default_max_pairs}) bounds stage 3. *)
