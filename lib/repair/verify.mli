(** The A/B verification campaign: a lean differential sweep over the smoke
    corpus producing a {!Dce_campaign.Run_store.report} — per-configuration
    missed markers, assembly sizes, and level inversions — runnable against
    base and patched compilers alike.

    Each compiler is paired with a {e display name}: the patched compiler
    compiles under its own signature-bearing identity (so the compile cache
    never aliases base and patched cells) while its report rows carry the
    base compiler's name, making the base and patched reports comparable row
    by row.  The rival compiler keeps its identity in both runs, so every one
    of its cells in the patched run is a cache hit from the base run.

    Deterministic and jobs/workers-independent, like every campaign: the
    report is a pure function of (compilers, seed, count, levels). *)

type vrow = {
  vr_compiler : string;  (** display name *)
  vr_level : Dce_compiler.Level.t;
  vr_missed : int list;  (** dead markers this configuration kept, sorted *)
  vr_size : int;
}

type vcase = { vc_seed : int; vc_rejected : string option; vc_rows : vrow list }

type t = {
  vy_report : Dce_campaign.Run_store.report;
  vy_metrics : Dce_campaign.Metrics.summary;
  vy_quarantine : Dce_campaign.Engine.quarantined list;
  vy_resumed : int;
}

val codec : vcase Dce_campaign.Engine.codec
(** The ["verify-case"] journal record kind. *)

val default_levels : Dce_compiler.Level.t list
(** [[O1; Os; O2; O3]] — [O0] keeps every marker and only adds noise. *)

val campaign :
  ?journal:string ->
  ?fuel:int ->
  ?exec:Dce_exec.Exec.backend ->
  ?workers:int ->
  ?chunk:int ->
  ?jobs:int ->
  ?levels:Dce_compiler.Level.t list ->
  name:string ->
  compilers:(Dce_compiler.Compiler.t * string) list ->
  seed:int ->
  count:int ->
  unit ->
  t
(** [campaign ~name ~compilers:[(compiler, display); ...] ~seed ~count ()].
    [name] becomes the report's campaign identity (and the journal header
    campaign when [journal] is given). *)
