(** The closed loop: repair search → A/B verification campaign → diff.

    Given a repro, {!run} searches feature-edit sets ({!Search}), then runs
    the base compiler and each candidate's patched compiler over the smoke
    corpus ({!Verify.campaign}) and diffs the two reports
    ({!Dce_campaign.Run_diff}).  A candidate is accepted only when its diff
    shows no regressions — no new misses, no new inversions, no [-Os] size
    growth, no new quarantines; a candidate that fixes the repro but breaks
    another case is recorded as rejected and the next passing candidate is
    tried, up to [verify_limit].

    Everything in the {!result} except the metrics is a pure function of the
    inputs: {!record_to_json} is byte-identical across [jobs] and [workers]. *)

type candidate_verdict = {
  cv_edits : string list;  (** repair names of the edit set *)
  cv_verdict : Dce_campaign.Run_diff.verdict;
  cv_clean : bool;
}

type result = {
  rr_compiler : string;
  rr_level : Dce_compiler.Level.t;
  rr_marker : int;
  rr_search : Search.outcome;
  rr_tried : candidate_verdict list;  (** verified candidates, in order *)
  rr_accepted : (Dce_core.Diagnose.repair list * Dce_campaign.Run_diff.verdict) option;
  rr_base_report : Dce_campaign.Run_store.report;
  rr_base_metrics : Dce_campaign.Metrics.summary;
  rr_patched_metrics : Dce_campaign.Metrics.summary option;  (** accepted run's *)
  rr_base_dir : string option;  (** written only when [run_root] is given *)
  rr_patched_dir : string option;
}

val run :
  ?jobs:int ->
  ?workers:int ->
  ?chunk:int ->
  ?fuel:int ->
  ?exec:Dce_exec.Exec.backend ->
  ?seed:int ->
  ?count:int ->
  ?verify_limit:int ->
  ?max_pairs:int ->
  ?run_root:string ->
  ?candidates:Dce_core.Diagnose.repair list list ->
  ?rival:Dce_compiler.Compiler.t ->
  Dce_compiler.Compiler.t ->
  Dce_compiler.Level.t ->
  Dce_minic.Ast.program ->
  marker:int ->
  result
(** [run compiler level repro ~marker].  [seed]/[count] shape the smoke
    corpus (defaults 20220228/20); [verify_limit] (default 3) bounds how
    many passing candidates get a full verification campaign; [candidates]
    are edit sets to verify {e before} the search's own passing candidates
    (e.g. a human suggestion); [rival] (default: the other built-in
    simulator) anchors the differential rows shared by both runs.  When
    [workers > 1] the search stage runs [jobs=1] so the process stays
    fork-clean for the multi-process verification grid.  When [run_root] is
    given, base and accepted-patched runs are journalled and written as
    per-run artifact directories under stable run ids. *)

val record_to_json : result -> Dce_campaign.Json.t
(** The repair record: timing-free, deterministic across [jobs]/[workers]. *)

val record_path : string -> string
(** [record_path dir] is [dir ^ "/repair.json"]. *)

val write_record : result -> string option
(** Write the repair record into the accepted run's artifact directory;
    [None] when no candidate was accepted or no [run_root] was given. *)
