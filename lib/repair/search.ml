module C = Dce_compiler
module Core = Dce_core
module Engine = Dce_campaign.Engine

type outcome = {
  so_marker : int;
  so_guilty_stage : string option;
  so_singles : int;  (** single-edit candidates evaluated *)
  so_pairs : int;    (** pair candidates evaluated *)
  so_probes : int;   (** total candidates evaluated (= compiles charged) *)
  so_passing : Core.Diagnose.repair list list;
      (** every candidate under which the marker is eliminated, in search
          order — head is the accepted minimal edit set, the tail feeds the
          verification fallback *)
}

let default_max_pairs = 64

(* One probe: does the patched compiler eliminate the marker?  Routed
   through the content-addressed compile cache — the patched compiler's
   name embeds the edit signature, so every (candidate, program) cell is
   its own cache entry, and a re-search (or the jobs-determinism test)
   hits instead of recompiling. *)
let eliminates compiler level prog ~marker edits =
  let patched = Edit.patched compiler ~level edits in
  not (List.mem marker (C.Compiler.surviving_markers_cached patched level prog))

(* Evaluate a candidate batch on the Domain pool.  Results land in a
   case-indexed array (the engine's determinism contract), so the passing
   list is independent of [jobs]. *)
let evaluate ~jobs compiler level prog ~marker candidates =
  let arr = Array.of_list candidates in
  let result =
    Engine.run ~jobs ~count:(Array.length arr) (fun ctx i ->
        Engine.stage ctx "probe" (fun () -> eliminates compiler level prog ~marker arr.(i)))
  in
  let passing = ref [] in
  Array.iteri
    (fun i o -> match o with Engine.Done true -> passing := arr.(i) :: !passing | _ -> ())
    result.Engine.outcomes;
  List.rev !passing

let search ?(jobs = 1) ?(max_pairs = default_max_pairs) compiler level prog ~marker =
  let guilty, ordered = Core.Diagnose.ordered_catalogue compiler level prog ~marker in
  (* stage 1+2: guilty-component repairs first, then the full single-flag
     sweep — one batch, since the ordering already encodes the priority *)
  let singles = List.map (fun r -> [ r ]) ordered in
  let passing_singles = evaluate ~jobs compiler level prog ~marker singles in
  if passing_singles <> [] then
    {
      so_marker = marker;
      so_guilty_stage = guilty;
      so_singles = List.length singles;
      so_pairs = 0;
      so_probes = List.length singles;
      so_passing = passing_singles;
    }
  else begin
    (* stage 3: bounded pair search.  Every single failed individually, so
       any passing pair is a minimal edit set.  Pairs follow the same
       priority order ((i, j) lexicographic over the ordered catalogue),
       truncated to the probe budget. *)
    let arr = Array.of_list ordered in
    let n = Array.length arr in
    let pairs = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        pairs := [ arr.(i); arr.(j) ] :: !pairs
      done
    done;
    let pairs = Dce_support.Listx.take max_pairs (List.rev !pairs) in
    let passing_pairs = evaluate ~jobs compiler level prog ~marker pairs in
    {
      so_marker = marker;
      so_guilty_stage = guilty;
      so_singles = List.length singles;
      so_pairs = List.length pairs;
      so_probes = List.length singles + List.length pairs;
      so_passing = passing_pairs;
    }
  end
