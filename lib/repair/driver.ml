module C = Dce_compiler
module Core = Dce_core
module Campaign = Dce_campaign
module Json = Campaign.Json
module Run_store = Campaign.Run_store
module Run_diff = Campaign.Run_diff

(* The closed loop: search → patched campaign → diff.  A candidate fix is
   accepted only when its A/B diff against the base run shows no regressions
   on the smoke corpus; a candidate that fixes the repro but breaks another
   case is recorded as rejected and the next passing candidate is tried. *)

type candidate_verdict = {
  cv_edits : string list;  (** repair names of the edit set *)
  cv_verdict : Run_diff.verdict;
  cv_clean : bool;
}

type result = {
  rr_compiler : string;
  rr_level : C.Level.t;
  rr_marker : int;
  rr_search : Search.outcome;
  rr_tried : candidate_verdict list;  (** verified candidates, in order *)
  rr_accepted : (Core.Diagnose.repair list * Run_diff.verdict) option;
  rr_base_report : Run_store.report;
  rr_base_metrics : Campaign.Metrics.summary;
  rr_patched_metrics : Campaign.Metrics.summary option;  (** accepted run's *)
  rr_base_dir : string option;
  rr_patched_dir : string option;
}

let default_rival (compiler : C.Compiler.t) =
  if compiler.C.Compiler.name = C.Gcc_sim.compiler.C.Compiler.name then C.Llvm_sim.compiler
  else C.Gcc_sim.compiler

let base_campaign_name (compiler : C.Compiler.t) = "repair-verify:base:" ^ compiler.C.Compiler.name

let patched_campaign_name (compiler : C.Compiler.t) edits =
  Printf.sprintf "repair-verify:patched:%s+%s" compiler.C.Compiler.name (Edit.signature edits)

let run ?(jobs = 1) ?(workers = 1) ?chunk ?fuel ?exec ?(seed = 20220228) ?(count = 20)
    ?(verify_limit = 3) ?max_pairs ?run_root ?(candidates = []) ?rival compiler level prog
    ~marker =
  let rival = Option.value ~default:(default_rival compiler) rival in
  (* the fabric forks worker processes, and OCaml forbids fork once any
     domain has been spawned — so under a multi-process grid the search
     stage runs jobs=1 (its result is jobs-independent anyway) to keep the
     process fork-clean for the verification campaigns *)
  let search_jobs = if workers > 1 then 1 else jobs in
  let search = Search.search ~jobs:search_jobs ?max_pairs compiler level prog ~marker in
  let journal_for name edits =
    match run_root with
    | None -> None
    | Some root ->
      let id =
        Run_store.run_id ~campaign:name ~seed ~count
          (compiler.C.Compiler.name :: rival.C.Compiler.name
          :: (match edits with [] -> [] | es -> [ Edit.signature es ]))
      in
      Some (id, Run_store.journal_path (Run_store.dir_of ~root ~id))
  in
  let run_campaign name edits verify_compilers =
    let journal = journal_for name edits in
    Verify.campaign
      ?journal:(Option.map snd journal)
      ?fuel ?exec ~workers ?chunk ~jobs ~name ~compilers:verify_compilers ~seed ~count ()
  in
  let write_artifacts name edits (v : Verify.t) =
    match (run_root, journal_for name edits) with
    | Some root, Some (id, _) ->
      let meta =
        Json.Obj
          [
            ("campaign", Json.String name);
            ("seed", Json.Int seed);
            ("count", Json.Int count);
            ("compiler", Json.String compiler.C.Compiler.name);
            ("rival", Json.String rival.C.Compiler.name);
            ( "edits",
              Json.List
                (List.map (fun r -> Json.String r.Core.Diagnose.repair_name) edits) );
          ]
      in
      Some (Run_store.write ~root ~id ~meta ~metrics:v.Verify.vy_metrics v.Verify.vy_report)
    | _ -> None
  in
  let base_name = base_campaign_name compiler in
  let base =
    run_campaign base_name []
      [ (compiler, compiler.C.Compiler.name); (rival, rival.C.Compiler.name) ]
  in
  let base_dir = write_artifacts base_name [] base in
  (* caller-supplied candidates (if any) are verified first, then the
     search's passing candidates, minimal-first, up to the verify budget *)
  let queue = Dce_support.Listx.take verify_limit (candidates @ search.Search.so_passing) in
  let rec verify tried = function
    | [] -> (List.rev tried, None)
    | edits :: rest ->
      let patched = Edit.patched compiler ~level edits in
      let name = patched_campaign_name compiler edits in
      (* the patched compiler reports under the base compiler's display
         name, so the two reports diff row by row *)
      let v =
        run_campaign name edits
          [ (patched, compiler.C.Compiler.name); (rival, rival.C.Compiler.name) ]
      in
      let verdict = Run_diff.diff base.Verify.vy_report v.Verify.vy_report in
      let clean = not (Run_diff.has_regressions verdict) in
      let cv =
        { cv_edits = List.map (fun r -> r.Core.Diagnose.repair_name) edits; cv_verdict = verdict; cv_clean = clean }
      in
      if clean then (List.rev (cv :: tried), Some (edits, verdict, v, name))
      else verify (cv :: tried) rest
  in
  let tried, accepted = verify [] queue in
  let accepted_min, patched_metrics, patched_dir =
    match accepted with
    | None -> (None, None, None)
    | Some (edits, verdict, v, name) ->
      (Some (edits, verdict), Some v.Verify.vy_metrics, write_artifacts name edits v)
  in
  {
    rr_compiler = compiler.C.Compiler.name;
    rr_level = level;
    rr_marker = marker;
    rr_search = search;
    rr_tried = tried;
    rr_accepted = accepted_min;
    rr_base_report = base.Verify.vy_report;
    rr_base_metrics = base.Verify.vy_metrics;
    rr_patched_metrics = patched_metrics;
    rr_base_dir = base_dir;
    rr_patched_dir = patched_dir;
  }

(* ---------------- the repair record ---------------- *)

(* Deliberately timing-free: every field is a pure function of the inputs,
   so the record is byte-identical across --jobs/--workers settings (the
   determinism the tests pin).  Timing deltas live in campaign-diff's
   rendered output only. *)
let record_to_json r =
  let names edits = Json.List (List.map (fun n -> Json.String n) edits)
  and repair_names edits =
    Json.List (List.map (fun e -> Json.String e.Core.Diagnose.repair_name) edits)
  in
  Json.Obj
    [
      ("compiler", Json.String r.rr_compiler);
      ("level", Json.String (C.Level.to_string r.rr_level));
      ("marker", Json.Int r.rr_marker);
      ( "guilty_stage",
        match r.rr_search.Search.so_guilty_stage with
        | Some s -> Json.String s
        | None -> Json.Null );
      ( "search",
        Json.Obj
          [
            ("singles", Json.Int r.rr_search.Search.so_singles);
            ("pairs", Json.Int r.rr_search.Search.so_pairs);
            ("probes", Json.Int r.rr_search.Search.so_probes);
            ( "passing",
              Json.List (List.map repair_names r.rr_search.Search.so_passing) );
          ] );
      ( "tried",
        Json.List
          (List.map
             (fun cv ->
               Json.Obj [ ("edits", names cv.cv_edits); ("clean", Json.Bool cv.cv_clean) ])
             r.rr_tried) );
      ( "repair",
        match r.rr_accepted with
        | Some (edits, _) -> repair_names edits
        | None -> Json.Null );
      ( "verdict",
        match r.rr_accepted with
        | Some (_, verdict) -> Run_diff.to_json verdict
        | None -> Json.Null );
      ("verified", Json.Bool (r.rr_accepted <> None));
    ]

let record_path dir = Filename.concat dir "repair.json"

let write_record r =
  match r.rr_patched_dir with
  | None -> None
  | Some dir ->
    let oc = open_out_bin (record_path dir) in
    output_string oc (Json.to_string (record_to_json r) ^ "\n");
    close_out oc;
    Some (record_path dir)
