(** Candidate fixes as synthetic commits.

    A repair candidate is a set of {!Dce_core.Diagnose.repair}s lifted into
    {!Dce_compiler.Version.commit}s, inserted between HEAD and the post-HEAD
    fixes of the guilty compiler's history.  Expressing fixes as commits is
    what makes them compose with the rest of the system: the feature matrix,
    bisection, [explain --history], and the content-addressed compile cache
    (the patched compiler gets a collision-free name of its own) all work
    unchanged. *)

val commit_of_repair :
  level:Dce_compiler.Level.t -> Dce_core.Diagnose.repair -> Dce_compiler.Version.commit
(** The repair as a synthetic commit applying its feature edit at [level]
    and every stronger level (the [at_least] scoping the built-in histories
    use), leaving weaker levels untouched. *)

val signature : Dce_core.Diagnose.repair list -> string
(** ["name1+name2"] — the stable identity of an edit set. *)

val patched_name : Dce_compiler.Compiler.t -> Dce_core.Diagnose.repair list -> string
(** ["gcc-sim+fix.<signature>"].  Embeds the {e full} signature, never a
    hash: the compile cache keys on the name, so two candidates must never
    alias. *)

val patched :
  Dce_compiler.Compiler.t ->
  level:Dce_compiler.Level.t ->
  Dce_core.Diagnose.repair list ->
  Dce_compiler.Compiler.t
(** The patched compiler: base history with the edit-set commits inserted at
    HEAD (before the post-HEAD fixes), built through the validated
    {!Dce_compiler.Compiler.create}.  Raises [Invalid_argument] on an empty
    edit set. *)
