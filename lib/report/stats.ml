module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir

type config_totals = {
  ct_compiler : string;
  ct_level : C.Level.t;
  ct_missed : int;
  ct_primary : int;
}

type diff_pair = {
  left : string;
  right : string;
  only_left_misses : int;
  only_left_primary : int;
}

type finding = {
  f_program : int;
  f_marker : int;
  f_compiler : string;
  f_level : C.Level.t;
  f_witness : string;
  f_primary : bool;
}

type pass_totals = {
  pt_compiler : string;
  pt_level : C.Level.t;
  pt_stage : string;
  pt_markers : int;
}

type t = {
  programs : int;
  rejected : int;
  total_markers : int;
  alive_markers : int;
  dead_markers : int;
  per_config : config_totals list;
  per_pass : pass_totals list;
  cross_compiler : diff_pair list;
  level_regressions : diff_pair list;
  findings : finding list;
  regression_findings : finding list;
}

let config_name c l = Printf.sprintf "%s %s" c (C.Level.to_string l)

(* collect's deterministic output orderings, shared with [merge] *)
let sort_per_config l =
  List.sort
    (fun a b ->
      compare
        (a.ct_compiler, C.Level.compare_strength a.ct_level b.ct_level)
        (b.ct_compiler, 0))
    l

let sort_per_pass l =
  List.sort
    (fun a b ->
      compare
        (a.pt_compiler, C.Level.to_string a.pt_level, -a.pt_markers, a.pt_stage)
        (b.pt_compiler, C.Level.to_string b.pt_level, -b.pt_markers, b.pt_stage))
    l

let collect_indexed outcomes =
  let programs = List.length outcomes in
  let rejected = ref 0 in
  let total_markers = ref 0 in
  let alive_markers = ref 0 in
  let dead_markers = ref 0 in
  let per_config : (string * C.Level.t, int * int) Hashtbl.t = Hashtbl.create 16 in
  let per_pass : (string * C.Level.t * string, int) Hashtbl.t = Hashtbl.create 64 in
  let cross : (string * string, int * int) Hashtbl.t = Hashtbl.create 8 in
  let level_reg : (string * string, int * int) Hashtbl.t = Hashtbl.create 8 in
  let findings = ref [] in
  let regression_findings = ref [] in
  let add tbl key (m, p) =
    let m0, p0 = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (m0 + m, p0 + p)
  in
  List.iter
    (fun (idx, (outcome, _raw)) ->
      match outcome with
      | Core.Analysis.Rejected _ -> incr rejected
      | Core.Analysis.Analyzed a ->
        let truth = a.Core.Analysis.truth in
        total_markers := !total_markers + Ir.Iset.cardinal truth.Core.Ground_truth.all;
        alive_markers := !alive_markers + Ir.Iset.cardinal truth.Core.Ground_truth.alive;
        dead_markers := !dead_markers + Ir.Iset.cardinal truth.Core.Ground_truth.dead;
        List.iter
          (fun pc ->
            add per_config
              (pc.Core.Analysis.cfg_compiler, pc.Core.Analysis.cfg_level)
              ( Ir.Iset.cardinal pc.Core.Analysis.missed,
                Ir.Iset.cardinal pc.Core.Analysis.primary_missed );
            (* which pass eliminated how many markers, from the stage trace *)
            List.iter
              (fun (stage, markers) ->
                let key =
                  (pc.Core.Analysis.cfg_compiler, pc.Core.Analysis.cfg_level, stage)
                in
                let n = Option.value ~default:0 (Hashtbl.find_opt per_pass key) in
                Hashtbl.replace per_pass key (n + List.length markers))
              (C.Passmgr.attribution pc.Core.Analysis.cfg_trace))
          a.Core.Analysis.configs;
        (* cross-compiler differential at -O3 *)
        let find name level = Core.Analysis.find_config a name level in
        (match (find "gcc-sim" C.Level.O3, find "llvm-sim" C.Level.O3) with
         | Some gcc, Some llvm ->
           let record (loser : Core.Analysis.per_config) (winner : Core.Analysis.per_config) =
             let only =
               Ir.Iset.diff loser.Core.Analysis.missed winner.Core.Analysis.missed
             in
             let only_primary = Ir.Iset.inter only loser.Core.Analysis.primary_missed in
             add cross
               ( config_name loser.Core.Analysis.cfg_compiler loser.Core.Analysis.cfg_level,
                 config_name winner.Core.Analysis.cfg_compiler winner.Core.Analysis.cfg_level )
               (Ir.Iset.cardinal only, Ir.Iset.cardinal only_primary);
             Ir.Iset.iter
               (fun m ->
                 findings :=
                   {
                     f_program = idx;
                     f_marker = m;
                     f_compiler = loser.Core.Analysis.cfg_compiler;
                     f_level = loser.Core.Analysis.cfg_level;
                     f_witness =
                       config_name winner.Core.Analysis.cfg_compiler
                         winner.Core.Analysis.cfg_level;
                     f_primary = Ir.Iset.mem m loser.Core.Analysis.primary_missed;
                   }
                   :: !findings)
               only
           in
           record gcc llvm;
           record llvm gcc
         | _ -> ());
        (* level regressions: missed at -O3, eliminated at -O1 or -O2 *)
        List.iter
          (fun comp ->
            match (find comp C.Level.O3, find comp C.Level.O1, find comp C.Level.O2) with
            | Some o3, Some o1, Some o2 ->
              let caught_lower =
                Ir.Iset.union
                  (Ir.Iset.diff o3.Core.Analysis.missed o1.Core.Analysis.missed)
                  (Ir.Iset.diff o3.Core.Analysis.missed o2.Core.Analysis.missed)
              in
              let prim = Ir.Iset.inter caught_lower o3.Core.Analysis.primary_missed in
              add level_reg
                (config_name comp C.Level.O3, comp ^ " -O1/-O2")
                (Ir.Iset.cardinal caught_lower, Ir.Iset.cardinal prim);
              Ir.Iset.iter
                (fun m ->
                  regression_findings :=
                    {
                      f_program = idx;
                      f_marker = m;
                      f_compiler = comp;
                      f_level = C.Level.O3;
                      f_witness = comp ^ " -O1/-O2";
                      f_primary = Ir.Iset.mem m prim;
                    }
                    :: !regression_findings)
                caught_lower
            | _ -> ())
          [ "gcc-sim"; "llvm-sim" ])
    outcomes;
  let per_config =
    Hashtbl.fold
      (fun (c, l) (m, p) acc ->
        { ct_compiler = c; ct_level = l; ct_missed = m; ct_primary = p } :: acc)
      per_config []
    |> sort_per_config
  in
  let per_pass =
    Hashtbl.fold
      (fun (c, l, s) n acc ->
        { pt_compiler = c; pt_level = l; pt_stage = s; pt_markers = n } :: acc)
      per_pass []
    |> sort_per_pass
  in
  let pairs tbl =
    Hashtbl.fold
      (fun (l, r) (m, p) acc ->
        { left = l; right = r; only_left_misses = m; only_left_primary = p } :: acc)
      tbl []
    |> List.sort compare
  in
  {
    programs;
    rejected = !rejected;
    total_markers = !total_markers;
    alive_markers = !alive_markers;
    dead_markers = !dead_markers;
    per_config;
    per_pass;
    cross_compiler = pairs cross;
    level_regressions = pairs level_reg;
    findings = List.rev !findings;
    regression_findings = List.rev !regression_findings;
  }

let collect outcomes = collect_indexed (List.mapi (fun i o -> (i, o)) outcomes)

(* ------------------------------------------------------------------ *)
(* merging per-worker shard statistics                                 *)
(* ------------------------------------------------------------------ *)

let merge_assoc keys_of combine items =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun it ->
      let k = keys_of it in
      match Hashtbl.find_opt tbl k with
      | Some prev -> Hashtbl.replace tbl k (combine prev it)
      | None ->
        Hashtbl.add tbl k it;
        order := k :: !order)
    items;
  List.rev_map (Hashtbl.find tbl) !order

(* findings of one program always come from exactly one shard, so a stable
   sort on the program index recovers the global corpus order *)
let merge_findings a b =
  List.stable_sort (fun f g -> compare f.f_program g.f_program) (a @ b)

let merge a b =
  {
    programs = a.programs + b.programs;
    rejected = a.rejected + b.rejected;
    total_markers = a.total_markers + b.total_markers;
    alive_markers = a.alive_markers + b.alive_markers;
    dead_markers = a.dead_markers + b.dead_markers;
    per_config =
      merge_assoc
        (fun ct -> (ct.ct_compiler, ct.ct_level))
        (fun x y ->
          { x with ct_missed = x.ct_missed + y.ct_missed; ct_primary = x.ct_primary + y.ct_primary })
        (a.per_config @ b.per_config)
      |> sort_per_config;
    per_pass =
      merge_assoc
        (fun pt -> (pt.pt_compiler, pt.pt_level, pt.pt_stage))
        (fun x y -> { x with pt_markers = x.pt_markers + y.pt_markers })
        (a.per_pass @ b.per_pass)
      |> sort_per_pass;
    cross_compiler =
      merge_assoc
        (fun d -> (d.left, d.right))
        (fun x y ->
          {
            x with
            only_left_misses = x.only_left_misses + y.only_left_misses;
            only_left_primary = x.only_left_primary + y.only_left_primary;
          })
        (a.cross_compiler @ b.cross_compiler)
      |> List.sort compare;
    level_regressions =
      merge_assoc
        (fun d -> (d.left, d.right))
        (fun x y ->
          {
            x with
            only_left_misses = x.only_left_misses + y.only_left_misses;
            only_left_primary = x.only_left_primary + y.only_left_primary;
          })
        (a.level_regressions @ b.level_regressions)
      |> List.sort compare;
    findings = merge_findings a.findings b.findings;
    regression_findings = merge_findings a.regression_findings b.regression_findings;
  }

let totals_for t comp level =
  List.find_opt (fun ct -> ct.ct_compiler = comp && ct.ct_level = level) t.per_config

let level_table t ~value =
  let rows =
    List.map
      (fun level ->
        let cell comp =
          match totals_for t comp level with
          | Some ct -> Tables.pct (value ct) t.dead_markers
          | None -> "-"
        in
        [ C.Level.to_string level; cell "gcc-sim"; cell "llvm-sim" ])
      C.Level.all
  in
  Tables.render ~header:[ "Level"; "gcc-sim"; "llvm-sim" ] rows

let table1 t = level_table t ~value:(fun ct -> ct.ct_missed)
let table2 t = level_table t ~value:(fun ct -> ct.ct_primary)

let prevalence t =
  Printf.sprintf
    "%d programs analyzed (%d rejected). %d instrumented markers: %s dead, %s alive."
    t.programs t.rejected t.total_markers
    (Tables.pct t.dead_markers t.total_markers)
    (Tables.pct t.alive_markers t.total_markers)

let attribution_table ?(level = C.Level.O3) t =
  let stages =
    List.sort_uniq compare
      (List.filter_map
         (fun pt -> if pt.pt_level = level then Some pt.pt_stage else None)
         t.per_pass)
  in
  let count comp stage =
    match
      List.find_opt
        (fun pt -> pt.pt_compiler = comp && pt.pt_level = level && pt.pt_stage = stage)
        t.per_pass
    with
    | Some pt -> string_of_int pt.pt_markers
    | None -> "0"
  in
  let total = function
    | [ _; g; l ] -> int_of_string g + int_of_string l
    | _ -> 0
  in
  let rows =
    (* most productive stage first, by the combined count *)
    List.map (fun s -> [ s; count "gcc-sim" s; count "llvm-sim" s ]) stages
    |> List.sort (fun a b -> compare (total b, a) (total a, b))
  in
  Tables.render
    ~header:[ Printf.sprintf "Stage (%s)" (C.Level.to_string level); "gcc-sim"; "llvm-sim" ]
    rows

let differential_summary t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Cross-compiler differential at -O3 (markers only one side eliminates):\n";
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "  %s misses %d markers that %s eliminates (%d primary)\n" d.left
           d.only_left_misses d.right d.only_left_primary))
    t.cross_compiler;
  Buffer.add_string buf "Level differential (missed at -O3, eliminated at -O1/-O2):\n";
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "  %s misses %d markers caught at lower levels (%d primary)\n" d.left
           d.only_left_misses d.only_left_primary))
    t.level_regressions;
  Buffer.contents buf
