(** Corpus-level aggregation: the numbers behind every table in §4.

    Collects per-program {!Dce_core.Analysis.t} results and produces the
    paper's aggregates: dead-block prevalence (§4.1), the per-level missed and
    primary-missed percentages (Tables 1/2), the compiler-vs-compiler
    differential at -O3, and the level-vs-level differentials (§4.2). *)

type config_totals = {
  ct_compiler : string;
  ct_level : Dce_compiler.Level.t;
  ct_missed : int;
  ct_primary : int;
}

type diff_pair = {
  left : string;            (** configuration that misses *)
  right : string;           (** configuration that eliminates *)
  only_left_misses : int;   (** markers left keeps and right eliminates *)
  only_left_primary : int;
}

(** a marker one configuration misses while another eliminates it, with
    enough context to reduce/bisect/report it later *)
type finding = {
  f_program : int;  (** corpus index *)
  f_marker : int;
  f_compiler : string;
  f_level : Dce_compiler.Level.t;
  f_witness : string;  (** the configuration that eliminated it *)
  f_primary : bool;
}

(** markers a pipeline stage eliminated, aggregated over the corpus from
    the {!Dce_compiler.Passmgr} stage traces *)
type pass_totals = {
  pt_compiler : string;
  pt_level : Dce_compiler.Level.t;
  pt_stage : string;
  pt_markers : int;
}

type t = {
  programs : int;
  rejected : int;
  total_markers : int;
  alive_markers : int;
  dead_markers : int;
  per_config : config_totals list;
  per_pass : pass_totals list;
      (** per configuration, markers eliminated per stage, largest first *)
  cross_compiler : diff_pair list;   (** both directions at -O3 *)
  level_regressions : diff_pair list;
      (** per compiler: missed at -O3 but eliminated at -O1 or -O2 *)
  findings : finding list;           (** cross-compiler O3 findings *)
  regression_findings : finding list;(** level-vs-level findings *)
}

val collect : (Dce_core.Analysis.outcome * Dce_minic.Ast.program) list -> t
(** Input: analysis outcomes paired with the raw (uninstrumented) programs,
    in corpus order. *)

val collect_indexed :
  (int * (Dce_core.Analysis.outcome * Dce_minic.Ast.program)) list -> t
(** Like {!collect} with explicit corpus indices (used as [f_program] in
    findings).  A campaign worker aggregates its shard with the cases'
    corpus-global indices, so shard stats can later be {!merge}d without
    renumbering — and quarantined (crashed) cases simply leave holes. *)

val merge : t -> t -> t
(** Merge two shard aggregates over {e disjoint} program-index sets (the
    campaign's per-worker statistics).  Totals add; findings interleave back
    into corpus order.  [merge] is associative, and folding it over shard
    stats in any order equals {!collect_indexed} of the concatenated input:
    order only matters through each finding's program index. *)

val table1 : t -> string
(** "% dead blocks that are missed", per level per compiler. *)

val table2 : t -> string
(** "% dead blocks that are primary missed". *)

val prevalence : t -> string
(** One-paragraph §4.1 summary. *)

val differential_summary : t -> string
(** §4.2 numbers: cross-compiler and cross-level missed counts. *)

val attribution_table : ?level:Dce_compiler.Level.t -> t -> string
(** Markers eliminated per pipeline stage per compiler at [level] (default
    -O3), most productive stage first. *)
