(* Pure renderers for the size/inversion oracle triage tables.  Everything
   here takes plain data (ratios, label/count rows) so the campaign layer can
   depend on this module and not the other way around. *)

let ratio_buckets =
  [
    ("[1.00,1.10)", 1.0, 1.1);
    ("[1.10,1.25)", 1.1, 1.25);
    ("[1.25,1.50)", 1.25, 1.5);
    ("[1.50,2.00)", 1.5, 2.0);
    ("[2.00,inf)", 2.0, infinity);
  ]

let size_histogram ratios =
  Tables.render ~align:[ `Left; `Right ]
    ~header:[ "Size ratio"; "Findings" ]
    (List.map
       (fun (label, lo, hi) ->
         let n = List.length (List.filter (fun r -> r >= lo && r < hi) ratios) in
         [ label; string_of_int n ])
       ratio_buckets)

let count_table ~label ~count rows =
  Tables.render ~align:[ `Left; `Right ] ~header:[ label; count ]
    (List.map (fun (k, n) -> [ k; string_of_int n ]) rows)

let tally rows =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun k ->
      (match Hashtbl.find_opt tbl k with
       | None ->
         order := k :: !order;
         Hashtbl.replace tbl k 1
       | Some n -> Hashtbl.replace tbl k (n + 1)))
    rows;
  List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order
