(** Triage tables for the size and level-inversion oracles.

    All functions are pure renderers over plain data — the campaign layer
    assembles ratios and label/count rows and hands them here, keeping the
    dependency direction report ← campaign. *)

val ratio_buckets : (string * float * float) list
(** Histogram buckets [(label, lo, hi)] with [lo <= r < hi], in display
    order; the last bucket is open-ended. *)

val size_histogram : float list -> string
(** The size-delta histogram: every finding's larger-over-smaller ratio
    bucketed per {!ratio_buckets} (zero-count buckets kept, so the layout is
    stable across runs). *)

val count_table : label:string -> count:string -> (string * int) list -> string
(** Two-column label/count table in the given row order. *)

val tally : string list -> (string * int) list
(** Count occurrences, rows in first-appearance order (deterministic input
    order in, deterministic table out). *)
