let render ?(align = []) ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row -> max acc (String.length (try List.nth row c with _ -> "")))
      0 all
  in
  let widths = List.init cols width in
  let align_of c = try List.nth align c with _ -> `Left in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = try List.nth row c with _ -> "" in
           let pad = String.make (max 0 (w - String.length cell)) ' ' in
           match align_of c with `Left -> cell ^ pad | `Right -> pad ^ cell)
         widths)
    |> fun s -> String.trim (" " ^ s) (* avoid trailing spaces *)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows) ^ "\n"

let pct part whole =
  if whole = 0 then "-" else Printf.sprintf "%.2f%%" (100.0 *. float_of_int part /. float_of_int whole)
