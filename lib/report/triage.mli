(** The reporting pipeline behind the paper's Table 5.

    The paper's human workflow — reduce, deduplicate, file a report, wait for
    developer confirmation and fixes — is modeled mechanically:

    - findings are {e deduplicated} by diagnosis signature (which
      single-feature repair makes the compiler eliminate the marker; the
      paper deduplicates "after reducing" by root cause);
    - a deduplicated finding becomes a {e report};
    - a report is a {b duplicate} if its (compiler, signature) pair is in the
      known-bug database (the paper rediscovered GCC #80603 this way —
      Listing 9f);
    - it is {b fixed} if the compiler {e with its post-HEAD fix commits
      applied} eliminates the marker;
    - otherwise it is {b confirmed} if the diagnosis found a concrete repair
      (the developers can see the root cause), and merely {b reported} if
      not. *)

type status = Confirmed | Fixed | Duplicate | Reported_only

type report = {
  r_compiler : string;
  r_level : Dce_compiler.Level.t;
  r_signature : string;     (** dedup key from {!Dce_core.Diagnose} *)
  r_component : string option;
  r_guilty_stage : string option;
      (** stage of the fixed pipeline that eliminates the example marker
          (from the {!Dce_compiler.Passmgr} stage trace via diagnosis) *)
  r_status : status;
  r_occurrences : int;       (** findings collapsed into this report *)
  r_example_program : int;   (** corpus index of a witness *)
  r_example_marker : int;
}

val known_bugs : (string * string) list
(** (compiler, signature) pairs already in the trackers before this run. *)

val triage :
  programs:Dce_minic.Ast.program array ->
  Stats.finding list ->
  report list
(** [programs] are the {e instrumented} corpus programs, indexed by
    [f_program]. Diagnosis runs once per (compiler, signature) cluster. *)

val table5 : report list -> string
(** Reported / Confirmed / Marked Duplicate / Fixed counts per compiler. *)

val status_name : status -> string
