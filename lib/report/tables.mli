(** Plain-text table rendering for the CLI and the benchmark harness. *)

val render :
  ?align:[ `Left | `Right ] list -> header:string list -> string list list -> string
(** Columns padded to the widest cell, header underlined.  [align] gives the
    per-column alignment, defaulting to [`Left] for unlisted columns (count
    columns read better right-aligned; keep column 0 left-aligned — leading
    whitespace on a row is trimmed). *)

val pct : int -> int -> string
(** ["12.34%"] formatting of part/whole (["-"] when the whole is 0). *)
