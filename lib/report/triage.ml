module C = Dce_compiler
module Core = Dce_core

type status = Confirmed | Fixed | Duplicate | Reported_only

type report = {
  r_compiler : string;
  r_level : C.Level.t;
  r_signature : string;
  r_component : string option;
  r_guilty_stage : string option;
  r_status : status;
  r_occurrences : int;
  r_example_program : int;
  r_example_marker : int;
}

(* bugs already known to the trackers: the uniform-constant-array fold was
   GCC #80603, previously reported by GCC's own developers (paper Listing 9f) *)
let known_bugs = [ ("gcc-sim", "uniform-arrays") ]

let compiler_of_name name =
  if name = "gcc-sim" then C.Gcc_sim.compiler else C.Llvm_sim.compiler

let status_name = function
  | Confirmed -> "confirmed"
  | Fixed -> "fixed"
  | Duplicate -> "duplicate"
  | Reported_only -> "reported"

let triage ~programs findings =
  (* cluster findings by (compiler, diagnosis signature); diagnose once per
     finding but reuse per-cluster results where possible *)
  let clusters : (string * string, Stats.finding list ref) Hashtbl.t = Hashtbl.create 32 in
  let diag_cache : (string * int * int, string * string option) Hashtbl.t =
    Hashtbl.create 64
  in
  let diagnose (f : Stats.finding) =
    let key = (f.Stats.f_compiler, f.Stats.f_program, f.Stats.f_marker) in
    match Hashtbl.find_opt diag_cache key with
    | Some r -> r
    | None ->
      let prog = programs.(f.Stats.f_program) in
      let d =
        Core.Diagnose.run
          (compiler_of_name f.Stats.f_compiler)
          f.Stats.f_level prog ~marker:f.Stats.f_marker
      in
      let r = (Core.Diagnose.signature d, d.Core.Diagnose.guilty_stage) in
      Hashtbl.replace diag_cache key r;
      r
  in
  List.iter
    (fun (f : Stats.finding) ->
      if f.Stats.f_primary then begin
        let signature, _guilty = diagnose f in
        let ckey = (f.Stats.f_compiler, signature) in
        match Hashtbl.find_opt clusters ckey with
        | Some r -> r := f :: !r
        | None -> Hashtbl.add clusters ckey (ref [ f ])
      end)
    findings;
  let component_of_signature signature =
    List.find_opt
      (fun (r : Core.Diagnose.repair) -> r.Core.Diagnose.repair_name = signature)
      Core.Diagnose.catalogue
    |> Option.map (fun (r : Core.Diagnose.repair) -> r.Core.Diagnose.repair_component)
  in
  Hashtbl.fold
    (fun (comp, signature) fs acc ->
      let fs = List.rev !fs in
      let example = List.hd fs in
      let _, guilty = diagnose example in
      let compiler = compiler_of_name comp in
      let full_version = List.length compiler.C.Compiler.history in
      let prog = programs.(example.Stats.f_program) in
      let fixed =
        not
          (List.mem example.Stats.f_marker
             (C.Compiler.surviving_markers compiler ~version:full_version example.Stats.f_level
                prog))
      in
      let status =
        if List.mem (comp, signature) known_bugs then Duplicate
        else if fixed then Fixed
        else if signature <> "unknown" then Confirmed
        else Reported_only
      in
      {
        r_compiler = comp;
        r_level = example.Stats.f_level;
        r_signature = signature;
        r_component = component_of_signature signature;
        r_guilty_stage = guilty;
        r_status = status;
        r_occurrences = List.length fs;
        r_example_program = example.Stats.f_program;
        r_example_marker = example.Stats.f_marker;
      }
      :: acc)
    clusters []
  |> List.sort compare

let table5 reports =
  let count comp pred = List.length (List.filter (fun r -> r.r_compiler = comp && pred r) reports) in
  let rows =
    [
      [
        "Reported";
        string_of_int (count "gcc-sim" (fun _ -> true));
        string_of_int (count "llvm-sim" (fun _ -> true));
      ];
      [
        "Confirmed";
        string_of_int (count "gcc-sim" (fun r -> r.r_status = Confirmed));
        string_of_int (count "llvm-sim" (fun r -> r.r_status = Confirmed));
      ];
      [
        "Marked Duplicate";
        string_of_int (count "gcc-sim" (fun r -> r.r_status = Duplicate));
        string_of_int (count "llvm-sim" (fun r -> r.r_status = Duplicate));
      ];
      [
        "Fixed";
        string_of_int (count "gcc-sim" (fun r -> r.r_status = Fixed));
        string_of_int (count "llvm-sim" (fun r -> r.r_status = Fixed));
      ];
    ]
  in
  Tables.render ~header:[ ""; "gcc-sim"; "llvm-sim" ] rows
