module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir
module Smith = Dce_smith.Smith
module Bisect = Dce_bisect.Bisect

let compilers = [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ]

let compiler_named = function
  | "gcc-sim" -> C.Gcc_sim.compiler
  | "llvm-sim" -> C.Llvm_sim.compiler
  | other -> failwith (Printf.sprintf "oracle campaign: unknown compiler %S" other)

(* ------------------------------------------------------------------ *)
(* shared JSON helpers (same wire shapes as the corpus codec)          *)
(* ------------------------------------------------------------------ *)

let iset_to_json s = Json.List (List.map (fun i -> Json.Int i) (Ir.Iset.elements s))

let iset_of_json j =
  match Json.to_list j with
  | Some l -> List.fold_left (fun s v -> Ir.Iset.add (Json.int_exn v) s) Ir.Iset.empty l
  | None -> failwith "journal record: expected a marker list"

let level_to_json l = Json.String (C.Level.to_string l)

let level_of_json j =
  match Json.to_str j with
  | Some s -> (
    match C.Level.of_string s with
    | Some l -> l
    | None -> failwith (Printf.sprintf "journal record: unknown level %S" s))
  | None -> failwith "journal record: expected a level string"

let quarantine_lines seeds qs =
  String.concat ""
    (List.map
       (fun (q : Engine.quarantined) ->
         Printf.sprintf "  case %d (seed %d): %s in stage %s: %s\n" q.Engine.q_case
           seeds.(q.Engine.q_case)
           (Engine.fault_kind_name q.Engine.q_kind)
           q.Engine.q_stage q.Engine.q_error)
       qs)

(* ------------------------------------------------------------------ *)
(* size campaign: the "size-case" record kind                          *)
(* ------------------------------------------------------------------ *)

type size_case = {
  sc_seed : int;
  sc_rejected : string option;
  sc_curve : (string * C.Level.t * int) list;
}

type size_t = {
  s_seed : int;
  s_count : int;
  s_jobs : int;
  s_ratio : float;
  s_seeds : int array;
  s_cases : size_case Engine.case_outcome array;
  s_quarantine : Engine.quarantined list;
  s_metrics : Metrics.summary;
  s_resumed : int;
  s_skipped : int;
}

(* The journal stores the size curve, not the findings: findings are a pure
   function of the curve ({!Dce_core.Differential.size_findings_of}), so a
   resumed campaign can even be re-thresholded — the ratio is a reporting
   parameter, never baked into records. *)
let encode_size sc =
  let common = [ ("kind", Json.String "size-case"); ("seed", Json.Int sc.sc_seed) ] in
  match sc.sc_rejected with
  | Some reason -> Json.Obj (common @ [ ("rejected", Json.String reason) ])
  | None ->
    Json.Obj
      (common
      @ [
          ( "curve",
            Json.List
              (List.map
                 (fun (name, level, size) ->
                   Json.List [ Json.String name; level_to_json level; Json.Int size ])
                 sc.sc_curve) );
        ])

let decode_size j =
  (match Json.get_str j "kind" with
   | "size-case" -> ()
   | other -> failwith (Printf.sprintf "journal record: unknown case kind %S" other));
  let seed = Json.get_int j "seed" in
  match Json.member "rejected" j with
  | Some reason ->
    {
      sc_seed = seed;
      sc_rejected = Some (Option.get (Json.to_str reason));
      sc_curve = [];
    }
  | None ->
    let curve =
      List.map
        (fun entry ->
          match Json.to_list entry with
          | Some [ name; level; size ] -> (
            match (Json.to_str name, Json.to_int size) with
            | Some name, Some size -> (name, level_of_json level, size)
            | _ -> failwith "journal record: bad curve entry")
          | _ -> failwith "journal record: bad curve entry")
        (Json.get_list j "curve")
    in
    { sc_seed = seed; sc_rejected = None; sc_curve = curve }

let size_codec = { Engine.encode = encode_size; decode = decode_size }

let run_size ?journal ?fuel ?exec ?(ratio = 1.25) ?deadline ?step_budget ?retries ?(workers = 1)
    ?chunk ~jobs ~seed ~count () =
  let seeds = Array.of_list (Smith.corpus_seeds ~seed ~count) in
  let runner ctx i =
    let case_seed = seeds.(i) in
    let raw =
      Engine.stage ctx "generate" (fun () -> fst (Smith.generate (Smith.default_config case_seed)))
    in
    (* the *instrumented* program is what we size: it is the same object the
       marker campaigns compile, so every (config, program) cell a size hunt
       compiles is a cache hit for a marker hunt on the same corpus (and
       vice versa) *)
    let instrumented = Engine.stage ctx "instrument" (fun () -> Core.Instrument.program raw) in
    match
      Engine.stage ctx "ground-truth" (fun () ->
          Core.Ground_truth.compute ?exec ?fuel instrumented)
    with
    | Core.Ground_truth.Rejected reason ->
      { sc_seed = case_seed; sc_rejected = Some reason; sc_curve = [] }
    | Core.Ground_truth.Valid _ ->
      let curve =
        Engine.stage ctx "size-curve" (fun () ->
            Core.Differential.size_curve ~compilers instrumented)
      in
      { sc_seed = case_seed; sc_rejected = None; sc_curve = curve }
  in
  let result =
    Fabric.run ?journal ~codec:size_codec ~campaign:"size-hunt" ~seed ?deadline ?step_budget
      ?retries ?chunk ~workers ~jobs ~count runner
  in
  {
    s_seed = seed;
    s_count = count;
    s_jobs = jobs;
    s_ratio = ratio;
    s_seeds = seeds;
    s_cases = result.Engine.outcomes;
    s_quarantine = result.Engine.quarantine;
    s_metrics = result.Engine.metrics;
    s_resumed = result.Engine.resumed;
    s_skipped = result.Engine.skipped;
  }

let size_findings t =
  Array.to_list (Array.mapi (fun i c -> (i, c)) t.s_cases)
  |> List.concat_map (function
       | i, Engine.Done sc when sc.sc_rejected = None ->
         List.map
           (fun f -> (i, f))
           (Core.Differential.size_findings_of ~ratio:t.s_ratio sc.sc_curve)
       | _ -> [])

let size_report t =
  let findings = size_findings t in
  let rejected =
    Array.fold_left
      (fun acc -> function Engine.Done sc when sc.sc_rejected <> None -> acc + 1 | _ -> acc)
      0 t.s_cases
  in
  let is_cross = function _, Core.Differential.Size_cross _ -> true | _ -> false in
  let cross = List.length (List.filter is_cross findings) in
  let intra = List.length findings - cross in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "%d programs (%d rejected), %d size findings (%d cross, %d intra; ratio >= %.2f)\n"
       t.s_count rejected (List.length findings) cross intra t.s_ratio);
  Buffer.add_string buf
    (Dce_report.Oracle_report.size_histogram
       (List.map (fun (_, f) -> Core.Differential.size_ratio f) findings));
  let guilty_label = function
    | Core.Differential.Size_cross { larger; _ } -> larger ^ " -Os (vs other)"
    | Core.Differential.Size_intra { compiler; _ } -> compiler ^ " -Os (vs own -O2)"
  in
  if findings <> [] then
    Buffer.add_string buf
      (Dce_report.Oracle_report.count_table ~label:"Guilty config" ~count:"Findings"
         (Dce_report.Oracle_report.tally (List.map (fun (_, f) -> guilty_label f) findings)));
  Buffer.contents buf

let size_quarantine_to_string t = quarantine_lines t.s_seeds t.s_quarantine

(* ------------------------------------------------------------------ *)
(* level-inversion campaign: the "inversion-case" record kind          *)
(* ------------------------------------------------------------------ *)

type inv_finding = {
  if_compiler : string;
  if_inversion : Core.Differential.inversion;
  if_guilty : string;
}

type inv_case = {
  ic_seed : int;
  ic_rejected : string option;
  ic_dead : Ir.Iset.t;
  ic_surviving : (string * (C.Level.t * Ir.Iset.t) list) list;
  ic_findings : inv_finding list;
}

type inv_t = {
  i_seed : int;
  i_count : int;
  i_jobs : int;
  i_seeds : int array;
  i_cases : inv_case Engine.case_outcome array;
  i_quarantine : Engine.quarantined list;
  i_metrics : Metrics.summary;
  i_resumed : int;
  i_skipped : int;
}

(* O0 keeps everything by construction, so it never eliminates and only
   inflates the surviving sets — the inversion levels start at O1. *)
let inversion_levels = [ C.Level.O1; C.Level.Os; C.Level.O2; C.Level.O3 ]

let derive_inversions ~dead surviving =
  List.concat_map
    (fun (name, per_level) ->
      List.map (fun iv -> (name, iv)) (Core.Differential.inversions ~dead per_level))
    surviving

(* Journal: the dead set and per-(compiler, level) surviving sets — the
   complete oracle input — plus the guilty-pass triples, which *are*
   journaled because attribution needs traced (uncacheable) compiles.
   Inversions themselves are re-derived on decode. *)
let encode_inv ic =
  let common = [ ("kind", Json.String "inversion-case"); ("seed", Json.Int ic.ic_seed) ] in
  match ic.ic_rejected with
  | Some reason -> Json.Obj (common @ [ ("rejected", Json.String reason) ])
  | None ->
    Json.Obj
      (common
      @ [
          ("dead", iset_to_json ic.ic_dead);
          ( "surviving",
            Json.List
              (List.map
                 (fun (name, per_level) ->
                   Json.Obj
                     [
                       ("compiler", Json.String name);
                       ( "levels",
                         Json.List
                           (List.map
                              (fun (l, s) -> Json.List [ level_to_json l; iset_to_json s ])
                              per_level) );
                     ])
                 ic.ic_surviving) );
          ( "guilty",
            Json.List
              (List.map
                 (fun f ->
                   Json.List
                     [
                       Json.String f.if_compiler;
                       Json.Int f.if_inversion.Core.Differential.iv_marker;
                       Json.String f.if_guilty;
                     ])
                 ic.ic_findings) );
        ])

let decode_inv j =
  (match Json.get_str j "kind" with
   | "inversion-case" -> ()
   | other -> failwith (Printf.sprintf "journal record: unknown case kind %S" other));
  let seed = Json.get_int j "seed" in
  match Json.member "rejected" j with
  | Some reason ->
    {
      ic_seed = seed;
      ic_rejected = Some (Option.get (Json.to_str reason));
      ic_dead = Ir.Iset.empty;
      ic_surviving = [];
      ic_findings = [];
    }
  | None ->
    let dead = iset_of_json (Json.get j "dead") in
    let surviving =
      List.map
        (fun cj ->
          ( Json.get_str cj "compiler",
            List.map
              (fun entry ->
                match Json.to_list entry with
                | Some [ level; markers ] -> (level_of_json level, iset_of_json markers)
                | _ -> failwith "journal record: bad surviving entry")
              (Json.get_list cj "levels") ))
        (Json.get_list j "surviving")
    in
    let guilty =
      List.map
        (fun entry ->
          match Json.to_list entry with
          | Some [ comp; marker; pass ] -> (
            match (Json.to_str comp, Json.to_int marker, Json.to_str pass) with
            | Some comp, Some marker, Some pass -> ((comp, marker), pass)
            | _ -> failwith "journal record: bad guilty entry")
          | _ -> failwith "journal record: bad guilty entry")
        (Json.get_list j "guilty")
    in
    let findings =
      List.map
        (fun (name, iv) ->
          {
            if_compiler = name;
            if_inversion = iv;
            if_guilty =
              Option.value ~default:"unknown"
                (List.assoc_opt (name, iv.Core.Differential.iv_marker) guilty);
          })
        (derive_inversions ~dead surviving)
    in
    { ic_seed = seed; ic_rejected = None; ic_dead = dead; ic_surviving = surviving;
      ic_findings = findings }

let inv_codec = { Engine.encode = encode_inv; decode = decode_inv }

let run_inversion ?journal ?fuel ?exec ?deadline ?step_budget ?retries ?(workers = 1) ?chunk
    ~jobs ~seed ~count () =
  let seeds = Array.of_list (Smith.corpus_seeds ~seed ~count) in
  let runner ctx i =
    let case_seed = seeds.(i) in
    let raw =
      Engine.stage ctx "generate" (fun () -> fst (Smith.generate (Smith.default_config case_seed)))
    in
    let instrumented = Engine.stage ctx "instrument" (fun () -> Core.Instrument.program raw) in
    match
      Engine.stage ctx "ground-truth" (fun () ->
          Core.Ground_truth.compute ?exec ?fuel instrumented)
    with
    | Core.Ground_truth.Rejected reason ->
      {
        ic_seed = case_seed;
        ic_rejected = Some reason;
        ic_dead = Ir.Iset.empty;
        ic_surviving = [];
        ic_findings = [];
      }
    | Core.Ground_truth.Valid truth ->
      let dead = truth.Core.Ground_truth.dead in
      let surviving =
        Engine.stage ctx "differential" (fun () ->
            List.map
              (fun (comp : C.Compiler.t) ->
                ( comp.C.Compiler.name,
                  List.map
                    (fun level ->
                      let markers = C.Compiler.surviving_markers_cached comp level instrumented in
                      (level, List.fold_left (fun s n -> Ir.Iset.add n s) Ir.Iset.empty markers))
                    inversion_levels ))
              compilers)
      in
      let pairs = derive_inversions ~dead surviving in
      let findings =
        if pairs = [] then []
        else
          Engine.stage ctx "attribution" (fun () ->
              (* traced compiles bypass the cache (traces are measurements),
                 so share one per distinct (compiler, low level) *)
              let memo = Hashtbl.create 4 in
              List.map
                (fun (name, (iv : Core.Differential.inversion)) ->
                  let key = (name, iv.Core.Differential.iv_low) in
                  let attrib =
                    match Hashtbl.find_opt memo key with
                    | Some a -> a
                    | None ->
                      let _, trace =
                        C.Compiler.surviving_markers_traced (compiler_named name)
                          iv.Core.Differential.iv_low instrumented
                      in
                      let a = C.Passmgr.attribution trace in
                      Hashtbl.replace memo key a;
                      a
                  in
                  let guilty =
                    match
                      List.find_opt
                        (fun (_, ms) -> List.mem iv.Core.Differential.iv_marker ms)
                        attrib
                    with
                    | Some (stage, _) -> stage
                    | None -> "unknown"
                  in
                  { if_compiler = name; if_inversion = iv; if_guilty = guilty })
                pairs)
      in
      { ic_seed = case_seed; ic_rejected = None; ic_dead = dead; ic_surviving = surviving;
        ic_findings = findings }
  in
  let result =
    Fabric.run ?journal ~codec:inv_codec ~campaign:"level-hunt" ~seed ?deadline ?step_budget
      ?retries ?chunk ~workers ~jobs ~count runner
  in
  {
    i_seed = seed;
    i_count = count;
    i_jobs = jobs;
    i_seeds = seeds;
    i_cases = result.Engine.outcomes;
    i_quarantine = result.Engine.quarantine;
    i_metrics = result.Engine.metrics;
    i_resumed = result.Engine.resumed;
    i_skipped = result.Engine.skipped;
  }

let inversion_findings t =
  Array.to_list (Array.mapi (fun i c -> (i, c)) t.i_cases)
  |> List.concat_map (function
       | i, Engine.Done ic -> List.map (fun f -> (i, f)) ic.ic_findings
       | _, Engine.Crashed _ -> [])

let inversion_report t =
  let findings = inversion_findings t in
  let rejected =
    Array.fold_left
      (fun acc -> function Engine.Done ic when ic.ic_rejected <> None -> acc + 1 | _ -> acc)
      0 t.i_cases
  in
  let affected =
    Array.fold_left
      (fun acc -> function Engine.Done ic when ic.ic_findings <> [] -> acc + 1 | _ -> acc)
      0 t.i_cases
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%d programs (%d rejected), %d level inversions over %d affected programs\n"
       t.i_count rejected (List.length findings) affected);
  if findings <> [] then begin
    Buffer.add_string buf
      (Dce_report.Oracle_report.count_table ~label:"Inversion" ~count:"Count"
         (Dce_report.Oracle_report.tally
            (List.map
               (fun (_, f) ->
                 Printf.sprintf "%s dead@%s live@%s" f.if_compiler
                   (C.Level.to_string f.if_inversion.Core.Differential.iv_low)
                   (C.Level.to_string f.if_inversion.Core.Differential.iv_high))
               findings)));
    Buffer.add_string buf
      (Dce_report.Oracle_report.count_table ~label:"Guilty pass (eliminates at low level)"
         ~count:"Inversions"
         (Dce_report.Oracle_report.tally
            (List.map (fun (_, f) -> f.if_compiler ^ " " ^ f.if_guilty) findings)))
  end;
  Buffer.contents buf

let inversion_quarantine_to_string t = quarantine_lines t.i_seeds t.i_quarantine

(* ------------------------------------------------------------------ *)
(* bisecting inversions over the commit model                          *)
(* ------------------------------------------------------------------ *)

type inv_bisection = {
  ib_case : int;
  ib_finding : inv_finding;
  ib_outcome : Bisect.outcome;
  ib_probes : int;
}

let bisect_inversions ?(cache = true) ?deadline ?step_budget ?retries ~jobs t =
  let work = Array.of_list (inversion_findings t) in
  let runner ctx e =
    let ci, f = work.(e) in
    let prog =
      Engine.stage ctx "regenerate" (fun () ->
          Core.Instrument.program (fst (Smith.generate (Smith.default_config t.i_seeds.(ci)))))
    in
    (* the marker survives at iv_high although a weaker level kills it:
       bisect the iv_high pipeline's history for the commit that lost it *)
    let outcome, probes =
      Engine.stage ctx "bisect" (fun () ->
          Bisect.find_regression_counted ~cache (compiler_named f.if_compiler)
            f.if_inversion.Core.Differential.iv_high prog
            ~marker:f.if_inversion.Core.Differential.iv_marker)
    in
    { ib_case = ci; ib_finding = f; ib_outcome = outcome; ib_probes = probes }
  in
  let result =
    Engine.run ~campaign:"inv-bisect" ~seed:t.i_seed ?deadline ?step_budget ?retries ~jobs
      ~count:(Array.length work) runner
  in
  Array.to_list result.Engine.outcomes
  |> List.filter_map (function Engine.Done b -> Some b | Engine.Crashed _ -> None)

let inv_bisections_table rows =
  let verdict = function
    | Bisect.Not_missed -> "not-missed"
    | Bisect.Always_missed -> "always-missed"
    | Bisect.Regression r -> "regression @ " ^ r.Bisect.offending.C.Version.id
  in
  Printf.sprintf "%d inversions bisected (%d probes)\n" (List.length rows)
    (Dce_support.Listx.sum (List.map (fun b -> b.ib_probes) rows))
  ^ Dce_report.Tables.render
      ~align:[ `Right; `Left; `Right; `Left; `Left; `Right ]
      ~header:[ "Case"; "Compiler"; "Marker"; "Level"; "Verdict"; "Probes" ]
      (List.map
         (fun b ->
           [
             string_of_int b.ib_case;
             b.ib_finding.if_compiler;
             string_of_int b.ib_finding.if_inversion.Core.Differential.iv_marker;
             C.Level.to_string b.ib_finding.if_inversion.Core.Differential.iv_high;
             verdict b.ib_outcome;
             string_of_int b.ib_probes;
           ])
         rows)
