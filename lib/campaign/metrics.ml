module Passmgr = Dce_compiler.Passmgr

type t = {
  mutable samples : (string * float) list;
  mutable m_retries : int;
  mutable m_recovered : int;
}

let create () = { samples = []; m_retries = 0; m_recovered = 0 }
let record t stage dt = t.samples <- (stage, dt) :: t.samples
let retried t = t.m_retries <- t.m_retries + 1
let recovered t = t.m_recovered <- t.m_recovered + 1

let merge a b =
  {
    samples = a.samples @ b.samples;
    m_retries = a.m_retries + b.m_retries;
    m_recovered = a.m_recovered + b.m_recovered;
  }

(* wire form for the fabric: a worker process ships its accumulator to the
   coordinator in its farewell message.  Samples are (stage, seconds) pairs;
   order does not matter downstream ({!summarize} sorts per stage), so the
   reversal a round trip introduces is harmless. *)
let to_json t =
  Json.Obj
    [
      ( "samples",
        Json.List
          (List.map (fun (stage, dt) -> Json.List [ Json.String stage; Json.Float dt ]) t.samples)
      );
      ("retries", Json.Int t.m_retries);
      ("recovered", Json.Int t.m_recovered);
    ]

let of_json j =
  let sample = function
    | Json.List [ Json.String stage; (Json.Float _ | Json.Int _) as v ] ->
      let dt = match v with Json.Float f -> f | Json.Int n -> float_of_int n | _ -> 0. in
      (stage, dt)
    | v -> failwith (Printf.sprintf "metrics wire record: bad sample %s" (Json.to_string v))
  in
  {
    samples = List.map sample (Json.get_list j "samples");
    m_retries = Json.get_int j "retries";
    m_recovered = Json.get_int j "recovered";
  }

type stage_summary = {
  ss_stage : string;
  ss_samples : int;
  ss_total : float;
  ss_p50 : float;
  ss_p90 : float;
  ss_p99 : float;
}

type fabric = {
  f_workers : int;
  f_jobs : int;
  f_chunks : int;
  f_cases_per_worker : int list;
  f_reassigned : int;
  f_deaths : int;
  f_respawns : int;
}

type summary = {
  cases : int;
  wall : float;
  throughput : float;
  stages : stage_summary list;
  cache : Passmgr.counters;
  journal_skipped : int;
  crashed : int;
  timeouts : int;
  ir_invalid : int;
  retries : int;
  recovered : int;
  chaos_fired : int;
  fabric : fabric option;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    (* nearest-rank: smallest value with at least q*n samples at or below *)
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let summarize ?(journal_skipped = 0) ?(crashed = 0) ?(timeouts = 0) ?(ir_invalid = 0)
    ?(chaos_fired = 0) ?fabric ~cases ~wall ~cache t =
  let by_stage : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (stage, dt) ->
      match Hashtbl.find_opt by_stage stage with
      | Some l -> l := dt :: !l
      | None -> Hashtbl.add by_stage stage (ref [ dt ]))
    t.samples;
  let stages =
    Hashtbl.fold
      (fun stage samples acc ->
        let arr = Array.of_list !samples in
        Array.sort compare arr;
        {
          ss_stage = stage;
          ss_samples = Array.length arr;
          ss_total = Array.fold_left ( +. ) 0. arr;
          ss_p50 = percentile arr 0.50;
          ss_p90 = percentile arr 0.90;
          ss_p99 = percentile arr 0.99;
        }
        :: acc)
      by_stage []
    |> List.sort (fun a b -> compare (-.a.ss_total, a.ss_stage) (-.b.ss_total, b.ss_stage))
  in
  {
    cases;
    wall;
    throughput = (if wall > 0. then float_of_int cases /. wall else 0.);
    stages;
    cache;
    journal_skipped;
    crashed;
    timeouts;
    ir_invalid;
    retries = t.m_retries;
    recovered = t.m_recovered;
    chaos_fired;
    fabric;
  }

(* artifact form of a campaign summary (a run directory's metrics.json).
   Everything the human block prints, as data; the per-stage rows carry the
   summed totals campaign-diff reads back for its timing-delta table. *)
let summary_to_json s =
  let stage st =
    Json.Obj
      [
        ("stage", Json.String st.ss_stage);
        ("samples", Json.Int st.ss_samples);
        ("total", Json.Float st.ss_total);
        ("p50", Json.Float st.ss_p50);
        ("p90", Json.Float st.ss_p90);
        ("p99", Json.Float st.ss_p99);
      ]
  in
  let base =
    [
      ("cases", Json.Int s.cases);
      ("wall", Json.Float s.wall);
      ("throughput", Json.Float s.throughput);
      ("hit_rate", Json.Float (Passmgr.hit_rate s.cache));
      ("journal_skipped", Json.Int s.journal_skipped);
      ("crashed", Json.Int s.crashed);
      ("timeouts", Json.Int s.timeouts);
      ("ir_invalid", Json.Int s.ir_invalid);
      ("retries", Json.Int s.retries);
      ("recovered", Json.Int s.recovered);
      ("chaos_fired", Json.Int s.chaos_fired);
      ("stages", Json.List (List.map stage s.stages));
    ]
  in
  let fabric =
    match s.fabric with
    | None -> []
    | Some f ->
      [
        ( "fabric",
          Json.Obj
            [
              ("workers", Json.Int f.f_workers);
              ("jobs", Json.Int f.f_jobs);
              ("chunks", Json.Int f.f_chunks);
              ( "cases_per_worker",
                Json.List (List.map (fun n -> Json.Int n) f.f_cases_per_worker) );
              ("reassigned", Json.Int f.f_reassigned);
              ("deaths", Json.Int f.f_deaths);
              ("respawns", Json.Int f.f_respawns);
            ] );
      ]
  in
  Json.Obj (base @ fabric)

let to_string s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d cases in %.2fs (%.1f cases/sec)\n" s.cases s.wall s.throughput);
  Buffer.add_string buf
    (Printf.sprintf "analysis-cache hit rate across workers: %.1f%%\n"
       (100.0 *. Passmgr.hit_rate s.cache));
  if s.crashed + s.timeouts + s.ir_invalid + s.retries + s.recovered + s.chaos_fired > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "supervision: %d crashed, %d timed out, %d invalid IR; %d retries (%d recovered); %d \
          chaos faults injected\n"
         s.crashed s.timeouts s.ir_invalid s.retries s.recovered s.chaos_fired);
  (match s.fabric with
   | None -> ()
   | Some f ->
     Buffer.add_string buf
       (Printf.sprintf
          "fabric: %d worker process(es) x %d domain(s), %d chunk(s) dispatched (cases/worker: \
           %s)%s%s\n"
          f.f_workers f.f_jobs f.f_chunks
          (String.concat "/" (List.map string_of_int f.f_cases_per_worker))
          (if f.f_deaths > 0 then
             Printf.sprintf "; %d worker death(s), %d case(s) reassigned" f.f_deaths f.f_reassigned
           else "")
          (if f.f_respawns > 0 then Printf.sprintf ", %d respawn(s)" f.f_respawns else "")));
  if s.journal_skipped > 0 then
    Buffer.add_string buf
      (Printf.sprintf "%d journal record(s) skipped (unreadable or from another build)\n"
         s.journal_skipped);
  if s.stages <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-16s %8s %10s %10s %10s %10s\n" "stage" "samples" "total" "p50" "p90"
         "p99");
    List.iter
      (fun st ->
        Buffer.add_string buf
          (Printf.sprintf "%-16s %8d %9.2fs %8.2fms %8.2fms %8.2fms\n" st.ss_stage st.ss_samples
             st.ss_total (1e3 *. st.ss_p50) (1e3 *. st.ss_p90) (1e3 *. st.ss_p99)))
      s.stages
  end;
  Buffer.contents buf
