(** Deterministic seed-space sharding.

    A campaign over [count] cases split across [jobs] workers assigns case
    index [i] to worker [i mod jobs] (round-robin).  The assignment is a pure
    function of [(count, jobs)], so a resumed or re-run campaign distributes
    identically; round-robin also balances the front of the corpus across
    workers, which matters because case cost is roughly uniform but the
    campaign may be interrupted at any prefix.

    Invariants (property-tested): the shards are pairwise disjoint, their
    union is exactly [{0, …, count-1}], each shard is strictly increasing,
    and no shard exists for a worker index outside [0, jobs). *)

val worker_of_case : jobs:int -> int -> int
(** [worker_of_case ~jobs i] — the worker owning case [i]. *)

val cases_of : count:int -> jobs:int -> int -> int list
(** [cases_of ~count ~jobs w] — worker [w]'s case indices, strictly
    increasing.  Empty when [w >= count].  Raises [Invalid_argument] when
    [jobs < 1], [count < 0], or [w] is outside [0, jobs). *)

val plan : count:int -> jobs:int -> int list array
(** All shards: [(plan ~count ~jobs).(w) = cases_of ~count ~jobs w]. *)
