(** The bisection campaign: {!Dce_bisect.Bisect.find_regression} fanned out
    over every (case, missed-marker) pair of a corpus on the {!Engine}'s
    Domain pool (paper §4.2, the step that turns differential-testing hits
    into the offending-commit Tables 3/4).

    {b Pairs} are derived purely from the corpus: for each analyzed case, in
    the analysis' config order, every marker of the config's missed set at
    the campaign level.  Output is therefore a pure function of the corpus —
    [jobs = N] is byte-identical to [jobs = 1], which equals running
    sequential per-marker {!Dce_bisect.Bisect.find_regression} yourself.

    {b Probe cache.}  With [cache] (the default), every probe routes through
    the content-addressed compile cache keyed by
    [(compiler, version, level, Ast.hash_program)] — one compiled probe
    version answers for {e every} marker of that program, so sibling markers
    of a case (and journal-resumed re-runs) share compiles.  The cache is
    observably transparent: outcomes and probe counts are identical with it
    off.

    {b Journal.}  Completed cases append a ["bisect-case"] JSONL record;
    resume skips them.  Records of unknown kind or verdict (e.g. from a
    newer build) are skipped and counted, never fatal. *)

type bisection = {
  bs_compiler : string;  (** ["gcc-sim"] or ["llvm-sim"] *)
  bs_marker : int;
  bs_probes : int;       (** compile-and-check probes spent on this pair *)
  bs_outcome : Dce_bisect.Bisect.outcome;
}

type case_report = {
  br_case : int;  (** corpus index *)
  br_seed : int;  (** generator seed of the case *)
  br_probes : int;
  br_bisections : bisection list;  (** config order, then ascending marker *)
}

type t = {
  b_level : Dce_compiler.Level.t;
  b_jobs : int;
  b_cases : case_report Engine.case_outcome array;
      (** one slot per corpus case that had missed markers at the level *)
  b_corpus_cases : int array;  (** engine slot → corpus index *)
  b_seeds : int array;
  b_pairs : int;   (** total (case, marker) pairs bisected *)
  b_probes : int;  (** total compile-and-check probes *)
  b_quarantine : Engine.quarantined list;
  b_metrics : Metrics.summary;
  b_resumed : int;
  b_skipped : int;  (** journal records skipped on resume *)
}

val run :
  ?journal:string ->
  ?cache:bool ->
  ?level:Dce_compiler.Level.t ->
  ?deadline:float ->
  ?step_budget:int ->
  ?retries:int ->
  ?workers:int ->
  ?chunk:int ->
  jobs:int ->
  Corpus.t ->
  t
(** Defaults: [cache = true], [level = O3] (the level with the most
    regressions in both simulated histories).  [deadline] / [step_budget] /
    [retries] are the {!Engine.run} supervision controls, bounding each
    case's bisections.  [workers]/[chunk] run the campaign on the
    multi-process {!Fabric} (byte-identical output). *)

val codec : case_report Engine.codec
(** The ["bisect-case"] journal record codec (exposed for tests). *)

val regressions :
  t -> (int * string * int * Dce_bisect.Bisect.regression) list
(** [(corpus case, compiler, marker, regression)] for every pair that
    bisected to an offending commit, in campaign order. *)

val commits_by_compiler :
  t -> (string * Dce_compiler.Version.commit list) list
(** Offending commits per compiler, ["llvm-sim"] first (Table 3), then
    ["gcc-sim"] (Table 4); duplicates preserved (one entry per regression —
    {!Dce_bisect.Bisect.component_table} deduplicates). *)

val summary : t -> string
(** One line: pairs, cases, level, verdict counts, total probes. *)

val component_tables : t -> string
(** The rendered Tables 3/4: per compiler, offending commits deduplicated
    and grouped by component with distinct-file counts. *)

val quarantine_to_string : t -> string
(** One line per quarantined case: corpus index, seed, stage, error. *)
