module Passmgr = Dce_compiler.Passmgr

(* The multi-process campaign fabric: a coordinator forks N persistent
   worker processes over Unix-domain socketpairs and hands out case chunks
   on demand (work stealing: a worker that finishes early pulls the next
   chunk).  Workers execute cases through the exact Engine per-case
   machinery — [Engine.attempt_case], [Engine.case_to_json] — and stream the
   resulting journal records back; the coordinator merges them into the
   case-indexed outcomes array and the one canonical journal.  Determinism
   therefore does not depend on scheduling or arrival order, only on the
   case set: the same discipline that makes [Engine.run ~jobs:N]
   byte-identical to [~jobs:1] extends across processes.

   Fork happens before any domain is spawned (the coordinator never spawns
   domains; workers spawn their [~jobs] domains after the fork), which is
   the OCaml 5 runtime's fork-safety requirement.  Fork inheritance is also
   what lets the fabric stay generic: the runner and codec closures cross
   into the worker by inheritance, not serialization. *)

let in_worker_flag = ref false
let in_worker () = !in_worker_flag

exception Interrupted of int

(* ------------------------------------------------------------------ *)
(* wire helpers (line JSON over the socketpair)                        *)
(* ------------------------------------------------------------------ *)

let op name fields = Json.Obj (("op", Json.String name) :: fields)

let counters_to_json (c : Passmgr.counters) =
  Json.Obj
    [
      ("meminfo_hits", Json.Int c.meminfo_hits);
      ("meminfo_misses", Json.Int c.meminfo_misses);
      ("cfg_hits", Json.Int c.cfg_hits);
      ("cfg_misses", Json.Int c.cfg_misses);
      ("dom_hits", Json.Int c.dom_hits);
      ("dom_misses", Json.Int c.dom_misses);
    ]

let counters_of_json j : Passmgr.counters =
  {
    meminfo_hits = Json.get_int j "meminfo_hits";
    meminfo_misses = Json.get_int j "meminfo_misses";
    cfg_hits = Json.get_int j "cfg_hits";
    cfg_misses = Json.get_int j "cfg_misses";
    dom_hits = Json.get_int j "dom_hits";
    dom_misses = Json.get_int j "dom_misses";
  }

let counters_zero : Passmgr.counters =
  {
    meminfo_hits = 0;
    meminfo_misses = 0;
    cfg_hits = 0;
    cfg_misses = 0;
    dom_hits = 0;
    dom_misses = 0;
  }

let counters_add (a : Passmgr.counters) (b : Passmgr.counters) : Passmgr.counters =
  {
    meminfo_hits = a.meminfo_hits + b.meminfo_hits;
    meminfo_misses = a.meminfo_misses + b.meminfo_misses;
    cfg_hits = a.cfg_hits + b.cfg_hits;
    cfg_misses = a.cfg_misses + b.cfg_misses;
    dom_hits = a.dom_hits + b.dom_hits;
    dom_misses = a.dom_misses + b.dom_misses;
  }

(* ------------------------------------------------------------------ *)
(* worker side                                                         *)
(* ------------------------------------------------------------------ *)

(* A worker is a plain loop: read a chunk, run its cases over [jobs]
   domains, stream one "case" record per completed case, send "chunk-done",
   repeat until "quit".  The process stays alive across chunks, which is
   what keeps the content-addressed compile cache and the pass-manager
   analysis caches warm — chunk 7 reuses entries populated by chunk 2. *)
let worker_main (type a) ~sock ~slot ~jobs ?deadline ?step_budget ~retries ~transient ~chaos
    ~(codec : a Engine.codec) (runner : Engine.ctx -> int -> a) =
  Printexc.record_backtrace true;
  let ic = Unix.in_channel_of_descr sock in
  let oc = Unix.out_channel_of_descr sock in
  set_binary_mode_out oc true;
  let send_lock = Mutex.create () in
  let send j =
    Mutex.protect send_lock (fun () ->
        output_string oc (Json.to_string j);
        output_char oc '\n';
        flush oc)
  in
  let acc = ref (Metrics.create ()) in
  let cache0 = Passmgr.counters () in
  let chaos0 = Chaos.fired_count () in
  let run_chunk cases =
    let arr = Array.of_list cases in
    let n = Array.length arr in
    let body d =
      let ctx = Engine.make_ctx ~worker:((slot * jobs) + d) in
      let i = ref d in
      while !i < n do
        let case = arr.(!i) in
        let outcome =
          Engine.attempt_case ?deadline ?step_budget ~retries ~transient ~chaos ctx runner case
        in
        send (op "case" [ ("record", Engine.case_to_json codec case outcome) ]);
        i := !i + jobs
      done;
      Engine.ctx_metrics ctx
    in
    let per_domain =
      if jobs = 1 || n <= 1 then [ body 0 ]
      else
        Array.init (min jobs n) (fun d -> Domain.spawn (fun () -> body d))
        |> Array.to_list |> List.map Domain.join
    in
    List.iter (fun m -> acc := Metrics.merge !acc m) per_domain
  in
  send (op "hello" [ ("worker", Json.Int slot); ("pid", Json.Int (Unix.getpid ())) ]);
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> () (* coordinator vanished: die quietly *)
    | exception Sys_error _ -> ()
    | line -> (
      match Json.of_string line with
      | Error _ -> () (* a torn coordinator write means the coordinator died *)
      | Ok msg -> (
        match Json.member "op" msg with
        | Some (Json.String "chunk") ->
          let id = Json.get_int msg "chunk" in
          let cases = List.map Json.int_exn (Json.get_list msg "cases") in
          run_chunk cases;
          send (op "chunk-done" [ ("chunk", Json.Int id) ]);
          loop ()
        | Some (Json.String "quit") ->
          send
            (op "bye"
               [
                 ("worker", Json.Int slot);
                 ("metrics", Metrics.to_json !acc);
                 ("cache", counters_to_json (Engine.counters_delta cache0 (Passmgr.counters ())));
                 ("chaos_fired", Json.Int (Chaos.fired_count () - chaos0));
               ])
        | _ -> loop () (* unknown op: skip, forward compatibility *)))
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* coordinator side                                                    *)
(* ------------------------------------------------------------------ *)

type wstate = {
  ws_slot : int;
  ws_pid : int;
  ws_fd : Unix.file_descr;
  ws_buf : Buffer.t;  (* partial-line input buffer *)
  mutable ws_pending : int list;  (* in-flight chunk cases not yet reported *)
  mutable ws_retiring : bool;     (* quit sent, no more work for this one *)
  mutable ws_bye : bool;          (* farewell (metrics) received *)
  mutable ws_deadline : float;    (* absolute chunk deadline, [infinity] when idle *)
  mutable ws_cases : int;         (* cases completed over the worker's lifetime *)
}

let take n l =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] l

let run (type a) ?journal ?(codec : a Engine.codec option) ?(campaign = "campaign") ?(seed = 0)
    ?deadline ?step_budget ?(retries = 0) ?(transient = Chaos.is_transient)
    ?(chaos : Chaos.plan = []) ?chunk ?chunk_deadline ?max_respawns ?(scheduling = `Dynamic)
    ~workers ~jobs ~count (runner : Engine.ctx -> int -> a) : a Engine.result =
  if workers < 1 then invalid_arg "Fabric.run: workers must be >= 1";
  if workers = 1 then
    (* the degenerate fabric is the in-process engine itself — which is the
       determinism anchor: --workers N is byte-identical to --workers 1
       because both fill the same case-indexed array with the same per-case
       machinery *)
    Engine.run ?journal ?codec ~campaign ~seed ?deadline ?step_budget ~retries ~transient ~chaos
      ~jobs ~count runner
  else begin
    if jobs < 1 then invalid_arg "Fabric.run: jobs must be >= 1";
    if count < 0 then invalid_arg "Fabric.run: count must be >= 0";
    (* OCaml bans Unix.fork permanently once any domain has ever been created
       in the process (even after they are joined), so a multi-process grid
       must come before any --jobs > 1 campaign in the same process.  Fail
       with the diagnosis rather than the runtime's bare Failure. *)
    if Engine.domains_ever_spawned () then
      failwith
        "Fabric.run: cannot fork worker processes after worker domains have been spawned in \
         this process (OCaml forbids fork once any domain has ever existed); run the \
         multi-process fabric from a fresh process, or before any --jobs > 1 campaign";
    (match chunk with
     | Some c when c < 1 -> invalid_arg "Fabric.run: chunk must be >= 1"
     | _ -> ());
    let codec =
      match codec with
      | Some c -> c
      | None ->
        invalid_arg
          "Fabric.run: multi-process execution requires a codec (case results cross a process \
           boundary)"
    in
    let max_respawns = match max_respawns with Some r -> max 0 r | None -> 2 * workers in
    Printexc.record_backtrace true;
    let campaign = Engine.campaign_name ~campaign ~chaos in
    let t0 = Unix.gettimeofday () in
    let cache0 = Passmgr.counters () in
    let chaos0 = Chaos.fired_count () in
    let outcomes : a Engine.case_outcome option array = Array.make count None in
    let resumed = ref 0 in
    let skipped = ref 0 in
    let jnl =
      match journal with
      | None -> None
      | Some path ->
        let header = { Journal.h_campaign = campaign; h_seed = seed; h_count = count } in
        let existing = Journal.load ~path in
        (match existing with
         | Some (h, cases, dropped) when h = header ->
           skipped := dropped;
           let r, s = Engine.replay codec ~count outcomes cases in
           resumed := r;
           skipped := !skipped + s
         | Some _ | None -> ());
        Some (Journal.open_append ~existing ~path header)
    in
    let pending = List.filter (fun i -> outcomes.(i) = None) (List.init count Fun.id) in
    let npending = List.length pending in
    let chunk_size =
      match chunk with
      | Some c -> c
      | None ->
        (* several chunks per worker so stealing has slack, bounded so the
           per-chunk protocol overhead stays negligible *)
        max 1 (min 32 (npending / (workers * 4)))
    in
    (* the work plan: dynamic mode slices the pending cases into a shared
       chunk queue any worker pulls from; static mode pins one chunk per
       worker slot by round-robin position — Shard.worker_of_case lifted to
       processes, kept as the measurable baseline work stealing beats *)
    let queue : int list Queue.t = Queue.create () in
    let pinned : (int, int list) Hashtbl.t = Hashtbl.create workers in
    (match scheduling with
     | `Dynamic ->
       let rec slice = function
         | [] -> ()
         | l ->
           let c, rest = take chunk_size l in
           Queue.add c queue;
           slice rest
       in
       slice pending
     | `Static ->
       let buckets = Array.make workers [] in
       List.iteri (fun p i -> buckets.(p mod workers) <- i :: buckets.(p mod workers)) pending;
       Array.iteri (fun s b -> if b <> [] then Hashtbl.replace pinned s (List.rev b)) buckets);
    let live : wstate list ref = ref [] in
    (* set from the SIGINT/SIGTERM handler; checked at every dispatch and
       select round.  One signal drains (in-flight chunks finish, queue
       stays journaled); a second one hard-kills the fleet. *)
    let interrupt : int option ref = ref None in
    let interrupt_count = ref 0 in
    let death_count = Array.make (max count 1) 0 in
    let deaths = ref 0 in
    let respawns = ref 0 in
    let reassigned = ref 0 in
    let chunks_dispatched = ref 0 in
    let next_slot = ref 0 in
    let cases_by_slot : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let worker_metrics = ref (Metrics.create ()) in
    let worker_cache = ref counters_zero in
    let worker_chaos = ref 0 in
    let spawn_worker () =
      let slot = !next_slot in
      incr next_slot;
      let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (* a forked child duplicates unflushed stdio buffers *)
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
        in_worker_flag := true;
        (try Unix.close parent_fd with Unix.Unix_error _ -> ());
        (try
           worker_main ~sock:child_fd ~slot ~jobs ?deadline ?step_budget ~retries ~transient
             ~chaos ~codec runner
         with _ -> ());
        (* _exit, not exit: at_exit handlers and stdio flushing belong to
           the coordinator *)
        Unix._exit 0
      | pid ->
        Unix.close child_fd;
        let w =
          {
            ws_slot = slot;
            ws_pid = pid;
            ws_fd = parent_fd;
            ws_buf = Buffer.create 4096;
            ws_pending = [];
            ws_retiring = false;
            ws_bye = false;
            ws_deadline = infinity;
            ws_cases = 0;
          }
        in
        live := w :: !live
    in
    let send_to w j =
      let b = Bytes.of_string (Json.to_string j ^ "\n") in
      try
        let rec wr off =
          if off < Bytes.length b then wr (off + Unix.write w.ws_fd b off (Bytes.length b - off))
        in
        wr 0
      with Unix.Unix_error _ -> ()
      (* a failed send means the worker is dying; its EOF triggers the death
         path, which requeues whatever we just tried to assign *)
    in
    let dispatch w =
      let next =
        if !interrupt <> None then None
          (* draining on SIGINT/SIGTERM: in-flight chunks finish (their
             records are already streaming into the journal), but no new
             chunk leaves the queue — the journal is the persisted queue *)
        else
          match Hashtbl.find_opt pinned w.ws_slot with
          | Some block ->
            Hashtbl.remove pinned w.ws_slot;
            Some block
          | None -> Queue.take_opt queue
      in
      match next with
      | Some cases ->
        let id = !chunks_dispatched in
        incr chunks_dispatched;
        w.ws_pending <- cases;
        w.ws_deadline <-
          (match chunk_deadline with Some d -> Unix.gettimeofday () +. d | None -> infinity);
        send_to w
          (op "chunk"
             [ ("chunk", Json.Int id); ("cases", Json.List (List.map (fun i -> Json.Int i) cases)) ])
      | None ->
        w.ws_retiring <- true;
        w.ws_deadline <- infinity;
        send_to w (op "quit" [])
    in
    let quarantine_case i =
      if i >= 0 && i < count && outcomes.(i) = None then begin
        let outcome =
          Engine.Crashed
            {
              Engine.q_case = i;
              q_stage = "fabric";
              q_error = "worker process died before completing the case";
              q_kind = Engine.Crash;
              q_backtrace = "";
              q_retries = 0;
            }
        in
        (match jnl with Some j -> Journal.append j (Engine.case_to_json codec i outcome) | None -> ());
        outcomes.(i) <- Some outcome
      end
    in
    let handle_msg w msg =
      match Json.member "op" msg with
      | Some (Json.String "hello") -> dispatch w
      | Some (Json.String "case") -> (
        let record = try Json.get msg "record" with Failure _ -> Json.Null in
        match Engine.case_of_json codec record with
        | Some (i, outcome) when i >= 0 && i < count ->
          w.ws_pending <- List.filter (fun c -> c <> i) w.ws_pending;
          w.ws_cases <- w.ws_cases + 1;
          if outcomes.(i) = None then begin
            (* the worker computed this exact record with Engine.case_to_json;
               appending the parse re-serializes it byte-identically, so the
               journal is indistinguishable from a non-fabric run's *)
            (match jnl with Some j -> Journal.append j record | None -> ());
            outcomes.(i) <- Some outcome
          end
        | Some _ | None -> ()
        | exception _ -> ()
        (* an undecodable or out-of-range record is dropped: the slot stays
           open and the case re-runs or is quarantined — never fatal *))
      | Some (Json.String "chunk-done") ->
        w.ws_pending <- [];
        w.ws_deadline <- infinity;
        dispatch w
      | Some (Json.String "bye") ->
        w.ws_bye <- true;
        (try
           worker_metrics := Metrics.merge !worker_metrics (Metrics.of_json (Json.get msg "metrics"))
         with _ -> ());
        (try worker_cache := counters_add !worker_cache (counters_of_json (Json.get msg "cache"))
         with _ -> ());
        (match Json.member "chaos_fired" msg with
         | Some (Json.Int n) -> worker_chaos := !worker_chaos + n
         | _ -> ())
      | _ -> ()
    in
    let bury w =
      live := List.filter (fun x -> x != w) !live;
      Hashtbl.replace cases_by_slot w.ws_slot w.ws_cases;
      (try Unix.close w.ws_fd with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] w.ws_pid) with Unix.Unix_error _ -> ())
    in
    let on_death w =
      bury w;
      if !interrupt <> None then ()
        (* draining: no requeue, no quarantine, no respawn — unfinished
           cases stay absent from the journal and re-run on resume *)
      else if not w.ws_bye then begin
        (* crash containment: only the dead worker's unfinished in-flight
           cases are affected.  Each gets one more chance on another worker;
           a case that kills two workers is the poison pill and is
           quarantined so the campaign always terminates. *)
        incr deaths;
        let unfinished = List.filter (fun i -> outcomes.(i) = None) w.ws_pending in
        let requeue, poison = List.partition (fun i -> death_count.(i) < 1) unfinished in
        List.iter (fun i -> death_count.(i) <- death_count.(i) + 1) unfinished;
        List.iter quarantine_case poison;
        if requeue <> [] then begin
          reassigned := !reassigned + List.length requeue;
          Queue.add requeue queue
        end;
        (match Hashtbl.find_opt pinned w.ws_slot with
         | Some block ->
           (* died before claiming its pinned block: let anyone steal it *)
           Hashtbl.remove pinned w.ws_slot;
           Queue.add block queue
         | None -> ())
      end;
      (* forward progress: when work remains but every surviving worker has
         already been told to quit (or none survives), fork a replacement —
         within a budget, beyond which the leftovers are quarantined rather
         than looping on a fault that kills every process we throw at it *)
      let work_remains =
        !interrupt = None && ((not (Queue.is_empty queue)) || Hashtbl.length pinned > 0)
      in
      let someone_will_ask = List.exists (fun x -> not x.ws_retiring) !live in
      if work_remains && not someone_will_ask then
        if !respawns < max_respawns then begin
          incr respawns;
          spawn_worker ()
        end
        else begin
          Queue.iter (List.iter quarantine_case) queue;
          Queue.clear queue;
          Hashtbl.iter (fun _ block -> List.iter quarantine_case block) pinned;
          Hashtbl.reset pinned
        end
    in
    let read_buf = Bytes.create 65536 in
    let handle_readable w =
      match Unix.read w.ws_fd read_buf 0 (Bytes.length read_buf) with
      | 0 -> on_death w
      | exception Unix.Unix_error _ -> on_death w
      | k ->
        Buffer.add_subbytes w.ws_buf read_buf 0 k;
        let data = Buffer.contents w.ws_buf in
        let rec split start =
          match String.index_from_opt data start '\n' with
          | Some nl ->
            (match Json.of_string (String.sub data start (nl - start)) with
             | Ok msg -> handle_msg w msg
             | Error _ -> ());
            split (nl + 1)
          | None ->
            Buffer.clear w.ws_buf;
            Buffer.add_substring w.ws_buf data start (String.length data - start)
        in
        split 0
    in
    (* writes to a worker that died between select rounds must surface as
       EPIPE (handled in send_to), not kill the coordinator *)
    let sigpipe_prev =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
    in
    (* a Ctrl-C / SIGTERM must not leak the fleet or the journal lock: the
       handler only sets a flag (select wakes with EINTR); the loop drains,
       the [~finally] below closes the journal and restores dispositions,
       and [run] raises {!Interrupted} once everything is released *)
    let install signo =
      try
        Some
          ( signo,
            Sys.signal signo
              (Sys.Signal_handle
                 (fun s ->
                   incr interrupt_count;
                   interrupt := Some s)) )
      with Invalid_argument _ | Sys_error _ -> None
    in
    let prev_signals = List.filter_map install [ Sys.sigint; Sys.sigterm ] in
    let jnl_closed = ref false in
    let close_jnl () =
      if not !jnl_closed then begin
        jnl_closed := true;
        match jnl with Some j -> (try Journal.close j with Sys_error _ -> ()) | None -> ()
      end
    in
    let finished = ref false in
    Fun.protect
      ~finally:(fun () ->
        (* on an abnormal exit (exception in the coordinator), don't leak
           worker processes *)
        if not !finished then
          List.iter
            (fun w ->
              (try Unix.kill w.ws_pid Sys.sigkill with Unix.Unix_error _ -> ());
              bury w)
            !live;
        (* the journal lock must be released on *every* path — normal
           return, coordinator exception, and signal drain alike *)
        close_jnl ();
        List.iter
          (fun (s, b) -> try Sys.set_signal s b with Invalid_argument _ -> ())
          prev_signals;
        (match sigpipe_prev with
         | Some b -> (try Sys.set_signal Sys.sigpipe b with Invalid_argument _ -> ())
         | None -> ()))
      (fun () ->
        for _ = 1 to min workers npending do
          spawn_worker ()
        done;
        while !live <> [] do
          let now = Unix.gettimeofday () in
          (* impatient shutdown: a second signal stops waiting for in-flight
             chunks and kills the fleet outright (the journal still holds
             every record received so far) *)
          if !interrupt_count >= 2 then
            List.iter
              (fun w ->
                (try Unix.kill w.ws_pid Sys.sigkill with Unix.Unix_error _ -> ());
                on_death w)
              !live;
          (* hang containment: a worker past its chunk deadline is killed;
             the death path requeues or quarantines its in-flight cases *)
          List.iter
            (fun w ->
              if w.ws_deadline < now then begin
                (try Unix.kill w.ws_pid Sys.sigkill with Unix.Unix_error _ -> ());
                on_death w
              end)
            !live;
          if !live <> [] then begin
            let timeout =
              List.fold_left (fun acc w -> Float.min acc w.ws_deadline) infinity !live
              |> fun d -> if d = infinity then -1.0 else Float.max 0.0 (d -. now)
            in
            let fds = List.map (fun w -> w.ws_fd) !live in
            let readable, _, _ =
              try Unix.select fds [] [] timeout
              with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
            in
            List.iter
              (fun fd ->
                match List.find_opt (fun w -> w.ws_fd = fd) !live with
                | Some w -> handle_readable w
                | None -> ())
              readable
          end
        done;
        finished := true);
    close_jnl ();
    (match !interrupt with Some signo -> raise (Interrupted signo) | None -> ());
    let outcomes =
      Array.mapi
        (fun i slot ->
          match slot with Some o -> o | None -> Engine.never_completed ~stage:"fabric" i)
        outcomes
    in
    let quarantine =
      Array.to_list outcomes
      |> List.filter_map (function Engine.Crashed q -> Some q | Engine.Done _ -> None)
    in
    let count_kind k =
      List.length (List.filter (fun (q : Engine.quarantined) -> q.Engine.q_kind = k) quarantine)
    in
    let wall = Unix.gettimeofday () -. t0 in
    let cache = counters_add (Engine.counters_delta cache0 (Passmgr.counters ())) !worker_cache in
    let fabric =
      {
        Metrics.f_workers = min workers npending;
        f_jobs = jobs;
        f_chunks = !chunks_dispatched;
        f_cases_per_worker =
          List.init !next_slot (fun s ->
              Option.value ~default:0 (Hashtbl.find_opt cases_by_slot s));
        f_reassigned = !reassigned;
        f_deaths = !deaths;
        f_respawns = !respawns;
      }
    in
    let executed = count - !resumed in
    {
      Engine.outcomes;
      quarantine;
      metrics =
        Metrics.summarize ~journal_skipped:!skipped ~crashed:(count_kind Engine.Crash)
          ~timeouts:(count_kind Engine.Timeout) ~ir_invalid:(count_kind Engine.Ir_invalid)
          ~chaos_fired:(Chaos.fired_count () - chaos0 + !worker_chaos)
          ~fabric ~cases:executed ~wall ~cache !worker_metrics;
      resumed = !resumed;
      skipped = !skipped;
    }
  end
