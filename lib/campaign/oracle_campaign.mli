(** The size and level-inversion oracle campaigns: the two non-marker
    regression classes run through the full {!Engine} machinery — Domain
    pool, deterministic sharding, quarantine, metrics, JSONL journal/resume.

    {b Size campaign} (["size-hunt"], record kind ["size-case"]): per valid
    program, the {!Dce_core.Differential.size_curve} of both simulated
    compilers at [-Os]/[-O2].  The journal stores the {e curve}, never the
    findings — {!Dce_core.Differential.size_findings_of} is pure, so reports
    can be re-derived (even re-thresholded via [ratio]) from a journal
    without recompiling anything.

    {b Inversion campaign} (["level-hunt"], record kind ["inversion-case"]):
    per valid program and compiler, surviving sets at [-O1]/[-Os]/[-O2]/[-O3]
    (through the shared compile cache) feed
    {!Dce_core.Differential.inversions}; each inversion is attributed to the
    pass that eliminates the marker at the low level via one traced compile
    per distinct (compiler, low level).  The journal stores the oracle's
    inputs (dead set, surviving sets) plus the guilty-pass triples
    (attribution is the one expensive, uncacheable step); inversions are
    re-derived on decode.

    Both campaigns size the {e instrumented} program, so their compiles share
    content-addressed cache entries with the marker campaigns on the same
    corpus.  As everywhere: [jobs = N] output is byte-identical to
    [jobs = 1], and journal records of unknown kind are skipped-with-count,
    never fatal. *)

(** {1 Size campaign} *)

type size_case = {
  sc_seed : int;
  sc_rejected : string option;  (** ground-truth rejection reason *)
  sc_curve : (string * Dce_compiler.Level.t * int) list;
}

type size_t = {
  s_seed : int;
  s_count : int;
  s_jobs : int;
  s_ratio : float;  (** cross-compiler threshold (reporting parameter) *)
  s_seeds : int array;
  s_cases : size_case Engine.case_outcome array;
  s_quarantine : Engine.quarantined list;
  s_metrics : Metrics.summary;
  s_resumed : int;
  s_skipped : int;
}

val size_codec : size_case Engine.codec
(** The ["size-case"] journal record codec (exposed for tests). *)

val run_size :
  ?journal:string ->
  ?fuel:int ->
  ?exec:Dce_exec.Exec.backend ->
  ?ratio:float ->
  ?deadline:float ->
  ?step_budget:int ->
  ?retries:int ->
  ?workers:int ->
  ?chunk:int ->
  jobs:int ->
  seed:int ->
  count:int ->
  unit ->
  size_t
(** [ratio] defaults to 1.25.  [fuel]/[exec] control the ground-truth
    executor (programs that trap or exhaust fuel are rejected, exactly as in
    the marker campaign); the remaining options are the {!Engine.run}
    supervision controls.  [workers]/[chunk] run the campaign on the
    multi-process {!Fabric} (byte-identical output, as everywhere). *)

val size_findings : size_t -> (int * Dce_core.Differential.size_finding) list
(** [(corpus case, finding)] pairs, ascending case order — derived from the
    journaled curves with the campaign's [ratio]. *)

val size_report : size_t -> string
(** Summary line ("… N size findings …"), size-delta histogram, and
    per-guilty-config counts. *)

val size_quarantine_to_string : size_t -> string

(** {1 Level-inversion campaign} *)

type inv_finding = {
  if_compiler : string;
  if_inversion : Dce_core.Differential.inversion;
  if_guilty : string;
      (** label of the pass that eliminates the marker at [iv_low] — what
          the [iv_high] pipeline is failing to do *)
}

type inv_case = {
  ic_seed : int;
  ic_rejected : string option;
  ic_dead : Dce_ir.Ir.Iset.t;
  ic_surviving : (string * (Dce_compiler.Level.t * Dce_ir.Ir.Iset.t) list) list;
  ic_findings : inv_finding list;
}

type inv_t = {
  i_seed : int;
  i_count : int;
  i_jobs : int;
  i_seeds : int array;
  i_cases : inv_case Engine.case_outcome array;
  i_quarantine : Engine.quarantined list;
  i_metrics : Metrics.summary;
  i_resumed : int;
  i_skipped : int;
}

val inversion_levels : Dce_compiler.Level.t list
(** [[O1; Os; O2; O3]] — [O0] never eliminates, so it is excluded. *)

val inv_codec : inv_case Engine.codec
(** The ["inversion-case"] journal record codec (exposed for tests). *)

val run_inversion :
  ?journal:string ->
  ?fuel:int ->
  ?exec:Dce_exec.Exec.backend ->
  ?deadline:float ->
  ?step_budget:int ->
  ?retries:int ->
  ?workers:int ->
  ?chunk:int ->
  jobs:int ->
  seed:int ->
  count:int ->
  unit ->
  inv_t

val inversion_findings : inv_t -> (int * inv_finding) list
(** [(corpus case, finding)] pairs, ascending case order, gcc-sim before
    llvm-sim within a case, ascending marker within a compiler. *)

val inversion_report : inv_t -> string
(** Summary line ("… N level inversions …"), per-(compiler, low→high)
    counts, and per-guilty-pass counts. *)

val inversion_quarantine_to_string : inv_t -> string

(** {1 Bisecting inversions}

    An inversion is a regression of the [iv_high] pipeline relative to its
    own weaker levels; {!bisect_inversions} chases each one through the
    compiler's feature-flag commit history at [iv_high]. *)

type inv_bisection = {
  ib_case : int;
  ib_finding : inv_finding;
  ib_outcome : Dce_bisect.Bisect.outcome;
  ib_probes : int;
}

val bisect_inversions :
  ?cache:bool ->
  ?deadline:float ->
  ?step_budget:int ->
  ?retries:int ->
  jobs:int ->
  inv_t ->
  inv_bisection list
(** One bisection per inversion finding, on the Engine pool (no journal —
    probes already route through the compile cache), campaign order. *)

val inv_bisections_table : inv_bisection list -> string
