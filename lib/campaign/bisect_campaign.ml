module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir
module Bisect = Dce_bisect.Bisect

type bisection = {
  bs_compiler : string;
  bs_marker : int;
  bs_probes : int;
  bs_outcome : Bisect.outcome;
}

type case_report = {
  br_case : int;
  br_seed : int;
  br_probes : int;
  br_bisections : bisection list;
}

type t = {
  b_level : C.Level.t;
  b_jobs : int;
  b_cases : case_report Engine.case_outcome array;
  b_corpus_cases : int array;
  b_seeds : int array;
  b_pairs : int;
  b_probes : int;
  b_quarantine : Engine.quarantined list;
  b_metrics : Metrics.summary;
  b_resumed : int;
  b_skipped : int;
}

let compiler_named = function
  | "gcc-sim" -> C.Gcc_sim.compiler
  | "llvm-sim" -> C.Llvm_sim.compiler
  | other -> failwith (Printf.sprintf "bisect campaign: unknown compiler %S" other)

(* ------------------------------------------------------------------ *)
(* target derivation                                                   *)
(* ------------------------------------------------------------------ *)

(* The paper bisects every missed marker of every differential-tested case
   (§4.2); our pairs are (case, compiler, marker ∈ missed-at-level), in the
   analysis' config order then ascending marker order — a pure function of
   the corpus, so campaign output is deterministic for any jobs value. *)
let targets_of_case level = function
  | Corpus.Case (Core.Analysis.Analyzed a, _) ->
    let pairs =
      List.concat_map
        (fun (pc : Core.Analysis.per_config) ->
          if pc.Core.Analysis.cfg_level = level then
            List.map
              (fun m -> (pc.Core.Analysis.cfg_compiler, m))
              (Ir.Iset.elements pc.Core.Analysis.missed)
          else [])
        a.Core.Analysis.configs
    in
    if pairs = [] then None else Some (a.Core.Analysis.instrumented, pairs)
  | Corpus.Case (Core.Analysis.Rejected _, _) | Corpus.Quarantined _ -> None

(* ------------------------------------------------------------------ *)
(* journal codec: the "bisect-case" record kind                        *)
(* ------------------------------------------------------------------ *)

let outcome_fields = function
  | Bisect.Not_missed -> [ ("verdict", Json.String "not-missed") ]
  | Bisect.Always_missed -> [ ("verdict", Json.String "always-missed") ]
  | Bisect.Regression r ->
    [
      ("verdict", Json.String "regression");
      ("offending", Json.String r.Bisect.offending.C.Version.id);
      ("index", Json.Int r.Bisect.offending_index);
      ("last_good", Json.Int r.Bisect.last_good);
      ("compilations", Json.Int r.Bisect.compilations);
    ]

let outcome_of_json ~compiler j =
  match Json.get_str j "verdict" with
  | "not-missed" -> Bisect.Not_missed
  | "always-missed" -> Bisect.Always_missed
  | "regression" ->
    let id = Json.get_str j "offending" in
    let commit =
      match
        List.find_opt (fun (c : C.Version.commit) -> c.C.Version.id = id) compiler.C.Compiler.history
      with
      | Some c -> c
      | None -> failwith (Printf.sprintf "journal record: unknown commit %S" id)
    in
    Bisect.Regression
      {
        Bisect.offending = commit;
        offending_index = Json.get_int j "index";
        last_good = Json.get_int j "last_good";
        compilations = Json.get_int j "compilations";
      }
  | other -> failwith (Printf.sprintf "journal record: unknown bisection verdict %S" other)

let encode_report r =
  Json.Obj
    [
      ("kind", Json.String "bisect-case");
      ("corpus_case", Json.Int r.br_case);
      ("seed", Json.Int r.br_seed);
      ("probes", Json.Int r.br_probes);
      ( "bisections",
        Json.List
          (List.map
             (fun b ->
               Json.Obj
                 ([
                    ("compiler", Json.String b.bs_compiler);
                    ("marker", Json.Int b.bs_marker);
                    ("probes", Json.Int b.bs_probes);
                  ]
                 @ outcome_fields b.bs_outcome))
             r.br_bisections) );
    ]

let decode_report j =
  (match Json.get_str j "kind" with
   | "bisect-case" -> ()
   | other -> failwith (Printf.sprintf "journal record: unknown case kind %S" other));
  {
    br_case = Json.get_int j "corpus_case";
    br_seed = Json.get_int j "seed";
    br_probes = Json.get_int j "probes";
    br_bisections =
      List.map
        (fun bj ->
          let compiler_name = Json.get_str bj "compiler" in
          {
            bs_compiler = compiler_name;
            bs_marker = Json.get_int bj "marker";
            bs_probes = Json.get_int bj "probes";
            bs_outcome = outcome_of_json ~compiler:(compiler_named compiler_name) bj;
          })
        (Json.get_list j "bisections");
  }

let codec = { Engine.encode = encode_report; decode = decode_report }

(* ------------------------------------------------------------------ *)
(* the campaign                                                        *)
(* ------------------------------------------------------------------ *)

let run ?journal ?(cache = true) ?(level = C.Level.O3) ?deadline ?step_budget ?retries
    ?(workers = 1) ?chunk ~jobs (corpus : Corpus.t) =
  let work =
    Array.of_list
      (List.filter_map
         (fun (i, case) ->
           Option.map (fun (prog, pairs) -> (i, prog, pairs)) (targets_of_case level case))
         (Array.to_list (Array.mapi (fun i c -> (i, c)) corpus.Corpus.c_cases)))
  in
  let count = Array.length work in
  let runner ctx e =
    let ci, prog, pairs = work.(e) in
    let bisections =
      List.map
        (fun (compiler_name, marker) ->
          let outcome, probes =
            Engine.stage ctx "bisect" (fun () ->
                Bisect.find_regression_counted ~cache (compiler_named compiler_name) level prog
                  ~marker)
          in
          { bs_compiler = compiler_name; bs_marker = marker; bs_probes = probes;
            bs_outcome = outcome })
        pairs
    in
    {
      br_case = ci;
      br_seed = corpus.Corpus.c_seeds.(ci);
      br_probes = Dce_support.Listx.sum (List.map (fun b -> b.bs_probes) bisections);
      br_bisections = bisections;
    }
  in
  let result =
    Fabric.run ?journal ~codec ~campaign:"bisect" ~seed:corpus.Corpus.c_seed ?deadline
      ?step_budget ?retries ?chunk ~workers ~jobs ~count runner
  in
  let pairs =
    Array.fold_left (fun acc (_, _, ps) -> acc + List.length ps) 0 work
  in
  let probes =
    Array.fold_left
      (fun acc -> function Engine.Done r -> acc + r.br_probes | Engine.Crashed _ -> acc)
      0 result.Engine.outcomes
  in
  {
    b_level = level;
    b_jobs = jobs;
    b_cases = result.Engine.outcomes;
    b_corpus_cases = Array.map (fun (i, _, _) -> i) work;
    b_seeds = corpus.Corpus.c_seeds;
    b_pairs = pairs;
    b_probes = probes;
    b_quarantine = result.Engine.quarantine;
    b_metrics = result.Engine.metrics;
    b_resumed = result.Engine.resumed;
    b_skipped = result.Engine.skipped;
  }

(* ------------------------------------------------------------------ *)
(* aggregation: the paper's component/file tables                      *)
(* ------------------------------------------------------------------ *)

let bisections t =
  Array.to_list t.b_cases
  |> List.concat_map (function
       | Engine.Done r -> List.map (fun b -> (r.br_case, b)) r.br_bisections
       | Engine.Crashed _ -> [])

let regressions t =
  List.filter_map
    (fun (ci, b) ->
      match b.bs_outcome with
      | Bisect.Regression r -> Some (ci, b.bs_compiler, b.bs_marker, r)
      | Bisect.Always_missed | Bisect.Not_missed -> None)
    (bisections t)

let commits_by_compiler t =
  (* fixed compiler order: Table 3 is LLVM, Table 4 is GCC *)
  List.map
    (fun name ->
      ( name,
        List.filter_map
          (fun (_, comp, _, (r : Bisect.regression)) ->
            if comp = name then Some r.Bisect.offending else None)
          (regressions t) ))
    [ "llvm-sim"; "gcc-sim" ]

let summary t =
  let bs = bisections t in
  let verdict_count p = List.length (List.filter (fun (_, b) -> p b.bs_outcome) bs) in
  let reg = verdict_count (function Bisect.Regression _ -> true | _ -> false) in
  let always = verdict_count (function Bisect.Always_missed -> true | _ -> false) in
  let never = verdict_count (function Bisect.Not_missed -> true | _ -> false) in
  Printf.sprintf
    "%d (case, missed-marker) pairs bisected over %d cases at %s: %d regressions, %d \
     always-missed, %d not-missed; %d compile-and-check probes\n"
    t.b_pairs (Array.length t.b_corpus_cases)
    (C.Level.to_string t.b_level)
    reg always never t.b_probes

let component_tables t =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, commits) ->
      let table_name =
        if name = "llvm-sim" then "Table 3 (llvm-sim components)"
        else "Table 4 (gcc-sim components)"
      in
      Buffer.add_string buf (Printf.sprintf "%s\n" table_name);
      if commits = [] then Buffer.add_string buf "no regressions bisected for this compiler\n"
      else begin
        let rows = Bisect.component_table commits in
        Buffer.add_string buf
          (Printf.sprintf "%d regressions bisected to %d unique commits:\n" (List.length commits)
             (List.length (Dce_support.Listx.uniq (List.map (fun (c : C.Version.commit) -> c.C.Version.id) commits))));
        Buffer.add_string buf
          (Dce_report.Tables.render
             ~align:[ `Left; `Right; `Right ]
             ~header:[ "Component"; "# Commits"; "# Files" ]
             (List.map
                (fun (r : Bisect.component_row) ->
                  [ r.Bisect.component; string_of_int r.Bisect.commits; string_of_int r.Bisect.files ])
                rows))
      end)
    (commits_by_compiler t);
  Buffer.contents buf

let quarantine_to_string t =
  String.concat ""
    (List.map
       (fun (q : Engine.quarantined) ->
         let ci = t.b_corpus_cases.(q.Engine.q_case) in
         Printf.sprintf "  case %d (seed %d): crashed in stage %s: %s\n" ci
           t.b_seeds.(ci) q.Engine.q_stage q.Engine.q_error)
       t.b_quarantine)
