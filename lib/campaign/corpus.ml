module C = Dce_compiler
module Core = Dce_core
module Ir = Dce_ir.Ir
module Smith = Dce_smith.Smith
module Stats = Dce_report.Stats

type case_result =
  | Case of Core.Analysis.outcome * Dce_minic.Ast.program
  | Quarantined of Engine.quarantined

type t = {
  c_seed : int;
  c_count : int;
  c_jobs : int;
  c_seeds : int array;
  c_cases : case_result array;
  c_quarantine : Engine.quarantined list;
  c_metrics : Metrics.summary;
  c_resumed : int;
}

(* ------------------------------------------------------------------ *)
(* JSON codec for analysis outcomes                                    *)
(* ------------------------------------------------------------------ *)

type payload = {
  p_seed : int;
  p_outcome : Core.Analysis.outcome;
  p_raw : Dce_minic.Ast.program;
}

let iset_to_json s = Json.List (List.map (fun i -> Json.Int i) (Ir.Iset.elements s))

let iset_of_json j =
  match Json.to_list j with
  | Some l -> List.fold_left (fun s v -> Ir.Iset.add (Json.int_exn v) s) Ir.Iset.empty l
  | None -> failwith "journal record: expected a marker list"

let level_to_json l = Json.String (C.Level.to_string l)

let level_of_json j =
  match Json.to_str j with
  | Some s -> (
    match C.Level.of_string s with
    | Some l -> l
    | None -> failwith (Printf.sprintf "journal record: unknown level %S" s))
  | None -> failwith "journal record: expected a level string"

let config_to_json (pc : Core.Analysis.per_config) =
  Json.Obj
    [
      ("compiler", Json.String pc.Core.Analysis.cfg_compiler);
      ("level", level_to_json pc.Core.Analysis.cfg_level);
      ("surviving", iset_to_json pc.Core.Analysis.surviving);
      ( "attrib",
        Json.List
          (List.map
             (fun (stage, markers) ->
               Json.List
                 [ Json.String stage; Json.List (List.map (fun m -> Json.Int m) markers) ])
             (C.Passmgr.attribution pc.Core.Analysis.cfg_trace)) );
    ]

(* a stage trace carrying exactly the journaled attribution: labels and
   eliminated markers survive the round trip, measurements (time, IR deltas)
   do not — they are not results *)
let synthetic_trace attrib : C.Passmgr.trace =
  List.map
    (fun (label, markers) ->
      {
        C.Passmgr.sr_label = label;
        sr_round = 0;
        sr_time = 0.;
        sr_changed = true;
        sr_blocks_before = 0;
        sr_blocks_after = 0;
        sr_instrs_before = 0;
        sr_instrs_after = 0;
        sr_markers_eliminated = markers;
      })
    attrib

let encode_payload p =
  let common = [ ("seed", Json.Int p.p_seed) ] in
  match p.p_outcome with
  | Core.Analysis.Rejected reason ->
    Json.Obj (common @ [ ("kind", Json.String "rejected"); ("reason", Json.String reason) ])
  | Core.Analysis.Analyzed a ->
    let truth = a.Core.Analysis.truth in
    let live_blocks =
      Ir.Bset.elements truth.Core.Ground_truth.live_blocks
      |> List.map (fun (fn, label) -> Json.List [ Json.String fn; Json.Int label ])
    in
    Json.Obj
      (common
      @ [
          ("kind", Json.String "analyzed");
          ("alive", iset_to_json truth.Core.Ground_truth.alive);
          ("dead", iset_to_json truth.Core.Ground_truth.dead);
          ("steps", Json.Int truth.Core.Ground_truth.steps);
          ("live_blocks", Json.List live_blocks);
          ("configs", Json.List (List.map config_to_json a.Core.Analysis.configs));
        ])

let decode_payload j =
  let seed = Json.get_int j "seed" in
  let raw = fst (Smith.generate (Smith.default_config seed)) in
  match Json.get_str j "kind" with
  | "rejected" ->
    { p_seed = seed; p_outcome = Core.Analysis.Rejected (Json.get_str j "reason"); p_raw = raw }
  | "analyzed" ->
    let alive = iset_of_json (Json.get j "alive") in
    let dead = iset_of_json (Json.get j "dead") in
    let live_blocks =
      List.fold_left
        (fun acc entry ->
          match Json.to_list entry with
          | Some [ fn; label ] -> (
            match (Json.to_str fn, Json.to_int label) with
            | Some fn, Some label -> Ir.Bset.add (fn, label) acc
            | _ -> failwith "journal record: bad live_blocks entry")
          | _ -> failwith "journal record: bad live_blocks entry")
        Ir.Bset.empty
        (Json.get_list j "live_blocks")
    in
    let truth =
      {
        Core.Ground_truth.alive;
        dead;
        all = Ir.Iset.union alive dead;
        live_blocks;
        steps = Json.get_int j "steps";
      }
    in
    (* everything below is a cheap deterministic derivation of the journaled
       data: regenerate, re-instrument, rebuild the marker graph *)
    let instrumented = Core.Instrument.program raw in
    let graph =
      Core.Primary.build ~live_blocks:truth.Core.Ground_truth.live_blocks
        (Dce_ir.Lower.program instrumented)
    in
    let configs =
      List.map
        (fun cj ->
          let surviving = iset_of_json (Json.get cj "surviving") in
          let attrib =
            List.map
              (fun entry ->
                match Json.to_list entry with
                | Some [ stage; markers ] -> (
                  match (Json.to_str stage, Json.to_list markers) with
                  | Some stage, Some markers -> (stage, List.map Json.int_exn markers)
                  | _ -> failwith "journal record: bad attrib entry")
                | _ -> failwith "journal record: bad attrib entry")
              (Json.get_list cj "attrib")
          in
          let missed = Core.Differential.missed ~surviving ~dead in
          {
            Core.Analysis.cfg_compiler = Json.get_str cj "compiler";
            cfg_level = level_of_json (Json.get cj "level");
            surviving;
            missed;
            primary_missed = Core.Primary.primary_missed graph ~alive ~missed;
            cfg_trace = synthetic_trace attrib;
          })
        (Json.get_list j "configs")
    in
    {
      p_seed = seed;
      p_outcome = Core.Analysis.Analyzed { Core.Analysis.instrumented; truth; graph; configs };
      p_raw = raw;
    }
  | other -> failwith (Printf.sprintf "journal record: unknown case kind %S" other)

let codec = { Engine.encode = encode_payload; decode = decode_payload }

(* ------------------------------------------------------------------ *)
(* the campaign                                                        *)
(* ------------------------------------------------------------------ *)

let run ?journal ?fuel ?exec ?(inject_crash = []) ?deadline ?step_budget ?retries ?(chaos = [])
    ?(checked = false) ?bundle_dir ?(workers = 1) ?chunk ~jobs ~seed ~count () =
  (* --inject-crash is the legacy spelling of a crash-only chaos plan *)
  let chaos = chaos @ Chaos.crash_plan inject_crash in
  (* a corrupt-IR injection is invisible without per-pass validation *)
  let checked = checked || Chaos.has_corrupt chaos in
  let seeds = Array.of_list (Smith.corpus_seeds ~seed ~count) in
  let runner ctx i =
    let raw =
      Engine.stage ctx "generate" (fun () ->
          fst (Smith.generate (Smith.default_config seeds.(i))))
    in
    let hook = { Core.Analysis.wrap = (fun name f -> Engine.stage ctx name f) } in
    { p_seed = seeds.(i); p_outcome = Core.Analysis.run ?fuel ?exec ~checked ~hook raw; p_raw = raw }
  in
  let result =
    Fabric.run ?journal ~codec ~campaign:"hunt" ~seed ?deadline ?step_budget ?retries ~chaos
      ?chunk ~workers ~jobs ~count runner
  in
  let cases =
    Array.map
      (function
        | Engine.Done p -> Case (p.p_outcome, p.p_raw)
        | Engine.Crashed q -> Quarantined q)
      result.Engine.outcomes
  in
  (match bundle_dir with
   | None -> ()
   | Some dir ->
     List.iter
       (fun (q : Engine.quarantined) ->
         let case_seed = seeds.(q.Engine.q_case) in
         (* regenerating can itself crash (that may be exactly the fault);
            the bundle is still written, just without a source file *)
         let source =
           match Smith.generate (Smith.default_config case_seed) with
           | raw, _ -> Some (Dce_minic.Pretty.program_to_string raw)
           | exception _ -> None
         in
         ignore
           (Bundle.write ~dir (Bundle.of_quarantined ~campaign:"hunt" ~seed:case_seed ?source q)))
       result.Engine.quarantine);
  {
    c_seed = seed;
    c_count = count;
    c_jobs = jobs;
    c_seeds = seeds;
    c_cases = cases;
    c_quarantine = result.Engine.quarantine;
    c_metrics = result.Engine.metrics;
    c_resumed = result.Engine.resumed;
  }

let outcomes t =
  Array.to_list (Array.mapi (fun i c -> (i, c)) t.c_cases)
  |> List.filter_map (function
       | i, Case (o, raw) -> Some (i, (o, raw))
       | _, Quarantined _ -> None)

let stats t =
  let jobs = max 1 t.c_jobs in
  let shards = Array.make jobs [] in
  List.iter
    (fun ((i, _) as case) ->
      let w = Shard.worker_of_case ~jobs i in
      shards.(w) <- case :: shards.(w))
    (outcomes t);
  match Array.to_list shards |> List.map (fun l -> Stats.collect_indexed (List.rev l)) with
  | [] -> Stats.collect_indexed []
  | s :: rest -> List.fold_left Stats.merge s rest

let trivial_main =
  lazy
    (Core.Instrument.program
       (Dce_minic.Typecheck.check_exn
          (Dce_minic.Parser.parse_program "int main(void) { return 0; }")))

let instrumented_programs t =
  Array.map
    (function
      | Case (Core.Analysis.Analyzed a, _) -> a.Core.Analysis.instrumented
      | Case (Core.Analysis.Rejected _, raw) -> Core.Instrument.program raw
      | Quarantined _ -> Lazy.force trivial_main)
    t.c_cases

let quarantine_to_string t =
  String.concat ""
    (List.map
       (fun (q : Engine.quarantined) ->
         let verb =
           match q.Engine.q_kind with
           | Engine.Crash -> "crashed"
           | Engine.Timeout -> "timed out"
           | Engine.Ir_invalid -> "produced invalid IR"
         in
         Printf.sprintf "  case %d (seed %d): %s in stage %s%s: %s\n" q.Engine.q_case
           t.c_seeds.(q.Engine.q_case) verb q.Engine.q_stage
           (if q.Engine.q_retries > 0 then
              Printf.sprintf " (after %d retries)" q.Engine.q_retries
            else "")
           q.Engine.q_error)
       t.c_quarantine)

(* Fold a corpus campaign into the cross-run comparison report: per-case
   missed dead markers per configuration, plus each compiler's level
   inversions.  Sizes are the oracle campaigns' concern — the slot stays
   empty here, and campaign-diff simply has no size cells to compare.
   Lives in the library (not the CLI) so the serve daemon's hunt jobs and
   `dce_hunt hunt --run-root` persist byte-identical reports. *)
let report ~campaign ~seed ~count (c : t) =
  let misses = ref [] and invs = ref [] and rejected = ref [] in
  let compilers = ref [] in
  Array.iteri
    (fun i case ->
      match case with
      | Quarantined _ -> ()
      | Case (Core.Analysis.Rejected _, _) -> rejected := i :: !rejected
      | Case (Core.Analysis.Analyzed a, _) ->
        let by_compiler = Hashtbl.create 4 in
        List.iter
          (fun pc ->
            let name = pc.Core.Analysis.cfg_compiler in
            if not (List.mem name !compilers) then compilers := !compilers @ [ name ];
            Ir.Iset.iter
              (fun m ->
                misses :=
                  {
                    Run_store.m_case = i;
                    m_compiler = name;
                    m_level = pc.Core.Analysis.cfg_level;
                    m_marker = m;
                  }
                  :: !misses)
              pc.Core.Analysis.missed;
            Hashtbl.replace by_compiler name
              ((pc.Core.Analysis.cfg_level, pc.Core.Analysis.missed)
              :: Option.value ~default:[] (Hashtbl.find_opt by_compiler name)))
          a.Core.Analysis.configs;
        let dead = a.Core.Analysis.truth.Core.Ground_truth.dead in
        Hashtbl.iter
          (fun name per_level ->
            List.iter
              (fun (iv : Core.Differential.inversion) ->
                invs :=
                  {
                    Run_store.v_case = i;
                    v_compiler = name;
                    v_marker = iv.Core.Differential.iv_marker;
                    v_low = iv.Core.Differential.iv_low;
                    v_high = iv.Core.Differential.iv_high;
                  }
                  :: !invs)
              (Core.Differential.inversions ~dead per_level))
          by_compiler)
    c.c_cases;
  Run_store.sort_report
    {
      Run_store.r_campaign = campaign;
      r_seed = seed;
      r_count = count;
      r_compilers = !compilers;
      r_misses = !misses;
      r_sizes = [];
      r_inversions = !invs;
      r_rejected = !rejected;
      r_quarantined = List.map (fun q -> q.Engine.q_case) c.c_quarantine;
    }

(* The rendered human report persisted as report.txt — one definition so
   the CLI and the serve daemon agree byte for byte. *)
let report_text (c : t) =
  let stats = stats c in
  String.concat ""
    [
      Stats.prevalence stats; "\n";
      "Table 1 (% dead blocks missed):\n"; Stats.table1 stats;
      "Table 2 (% dead blocks primary missed):\n"; Stats.table2 stats;
      Stats.differential_summary stats;
    ]

(* ------------------------------------------------------------------ *)
(* §4.4 value-check campaign                                           *)
(* ------------------------------------------------------------------ *)

type value_case = {
  vc_seed : int;
  vc_checks : int;
  vc_kept : (string * C.Level.t * int) list;
}

let encode_value vc =
  Json.Obj
    [
      ("seed", Json.Int vc.vc_seed);
      ("checks", Json.Int vc.vc_checks);
      ( "kept",
        Json.List
          (List.map
             (fun (comp, level, n) ->
               Json.List [ Json.String comp; level_to_json level; Json.Int n ])
             vc.vc_kept) );
    ]

let decode_value j =
  {
    vc_seed = Json.get_int j "seed";
    vc_checks = Json.get_int j "checks";
    vc_kept =
      List.map
        (fun entry ->
          match Json.to_list entry with
          | Some [ comp; level; n ] -> (
            match (Json.to_str comp, Json.to_int n) with
            | Some comp, Some n -> (comp, level_of_json level, n)
            | _ -> failwith "journal record: bad kept entry")
          | _ -> failwith "journal record: bad kept entry")
        (Json.get_list j "kept");
  }

let value_codec = { Engine.encode = encode_value; decode = decode_value }

type value_campaign = {
  v_cases : value_case Engine.case_outcome array;
  v_quarantine : Engine.quarantined list;
  v_metrics : Metrics.summary;
  v_seeds : int array;
  v_resumed : int;
}

let run_value ?journal ?exec ?deadline ?step_budget ?retries ?(workers = 1) ?chunk ~jobs ~seed
    ~count () =
  let seeds = Array.of_list (Smith.corpus_seeds ~seed ~count) in
  let runner ctx i =
    let case_seed = seeds.(i) in
    let raw =
      Engine.stage ctx "generate" (fun () -> fst (Smith.generate (Smith.default_config case_seed)))
    in
    let none = { vc_seed = case_seed; vc_checks = 0; vc_kept = [] } in
    match
      Engine.stage ctx "value-instrument" (fun () -> Core.Value_instrument.instrument ?exec raw)
    with
    | None -> none
    | Some (_, st) when st.Core.Value_instrument.checks_planted = 0 -> none
    | Some (vi, _) -> (
      match Engine.stage ctx "ground-truth" (fun () -> Core.Ground_truth.compute ?exec vi) with
      | Core.Ground_truth.Rejected _ -> none
      | Core.Ground_truth.Valid truth ->
        let kept =
          List.concat_map
            (fun compiler ->
              List.map
                (fun level ->
                  let surv =
                    Engine.stage ctx "differential" (fun () ->
                        C.Compiler.surviving_markers compiler level vi)
                  in
                  (compiler.C.Compiler.name, level, List.length surv))
                C.Level.all)
            [ C.Gcc_sim.compiler; C.Llvm_sim.compiler ]
        in
        {
          vc_seed = case_seed;
          vc_checks = Ir.Iset.cardinal truth.Core.Ground_truth.all;
          vc_kept = kept;
        })
  in
  let result =
    Fabric.run ?journal ~codec:value_codec ~campaign:"value-hunt" ~seed ?deadline ?step_budget
      ?retries ?chunk ~workers ~jobs ~count runner
  in
  {
    v_cases = result.Engine.outcomes;
    v_quarantine = result.Engine.quarantine;
    v_metrics = result.Engine.metrics;
    v_seeds = seeds;
    v_resumed = result.Engine.resumed;
  }

let value_table v =
  let total = ref 0 in
  let kept : (string * C.Level.t, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (function
      | Engine.Done vc ->
        total := !total + vc.vc_checks;
        List.iter
          (fun (comp, level, n) ->
            Hashtbl.replace kept (comp, level)
              (n + Option.value ~default:0 (Hashtbl.find_opt kept (comp, level))))
          vc.vc_kept
      | Engine.Crashed _ -> ())
    v.v_cases;
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d value checks planted over %d programs (all dead by construction)\n"
       !total (Array.length v.v_cases));
  Buffer.add_string buf
    (Dce_report.Tables.render
       ~header:[ "Level"; "gcc-sim"; "llvm-sim" ]
       (List.map
          (fun level ->
            let cell comp =
              Dce_report.Tables.pct
                (Option.value ~default:0 (Hashtbl.find_opt kept (comp, level)))
                !total
            in
            [ C.Level.to_string level; cell "gcc-sim"; cell "llvm-sim" ])
          C.Level.all));
  Buffer.contents buf
