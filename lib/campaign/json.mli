(** A minimal JSON value type, printer, and parser for the campaign journal.

    Deliberately tiny: the journal only needs objects, arrays, strings,
    booleans, null, and integers (floats are emitted for metrics but parsed
    back as [Float]).  One journal record is one value serialized on one line
    ([to_string] never emits newlines), which is what makes the JSONL journal
    truncation-tolerant: a partial trailing line simply fails to parse. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Single-line serialization with full string escaping.  Non-finite floats
    (nan, ±infinity) serialize as [null] — JSON cannot represent them, and a
    bare [nan] token would make the line unparseable on resume. *)

val of_string : string -> (t, string) result
(** Parse one value; [Error] describes the first syntax error.  Trailing
    garbage after the value is an error. *)

(** {1 Accessors} — all return [None] on shape mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option

(** {1 Exception-raising accessors} for decoding trusted journal lines;
    raise [Failure] with a field-path message on mismatch. *)

val get : t -> string -> t
val get_int : t -> string -> int
val get_str : t -> string -> string
val get_list : t -> string -> t list
val int_exn : t -> int
