module C = Dce_compiler
open Run_store

type size_delta = {
  sd_case : int;
  sd_compiler : string;
  sd_level : C.Level.t;
  sd_a : int;
  sd_b : int;
}

type verdict = {
  d_run_a : string;
  d_run_b : string;
  d_comparable : bool;
  d_new_misses : miss list;
  d_fixed_misses : miss list;
  d_new_inversions : inv_row list;
  d_fixed_inversions : inv_row list;
  d_size_deltas : size_delta list;
  d_new_rejected : int list;
  d_new_quarantined : int list;
}

let diff a b =
  let a = sort_report a and b = sort_report b in
  let not_in xs x = not (List.mem x xs) in
  let sizes_b =
    List.map (fun z -> ((z.z_case, z.z_compiler, z.z_level), z.z_size)) b.r_sizes
  in
  let size_deltas =
    List.filter_map
      (fun z ->
        match List.assoc_opt (z.z_case, z.z_compiler, z.z_level) sizes_b with
        | Some sb when sb <> z.z_size ->
          Some
            {
              sd_case = z.z_case;
              sd_compiler = z.z_compiler;
              sd_level = z.z_level;
              sd_a = z.z_size;
              sd_b = sb;
            }
        | _ -> None)
      a.r_sizes
  in
  {
    d_run_a = a.r_campaign;
    d_run_b = b.r_campaign;
    d_comparable = a.r_seed = b.r_seed && a.r_count = b.r_count;
    d_new_misses = List.filter (not_in a.r_misses) b.r_misses;
    d_fixed_misses = List.filter (not_in b.r_misses) a.r_misses;
    d_new_inversions = List.filter (not_in a.r_inversions) b.r_inversions;
    d_fixed_inversions = List.filter (not_in b.r_inversions) a.r_inversions;
    d_size_deltas = size_deltas;
    d_new_rejected = List.filter (not_in a.r_rejected) b.r_rejected;
    d_new_quarantined = List.filter (not_in a.r_quarantined) b.r_quarantined;
  }

(* A size increase is a regression only at -Os — size is the contract there;
   at other levels a (deliberate) threshold bump may legitimately trade size
   for elimination strength.  New misses and new inversions are regressions
   at every level, as is any newly quarantined case. *)
let size_regressions v =
  List.filter (fun d -> d.sd_level = C.Level.Os && d.sd_b > d.sd_a) v.d_size_deltas

let has_regressions v =
  (not v.d_comparable)
  || v.d_new_misses <> []
  || v.d_new_inversions <> []
  || size_regressions v <> []
  || v.d_new_quarantined <> []

let is_empty v =
  v.d_new_misses = [] && v.d_fixed_misses = []
  && v.d_new_inversions = [] && v.d_fixed_inversions = []
  && v.d_size_deltas = [] && v.d_new_rejected = [] && v.d_new_quarantined = []

(* ---------------- machine-readable verdict ---------------- *)

let miss_json m =
  Json.Obj
    [
      ("case", Json.Int m.m_case);
      ("compiler", Json.String m.m_compiler);
      ("level", Json.String (C.Level.to_string m.m_level));
      ("marker", Json.Int m.m_marker);
    ]

let inv_json v =
  Json.Obj
    [
      ("case", Json.Int v.v_case);
      ("compiler", Json.String v.v_compiler);
      ("marker", Json.Int v.v_marker);
      ("low", Json.String (C.Level.to_string v.v_low));
      ("high", Json.String (C.Level.to_string v.v_high));
    ]

let size_delta_json d =
  Json.Obj
    [
      ("case", Json.Int d.sd_case);
      ("compiler", Json.String d.sd_compiler);
      ("level", Json.String (C.Level.to_string d.sd_level));
      ("size_a", Json.Int d.sd_a);
      ("size_b", Json.Int d.sd_b);
    ]

let to_json ?(stage_deltas = []) v =
  let base =
    [
      ("run_a", Json.String v.d_run_a);
      ("run_b", Json.String v.d_run_b);
      ("comparable", Json.Bool v.d_comparable);
      ("clean", Json.Bool (not (has_regressions v)));
      ("identical", Json.Bool (is_empty v));
      ("new_misses", Json.List (List.map miss_json v.d_new_misses));
      ("fixed_misses", Json.List (List.map miss_json v.d_fixed_misses));
      ("new_inversions", Json.List (List.map inv_json v.d_new_inversions));
      ("fixed_inversions", Json.List (List.map inv_json v.d_fixed_inversions));
      ("size_deltas", Json.List (List.map size_delta_json v.d_size_deltas));
      ( "size_regressions",
        Json.List (List.map size_delta_json (size_regressions v)) );
      ("new_rejected", Json.List (List.map (fun i -> Json.Int i) v.d_new_rejected));
      ("new_quarantined", Json.List (List.map (fun i -> Json.Int i) v.d_new_quarantined));
    ]
  in
  let timings =
    match stage_deltas with
    | [] -> []
    | ds ->
      [
        ( "stage_deltas",
          Json.List
            (List.map
               (fun (stage, ta, tb) ->
                 Json.Obj
                   [
                     ("stage", Json.String stage);
                     ("total_a", Json.Float ta);
                     ("total_b", Json.Float tb);
                   ])
               ds) );
      ]
  in
  Json.Obj (base @ timings)

(* ---------------- timing deltas ---------------- *)

(* Pair two runs' per-stage totals by stage name (union of both, run-A order
   first).  Purely informational: never part of the regression verdict. *)
let stage_deltas totals_a totals_b =
  let stages =
    List.fold_left
      (fun acc (s, _) -> if List.mem s acc then acc else acc @ [ s ])
      (List.map fst totals_a) totals_b
  in
  List.map
    (fun s ->
      ( s,
        Option.value ~default:0. (List.assoc_opt s totals_a),
        Option.value ~default:0. (List.assoc_opt s totals_b) ))
    stages

(* ---------------- rendered tables ---------------- *)

let render ?(stage_deltas = []) v =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "campaign-diff: %s (A) vs %s (B)\n" v.d_run_a v.d_run_b;
  if not v.d_comparable then
    add "  WARNING: runs cover different corpora (seed/count mismatch) — not comparable\n";
  let miss_table label ms =
    if ms <> [] then begin
      add "%s (%d):\n" label (List.length ms);
      List.iter
        (fun m ->
          add "  case %-4d %-24s %-4s marker %d\n" m.m_case m.m_compiler
            (C.Level.to_string m.m_level) m.m_marker)
        ms
    end
  in
  let inv_table label vs =
    if vs <> [] then begin
      add "%s (%d):\n" label (List.length vs);
      List.iter
        (fun iv ->
          add "  case %-4d %-24s marker %-4d dead at %s, kept at %s\n" iv.v_case iv.v_compiler
            iv.v_marker (C.Level.to_string iv.v_low) (C.Level.to_string iv.v_high))
        vs
    end
  in
  miss_table "new misses (in B, not in A)" v.d_new_misses;
  miss_table "fixed misses (in A, not in B)" v.d_fixed_misses;
  inv_table "new level inversions" v.d_new_inversions;
  inv_table "fixed level inversions" v.d_fixed_inversions;
  if v.d_size_deltas <> [] then begin
    add "size deltas (%d):\n" (List.length v.d_size_deltas);
    List.iter
      (fun d ->
        add "  case %-4d %-24s %-4s %d -> %d (%+d)%s\n" d.sd_case d.sd_compiler
          (C.Level.to_string d.sd_level) d.sd_a d.sd_b (d.sd_b - d.sd_a)
          (if d.sd_level = C.Level.Os && d.sd_b > d.sd_a then "  REGRESSION" else ""))
      v.d_size_deltas
  end;
  if v.d_new_rejected <> [] then
    add "newly rejected cases: %s\n"
      (String.concat "," (List.map string_of_int v.d_new_rejected));
  if v.d_new_quarantined <> [] then
    add "newly quarantined cases: %s\n"
      (String.concat "," (List.map string_of_int v.d_new_quarantined));
  if stage_deltas <> [] then begin
    add "%-20s %10s %10s %10s\n" "stage timing" "A total" "B total" "delta";
    List.iter
      (fun (stage, ta, tb) ->
        add "%-20s %9.3fs %9.3fs %+9.3fs\n" stage ta tb (tb -. ta))
      stage_deltas
  end;
  if is_empty v then add "runs are identical: empty diff\n"
  else
    add "verdict: %s\n"
      (if has_regressions v then "REGRESSIONS (see above)" else "clean (no regressions)");
  Buffer.contents buf
