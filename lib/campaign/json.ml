type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec print buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    (* a plain float format that round-trips through our parser; the journal
       only stores metric seconds, where 17 significant digits suffice.
       JSON has no encoding for non-finite floats ("nan"/"inf" would poison
       the journal: every later resume would reject the line), so they
       serialize as null. *)
    if not (Float.is_finite f) then Buffer.add_string buf "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        print buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\":";
        print buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Syntax of string

let parse_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Syntax (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail "invalid literal"
  in
  let parse_str () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char buf e;
          go ()
        | 'n' ->
          Buffer.add_char buf '\n';
          go ()
        | 'r' ->
          Buffer.add_char buf '\r';
          go ()
        | 't' ->
          Buffer.add_char buf '\t';
          go ()
        | 'b' ->
          Buffer.add_char buf '\b';
          go ()
        | 'f' ->
          Buffer.add_char buf '\012';
          go ()
        | 'u' ->
          if !pos + 4 > n then fail "bad \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
           | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
           | Some code ->
             (* non-ASCII escapes never appear in our own journals; keep a
                lossless-enough UTF-8 encoding for foreign ones *)
             if code < 0x800 then begin
               Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end;
             ()
           | None -> fail "bad \\u escape");
          go ()
        | _ -> fail "unknown escape")
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_str ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_str () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let of_string s =
  match parse_string s with
  | v -> Ok v
  | exception Syntax msg -> Error msg

(* ------------------------------------------------------------------ *)
(* accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None

let get v key =
  match member key v with
  | Some x -> x
  | None -> failwith (Printf.sprintf "journal record: missing field %S" key)

let int_exn = function
  | Int i -> i
  | v -> failwith (Printf.sprintf "journal record: expected int, got %s" (to_string v))

let get_int v key = int_exn (get v key)

let get_str v key =
  match get v key with
  | String s -> s
  | x -> failwith (Printf.sprintf "journal record: field %S is not a string: %s" key (to_string x))

let get_list v key =
  match get v key with
  | List l -> l
  | x -> failwith (Printf.sprintf "journal record: field %S is not a list: %s" key (to_string x))
