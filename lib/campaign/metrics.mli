(** Campaign metrics: per-stage wall-time samples, throughput, and the
    analysis-cache hit rate aggregated across workers.

    Each worker records [(stage, seconds)] samples into its own [t] (no
    cross-domain sharing); the engine {!merge}s them after the join and
    {!summarize}s the union. *)

type t
(** A mutable per-worker sample accumulator. *)

val create : unit -> t
val record : t -> string -> float -> unit
val merge : t -> t -> t
(** Functional union of two accumulators' samples (inputs unchanged). *)

type stage_summary = {
  ss_stage : string;
  ss_samples : int;
  ss_total : float;   (** summed wall seconds across all samples *)
  ss_p50 : float;
  ss_p90 : float;
  ss_p99 : float;
}

type summary = {
  cases : int;            (** cases newly executed (journal replays excluded) *)
  wall : float;           (** campaign wall-clock seconds *)
  throughput : float;     (** cases / wall, 0 when wall is 0 *)
  stages : stage_summary list;  (** by summed time, largest first *)
  cache : Dce_compiler.Passmgr.counters;
      (** pass-manager analysis-cache counter deltas over the campaign,
          aggregated across every worker domain *)
  journal_skipped : int;
      (** journal records ignored on resume: unreadable lines, unknown
          record kinds (a journal written by a different build), or indices
          outside this campaign — each skipped case simply re-executes *)
}

val summarize :
  ?journal_skipped:int ->
  cases:int ->
  wall:float ->
  cache:Dce_compiler.Passmgr.counters ->
  t ->
  summary

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0,1]: nearest-rank on a sorted array;
    0 on the empty array.  Exposed for tests. *)

val to_string : summary -> string
(** Human-readable block: throughput line, cache hit-rate line, and one row
    per stage with sample count, total, and p50/p90/p99. *)
