(** Campaign metrics: per-stage wall-time samples, throughput, supervision
    counters, and the analysis-cache hit rate aggregated across workers.

    Each worker records [(stage, seconds)] samples — plus retry events — into
    its own [t] (no cross-domain sharing); the engine {!merge}s them after
    the join and {!summarize}s the union. *)

type t
(** A mutable per-worker sample accumulator. *)

val create : unit -> t
val record : t -> string -> float -> unit

val retried : t -> unit
(** Count one retry attempt of a transient-classified fault. *)

val recovered : t -> unit
(** Count one case that succeeded after at least one retry. *)

val merge : t -> t -> t
(** Functional union of two accumulators' samples and counters (inputs
    unchanged).  Associative and — up to sample order, which {!summarize}
    erases — commutative, so per-worker-process accumulators merge to the
    same summary in any order (property-tested). *)

val to_json : t -> Json.t
(** Wire form of an accumulator, for shipping across a process boundary
    (the fabric's worker farewell message). *)

val of_json : Json.t -> t
(** Inverse of {!to_json}; raises [Failure] on a malformed record.  The
    round trip may reorder samples, which is invisible after
    {!summarize}. *)

type stage_summary = {
  ss_stage : string;
  ss_samples : int;
  ss_total : float;   (** summed wall seconds across all samples *)
  ss_p50 : float;
  ss_p90 : float;
  ss_p99 : float;
}

(** Multi-process campaign-fabric counters, present when the campaign ran
    through {!Fabric.run} with more than one worker process. *)
type fabric = {
  f_workers : int;  (** worker processes forked *)
  f_jobs : int;     (** domains per worker process *)
  f_chunks : int;   (** case chunks dispatched by the coordinator *)
  f_cases_per_worker : int list;
      (** cases completed per worker slot, in slot order — the work-stealing
          balance at a glance *)
  f_reassigned : int;  (** cases re-queued after their worker died *)
  f_deaths : int;      (** worker processes that died mid-campaign *)
  f_respawns : int;    (** replacement workers forked *)
}

type summary = {
  cases : int;            (** cases newly executed (journal replays excluded) *)
  wall : float;           (** campaign wall-clock seconds *)
  throughput : float;     (** cases / wall, 0 when wall is 0 *)
  stages : stage_summary list;  (** by summed time, largest first *)
  cache : Dce_compiler.Passmgr.counters;
      (** pass-manager analysis-cache counter deltas over the campaign,
          aggregated across every worker domain *)
  journal_skipped : int;
      (** journal records ignored on resume: unreadable lines, unknown
          record kinds (a journal written by a different build), or indices
          outside this campaign — each skipped case simply re-executes *)
  crashed : int;     (** quarantined with a plain exception *)
  timeouts : int;    (** quarantined by the deadline / step budget *)
  ir_invalid : int;  (** quarantined by checked-mode IR validation *)
  retries : int;     (** transient-fault retry attempts across all cases *)
  recovered : int;   (** cases that succeeded after at least one retry *)
  chaos_fired : int; (** chaos faults actually injected during the run *)
  fabric : fabric option;
      (** multi-process execution counters; [None] outside the fabric *)
}

val summarize :
  ?journal_skipped:int ->
  ?crashed:int ->
  ?timeouts:int ->
  ?ir_invalid:int ->
  ?chaos_fired:int ->
  ?fabric:fabric ->
  cases:int ->
  wall:float ->
  cache:Dce_compiler.Passmgr.counters ->
  t ->
  summary
(** The retry counters come from [t] itself; the fault-kind and chaos counts
    are passed in by the engine (computed from the quarantine bucket and the
    chaos fired-counter delta). *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0,1]: nearest-rank on a sorted array;
    0 on the empty array.  Exposed for tests. *)

val summary_to_json : summary -> Json.t
(** Artifact form of a summary (a run directory's [metrics.json]): counters,
    cache hit rate, per-stage rows with summed totals and percentiles, and
    the fabric block when present.  {!Run_diff} reads the per-stage totals
    back for its timing-delta table. *)

val to_string : summary -> string
(** Human-readable block: throughput line, cache hit-rate line, a
    supervision line when any fault/retry/chaos counter is nonzero, and one
    row per stage with sample count, total, and p50/p90/p99. *)
