type t = {
  b_case : int;
  b_seed : int;
  b_campaign : string;
  b_kind : Engine.fault_kind;
  b_stage : string;
  b_error : string;
  b_backtrace : string;
  b_retries : int;
  b_source : string option;
  b_minimized : string option;
}

let of_quarantined ~campaign ~seed ?source (q : Engine.quarantined) =
  {
    b_case = q.Engine.q_case;
    b_seed = seed;
    b_campaign = campaign;
    b_kind = q.Engine.q_kind;
    b_stage = q.Engine.q_stage;
    b_error = q.Engine.q_error;
    b_backtrace = q.Engine.q_backtrace;
    b_retries = q.Engine.q_retries;
    b_source = source;
    b_minimized = None;
  }

let case_dir ~dir case = Filename.concat dir (Printf.sprintf "case-%04d" case)

let meta_to_json t =
  Json.Obj
    [
      ("bundle", Json.String "dce-crash-bundle");
      ("version", Json.Int 1);
      ("case", Json.Int t.b_case);
      ("seed", Json.Int t.b_seed);
      ("campaign", Json.String t.b_campaign);
      ("kind", Json.String (Engine.fault_kind_name t.b_kind));
      ("stage", Json.String t.b_stage);
      ("error", Json.String t.b_error);
      ("backtrace", Json.String t.b_backtrace);
      ("retries", Json.Int t.b_retries);
    ]

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write ~dir t =
  let cdir = case_dir ~dir t.b_case in
  Dce_support.Fsx.mkdir_p cdir;
  write_file (Filename.concat cdir "meta.json") (Json.to_string (meta_to_json t) ^ "\n");
  (match t.b_source with
   | Some src -> write_file (Filename.concat cdir "repro.c") src
   | None -> ());
  (match t.b_minimized with
   | Some src -> write_file (Filename.concat cdir "repro-min.c") src
   | None -> ());
  cdir

let kind_of_name = function
  | "timeout" -> Engine.Timeout
  | "ir-invalid" -> Engine.Ir_invalid
  | _ -> Engine.Crash

let load cdir =
  let meta = Filename.concat cdir "meta.json" in
  if not (Sys.file_exists meta) then None
  else
    match Json.of_string (read_file meta) with
    | Error _ -> None
    | Ok j -> (
      match Json.member "bundle" j with
      | Some (Json.String "dce-crash-bundle") ->
        let opt_file name =
          let p = Filename.concat cdir name in
          if Sys.file_exists p then Some (read_file p) else None
        in
        (try
           Some
             {
               b_case = Json.get_int j "case";
               b_seed = Json.get_int j "seed";
               b_campaign = Json.get_str j "campaign";
               b_kind = kind_of_name (Json.get_str j "kind");
               b_stage = Json.get_str j "stage";
               b_error = Json.get_str j "error";
               b_backtrace = Json.get_str j "backtrace";
               b_retries = Json.get_int j "retries";
               b_source = opt_file "repro.c";
               b_minimized = opt_file "repro-min.c";
             }
         with _ -> None)
      | _ -> None)

let to_string t =
  Printf.sprintf
    "case %d (seed %d, campaign %s): %s in stage %s after %d retr%s\n  %s%s" t.b_case t.b_seed
    t.b_campaign
    (Engine.fault_kind_name t.b_kind)
    t.b_stage t.b_retries
    (if t.b_retries = 1 then "y" else "ies")
    t.b_error
    (match t.b_minimized with Some _ -> "\n  (minimized repro available)" | None -> "")
