let check ~count ~jobs =
  if jobs < 1 then invalid_arg "Shard: jobs must be >= 1";
  if count < 0 then invalid_arg "Shard: count must be >= 0"

let worker_of_case ~jobs i =
  if jobs < 1 then invalid_arg "Shard: jobs must be >= 1";
  i mod jobs

let cases_of ~count ~jobs w =
  check ~count ~jobs;
  if w < 0 || w >= jobs then invalid_arg "Shard: worker index out of range";
  let rec go i acc = if i >= count then List.rev acc else go (i + jobs) (i :: acc) in
  go w []

let plan ~count ~jobs =
  check ~count ~jobs;
  Array.init jobs (fun w -> cases_of ~count ~jobs w)
