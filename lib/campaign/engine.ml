module Passmgr = Dce_compiler.Passmgr

type ctx = {
  c_worker : int;
  mutable c_stage : string;
  c_metrics : Metrics.t;
}

let worker ctx = ctx.c_worker

let stage ctx name f =
  let prev = ctx.c_stage in
  ctx.c_stage <- name;
  let t0 = Unix.gettimeofday () in
  match f () with
  | v ->
    Metrics.record ctx.c_metrics name (Unix.gettimeofday () -. t0);
    (* deliberately not restored on the exception path: the quarantine reads
       the innermost stage that was active at the throw point *)
    ctx.c_stage <- prev;
    v

type quarantined = {
  q_case : int;
  q_stage : string;
  q_error : string;
}

type 'a case_outcome =
  | Done of 'a
  | Crashed of quarantined

type 'a codec = {
  encode : 'a -> Json.t;
  decode : Json.t -> 'a;
}

type 'a result = {
  outcomes : 'a case_outcome array;
  quarantine : quarantined list;
  metrics : Metrics.summary;
  resumed : int;
  skipped : int;
}

(* ------------------------------------------------------------------ *)
(* journal record codec                                                *)
(* ------------------------------------------------------------------ *)

let case_to_json codec i = function
  | Done v ->
    Json.Obj [ ("case", Json.Int i); ("status", Json.String "done"); ("data", codec.encode v) ]
  | Crashed q ->
    Json.Obj
      [
        ("case", Json.Int i);
        ("status", Json.String "crashed");
        ("stage", Json.String q.q_stage);
        ("error", Json.String q.q_error);
      ]

let case_of_json codec j =
  let i = Json.get_int j "case" in
  match Json.get_str j "status" with
  | "done" -> Some (i, Done (codec.decode (Json.get j "data")))
  | "crashed" ->
    Some
      ( i,
        Crashed
          { q_case = i; q_stage = Json.get_str j "stage"; q_error = Json.get_str j "error" } )
  | _ -> None

(* ------------------------------------------------------------------ *)
(* cache-counter deltas                                                *)
(* ------------------------------------------------------------------ *)

let counters_delta (a : Passmgr.counters) (b : Passmgr.counters) : Passmgr.counters =
  {
    meminfo_hits = b.meminfo_hits - a.meminfo_hits;
    meminfo_misses = b.meminfo_misses - a.meminfo_misses;
    cfg_hits = b.cfg_hits - a.cfg_hits;
    cfg_misses = b.cfg_misses - a.cfg_misses;
    dom_hits = b.dom_hits - a.dom_hits;
    dom_misses = b.dom_misses - a.dom_misses;
  }

(* ------------------------------------------------------------------ *)
(* the pool                                                            *)
(* ------------------------------------------------------------------ *)

let run (type a) ?journal ?(codec : a codec option) ?(campaign = "campaign") ?(seed = 0) ~jobs
    ~count (runner : ctx -> int -> a) : a result =
  if jobs < 1 then invalid_arg "Engine.run: jobs must be >= 1";
  if count < 0 then invalid_arg "Engine.run: count must be >= 0";
  if journal <> None && codec = None then
    invalid_arg "Engine.run: journaling requires a codec";
  let t0 = Unix.gettimeofday () in
  let cache0 = Passmgr.counters () in
  (* slot None = still to run; journal replay fills slots up front *)
  let outcomes : a case_outcome option array = Array.make count None in
  let resumed = ref 0 in
  (* records ignored during replay: unreadable lines, unknown record kinds
     (a journal written by a different build), out-of-range case indices.
     Each such case re-executes — skipping is forward-compatibility, never
     data loss — but the count is surfaced so the user knows the journal and
     the binary disagree. *)
  let skipped = ref 0 in
  let jnl =
    match journal with
    | None -> None
    | Some path ->
      let codec = Option.get codec in
      let header = { Journal.h_campaign = campaign; h_seed = seed; h_count = count } in
      (match Journal.load ~path with
       | Some (h, cases, dropped) when h = header ->
         skipped := dropped;
         List.iter
           (fun record ->
             match case_of_json codec record with
             | Some (i, outcome) when i >= 0 && i < count ->
               if outcomes.(i) = None then incr resumed;
               outcomes.(i) <- Some outcome
             | Some _ | None -> incr skipped
             | exception _ -> incr skipped)
           cases
       | Some _ | None -> ());
      (* open_append validates the header and rewrites the valid prefix *)
      Some (Journal.open_append ~path header)
  in
  let record_completion i outcome =
    (match (jnl, codec) with
     | Some j, Some codec -> Journal.append j (case_to_json codec i outcome)
     | _ -> ());
    outcomes.(i) <- Some outcome
  in
  let run_case ctx i =
    ctx.c_stage <- "setup";
    let outcome =
      match stage ctx "case" (fun () -> runner ctx i) with
      | v -> Done v
      | exception e ->
        Crashed { q_case = i; q_stage = ctx.c_stage; q_error = Printexc.to_string e }
    in
    record_completion i outcome
  in
  let worker_body w =
    let ctx = { c_worker = w; c_stage = "setup"; c_metrics = Metrics.create () } in
    List.iter
      (fun i -> if outcomes.(i) = None then run_case ctx i)
      (Shard.cases_of ~count ~jobs w);
    ctx.c_metrics
  in
  let metrics =
    if jobs = 1 then worker_body 0
    else
      (* workers never share a case slot (shards are disjoint), and
         Domain.join publishes their writes back to this domain *)
      Array.to_list (Array.init jobs (fun w -> Domain.spawn (fun () -> worker_body w)))
      |> List.map Domain.join
      |> List.fold_left Metrics.merge (Metrics.create ())
  in
  (match jnl with Some j -> Journal.close j | None -> ());
  let outcomes =
    Array.mapi
      (fun i slot ->
        match slot with
        | Some o -> o
        | None -> Crashed { q_case = i; q_stage = "engine"; q_error = "case never completed" })
      outcomes
  in
  let quarantine =
    Array.to_list outcomes |> List.filter_map (function Crashed q -> Some q | Done _ -> None)
  in
  let wall = Unix.gettimeofday () -. t0 in
  let cache = counters_delta cache0 (Passmgr.counters ()) in
  let executed = count - !resumed in
  {
    outcomes;
    quarantine;
    metrics = Metrics.summarize ~journal_skipped:!skipped ~cases:executed ~wall ~cache metrics;
    resumed = !resumed;
    skipped = !skipped;
  }
