module Passmgr = Dce_compiler.Passmgr
module Guard = Dce_support.Guard

type ctx = {
  c_worker : int;
  mutable c_stage : string;
  c_metrics : Metrics.t;
}

let worker ctx = ctx.c_worker
let make_ctx ~worker = { c_worker = worker; c_stage = "setup"; c_metrics = Metrics.create () }
let ctx_metrics ctx = ctx.c_metrics

(* OCaml's Unix.fork refuses to run once any domain has ever been created in
   the process, so the fabric must fork its workers first.  This flag lets it
   fail with a diagnosis instead of the runtime's bare Failure. *)
let domains_spawned = ref false
let domains_ever_spawned () = !domains_spawned

let stage ctx name f =
  let prev = ctx.c_stage in
  ctx.c_stage <- name;
  (* supervision poll + chaos injection point: both run with the stage
     already recorded as current, so a budget trip or injected fault here is
     attributed to [name], not to the enclosing stage *)
  Guard.poll ~site:name;
  Chaos.fire name;
  let t0 = Unix.gettimeofday () in
  match f () with
  | v ->
    Metrics.record ctx.c_metrics name (Unix.gettimeofday () -. t0);
    (* deliberately not restored on the exception path: the quarantine reads
       the innermost stage that was active at the throw point *)
    ctx.c_stage <- prev;
    v

type fault_kind = Crash | Timeout | Ir_invalid

let fault_kind_name = function
  | Crash -> "crash"
  | Timeout -> "timeout"
  | Ir_invalid -> "ir-invalid"

let fault_kind_of_name = function
  | "timeout" -> Timeout
  | "ir-invalid" -> Ir_invalid
  | _ -> Crash

let classify = function
  | Guard.Budget_exceeded _ -> Timeout
  | Passmgr.Ir_invalid _ -> Ir_invalid
  | _ -> Crash

type quarantined = {
  q_case : int;
  q_stage : string;
  q_error : string;
  q_kind : fault_kind;
  q_backtrace : string;
  q_retries : int;
}

type 'a case_outcome =
  | Done of 'a
  | Crashed of quarantined

type 'a codec = {
  encode : 'a -> Json.t;
  decode : Json.t -> 'a;
}

type 'a result = {
  outcomes : 'a case_outcome array;
  quarantine : quarantined list;
  metrics : Metrics.summary;
  resumed : int;
  skipped : int;
}

(* ------------------------------------------------------------------ *)
(* journal record codec                                                *)
(* ------------------------------------------------------------------ *)

let case_to_json codec i = function
  | Done v ->
    Json.Obj [ ("case", Json.Int i); ("status", Json.String "done"); ("data", codec.encode v) ]
  | Crashed q ->
    Json.Obj
      [
        ("case", Json.Int i);
        ("status", Json.String "crashed");
        ("stage", Json.String q.q_stage);
        ("error", Json.String q.q_error);
        ("kind", Json.String (fault_kind_name q.q_kind));
        ("backtrace", Json.String q.q_backtrace);
        ("retries", Json.Int q.q_retries);
      ]

(* member lookups with defaults: "crashed" records written by a pre-
   supervision build lack kind/backtrace/retries, and must still resume *)
let member_str j key default =
  match Json.member key j with Some (Json.String s) -> s | _ -> default

let member_int j key default =
  match Json.member key j with Some (Json.Int n) -> n | _ -> default

let case_of_json codec j =
  let i = Json.get_int j "case" in
  match Json.get_str j "status" with
  | "done" -> Some (i, Done (codec.decode (Json.get j "data")))
  | "crashed" ->
    Some
      ( i,
        Crashed
          {
            q_case = i;
            q_stage = Json.get_str j "stage";
            q_error = Json.get_str j "error";
            q_kind = fault_kind_of_name (member_str j "kind" "crash");
            q_backtrace = member_str j "backtrace" "";
            q_retries = member_int j "retries" 0;
          } )
  | _ -> None

(* ------------------------------------------------------------------ *)
(* journal replay and the per-case attempt machinery — shared verbatim *)
(* by the in-process pool below and the multi-process Fabric, so both  *)
(* produce identical outcomes and identical journal records            *)
(* ------------------------------------------------------------------ *)

let campaign_name ~campaign ~(chaos : Chaos.plan) =
  (* the fault plan is part of the campaign identity: resuming a chaos run
     under a different plan (or none) would replay cases whose recorded
     outcomes the new plan contradicts *)
  if chaos = [] then campaign else campaign ^ "+chaos[" ^ Chaos.signature chaos ^ "]"

(* records ignored during replay: unreadable lines, unknown record kinds (a
   journal written by a different build), out-of-range case indices.  Each
   such case re-executes — skipping is forward-compatibility, never data
   loss — but the count is surfaced so the user knows the journal and the
   binary disagree. *)
let replay codec ~count (outcomes : 'a case_outcome option array) records =
  let resumed = ref 0 and skipped = ref 0 in
  List.iter
    (fun record ->
      match case_of_json codec record with
      | Some (i, outcome) when i >= 0 && i < count ->
        if outcomes.(i) = None then incr resumed;
        outcomes.(i) <- Some outcome
      | Some _ | None -> incr skipped
      | exception _ -> incr skipped)
    records;
  (!resumed, !skipped)

let attempt_case ?deadline ?step_budget ?(retries = 0) ?(transient = Chaos.is_transient)
    ?(chaos : Chaos.plan = []) ctx runner i =
  (* one guard per attempt: a retry restarts the deadline and the step
     budget, otherwise a slow-but-recoverable case would inherit an
     already-spent budget and time out spuriously *)
  let rec attempt n =
    ctx.c_stage <- "setup";
    Chaos.arm chaos ~case:i ~attempt:n;
    let guard = Guard.create ?deadline ?steps:step_budget () in
    match Guard.with_guard guard (fun () -> stage ctx "case" (fun () -> runner ctx i)) with
    | v ->
      if n > 0 then Metrics.recovered ctx.c_metrics;
      Done v
    | exception e ->
      (* capture before anything else can run and clobber it *)
      let bt = Printexc.get_backtrace () in
      if n < retries && transient e then begin
        Metrics.retried ctx.c_metrics;
        attempt (n + 1)
      end
      else
        Crashed
          {
            q_case = i;
            q_stage = ctx.c_stage;
            q_error = Printexc.to_string e;
            q_kind = classify e;
            q_backtrace = bt;
            q_retries = n;
          }
  in
  let outcome = attempt 0 in
  Chaos.disarm ();
  outcome

let never_completed ~stage i =
  Crashed
    {
      q_case = i;
      q_stage = stage;
      q_error = "case never completed";
      q_kind = Crash;
      q_backtrace = "";
      q_retries = 0;
    }

(* ------------------------------------------------------------------ *)
(* cache-counter deltas                                                *)
(* ------------------------------------------------------------------ *)

let counters_delta (a : Passmgr.counters) (b : Passmgr.counters) : Passmgr.counters =
  {
    meminfo_hits = b.meminfo_hits - a.meminfo_hits;
    meminfo_misses = b.meminfo_misses - a.meminfo_misses;
    cfg_hits = b.cfg_hits - a.cfg_hits;
    cfg_misses = b.cfg_misses - a.cfg_misses;
    dom_hits = b.dom_hits - a.dom_hits;
    dom_misses = b.dom_misses - a.dom_misses;
  }

(* ------------------------------------------------------------------ *)
(* the pool                                                            *)
(* ------------------------------------------------------------------ *)

let run (type a) ?journal ?(codec : a codec option) ?(campaign = "campaign") ?(seed = 0)
    ?deadline ?step_budget ?(retries = 0) ?(transient = Chaos.is_transient)
    ?(chaos : Chaos.plan = []) ~jobs ~count (runner : ctx -> int -> a) : a result =
  if jobs < 1 then invalid_arg "Engine.run: jobs must be >= 1";
  if count < 0 then invalid_arg "Engine.run: count must be >= 0";
  if journal <> None && codec = None then
    invalid_arg "Engine.run: journaling requires a codec";
  Printexc.record_backtrace true;
  let campaign = campaign_name ~campaign ~chaos in
  let t0 = Unix.gettimeofday () in
  let cache0 = Passmgr.counters () in
  let chaos0 = Chaos.fired_count () in
  (* slot None = still to run; journal replay fills slots up front *)
  let outcomes : a case_outcome option array = Array.make count None in
  let resumed = ref 0 in
  let skipped = ref 0 in
  let jnl =
    match journal with
    | None -> None
    | Some path ->
      let codec = Option.get codec in
      let header = { Journal.h_campaign = campaign; h_seed = seed; h_count = count } in
      let existing = Journal.load ~path in
      (match existing with
       | Some (h, cases, dropped) when h = header ->
         skipped := dropped;
         let r, s = replay codec ~count outcomes cases in
         resumed := r;
         skipped := !skipped + s
       | Some _ | None -> ());
      (* open_append locks the file, validates the header, and rewrites the
         valid prefix — reusing the parse just performed *)
      Some (Journal.open_append ~existing ~path header)
  in
  let record_completion i outcome =
    (match (jnl, codec) with
     | Some j, Some codec -> Journal.append j (case_to_json codec i outcome)
     | _ -> ());
    outcomes.(i) <- Some outcome
  in
  let run_case ctx i =
    record_completion i
      (attempt_case ?deadline ?step_budget ~retries ~transient ~chaos ctx runner i)
  in
  let worker_body w =
    Printexc.record_backtrace true;
    let ctx = make_ctx ~worker:w in
    List.iter
      (fun i -> if outcomes.(i) = None then run_case ctx i)
      (Shard.cases_of ~count ~jobs w);
    ctx.c_metrics
  in
  let metrics =
    if jobs = 1 then worker_body 0
    else
      (* workers never share a case slot (shards are disjoint), and
         Domain.join publishes their writes back to this domain *)
      let () = domains_spawned := true in
      Array.to_list (Array.init jobs (fun w -> Domain.spawn (fun () -> worker_body w)))
      |> List.map Domain.join
      |> List.fold_left Metrics.merge (Metrics.create ())
  in
  (match jnl with Some j -> Journal.close j | None -> ());
  let outcomes =
    Array.mapi
      (fun i slot ->
        match slot with Some o -> o | None -> never_completed ~stage:"engine" i)
      outcomes
  in
  let quarantine =
    Array.to_list outcomes |> List.filter_map (function Crashed q -> Some q | Done _ -> None)
  in
  let count_kind k = List.length (List.filter (fun q -> q.q_kind = k) quarantine) in
  let wall = Unix.gettimeofday () -. t0 in
  let cache = counters_delta cache0 (Passmgr.counters ()) in
  let executed = count - !resumed in
  {
    outcomes;
    quarantine;
    metrics =
      Metrics.summarize ~journal_skipped:!skipped ~crashed:(count_kind Crash)
        ~timeouts:(count_kind Timeout) ~ir_invalid:(count_kind Ir_invalid)
        ~chaos_fired:(Chaos.fired_count () - chaos0)
        ~cases:executed ~wall ~cache metrics;
    resumed = !resumed;
    skipped = !skipped;
  }
