(** Per-run artifact directories under stable run ids.

    A campaign run can persist itself as [<root>/<run-id>/] holding
    [meta.json] (the campaign parameters), [report.json] (the cross-run
    comparison report below), [metrics.json] ({!Metrics.summary_to_json}),
    optionally [report.txt] (the rendered human report) and
    [journal.jsonl] (the campaign's checkpoint journal, written by the
    engine itself when the caller routes it here via {!journal_path}).

    The run id is a {e pure function of the campaign parameters} — no
    timestamps, no pids — so re-running the same campaign lands in the same
    directory, and ids are identical across [--jobs]/[--workers] settings.
    [campaign-diff] consumes two such directories and compares their
    reports table by table ({!Run_diff}). *)

val run_id : campaign:string -> seed:int -> count:int -> string list -> string
(** [run_id ~campaign ~seed ~count extras]: deterministic id
    ["run-<15 hex digits>"].  [extras] folds in whatever else distinguishes
    the run (compiler names, a patch signature). *)

(** {1 The comparison report} *)

type miss = {
  m_case : int;  (** corpus index *)
  m_compiler : string;
  m_level : Dce_compiler.Level.t;
  m_marker : int;  (** dead marker the configuration kept *)
}

type size_row = {
  z_case : int;
  z_compiler : string;
  z_level : Dce_compiler.Level.t;
  z_size : int;  (** {!Dce_backend.Asm.size} of the output *)
}

type inv_row = {
  v_case : int;
  v_compiler : string;
  v_marker : int;
  v_low : Dce_compiler.Level.t;   (** weakest level eliminating the marker *)
  v_high : Dce_compiler.Level.t;  (** strongest level keeping it *)
}

type report = {
  r_campaign : string;
  r_seed : int;
  r_count : int;
  r_compilers : string list;  (** display names, in campaign order *)
  r_misses : miss list;
  r_sizes : size_row list;
  r_inversions : inv_row list;
  r_rejected : int list;     (** ground-truth-rejected corpus indices *)
  r_quarantined : int list;  (** quarantined corpus indices *)
}

val sort_report : report -> report
(** Canonical row order (by case, then compiler, level rank, marker) and
    deduplicated index lists — applied by {!write}, so persisted reports
    are byte-stable regardless of collection order. *)

val report_to_json : report -> Json.t
val report_of_json : Json.t -> report
(** Raises [Failure] on a malformed document. *)

(** {1 The artifact directory} *)

val dir_of : root:string -> id:string -> string

val journal_path : string -> string
(** [journal_path dir]: where a campaign journaling into the run directory
    should write ([<dir>/journal.jsonl]). *)

val write :
  ?report_text:string ->
  root:string ->
  id:string ->
  meta:Json.t ->
  metrics:Metrics.summary ->
  report ->
  string
(** Create [<root>/<id>/] (parents included) and write [meta.json],
    [report.json] (sorted canonically), [metrics.json], and — when given —
    [report.txt].  Returns the directory path. *)

val load_report : string -> report
(** Read back [<dir>/report.json]; raises [Failure] naming the path when the
    directory holds no parseable report. *)

(** {1 Enumeration and garbage collection} *)

type entry = {
  e_id : string;
  e_dir : string;
  e_campaign : string;  (** ["?"] when meta.json is missing or unreadable *)
  e_seed : int;
  e_count : int;
  e_mtime : float;      (** directory mtime — last artifact write *)
  e_cases : int;        (** journal records past the header; 0 when absent *)
}

val list_runs : root:string -> entry list
(** Every [run-*] directory under [root], newest first (directory mtime,
    run id as tie-break).  Unreadable metadata degrades to placeholder
    fields rather than hiding the run — gc must still be able to see it. *)

val gc :
  ?dry_run:bool -> ?keep_last:int -> ?older_than:float -> root:string -> unit -> string list
(** Prune run directories; returns the pruned ids (newest first).  With
    [keep_last:n] the [n] newest runs are protected and the rest are
    candidates; with [older_than:secs] only candidates older than that are
    removed (with {e only} [keep_last], every unprotected run is removed).
    [dry_run] reports the victims without deleting.  Neither flag — no-op. *)

val load_stage_totals : string -> (string * float) list
(** The per-stage summed wall seconds of [<dir>/metrics.json], for the
    diff's timing-delta table; [[]] when missing or unreadable (timings are
    measurements, never verdict inputs). *)
