type header = {
  h_campaign : string;
  h_seed : int;
  h_count : int;
}

type t = {
  oc : out_channel;
  lock : Mutex.t;
  path_key : string;  (* registry key held until close *)
}

(* Two campaigns appending to one journal interleave half-records and tear
   the file, so opening is exclusive.  [Unix.lockf] covers cross-process
   exclusion but deliberately does not conflict with the same process (POSIX
   record locks are per-process), hence the in-process registry next to it:
   a second [open_append] on the same file fails fast either way. *)
let open_paths : (string, unit) Hashtbl.t = Hashtbl.create 4
let open_paths_mutex = Mutex.create ()

let locked_failure path =
  failwith
    (Printf.sprintf
       "journal %s is locked by another campaign — wait for it to finish or use a different \
        journal path"
       path)

let header_to_json h =
  Json.Obj
    [
      ("journal", Json.String "dce-campaign");
      ("version", Json.Int 1);
      ("campaign", Json.String h.h_campaign);
      ("seed", Json.Int h.h_seed);
      ("count", Json.Int h.h_count);
    ]

let header_of_json j =
  match Json.member "journal" j with
  | Some (Json.String "dce-campaign") ->
    Some
      {
        h_campaign = Json.get_str j "campaign";
        h_seed = Json.get_int j "seed";
        h_count = Json.get_int j "count";
      }
  | _ -> None

(* read all complete (newline-terminated) lines; an unterminated tail is the
   in-flight write of an interrupted campaign and is ignored *)
let read_complete_lines path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  let lines = String.split_on_char '\n' content in
  match List.rev lines with
  | last :: rest when last <> "" ->
    ignore rest;
    (* no trailing newline: the final line may be half-written.  The length
       is hoisted out of the predicate — recomputing it per line made large-
       journal resume quadratic. *)
    let n = List.length lines in
    List.filteri (fun i _ -> i < n - 1) lines
  | _ -> lines

let load ~path =
  if not (Sys.file_exists path) then None
  else begin
    let lines = List.filter (fun l -> l <> "") (read_complete_lines path) in
    match lines with
    | [] -> None
    | first :: rest -> (
      match Json.of_string first with
      | Error _ -> None
      | Ok j -> (
        match header_of_json j with
        | None -> None
        | Some h ->
          (* drop any line that does not parse — the truncation point — and
             everything after it: later lines could depend on the campaign
             state the lost line recorded.  The dropped-line count is
             reported so a resume can say how much it discarded (e.g. a
             journal poisoned by a bare [nan] from a pre-fix build). *)
          let rec take acc = function
            | [] -> (List.rev acc, 0)
            | l :: ls -> (
              match Json.of_string l with
              | Ok v -> take (v :: acc) ls
              | Error _ -> (List.rev acc, 1 + List.length ls))
          in
          let records, dropped = take [] rest in
          Some (h, records, dropped)))
  end

let open_append ?existing ~path header =
  Dce_support.Fsx.mkdir_p (Filename.dirname path);
  (* [?existing] lets a caller that already called {!load} (to prefill its
     outcome slots) hand the parse through instead of paying for a second
     full read of the journal *)
  let existing = match existing with Some e -> e | None -> load ~path in
  (match existing with
   | None -> ()
   | Some (h, _, _) ->
     if h <> header then
       failwith
         (Printf.sprintf
            "journal %s belongs to campaign %s seed=%d count=%d, not %s seed=%d count=%d — \
             delete it or change parameters"
            path h.h_campaign h.h_seed h.h_count header.h_campaign header.h_seed header.h_count));
  (* acquire the lock before truncating anything: a second opener must fail
     with the live journal intact, not after having destroyed it *)
  let fd = Unix.openfile path [ Unix.O_CREAT; Unix.O_WRONLY ] 0o644 in
  let path_key = try Unix.realpath path with Unix.Unix_error _ -> path in
  Mutex.protect open_paths_mutex (fun () ->
      if Hashtbl.mem open_paths path_key then begin
        Unix.close fd;
        locked_failure path
      end;
      Hashtbl.replace open_paths path_key ());
  (match Unix.lockf fd Unix.F_TLOCK 0 with
   | () -> ()
   | exception Unix.Unix_error _ ->
     Mutex.protect open_paths_mutex (fun () -> Hashtbl.remove open_paths path_key);
     Unix.close fd;
     locked_failure path);
  (* rewrite the valid prefix and append from there: a truncated trailing
     line must not be glued to the next record, and a file with no valid
     header (fresh, or truncated before the first newline) starts over *)
  Unix.ftruncate fd 0;
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_out oc true;
  let t = { oc; lock = Mutex.create (); path_key } in
  output_string oc (Json.to_string (header_to_json header));
  output_char oc '\n';
  (match existing with
   | None -> ()
   | Some (_, cases, _) ->
     List.iter
       (fun case ->
         output_string oc (Json.to_string case);
         output_char oc '\n')
       cases);
  flush oc;
  t

let append t v =
  let line = Json.to_string v in
  Mutex.protect t.lock (fun () ->
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc)

let close t =
  Mutex.protect t.lock (fun () -> close_out t.oc);
  (* closing the descriptor released the lockf lock with it *)
  Mutex.protect open_paths_mutex (fun () -> Hashtbl.remove open_paths t.path_key)
