module Guard = Dce_support.Guard
module Ir = Dce_ir.Ir

type fault = Crash | Hang | Slow | Transient of int | Corrupt_ir

type injection = { inj_case : int; inj_stage : string; inj_fault : fault }
type plan = injection list

exception Injected_crash of string
exception Injected_transient of string

let () =
  Printexc.register_printer (function
    | Injected_crash msg | Injected_transient msg -> Some msg
    | _ -> None)

let is_transient = function Injected_transient _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* armed state                                                         *)
(* ------------------------------------------------------------------ *)

(* Per-domain: campaign workers arm their own case independently, and the
   fired counter is the only cross-domain state. *)
type armed = {
  a_case : int;
  a_attempt : int;  (* 0-based attempt within the retry loop *)
  a_injections : injection list;  (* this case's entries only *)
  mutable a_corrupted : bool;  (* the one-shot corrupt-IR fuse *)
}

let armed_key : armed option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let fired = Atomic.make 0
let fired_count () = Atomic.get fired

(* An invalid instruction by construction: defines a fresh register from a
   register nothing defines, which SSA validation rejects as "use of
   undefined register".  The huge ids keep it clear of any real program. *)
let corrupt_program (prog : Ir.program) =
  let bomb = Ir.Def (999_999_983, Ir.Op (Ir.Reg 999_999_989)) in
  let first = ref true in
  Ir.map_func
    (fun fn ->
      if !first then begin
        first := false;
        match Ir.Imap.find_opt fn.Ir.fn_entry fn.Ir.fn_blocks with
        | None -> fn
        | Some blk ->
          let blk = { blk with Ir.b_instrs = blk.Ir.b_instrs @ [ bomb ] } in
          { fn with Ir.fn_blocks = Ir.Imap.add fn.Ir.fn_entry blk fn.Ir.fn_blocks }
      end
      else fn)
    prog

let ir_hook label prog =
  match Domain.DLS.get armed_key with
  | None -> prog
  | Some a ->
    if
      (not a.a_corrupted)
      && List.exists
           (fun i -> i.inj_fault = Corrupt_ir && i.inj_stage = label)
           a.a_injections
    then begin
      a.a_corrupted <- true;
      Atomic.incr fired;
      corrupt_program prog
    end
    else prog

let arm plan ~case ~attempt =
  let mine = List.filter (fun i -> i.inj_case = case) plan in
  if mine = [] then begin
    Domain.DLS.set armed_key None;
    Dce_compiler.Passmgr.set_ir_hook None
  end
  else begin
    Domain.DLS.set armed_key
      (Some { a_case = case; a_attempt = attempt; a_injections = mine; a_corrupted = false });
    if List.exists (fun i -> i.inj_fault = Corrupt_ir) mine then
      Dce_compiler.Passmgr.set_ir_hook (Some ir_hook)
    else Dce_compiler.Passmgr.set_ir_hook None
  end

let disarm () =
  Domain.DLS.set armed_key None;
  Dce_compiler.Passmgr.set_ir_hook None

(* ------------------------------------------------------------------ *)
(* firing                                                              *)
(* ------------------------------------------------------------------ *)

let slow_polls = 20_000

let fire stage =
  match Domain.DLS.get armed_key with
  | None -> ()
  | Some a ->
    List.iter
      (fun i ->
        if i.inj_stage = stage then
          match i.inj_fault with
          | Corrupt_ir -> () (* handled by the Passmgr IR hook *)
          | Crash ->
            Atomic.incr fired;
            raise (Injected_crash (Printf.sprintf "injected crash (case %d)" a.a_case))
          | Transient n ->
            if a.a_attempt < n then begin
              Atomic.incr fired;
              raise
                (Injected_transient
                   (Printf.sprintf "injected transient fault (case %d, attempt %d)" a.a_case
                      a.a_attempt))
            end
          | Slow ->
            Atomic.incr fired;
            for _ = 1 to slow_polls do
              Guard.poll ~site:("chaos-slow:" ^ stage)
            done
          | Hang ->
            (* a hang is only survivable under an armed guard; without one it
               would stall the worker forever, which is exactly the failure
               mode the supervision layer exists to prevent *)
            if not (Guard.active ()) then
              failwith
                (Printf.sprintf
                   "chaos: refusing to inject hang at %s (case %d) without an active guard \
                    — pass --deadline or a step budget"
                   stage a.a_case);
            Atomic.incr fired;
            while true do
              Guard.poll ~site:("chaos-hang:" ^ stage)
            done)
      a.a_injections

(* ------------------------------------------------------------------ *)
(* plans                                                               *)
(* ------------------------------------------------------------------ *)

let crash_plan cases =
  List.map (fun c -> { inj_case = c; inj_stage = "generate"; inj_fault = Crash }) cases

let has_corrupt plan = List.exists (fun i -> i.inj_fault = Corrupt_ir) plan

let fault_to_string = function
  | Crash -> "crash"
  | Hang -> "hang"
  | Slow -> "slow"
  | Corrupt_ir -> "corrupt"
  | Transient n -> if n = 1 then "transient" else Printf.sprintf "transient%d" n

let injection_to_string i =
  Printf.sprintf "%s@%d:%s" (fault_to_string i.inj_fault) i.inj_case i.inj_stage

let to_string plan = String.concat "," (List.map injection_to_string plan)
let signature = to_string

let parse_entry s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt s '@' with
  | None -> fail "chaos entry %S: expected KIND@CASE[:STAGE]" s
  | Some at -> (
    let kind = String.sub s 0 at in
    let rest = String.sub s (at + 1) (String.length s - at - 1) in
    let case_s, stage =
      match String.index_opt rest ':' with
      | None -> (rest, None)
      | Some c ->
        (String.sub rest 0 c, Some (String.sub rest (c + 1) (String.length rest - c - 1)))
    in
    match int_of_string_opt case_s with
    | None -> fail "chaos entry %S: case %S is not an integer" s case_s
    | Some case when case < 0 -> fail "chaos entry %S: negative case index" s
    | Some case -> (
      let mk fault default_stage =
        Ok
          {
            inj_case = case;
            inj_stage = Option.value ~default:default_stage stage;
            inj_fault = fault;
          }
      in
      match kind with
      | "crash" -> mk Crash "generate"
      | "hang" -> mk Hang "generate"
      | "slow" -> mk Slow "generate"
      | "corrupt" -> mk Corrupt_ir "dce"
      | _ ->
        if String.length kind >= 9 && String.sub kind 0 9 = "transient" then
          let n_s = String.sub kind 9 (String.length kind - 9) in
          if n_s = "" then mk (Transient 1) "generate"
          else
            match int_of_string_opt n_s with
            | Some n when n > 0 -> mk (Transient n) "generate"
            | _ -> fail "chaos entry %S: bad transient count %S" s n_s
        else fail "chaos entry %S: unknown fault kind %S" s kind))

let of_string spec =
  let entries = String.split_on_char ',' (String.trim spec) in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go acc rest
    | e :: rest -> (
      match parse_entry (String.trim e) with
      | Error _ as err -> err
      | Ok i -> go (i :: acc) rest)
  in
  go [] entries
