(** The multi-process campaign fabric: a coordinator/worker execution grid
    layered on the {!Engine}.

    {b Process model.}  The coordinator forks [workers] persistent worker
    processes, each connected by a Unix-domain socketpair speaking a
    line-JSON protocol (the dependency-free {!Json}).  Fork happens before
    any domain is spawned — the OCaml 5 fork-safety rule: the runtime
    forbids [Unix.fork] once any domain has {e ever} been created, even
    after it is joined, so a multi-process grid must run before any
    [jobs > 1] campaign in the same process ([run] checks
    {!Engine.domains_ever_spawned} and fails with that diagnosis) — and fork
    inheritance carries the runner and codec closures into the workers, so
    the fabric is as generic as {!Engine.run}.  Each worker then runs its
    chunks over [jobs] domains, giving a processes × domains grid.

    {b Work stealing.}  Cases still to run are sliced into chunks on a
    coordinator-side queue; a worker that finishes its chunk immediately
    pulls the next (["chunk-done"] → dispatch).  One pathological case
    therefore delays only its own chunk-mates, not a statically pre-assigned
    shard — the imbalance [`Static] scheduling exists to measure.

    {b Determinism.}  Workers execute cases through
    {!Engine.attempt_case} and ship the exact {!Engine.case_to_json} record;
    the coordinator merges records into the [count]-sized case-indexed
    outcomes array and appends them to the one canonical journal it owns.
    Output is a pure function of the case set — independent of [workers],
    [jobs], chunking, arrival order, scheduling mode, and resume history —
    so reports are byte-identical to [~workers:1 ~jobs:1], and a journal
    written by a fabric run resumes under a non-fabric run and vice versa.

    {b Warm workers.}  Worker processes persist across chunks, so the
    content-addressed compile cache and the pass-manager analysis caches
    accumulate for the whole campaign; each worker reports its cache-counter
    delta in its farewell message and the coordinator folds them into the
    campaign metrics ({!Metrics.summary.cache}, plus the fabric counters in
    {!Metrics.summary.fabric}).

    {b Crash and hang containment.}  A dead socket (worker crash) or an
    expired [chunk_deadline] (worker hang, killed by the coordinator)
    quarantines nothing by itself: the dead worker's {e unfinished} in-flight
    cases are re-queued for the surviving workers, once — a case whose
    worker dies twice is the poison pill and is quarantined (stage
    ["fabric"], reusing the {!Engine.fault_kind} machinery) so the campaign
    always terminates.  When every surviving worker has already been told to
    quit, a replacement is forked, within [max_respawns].

    {b Signals.}  The coordinator installs SIGINT/SIGTERM handlers for the
    duration of a multi-process run: the first signal drains — in-flight
    chunks finish streaming their records, no new chunk is dispatched,
    workers are told to quit — and a second signal kills the fleet outright.
    Either way the journal is closed (lock released), the prior signal
    dispositions are restored, and [run] raises {!Interrupted} carrying the
    signal number.  Cases not journaled by then simply re-run on resume;
    nothing is quarantined by a drain. *)

exception Interrupted of int
(** Raised (after the fleet is dead, the journal closed, and signal
    dispositions restored) when SIGINT or SIGTERM arrived during a
    multi-process run.  Carries the OCaml signal number ([Sys.sigint] /
    [Sys.sigterm]). *)

val run :
  ?journal:string ->
  ?codec:'a Engine.codec ->
  ?campaign:string ->
  ?seed:int ->
  ?deadline:float ->
  ?step_budget:int ->
  ?retries:int ->
  ?transient:(exn -> bool) ->
  ?chaos:Chaos.plan ->
  ?chunk:int ->
  ?chunk_deadline:float ->
  ?max_respawns:int ->
  ?scheduling:[ `Dynamic | `Static ] ->
  workers:int ->
  jobs:int ->
  count:int ->
  (Engine.ctx -> int -> 'a) ->
  'a Engine.result
(** Same contract as {!Engine.run} plus the fabric controls.  With
    [workers = 1] this {e is} {!Engine.run} — no process is forked and the
    fabric-only options are ignored; that degenerate case anchors the
    byte-identity guarantee for larger grids.

    [chunk] is the cases-per-chunk grain (default: pending/(workers·4),
    clamped to [1, 32]).  [chunk_deadline] (wall seconds) bounds one chunk's
    execution; an overdue worker is killed and handled like a crash.
    [max_respawns] (default [2 * workers]) bounds replacement workers.
    [scheduling] defaults to [`Dynamic] (work stealing); [`Static]
    pre-assigns cases round-robin by pending position, one chunk per worker
    — {!Shard.worker_of_case} lifted to processes, the measurable baseline.

    Raises [Invalid_argument] when [workers < 1], [jobs < 1], [count < 0],
    [chunk < 1], or [workers > 1] without a codec (case results must cross
    the process boundary, journal or not). *)

val in_worker : unit -> bool
(** True inside a fabric worker process — exposed so tests (and diagnostics)
    can behave differently in a worker, e.g. deliberately killing one to
    exercise crash containment. *)
