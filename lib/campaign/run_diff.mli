(** A/B comparison of two campaign runs, table by table.

    The input is two {!Run_store.report}s (typically loaded from two run
    directories); the output is a {!verdict}: new/fixed misses, new/fixed
    level inversions, per-configuration size deltas, newly
    rejected/quarantined cases — plus, informationally, per-stage timing
    deltas read from the runs' metrics.

    {b Regression policy.}  A size increase counts as a regression only at
    [-Os] (size is the contract there); new misses, new inversions, and new
    quarantines are regressions at every level.  A seed/count mismatch makes
    the runs non-comparable, which is itself treated as a failed verdict.
    Timing deltas are measurements and never affect the verdict. *)

type size_delta = {
  sd_case : int;
  sd_compiler : string;
  sd_level : Dce_compiler.Level.t;
  sd_a : int;
  sd_b : int;
}

type verdict = {
  d_run_a : string;  (** run A's campaign name *)
  d_run_b : string;
  d_comparable : bool;  (** same seed and count *)
  d_new_misses : Run_store.miss list;      (** in B, not in A *)
  d_fixed_misses : Run_store.miss list;    (** in A, not in B *)
  d_new_inversions : Run_store.inv_row list;
  d_fixed_inversions : Run_store.inv_row list;
  d_size_deltas : size_delta list;  (** cells present in both with different sizes *)
  d_new_rejected : int list;
  d_new_quarantined : int list;
}

val diff : Run_store.report -> Run_store.report -> verdict
(** Pure and deterministic: inputs are canonically sorted first, so the
    verdict is independent of row collection order. *)

val size_regressions : verdict -> size_delta list
(** The size deltas that count against the verdict: [-Os] cells that grew. *)

val has_regressions : verdict -> bool

val is_empty : verdict -> bool
(** No differences at all — the self-diff invariant. *)

val stage_deltas :
  (string * float) list -> (string * float) list -> (string * float * float) list
(** Pair two runs' per-stage totals ({!Run_store.load_stage_totals}) by
    stage name: [(stage, total_a, total_b)], union of both runs' stages. *)

val to_json : ?stage_deltas:(string * float * float) list -> verdict -> Json.t
(** Machine-readable verdict: [clean], [identical], and the full row lists;
    [stage_deltas] are appended when provided. *)

val render : ?stage_deltas:(string * float * float) list -> verdict -> string
(** Human tables; prints ["runs are identical: empty diff"] on a self-diff
    and a final verdict line otherwise. *)
