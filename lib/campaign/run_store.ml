module C = Dce_compiler

(* ------------------------------------------------------------------ *)
(* stable run ids                                                      *)
(* ------------------------------------------------------------------ *)

(* A run id is a pure function of the campaign parameters — no timestamps,
   no pids — so the same campaign always lands in the same directory and a
   repair search is byte-identical across --jobs/--workers settings.  The
   hash is djb2 over the parameter string, wider than the commit-id hash
   (60 bits) because ids are directory names, not table keys. *)
let run_id ~campaign ~seed ~count extras =
  let key = String.concat "\x00" (campaign :: string_of_int seed :: string_of_int count :: extras) in
  let h = ref 5381 in
  String.iter
    (fun ch -> h := ((!h lsl 5) + !h + Char.code ch) land 0xFFFFFFFFFFFFFFF)
    key;
  Printf.sprintf "run-%015x" !h

(* ------------------------------------------------------------------ *)
(* the cross-run report: what campaign-diff compares table by table    *)
(* ------------------------------------------------------------------ *)

type miss = { m_case : int; m_compiler : string; m_level : C.Level.t; m_marker : int }

type size_row = { z_case : int; z_compiler : string; z_level : C.Level.t; z_size : int }

type inv_row = {
  v_case : int;
  v_compiler : string;
  v_marker : int;
  v_low : C.Level.t;
  v_high : C.Level.t;
}

type report = {
  r_campaign : string;
  r_seed : int;
  r_count : int;
  r_compilers : string list;
  r_misses : miss list;
  r_sizes : size_row list;
  r_inversions : inv_row list;
  r_rejected : int list;
  r_quarantined : int list;
}

let level_rank l = C.Level.rank l

let sort_report r =
  {
    r with
    r_misses =
      List.sort
        (fun a b ->
          compare
            (a.m_case, a.m_compiler, level_rank a.m_level, a.m_marker)
            (b.m_case, b.m_compiler, level_rank b.m_level, b.m_marker))
        r.r_misses;
    r_sizes =
      List.sort
        (fun a b ->
          compare
            (a.z_case, a.z_compiler, level_rank a.z_level)
            (b.z_case, b.z_compiler, level_rank b.z_level))
        r.r_sizes;
    r_inversions =
      List.sort
        (fun a b ->
          compare (a.v_case, a.v_compiler, a.v_marker) (b.v_case, b.v_compiler, b.v_marker))
        r.r_inversions;
    r_rejected = List.sort_uniq compare r.r_rejected;
    r_quarantined = List.sort_uniq compare r.r_quarantined;
  }

(* ---------------- JSON codec ---------------- *)

let level_to_json l = Json.String (C.Level.to_string l)

let level_of_json j =
  match Option.bind (Json.to_str j) C.Level.of_string with
  | Some l -> l
  | None -> failwith (Printf.sprintf "run report: bad level %s" (Json.to_string j))

let report_to_json r =
  let miss m =
    Json.Obj
      [
        ("case", Json.Int m.m_case);
        ("compiler", Json.String m.m_compiler);
        ("level", level_to_json m.m_level);
        ("marker", Json.Int m.m_marker);
      ]
  in
  let size z =
    Json.Obj
      [
        ("case", Json.Int z.z_case);
        ("compiler", Json.String z.z_compiler);
        ("level", level_to_json z.z_level);
        ("size", Json.Int z.z_size);
      ]
  in
  let inv v =
    Json.Obj
      [
        ("case", Json.Int v.v_case);
        ("compiler", Json.String v.v_compiler);
        ("marker", Json.Int v.v_marker);
        ("low", level_to_json v.v_low);
        ("high", level_to_json v.v_high);
      ]
  in
  Json.Obj
    [
      ("campaign", Json.String r.r_campaign);
      ("seed", Json.Int r.r_seed);
      ("count", Json.Int r.r_count);
      ("compilers", Json.List (List.map (fun n -> Json.String n) r.r_compilers));
      ("misses", Json.List (List.map miss r.r_misses));
      ("sizes", Json.List (List.map size r.r_sizes));
      ("inversions", Json.List (List.map inv r.r_inversions));
      ("rejected", Json.List (List.map (fun i -> Json.Int i) r.r_rejected));
      ("quarantined", Json.List (List.map (fun i -> Json.Int i) r.r_quarantined));
    ]

let report_of_json j =
  let miss m =
    {
      m_case = Json.get_int m "case";
      m_compiler = Json.get_str m "compiler";
      m_level = level_of_json (Json.get m "level");
      m_marker = Json.get_int m "marker";
    }
  in
  let size z =
    {
      z_case = Json.get_int z "case";
      z_compiler = Json.get_str z "compiler";
      z_level = level_of_json (Json.get z "level");
      z_size = Json.get_int z "size";
    }
  in
  let inv v =
    {
      v_case = Json.get_int v "case";
      v_compiler = Json.get_str v "compiler";
      v_marker = Json.get_int v "marker";
      v_low = level_of_json (Json.get v "low");
      v_high = level_of_json (Json.get v "high");
    }
  in
  let str_exn v =
    match Json.to_str v with
    | Some s -> s
    | None -> failwith "run report: expected a string"
  in
  {
    r_campaign = Json.get_str j "campaign";
    r_seed = Json.get_int j "seed";
    r_count = Json.get_int j "count";
    r_compilers = List.map str_exn (Json.get_list j "compilers");
    r_misses = List.map miss (Json.get_list j "misses");
    r_sizes = List.map size (Json.get_list j "sizes");
    r_inversions = List.map inv (Json.get_list j "inversions");
    r_rejected = List.map Json.int_exn (Json.get_list j "rejected");
    r_quarantined = List.map Json.int_exn (Json.get_list j "quarantined");
  }

(* ------------------------------------------------------------------ *)
(* the artifact directory                                              *)
(* ------------------------------------------------------------------ *)

(* Atomic replacement (temp + fsync + rename): a crash mid-write — the
   daemon SIGKILLed between a campaign finishing and its artifacts landing —
   can never leave a torn report.json behind for campaign-diff to choke on. *)
let write_file path content = Dce_support.Fsx.write_atomic path content

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let dir_of ~root ~id = Filename.concat root id

let journal_path dir = Filename.concat dir "journal.jsonl"

let write ?report_text ~root ~id ~meta ~metrics report =
  let dir = dir_of ~root ~id in
  Dce_support.Fsx.mkdir_p dir;
  let report = sort_report report in
  write_file (Filename.concat dir "meta.json") (Json.to_string meta ^ "\n");
  write_file (Filename.concat dir "report.json") (Json.to_string (report_to_json report) ^ "\n");
  write_file (Filename.concat dir "metrics.json")
    (Json.to_string (Metrics.summary_to_json metrics) ^ "\n");
  (match report_text with
   | Some text -> write_file (Filename.concat dir "report.txt") text
   | None -> ());
  dir

let load_json path =
  match Json.of_string (String.trim (read_file path)) with
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s: unparseable: %s" path e)

let load_report dir =
  let path = Filename.concat dir "report.json" in
  if not (Sys.file_exists path) then
    failwith (Printf.sprintf "%s: no report.json — not a run directory?" dir);
  report_of_json (load_json path)

(* ------------------------------------------------------------------ *)
(* enumeration and garbage collection of the artifact root             *)
(* ------------------------------------------------------------------ *)

type entry = {
  e_id : string;
  e_dir : string;
  e_campaign : string;
  e_seed : int;
  e_count : int;
  e_mtime : float;
  e_cases : int;
}

(* journal progress = record lines past the header; 0 when absent/empty *)
let journal_cases dir =
  let path = journal_path dir in
  match read_file path with
  | exception Sys_error _ -> 0
  | s ->
    let lines = ref 0 in
    String.iter (fun c -> if c = '\n' then incr lines) s;
    max 0 (!lines - 1)

let load_entry ~root id =
  let dir = dir_of ~root ~id in
  if not (try Sys.is_directory dir with Sys_error _ -> false) then None
  else
    let mtime = try (Unix.stat dir).Unix.st_mtime with Unix.Unix_error _ -> 0. in
    let campaign, seed, count =
      match load_json (Filename.concat dir "meta.json") with
      | exception _ -> ("?", 0, 0)
      | meta ->
        ( Option.value ~default:"?" (Option.bind (Json.member "campaign" meta) Json.to_str),
          Option.value ~default:0 (Option.bind (Json.member "seed" meta) Json.to_int),
          Option.value ~default:0 (Option.bind (Json.member "count" meta) Json.to_int) )
    in
    Some
      {
        e_id = id;
        e_dir = dir;
        e_campaign = campaign;
        e_seed = seed;
        e_count = count;
        e_mtime = mtime;
        e_cases = journal_cases dir;
      }

let list_runs ~root =
  let ids =
    match Sys.readdir root with
    | exception Sys_error _ -> [||]
    | entries -> entries
  in
  Array.to_list ids
  |> List.filter (fun id -> String.length id > 4 && String.sub id 0 4 = "run-")
  |> List.filter_map (load_entry ~root)
  |> List.sort (fun a b ->
         (* newest first; id as a stable tie-break so listings don't flap
            when two runs share a second *)
         compare (b.e_mtime, a.e_id) (a.e_mtime, b.e_id))

let gc ?(dry_run = false) ?keep_last ?older_than ~root () =
  let now = Unix.time () in
  let runs = list_runs ~root in
  let protected i =
    match keep_last with
    | Some n -> i < n
    | None -> false
  in
  let too_old e =
    match older_than with
    | Some age -> now -. e.e_mtime > age
    | None -> keep_last <> None
    (* with only --keep-last, everything beyond the protected prefix goes *)
  in
  let victims =
    List.filteri (fun i e -> (not (protected i)) && too_old e) runs
  in
  if not dry_run then
    List.iter (fun e -> Dce_support.Fsx.rm_rf e.e_dir) victims;
  List.map (fun e -> e.e_id) victims

(* the per-stage wall totals of a run's metrics.json, for the diff's
   timing-delta table; [] when the file is missing or unreadable — timing
   is a measurement, never a verdict input *)
let load_stage_totals dir =
  let path = Filename.concat dir "metrics.json" in
  if not (Sys.file_exists path) then []
  else
    match load_json path with
    | exception _ -> []
    | j -> (
      match Json.member "stages" j with
      | Some (Json.List stages) ->
        List.filter_map
          (fun st ->
            match (Json.member "stage" st, Json.member "total" st) with
            | Some (Json.String name), Some (Json.Float t) -> Some (name, t)
            | Some (Json.String name), Some (Json.Int t) -> Some (name, float_of_int t)
            | _ -> None)
          stages
      | _ -> [])
