(** The standard DCE campaign run through the {!Engine}: generate the seeded
    corpus, analyze every program (ground truth + both compilers at all
    levels), aggregate statistics — sharded over worker domains, fault
    isolated, and journaled.

    Program [i] of a campaign with master seed [s] is generated from
    [List.nth (Smith.corpus_seeds ~seed:s ~count) i] regardless of [jobs],
    scheduling, or resume history, so findings and reports are identical
    across any worker count — [jobs = 1] reproduces the historical
    sequential path byte for byte.

    {b Journal payloads} store what is expensive to recompute (ground-truth
    execution, ten per-config compiles) and re-derive the rest on decode:
    the program is regenerated from its seed, re-instrumented, and the
    primary-marker graph is rebuilt from the journaled block-liveness; the
    per-config stage traces are reconstituted from the journaled per-stage
    marker attribution (timings are not preserved — they are measurements,
    not results). *)

type case_result =
  | Case of Dce_core.Analysis.outcome * Dce_minic.Ast.program
      (** analysis outcome and the raw (uninstrumented) program *)
  | Quarantined of Engine.quarantined

type t = {
  c_seed : int;
  c_count : int;
  c_jobs : int;
  c_seeds : int array;             (** per-program generator seeds *)
  c_cases : case_result array;     (** indexed by corpus position *)
  c_quarantine : Engine.quarantined list;
  c_metrics : Metrics.summary;
  c_resumed : int;                 (** cases restored from the journal *)
}

val run :
  ?journal:string ->
  ?fuel:int ->
  ?exec:Dce_exec.Exec.backend ->
  ?inject_crash:int list ->
  ?deadline:float ->
  ?step_budget:int ->
  ?retries:int ->
  ?chaos:Chaos.plan ->
  ?checked:bool ->
  ?bundle_dir:string ->
  ?workers:int ->
  ?chunk:int ->
  jobs:int ->
  seed:int ->
  count:int ->
  unit ->
  t
(** [inject_crash] lists corpus indices whose generate stage raises — the
    legacy spelling of a crash-only {!Chaos.plan}, merged into [chaos].
    [fuel] bounds the ground-truth executor per case (exhaustion is a
    rejection, not a crash); [exec] selects its backend (default ambient).

    [deadline] / [step_budget] / [retries] are the {!Engine.run} supervision
    controls.  [chaos] installs a deterministic fault plan; a plan with a
    corrupt-IR injection forces [checked].  [checked] validates the IR after
    every optimization pass, quarantining validation failures as
    [Ir_invalid] blaming the guilty pass.  [bundle_dir] writes a
    {!Bundle} repro directory for every quarantined case (the source is
    regenerated from the case seed).

    [workers] (default 1) runs the campaign on the multi-process
    {!Fabric} — [workers] processes × [jobs] domains each, [chunk] cases
    per work-stealing chunk — with output byte-identical to
    [workers = 1]. *)

val outcomes : t -> (int * (Dce_core.Analysis.outcome * Dce_minic.Ast.program)) list
(** Non-quarantined cases with their corpus indices, ascending — the input
    shape of {!Dce_report.Stats.collect_indexed}. *)

val stats : t -> Dce_report.Stats.t
(** Campaign statistics: per-worker-shard {!Dce_report.Stats.collect_indexed}
    merged with {!Dce_report.Stats.merge} — equal to collecting the whole
    corpus at once (property-tested). *)

val instrumented_programs : t -> Dce_minic.Ast.program array
(** Instrumented program per corpus slot (the triage/bisect input);
    quarantined slots hold a trivial empty [main]. *)

val quarantine_to_string : t -> string
(** One line per quarantined case: index, seed, fault kind, guilty stage,
    retry count when nonzero, error. *)

val report : campaign:string -> seed:int -> count:int -> t -> Run_store.report
(** Fold the campaign into the canonical (sorted) cross-run comparison
    report: per-case missed markers per configuration plus each compiler's
    level inversions; size rows stay empty (the oracle campaigns' concern).
    One definition shared by [dce_hunt hunt --run-root] and the serve
    daemon, so both persist byte-identical [report.json]s. *)

val report_text : t -> string
(** The rendered human report persisted as [report.txt]: prevalence,
    Tables 1/2, and the differential summary. *)

(** {1 The §4.4 value-check campaign} *)

type value_case = {
  vc_seed : int;
  vc_checks : int;  (** validated dead value checks planted in this program *)
  vc_kept : (string * Dce_compiler.Level.t * int) list;
      (** (compiler, level, surviving check count) per configuration *)
}

type value_campaign = {
  v_cases : value_case Engine.case_outcome array;
  v_quarantine : Engine.quarantined list;
  v_metrics : Metrics.summary;
  v_seeds : int array;
  v_resumed : int;
}

val run_value :
  ?journal:string ->
  ?exec:Dce_exec.Exec.backend ->
  ?deadline:float ->
  ?step_budget:int ->
  ?retries:int ->
  ?workers:int ->
  ?chunk:int ->
  jobs:int ->
  seed:int ->
  count:int ->
  unit ->
  value_campaign

val value_table : value_campaign -> string
(** Totals line plus the per-level "% checks missed" table (the bench's
    §4.4 extension table, now campaign-powered). *)
