(** Deterministic fault injection for the campaign engine.

    A chaos {!plan} names, per case index, which fault to inject and at which
    stage.  The engine arms the calling worker's plan entry before each case
    attempt; {!fire} is called from every {!Engine.stage} boundary and raises
    (or misbehaves) exactly when the armed case/stage matches.  Everything is
    a pure function of the plan — no randomness at injection time — so a
    chaos run is reproducible and the soak test can assert byte-level
    invariants about the non-faulted cases.

    The module deliberately knows nothing about {!Engine}; the engine depends
    on it, not the other way round. *)

(** What to inject. *)
type fault =
  | Crash  (** raise {!Injected_crash} at the stage boundary *)
  | Hang
      (** spin at the stage boundary polling the ambient {!Dce_support.Guard}
          until the budget trips; refuses to arm without an active guard *)
  | Slow  (** burn a fixed number of guard polls, then continue normally *)
  | Transient of int
      (** raise {!Injected_transient} on the first [n] attempts of the case,
          then succeed — the retry policy's test vector *)
  | Corrupt_ir
      (** plant an invalid instruction in the named pass's output via
          {!Dce_compiler.Passmgr.set_ir_hook}; requires checked mode to be
          observed *)

type injection = {
  inj_case : int;  (** case index within the campaign *)
  inj_stage : string;
      (** engine stage name (["generate"], ["differential"], …) — or, for
          {!Corrupt_ir}, the pipeline pass label to blame (e.g. ["dce"]) *)
  inj_fault : fault;
}

type plan = injection list

exception Injected_crash of string
(** Message always contains ["injected"]. *)

exception Injected_transient of string
(** Transient-classified by the engine's default retry predicate. *)

val is_transient : exn -> bool
(** True exactly for {!Injected_transient} — the default [?transient]
    classifier of {!Engine.run}. *)

(** {1 Arming (engine side)} *)

val arm : plan -> case:int -> attempt:int -> unit
(** Install the plan entries for [case] on the calling domain, for the given
    0-based [attempt].  Also installs the {!Dce_compiler.Passmgr} IR hook
    when the case has a {!Corrupt_ir} injection.  Call before running the
    case; idempotent. *)

val disarm : unit -> unit
(** Clear the calling domain's armed state and the IR hook. *)

val fire : string -> unit
(** Stage-boundary hook: injects the armed fault for the current case if its
    [inj_stage] matches.  No-op when nothing is armed or nothing matches. *)

val fired_count : unit -> int
(** Process-wide number of faults actually injected (monotonic; snapshot
    before/after a run for a delta). *)

(** {1 Plans} *)

val crash_plan : int list -> plan
(** [crash_plan cases] — a {!Crash} in stage ["generate"] for each listed
    case; the compatibility encoding of the old [--inject-crash] flag. *)

val has_corrupt : plan -> bool

val of_string : string -> (plan, string) result
(** Parse a plan spec: comma-separated [KIND@CASE\[:STAGE\]] entries where
    KIND is [crash], [hang], [slow], [corrupt], or [transient\[N\]] (default
    [N] = 1).  STAGE defaults to ["generate"], except [corrupt] which
    defaults to the ["dce"] pass.  Example:
    ["crash@1,transient2@3:differential,hang@5:ground-truth"]. *)

val to_string : plan -> string
(** Inverse of {!of_string} (canonical form). *)

val signature : plan -> string
(** Stable short form baked into the journal campaign header so a resume
    under a different plan is rejected. *)
