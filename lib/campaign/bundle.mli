(** Crash bundles: self-contained repro directories for quarantined cases.

    A bundle captures everything needed to replay one quarantined case away
    from the campaign that produced it: the MiniC source, the generator
    seed, the campaign identity, the fault classification with its guilty
    stage, and the exception text plus backtrace.  One directory per case:

    {v
    <dir>/case-0042/
      meta.json     — all metadata, machine-readable
      repro.c       — the MiniC source (when available)
      repro-min.c   — auto-minimized variant (when minimization ran)
    v}

    Minimization itself lives in [Dce_reduce.Minimize_bundle] (the reduce
    library depends on this one, not the other way round). *)

type t = {
  b_case : int;
  b_seed : int;           (** generator seed of this case *)
  b_campaign : string;
  b_kind : Engine.fault_kind;
  b_stage : string;
  b_error : string;
  b_backtrace : string;
  b_retries : int;
  b_source : string option;     (** MiniC source text *)
  b_minimized : string option;  (** reduced source, when minimization ran *)
}

val of_quarantined : campaign:string -> seed:int -> ?source:string -> Engine.quarantined -> t

val case_dir : dir:string -> int -> string
(** [case_dir ~dir case] = [<dir>/case-%04d]. *)

val write : dir:string -> t -> string
(** Write the bundle under [case_dir ~dir t.b_case] (created as needed) and
    return that path.  [meta.json] is always written; [repro.c] /
    [repro-min.c] only when the corresponding source is present. *)

val load : string -> t option
(** Read a bundle back from its case directory; [None] when [meta.json] is
    missing or unreadable. *)

val to_string : t -> string
(** One-paragraph human summary (kind, stage, error, retry count). *)
