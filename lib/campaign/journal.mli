(** The JSONL campaign journal: one JSON record per line, appended as cases
    complete, enabling checkpoint/resume of interrupted campaigns.

    Line 1 is a header identifying the campaign parameters; every further
    line is one completed case.  The file is append-only and flushed per
    line, so a campaign killed mid-run loses at most the line being written.
    {!load} tolerates exactly that: a trailing line that does not parse (or
    lacks a newline terminator) is discarded, earlier lines survive. *)

type header = {
  h_campaign : string;  (** e.g. ["hunt"] — which runner wrote the journal *)
  h_seed : int;
  h_count : int;
}

type t
(** An open journal being appended to.  Writes are serialized internally, so
    worker domains may append concurrently. *)

val open_append : ?existing:(header * Json.t list * int) option -> path:string -> header -> t
(** Open [path] for appending, creating parent directories as needed.  When
    the file is empty or new, the header line is written first; when it
    already has content, the existing header must match (the resume case) —
    a mismatch raises [Failure] naming both parameter sets.

    [existing] is the result of a {!load} the caller already performed; pass
    it to avoid parsing the journal a second time on open (the engine loads
    once to prefill its outcome slots and hands the parse through).  Omit it
    and [open_append] loads for itself.

    The journal is opened exclusively: an advisory [lockf] lock plus an
    in-process open-path registry (POSIX record locks do not conflict within
    one process) make a concurrent second opener fail fast with [Failure]
    ("locked by another campaign"), before the existing file is touched.
    {!close} releases both. *)

val append : t -> Json.t -> unit
(** Serialize on one line, append, flush.  Thread/domain-safe. *)

val close : t -> unit

val load : path:string -> (header * Json.t list * int) option
(** Parse an existing journal: [None] when the file does not exist or has no
    valid header line; otherwise the header, every parseable complete case
    line in file order, and the number of {e complete} lines discarded — the
    first unparseable line (a torn write, or a [nan] emitted by a pre-fix
    build) plus everything after it, since later records could depend on
    campaign state the lost line recorded.  An unterminated final line is
    dropped without being counted (it is the expected in-flight write of an
    interrupted campaign). *)
