(** The parallel campaign engine: a Domain-based worker pool with
    deterministic sharding, per-case fault isolation, and JSONL
    checkpoint/resume.

    The engine runs [count] cases through a user-supplied runner.  Case [i]
    is executed by worker [Shard.worker_of_case ~jobs i]; each worker walks
    its shard in increasing case order, and results land in a [count]-sized
    array indexed by case — so the campaign's output is a pure function of
    the case set, independent of [jobs], scheduling, or resume history.
    With [jobs = 1] no domain is spawned and the engine is a plain
    sequential loop, byte-identical in behaviour to pre-engine code.

    {b Fault isolation.}  A runner exception (from a generator bug, a
    compiler crash, a step-budget blow-up surfacing as an exception…) kills
    only its case: the case is quarantined with the innermost {!stage} name
    active at the throw point and the exception text, and the worker moves
    on.  The quarantine bucket is part of the result and of the journal.

    {b Checkpoint/resume.}  With [~journal], every completed case (done or
    quarantined) is appended to a JSONL file as it finishes.  Re-running
    the same campaign with the same journal path skips every case already
    recorded, decoding its payload via the codec instead of re-executing;
    a journal truncated mid-line resumes from the last complete record. *)

type ctx
(** Per-worker execution context handed to the runner. *)

val worker : ctx -> int
(** Index of the worker running the current case. *)

val stage : ctx -> string -> (unit -> 'a) -> 'a
(** [stage ctx name f] runs [f], recording its wall time under [name] in the
    campaign metrics.  Nests; on an exception the innermost active name is
    what the quarantine records as the guilty stage. *)

type quarantined = {
  q_case : int;       (** corpus index of the crashed case *)
  q_stage : string;   (** innermost {!stage} active when it threw *)
  q_error : string;   (** [Printexc.to_string] of the exception *)
}

type 'a case_outcome =
  | Done of 'a
  | Crashed of quarantined

type 'a codec = {
  encode : 'a -> Json.t;
  decode : Json.t -> 'a;
      (** may raise; an undecodable journal payload re-runs the case *)
}

type 'a result = {
  outcomes : 'a case_outcome array;  (** indexed by case, length [count] *)
  quarantine : quarantined list;     (** crashed cases, ascending *)
  metrics : Metrics.summary;
  resumed : int;  (** cases restored from the journal instead of executed *)
  skipped : int;
      (** journal records ignored on resume (unreadable, unknown kind, or
          out of range) — the forward-compatibility path: a journal written
          by a different build re-runs those cases instead of aborting.
          Also reported as [metrics.journal_skipped]. *)
}

val run :
  ?journal:string ->
  ?codec:'a codec ->
  ?campaign:string ->
  ?seed:int ->
  jobs:int ->
  count:int ->
  (ctx -> int -> 'a) ->
  'a result
(** [run ~jobs ~count runner] — [runner ctx i] computes case [i].

    [journal] names the JSONL checkpoint file (created, parents included, if
    missing; resumed if present).  Journaling requires [codec];
    [campaign]/[seed] identify the campaign in the journal header and guard
    resume against parameter mismatches (which raise [Failure]).

    Raises [Invalid_argument] when [jobs < 1], [count < 0], or [journal] is
    given without [codec]. *)
