(** The parallel campaign engine: a Domain-based worker pool with
    deterministic sharding, per-case fault isolation, cooperative
    supervision, and JSONL checkpoint/resume.

    The engine runs [count] cases through a user-supplied runner.  Case [i]
    is executed by worker [Shard.worker_of_case ~jobs i]; each worker walks
    its shard in increasing case order, and results land in a [count]-sized
    array indexed by case — so the campaign's output is a pure function of
    the case set, independent of [jobs], scheduling, or resume history.
    With [jobs = 1] no domain is spawned and the engine is a plain
    sequential loop, byte-identical in behaviour to pre-engine code.

    {b Fault isolation.}  A runner exception (from a generator bug, a
    compiler crash, a step-budget blow-up surfacing as an exception…) kills
    only its case: the case is quarantined with the innermost {!stage} name
    active at the throw point, the exception text, its captured backtrace,
    and a {!fault_kind} classification, and the worker moves on.  The
    quarantine bucket is part of the result and of the journal.

    {b Supervision.}  With [?deadline] / [?step_budget], each case attempt
    runs under a fresh {!Dce_support.Guard}: poll points at every {!stage}
    boundary, inside the pass manager, and in the interpreter's step loop
    raise [Guard.Budget_exceeded] when the budget trips, quarantining the
    case as a [Timeout] naming the guilty stage instead of stalling its
    worker.  Pure OCaml cannot be preempted, so this is cooperative by
    design — see DESIGN.md.

    {b Retries.}  With [?retries > 0], a fault classified transient by
    [?transient] (default: chaos-injected transient faults only) re-runs the
    case up to that many extra attempts, each under a fresh guard; retry and
    recovery counts land in the metrics.

    {b Chaos.}  [?chaos] installs a deterministic {!Chaos.plan}; faults fire
    at matching stage boundaries of the targeted cases only.  The plan
    signature is baked into the journal campaign name, so a resume under a
    different plan is rejected as a parameter mismatch.

    {b Checkpoint/resume.}  With [~journal], every completed case (done or
    quarantined) is appended to a JSONL file as it finishes.  Re-running
    the same campaign with the same journal path skips every case already
    recorded, decoding its payload via the codec instead of re-executing;
    a journal truncated mid-line resumes from the last complete record. *)

type ctx
(** Per-worker execution context handed to the runner. *)

val worker : ctx -> int
(** Index of the worker running the current case. *)

val stage : ctx -> string -> (unit -> 'a) -> 'a
(** [stage ctx name f] runs [f], recording its wall time under [name] in the
    campaign metrics.  Nests; on an exception the innermost active name is
    what the quarantine records as the guilty stage.  Stage entry is also
    the engine's supervision poll point and chaos injection point. *)

(** Why a case was quarantined. *)
type fault_kind =
  | Crash       (** plain exception from the runner *)
  | Timeout     (** deadline or step budget exceeded *)
  | Ir_invalid  (** checked-mode IR validation failed, blaming a pass *)

val fault_kind_name : fault_kind -> string
(** ["crash"], ["timeout"], ["ir-invalid"] — the journal encoding. *)

val classify : exn -> fault_kind
(** [Guard.Budget_exceeded] → [Timeout], [Passmgr.Ir_invalid] →
    [Ir_invalid], anything else → [Crash]. *)

type quarantined = {
  q_case : int;        (** corpus index of the crashed case *)
  q_stage : string;    (** innermost {!stage} active when it threw *)
  q_error : string;    (** [Printexc.to_string] of the exception *)
  q_kind : fault_kind;
  q_backtrace : string;
      (** backtrace captured at the quarantine site; may be [""] when the
          runtime recorded none *)
  q_retries : int;     (** retry attempts consumed before giving up *)
}

type 'a case_outcome =
  | Done of 'a
  | Crashed of quarantined

type 'a codec = {
  encode : 'a -> Json.t;
  decode : Json.t -> 'a;
      (** may raise; an undecodable journal payload re-runs the case *)
}

type 'a result = {
  outcomes : 'a case_outcome array;  (** indexed by case, length [count] *)
  quarantine : quarantined list;     (** crashed cases, ascending *)
  metrics : Metrics.summary;
  resumed : int;  (** cases restored from the journal instead of executed *)
  skipped : int;
      (** journal records ignored on resume (unreadable, unknown kind, or
          out of range) — the forward-compatibility path: a journal written
          by a different build re-runs those cases instead of aborting.
          Also reported as [metrics.journal_skipped]. *)
}

val run :
  ?journal:string ->
  ?codec:'a codec ->
  ?campaign:string ->
  ?seed:int ->
  ?deadline:float ->
  ?step_budget:int ->
  ?retries:int ->
  ?transient:(exn -> bool) ->
  ?chaos:Chaos.plan ->
  jobs:int ->
  count:int ->
  (ctx -> int -> 'a) ->
  'a result
(** [run ~jobs ~count runner] — [runner ctx i] computes case [i].

    [journal] names the JSONL checkpoint file (created, parents included, if
    missing; resumed if present).  Journaling requires [codec];
    [campaign]/[seed] identify the campaign in the journal header and guard
    resume against parameter mismatches (which raise [Failure]).  A non-empty
    [chaos] plan extends the campaign name with the plan signature.

    [deadline] (wall seconds) and [step_budget] (poll count) bound each case
    attempt; [retries] (default 0) re-runs [transient]-classified faults
    (default: {!Chaos.is_transient}) up to that many extra attempts.

    Raises [Invalid_argument] when [jobs < 1], [count < 0], or [journal] is
    given without [codec]. *)

(** {1 Fabric building blocks}

    The multi-process {!Fabric} reuses the engine's per-case machinery
    verbatim — same attempt loop, same journal records, same replay — which
    is what makes its merged output byte-identical to an in-process run.
    These entry points exist for it (and for tests); campaign code should
    call {!run} or {!Fabric.run}. *)

val make_ctx : worker:int -> ctx
(** A fresh per-worker context with empty metrics, stage ["setup"]. *)

val ctx_metrics : ctx -> Metrics.t
(** The context's live metrics accumulator (for merging after a join or
    shipping across a process boundary). *)

val attempt_case :
  ?deadline:float ->
  ?step_budget:int ->
  ?retries:int ->
  ?transient:(exn -> bool) ->
  ?chaos:Chaos.plan ->
  ctx ->
  (ctx -> int -> 'a) ->
  int ->
  'a case_outcome
(** One case through the full supervision machinery: chaos arming, a fresh
    guard per attempt, bounded transient retries, fault classification and
    backtrace capture into a {!quarantined}.  Exactly the engine's inner
    loop — {!run} is [attempt_case] over a shard. *)

val case_to_json : 'a codec -> int -> 'a case_outcome -> Json.t
(** The JSONL case record: [{"case";"status";...}] with the codec payload
    for [Done] and stage/error/kind/backtrace/retries for [Crashed]. *)

val case_of_json : 'a codec -> Json.t -> (int * 'a case_outcome) option
(** Inverse of {!case_to_json}; [None] for records of unknown status,
    raises when a known shape is malformed (both are skip-with-count during
    replay).  Decodes pre-supervision records (missing kind/backtrace/
    retries) with defaults. *)

val replay : 'a codec -> count:int -> 'a case_outcome option array -> Json.t list -> int * int
(** Fill outcome slots from journal records; [(resumed, skipped)].  A record
    is skipped — counted, never fatal — when unreadable, of unknown kind, or
    out of range; earlier records win a slot, later duplicates do not bump
    [resumed]. *)

val campaign_name : campaign:string -> chaos:Chaos.plan -> string
(** The journal-header campaign identity: the plain name, extended with the
    chaos-plan signature when the plan is non-empty. *)

val never_completed : stage:string -> int -> 'a case_outcome
(** The [Crashed] outcome recorded for a slot no worker ever filled
    ("case never completed"), blamed on [stage]. *)

val counters_delta :
  Dce_compiler.Passmgr.counters -> Dce_compiler.Passmgr.counters -> Dce_compiler.Passmgr.counters
(** [counters_delta before after]: the analysis-cache activity between two
    snapshots of the global pass-manager counters. *)

val domains_ever_spawned : unit -> bool
(** Whether this process has ever spawned worker domains ([run] with
    [jobs > 1]).  OCaml's [Unix.fork] refuses after any domain creation, so
    {!Fabric.run} checks this to refuse a multi-process grid with a clear
    message instead of the runtime's bare [Failure]. *)
