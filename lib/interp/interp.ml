open Dce_ir
open Ir
module Ops = Dce_minic.Ops

type value = Vint of int | Vptr of string * int * int

type event = Ev_extern of string * value list | Ev_marker of int

type outcome = Finished of int | Trap of string | Out_of_fuel

type result = {
  outcome : outcome;
  events : event list;
  executed_markers : Iset.t;
  executed_blocks : Bset.t;
  steps : int;
  final_globals : (string * int array) list;
}

exception Trap_exn of string
exception Fuel_exn

let trap fmt = Printf.ksprintf (fun m -> raise (Trap_exn m)) fmt

type state = {
  prog : program;
  memory : (string * int, value array) Hashtbl.t; (* (symbol, instance) -> cells *)
  funcs : (string, func) Hashtbl.t;
  defined_syms : (string, symbol) Hashtbl.t;
  mutable fuel : int;
  mutable steps : int;
  mutable next_instance : int;
  mutable events : event list; (* reversed *)
  mutable markers : Iset.t;
  blocks_run : (string * int, unit) Hashtbl.t;
  max_depth : int;
}

let value_of_cell = function
  | Cint n -> Vint n
  | Caddr (sym, off) -> Vptr (sym, 0, off)

let alloc st sym instance =
  let cells = Array.map value_of_cell sym.sym_init in
  Hashtbl.replace st.memory (sym.sym_name, instance) cells

let truthy = function
  | Vint n -> n <> 0
  | Vptr _ -> true

let eval_binary op a b =
  match (op, a, b) with
  | _, Vint x, Vint y -> Vint (Ops.eval_binop op x y)
  | Ops.Eq, Vptr (s1, i1, o1), Vptr (s2, i2, o2) ->
    Vint (if s1 = s2 && i1 = i2 && o1 = o2 then 1 else 0)
  | Ops.Ne, Vptr (s1, i1, o1), Vptr (s2, i2, o2) ->
    Vint (if s1 = s2 && i1 = i2 && o1 = o2 then 0 else 1)
  | Ops.Eq, Vptr _, Vint _ | Ops.Eq, Vint _, Vptr _ -> Vint 0 (* pointers are never null *)
  | Ops.Ne, Vptr _, Vint _ | Ops.Ne, Vint _, Vptr _ -> Vint 1
  | (Ops.Lt | Ops.Le | Ops.Gt | Ops.Ge), Vptr (s1, i1, o1), Vptr (s2, i2, o2) ->
    (* total deterministic order: by symbol name, instance, then offset *)
    let c = compare (s1, i1, o1) (s2, i2, o2) in
    let r =
      match op with
      | Ops.Lt -> c < 0
      | Ops.Le -> c <= 0
      | Ops.Gt -> c > 0
      | Ops.Ge -> c >= 0
      | _ -> assert false
    in
    Vint (if r then 1 else 0)
  | Ops.Add, Vptr (s, i, o), Vint k | Ops.Add, Vint k, Vptr (s, i, o) -> Vptr (s, i, o + k)
  | Ops.Sub, Vptr (s, i, o), Vint k -> Vptr (s, i, o - k)
  | Ops.Sub, Vptr (s1, i1, o1), Vptr (s2, i2, o2) when s1 = s2 && i1 = i2 -> Vint (o1 - o2)
  | (Ops.Land | Ops.Lor), _, _ ->
    let xb = truthy a and yb = truthy b in
    Vint (Ops.eval_binop op (if xb then 1 else 0) (if yb then 1 else 0))
  | _, _, _ -> trap "binary %s on incompatible values" (Ops.binop_symbol op)

let eval_unary op v =
  match (op, v) with
  | _, Vint x -> Vint (Ops.eval_unop op x)
  | Ops.Lnot, Vptr _ -> Vint 0 (* pointers are non-null, hence truthy *)
  | (Ops.Neg | Ops.Bnot), Vptr _ -> trap "unary %s on pointer" (Ops.unop_symbol op)

(* Deterministic result of an undefined external function: a stable mix of
   the name and integer arguments.  Extern results must be deterministic for
   ground truth to be well-defined; the mixing gives generated programs
   opaque-but-reproducible runtime values. *)
let extern_result name args =
  let mix h x =
    let h = Int64.logxor h (Int64.of_int x) in
    let h = Int64.mul h 0x100000001B3L in
    Int64.logxor h (Int64.shift_right_logical h 29)
  in
  let h = String.fold_left (fun h c -> mix h (Char.code c)) 0xCBF29CE484222325L name in
  let h =
    List.fold_left
      (fun h v ->
        match v with
        | Vint n -> mix h n
        | Vptr (s, _, o) -> String.fold_left (fun h c -> mix h (Char.code c)) (mix h o) s)
      h args
  in
  Int64.to_int (Int64.shift_right_logical h 2)

(* one function activation *)
type frame = {
  regs : (int, value) Hashtbl.t;
  frame_instances : (string, int) Hashtbl.t; (* frame symbol -> instance *)
}

let rec call st depth (fn : func) (args : value list) : value =
  if depth > st.max_depth then trap "call depth exceeded in %s" fn.fn_name;
  let fr = { regs = Hashtbl.create 32; frame_instances = Hashtbl.create 4 } in
  (* allocate this activation's frame symbols *)
  List.iter
    (fun sym ->
      match sym.sym_kind with
      | `Frame owner when owner = fn.fn_name ->
        let inst = st.next_instance in
        st.next_instance <- inst + 1;
        Hashtbl.replace fr.frame_instances sym.sym_name inst;
        alloc st sym inst
      | `Frame _ | `Global -> ())
    st.prog.prog_syms;
  (if List.length fn.fn_params <> List.length args then
     trap "arity mismatch calling %s" fn.fn_name);
  List.iter2 (fun p a -> Hashtbl.replace fr.regs p a) fn.fn_params args;
  let reg v =
    match Hashtbl.find_opt fr.regs v with
    | Some x -> x
    | None -> trap "read of undefined register %%%d in %s" v fn.fn_name
  in
  let operand = function
    | Const n -> Vint n
    | Reg v -> reg v
  in
  let resolve_sym_instance name =
    match Hashtbl.find_opt fr.frame_instances name with
    | Some inst -> inst
    | None -> 0
  in
  let load_ptr = function
    | Vptr (sym, inst, off) -> (
      match Hashtbl.find_opt st.memory (sym, inst) with
      | None -> trap "dangling pointer to %s" sym
      | Some cells ->
        if off < 0 || off >= Array.length cells then
          trap "out-of-bounds read of %s[%d]" sym off
        else cells.(off))
    | Vint _ -> trap "load through non-pointer value"
  in
  let store_ptr p v =
    match p with
    | Vptr (sym, inst, off) -> (
      match Hashtbl.find_opt st.memory (sym, inst) with
      | None -> trap "dangling pointer to %s" sym
      | Some cells ->
        if off < 0 || off >= Array.length cells then
          trap "out-of-bounds write of %s[%d]" sym off
        else cells.(off) <- v)
    | Vint _ -> trap "store through non-pointer value"
  in
  let eval_rvalue prev_label rv =
    match rv with
    | Op a -> operand a
    | Unary (op, a) -> eval_unary op (operand a)
    | Binary (op, a, b) -> eval_binary op (operand a) (operand b)
    | Addr (sym, off) -> (
      match operand off with
      | Vint k -> Vptr (sym, resolve_sym_instance sym, k)
      | Vptr _ -> trap "pointer used as offset")
    | Ptradd (p, off) -> (
      match (operand p, operand off) with
      | Vptr (s, i, o), Vint k -> Vptr (s, i, o + k)
      | Vint _, _ -> trap "ptradd on non-pointer (null dereference?)"
      | _, Vptr _ -> trap "pointer used as offset")
    | Load p -> load_ptr (operand p)
    | Phi args -> (
      match prev_label with
      | None -> trap "phi in entry block"
      | Some prev -> (
        match List.assoc_opt prev args with
        | Some a -> operand a
        | None -> trap "phi has no argument for predecessor L%d" prev))
  in
  let tick () =
    st.steps <- st.steps + 1;
    st.fuel <- st.fuel - 1;
    if st.fuel <= 0 then raise Fuel_exn;
    (* supervision poll point: a campaign deadline/step budget cuts an
       interpreter loop off even before fuel runs out; subsampled so the
       unguarded fast path stays two arithmetic ops *)
    if st.steps land 255 = 0 then Dce_support.Guard.poll ~site:"interp"
  in
  let rec exec_block prev_label l : value =
    Hashtbl.replace st.blocks_run (fn.fn_name, l) ();
    let b =
      match Imap.find_opt l fn.fn_blocks with
      | Some b -> b
      | None -> trap "jump to missing block L%d in %s" l fn.fn_name
    in
    (* phis evaluate in parallel against the incoming edge *)
    let rec split_phis acc = function
      | (Def (v, Phi args) as _i) :: rest -> split_phis ((v, args) :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let phis, body = split_phis [] b.b_instrs in
    let phi_values =
      List.map
        (fun (v, args) ->
          tick ();
          (v, eval_rvalue prev_label (Phi args)))
        phis
    in
    List.iter (fun (v, value) -> Hashtbl.replace fr.regs v value) phi_values;
    List.iter
      (fun i ->
        tick ();
        match i with
        | Def (v, rv) -> Hashtbl.replace fr.regs v (eval_rvalue prev_label rv)
        | Store (p, v) -> store_ptr (operand p) (operand v)
        | Marker n ->
          st.events <- Ev_marker n :: st.events;
          st.markers <- Iset.add n st.markers
        | Call (res, name, arg_ops) ->
          let arg_values = List.map operand arg_ops in
          let result =
            match Hashtbl.find_opt st.funcs name with
            | Some callee -> call st (depth + 1) callee arg_values
            | None ->
              st.events <- Ev_extern (name, arg_values) :: st.events;
              Vint (extern_result name arg_values)
          in
          (match res with
           | Some v -> Hashtbl.replace fr.regs v result
           | None -> ()))
      body;
    tick ();
    match b.b_term with
    | Jmp next -> exec_block (Some l) next
    | Br (c, lt, lf) -> exec_block (Some l) (if truthy (operand c) then lt else lf)
    | Switch (c, cases, dflt) -> (
      match operand c with
      | Vint k -> exec_block (Some l) (Option.value ~default:dflt (List.assoc_opt k cases))
      | Vptr _ -> trap "switch on pointer")
    | Ret None -> Vint 0
    | Ret (Some a) -> operand a
  in
  let result = exec_block None fn.fn_entry in
  (* deallocate this activation's frames: pointers into them become dangling *)
  Hashtbl.iter (fun sym inst -> Hashtbl.remove st.memory (sym, inst)) fr.frame_instances;
  result

(* stable integer encoding of final memory cells (pointers hash by target) *)
let cell_checksum = function
  | Vint n -> n
  | Vptr (sym, inst, off) -> Hashtbl.hash (sym, inst, off) lor min_int

let run ?(fuel = 2_000_000) ?(max_depth = 256) prog =
  let st =
    {
      prog;
      memory = Hashtbl.create 64;
      funcs = Hashtbl.create 16;
      defined_syms = Hashtbl.create 64;
      fuel;
      steps = 0;
      next_instance = 1;
      events = [];
      markers = Iset.empty;
      blocks_run = Hashtbl.create 128;
      max_depth;
    }
  in
  List.iter (fun fn -> Hashtbl.replace st.funcs fn.fn_name fn) prog.prog_funcs;
  List.iter
    (fun sym ->
      Hashtbl.replace st.defined_syms sym.sym_name sym;
      match sym.sym_kind with `Global -> alloc st sym 0 | `Frame _ -> ())
    prog.prog_syms;
  let outcome =
    match Hashtbl.find_opt st.funcs "main" with
    | None -> Trap "no main function"
    | Some main -> (
      try
        match call st 0 main [] with
        | Vint n -> Finished n
        | Vptr _ -> Finished 1 (* returning a pointer from main: nonzero status *)
      with
      | Trap_exn m -> Trap m
      | Fuel_exn -> Out_of_fuel)
  in
  let final_globals =
    List.filter_map
      (fun sym ->
        match sym.sym_kind with
        | `Global -> (
          match Hashtbl.find_opt st.memory (sym.sym_name, 0) with
          | Some cells -> Some (sym.sym_name, Array.map cell_checksum cells)
          | None -> None)
        | `Frame _ -> None)
      prog.prog_syms
  in
  {
    outcome;
    events = List.rev st.events;
    executed_markers = st.markers;
    executed_blocks = Hashtbl.fold (fun k () acc -> Bset.add k acc) st.blocks_run Bset.empty;
    steps = st.steps;
    final_globals;
  }

let equivalent a b = a.outcome = b.outcome && a.events = b.events

let equivalent_strict a b = equivalent a b && a.final_globals = b.final_globals
